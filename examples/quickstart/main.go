// Quickstart: build one server-like workload, run it with and without
// the Entangling prefetcher, and print the headline numbers.
package main

import (
	"fmt"
	"log"

	"entangling"
)

func main() {
	// A server workload: large instruction footprint, deep call
	// chains — the class of application the paper targets.
	params := entangling.VaryWorkload(entangling.WorkloadPreset(entangling.Srv), 42)
	params.Name = "srv-quickstart"
	wl := entangling.WorkloadSpec{Name: params.Name, Params: params}

	const warmup, measure = 1_000_000, 1_000_000

	baseline, err := entangling.Run(entangling.Baseline, wl, warmup, measure)
	if err != nil {
		log.Fatal(err)
	}

	cfg := entangling.Configuration{Name: "entangling-4k", Prefetcher: "entangling-4k"}
	withPf, err := entangling.Run(cfg, wl, warmup, measure)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (L1I MPKI %.1f without prefetching)\n\n", wl.Name, baseline.L1IMPKI())
	fmt.Printf("%-22s %10s %12s %10s\n", "configuration", "IPC", "L1I hit rate", "storage")
	fmt.Printf("%-22s %10.3f %12.4f %10s\n", "no prefetcher", baseline.IPC, baseline.L1IHitRate(), "-")
	fmt.Printf("%-22s %10.3f %12.4f %7.1f KB\n", "entangling-4k", withPf.IPC, withPf.L1IHitRate(),
		float64(withPf.StorageBits)/8/1024)

	coverage := 1 - float64(withPf.L1I.Misses)/float64(baseline.L1I.Misses)
	fmt.Printf("\nspeedup  %+.1f%%   coverage %.1f%%   accuracy %.1f%%\n",
		(withPf.IPC/baseline.IPC-1)*100, coverage*100, withPf.L1I.Accuracy()*100)
}
