// Comparison sweeps the paper's full prefetcher lineup (§IV-B) over a
// small mixed suite and prints the storage-vs-performance trade-off of
// Figure 6, including where each budget of the Entangling prefetcher
// lands relative to the state of the art.
package main

import (
	"fmt"
	"log"
	"sort"

	"entangling"
)

func main() {
	specs := entangling.Workloads(2) // 2 workloads per category = 8 runs per config
	opt := entangling.QuickOptions()

	fmt.Printf("sweeping %d configurations over %d workloads "+
		"(%d warm-up + %d measured instructions each)...\n\n",
		len(entangling.StandardConfigurations()), len(specs), opt.Warmup, opt.Measure)

	suite, err := entangling.RunSuite(specs, entangling.StandardConfigurations(), opt)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		name    string
		kb      float64
		speedup float64
	}
	var rows []row
	for _, c := range suite.ConfigOrder {
		if c == "no" {
			continue
		}
		rows = append(rows, row{c, suite.StorageKB(c), (suite.GeomeanSpeedup(c) - 1) * 100})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].speedup < rows[j].speedup })

	fmt.Printf("%-16s %12s %16s\n", "configuration", "storage", "geomean speedup")
	fmt.Println("----------------------------------------------")
	for _, r := range rows {
		storage := fmt.Sprintf("%.2f KB", r.kb)
		if r.kb == 0 {
			storage = "-"
		}
		fmt.Printf("%-16s %12s %+15.2f%%\n", r.name, storage, r.speedup)
	}

	fmt.Println()
	e2k := (suite.GeomeanSpeedup("entangling-2k") - 1) * 100
	m8k := (suite.GeomeanSpeedup("mana-8k") - 1) * 100
	fmt.Printf("paper's key claim check: Entangling-2K (%.2f KB, %+.2f%%) vs MANA-8K (%.2f KB, %+.2f%%)\n",
		suite.StorageKB("entangling-2k"), e2k, suite.StorageKB("mana-8k"), m8k)
	if e2k > m8k {
		fmt.Println("=> the low-budget Entangling outperforms the high-budget MANA, as in the paper")
	}
}
