// Customprefetcher shows how to implement a user-defined L1I
// prefetcher against the public API and compare it with the paper's
// lineup in the same harness.
//
// The example prefetcher is a simple "miss-pair" correlator: it
// remembers, for each missing line, the line that missed right before
// it, and prefetches the recorded successor when the predecessor is
// fetched again — a two-entry Markov chain over misses. It is crude on
// purpose: the point is the plumbing, and the comparison shows how far
// timeliness-aware entangling pulls ahead of naive correlation.
package main

import (
	"fmt"
	"log"

	"entangling"
)

// missPair is the custom prefetcher.
type missPair struct {
	entangling.PrefetcherBase
	issuer entangling.Issuer

	table    map[uint64]uint64
	lastMiss uint64
	haveMiss bool
}

func newMissPair(is entangling.Issuer) entangling.Prefetcher {
	return &missPair{
		PrefetcherBase: entangling.PrefetcherBase{
			PfName: "misspair",
			// 4K entries x two 58-bit line addresses.
			Bits: 4096 * 116,
		},
		issuer: is,
		table:  make(map[uint64]uint64, 4096),
	}
}

// OnAccess trains on miss pairs and triggers on every access.
func (p *missPair) OnAccess(ev entangling.AccessEvent) {
	if next, ok := p.table[ev.LineAddr]; ok {
		p.issuer.Prefetch(ev.Cycle, next, 0)
		p.issuer.Prefetch(ev.Cycle, next+1, 0)
	}
	if ev.Hit {
		return
	}
	if p.haveMiss {
		if len(p.table) >= 4096 {
			// Capacity model: forget an arbitrary pair.
			for k := range p.table {
				delete(p.table, k)
				break
			}
		}
		p.table[p.lastMiss] = ev.LineAddr
	}
	p.lastMiss, p.haveMiss = ev.LineAddr, true
}

func main() {
	entangling.RegisterPrefetcher("misspair", newMissPair)

	specs := entangling.Workloads(1)
	cfgs := []entangling.Configuration{
		entangling.Baseline,
		{Name: "misspair", Prefetcher: "misspair"},
		{Name: "entangling-2k", Prefetcher: "entangling-2k"},
		{Name: "ideal", IdealL1I: true},
	}
	suite, err := entangling.RunSuite(specs, cfgs, entangling.QuickOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-16s %16s %12s\n", "configuration", "geomean speedup", "storage")
	for _, c := range suite.ConfigOrder {
		if c == "no" {
			continue
		}
		fmt.Printf("%-16s %+15.2f%% %9.1f KB\n",
			c, (suite.GeomeanSpeedup(c)-1)*100, suite.StorageKB(c))
	}
	fmt.Println("\nmisspair correlates misses without timeliness; entangling-2k, with a")
	fmt.Println("comparable budget, picks the trigger so the prefetch arrives on time.")
}
