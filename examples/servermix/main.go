// Servermix reproduces the paper's motivating scenario (§I): server
// applications with instruction footprints far beyond the L1I, where
// the front-end stalls dominate. It runs a mix of server workloads
// under the baseline, a next-line prefetcher, the Entangling
// prefetcher and an ideal L1I, and reports how much of the ideal gap
// each recovers.
package main

import (
	"fmt"
	"log"

	"entangling"
)

func main() {
	const warmup, measure = 1_500_000, 1_000_000

	// Four independent server workloads (different seeds = different
	// programs of the same class).
	var specs []entangling.WorkloadSpec
	for seed := uint64(1); seed <= 4; seed++ {
		p := entangling.VaryWorkload(entangling.WorkloadPreset(entangling.Srv), seed*977)
		p.Name = fmt.Sprintf("srv-mix-%d", seed)
		specs = append(specs, entangling.WorkloadSpec{Name: p.Name, Params: p})
	}

	configs := []entangling.Configuration{
		entangling.Baseline,
		{Name: "nextline", Prefetcher: "nextline"},
		{Name: "entangling-4k", Prefetcher: "entangling-4k"},
		{Name: "ideal", IdealL1I: true},
	}

	opt := entangling.Options{Warmup: warmup, Measure: measure}
	suite, err := entangling.RunSuite(specs, configs, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s", "workload")
	for _, c := range configs {
		fmt.Printf(" %14s", c.Name)
	}
	fmt.Println("   (IPC; MPKI for baseline)")
	for _, s := range specs {
		fmt.Printf("%-14s", s.Name)
		for _, c := range configs {
			r := suite.Runs[c.Name][s.Name]
			fmt.Printf(" %14.3f", r.R.IPC)
		}
		base := suite.Runs["no"][s.Name].R
		fmt.Printf("   MPKI=%.1f\n", base.L1IMPKI())
	}

	fmt.Println()
	ideal := suite.GeomeanSpeedup("ideal")
	for _, c := range configs[1:] {
		sp := suite.GeomeanSpeedup(c.Name)
		share := 0.0
		if ideal > 1 {
			share = (sp - 1) / (ideal - 1) * 100
		}
		fmt.Printf("%-14s geomean speedup %+6.1f%%  (recovers %5.1f%% of the ideal-L1I gap)\n",
			c.Name, (sp-1)*100, share)
	}
}
