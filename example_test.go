package entangling_test

// Compile-checked usage examples for the public API (shown in godoc).

import (
	"fmt"

	"entangling"
)

// Example_singleRun shows the minimal flow: one workload, one
// configuration, headline metrics.
func Example_singleRun() {
	params := entangling.VaryWorkload(entangling.WorkloadPreset(entangling.Srv), 42)
	params.Name = "my-server"
	wl := entangling.WorkloadSpec{Name: params.Name, Params: params}

	cfg := entangling.Configuration{Name: "entangling-4k", Prefetcher: "entangling-4k"}
	r, err := entangling.Run(cfg, wl, 2_000_000, 1_000_000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("IPC %.2f, L1I hit rate %.3f, accuracy %.2f",
		r.IPC, r.L1IHitRate(), r.L1I.Accuracy())
}

// Example_suite shows sweeping the paper's configurations over a suite
// and rendering Figure 6.
func Example_suite() {
	specs := entangling.Workloads(2)
	suite, err := entangling.RunSuite(specs, entangling.StandardConfigurations(),
		entangling.QuickOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println(entangling.Fig06(suite).String())
}

// Example_customPrefetcher shows plugging a user-defined prefetcher
// into the harness.
func Example_customPrefetcher() {
	type nextTwo struct {
		entangling.PrefetcherBase
		issuer entangling.Issuer
	}
	// Method values cannot be declared inside an example; a real
	// implementation defines OnAccess on the type:
	//
	//	func (p *nextTwo) OnAccess(ev entangling.AccessEvent) {
	//	    p.issuer.Prefetch(ev.Cycle, ev.LineAddr+1, 0)
	//	    p.issuer.Prefetch(ev.Cycle, ev.LineAddr+2, 0)
	//	}
	entangling.RegisterPrefetcher("next-two", func(is entangling.Issuer) entangling.Prefetcher {
		return &nextTwo{
			PrefetcherBase: entangling.PrefetcherBase{PfName: "next-two"},
			issuer:         is,
		}
	})
	fmt.Println(len(entangling.Prefetchers()) > 0)
}
