module entangling

go 1.22
