package entangling_test

import (
	"strings"
	"testing"

	"entangling"
)

func TestWorkloadBuilders(t *testing.T) {
	specs := entangling.Workloads(2)
	if len(specs) != 8 {
		t.Fatalf("Workloads(2) = %d specs", len(specs))
	}
	cloud := entangling.CloudWorkloads()
	if len(cloud) != 4 {
		t.Fatalf("CloudWorkloads = %d specs", len(cloud))
	}
	p := entangling.WorkloadPreset(entangling.Srv)
	v := entangling.VaryWorkload(p, 7)
	if v.Seed != 7 {
		t.Error("VaryWorkload did not set seed")
	}
}

func TestPublicRun(t *testing.T) {
	p := entangling.VaryWorkload(entangling.WorkloadPreset(entangling.Int), 3)
	p.Name = "api-int"
	wl := entangling.WorkloadSpec{Name: p.Name, Params: p}

	base, err := entangling.Run(entangling.Baseline, wl, 200_000, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if base.Instructions != 150_000 || base.IPC <= 0 {
		t.Fatalf("baseline run: %+v", base)
	}
	cfg := entangling.Configuration{Name: "entangling-2k", Prefetcher: "entangling-2k"}
	r, err := entangling.Run(cfg, wl, 200_000, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.PrefetcherName != "entangling-2k" {
		t.Errorf("prefetcher name %q", r.PrefetcherName)
	}
	if r.StorageBits == 0 {
		t.Error("storage not reported")
	}
}

func TestPublicRegistry(t *testing.T) {
	names := entangling.Prefetchers()
	for _, want := range []string{"entangling-2k", "entangling-4k", "entangling-8k",
		"entangling-2k-split", "entangling-4k-ctx", "mana-4k", "rdip", "djolt", "fnl+mma", "epi"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("public registry missing %q", want)
		}
	}
}

// countingPrefetcher checks a user-defined prefetcher integrates
// end-to-end through the public API.
type countingPrefetcher struct {
	entangling.PrefetcherBase
	issuer   entangling.Issuer
	accesses int
	branches int
}

func (c *countingPrefetcher) OnAccess(ev entangling.AccessEvent) {
	c.accesses++
	c.issuer.Prefetch(ev.Cycle, ev.LineAddr+1, 0xF00)
}

func (c *countingPrefetcher) OnBranch(entangling.BranchEvent) { c.branches++ }

func TestCustomPrefetcherViaPublicAPI(t *testing.T) {
	var built *countingPrefetcher
	entangling.RegisterPrefetcher("api-test-counter", func(is entangling.Issuer) entangling.Prefetcher {
		built = &countingPrefetcher{
			PrefetcherBase: entangling.PrefetcherBase{PfName: "api-test-counter", Bits: 123},
			issuer:         is,
		}
		return built
	})

	p := entangling.VaryWorkload(entangling.WorkloadPreset(entangling.Srv), 5)
	p.Name = "api-srv"
	wl := entangling.WorkloadSpec{Name: p.Name, Params: p}
	cfg := entangling.Configuration{Name: "api-test-counter", Prefetcher: "api-test-counter"}
	r, err := entangling.Run(cfg, wl, 100_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if built == nil || built.accesses == 0 || built.branches == 0 {
		t.Fatal("custom prefetcher hooks never fired")
	}
	if r.StorageBits != 123 {
		t.Errorf("StorageBits = %d", r.StorageBits)
	}
	if r.L1I.PrefetchRequested == 0 {
		t.Error("custom prefetches not requested")
	}
}

func TestPublicSuiteAndFigures(t *testing.T) {
	specs := entangling.Workloads(1)[:2]
	cfgs := []entangling.Configuration{
		entangling.Baseline,
		{Name: "nextline", Prefetcher: "nextline"},
	}
	opt := entangling.Options{Warmup: 100_000, Measure: 80_000}
	suite, err := entangling.RunSuite(specs, cfgs, opt)
	if err != nil {
		t.Fatal(err)
	}
	tab := entangling.Fig06(suite)
	if !strings.Contains(tab.String(), "nextline") {
		t.Error("Fig06 missing row")
	}
	if !strings.Contains(tab.CSV(), "nextline") {
		t.Error("CSV missing row")
	}
	if entangling.DefaultOptions().Warmup == 0 || entangling.QuickOptions().Measure == 0 {
		t.Error("options helpers broken")
	}
	_ = entangling.DefaultEnergyModel()
	if len(entangling.StandardConfigurations()) < 10 {
		t.Error("standard configurations incomplete")
	}
	if len(entangling.CompactConfigurations()) < 5 {
		t.Error("compact configurations incomplete")
	}
}

func TestEntanglingConfigsExported(t *testing.T) {
	if entangling.Entangling2K.Sets != 128 || entangling.Entangling4K.Sets != 256 ||
		entangling.Entangling8K.Sets != 512 {
		t.Error("exported Entangling configs wrong")
	}
	// A custom instance can be built directly.
	pf := entangling.NewEntangling(entangling.Entangling2K, nopIssuer{})
	if pf.Name() != "entangling-2k" {
		t.Errorf("custom instance name %q", pf.Name())
	}
}

type nopIssuer struct{}

func (nopIssuer) Prefetch(uint64, uint64, uint64) bool { return true }
