// Command entangling-sim runs one workload under one prefetcher
// configuration and prints the run's metrics.
//
// Examples:
//
//	entangling-sim -workload srv -seed 3 -prefetcher entangling-4k
//	entangling-sim -workload cassandra -prefetcher mana-4k -measure 2000000
//	entangling-sim -workload int -prefetcher ideal -physical
//	entangling-sim -workload srv -metrics-out run.json
//	entangling-sim -cpuprofile cpu.pprof -measure 5000000
//	entangling-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"entangling"
	"entangling/internal/harness"
)

func main() {
	var (
		wl         = flag.String("workload", "srv", "workload: crypto|int|fp|srv|cloud or a CloudSuite name (cassandra, cloud9, nutch, streaming)")
		traceIn    = flag.String("trace", "", "run from a trace file (see cmd/tracegen) instead of a synthetic workload")
		seed       = flag.Uint64("seed", 1, "workload seed (variant selector)")
		pf         = flag.String("prefetcher", "entangling-4k", `prefetcher configuration, "no", or "ideal"`)
		warmup     = flag.Uint64("warmup", 2_000_000, "warm-up instructions (discarded)")
		measure    = flag.Uint64("measure", 1_000_000, "measured instructions")
		phys       = flag.Bool("physical", false, "train hierarchy and prefetcher on physical addresses")
		l1iWays    = flag.Int("l1i-ways", 0, "override L1I associativity (16 = 64KB, 24 = 96KB)")
		list       = flag.Bool("list", false, "list registered prefetchers and exit")
		base       = flag.Bool("baseline", true, "also run the no-prefetch baseline for speedup/coverage")
		metricsOut = flag.String("metrics-out", "", "write machine-readable run metrics to this file (.csv for CSV, JSON otherwise)")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulation to this file")
		memProf    = flag.String("memprofile", "", "write a pprof heap profile (post-run) to this file")
		checkpoint = flag.String("checkpoint", "", "persist completed runs into this directory (crash-safe, keyed by config x workload x windows)")
		resume     = flag.Bool("resume", false, "reuse a matching record from -checkpoint instead of re-running")
	)
	flag.Parse()
	if *resume && *checkpoint == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}

	if *list {
		for _, n := range entangling.Prefetchers() {
			fmt.Println(n)
		}
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	cfg := entangling.Configuration{Name: *pf, Physical: *phys, L1IWays: *l1iWays}
	switch *pf {
	case "no":
	case "ideal":
		cfg.IdealL1I = true
	default:
		cfg.Prefetcher = *pf
	}

	var (
		r        entangling.Results
		baseline *entangling.Results
		err      error
		name     string
		category string
	)
	if *traceIn != "" {
		name = *traceIn
		r, err = runTrace(cfg, *traceIn, *warmup, *measure)
		if err != nil {
			fatal(err)
		}
		*base = false // no baseline rerun for file traces (reader is single-pass)
	} else {
		var spec entangling.WorkloadSpec
		spec, err = resolveWorkload(*wl, *seed)
		if err != nil {
			fatal(err)
		}
		name = spec.Name
		category = string(spec.Params.Category)

		var store *harness.CheckpointStore
		if *checkpoint != "" {
			store, err = harness.OpenCheckpointStore(*checkpoint)
			if err != nil {
				fatal(err)
			}
		}
		// runCell funnels every simulation through the checkpoint store
		// when one is named: -resume reuses a valid matching record,
		// and every fresh result is persisted crash-safely.
		runCell := func(c entangling.Configuration) (entangling.Results, error) {
			if store == nil {
				return entangling.Run(c, spec, *warmup, *measure)
			}
			fp := harness.CellFingerprint(c, spec, *warmup, *measure)
			if *resume {
				if rec, ok, lerr := store.Load(fp); lerr != nil {
					return entangling.Results{}, lerr
				} else if ok && rec.Config == c.Name && rec.Workload == spec.Name {
					fmt.Fprintf(os.Stderr, "resumed %s/%s from checkpoint\n", c.Name, spec.Name)
					return rec.Result.R, nil
				}
			}
			res, rerr := entangling.Run(c, spec, *warmup, *measure)
			if rerr != nil {
				return res, rerr
			}
			rec := harness.CellRecord{
				SchemaVersion: harness.CheckpointSchemaVersion,
				Fingerprint:   fp,
				Config:        c.Name,
				Workload:      spec.Name,
				Result: harness.RunResult{
					Config: c.Name, Workload: spec.Name,
					Category: spec.Params.Category, R: res,
				},
			}
			if serr := store.Save(rec); serr != nil {
				return res, serr
			}
			return res, nil
		}

		r, err = runCell(cfg)
		if err != nil {
			fatal(err)
		}
		if *base && *pf != "no" {
			b, err := runCell(entangling.Configuration{Name: "no", Physical: *phys})
			if err != nil {
				fatal(err)
			}
			baseline = &b
		}
	}

	fmt.Printf("workload           %s (seed %d)\n", name, *seed)
	fmt.Printf("prefetcher         %s (%.2f KB)\n", r.PrefetcherName, float64(r.StorageBits)/8/1024)
	fmt.Printf("instructions       %d (+%d warm-up)\n", r.Instructions, *warmup)
	fmt.Printf("cycles             %d\n", r.Cycles)
	fmt.Printf("IPC                %.4f\n", r.IPC)
	fmt.Printf("L1I accesses       %d\n", r.L1I.Accesses)
	fmt.Printf("L1I hit rate       %.4f\n", r.L1IHitRate())
	fmt.Printf("L1I MPKI           %.2f\n", r.L1IMPKI())
	fmt.Printf("prefetches issued  %d\n", r.L1I.PrefetchIssued)
	fmt.Printf("prefetch accuracy  %.3f\n", r.L1I.Accuracy())
	fmt.Printf("timely / late      %d / %d\n", r.L1I.TimelyPrefetchHits, r.L1I.LatePrefetches)
	fmt.Printf("early / inaccurate %d / %d\n", r.Lifecycle.EarlyEvicted, r.Lifecycle.Inaccurate())
	fmt.Printf("late cycles saved  %d (%.1f/late)\n", r.Lifecycle.LateCyclesSaved, r.Lifecycle.MeanSaved())
	fmt.Printf("mean lead cycles   %.1f\n", r.Lifecycle.MeanLead())
	st := r.Stalls
	fmt.Printf("stall cycles       %d (l1i %d, btb %d, mispredict %d, ftq %d, rob %d)\n",
		st.Total(), st.L1IMiss, st.BTBMiss, st.Mispredict, st.FTQFull, st.ROBFull)
	fmt.Printf("cond br accuracy   %.4f\n", r.CondAccuracy)
	if baseline != nil {
		cov := 0.0
		if baseline.L1I.Misses > 0 {
			cov = 1 - float64(r.L1I.Misses)/float64(baseline.L1I.Misses)
		}
		fmt.Printf("baseline IPC       %.4f\n", baseline.IPC)
		fmt.Printf("speedup            %+.2f%%\n", (r.IPC/baseline.IPC-1)*100)
		fmt.Printf("coverage           %.3f\n", cov)
	}

	if *metricsOut != "" {
		m := harness.SuiteMetrics{SchemaVersion: harness.MetricsSchemaVersion}
		m.Runs = append(m.Runs, harness.MetricsForRun(cfg.Name, name, category, r, baseline))
		if baseline != nil {
			m.Runs = append(m.Runs, harness.MetricsForRun("no", name, category, *baseline, nil))
		}
		if err := harness.WriteMetricsFile(*metricsOut, m); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func resolveWorkload(name string, seed uint64) (entangling.WorkloadSpec, error) {
	switch entangling.Category(name) {
	case entangling.Crypto, entangling.Int, entangling.FP, entangling.Srv, entangling.Cloud,
		entangling.JIT, entangling.Micro, entangling.Serverless:
		p := entangling.VaryWorkload(entangling.WorkloadPreset(entangling.Category(name)), seed)
		p.Name = fmt.Sprintf("%s-%d", name, seed)
		return entangling.WorkloadSpec{Name: p.Name, Params: p}, nil
	}
	for _, s := range entangling.CloudWorkloads() {
		if s.Name == name {
			return s, nil
		}
	}
	for _, s := range entangling.AdversarialWorkloads() {
		if s.Name == name {
			return s, nil
		}
	}
	return entangling.WorkloadSpec{}, fmt.Errorf(
		"unknown workload %q (want crypto|int|fp|srv|cloud|jit|micro|serverless or one of: %s)",
		name, strings.Join(namedWorkloads(), ", "))
}

func namedWorkloads() []string {
	var out []string
	for _, s := range entangling.CloudWorkloads() {
		out = append(out, s.Name)
	}
	for _, s := range entangling.AdversarialWorkloads() {
		out = append(out, s.Name)
	}
	return out
}

// runTrace runs the configuration over a trace file.
func runTrace(cfg entangling.Configuration, path string, warmup, measure uint64) (entangling.Results, error) {
	f, err := os.Open(path)
	if err != nil {
		return entangling.Results{}, err
	}
	defer f.Close()
	src, err := entangling.OpenTrace(f)
	if err != nil {
		return entangling.Results{}, err
	}
	return entangling.RunSource(cfg, src, warmup, measure)
}
