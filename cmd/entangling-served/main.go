// Command entangling-served runs the simulation job server: a
// long-lived HTTP service that accepts {configurations x workloads x
// windows} sweep jobs, executes them through the evaluation harness
// with content-addressed result caching and singleflight
// deduplication, streams per-cell progress over SSE, and drains
// gracefully on SIGTERM/SIGINT (stop admitting, finish or checkpoint
// in-flight cells, exit 0). See README.md, "Serving mode".
//
// Three modes share the binary (-mode):
//
//	standalone   the single-node server (default) — cells simulate
//	             in-process.
//	coordinator  the same public job API, but cells are dispatched to
//	             a fleet of workers (-peers) with consistent-hash
//	             placement, work-stealing and checkpoint replication.
//	worker       a fleet worker: serves the fleet wire API and
//	             simulates the cells a coordinator assigns it.
//
// Examples:
//
//	entangling-served -addr :8080 -checkpoint-dir /var/lib/entangling
//	entangling-served -addr 127.0.0.1:0 -queue 4 -workers 1
//	entangling-served -mode worker -addr 127.0.0.1:9001 -worker-id w1
//	entangling-served -mode coordinator -addr :8080 \
//	    -peers http://127.0.0.1:9001,http://127.0.0.1:9002 \
//	    -checkpoint-dir /var/lib/entangling
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"entangling/internal/fleet"
	"entangling/internal/harness"
	"entangling/internal/server"
)

func main() {
	var cfg server.Config
	var (
		mode        = flag.String("mode", "standalone", "standalone, coordinator or worker")
		peers       = flag.String("peers", "", "comma-separated worker base URLs (coordinator mode)")
		workerID    = flag.String("worker-id", "", "this worker's name in results and health docs (worker mode)")
		stealAfter  = flag.Duration("steal-after", 15*time.Second, "how long the primary worker may hold a cell before it is raced to the next owner (coordinator mode)")
		tenantsFile = flag.String("tenants-file", "", "tenant config JSON; switches the server to authenticated multi-tenant mode with quotas and priority tiers")
		tierWeights = flag.String("tier-weights", "", "override tier weights, e.g. gold=100,silver=10,bronze=1")
		leakCheck   = flag.Bool("leak-check", false, "after a clean drain, fail (exit 1, stacks dumped) unless goroutines return to the startup baseline")
	)
	flag.StringVar(&cfg.Addr, "addr", ":8080", "listen address (use :0 for an ephemeral port)")
	flag.StringVar(&cfg.CheckpointDir, "checkpoint-dir", "", "persist completed cells here and serve warm restarts from it")
	flag.IntVar(&cfg.QueueCapacity, "queue", 16, "admitted-but-not-running job bound; beyond it submissions get 429")
	flag.IntVar(&cfg.Workers, "workers", 2, "concurrently running jobs")
	flag.IntVar(&cfg.CellParallelism, "cell-parallelism", 4, "concurrently resolving cells per job")
	flag.IntVar(&cfg.MaxCells, "max-cells", 512, "largest sweep one job may request")
	flag.Int64Var(&cfg.MaxBodyBytes, "max-body", 1<<20, "largest accepted submission body in bytes")
	flag.IntVar(&cfg.PerCategory, "per-category", 6, "CVP workloads per category in the registry")
	flag.IntVar(&cfg.Retries, "retries", 2, "per-cell retry budget")
	flag.DurationVar(&cfg.RetryBaseDelay, "retry-base-delay", 100*time.Millisecond, "backoff before a cell's first retry")
	flag.DurationVar(&cfg.CellTimeout, "cell-timeout", 0, "per-cell attempt deadline (0 = none)")
	flag.BoolVar(&cfg.AllowFaults, "allow-faults", false, "accept fault_plan in submissions (testing)")
	flag.StringVar(&cfg.TraceDir, "trace-dir", "", "store uploaded traces here (default <checkpoint-dir>/traces when -checkpoint-dir is set)")
	flag.Int64Var(&cfg.MaxTraceBytes, "max-trace-bytes", 128<<20, "largest accepted trace upload body in bytes")
	flag.DurationVar(&cfg.DrainGrace, "drain-grace", 10*time.Second, "how long a drain waits for running jobs before canceling them")
	flag.BoolVar(&cfg.Approximate, "approximate", false, "train the internal/predict model on exact cells and accept mode=approximate jobs answered with error bars")
	flag.StringVar(&cfg.ModelDir, "model-dir", "", "persist the approximate model snapshot here (default <checkpoint-dir>/model when -checkpoint-dir is set)")
	flag.Float64Var(&cfg.MaxRelErr, "max-rel-err", 0.25, "default approximate-mode error budget: widest acceptable relative interval half-width before a cell falls back to exact simulation")
	flag.Parse()

	if *tenantsFile != "" {
		tc, err := server.LoadTenantsFile(*tenantsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Tenants = &tc
	}
	if *tierWeights != "" {
		tw, err := parseTierWeights(*tierWeights)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.TierWeights = tw
	}

	baseline := runtime.NumGoroutine()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var err error
	switch *mode {
	case "standalone":
		err = runServer(ctx, cfg)
	case "coordinator":
		err = runCoordinator(ctx, cfg, *peers, *stealAfter)
	case "worker":
		err = runWorker(ctx, cfg, *workerID)
	default:
		err = fmt.Errorf("unknown -mode %q (want standalone, coordinator or worker)", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *leakCheck {
		if err := auditGoroutines(baseline); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		log.Printf("leak-check: clean (goroutines back at startup baseline)")
	}
}

// parseTierWeights parses "gold=100,silver=10" into a weight map.
func parseTierWeights(s string) (map[string]int, error) {
	tw := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-tier-weights: %q is not name=weight", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-tier-weights: tier %q needs a positive integer weight", name)
		}
		tw[strings.TrimSpace(name)] = w
	}
	if len(tw) == 0 {
		return nil, fmt.Errorf("-tier-weights: no tiers parsed")
	}
	return tw, nil
}

// auditGoroutines waits for the process to settle back to its startup
// goroutine baseline after a drain; a stuck goroutine fails loudly
// with full stacks. The signal-notify goroutine from NotifyContext is
// the one expected straggler, hence baseline+1.
func auditGoroutines(baseline int) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+1 {
			return nil
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			return fmt.Errorf("leak-check: %d goroutines alive after drain (baseline %d)\n%s",
				n, baseline, buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func runServer(ctx context.Context, cfg server.Config) error {
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	return srv.Run(ctx)
}

// runCoordinator serves the public job API with the fleet dispatcher
// plugged in: the coordinator owns the durable store (workers are
// disposable), places cells on -peers, and replicates every finished
// cell's checkpoint record before publishing it.
func runCoordinator(ctx context.Context, cfg server.Config, peers string, stealAfter time.Duration) error {
	var urls []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			urls = append(urls, p)
		}
	}
	var store *harness.CheckpointStore
	if cfg.CheckpointDir != "" {
		var err error
		if store, err = harness.OpenCheckpointStore(cfg.CheckpointDir); err != nil {
			return err
		}
		// The model lives coordinator-side (workers stay model-free),
		// so resolve its default location before the checkpoint dir is
		// handed to the dispatcher.
		if cfg.Approximate && cfg.ModelDir == "" {
			cfg.ModelDir = filepath.Join(cfg.CheckpointDir, "model")
		}
		cfg.CheckpointDir = "" // the dispatcher owns the store now
	}
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Peers:      urls,
		Store:      store,
		StealAfter: stealAfter,
		Logf:       log.Printf,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	readyCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	err = coord.WaitReady(readyCtx)
	cancel()
	if err != nil {
		return err
	}
	log.Printf("coordinator: %d workers ready: %s", len(coord.Peers()), strings.Join(coord.Peers(), ", "))

	cfg.Dispatcher = coord
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	return srv.Run(ctx)
}

// runWorker serves the fleet wire API until the context cancels, then
// shuts down gracefully: in-flight assignments get DrainGrace to
// finish (their results are what the coordinator is waiting on).
func runWorker(ctx context.Context, cfg server.Config, id string) error {
	if id == "" {
		id = "worker"
	}
	var store *harness.CheckpointStore
	if cfg.CheckpointDir != "" {
		var err error
		if store, err = harness.OpenCheckpointStore(cfg.CheckpointDir); err != nil {
			return err
		}
	}
	w := fleet.NewWorker(fleet.WorkerConfig{
		ID:             id,
		Store:          store,
		Retries:        cfg.Retries,
		RetryBaseDelay: cfg.RetryBaseDelay,
		CellTimeout:    cfg.CellTimeout,
		AllowFaults:    cfg.AllowFaults,
		Logf:           log.Printf,
	})

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	log.Printf("fleet worker %s: listening on %s", id, ln.Addr())

	hs := &http.Server{Handler: w.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("worker: %w", err)
	case <-ctx.Done():
	}

	grace := cfg.DrainGrace
	if grace <= 0 {
		grace = 10 * time.Second
	}
	log.Printf("fleet worker %s: draining (grace %v)", id, grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		hs.Close()
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	log.Printf("fleet worker %s: drained", id)
	return nil
}
