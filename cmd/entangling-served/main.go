// Command entangling-served runs the simulation job server: a
// long-lived HTTP service that accepts {configurations x workloads x
// windows} sweep jobs, executes them through the evaluation harness
// with content-addressed result caching and singleflight
// deduplication, streams per-cell progress over SSE, and drains
// gracefully on SIGTERM/SIGINT (stop admitting, finish or checkpoint
// in-flight cells, exit 0). See README.md, "Serving mode".
//
// Examples:
//
//	entangling-served -addr :8080 -checkpoint-dir /var/lib/entangling
//	entangling-served -addr 127.0.0.1:0 -queue 4 -workers 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"entangling/internal/server"
)

func main() {
	var cfg server.Config
	flag.StringVar(&cfg.Addr, "addr", ":8080", "listen address (use :0 for an ephemeral port)")
	flag.StringVar(&cfg.CheckpointDir, "checkpoint-dir", "", "persist completed cells here and serve warm restarts from it")
	flag.IntVar(&cfg.QueueCapacity, "queue", 16, "admitted-but-not-running job bound; beyond it submissions get 429")
	flag.IntVar(&cfg.Workers, "workers", 2, "concurrently running jobs")
	flag.IntVar(&cfg.CellParallelism, "cell-parallelism", 4, "concurrently resolving cells per job")
	flag.IntVar(&cfg.MaxCells, "max-cells", 512, "largest sweep one job may request")
	flag.Int64Var(&cfg.MaxBodyBytes, "max-body", 1<<20, "largest accepted submission body in bytes")
	flag.IntVar(&cfg.PerCategory, "per-category", 6, "CVP workloads per category in the registry")
	flag.IntVar(&cfg.Retries, "retries", 2, "per-cell retry budget")
	flag.DurationVar(&cfg.RetryBaseDelay, "retry-base-delay", 100*time.Millisecond, "backoff before a cell's first retry")
	flag.DurationVar(&cfg.CellTimeout, "cell-timeout", 0, "per-cell attempt deadline (0 = none)")
	flag.BoolVar(&cfg.AllowFaults, "allow-faults", false, "accept fault_plan in submissions (testing)")
	flag.DurationVar(&cfg.DrainGrace, "drain-grace", 10*time.Second, "how long a drain waits for running jobs before canceling them")
	flag.Parse()

	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if err := srv.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
