// Command paperfigs regenerates the tables and figures of the paper's
// evaluation section (§IV) on the synthetic workload suites.
//
// Examples:
//
//	paperfigs -fig 6                 # IPC vs storage (Figure 6)
//	paperfigs -fig all               # everything
//	paperfigs -fig 16 -csv out/      # CloudSuite figure + CSV dump
//	paperfigs -fig 6 -per-category 2 -warmup 500000 -measure 400000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"entangling"
	"entangling/internal/harness"
	"entangling/internal/workload"
)

func main() {
	var (
		fig        = flag.String("fig", "6", "which figure/table: 1,2,6,7,8,9,10,11,12,13,14,15,16,table4,physical,ext,headline,quality,all")
		perCat     = flag.Int("per-category", 6, "workloads per category in the CVP-like suite")
		warmup     = flag.Uint64("warmup", 2_000_000, "warm-up instructions per run")
		measure    = flag.Uint64("measure", 1_000_000, "measured instructions per run")
		points     = flag.Int("points", 11, "resampled points for the sorted-curve figures")
		csvDir     = flag.String("csv", "", "also write each table as CSV into this directory")
		jsonDir    = flag.String("json", "", "also write each table as JSON into this directory")
		metricsOut = flag.String("metrics-out", "", "write the main sweep's per-run metrics to this file (.csv for CSV, JSON otherwise)")

		checkpoint  = flag.String("checkpoint", "", "persist every completed sweep cell into this directory (crash-safe)")
		resume      = flag.Bool("resume", false, "reuse valid records from -checkpoint instead of re-running their cells")
		retries     = flag.Int("retries", 2, "re-run a failed sweep cell up to this many times")
		cellTimeout = flag.Duration("cell-timeout", 0, "abandon (and retry) any sweep cell running longer than this (0 = no deadline)")
		progress    = flag.Bool("progress", false, "log each sweep cell's lifecycle (start/retry/finish/fail) to stderr")
	)
	flag.Parse()
	if *resume && *checkpoint == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}

	// An interrupt cancels the sweep cooperatively: in-flight cells
	// stop at the next poll, completed cells stay checkpointed, and a
	// later -resume run picks up from there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := harness.Options{
		Warmup: *warmup, Measure: *measure, PerCategory: *perCat, Parallelism: 0,
		Retries: *retries, RetryBaseDelay: 100 * time.Millisecond, CellTimeout: *cellTimeout,
		Resume: *resume,
	}
	if *progress {
		opt.Progress = logProgress
	}
	if *checkpoint != "" {
		store, err := harness.OpenCheckpointStore(*checkpoint)
		if err != nil {
			fatal(err)
		}
		opt.Checkpoint = store
	}
	specs := workload.CVPSuite(*perCat)

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	emit := func(t *harness.Table, key string) {
		fmt.Println(t.String())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*csvDir, "fig"+key+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("(csv written to %s)\n\n", path)
		}
		if *jsonDir != "" {
			if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*jsonDir, "fig"+key+".json")
			if err := os.WriteFile(path, []byte(t.JSON()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("(json written to %s)\n\n", path)
		}
	}

	// Figures 1-2 run their own measurements.
	if all || want["1"] {
		t, err := harness.Fig01(specs, opt)
		if err != nil {
			fatal(err)
		}
		emit(t, "01")
	}
	if all || want["2"] {
		t, err := harness.Fig02(specs, opt)
		if err != nil {
			fatal(err)
		}
		emit(t, "02")
	}

	// The main sweep feeds Figures 6-10, Table IV, the quality table
	// and the metrics export.
	needMain := all || want["6"] || want["7"] || want["8"] || want["9"] || want["10"] ||
		want["table4"] || want["headline"] || want["quality"] || *metricsOut != ""
	if needMain {
		fmt.Fprintf(os.Stderr, "running main sweep: %d workloads x %d configurations...\n",
			len(specs), len(harness.StandardConfigurations()))
		suite, err := harness.RunSuiteCtx(ctx, specs, harness.StandardConfigurations(), opt)
		if err != nil {
			fatal(err)
		}
		if all || want["6"] {
			emit(harness.Fig06(suite), "06")
		}
		if all || want["7"] {
			emit(harness.Fig07(suite, *points), "07")
		}
		if all || want["8"] {
			emit(harness.Fig08(suite, *points), "08")
		}
		if all || want["9"] {
			emit(harness.Fig09(suite, *points), "09")
		}
		if all || want["10"] {
			emit(harness.Fig10(suite, *points), "10")
		}
		if all || want["table4"] {
			emit(harness.Table04(suite, entangling.DefaultEnergyModel()), "table4")
		}
		if all || want["headline"] {
			emit(harness.Headline(suite), "headline")
		}
		if all || want["quality"] {
			emit(harness.QualityTable(suite), "quality")
		}
		if *metricsOut != "" {
			if err := harness.WriteMetricsFile(*metricsOut, suite.Metrics()); err != nil {
				fatal(err)
			}
			fmt.Printf("(metrics written to %s)\n\n", *metricsOut)
		}
	}

	// Figure 11: ablation sweep.
	if all || want["11"] {
		fmt.Fprintln(os.Stderr, "running ablation sweep (Figure 11)...")
		suite, err := harness.RunSuiteCtx(ctx, specs, harness.AblationConfigurations(), opt)
		if err != nil {
			fatal(err)
		}
		emit(harness.Fig11(suite), "11")
	}

	// Figures 12-15: Entangling-internal statistics.
	if all || want["12"] || want["13"] || want["14"] || want["15"] {
		fmt.Fprintln(os.Stderr, "running Entangling statistics sweep (Figures 12-15)...")
		cfgs := []harness.Configuration{
			harness.Baseline,
			{Name: "entangling-2k", Prefetcher: "entangling-2k"},
			{Name: "entangling-4k", Prefetcher: "entangling-4k"},
			{Name: "entangling-8k", Prefetcher: "entangling-8k"},
		}
		suite, err := harness.RunSuiteCtx(ctx, specs, cfgs, opt)
		if err != nil {
			fatal(err)
		}
		sizes := []string{"entangling-2k", "entangling-4k", "entangling-8k"}
		if all || want["12"] {
			emit(harness.Fig12(suite, "entangling-4k"), "12")
		}
		if all || want["13"] {
			emit(harness.Fig13(suite, sizes), "13")
		}
		if all || want["14"] {
			emit(harness.Fig14(suite, sizes), "14")
		}
		if all || want["15"] {
			emit(harness.Fig15(suite, sizes), "15")
		}
	}

	// §IV-E: physical-address training.
	if all || want["physical"] {
		fmt.Fprintln(os.Stderr, "running physical-address sweep (Section IV-E)...")
		suite, err := harness.RunSuiteCtx(ctx, specs, harness.PhysicalConfigurations(), opt)
		if err != nil {
			fatal(err)
		}
		emit(harness.PhysicalTable(suite), "physical")
	}

	// Extensions: split/context/PQ studies beyond the paper's figures.
	if all || want["ext"] {
		fmt.Fprintln(os.Stderr, "running extension sweeps (split / context / PQ)...")
		split, err := harness.RunSuiteCtx(ctx, specs, harness.SplitConfigurations(), opt)
		if err != nil {
			fatal(err)
		}
		emit(harness.ExtSplitTable(split), "ext-split")
		ctxSweep, err := harness.RunSuiteCtx(ctx, specs, harness.ContextConfigurations(), opt)
		if err != nil {
			fatal(err)
		}
		emit(harness.ExtContextTable(ctxSweep), "ext-context")
		pq, err := harness.ExtPQSweep(*warmup, *measure)
		if err != nil {
			fatal(err)
		}
		emit(pq, "ext-pq")
		retire, err := harness.RunSuiteCtx(ctx, specs, harness.RetireConfigurations(), opt)
		if err != nil {
			fatal(err)
		}
		emit(harness.ExtRetireTable(retire), "ext-retire")
	}

	// Figure 16: CloudSuite.
	if all || want["16"] {
		fmt.Fprintln(os.Stderr, "running CloudSuite sweep (Figure 16)...")
		cloud := workload.CloudSuite()
		cfgs := []harness.Configuration{
			harness.Baseline,
			{Name: "nextline", Prefetcher: "nextline"},
			{Name: "sn4l", Prefetcher: "sn4l"},
			{Name: "mana-2k", Prefetcher: "mana-2k"},
			{Name: "mana-4k", Prefetcher: "mana-4k"},
			{Name: "entangling-2k", Prefetcher: "entangling-2k"},
			{Name: "entangling-4k", Prefetcher: "entangling-4k"},
			{Name: "ideal", IdealL1I: true},
		}
		suite, err := harness.RunSuiteCtx(ctx, cloud, cfgs, opt)
		if err != nil {
			fatal(err)
		}
		emit(harness.Fig16(suite), "16")
	}
}

// logProgress renders sweep lifecycle events for -progress. Fprintln
// with a single preformatted string keeps each event on one line even
// when workers emit concurrently.
func logProgress(ev harness.CellEvent) {
	cell := ev.Config + "/" + ev.Workload
	var line string
	switch ev.Type {
	case harness.CellStarted:
		line = fmt.Sprintf("cell %s: started", cell)
	case harness.CellRetried:
		line = fmt.Sprintf("cell %s: retrying (attempt %d)", cell, ev.Attempt)
	case harness.CellFinished:
		line = fmt.Sprintf("cell %s: finished in %v", cell, ev.Duration.Round(time.Millisecond))
	case harness.CellFailed:
		line = fmt.Sprintf("cell %s: FAILED after %d attempts: %v", cell, ev.Attempt, ev.Err)
	case harness.CellRestored:
		line = fmt.Sprintf("cell %s: restored from checkpoint", cell)
	default:
		return
	}
	fmt.Fprintln(os.Stderr, line)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperfigs:", err)
	os.Exit(1)
}
