// Command predict-smoke is the CI gate for the approximate fast path
// (internal/predict). It runs the repository's pinned benchmark
// mini-sweep exactly — training the model through the harness Observe
// hook on every completed cell — then answers the same cells from the
// model and checks two things the fast path must never violate:
//
//  1. The exact pass's metrics fingerprint is byte-identical to
//     cmd/bench's (training is a pure observer: it cannot perturb
//     simulation).
//  2. Conformal coverage on the served answers stays at or above
//     -min-coverage: the true metric lies inside the reported interval
//     for at least that fraction of predictions.
//
// The run is summarized in a versioned PREDICT-BENCH JSON document
// (exact vs. approximate wall-clock, fallback rate, coverage) written
// to -out, e.g. the checked-in BENCH_PR10.json.
//
// Examples:
//
//	predict-smoke -label PR10 -out BENCH_PR10.json
//	predict-smoke -check BENCH_PR10.json
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"entangling/internal/harness"
	"entangling/internal/predict"
	"entangling/internal/workload"
)

// DocSchemaVersion identifies the PREDICT-BENCH JSON layout.
const DocSchemaVersion = 1

// DocKind tags the document.
const DocKind = "entangling-predict-bench"

// Doc is the versioned record predict-smoke writes: one exact pass,
// one approximate pass over the same cells, and the coverage verdict.
type Doc struct {
	SchemaVersion int    `json:"schema_version"`
	Kind          string `json:"kind"`
	Label         string `json:"label"`

	// Sweep shape (the pinned cmd/bench mini-sweep).
	Cells     int      `json:"cells"`
	Configs   []string `json:"configs"`
	Workloads []string `json:"workloads"`
	Warmup    uint64   `json:"warmup"`
	Measure   uint64   `json:"measure"`

	// ExactMetricsSHA256 fingerprints the exact pass's metrics export;
	// CI asserts it equals cmd/bench's for the same sweep.
	ExactMetricsSHA256 string `json:"exact_metrics_sha256"`

	// Wall-clock of the exact sweep vs. answering every cell from the
	// model; Speedup is their ratio.
	ExactWallSeconds  float64 `json:"exact_wall_seconds"`
	ApproxWallSeconds float64 `json:"approx_wall_seconds"`
	Speedup           float64 `json:"speedup"`

	// Predicted/Fallback split the approximate pass: cells answered
	// inside the -max-rel-err budget vs. cells that would have fallen
	// back to exact simulation.
	Predicted    int     `json:"predicted"`
	Fallback     int     `json:"fallback"`
	FallbackRate float64 `json:"fallback_rate"`

	// Coverage is the fraction of served predictions whose intervals
	// contained the true metric for every tracked metric; the run fails
	// below MinCoverage.
	Coverage    float64 `json:"coverage"`
	MinCoverage float64 `json:"min_coverage"`

	// Model state after training.
	TrainSize       int `json:"train_size"`
	CalibrationSize int `json:"calibration_size"`
}

// Validate reports the first structural problem with a document.
func (d Doc) Validate() error {
	switch {
	case d.SchemaVersion != DocSchemaVersion:
		return fmt.Errorf("predict-smoke: schema_version %d, want %d", d.SchemaVersion, DocSchemaVersion)
	case d.Kind != DocKind:
		return fmt.Errorf("predict-smoke: kind %q, want %q", d.Kind, DocKind)
	case d.Label == "":
		return errors.New("predict-smoke: empty label")
	case d.Cells <= 0:
		return errors.New("predict-smoke: no cells")
	case len(d.ExactMetricsSHA256) != 64:
		return errors.New("predict-smoke: exact_metrics_sha256 is not a sha256 hex digest")
	case d.Predicted+d.Fallback != d.Cells:
		return fmt.Errorf("predict-smoke: predicted %d + fallback %d != cells %d", d.Predicted, d.Fallback, d.Cells)
	case d.FallbackRate < 0 || d.FallbackRate > 1:
		return fmt.Errorf("predict-smoke: fallback_rate %v outside [0,1]", d.FallbackRate)
	case d.Coverage < 0 || d.Coverage > 1:
		return fmt.Errorf("predict-smoke: coverage %v outside [0,1]", d.Coverage)
	}
	return nil
}

func main() {
	var (
		label       = flag.String("label", "dev", "document label (e.g. PR10)")
		out         = flag.String("out", "", "write the PREDICT-BENCH JSON document here (default stdout)")
		maxRelErr   = flag.Float64("max-rel-err", 0.25, "error budget: a cell whose widest relative interval half-width exceeds this counts as a fallback")
		minCoverage = flag.Float64("min-coverage", 0.9, "fail (exit 1) when interval coverage over served predictions falls below this")
		check       = flag.String("check", "", "validate an existing PREDICT-BENCH JSON file and exit")
	)
	flag.Parse()

	if *check != "" {
		doc, err := readDoc(*check)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: valid (label %s, coverage %.3f, fallback rate %.3f, %.1fx vs exact)\n",
			*check, doc.Label, doc.Coverage, doc.FallbackRate, doc.Speedup)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	doc, err := run(ctx, *label, *maxRelErr, *minCoverage)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr,
		"%s: exact %.2fs, approx %.4fs (%.0fx), %d/%d predicted (fallback rate %.3f), coverage %.3f (floor %.2f)\n",
		doc.Label, doc.ExactWallSeconds, doc.ApproxWallSeconds, doc.Speedup,
		doc.Predicted, doc.Cells, doc.FallbackRate, doc.Coverage, doc.MinCoverage)
	if doc.Coverage < doc.MinCoverage {
		fmt.Fprintf(os.Stderr, "predict-smoke: coverage %.3f below floor %.2f\n", doc.Coverage, doc.MinCoverage)
		os.Exit(1)
	}
}

// run executes the exact pass (training as it goes), then the
// approximate pass, and assembles the document.
func run(ctx context.Context, label string, maxRelErr, minCoverage float64) (Doc, error) {
	specs := harness.PinnedBenchSpecs()
	cfgs := harness.PinnedBenchConfigurations()
	opt := harness.PinnedBenchOptions()

	doc := Doc{
		SchemaVersion: DocSchemaVersion,
		Kind:          DocKind,
		Label:         label,
		Cells:         len(specs) * len(cfgs),
		Warmup:        opt.Warmup,
		Measure:       opt.Measure,
		MinCoverage:   minCoverage,
	}
	for _, c := range cfgs {
		doc.Configs = append(doc.Configs, c.Name)
	}
	for _, s := range specs {
		doc.Workloads = append(doc.Workloads, s.Name)
	}

	// Materialize traces up front so the exact wall-clock measures the
	// sweep itself, matching cmd/bench's methodology.
	cache := workload.NewTraceCache()
	opt.Traces = cache
	for _, s := range specs {
		if _, err := cache.Pin(s, opt.Warmup+opt.Measure); err != nil {
			return Doc{}, fmt.Errorf("predict-smoke: materializing %s: %w", s.Name, err)
		}
	}

	// Exact pass: the Observe hook trains the model on every completed
	// cell, exactly as a serving node does.
	model := predict.New(predict.Config{})
	opt.Observe = func(cfg harness.Configuration, spec workload.Spec, res harness.RunResult) {
		model.Observe(
			harness.CellFingerprint(cfg, spec, opt.Warmup, opt.Measure),
			predict.CellFeatures(cfg, spec, opt.Warmup, opt.Measure),
			predict.Targets(res),
		)
	}
	start := time.Now()
	s, err := harness.RunSuiteCtx(ctx, specs, cfgs, opt)
	doc.ExactWallSeconds = time.Since(start).Seconds()
	if err != nil {
		return Doc{}, fmt.Errorf("predict-smoke: exact sweep: %w", err)
	}

	var sb strings.Builder
	if err := harness.WriteMetricsJSON(&sb, s.Metrics()); err != nil {
		return Doc{}, err
	}
	sum := sha256.Sum256([]byte(sb.String()))
	doc.ExactMetricsSHA256 = hex.EncodeToString(sum[:])

	// Round-trip the model through its snapshot codec before answering:
	// the approximate pass below exercises the restored model, so a
	// codec regression fails this gate too.
	restored := predict.New(predict.Config{})
	snapBytes, err := predict.EncodeModelSnapshot(model.Snapshot())
	if err != nil {
		return Doc{}, fmt.Errorf("predict-smoke: encoding snapshot: %w", err)
	}
	snap, err := predict.DecodeModelSnapshot(snapBytes)
	if err != nil {
		return Doc{}, fmt.Errorf("predict-smoke: decoding snapshot: %w", err)
	}
	if err := restored.Restore(snap); err != nil {
		return Doc{}, fmt.Errorf("predict-smoke: restoring snapshot: %w", err)
	}

	// Approximate pass: answer every cell of the same sweep from the
	// restored model, scoring each served interval against the truth
	// from the exact pass.
	covered, served := 0, 0
	start = time.Now()
	for _, cfg := range cfgs {
		for _, spec := range specs {
			features := predict.CellFeatures(cfg, spec, opt.Warmup, opt.Measure)
			pred, ok := restored.Predict(features)
			if !ok || pred.MaxRelWidth() > maxRelErr {
				doc.Fallback++
				continue
			}
			served++
			res, found := s.Runs[cfg.Name][spec.Name]
			if !found {
				return Doc{}, fmt.Errorf("predict-smoke: exact result missing for %s/%s", cfg.Name, spec.Name)
			}
			if pred.Covers(predict.Targets(res)) {
				covered++
			}
		}
	}
	doc.ApproxWallSeconds = time.Since(start).Seconds()
	doc.Predicted = served
	doc.FallbackRate = float64(doc.Fallback) / float64(doc.Cells)
	if doc.ApproxWallSeconds > 0 {
		doc.Speedup = doc.ExactWallSeconds / doc.ApproxWallSeconds
	}
	if served > 0 {
		doc.Coverage = float64(covered) / float64(served)
	}
	if served == 0 {
		return Doc{}, errors.New("predict-smoke: model served no predictions (all cells fell back)")
	}
	doc.TrainSize = predTrainSize(snap)
	doc.CalibrationSize = len(snap.Examples) - doc.TrainSize
	return doc, nil
}

// predTrainSize counts the snapshot's non-calibration examples.
func predTrainSize(snap predict.ModelSnapshot) int {
	n := 0
	for _, ex := range snap.Examples {
		if !predict.IsCalibrationFingerprint(ex.Fingerprint) {
			n++
		}
	}
	return n
}

// readDoc strictly decodes one PREDICT-BENCH document.
func readDoc(path string) (Doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Doc{}, err
	}
	var d Doc
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return Doc{}, fmt.Errorf("%s: %w", path, err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return Doc{}, fmt.Errorf("%s: trailing data after document", path)
	}
	if err := d.Validate(); err != nil {
		return Doc{}, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
