// Command bench runs the repository's pinned benchmark mini-sweep and
// writes a versioned BENCH_*.json point, the durable record of the
// simulator's performance trajectory across PRs (see EXPERIMENTS.md,
// "Benchmark methodology").
//
// Examples:
//
//	bench -label PR2 -out BENCH_PR2.json
//	bench -label PR2 -iterations 5 -before BENCH_PR2.before.json -out BENCH_PR2.json
//	bench -check BENCH_PR2.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"entangling/internal/harness"
)

func main() {
	var (
		label      = flag.String("label", "dev", "benchmark point label (e.g. PR2)")
		iterations = flag.Int("iterations", 3, "sweep repetitions; the fastest provides the timings")
		forked     = flag.Bool("forked", false, "reuse warmup snapshots across iterations (forks each class's warmed machine instead of re-simulating its warmup; needs iterations >= 2 to time the forked steady state)")
		out        = flag.String("out", "", "write the BENCH JSON document to this file (default stdout)")
		beforePath = flag.String("before", "", "embed this previously measured point as the 'before' side")
		check      = flag.String("check", "", "validate an existing BENCH JSON file against the schema and exit")
	)
	flag.Parse()

	if *check != "" {
		f, err := os.Open(*check)
		if err != nil {
			fatal(err)
		}
		doc, err := harness.ReadBenchFile(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *check, err))
		}
		fmt.Printf("%s: valid (label %s, %.2fs wall, %.0f runs/s, %.1f allocs/run)\n",
			*check, doc.Label, doc.After.WallSeconds, doc.After.RunsPerSec, doc.After.AllocsPerRun)
		if doc.Before != nil {
			fmt.Printf("before: %.2fs wall -> speedup %.2fx\n", doc.Before.WallSeconds, doc.SpeedupVsBefore)
		}
		return
	}

	doc := harness.BenchFile{SchemaVersion: harness.BenchSchemaVersion, Label: *label}
	if *beforePath != "" {
		b, err := readPoint(*beforePath)
		if err != nil {
			fatal(err)
		}
		doc.Before = &b
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	run := harness.RunBenchCtx
	if *forked {
		run = harness.RunBenchForkedCtx
	}
	p, err := run(ctx, *label, *iterations)
	if err != nil {
		fatal(err)
	}
	doc.After = p
	if doc.Before != nil && p.WallSeconds > 0 {
		doc.SpeedupVsBefore = doc.Before.WallSeconds / p.WallSeconds
		if doc.Before.MetricsSHA256 != p.MetricsSHA256 {
			fmt.Fprintf(os.Stderr,
				"warning: metrics fingerprint changed vs before (%s -> %s); wall-clock comparison covers different simulated behaviour\n",
				doc.Before.MetricsSHA256[:12], p.MetricsSHA256[:12])
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := harness.WriteBenchFile(w, doc); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: %.2fs wall, %.0f runs/s, %.2fM instrs/s, %.1f allocs/run, peak RSS %.1f MB\n",
		*label, p.WallSeconds, p.RunsPerSec, p.InstrsPerSec/1e6, p.AllocsPerRun,
		float64(p.PeakRSSBytes)/1e6)
	if doc.SpeedupVsBefore > 0 {
		fmt.Fprintf(os.Stderr, "speedup vs before: %.2fx\n", doc.SpeedupVsBefore)
	}
}

// readPoint loads a bare point or the 'after' side of a full document.
func readPoint(path string) (harness.BenchPoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return harness.BenchPoint{}, err
	}
	defer f.Close()
	if doc, err := harness.ReadBenchFile(f); err == nil {
		return doc.After, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		return harness.BenchPoint{}, err
	}
	var p harness.BenchPoint
	dec := json.NewDecoder(f)
	if err := dec.Decode(&p); err != nil {
		return harness.BenchPoint{}, fmt.Errorf("%s: neither a BENCH document nor a bare point: %w", path, err)
	}
	if err := harness.ValidateBenchPoint(&p); err != nil {
		return harness.BenchPoint{}, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
