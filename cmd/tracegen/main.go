// Command tracegen generates synthetic instruction traces in the
// repository's binary trace format, and inspects existing trace files.
//
// Examples:
//
//	tracegen -category srv -seed 7 -n 1000000 -o srv7.trace -gzip
//	tracegen -inspect srv7.trace -head 20
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"entangling"
	"entangling/internal/trace"
	"entangling/internal/workload"
)

func main() {
	var (
		category = flag.String("category", "srv", "workload category: crypto|int|fp|srv|cloud")
		seed     = flag.Uint64("seed", 1, "workload seed")
		n        = flag.Uint64("n", 1_000_000, "instructions to generate")
		out      = flag.String("o", "", "output trace file (required unless -inspect)")
		gz       = flag.Bool("gzip", false, "compress the payload")
		inspect  = flag.String("inspect", "", "trace file to inspect instead of generating")
		head     = flag.Int("head", 10, "records to print when inspecting")
	)
	flag.Parse()

	if *inspect != "" {
		if err := inspectTrace(*inspect, *head); err != nil {
			fatal(err)
		}
		return
	}
	if *out == "" {
		fatal(fmt.Errorf("-o is required (or use -inspect)"))
	}

	p := entangling.VaryWorkload(entangling.WorkloadPreset(entangling.Category(*category)), *seed)
	p.Name = fmt.Sprintf("%s-%d", *category, *seed)
	prog, err := workload.BuildProgram(p)
	if err != nil {
		fatal(err)
	}

	// An interrupted generation must not leave a truncated trace file
	// masquerading as a complete one: on cancellation the partial
	// output is removed before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f, *gz)
	if err != nil {
		fatal(err)
	}
	src := workload.NewWalker(prog)
	done := ctx.Done()
	var in trace.Instruction
	for i := uint64(0); i < *n && src.Next(&in); i++ {
		if i&0xFFFF == 0 {
			select {
			case <-done:
				f.Close()
				os.Remove(*out)
				fatal(fmt.Errorf("interrupted after %d instructions; removed partial %s", i, *out))
			default:
			}
		}
		if err := w.Write(&in); err != nil {
			fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	st, _ := f.Stat()
	fmt.Printf("wrote %d instructions to %s (%d bytes, %.2f bytes/instr, code footprint %.1f KB)\n",
		w.Count(), *out, st.Size(), float64(st.Size())/float64(w.Count()),
		float64(prog.FootprintBytes)/1024)
}

func inspectTrace(path string, head int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var in trace.Instruction
	var count, branches, taken, loads, stores uint64
	lines := map[uint64]struct{}{}
	for r.Next(&in) {
		if count < uint64(head) {
			fmt.Println(trace.Describe(&in))
		}
		count++
		if in.Branch.IsBranch() {
			branches++
			if in.Taken {
				taken++
			}
		}
		if in.IsLoad {
			loads++
		}
		if in.IsStore {
			stores++
		}
		lines[in.PC>>6] = struct{}{}
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("---\n%d instructions, %d branches (%.1f%% taken), %d loads, %d stores, %d code lines (%.1f KB)\n",
		count, branches, 100*float64(taken)/float64(max(branches, 1)), loads, stores,
		len(lines), float64(len(lines))*64/1024)
	return nil
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
