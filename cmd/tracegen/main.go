// Command tracegen generates synthetic instruction traces in the
// repository's binary trace format, imports real ChampSim traces into
// it, and inspects existing trace files.
//
// Examples:
//
//	tracegen -category srv -seed 7 -n 1000000 -o srv7.trace -gzip
//	tracegen -import 600.perlbench.champsim.gz -o perlbench.trace -gzip
//	tracegen -inspect srv7.trace -head 20
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"entangling"
	"entangling/internal/trace"
	"entangling/internal/workload"
)

func main() {
	var (
		category = flag.String("category", "srv", "workload category: crypto|int|fp|srv|cloud")
		seed     = flag.Uint64("seed", 1, "workload seed")
		n        = flag.Uint64("n", 1_000_000, "instructions to generate")
		out      = flag.String("o", "", "output trace file (required unless -inspect)")
		gz       = flag.Bool("gzip", false, "compress the payload")
		inspect  = flag.String("inspect", "", "trace file to inspect instead of generating")
		head     = flag.Int("head", 10, "records to print when inspecting")
		imp      = flag.String("import", "", "ChampSim trace to convert instead of generating (gzip auto-detected; - for stdin)")
		synth    = flag.Bool("synth-data", false, "with -import: synthesize data addresses for memory-stripped records")
		impMax   = flag.Uint64("import-max", 0, "with -import: reject inputs beyond this many instructions (0 = unlimited)")
	)
	flag.Parse()

	if *inspect != "" {
		if err := inspectTrace(*inspect, *head); err != nil {
			fatal(err)
		}
		return
	}
	if *out == "" {
		fatal(fmt.Errorf("-o is required (or use -inspect)"))
	}
	if *imp != "" {
		if err := importChampSim(*imp, *out, *gz, *synth, *impMax); err != nil {
			fatal(err)
		}
		return
	}

	p := entangling.VaryWorkload(entangling.WorkloadPreset(entangling.Category(*category)), *seed)
	p.Name = fmt.Sprintf("%s-%d", *category, *seed)
	prog, err := workload.BuildProgram(p)
	if err != nil {
		fatal(err)
	}

	// An interrupted generation must not leave a truncated trace file
	// masquerading as a complete one: on cancellation the partial
	// output is removed before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f, *gz)
	if err != nil {
		fatal(err)
	}
	src := workload.NewWalker(prog)
	done := ctx.Done()
	var in trace.Instruction
	for i := uint64(0); i < *n && src.Next(&in); i++ {
		if i&0xFFFF == 0 {
			select {
			case <-done:
				f.Close()
				os.Remove(*out)
				fatal(fmt.Errorf("interrupted after %d instructions; removed partial %s", i, *out))
			default:
			}
		}
		if err := w.Write(&in); err != nil {
			fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	st, _ := f.Stat()
	fmt.Printf("wrote %d instructions to %s (%d bytes, %.2f bytes/instr, code footprint %.1f KB)\n",
		w.Count(), *out, st.Size(), float64(st.Size())/float64(w.Count()),
		float64(prog.FootprintBytes)/1024)
}

// importChampSim converts a ChampSim trace into ENTRACE1, streaming
// record by record so arbitrarily large inputs convert in constant
// memory. A malformed or over-limit input removes the partial output —
// a truncated trace must not masquerade as a complete one.
func importChampSim(src, out string, gz, synthData bool, maxInstrs uint64) error {
	var in io.Reader = os.Stdin
	if src != "-" {
		f, err := os.Open(src)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	cr, err := trace.NewChampSimReader(in, trace.ChampSimOptions{
		SynthesizeData: synthData,
		Limits:         trace.Limits{MaxInstrs: maxInstrs},
	})
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f, gz)
	if err != nil {
		return err
	}
	var rec trace.Instruction
	for cr.Next(&rec) {
		if err := w.Write(&rec); err != nil {
			f.Close()
			os.Remove(out)
			return err
		}
	}
	if err := cr.Err(); err != nil {
		f.Close()
		os.Remove(out)
		return fmt.Errorf("%w (removed partial %s)", err, out)
	}
	if err := w.Close(); err != nil {
		return err
	}
	if w.Count() == 0 {
		f.Close()
		os.Remove(out)
		return fmt.Errorf("%s contains no records (removed empty %s)", src, out)
	}
	st, _ := f.Stat()
	fmt.Printf("imported %d instructions from %s to %s (%d bytes, %.2f bytes/instr)\n",
		w.Count(), src, out, st.Size(), float64(st.Size())/float64(w.Count()))
	return nil
}

func inspectTrace(path string, head int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var in trace.Instruction
	var count, branches, taken, loads, stores uint64
	lines := map[uint64]struct{}{}
	for r.Next(&in) {
		if count < uint64(head) {
			fmt.Println(trace.Describe(&in))
		}
		count++
		if in.Branch.IsBranch() {
			branches++
			if in.Taken {
				taken++
			}
		}
		if in.IsLoad {
			loads++
		}
		if in.IsStore {
			stores++
		}
		lines[in.PC>>6] = struct{}{}
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("---\n%d instructions, %d branches (%.1f%% taken), %d loads, %d stores, %d code lines (%.1f KB)\n",
		count, branches, 100*float64(taken)/float64(max(branches, 1)), loads, stores,
		len(lines), float64(len(lines))*64/1024)
	return nil
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
