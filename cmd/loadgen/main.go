// Command loadgen replays a mixed job-submission workload against a
// running entangling-served node and writes a versioned LOAD_*.json
// report: admission-to-result latency percentiles, cache hit-rate,
// dedupe counts and an error taxonomy keyed by the server's machine-
// readable rejection reasons. CI uses it as a regression gate —
// checked-in thresholds on p99 latency and hit-rate fail the build
// when the server regresses.
//
// Examples:
//
//	loadgen -url http://127.0.0.1:8080 -out LOAD_dev.json
//	loadgen -url http://127.0.0.1:8080 -plan plan.json \
//	    -max-p99 2000 -min-hit-rate 0.30 -fail-on-transport
//	loadgen -check LOAD_dev.json -max-p99 2000   # re-gate an old report
//	loadgen -print-plan > plan.json              # pin the default plan
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"entangling/internal/loadgen"
)

func main() {
	var (
		url         = flag.String("url", "", "base URL of the node under load (required unless -check or -print-plan)")
		planFile    = flag.String("plan", "", "plan JSON file (default: the built-in mixed plan)")
		out         = flag.String("out", "", "write the report here (default: stdout only)")
		check       = flag.String("check", "", "skip the replay; gate an existing report file against the thresholds")
		printPlan   = flag.Bool("print-plan", false, "print the built-in default plan as JSON and exit")
		seed        = flag.Uint64("seed", 0, "override the plan's seed (0 = keep)")
		submissions = flag.Int("submissions", 0, "override the plan's submission count (0 = keep)")
		concurrency = flag.Int("concurrency", 0, "override the plan's per-lane concurrency (0 = keep)")
		retries     = flag.Int("retries", 2, "SDK transport-retry budget per call")

		maxP99          = flag.Float64("max-p99", 0, "fail when admission-to-result p99 exceeds this (ms, 0 = unchecked)")
		minHitRate      = flag.Float64("min-hit-rate", 0, "fail when the aggregate cell cache hit-rate falls below this (0 = unchecked)")
		failOnTransport = flag.Bool("fail-on-transport", false, "fail when any operation died on a transport error")
	)
	flag.Parse()

	thresholds := loadgen.Thresholds{
		MaxE2EP99MS:     *maxP99,
		MinCacheHitRate: *minHitRate,
		FailOnTransport: *failOnTransport,
	}

	if *printPlan {
		b, _ := json.MarshalIndent(loadgen.DefaultPlan(), "", "  ")
		fmt.Println(string(b))
		return
	}

	if *check != "" {
		rep, err := loadgen.LoadReportFile(*check)
		if err != nil {
			fatal(err)
		}
		if err := rep.Check(thresholds); err != nil {
			fatal(err)
		}
		fmt.Printf("loadgen: %s passes all thresholds\n", *check)
		return
	}

	if *url == "" {
		fatal(fmt.Errorf("loadgen: -url is required (or use -check / -print-plan)"))
	}

	plan := loadgen.DefaultPlan()
	if *planFile != "" {
		var err error
		if plan, err = loadgen.LoadPlanFile(*planFile); err != nil {
			fatal(err)
		}
	}
	if *seed != 0 {
		plan.Seed = *seed
	}
	if *submissions > 0 {
		plan.Submissions = *submissions
	}
	if *concurrency > 0 {
		plan.Concurrency = *concurrency
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	rep, err := loadgen.Run(ctx, loadgen.Options{
		BaseURL: *url,
		Plan:    plan,
		Retries: *retries,
		Logf:    log.Printf,
	})
	if err != nil {
		fatal(err)
	}

	b, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(b))
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fatal(err)
		}
		log.Printf("loadgen: report written to %s", *out)
	}
	if err := rep.Check(thresholds); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
