// Benchmarks regenerating every table and figure of the paper's
// evaluation section (§IV). Each benchmark runs the corresponding
// experiment (sweeps are cached and shared across benchmarks, so the
// full -bench=. run stays in the minutes) and prints the resulting
// table once, so `go test -bench=. -benchmem` output doubles as the
// reproduction log. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured numbers at full scale;
// cmd/paperfigs regenerates everything with larger windows.
package entangling_test

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"entangling"
	"entangling/internal/core"
	"entangling/internal/harness"
	"entangling/internal/workload"
)

// benchOptions trades some convergence for runtime; EXPERIMENTS.md
// records the full-scale numbers.
func benchOptions() harness.Options {
	return harness.Options{
		Warmup:      1_200_000,
		Measure:     600_000,
		PerCategory: 2,
		Parallelism: 0,
	}
}

func benchSpecs() []workload.Spec { return workload.CVPSuite(2) }

// Cached sweeps shared across benchmarks.
var (
	mainOnce  sync.Once
	mainSuite *harness.SuiteResults
	mainErr   error

	ablOnce  sync.Once
	ablSuite *harness.SuiteResults
	ablErr   error

	entOnce  sync.Once
	entSuite *harness.SuiteResults
	entErr   error

	physOnce  sync.Once
	physSuite *harness.SuiteResults
	physErr   error

	cloudOnce  sync.Once
	cloudSuite *harness.SuiteResults
	cloudErr   error

	printMu     sync.Mutex
	printedOnce = map[string]bool{}
)

func getMainSuite(b *testing.B) *harness.SuiteResults {
	mainOnce.Do(func() {
		mainSuite, mainErr = harness.RunSuite(benchSpecs(), harness.StandardConfigurations(), benchOptions())
	})
	if mainErr != nil {
		b.Fatal(mainErr)
	}
	return mainSuite
}

func getAblationSuite(b *testing.B) *harness.SuiteResults {
	ablOnce.Do(func() {
		ablSuite, ablErr = harness.RunSuite(benchSpecs(), harness.AblationConfigurations(), benchOptions())
	})
	if ablErr != nil {
		b.Fatal(ablErr)
	}
	return ablSuite
}

func getEntSuite(b *testing.B) *harness.SuiteResults {
	entOnce.Do(func() {
		cfgs := []harness.Configuration{
			harness.Baseline,
			{Name: "entangling-2k", Prefetcher: "entangling-2k"},
			{Name: "entangling-4k", Prefetcher: "entangling-4k"},
			{Name: "entangling-8k", Prefetcher: "entangling-8k"},
		}
		entSuite, entErr = harness.RunSuite(benchSpecs(), cfgs, benchOptions())
	})
	if entErr != nil {
		b.Fatal(entErr)
	}
	return entSuite
}

func getPhysSuite(b *testing.B) *harness.SuiteResults {
	physOnce.Do(func() {
		physSuite, physErr = harness.RunSuite(benchSpecs(), harness.PhysicalConfigurations(), benchOptions())
	})
	if physErr != nil {
		b.Fatal(physErr)
	}
	return physSuite
}

func getCloudSuite(b *testing.B) *harness.SuiteResults {
	cloudOnce.Do(func() {
		cfgs := []harness.Configuration{
			harness.Baseline,
			{Name: "nextline", Prefetcher: "nextline"},
			{Name: "sn4l", Prefetcher: "sn4l"},
			{Name: "mana-2k", Prefetcher: "mana-2k"},
			{Name: "mana-4k", Prefetcher: "mana-4k"},
			{Name: "entangling-2k", Prefetcher: "entangling-2k"},
			{Name: "entangling-4k", Prefetcher: "entangling-4k"},
			{Name: "ideal", IdealL1I: true},
		}
		cloudSuite, cloudErr = harness.RunSuite(workload.CloudSuite(), cfgs, benchOptions())
	})
	if cloudErr != nil {
		b.Fatal(cloudErr)
	}
	return cloudSuite
}

// printTable emits a table once per process so the benchmark log
// doubles as the reproduction output.
func printTable(t *harness.Table) {
	printMu.Lock()
	defer printMu.Unlock()
	if printedOnce[t.Title] {
		return
	}
	printedOnce[t.Title] = true
	fmt.Fprintln(os.Stdout)
	fmt.Fprintln(os.Stdout, t.String())
}

// BenchmarkFig01Timeliness regenerates Figure 1: the per-miss optimal
// look-ahead-distance distribution on the no-prefetch baseline.
func BenchmarkFig01Timeliness(b *testing.B) {
	opt := benchOptions()
	specs := benchSpecs()
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig01(specs, opt)
		if err != nil {
			b.Fatal(err)
		}
		printTable(t)
	}
}

// BenchmarkFig02LookaheadAccuracy regenerates Figure 2: accuracy of a
// fixed look-ahead-d prefetcher as d grows.
func BenchmarkFig02LookaheadAccuracy(b *testing.B) {
	opt := benchOptions()
	opt.Warmup /= 2
	opt.Measure /= 2
	specs := benchSpecs()
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig02(specs, opt)
		if err != nil {
			b.Fatal(err)
		}
		printTable(t)
	}
}

// BenchmarkFig06PerfVsStorage regenerates Figure 6: geomean speedup vs
// storage for the full §IV-B lineup.
func BenchmarkFig06PerfVsStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable(harness.Fig06(getMainSuite(b)))
	}
}

// BenchmarkFig07IPCCurves regenerates Figure 7 (sorted normalized IPC).
func BenchmarkFig07IPCCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable(harness.Fig07(getMainSuite(b), 9))
	}
}

// BenchmarkFig08MissRatio regenerates Figure 8 (sorted miss ratios).
func BenchmarkFig08MissRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable(harness.Fig08(getMainSuite(b), 9))
	}
}

// BenchmarkFig09Coverage regenerates Figure 9 (sorted coverage).
func BenchmarkFig09Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable(harness.Fig09(getMainSuite(b), 9))
	}
}

// BenchmarkFig10Accuracy regenerates Figure 10 (sorted accuracy).
func BenchmarkFig10Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable(harness.Fig10(getMainSuite(b), 9))
	}
}

// BenchmarkTable04Energy regenerates Table IV: per-level energy and
// normalized geomean.
func BenchmarkTable04Energy(b *testing.B) {
	model := entangling.DefaultEnergyModel()
	for i := 0; i < b.N; i++ {
		printTable(harness.Table04(getMainSuite(b), model))
	}
}

// BenchmarkFig11Ablation regenerates Figure 11: the BB / BBEnt /
// BBEntBB / Ent / BBEntBB-Merge breakdown.
func BenchmarkFig11Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable(harness.Fig11(getAblationSuite(b)))
	}
}

// BenchmarkFig12Compression regenerates Figure 12: destination storage
// format distribution.
func BenchmarkFig12Compression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable(harness.Fig12(getEntSuite(b), "entangling-4k"))
	}
}

// BenchmarkFig13Destinations regenerates Figure 13: destinations found
// per Entangled-table hit.
func BenchmarkFig13Destinations(b *testing.B) {
	sizes := []string{"entangling-2k", "entangling-4k", "entangling-8k"}
	for i := 0; i < b.N; i++ {
		printTable(harness.Fig13(getEntSuite(b), sizes))
	}
}

// BenchmarkFig14BBSize regenerates Figure 14: current-block size.
func BenchmarkFig14BBSize(b *testing.B) {
	sizes := []string{"entangling-2k", "entangling-4k", "entangling-8k"}
	for i := 0; i < b.N; i++ {
		printTable(harness.Fig14(getEntSuite(b), sizes))
	}
}

// BenchmarkFig15DstBBSize regenerates Figure 15: destination-block
// size.
func BenchmarkFig15DstBBSize(b *testing.B) {
	sizes := []string{"entangling-2k", "entangling-4k", "entangling-8k"}
	for i := 0; i < b.N; i++ {
		printTable(harness.Fig15(getEntSuite(b), sizes))
	}
}

// BenchmarkSecIVEPhysical regenerates §IV-E: Entangling trained on
// physical addresses.
func BenchmarkSecIVEPhysical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable(harness.PhysicalTable(getPhysSuite(b)))
	}
}

// BenchmarkFig16CloudSuite regenerates Figure 16: the CloudSuite-like
// workloads.
func BenchmarkFig16CloudSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable(harness.Fig16(getCloudSuite(b)))
	}
}

// BenchmarkTable01VirtualCompression exercises the Table I compression
// path (encode + decode of a destination under every virtual mode).
func BenchmarkTable01VirtualCompression(b *testing.B) {
	benchCompression(b, core.Virtual)
}

// BenchmarkTable02PhysicalCompression exercises the Table II
// compression path.
func BenchmarkTable02PhysicalCompression(b *testing.B) {
	benchCompression(b, core.Physical)
}

func benchCompression(b *testing.B, space core.AddressSpace) {
	rng := rand.New(rand.NewSource(1))
	srcs := make([]uint64, 1024)
	dsts := make([]uint64, 1024)
	for i := range srcs {
		srcs[i] = rng.Uint64()
		dsts[i] = srcs[i] ^ uint64(rng.Intn(1<<uint(rng.Intn(40)+1)))
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		k := i % len(srcs)
		for mode := 1; mode <= core.MaxMode(space); mode++ {
			sink += core.RoundTrip(space, mode, srcs[k], dsts[k])
		}
	}
	_ = sink
}

// BenchmarkSimulatorThroughput measures raw simulated instructions per
// second of the machine with the Entangling-4K prefetcher (Table III
// substrate performance, not a paper figure).
func BenchmarkSimulatorThroughput(b *testing.B) {
	p := workload.Preset(workload.Srv)
	p.Seed = 1
	cfg := harness.Configuration{Name: "entangling-4k", Prefetcher: "entangling-4k"}
	spec := workload.Spec{Name: "srv-bench", Params: p}
	b.ResetTimer()
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		r, err := harness.Run(cfg, spec, 0, 500_000, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		total += r.R.Instructions
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkExtSplitTable runs the paper's future-work study (§III-C3):
// basic-block sizes and entangled pairs in separate structures,
// compared against the unified table at each budget.
func BenchmarkExtSplitTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite := extSuite(b, "split", harness.SplitConfigurations())
		printTable(harness.ExtSplitTable(suite))
	}
}

// BenchmarkExtContext reproduces the paper's rejected design (§III-B1):
// replicating sources per call context overloads the Entangled table
// and loses performance — a negative result worth keeping checkable.
func BenchmarkExtContext(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite := extSuite(b, "ctx", harness.ContextConfigurations())
		printTable(harness.ExtContextTable(suite))
	}
}

// BenchmarkExtPQSweep quantifies §IV-D's closing remark: "our
// prefetcher would benefit from a larger prefetch queue (32 entries
// employed in our evaluation), as less prefetches would be discarded."
func BenchmarkExtPQSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.ExtPQSweep(1_200_000, 600_000)
		if err != nil {
			b.Fatal(err)
		}
		printTable(t)
	}
}

// Extension sweeps are cached like the figure sweeps.
var (
	extMu     sync.Mutex
	extSuites = map[string]*harness.SuiteResults{}
)

func extSuite(b *testing.B, key string, cfgs []harness.Configuration) *harness.SuiteResults {
	extMu.Lock()
	defer extMu.Unlock()
	if s, ok := extSuites[key]; ok {
		return s
	}
	s, err := harness.RunSuite(benchSpecs(), cfgs, benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	extSuites[key] = s
	return s
}

// BenchmarkExtRetireTrigger runs the §III-C1 prefetch-on-retire study:
// the wrong-path-safe trigger point and its timeliness cost.
func BenchmarkExtRetireTrigger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite := extSuite(b, "retire", harness.RetireConfigurations())
		printTable(harness.ExtRetireTable(suite))
	}
}

// BenchmarkHeadline summarizes the abstract-level claims (speedups per
// budget, gap to ideal, coverage, accuracy, hit rate) from the main
// sweep.
func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable(harness.Headline(getMainSuite(b)))
	}
}
