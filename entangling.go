// Package entangling is the public API of this reproduction of
// "A Cost-Effective Entangling Prefetcher for Instructions" (Ros &
// Jimborean, ISCA 2021).
//
// It exposes three layers:
//
//   - Single runs: build a workload (Workloads, CloudWorkloads, or a
//     custom Params), pick a configuration, and Run it on the simulated
//     machine to get IPC, miss-rate, coverage and accuracy numbers.
//   - Suites and figures: RunSuite sweeps configurations over workload
//     suites; the Fig*/Table* helpers reproduce every figure and table
//     of the paper's evaluation section.
//   - Extension: RegisterPrefetcher plugs a user-defined L1I prefetcher
//     (implementing Prefetcher against the event stream the simulated
//     L1I emits) into the same harness, so it can be compared against
//     the paper's lineup.
//
// All runs are deterministic functions of (workload seed,
// configuration).
package entangling

import (
	"io"

	"entangling/internal/cache"
	"entangling/internal/core"
	"entangling/internal/cpu"
	"entangling/internal/energy"
	"entangling/internal/harness"
	"entangling/internal/prefetch"
	"entangling/internal/stats"
	"entangling/internal/trace"
	"entangling/internal/workload"
)

// Core simulator types, re-exported for users of the public API.
type (
	// Prefetcher is the L1I prefetcher interface (the IPC-1-style hook
	// set). Implement it to plug a custom prefetcher into the harness.
	Prefetcher = prefetch.Prefetcher
	// Issuer lets a prefetcher enqueue prefetches into the L1I.
	Issuer = prefetch.Issuer
	// PrefetcherBase provides no-op hooks for embedding.
	PrefetcherBase = prefetch.Base
	// AccessEvent, FillEvent and EvictEvent form the L1I event stream
	// prefetchers observe.
	AccessEvent = cache.AccessEvent
	FillEvent   = cache.FillEvent
	EvictEvent  = cache.EvictEvent
	// BranchEvent is delivered for every branch the front-end predicts.
	BranchEvent = prefetch.BranchEvent

	// Results holds one run's measurements.
	Results = cpu.Results
	// PrefetchLifecycle breaks prefetches down by fate (timely / late /
	// early-evicted / inaccurate); Results.Lifecycle carries one.
	PrefetchLifecycle = stats.PrefetchLifecycle
	// StallBreakdown attributes front-end stall cycles to causes;
	// Results.Stalls carries one.
	StallBreakdown = stats.StallBreakdown
	// PrefetchFeedback is the lifecycle feedback (late/useless) the
	// simulator routes back to prefetchers implementing FeedbackSink.
	PrefetchFeedback = prefetch.Feedback

	// WorkloadSpec names a synthetic workload and its parameters.
	WorkloadSpec = workload.Spec
	// WorkloadParams fully describes a synthetic workload.
	WorkloadParams = workload.Params
	// Category is a workload class (crypto / int / fp / srv / cloud).
	Category = workload.Category

	// Configuration names a machine setup (prefetcher choice, ideal
	// L1I, larger L1I, physical training).
	Configuration = harness.Configuration
	// Options control suite runs (warmup, measurement, suite size).
	Options = harness.Options
	// SuiteResults indexes a configurations x workloads sweep.
	SuiteResults = harness.SuiteResults
	// Table is a rendered figure/table (text and CSV).
	Table = harness.Table
	// RunMetrics / SuiteMetrics form the machine-readable metrics
	// export schema (see EXPERIMENTS.md, "Metrics export").
	RunMetrics   = harness.RunMetrics
	SuiteMetrics = harness.SuiteMetrics

	// EnergyModel prices cache accesses (Table IV).
	EnergyModel = energy.Model

	// EntanglingConfig sizes a custom Entangling prefetcher instance.
	EntanglingConfig = core.Config
)

// Workload categories.
const (
	Crypto     = workload.Crypto
	Int        = workload.Int
	FP         = workload.FP
	Srv        = workload.Srv
	Cloud      = workload.Cloud
	JIT        = workload.JIT
	Micro      = workload.Micro
	Serverless = workload.Serverless
)

// RegisterPrefetcher adds a named prefetcher configuration to the
// registry used by Configuration.Prefetcher. Registering an existing
// name panics.
func RegisterPrefetcher(name string, factory func(Issuer) Prefetcher) {
	prefetch.Register(name, factory)
}

// Prefetchers lists the registered configuration names.
func Prefetchers() []string { return prefetch.Names() }

// Workloads returns the CVP-like synthetic suite: perCategory
// workloads in each of crypto, int, fp and srv (the stand-in for the
// paper's 959 CVP traces).
func Workloads(perCategory int) []WorkloadSpec { return workload.CVPSuite(perCategory) }

// CloudWorkloads returns the four CloudSuite-like workloads of
// Figure 16.
func CloudWorkloads() []WorkloadSpec { return workload.CloudSuite() }

// AdversarialWorkloads returns the stress-test suite: JIT-style code
// relocation, interrupt-heavy microservice fan-out, and serverless
// cold-start restarts — shapes built to punish instruction prefetchers.
func AdversarialWorkloads() []WorkloadSpec { return workload.AdversarialSuite() }

// WorkloadPreset returns the base parameters of a category; Vary
// derives seeded variants.
func WorkloadPreset(c Category) WorkloadParams { return workload.Preset(c) }

// VaryWorkload derives a seeded variant of base parameters.
func VaryWorkload(p WorkloadParams, seed uint64) WorkloadParams { return workload.Vary(p, seed) }

// NewEntangling builds an Entangling prefetcher instance with a custom
// configuration (see Entangling2K/4K/8K for the paper's settings).
func NewEntangling(cfg EntanglingConfig, issuer Issuer) Prefetcher { return core.New(cfg, issuer) }

// The paper's Entangling configurations.
var (
	Entangling2K = core.Config2K(core.Virtual)
	Entangling4K = core.Config4K(core.Virtual)
	Entangling8K = core.Config8K(core.Virtual)
)

// Baseline is the no-prefetcher configuration.
var Baseline = harness.Baseline

// StandardConfigurations returns the paper's §IV-B lineup (Figure 6).
func StandardConfigurations() []Configuration { return harness.StandardConfigurations() }

// CompactConfigurations returns the sub-64KB lineup of Figures 7-10.
func CompactConfigurations() []Configuration { return harness.CompactConfigurations() }

// DefaultOptions returns paper-scale run windows; QuickOptions returns
// a fast setting for smoke runs and benchmarks.
func DefaultOptions() Options { return harness.DefaultOptions() }

// QuickOptions returns reduced windows for smoke runs.
func QuickOptions() Options { return harness.QuickOptions() }

// Run executes one configuration over one workload with the given
// instruction windows (warmup discarded, measure measured).
func Run(cfg Configuration, w WorkloadSpec, warmup, measure uint64) (Results, error) {
	r, err := harness.Run(cfg, w, warmup, measure, nil, nil)
	if err != nil {
		return Results{}, err
	}
	return r.R, nil
}

// RunSuite sweeps configurations over workloads.
func RunSuite(specs []WorkloadSpec, cfgs []Configuration, opt Options) (*SuiteResults, error) {
	return harness.RunSuite(specs, cfgs, opt)
}

// DefaultEnergyModel returns the 22nm per-access energy constants.
func DefaultEnergyModel() EnergyModel { return energy.Default22nm() }

// Figure and table reproductions (see DESIGN.md for the experiment
// index). The suite passed in must have been produced by RunSuite with
// the appropriate configurations.
// QualityTable renders the per-configuration prefetch-lifecycle and
// stall-attribution summary of a sweep.
var QualityTable = harness.QualityTable

var (
	Fig06   = harness.Fig06
	Fig07   = harness.Fig07
	Fig08   = harness.Fig08
	Fig09   = harness.Fig09
	Fig10   = harness.Fig10
	Fig11   = harness.Fig11
	Fig12   = harness.Fig12
	Fig13   = harness.Fig13
	Fig14   = harness.Fig14
	Fig15   = harness.Fig15
	Fig16   = harness.Fig16
	Table04 = harness.Table04
)

// Fig01 and Fig02 run their own oracle/look-ahead measurements.
func Fig01(specs []WorkloadSpec, opt Options) (*Table, error) { return harness.Fig01(specs, opt) }

// Fig02 measures accuracy of fixed look-ahead prefetching.
func Fig02(specs []WorkloadSpec, opt Options) (*Table, error) { return harness.Fig02(specs, opt) }

// TraceSource is a stream of dynamic instructions; trace files opened
// with OpenTrace and in-memory streams both implement it.
type TraceSource = trace.Source

// OpenTrace opens a binary trace stream written by the trace Writer
// (see cmd/tracegen).
func OpenTrace(r io.Reader) (TraceSource, error) { return trace.NewReader(r) }

// RunSource executes one configuration over an arbitrary instruction
// source (for example a trace file). The source is consumed once, so
// baseline comparisons need a second copy of the stream.
func RunSource(cfg Configuration, src TraceSource, warmup, measure uint64) (Results, error) {
	r, err := harness.RunSource(cfg, src, warmup, measure)
	if err != nil {
		return Results{}, err
	}
	return r.R, nil
}
