package harness

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"entangling/internal/cache"
	"entangling/internal/oracle"
	"entangling/internal/workload"
)

// The metamorphic battery holds the sweep to relations that must be
// true of any correct execution layer, independent of what the
// simulated numbers are: permuting the sweep's inputs or its worker
// count must not change any cell, and an independent oracle's counters
// must agree with the cache's.

// metamorphicConfigurations is every baseline prefetcher plus the
// paper's, the cache-growth variants and ideal — the full Figure 6
// lineup, so an ordering bug in any prefetcher's state shows up here.
func metamorphicConfigurations() []Configuration {
	return StandardConfigurations()
}

func metamorphicOptions() Options {
	return Options{Warmup: 60_000, Measure: 40_000, Parallelism: 2}
}

// reverse returns a reversed copy of s.
func reverse[T any](s []T) []T {
	out := make([]T, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

// TestSuitePermutationInvariance: per-cell results are a function of
// (configuration, workload, windows) alone — reordering the spec and
// configuration lists, or changing the worker count, must reproduce
// every cell exactly. Table-driven over the full configuration lineup.
func TestSuitePermutationInvariance(t *testing.T) {
	specs := workload.CVPSuite(1)
	cfgs := metamorphicConfigurations()
	opt := metamorphicOptions()

	ref, err := RunSuite(specs, cfgs, opt)
	if err != nil {
		t.Fatal(err)
	}

	variants := []struct {
		name  string
		specs []workload.Spec
		cfgs  []Configuration
		par   int
	}{
		{"reversed-workloads", reverse(specs), cfgs, opt.Parallelism},
		{"reversed-configs", specs, reverse(cfgs), opt.Parallelism},
		{"reversed-both", reverse(specs), reverse(cfgs), opt.Parallelism},
		{"serial", specs, cfgs, 1},
		{"wide", specs, cfgs, 8},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			o := opt
			o.Parallelism = v.par
			got, err := RunSuite(v.specs, v.cfgs, o)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range cfgs {
				c := c
				t.Run(c.Name, func(t *testing.T) {
					for _, s := range specs {
						if !reflect.DeepEqual(got.Runs[c.Name][s.Name], ref.Runs[c.Name][s.Name]) {
							t.Errorf("cell %s/%s changed under %s", c.Name, s.Name, v.name)
						}
					}
				})
			}
		})
	}
}

// countingOracle wraps the lookahead oracle with an independent count
// of the demanded fills it classified, for cross-checking against both
// the oracle's own histogram and the cache's statistics.
type countingOracle struct {
	*oracle.LookaheadOracle
	demandedFills uint64
}

func (c *countingOracle) OnFill(ev cache.FillEvent) {
	if ev.Demanded {
		c.demandedFills++
	}
	c.LookaheadOracle.OnFill(ev)
}

// TestOracleCrossChecksCacheStats: the oracle observes the same run as
// the cache, so their books must balance per cell — every demanded
// fill classified exactly once, the timely-fraction curve a cumulative
// distribution, and the cache's own lifecycle counters within their
// structural bounds. Table-driven over the baseline prefetchers.
func TestOracleCrossChecksCacheStats(t *testing.T) {
	specs := workload.CVPSuite(1)
	opt := metamorphicOptions()
	for _, cfg := range metamorphicConfigurations() {
		if cfg.IdealL1I {
			continue // an always-hit L1I has no fills to classify
		}
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			for _, spec := range specs {
				co := &countingOracle{LookaheadOracle: oracle.New()}
				r, err := Run(cfg, spec, opt.Warmup, opt.Measure, co, co.OnBranch)
				if err != nil {
					t.Fatal(err)
				}

				// Every demanded fill the oracle saw landed in exactly one
				// distance bucket.
				if got := co.Distances.Total(); got != co.demandedFills {
					t.Errorf("%s/%s: oracle classified %d fills, saw %d demanded",
						cfg.Name, spec.Name, got, co.demandedFills)
				}
				// The L1I reports misses over the whole run (warmup +
				// measure); each demand miss becomes one demanded fill.
				if co.demandedFills == 0 {
					t.Errorf("%s/%s: oracle saw no demanded fills", cfg.Name, spec.Name)
				}

				// TimelyFraction is a CDF over distances: within [0,1] and
				// non-decreasing.
				tf := co.TimelyFraction()
				prev := 0.0
				for d, f := range tf {
					if f < prev || f < 0 || f > 1 {
						t.Fatalf("%s/%s: TimelyFraction not a CDF at distance %d: %v",
							cfg.Name, spec.Name, d+1, tf)
					}
					prev = f
				}

				// Prefetch hit-rate bounds. Counters are measure-window
				// deltas, so only same-event bounds hold: a timely
				// prefetch hit is itself a demand hit, and a late
				// prefetch merges into a demand miss, in the same cycle
				// each is counted.
				l1i := r.R.L1I
				if l1i.TimelyPrefetchHits > l1i.Hits {
					t.Errorf("%s/%s: timely prefetch hits %d exceed demand hits %d",
						cfg.Name, spec.Name, l1i.TimelyPrefetchHits, l1i.Hits)
				}
				if l1i.LatePrefetches > l1i.Misses {
					t.Errorf("%s/%s: late prefetches %d exceed demand misses %d",
						cfg.Name, spec.Name, l1i.LatePrefetches, l1i.Misses)
				}
				if lc := r.R.Lifecycle; lc.EarlyEvicted > lc.EvictedUnused {
					t.Errorf("%s/%s: early-evicted %d exceeds evicted-unused %d",
						cfg.Name, spec.Name, lc.EarlyEvicted, lc.EvictedUnused)
				}
				if r.R.L1I.Hits > r.R.L1I.Accesses {
					t.Errorf("%s/%s: hits %d exceed accesses %d",
						cfg.Name, spec.Name, r.R.L1I.Hits, r.R.L1I.Accesses)
				}
			}
		})
	}
}

// TestCanceledSuiteIsDistinguishable is the satellite fix's test: a
// sweep abandoned by context cancellation reports ErrCellCanceled on
// its unfinished cells — typed, and distinct from genuine failures.
func TestCanceledSuiteIsDistinguishable(t *testing.T) {
	specs := workload.CVPSuite(1)
	cfgs := []Configuration{Baseline, {Name: "entangling-2k", Prefetcher: "entangling-2k"}}
	opt := metamorphicOptions()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before any cell starts
	s, err := RunSuiteCtx(ctx, specs, cfgs, opt)
	if err == nil {
		t.Fatal("canceled sweep returned no error")
	}
	if !errors.Is(err, ErrCellCanceled) {
		t.Fatalf("canceled sweep's error is not ErrCellCanceled: %v", err)
	}
	if len(s.Failed) != len(specs)*len(cfgs) {
		t.Errorf("%d cells failed, want all %d", len(s.Failed), len(specs)*len(cfgs))
	}
	for _, ce := range s.Failed {
		if !ce.Canceled() {
			t.Errorf("cell %s/%s not marked canceled: %v", ce.Config, ce.Workload, ce.Err)
		}
	}

	// The contrast case: a genuinely failing cell must NOT look
	// canceled.
	bad := []Configuration{{Name: "bogus", Prefetcher: "no-such-prefetcher"}}
	s2, err2 := RunSuite(specs, bad, opt)
	if err2 == nil {
		t.Fatal("bogus prefetcher ran")
	}
	if errors.Is(err2, ErrCellCanceled) {
		t.Error("genuine failure misreported as cancellation")
	}
	for _, ce := range s2.Failed {
		if ce.Canceled() {
			t.Errorf("failed cell %s/%s misreported as canceled", ce.Config, ce.Workload)
		}
	}
}

// TestMidSweepCancellation: canceling while cells are in flight leaves
// a partial sweep whose completed cells are intact and whose abandoned
// cells are all typed as canceled — no cell is silently dropped.
func TestMidSweepCancellation(t *testing.T) {
	specs := workload.CVPSuite(1)
	cfgs := []Configuration{Baseline, {Name: "nextline", Prefetcher: "nextline"}}
	opt := metamorphicOptions()
	opt.Parallelism = 2

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	opt.CellHook = func(config, wl string) error {
		once.Do(func() { close(started) })
		return nil
	}
	go func() {
		<-started
		cancel()
	}()
	s, err := RunSuiteCtx(ctx, specs, cfgs, opt)
	if err == nil {
		// The sweep can win the race and finish; that is not a failure
		// of the cancellation contract, just an uninteresting run.
		t.Skip("sweep completed before cancellation landed")
	}
	if !errors.Is(err, ErrCellCanceled) {
		t.Fatalf("mid-sweep cancellation yielded a non-canceled error: %v", err)
	}
	completed := 0
	for _, c := range cfgs {
		for _, sp := range specs {
			if _, ok := s.Runs[c.Name][sp.Name]; ok {
				completed++
			}
		}
	}
	if completed+len(s.Failed) != len(specs)*len(cfgs) {
		t.Errorf("cells unaccounted for: %d completed + %d failed != %d",
			completed, len(s.Failed), len(specs)*len(cfgs))
	}
}

// TestCellTimeoutRetries: a cell attempt past its deadline is
// abandoned and retried; when the slowness was transient the retry
// saves the cell.
func TestCellTimeoutRetries(t *testing.T) {
	specs := workload.CVPSuite(1)[:1]
	cfgs := []Configuration{Baseline}
	opt := metamorphicOptions()
	// A tiny window keeps a clean attempt far below the deadline even
	// under -race, where simulation runs an order of magnitude slower;
	// the injected stall exceeds the deadline threefold, so which
	// attempt trips it never depends on machine speed.
	opt.Warmup, opt.Measure = 2_000, 2_000
	opt.CellTimeout = 30 * time.Second
	opt.Retries = 1
	var calls int
	opt.CellHook = func(config, wl string) error {
		calls++
		if calls == 1 {
			time.Sleep(1500 * time.Millisecond) // transient stall
		}
		return nil
	}

	// A generous deadline lets every attempt through: the deadline path
	// must be invisible to a healthy sweep.
	if _, err := RunSuite(specs, cfgs, opt); err != nil {
		t.Fatalf("healthy sweep tripped its deadline: %v", err)
	}

	// A deadline shorter than the injected stall kills attempt 1; the
	// un-stalled retry completes within the same deadline.
	calls = 0
	opt.CellTimeout = 500 * time.Millisecond
	opt.RetryBaseDelay = 0
	s, err := RunSuite(specs, cfgs, opt)
	if err != nil {
		t.Fatalf("deadline retry did not save the cell: %v", err)
	}
	if calls != 2 {
		t.Errorf("cell ran %d attempts, want 2", calls)
	}
	if _, ok := s.Runs[cfgs[0].Name][specs[0].Name]; !ok {
		t.Error("saved cell missing from results")
	}
}
