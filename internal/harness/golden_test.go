package harness

import (
	"bytes"
	"strings"
	"testing"

	"entangling/internal/workload"
)

// goldenMetrics runs a fixed tiny sweep and serializes its metrics.
func goldenMetrics(t *testing.T, parallelism int) []byte {
	t.Helper()
	specs := workload.CVPSuite(1)
	cfgs := []Configuration{
		Baseline,
		{Name: "nextline", Prefetcher: "nextline"},
		{Name: "djolt", Prefetcher: "djolt"},
		{Name: "entangling-2k", Prefetcher: "entangling-2k"},
	}
	opt := tinyOptions()
	opt.Parallelism = parallelism
	s, err := RunSuite(specs, cfgs, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, s.Metrics()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenDeterminism: the full metrics export — IPC, lifecycle
// fates, stall attribution, everything — must be byte-identical across
// repeated runs and across worker counts. This is the strongest
// statement the repo can make that simulation results do not depend on
// goroutine scheduling.
func TestGoldenDeterminism(t *testing.T) {
	serial := goldenMetrics(t, 1)
	again := goldenMetrics(t, 1)
	if !bytes.Equal(serial, again) {
		t.Fatal("serial run not reproducible with itself")
	}
	wide := goldenMetrics(t, 8)
	if !bytes.Equal(serial, wide) {
		t.Fatal("Parallelism 1 vs 8 metrics differ: scheduling leaked into results")
	}
}

// TestRunSuiteCollectsAllErrors: a sweep where several configurations
// fail must report every failure, not just the first (the error channel
// used to drop all but one).
func TestRunSuiteCollectsAllErrors(t *testing.T) {
	specs := workload.CVPSuite(1)[:1]
	cfgs := []Configuration{
		{Name: "bogus-a", Prefetcher: "no-such-prefetcher-a"},
		{Name: "bogus-b", Prefetcher: "no-such-prefetcher-b"},
	}
	_, err := RunSuite(specs, cfgs, tinyOptions())
	if err == nil {
		t.Fatal("RunSuite succeeded with unknown prefetchers")
	}
	msg := err.Error()
	for _, want := range []string{"no-such-prefetcher-a", "no-such-prefetcher-b"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error dropped a failure; missing %q in:\n%s", want, msg)
		}
	}
	// Each failure names its (configuration, workload) cell.
	for _, want := range []string{"cell bogus-a/" + specs[0].Name, "cell bogus-b/" + specs[0].Name} {
		if !strings.Contains(msg, want) {
			t.Errorf("error lacks cell context; missing %q in:\n%s", want, msg)
		}
	}
	if !strings.Contains(msg, "2 of 2 runs failed") {
		t.Errorf("error lacks failure count: %s", msg)
	}
}

// TestRunSuiteErrorDeterministic: the aggregated error message must not
// depend on which worker hit its failure first.
func TestRunSuiteErrorDeterministic(t *testing.T) {
	specs := workload.CVPSuite(1)[:2]
	cfgs := []Configuration{
		{Name: "bogus-a", Prefetcher: "no-such-prefetcher-a"},
		{Name: "bogus-b", Prefetcher: "no-such-prefetcher-b"},
	}
	opt := tinyOptions()
	opt.Parallelism = 4
	_, err1 := RunSuite(specs, cfgs, opt)
	_, err2 := RunSuite(specs, cfgs, opt)
	if err1 == nil || err2 == nil {
		t.Fatal("expected failures")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("error message depends on scheduling:\n%s\nvs\n%s", err1, err2)
	}
}
