package harness

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"entangling/internal/faultinject"
	"entangling/internal/workload"
)

// sampleRecord builds a realistic record for codec tests.
func sampleRecord() CellRecord {
	r := RunResult{Config: "entangling-2k", Workload: "srv-00", Category: workload.Srv}
	r.R.PrefetcherName = "entangling-2k"
	r.R.StorageBits = 171008
	r.R.Instructions = 100_000
	r.R.Cycles = 43_217
	r.R.IPC = 2.3139033274175323 // full-precision float must round-trip
	r.R.L1I.Accesses = 31_222
	r.R.L1I.Hits = 30_000
	r.R.L1I.Misses = 1222
	r.R.Lifecycle.Timely = 812
	r.R.Stalls.L1IMiss = 5123
	spec := workload.CVPSuite(1)[3]
	cfg := Configuration{Name: "entangling-2k", Prefetcher: "entangling-2k"}
	return CellRecord{
		SchemaVersion: CheckpointSchemaVersion,
		Fingerprint:   CellFingerprint(cfg, spec, 150_000, 100_000),
		Config:        "entangling-2k",
		Workload:      "srv-00",
		Result:        r,
	}
}

func TestCellRecordRoundTrip(t *testing.T) {
	rec := sampleRecord()
	b, err := EncodeCellRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCellRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("record changed in round trip:\ngot  %+v\nwant %+v", got, rec)
	}
}

func TestCellFingerprintSensitivity(t *testing.T) {
	specs := workload.CVPSuite(1)
	cfg := Configuration{Name: "entangling-2k", Prefetcher: "entangling-2k"}
	base := CellFingerprint(cfg, specs[0], 1000, 500)

	if got := CellFingerprint(cfg, specs[0], 1000, 500); got != base {
		t.Error("fingerprint not deterministic")
	}
	changed := map[string]string{
		"workload": CellFingerprint(cfg, specs[1], 1000, 500),
		"warmup":   CellFingerprint(cfg, specs[0], 2000, 500),
		"measure":  CellFingerprint(cfg, specs[0], 1000, 600),
		"config":   CellFingerprint(Configuration{Name: "entangling-2k", Prefetcher: "entangling-2k", Physical: true}, specs[0], 1000, 500),
	}
	for what, fp := range changed {
		if fp == base {
			t.Errorf("changing the %s did not change the fingerprint", what)
		}
	}
	// A config differing only in non-Name fields must still differ: the
	// fingerprint keys the full configuration, not its label.
	alias := Configuration{Name: "entangling-2k", Prefetcher: "entangling-4k"}
	if CellFingerprint(alias, specs[0], 1000, 500) == base {
		t.Error("fingerprint keyed by name only")
	}
}

func TestCheckpointStoreSaveLoad(t *testing.T) {
	store, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord()
	if _, ok, err := store.Load(rec.Fingerprint); ok || err != nil {
		t.Fatalf("empty store Load = ok %v, err %v", ok, err)
	}
	if err := store.Save(rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := store.Load(rec.Fingerprint)
	if err != nil || !ok {
		t.Fatalf("Load after Save: ok %v, err %v", ok, err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("loaded record differs:\ngot  %+v\nwant %+v", got, rec)
	}
	if n, err := store.Count(); err != nil || n != 1 {
		t.Errorf("Count = %d, %v", n, err)
	}
	// No temp droppings left behind.
	if tmps, _ := filepath.Glob(filepath.Join(store.Dir(), "*.tmp")); len(tmps) != 0 {
		t.Errorf("stale temp files: %v", tmps)
	}
}

// TestCheckpointStoreSaveErrorLeavesNoTemp: a Save that fails at any
// stage — encoding, writing, or committing the rename — must clean up
// after itself; the store directory never accumulates .tmp files that
// a later crash-recovery scan would have to reason about.
func TestCheckpointStoreSaveErrorLeavesNoTemp(t *testing.T) {
	store, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	noTemps := func(when string) {
		t.Helper()
		if tmps, _ := filepath.Glob(filepath.Join(store.Dir(), "*.tmp")); len(tmps) != 0 {
			t.Fatalf("%s left temp files behind: %v", when, tmps)
		}
	}

	// Encode failure: rejected before any file is touched.
	bad := sampleRecord()
	bad.Fingerprint = ""
	if err := store.Save(bad); err == nil {
		t.Fatal("Save accepted a record without a fingerprint")
	}
	noTemps("encode failure")

	// Commit failure: the destination path is occupied by a non-empty
	// directory, so the rename cannot succeed no matter the platform
	// or privilege level. The written temp file must be removed.
	rec := sampleRecord()
	final := filepath.Join(store.Dir(), rec.Fingerprint+".ckpt")
	if err := os.MkdirAll(filepath.Join(final, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(rec); err == nil {
		t.Fatal("Save reported success renaming onto a non-empty directory")
	}
	noTemps("commit failure")

	// With the obstruction gone the same Save succeeds and is loadable.
	if err := os.RemoveAll(final); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(rec); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := store.Load(rec.Fingerprint); !ok || err != nil {
		t.Fatalf("Load after recovered Save: ok %v, err %v", ok, err)
	}
	noTemps("successful save")
}

// TestCheckpointStoreQuarantinesCorruption: a corrupt or truncated
// record must be quarantined (cell re-runs), never returned as a
// result.
func TestCheckpointStoreQuarantinesCorruption(t *testing.T) {
	inj := faultinject.New(faultinject.Plan{Seed: 7})
	rec := sampleRecord()
	valid, err := EncodeCellRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"bitflips":  inj.CorruptRecord,
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"empty":     func(b []byte) []byte { return nil },
		"garbage":   func(b []byte) []byte { return []byte("not a checkpoint at all") },
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			store, err := OpenCheckpointStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(store.Dir(), rec.Fingerprint+".ckpt")
			if err := os.WriteFile(path, corrupt(valid), 0o644); err != nil {
				t.Fatal(err)
			}
			_, ok, err := store.Load(rec.Fingerprint)
			if err != nil {
				t.Fatalf("corrupt record surfaced an error instead of quarantine: %v", err)
			}
			if ok {
				t.Fatal("corrupt record was merged as a valid result")
			}
			if store.Quarantined() != 1 {
				t.Errorf("Quarantined = %d, want 1", store.Quarantined())
			}
			if _, err := os.Stat(path + ".bad"); err != nil {
				t.Errorf("corrupt record not set aside: %v", err)
			}
			// The cell slot is free again: a fresh Save must succeed and load.
			if err := store.Save(rec); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := store.Load(rec.Fingerprint); !ok {
				t.Error("re-saved record not loadable")
			}
		})
	}
}

// TestCheckpointStoreRejectsForeignFingerprint: a record stored under
// the wrong key (e.g. a hand-renamed file) must not resume that cell.
func TestCheckpointStoreRejectsForeignFingerprint(t *testing.T) {
	store, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord()
	b, err := EncodeCellRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	other := strings.Repeat("f", len(rec.Fingerprint))
	if err := os.WriteFile(filepath.Join(store.Dir(), other+".ckpt"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := store.Load(other); ok {
		t.Fatal("record accepted under a foreign fingerprint")
	}
	if store.Quarantined() != 1 {
		t.Errorf("Quarantined = %d, want 1", store.Quarantined())
	}
}

// FuzzCheckpointDecode: whatever bytes arrive — truncated, bit-
// flipped, or arbitrary garbage — decoding either fails cleanly or
// yields the original record; a mutated record must never decode to
// something different from the record its bytes were derived from.
func FuzzCheckpointDecode(f *testing.F) {
	rec := sampleRecord()
	valid, err := EncodeCellRecord(rec)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid, 0, byte(0))
	f.Add(valid, 7, byte(0xFF))
	f.Add([]byte("ENTCKPT v1 deadbeef\n{}"), 0, byte(0))
	f.Add([]byte(nil), 3, byte(1))
	f.Fuzz(func(t *testing.T, data []byte, pos int, xor byte) {
		// Arbitrary bytes: must not panic, and anything that decodes
		// must satisfy the record invariants.
		if rec, err := DecodeCellRecord(data); err == nil {
			if rec.SchemaVersion != CheckpointSchemaVersion || rec.Fingerprint == "" {
				t.Fatalf("invalid record decoded without error: %+v", rec)
			}
		}

		// Single-byte mutation of a valid record: the checksum must
		// catch any semantic change — decode errors, or (when the
		// mutation is a no-op, e.g. hex case) yields the identical
		// record.
		mutated := append([]byte(nil), valid...)
		if len(mutated) > 0 {
			if pos < 0 {
				pos = -pos
			}
			mutated[pos%len(mutated)] ^= xor
		}
		got, err := DecodeCellRecord(mutated)
		if err == nil && !reflect.DeepEqual(got, rec) {
			t.Fatalf("mutated record silently decoded to a different result:\ngot  %+v\nwant %+v", got, rec)
		}
	})
}

func TestFuzzCheckpointDecodeSeedsPass(t *testing.T) {
	// The fuzz seeds double as a plain regression test so `go test`
	// exercises them without -fuzz.
	rec := sampleRecord()
	valid, err := EncodeCellRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCellRecord(valid); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCellRecord(valid[:len(valid)-3]); err == nil {
		t.Error("truncated record decoded")
	}
	if _, err := DecodeCellRecord([]byte("ENTCKPT v1 deadbeef\n{}")); err == nil {
		t.Error("short checksum accepted")
	}
}

// TestCheckpointStoreSaveIdempotent: two fleet workers finishing the
// same cell both Save the identical record; both must succeed without
// an error and without doubling files — re-persisting what is already
// stored is a no-op, not a conflict.
func TestCheckpointStoreSaveIdempotent(t *testing.T) {
	store, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord()
	const savers = 8
	errs := make(chan error, savers)
	start := make(chan struct{})
	for i := 0; i < savers; i++ {
		go func() {
			<-start
			errs <- store.Save(rec)
		}()
	}
	close(start)
	for i := 0; i < savers; i++ {
		if err := <-errs; err != nil {
			t.Errorf("concurrent identical Save: %v", err)
		}
	}
	if n, err := store.Count(); err != nil || n != 1 {
		t.Errorf("Count after %d identical saves = %d, %v", savers, n, err)
	}
	got, ok, err := store.Load(rec.Fingerprint)
	if err != nil || !ok {
		t.Fatalf("Load: ok %v, err %v", ok, err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("record damaged by concurrent saves:\ngot  %+v\nwant %+v", got, rec)
	}
	if tmps, _ := filepath.Glob(filepath.Join(store.Dir(), "*.tmp")); len(tmps) != 0 {
		t.Errorf("stale temp files: %v", tmps)
	}
}

// TestCheckpointStoreSaveConflict: a Save whose fingerprint already
// holds a valid record with *different* bytes must fail with
// ErrCheckpointConflict and leave the original record untouched —
// disagreeing results for one deterministic cell are evidence of
// corruption, never something to paper over by overwriting.
func TestCheckpointStoreSaveConflict(t *testing.T) {
	store, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord()
	if err := store.Save(rec); err != nil {
		t.Fatal(err)
	}
	altered := rec
	altered.Result.R.Cycles++ // same fingerprint, different result bytes
	err = store.Save(altered)
	if !errors.Is(err, ErrCheckpointConflict) {
		t.Fatalf("conflicting Save error = %v, want ErrCheckpointConflict", err)
	}
	got, ok, lerr := store.Load(rec.Fingerprint)
	if lerr != nil || !ok {
		t.Fatalf("Load after conflict: ok %v, err %v", ok, lerr)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("conflicting Save modified the stored record:\ngot  %+v\nwant %+v", got, rec)
	}
}

// TestCheckpointStoreSaveReplacesCorrupt: a corrupt record on disk was
// never going to resume; a fresh Save of the same fingerprint replaces
// it instead of reporting a conflict against garbage.
func TestCheckpointStoreSaveReplacesCorrupt(t *testing.T) {
	store, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord()
	path := filepath.Join(store.Dir(), rec.Fingerprint+".ckpt")
	if err := os.WriteFile(path, []byte("ENTCKPT v1 garbage\nnot json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(rec); err != nil {
		t.Fatalf("Save over corrupt record: %v", err)
	}
	got, ok, lerr := store.Load(rec.Fingerprint)
	if lerr != nil || !ok {
		t.Fatalf("Load after replacing corruption: ok %v, err %v", ok, lerr)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("replaced record differs:\ngot  %+v\nwant %+v", got, rec)
	}
}
