package harness

import "time"

// This file defines the sweep progress hook: a per-cell lifecycle
// event stream emitted by RunSuiteCtx. Both interactive CLIs
// (cmd/paperfigs -progress) and the job server's SSE endpoint
// (internal/server) consume it, so long sweeps are observable while
// they run instead of only after they finish.

// CellEventType labels a cell lifecycle transition.
type CellEventType string

// Cell lifecycle transitions, in the order a cell can traverse them.
const (
	// CellRestored: the cell was served from the checkpoint store and
	// never ran (Options.Resume).
	CellRestored CellEventType = "restored"
	// CellStarted: the cell's first attempt began.
	CellStarted CellEventType = "started"
	// CellRetried: a further attempt began after a failure (Attempt is
	// the new 1-based attempt number).
	CellRetried CellEventType = "retried"
	// CellFinished: the cell completed and its result was recorded
	// (and checkpointed, when a store is configured).
	CellFinished CellEventType = "finished"
	// CellFailed: the cell degraded to a *CellError after exhausting
	// its attempts (or being canceled).
	CellFailed CellEventType = "failed"
)

// CellEvent reports one cell lifecycle transition of a running sweep.
type CellEvent struct {
	Type     CellEventType
	Config   string
	Workload string
	// Attempt is the 1-based attempt number; 0 for restored cells.
	Attempt int
	// Duration is the cell's wall-clock time so far; set on finished
	// and failed events.
	Duration time.Duration
	// Err is the *CellError of a failed event, nil otherwise.
	Err error
}

// ProgressFunc observes cell lifecycle transitions. RunSuiteCtx calls
// it from its worker goroutines, so implementations must be safe for
// concurrent use and should return quickly — a slow observer stalls
// the sweep.
type ProgressFunc func(CellEvent)

// emit calls the hook if one is installed.
func (f ProgressFunc) emit(ev CellEvent) {
	if f != nil {
		f(ev)
	}
}
