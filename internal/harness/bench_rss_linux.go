//go:build linux

package harness

import (
	"bufio"
	"os"
	"strconv"
	"strings"
)

// readPeakRSS returns the process peak resident set size in bytes from
// /proc/self/status (VmHWM), or 0 when unavailable.
func readPeakRSS() uint64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
