package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"sync"

	"entangling/internal/core"
	"entangling/internal/cpu"
	"entangling/internal/workload"
)

// This file implements warmup-snapshot reuse above cpu.Machine.Fork.
// Every cell of a sweep used to simulate its full warmup window even
// when an identical warmup had already been simulated: the warmup
// prefix of a cell depends only on the machine-shaping configuration
// fields, the workload parameters and the warmup length — not on the
// cell's display name or on anything that happens in the measured
// window. Cells sharing that tuple form a warmup-equivalence class.
//
// A WarmupSnapshots cache runs each class's warmup exactly once: the
// first cell of a class warms a machine sequentially, forks it, and
// offers the pristine fork (plus the trace position it stopped at) to
// the cache; every later cell of the class forks the stored snapshot
// and simulates only its measured window, resuming the shared
// materialized trace mid-stream. Cells whose configuration cannot be
// forked (an oracle listener, a branch hook, a non-Forkable
// prefetcher) simply never offer or hit — they stay on the sequential
// path, cell by cell, with no mode switch anywhere above them.
//
// Correctness is gated end to end on fingerprints: a forked measured
// window must export byte-identical metrics to the sequential run
// (RunBenchCtx asserts this across iterations, and CI diffs a forked
// sweep's export hash against a sequential one).

// WarmupClass derives the warmup-equivalence class key of a cell: the
// hash of every input that shapes the warmup prefix. Two cells share a
// class exactly when their warmed machines are guaranteed identical —
// same machine-shaping configuration fields (the display Name is
// excluded), same fully derived workload parameters, same warmup
// length. The measured window length is deliberately absent: it only
// affects what happens after the fork point.
func WarmupClass(cfg Configuration, spec workload.Spec, warmup uint64) string {
	payload := struct {
		Prefetcher string          `json:"prefetcher"`
		IdealL1I   bool            `json:"ideal_l1i"`
		L1IWays    int             `json:"l1i_ways"`
		Physical   bool            `json:"physical"`
		Params     workload.Params `json:"params"`
		Warmup     uint64          `json:"warmup"`
	}{cfg.Prefetcher, cfg.IdealL1I, cfg.L1IWays, cfg.Physical, spec.Params, warmup}
	b, err := json.Marshal(payload)
	if err != nil {
		panic(err) // plain structs of scalars cannot fail to marshal
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// warmupSnapshotCap bounds the cache: one snapshot is a full machine
// (cache arrays, predictor tables, prefetcher state), so an unbounded
// map would grow with every distinct class ever warmed. 64 covers the
// largest shipped sweep lineup with room to spare.
const warmupSnapshotCap = 64

// warmSnapshot is one stored post-warmup machine state. The machine is
// pristine: it was forked immediately after its warmup window and is
// never run — each reuse forks it again.
type warmSnapshot struct {
	m   *cpu.Machine
	pos uint64 // instructions consumed at the fork point
}

// WarmupSnapshots caches post-warmup machine snapshots keyed by
// warmup-equivalence class, shared across the cells (and sweeps) of
// one driver. Safe for concurrent use.
//
// The cache never blocks a miss on another cell's in-flight warmup:
// Fork either returns a fork of a stored snapshot immediately or
// reports a miss, and the caller warms sequentially and Offers the
// result. Two cells of the same class racing their warmups waste one
// warmup — nothing deadlocks, and cancellation, cell timeouts and
// fault injection need no cache-aware handling.
type WarmupSnapshots struct {
	mu      sync.Mutex
	entries map[string]warmSnapshot
}

// NewWarmupSnapshots returns an empty snapshot cache.
func NewWarmupSnapshots() *WarmupSnapshots {
	return &WarmupSnapshots{entries: make(map[string]warmSnapshot)}
}

// Fork returns a fresh fork of the stored snapshot for class and the
// trace position its measured window must resume from, or ok=false on
// a miss. The fork is performed outside the cache lock: stored
// machines are never mutated after Offer, so concurrent forks of the
// same snapshot only ever read it.
func (w *WarmupSnapshots) Fork(class string) (*cpu.Machine, uint64, bool) {
	if w == nil {
		return nil, 0, false
	}
	w.mu.Lock()
	snap, ok := w.entries[class]
	w.mu.Unlock()
	if !ok {
		return nil, 0, false
	}
	f, err := snap.m.Fork()
	if err != nil {
		// A stored snapshot is warm and forkable by construction; an
		// error here means the entry is unusable — drop it and miss.
		w.mu.Lock()
		if cur, still := w.entries[class]; still && cur.m == snap.m {
			delete(w.entries, class)
		}
		w.mu.Unlock()
		return nil, 0, false
	}
	return f, snap.pos, true
}

// Offer stores a pristine post-warmup fork for class. The machine must
// never be run by the caller afterwards — the cache owns it. The first
// offer for a class wins (racing warmups of one class are identical by
// definition, so which one lands is immaterial); offers past the cache
// cap are dropped.
func (w *WarmupSnapshots) Offer(class string, m *cpu.Machine, pos uint64) {
	if w == nil || m == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.entries[class]; dup || len(w.entries) >= warmupSnapshotCap {
		return
	}
	w.entries[class] = warmSnapshot{m: m, pos: pos}
}

// Len reports the number of stored snapshots.
func (w *WarmupSnapshots) Len() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.entries)
}

// runResultFrom packages a finished machine's results as the cell's
// RunResult (shared by the sequential and forked paths).
func runResultFrom(cfg Configuration, spec workload.Spec, m *cpu.Machine, r cpu.Results) RunResult {
	out := RunResult{Config: cfg.Name, Workload: spec.Name, Category: spec.Params.Category, R: r}
	if ent, ok := m.Prefetcher().(*core.Entangling); ok {
		s := ent.Stats()
		out.Ent = &s
	}
	return out
}

// RunTraceWarmCtx is RunTraceCtx with warmup-snapshot reuse. On a
// class hit it forks the stored snapshot and simulates only the
// measured window, resuming the trace at the stored position; on a
// miss it warms sequentially, offers a pristine fork to the cache, and
// measures on the original machine. Configurations that cannot fork
// (cpu.ErrNotForkable) run exactly like RunTraceCtx. A nil warm cache
// is the sequential path itself.
func RunTraceWarmCtx(ctx context.Context, cfg Configuration, spec workload.Spec, tr *workload.Trace, warmup, measure uint64, warm *WarmupSnapshots) (RunResult, error) {
	if warm == nil {
		return RunTraceCtx(ctx, cfg, spec, tr, warmup, measure)
	}
	class := WarmupClass(cfg, spec, warmup)
	if f, pos, ok := warm.Fork(class); ok {
		r, err := f.MeasureCtx(ctx, tr.SourceAt(pos), measure)
		if err != nil {
			return RunResult{}, err
		}
		return runResultFrom(cfg, spec, f, r), nil
	}

	m, err := machineFor(cfg, spec.Params.Seed, nil, nil)
	if err != nil {
		return RunResult{}, err
	}
	src := tr.Source()
	if err := m.WarmupCtx(ctx, src, warmup); err != nil {
		return RunResult{}, err
	}
	// Fork immediately after the warmup window, before the measured
	// window mutates anything — the snapshot must be exactly the state
	// a sequential run has at its warmup/measure boundary.
	if f, ferr := m.Fork(); ferr == nil {
		warm.Offer(class, f, m.Consumed())
	} else if !errors.Is(ferr, cpu.ErrNotForkable) {
		return RunResult{}, ferr
	}
	r, err := m.MeasureCtx(ctx, src, measure)
	if err != nil {
		return RunResult{}, err
	}
	return runResultFrom(cfg, spec, m, r), nil
}
