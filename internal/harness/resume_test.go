package harness

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"entangling/internal/faultinject"
	"entangling/internal/workload"
)

// resumeSuite is the sweep the differential tests run: small enough to
// iterate seeds x parallelism, wide enough to exercise the baseline,
// a simple prefetcher and the paper's.
func resumeSuite() ([]workload.Spec, []Configuration, Options) {
	specs := workload.CVPSuite(1)
	cfgs := []Configuration{
		Baseline,
		{Name: "nextline", Prefetcher: "nextline"},
		{Name: "entangling-2k", Prefetcher: "entangling-2k"},
	}
	opt := Options{Warmup: 60_000, Measure: 40_000, Parallelism: 2}
	return specs, cfgs, opt
}

// suiteMetricsBytes renders the sweep exactly as -metrics-out does; the
// differential claim is byte equality of this export.
func suiteMetricsBytes(t *testing.T, s *SuiteResults) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, s.Metrics()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResumeDifferential is the tentpole differential test: a sweep
// interrupted mid-flight by injected faults and then resumed from its
// checkpoint store must reproduce the uninterrupted sweep's metrics
// JSON byte-for-byte — across fault seeds and parallelism levels.
func TestResumeDifferential(t *testing.T) {
	specs, cfgs, base := resumeSuite()

	clean, err := RunSuite(specs, cfgs, base)
	if err != nil {
		t.Fatal(err)
	}
	want := suiteMetricsBytes(t, clean)

	for _, seed := range []uint64{1, 2} {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("seed=%d/par=%d", seed, par), func(t *testing.T) {
				store, err := OpenCheckpointStore(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}

				// Interrupted run: permanent injected faults kill a
				// deterministic, seed-dependent subset of cells; the
				// survivors land in the checkpoint store.
				inj := faultinject.New(faultinject.Plan{
					Seed:          seed,
					CellPanicProb: 0.25,
					CellErrorProb: 0.25,
					FaultsPerSite: -1, // permanent: retries cannot save the cell
				})
				opt := base
				opt.Parallelism = par
				opt.Checkpoint = store
				opt.CellHook = inj.CellHook
				partial, err := RunSuite(specs, cfgs, opt)
				if err == nil {
					t.Fatalf("seed %d injected no faults; differential run degenerate", seed)
				}
				if inj.Stats().Total() == 0 {
					t.Fatal("injector never fired")
				}
				if len(partial.Failed) == 0 {
					t.Fatal("error return but no failed cells recorded")
				}
				total := len(specs) * len(cfgs)
				if len(partial.Failed) == total {
					t.Fatalf("every cell failed; resume would just be a clean run")
				}
				saved, err := store.Count()
				if err != nil {
					t.Fatal(err)
				}
				if saved != total-len(partial.Failed) {
					t.Errorf("store holds %d records, want %d completed cells", saved, total-len(partial.Failed))
				}

				// Resume: no faults, same store. Only the missing cells
				// may run.
				opt = base
				opt.Parallelism = par
				opt.Checkpoint = store
				opt.Resume = true
				resumed, err := RunSuite(specs, cfgs, opt)
				if err != nil {
					t.Fatalf("resumed sweep failed: %v", err)
				}
				if resumed.Restored != saved {
					t.Errorf("Restored = %d, want %d", resumed.Restored, saved)
				}
				got := suiteMetricsBytes(t, resumed)
				if !bytes.Equal(got, want) {
					t.Errorf("resumed metrics differ from uninterrupted run (seed %d, par %d):\nresumed: %d bytes\nclean:   %d bytes",
						seed, par, len(got), len(want))
				}
			})
		}
	}
}

// TestResumeQuarantinesCorruptCell: corrupting a checkpointed record
// on disk must not poison the resumed sweep — the record is
// quarantined, its cell re-runs, and the final export still matches
// the uninterrupted run byte-for-byte.
func TestResumeQuarantinesCorruptCell(t *testing.T) {
	specs, cfgs, opt := resumeSuite()

	clean, err := RunSuite(specs, cfgs, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := suiteMetricsBytes(t, clean)

	store, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	full := opt
	full.Checkpoint = store
	if _, err := RunSuite(specs, cfgs, full); err != nil {
		t.Fatal(err)
	}

	// Corrupt one record in place, deterministically.
	matches, err := filepath.Glob(filepath.Join(store.Dir(), "*.ckpt"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no checkpoint records: %v", err)
	}
	victim := matches[0]
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Plan{Seed: 99})
	if err := os.WriteFile(victim, inj.CorruptRecord(b), 0o644); err != nil {
		t.Fatal(err)
	}

	resume := opt
	resume.Checkpoint = store
	resume.Resume = true
	resumed, err := RunSuite(specs, cfgs, resume)
	if err != nil {
		t.Fatalf("resume over corrupt record failed: %v", err)
	}
	if store.Quarantined() != 1 {
		t.Errorf("Quarantined = %d, want 1", store.Quarantined())
	}
	total := len(specs) * len(cfgs)
	if resumed.Restored != total-1 {
		t.Errorf("Restored = %d, want %d (corrupt cell must re-run)", resumed.Restored, total-1)
	}
	if got := suiteMetricsBytes(t, resumed); !bytes.Equal(got, want) {
		t.Error("resumed metrics differ from uninterrupted run after quarantine")
	}
	// The re-run overwrote the quarantined cell with a fresh record.
	if _, err := os.Stat(victim); err != nil {
		t.Errorf("re-run cell not re-checkpointed: %v", err)
	}
}

// TestResumeIgnoresForeignWindows: records checkpointed under other
// run windows must not resume into a sweep with different windows —
// the fingerprint keys warmup/measure, so the cells simply re-run.
func TestResumeIgnoresForeignWindows(t *testing.T) {
	specs, cfgs, opt := resumeSuite()
	store, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	short := opt
	short.Warmup, short.Measure = 20_000, 10_000
	short.Checkpoint = store
	if _, err := RunSuite(specs, cfgs, short); err != nil {
		t.Fatal(err)
	}

	long := opt
	long.Checkpoint = store
	long.Resume = true
	s, err := RunSuite(specs, cfgs, long)
	if err != nil {
		t.Fatal(err)
	}
	if s.Restored != 0 {
		t.Errorf("Restored = %d records from mismatched windows, want 0", s.Restored)
	}
	for _, c := range cfgs {
		for _, sp := range specs {
			if s.Runs[c.Name][sp.Name].R.Instructions != long.Measure {
				t.Fatalf("cell %s/%s measured %d instructions, want %d",
					c.Name, sp.Name, s.Runs[c.Name][sp.Name].R.Instructions, long.Measure)
			}
		}
	}
}

// TestCellRetryRecoversTransientFault: a transient injected fault
// (one shot per site) must be absorbed by the retry loop and leave a
// clean sweep, identical to an unfaulted one.
func TestCellRetryRecoversTransientFault(t *testing.T) {
	specs, cfgs, opt := resumeSuite()
	clean, err := RunSuite(specs, cfgs, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := suiteMetricsBytes(t, clean)

	inj := faultinject.New(faultinject.Plan{
		Seed:          3,
		CellPanicProb: 0.3,
		CellErrorProb: 0.3,
		FaultsPerSite: 1, // transient: the retry runs fault-free
	})
	faulty := opt
	faulty.Retries = 2
	faulty.RetryBaseDelay = 0 // immediate retry keeps the test fast
	faulty.CellHook = inj.CellHook
	s, err := RunSuite(specs, cfgs, faulty)
	if err != nil {
		t.Fatalf("transient faults leaked through retries: %v", err)
	}
	if inj.Stats().Total() == 0 {
		t.Fatal("injector never fired")
	}
	if got := suiteMetricsBytes(t, s); !bytes.Equal(got, want) {
		t.Error("retried sweep differs from unfaulted run")
	}
}

// TestCellErrorsArePermanentWithoutRetries: with Retries 0 the same
// faults degrade to named cell errors carrying ErrCellPanic where the
// injector panicked, and the aggregate error format stays stable.
func TestCellErrorsArePermanentWithoutRetries(t *testing.T) {
	specs, cfgs, opt := resumeSuite()
	inj := faultinject.New(faultinject.Plan{Seed: 3, CellPanicProb: 0.3, CellErrorProb: 0.3, FaultsPerSite: -1})
	opt.CellHook = inj.CellHook
	s, err := RunSuite(specs, cfgs, opt)
	if err == nil {
		t.Fatal("expected failures")
	}
	c := inj.Stats()
	if c.CellPanics == 0 || c.CellErrors == 0 {
		t.Fatalf("seed 3 should inject both kinds, got %+v", c)
	}
	var panics int
	for _, ce := range s.Failed {
		if ce.Config == "" || ce.Workload == "" {
			t.Errorf("cell error without a cell name: %v", ce)
		}
		if ce.Canceled() {
			t.Errorf("fault misreported as cancellation: %v", ce)
		}
		if errors.Is(ce, ErrCellPanic) {
			panics++
		}
	}
	if panics != c.CellPanics {
		t.Errorf("%d cell errors wrap ErrCellPanic, injector panicked %d times", panics, c.CellPanics)
	}
	wantMsg := fmt.Sprintf("%d of %d runs failed", len(s.Failed), len(specs)*len(cfgs))
	if !bytes.Contains([]byte(err.Error()), []byte(wantMsg)) {
		t.Errorf("aggregate error %q missing %q", err, wantMsg)
	}
}

// TestAcquireFaultIsRetryable: an injected TraceCache acquire failure
// behaves like any transient cell fault — retried to success, and the
// cache's refcounting still converges to an empty cache.
func TestAcquireFaultIsRetryable(t *testing.T) {
	specs, cfgs, opt := resumeSuite()
	clean, err := RunSuite(specs, cfgs, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := suiteMetricsBytes(t, clean)

	inj := faultinject.New(faultinject.Plan{Seed: 5, AcquireFailProb: 0.5, FaultsPerSite: 1})
	cache := workload.NewTraceCache()
	cache.SetAcquireHook(inj.AcquireHook)
	faulty := opt
	faulty.Traces = cache
	faulty.Retries = 1
	s, err := RunSuite(specs, cfgs, faulty)
	if err != nil {
		t.Fatalf("acquire faults leaked through retries: %v", err)
	}
	if inj.Stats().AcquireFailures == 0 {
		t.Fatal("injector never fired")
	}
	if got := suiteMetricsBytes(t, s); !bytes.Equal(got, want) {
		t.Error("sweep with acquire faults differs from clean run")
	}
	// A hook-failed Acquire consumes no use, so the extra Acquire+Release
	// of each retried cell must still drain the cache.
	if _, _, resident := cache.CacheStats(); resident != 0 {
		t.Errorf("%d traces leaked in the cache", resident)
	}
}
