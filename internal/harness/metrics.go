package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"entangling/internal/cpu"
	"entangling/internal/stats"
)

// This file defines the machine-readable metrics schema the simulator
// exports (see EXPERIMENTS.md, "Metrics export"). The schema is the
// stable contract between the simulator and downstream analysis:
// per-run prefetch quality (timely / late / early-evicted / inaccurate
// with cycles saved) and the top-down stall-cycle attribution.

// MetricsSchemaVersion identifies the exported JSON layout; bump it on
// any incompatible change.
//
// Version history:
//
//	1: initial layout.
//	2: prefetch block gained lead_p50_cycles / lead_p99_cycles, now
//	   that the lead histogram is windowed to the measured interval
//	   like every other counter (it used to accumulate warmup fills,
//	   which made its quantiles unexportable).
const MetricsSchemaVersion = 2

// PrefetchMetrics is the per-run prefetch-quality block.
type PrefetchMetrics struct {
	Requested uint64 `json:"requested"`
	Issued    uint64 `json:"issued"`
	Fills     uint64 `json:"fills"`

	// Lifecycle breakdown over fills (plus in-flight lates).
	Timely       uint64 `json:"timely"`
	Late         uint64 `json:"late"`
	EarlyEvicted uint64 `json:"early_evicted"`
	Inaccurate   uint64 `json:"inaccurate"`

	// LateCyclesSaved is the latency late prefetches still hid;
	// LateCyclesShort is what they failed to hide.
	LateCyclesSaved uint64 `json:"late_cycles_saved"`
	LateCyclesShort uint64 `json:"late_cycles_short"`
	// MeanLeadCycles is the average fill-to-first-use lead of timely
	// prefetches.
	MeanLeadCycles float64 `json:"mean_lead_cycles"`
	// LeadP50Cycles / LeadP99Cycles are bucket-lower-bound quantiles of
	// the measured window's lead histogram (0 when the window had no
	// timely fills).
	LeadP50Cycles int `json:"lead_p50_cycles"`
	LeadP99Cycles int `json:"lead_p99_cycles"`

	Accuracy float64 `json:"accuracy"`
}

// StallMetrics is the per-run stall-attribution block. Total is the
// sum of the buckets (the attribution is complete by construction and
// asserted by tests).
type StallMetrics struct {
	L1IMiss    uint64 `json:"l1i_miss"`
	BTBMiss    uint64 `json:"btb_miss"`
	Mispredict uint64 `json:"mispredict"`
	FTQFull    uint64 `json:"ftq_full"`
	ROBFull    uint64 `json:"rob_full"`
	Total      uint64 `json:"total"`
}

// RunMetrics is the exported record for one (configuration, workload)
// run.
type RunMetrics struct {
	Config     string `json:"config"`
	Workload   string `json:"workload"`
	Category   string `json:"category,omitempty"`
	Prefetcher string `json:"prefetcher"`

	StorageBits  uint64  `json:"storage_bits"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`

	L1IAccesses uint64  `json:"l1i_accesses"`
	L1IMisses   uint64  `json:"l1i_misses"`
	L1IMPKI     float64 `json:"l1i_mpki"`
	L1IHitRate  float64 `json:"l1i_hit_rate"`

	// Coverage is vs the sweep's no-prefetch baseline; present only
	// when the suite contains one.
	Coverage *float64 `json:"coverage,omitempty"`
	// Speedup is IPC vs the baseline IPC, when available.
	Speedup *float64 `json:"speedup,omitempty"`

	Prefetch PrefetchMetrics `json:"prefetch"`
	Stalls   StallMetrics    `json:"stalls"`
}

// SuiteMetrics is the top-level export: every run of a sweep in
// deterministic (config-major, workload-minor) order.
type SuiteMetrics struct {
	SchemaVersion int          `json:"schema_version"`
	Runs          []RunMetrics `json:"runs"`
}

// prefetchMetricsFor flattens cache counters and the lifecycle block.
func prefetchMetricsFor(r *cpu.Results) PrefetchMetrics {
	return PrefetchMetrics{
		Requested:       r.L1I.PrefetchRequested,
		Issued:          r.L1I.PrefetchIssued,
		Fills:           r.L1I.PrefetchFills,
		Timely:          r.Lifecycle.Timely,
		Late:            r.Lifecycle.Late,
		EarlyEvicted:    r.Lifecycle.EarlyEvicted,
		Inaccurate:      r.Lifecycle.Inaccurate(),
		LateCyclesSaved: r.Lifecycle.LateCyclesSaved,
		LateCyclesShort: r.Lifecycle.LateCyclesShort,
		MeanLeadCycles:  r.Lifecycle.MeanLead(),
		LeadP50Cycles:   r.LeadP50,
		LeadP99Cycles:   r.LeadP99,
		Accuracy:        r.L1I.Accuracy(),
	}
}

func stallMetricsFor(s stats.StallBreakdown) StallMetrics {
	return StallMetrics{
		L1IMiss:    s.L1IMiss,
		BTBMiss:    s.BTBMiss,
		Mispredict: s.Mispredict,
		FTQFull:    s.FTQFull,
		ROBFull:    s.ROBFull,
		Total:      s.Total(),
	}
}

// MetricsForRun builds the exported record for one run. baseline may
// be nil; when set, coverage and speedup are computed against it.
func MetricsForRun(config, workload, category string, r cpu.Results, baseline *cpu.Results) RunMetrics {
	m := RunMetrics{
		Config:       config,
		Workload:     workload,
		Category:     category,
		Prefetcher:   r.PrefetcherName,
		StorageBits:  r.StorageBits,
		Instructions: r.Instructions,
		Cycles:       r.Cycles,
		IPC:          r.IPC,
		L1IAccesses:  r.L1I.Accesses,
		L1IMisses:    r.L1I.Misses,
		L1IMPKI:      r.L1IMPKI(),
		L1IHitRate:   r.L1IHitRate(),
		Prefetch:     prefetchMetricsFor(&r),
		Stalls:       stallMetricsFor(r.Stalls),
	}
	if baseline != nil {
		if baseline.L1I.Misses > 0 {
			cov := 1 - float64(r.L1I.Misses)/float64(baseline.L1I.Misses)
			m.Coverage = &cov
		}
		if baseline.IPC > 0 {
			sp := r.IPC / baseline.IPC
			m.Speedup = &sp
		}
	}
	return m
}

// Metrics exports every run of the sweep in deterministic order, so
// the same sweep always serializes to the same bytes regardless of
// worker scheduling.
func (s *SuiteResults) Metrics() SuiteMetrics {
	out := SuiteMetrics{SchemaVersion: MetricsSchemaVersion}
	for _, cfg := range s.ConfigOrder {
		for _, wl := range s.WorkloadOrder {
			r, ok := s.Runs[cfg][wl]
			if !ok {
				continue
			}
			var base *cpu.Results
			if b, bok := s.baselineFor(wl); bok && cfg != "no" {
				base = &b.R
			}
			out.Runs = append(out.Runs, MetricsForRun(cfg, wl, string(r.Category), r.R, base))
		}
	}
	return out
}

// WriteMetricsJSON writes the export as indented JSON.
func WriteMetricsJSON(w io.Writer, m SuiteMetrics) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// MetricsCSV renders the export as one CSV row per run (a flat subset
// of the JSON schema, for spreadsheet-style analysis).
func MetricsCSV(m SuiteMetrics) string {
	var sb strings.Builder
	sb.WriteString("config,workload,category,prefetcher,storage_bits,instructions,cycles,ipc," +
		"l1i_accesses,l1i_misses,l1i_mpki,l1i_hit_rate,coverage,speedup," +
		"pf_requested,pf_issued,pf_fills,pf_timely,pf_late,pf_early_evicted,pf_inaccurate," +
		"pf_late_cycles_saved,pf_mean_lead_cycles,pf_lead_p50_cycles,pf_lead_p99_cycles,pf_accuracy," +
		"stall_l1i_miss,stall_btb_miss,stall_mispredict,stall_ftq_full,stall_rob_full,stall_total\n")
	opt := func(p *float64) string {
		if p == nil {
			return ""
		}
		return fmt.Sprintf("%.6f", *p)
	}
	for _, r := range m.Runs {
		fmt.Fprintf(&sb, "%s,%s,%s,%s,%d,%d,%d,%.6f,%d,%d,%.4f,%.6f,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%.2f,%d,%d,%.6f,%d,%d,%d,%d,%d,%d\n",
			r.Config, r.Workload, r.Category, r.Prefetcher, r.StorageBits,
			r.Instructions, r.Cycles, r.IPC,
			r.L1IAccesses, r.L1IMisses, r.L1IMPKI, r.L1IHitRate,
			opt(r.Coverage), opt(r.Speedup),
			r.Prefetch.Requested, r.Prefetch.Issued, r.Prefetch.Fills,
			r.Prefetch.Timely, r.Prefetch.Late, r.Prefetch.EarlyEvicted, r.Prefetch.Inaccurate,
			r.Prefetch.LateCyclesSaved, r.Prefetch.MeanLeadCycles,
			r.Prefetch.LeadP50Cycles, r.Prefetch.LeadP99Cycles, r.Prefetch.Accuracy,
			r.Stalls.L1IMiss, r.Stalls.BTBMiss, r.Stalls.Mispredict,
			r.Stalls.FTQFull, r.Stalls.ROBFull, r.Stalls.Total)
	}
	return sb.String()
}

// WriteMetricsFile writes the export to path, as CSV when the path
// ends in .csv and indented JSON otherwise.
func WriteMetricsFile(path string, m SuiteMetrics) error {
	if strings.HasSuffix(path, ".csv") {
		return os.WriteFile(path, []byte(MetricsCSV(m)), 0o644)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteMetricsJSON(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
