package harness

import (
	"fmt"

	"entangling/internal/core"
	"entangling/internal/energy"
	"entangling/internal/oracle"
	"entangling/internal/stats"
	"entangling/internal/workload"
)

// Fig01 reproduces Figure 1: the fraction of L1I misses a fixed
// look-ahead distance (in taken-branch discontinuities) would serve
// timely, measured with the oracle on the no-prefetch baseline.
func Fig01(specs []workload.Spec, opt Options) (*Table, error) {
	t := &Table{
		Title:  "Figure 1: fraction of timely prefetches vs fixed look-ahead distance",
		Header: []string{"workload"},
		Note:   "cumulative fraction of misses served timely at each distance; oracle on the no-prefetch baseline",
	}
	for d := 1; d <= 10; d++ {
		t.Header = append(t.Header, fmt.Sprintf("d=%d", d))
	}
	t.Header = append(t.Header, ">10")

	agg := stats.NewHistogram(1, 10)
	for _, spec := range specs {
		o := oracle.New()
		if _, err := Run(Baseline, spec, opt.Warmup, opt.Measure, o, o.OnBranch); err != nil {
			return nil, err
		}
		row := []string{spec.Name}
		for _, f := range o.TimelyFraction() {
			row = append(row, pct(f))
		}
		row = append(row, pct(1-o.Distances.CumulativeFraction(10)))
		t.AddRow(row...)
		agg.Merge(o.Distances)
	}
	mean := []string{"ALL"}
	for d := 1; d <= 10; d++ {
		mean = append(mean, pct(agg.CumulativeFraction(d)))
	}
	mean = append(mean, pct(1-agg.CumulativeFraction(10)))
	t.AddRow(mean...)
	return t, nil
}

// Fig02 reproduces Figure 2: prefetcher accuracy as the fixed
// look-ahead distance grows, using the Markov look-ahead-d prefetcher.
func Fig02(specs []workload.Spec, opt Options) (*Table, error) {
	t := &Table{
		Title:  "Figure 2: accuracy vs fixed look-ahead distance",
		Header: []string{"distance"},
		Note:   "per-category mean accuracy of a look-ahead-d correlation prefetcher",
	}
	cats := []workload.Category{workload.Crypto, workload.Int, workload.FP, workload.Srv}
	for _, c := range cats {
		t.Header = append(t.Header, string(c))
	}
	t.Header = append(t.Header, "all")

	for d := 1; d <= 10; d++ {
		cfg := Configuration{
			Name:       fmt.Sprintf("lookahead-%d", d),
			Prefetcher: fmt.Sprintf("lookahead-%d", d),
		}
		byCat := map[workload.Category][]float64{}
		var all []float64
		for _, spec := range specs {
			r, err := Run(cfg, spec, opt.Warmup, opt.Measure, nil, nil)
			if err != nil {
				return nil, err
			}
			acc := r.R.L1I.Accuracy()
			byCat[spec.Params.Category] = append(byCat[spec.Params.Category], acc)
			all = append(all, acc)
		}
		row := []string{fmt.Sprintf("%d", d)}
		for _, c := range cats {
			row = append(row, pct(stats.Mean(byCat[c])))
		}
		row = append(row, pct(stats.Mean(all)))
		t.AddRow(row...)
	}
	return t, nil
}

// Fig06 reproduces Figure 6: geometric-mean normalized IPC vs storage
// for every configuration.
func Fig06(s *SuiteResults) *Table {
	t := &Table{
		Title:  "Figure 6: IPC vs memory requirements",
		Header: []string{"configuration", "storage (KB)", "geomean speedup"},
	}
	for _, cfg := range s.ConfigOrder {
		t.AddRow(cfg, f2(s.StorageKB(cfg)), fmt.Sprintf("%+.2f%%", (s.GeomeanSpeedup(cfg)-1)*100))
	}
	return t
}

// sCurveTable renders per-workload sorted series (the individually
// ordered curves of Figures 7-10).
func sCurveTable(title, metricName string, s *SuiteResults, series func(string) []float64, points int) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"pctile"},
		Note:   "each column is sorted independently (" + metricName + "), as in the paper",
	}
	cfgs := s.ConfigOrder
	for _, c := range cfgs {
		t.Header = append(t.Header, c)
	}
	curves := make([][]float64, len(cfgs))
	for i, c := range cfgs {
		// Series are WorkloadOrder-aligned and NaN-padded; drop the
		// undefined slots before resampling the sorted curve.
		curves[i] = stats.SCurve(stats.FilterFinite(series(c)), points)
	}
	for p := 0; p < points; p++ {
		row := []string{fmt.Sprintf("%3.0f%%", float64(p)/float64(points-1)*100)}
		for i := range cfgs {
			if p < len(curves[i]) {
				row = append(row, f3(curves[i][p]))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Fig07 reproduces Figure 7: per-workload normalized IPC, sorted.
func Fig07(s *SuiteResults, points int) *Table {
	return sCurveTable("Figure 7: normalized IPC (sorted per configuration)", "normalized IPC",
		s, s.NormalizedIPC, points)
}

// Fig08 reproduces Figure 8: per-workload L1I miss ratio, sorted.
func Fig08(s *SuiteResults, points int) *Table {
	return sCurveTable("Figure 8: L1I miss ratio (sorted per configuration)", "miss ratio",
		s, s.MissRatios, points)
}

// Fig09 reproduces Figure 9: per-workload coverage, sorted.
func Fig09(s *SuiteResults, points int) *Table {
	return sCurveTable("Figure 9: coverage (sorted per configuration)", "coverage",
		s, s.Coverage, points)
}

// Fig10 reproduces Figure 10: per-workload accuracy, sorted.
func Fig10(s *SuiteResults, points int) *Table {
	return sCurveTable("Figure 10: accuracy (sorted per configuration)", "accuracy",
		s, s.Accuracy, points)
}

// Table04 reproduces Table IV: average per-level cache energy and the
// geometric mean of total energy normalized to the baseline.
func Table04(s *SuiteResults, model energy.Model) *Table {
	t := &Table{
		Title:  "Table IV: average energy per cache level (nJ) and normalized geomean",
		Header: []string{"configuration", "L1I", "L1D", "L2C", "LLC", "geomean (norm.)"},
	}
	// Per-workload totals for the baseline, for normalization.
	baseTotals := map[string]float64{}
	for wl, r := range s.Runs["no"] {
		b := model.Compute(&r.R)
		baseTotals[wl] = b.Total()
	}
	for _, cfg := range s.ConfigOrder {
		var l1i, l1d, l2, llc stats.RunningMean
		var norms []float64
		for wl, r := range s.Runs[cfg] {
			b := model.Compute(&r.R)
			l1i.Add(b.L1I)
			l1d.Add(b.L1D)
			l2.Add(b.L2)
			llc.Add(b.LLC)
			if bt := baseTotals[wl]; bt > 0 {
				norms = append(norms, b.Total()/bt)
			}
		}
		norm := "-"
		if len(norms) > 0 {
			norm = fmt.Sprintf("%.4f", stats.Geomean(norms))
		}
		t.AddRow(cfg,
			fmt.Sprintf("%.0f", l1i.Mean()),
			fmt.Sprintf("%.0f", l1d.Mean()),
			fmt.Sprintf("%.0f", l2.Mean()),
			fmt.Sprintf("%.0f", llc.Mean()),
			norm)
	}
	return t
}

// Fig11 reproduces Figure 11: the contribution breakdown BB / BBEnt /
// BBEntBB / Ent / BBEntBB-Merge for each table size.
func Fig11(s *SuiteResults) *Table {
	t := &Table{
		Title:  "Figure 11: breakdown of the contributions to performance (geomean speedup)",
		Header: []string{"variant", "2K", "4K", "8K"},
	}
	variants := []struct{ label, suffix string }{
		{"BB", "-BB"},
		{"Ent", "-Ent"},
		{"BBEnt", "-BBEnt"},
		{"BBEntBB", "-BBEntBB"},
		{"BBEntBB-Merge", ""},
	}
	for _, v := range variants {
		row := []string{v.label}
		for _, size := range []string{"2k", "4k", "8k"} {
			cfg := "entangling-" + size + v.suffix
			row = append(row, fmt.Sprintf("%+.2f%%", (s.GeomeanSpeedup(cfg)-1)*100))
		}
		t.AddRow(row...)
	}
	return t
}

// entMetric is a helper extracting an Entangling-internal ratio.
func entMetric(f func(*core.Stats) (float64, bool)) func(RunResult) (float64, bool) {
	return func(r RunResult) (float64, bool) {
		if r.Ent == nil {
			return 0, false
		}
		return f(r.Ent)
	}
}

// Fig12 reproduces Figure 12: the distribution of destination storage
// formats (significant-bit buckets) per workload category.
func Fig12(s *SuiteResults, cfg string) *Table {
	buckets := []int{8, 10, 13, 18, 28, 58}
	t := &Table{
		Title:  "Figure 12: destination compression format distribution (" + cfg + ")",
		Header: []string{"category"},
		Note:   "fraction of destination inserts stored with each significant-bit format",
	}
	for _, b := range buckets {
		t.Header = append(t.Header, fmt.Sprintf("%db", b))
	}
	for _, cat := range s.Categories() {
		sums := map[int]float64{}
		var total float64
		for _, wl := range s.WorkloadOrder {
			r, ok := s.Runs[cfg][wl]
			if !ok || r.Ent == nil || r.Category != cat {
				continue
			}
			for b, n := range r.Ent.InsertsBySigBits {
				sums[b] += float64(n)
				total += float64(n)
			}
		}
		row := []string{string(cat)}
		for _, b := range buckets {
			if total > 0 {
				row = append(row, pct(sums[b]/total))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Fig13 reproduces Figure 13: average number of entangled destinations
// found on an Entangled-table hit, per category.
func Fig13(s *SuiteResults, cfgs []string) *Table {
	return entCategoryTable(s, cfgs,
		"Figure 13: average number of entangled destinations",
		func(e *core.Stats) (float64, bool) {
			if e.TableHits == 0 {
				return 0, false
			}
			return float64(e.DstFound) / float64(e.TableHits), true
		})
}

// Fig14 reproduces Figure 14: average basic-block size (lines
// prefetched from the current block per hit), per category.
func Fig14(s *SuiteResults, cfgs []string) *Table {
	return entCategoryTable(s, cfgs,
		"Figure 14: average basic block size (current block)",
		func(e *core.Stats) (float64, bool) {
			if e.TableHits == 0 {
				return 0, false
			}
			return float64(e.BBLinesPrefetched) / float64(e.TableHits), true
		})
}

// Fig15 reproduces Figure 15: average basic-block size of entangled
// destinations, per category.
func Fig15(s *SuiteResults, cfgs []string) *Table {
	return entCategoryTable(s, cfgs,
		"Figure 15: average basic block size of entangled destinations",
		func(e *core.Stats) (float64, bool) {
			if e.DstFound == 0 {
				return 0, false
			}
			return float64(e.DstBBLines) / float64(e.DstFound), true
		})
}

func entCategoryTable(s *SuiteResults, cfgs []string, title string, metric func(*core.Stats) (float64, bool)) *Table {
	t := &Table{Title: title, Header: []string{"category"}}
	for _, c := range cfgs {
		t.Header = append(t.Header, c, c+" (sd)")
	}
	for _, cat := range s.Categories() {
		row := []string{string(cat)}
		for _, cfg := range cfgs {
			means, devs := s.CategoryMean(cfg, entMetric(metric))
			row = append(row, f2(means[cat]), f2(devs[cat]))
		}
		t.AddRow(row...)
	}
	return t
}

// PhysicalTable reproduces §IV-E: geomean speedup of the Entangling
// configurations trained on physical addresses.
func PhysicalTable(s *SuiteResults) *Table {
	t := &Table{
		Title:  "Section IV-E: physical-address training (geomean speedup vs physical baseline)",
		Header: []string{"configuration", "geomean speedup"},
	}
	for _, cfg := range s.ConfigOrder {
		if cfg == "no" {
			continue
		}
		t.AddRow(cfg, fmt.Sprintf("%+.2f%%", (s.GeomeanSpeedup(cfg)-1)*100))
	}
	return t
}

// Fig16 reproduces Figure 16: normalized IPC on the CloudSuite-like
// workloads.
func Fig16(s *SuiteResults) *Table {
	t := &Table{
		Title:  "Figure 16: normalized IPC for CloudSuite applications",
		Header: []string{"configuration"},
	}
	for _, wl := range s.WorkloadOrder {
		t.Header = append(t.Header, wl)
	}
	for _, cfg := range s.ConfigOrder {
		if cfg == "no" {
			continue
		}
		row := []string{cfg}
		for _, wl := range s.WorkloadOrder {
			r, ok := s.Runs[cfg][wl]
			b, bok := s.baselineFor(wl)
			if !ok || !bok || b.R.IPC == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, f3(r.R.IPC/b.R.IPC))
		}
		t.AddRow(row...)
	}
	return t
}

// Headline summarizes the paper's abstract-level claims from the main
// sweep: speedups at each budget, gap to the ideal L1I, coverage,
// accuracy and the achieved L1I hit rate.
func Headline(s *SuiteResults) *Table {
	t := &Table{
		Title:  "Headline metrics (paper: 2K +7.5%, 4K +9.6%, 8K +10.1%, ideal +11.8%; coverage 88.2%, accuracy 71.5%, hit rate 97.6%)",
		Header: []string{"configuration", "geomean speedup", "% of ideal gap", "mean coverage", "mean accuracy", "mean L1I hit rate"},
	}
	ideal := s.GeomeanSpeedup("ideal")
	for _, cfg := range []string{"entangling-2k", "entangling-4k", "entangling-8k", "epi", "ideal"} {
		if _, ok := s.Runs[cfg]; !ok {
			continue
		}
		sp := s.GeomeanSpeedup(cfg)
		gap := "-"
		if ideal > 1 && cfg != "ideal" {
			gap = fmt.Sprintf("%.0f%%", (sp-1)/(ideal-1)*100)
		}
		var hit stats.RunningMean
		for _, wl := range s.WorkloadOrder {
			if r, ok := s.Runs[cfg][wl]; ok {
				hit.Add(r.R.L1IHitRate())
			}
		}
		t.AddRow(cfg,
			fmt.Sprintf("%+.2f%%", (sp-1)*100),
			gap,
			pct(stats.Mean(stats.FilterFinite(s.Coverage(cfg)))),
			pct(stats.Mean(stats.FilterFinite(s.Accuracy(cfg)))),
			pct(hit.Mean()))
	}
	return t
}
