package harness

import (
	"math"
	"strings"
	"testing"

	"entangling/internal/core"
	"entangling/internal/workload"
)

func TestCategoryMeanAndCategories(t *testing.T) {
	s := &SuiteResults{
		Runs: map[string]map[string]RunResult{
			"x": {
				"a": {Config: "x", Workload: "a", Category: workload.Srv,
					Ent: &core.Stats{TableHits: 10, DstFound: 20}},
				"b": {Config: "x", Workload: "b", Category: workload.Srv,
					Ent: &core.Stats{TableHits: 10, DstFound: 40}},
				"c": {Config: "x", Workload: "c", Category: workload.Crypto,
					Ent: nil}, // no entangling stats: excluded
			},
		},
		ConfigOrder:   []string{"x"},
		WorkloadOrder: []string{"a", "b", "c"},
	}
	means, devs := s.CategoryMean("x", entMetric(func(e *core.Stats) (float64, bool) {
		if e.TableHits == 0 {
			return 0, false
		}
		return float64(e.DstFound) / float64(e.TableHits), true
	}))
	if means[workload.Srv] != 3 {
		t.Errorf("srv mean = %v, want 3", means[workload.Srv])
	}
	if devs[workload.Srv] != 1 {
		t.Errorf("srv stddev = %v, want 1", devs[workload.Srv])
	}
	if _, ok := means[workload.Crypto]; ok {
		t.Error("category with no samples should be absent")
	}
	cats := s.Categories()
	if len(cats) != 2 {
		t.Errorf("categories = %v", cats)
	}
}

func TestSuiteMetricsWithoutBaseline(t *testing.T) {
	s := &SuiteResults{
		Runs:          map[string]map[string]RunResult{"x": {}},
		ConfigOrder:   []string{"x"},
		WorkloadOrder: []string{"a"},
	}
	// Vectors stay aligned with WorkloadOrder: undefined slots are NaN,
	// never silently dropped.
	if got := s.NormalizedIPC("x"); len(got) != 1 || !math.IsNaN(got[0]) {
		t.Errorf("NormalizedIPC without baseline = %v, want [NaN]", got)
	}
	if got := s.Coverage("x"); len(got) != 1 || !math.IsNaN(got[0]) {
		t.Errorf("Coverage without baseline = %v, want [NaN]", got)
	}
	if s.GeomeanSpeedup("x") != 0 {
		t.Error("GeomeanSpeedup without any usable baseline should be 0")
	}
	if s.StorageKB("x") != 0 {
		t.Error("StorageKB without runs should be 0")
	}
	if err := s.Validate(); err == nil {
		t.Error("incomplete suite validated")
	}
}

// alignedSuite builds a synthetic two-config, three-workload suite used
// by the aligned-vector tests. Baseline IPCs: a=1, b=0 (degenerate),
// c missing from cfg "x" (partial run map).
func alignedSuite() *SuiteResults {
	mk := func(cfg, wl string, ipc float64, misses uint64) RunResult {
		r := RunResult{Config: cfg, Workload: wl}
		r.R.IPC = ipc
		r.R.L1I.Misses = misses
		r.R.L1I.Accesses = misses * 10
		return r
	}
	return &SuiteResults{
		Runs: map[string]map[string]RunResult{
			"no": {
				"a": mk("no", "a", 1.0, 100),
				"b": mk("no", "b", 0.0, 0), // zero-IPC, zero-miss baseline
				"c": mk("no", "c", 2.0, 50),
			},
			"x": {
				"a": mk("x", "a", 1.5, 25),
				"b": mk("x", "b", 1.0, 10),
				// "c" missing: partial run map.
			},
		},
		ConfigOrder:   []string{"no", "x"},
		WorkloadOrder: []string{"a", "b", "c"},
	}
}

func TestAlignedVectors(t *testing.T) {
	s := alignedSuite()
	cases := []struct {
		name string
		got  []float64
		want []float64 // NaN marks an undefined slot
	}{
		{"NormalizedIPC", s.NormalizedIPC("x"), []float64{1.5, math.NaN(), math.NaN()}},
		{"Coverage", s.Coverage("x"), []float64{0.75, math.NaN(), math.NaN()}},
		{"MissRatios", s.MissRatios("x"), []float64{0.1, 0.1, math.NaN()}},
	}
	for _, c := range cases {
		if len(c.got) != len(s.WorkloadOrder) {
			t.Errorf("%s: length %d, want %d (aligned with WorkloadOrder)",
				c.name, len(c.got), len(s.WorkloadOrder))
			continue
		}
		for i, want := range c.want {
			got := c.got[i]
			switch {
			case math.IsNaN(want) && !math.IsNaN(got):
				t.Errorf("%s[%d] (%s) = %v, want NaN", c.name, i, s.WorkloadOrder[i], got)
			case !math.IsNaN(want) && math.Abs(got-want) > 1e-12:
				t.Errorf("%s[%d] (%s) = %v, want %v", c.name, i, s.WorkloadOrder[i], got, want)
			}
		}
	}
}

func TestGeomeanSpeedupSubsetSemantics(t *testing.T) {
	s := alignedSuite()
	// The usable-baseline subset is {a, c} (b's baseline IPC is 0).
	// "x" has no run for c, so its subset would differ from other
	// configurations': the result must be loudly NaN, not a quiet mean
	// over fewer workloads.
	if got := s.GeomeanSpeedup("x"); !math.IsNaN(got) {
		t.Errorf("GeomeanSpeedup over a partial run map = %v, want NaN", got)
	}
	// Baseline vs itself is defined on the full subset and equals 1.
	if got := s.GeomeanSpeedup("no"); math.Abs(got-1) > 1e-12 {
		t.Errorf("GeomeanSpeedup(no) = %v, want 1", got)
	}
	// Completing the run map makes "x" comparable again.
	r := RunResult{Config: "x", Workload: "c"}
	r.R.IPC = 3.0
	s.Runs["x"]["c"] = r
	want := math.Sqrt(1.5 * 1.5) // geomean of {1.5, 3.0/2.0}
	if got := s.GeomeanSpeedup("x"); math.Abs(got-want) > 1e-12 {
		t.Errorf("GeomeanSpeedup(x) = %v, want %v", got, want)
	}
}

func TestStorageKBDeterministic(t *testing.T) {
	s := &SuiteResults{
		Runs:          map[string]map[string]RunResult{"x": {}},
		ConfigOrder:   []string{"x"},
		WorkloadOrder: []string{"a", "b"},
	}
	ra := RunResult{Config: "x", Workload: "a"}
	ra.R.StorageBits = 8 * 1024 * 16 // 16 KB
	rb := RunResult{Config: "x", Workload: "b"}
	rb.R.StorageBits = 8 * 1024 * 32
	s.Runs["x"]["a"] = ra
	s.Runs["x"]["b"] = rb
	// The first workload in WorkloadOrder decides, not map iteration.
	if got := s.StorageKB("x"); got != 16 {
		t.Errorf("StorageKB = %v, want 16 (from WorkloadOrder[0])", got)
	}
	// Validate flags the disagreement between runs of one configuration.
	err := s.Validate()
	if err == nil {
		t.Fatal("Validate accepted runs disagreeing on StorageBits")
	}
	if !strings.Contains(err.Error(), "storage") {
		t.Errorf("Validate error %q does not mention storage", err)
	}
}

func TestFig11RowShape(t *testing.T) {
	// Synthetic suite with the ablation config names present.
	s := &SuiteResults{Runs: map[string]map[string]RunResult{}}
	add := func(cfg string, ipc float64) {
		s.Runs[cfg] = map[string]RunResult{"w": {Config: cfg, Workload: "w"}}
		r := s.Runs[cfg]["w"]
		r.R.IPC = ipc
		s.Runs[cfg]["w"] = r
	}
	add("no", 1.0)
	for _, size := range []string{"2k", "4k", "8k"} {
		for _, v := range []string{"-BB", "-Ent", "-BBEnt", "-BBEntBB", ""} {
			add("entangling-"+size+v, 1.1)
		}
	}
	s.WorkloadOrder = []string{"w"}
	tab := Fig11(s)
	if len(tab.Rows) != 5 {
		t.Fatalf("Fig11 rows = %d, want 5", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != 4 {
			t.Errorf("Fig11 row %v has %d cells", row, len(row))
		}
		if row[1] != "+10.00%" {
			t.Errorf("speedup cell = %q", row[1])
		}
	}
}

func TestPhysicalTableSkipsBaseline(t *testing.T) {
	s := &SuiteResults{
		Runs: map[string]map[string]RunResult{
			"no": {"w": {}}, "p": {"w": {}},
		},
		ConfigOrder:   []string{"no", "p"},
		WorkloadOrder: []string{"w"},
	}
	tab := PhysicalTable(s)
	if len(tab.Rows) != 1 || tab.Rows[0][0] != "p" {
		t.Errorf("PhysicalTable rows: %v", tab.Rows)
	}
}

func TestExtTablesRender(t *testing.T) {
	if len(SplitConfigurations()) != 7 || len(ContextConfigurations()) != 3 ||
		len(RetireConfigurations()) != 3 {
		t.Fatal("extension configuration lists wrong")
	}
	// Smoke the PQ sweep at tiny scale.
	tab, err := ExtPQSweep(60_000, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Errorf("PQ sweep rows = %d", len(tab.Rows))
	}
}

func TestHeadlineRenders(t *testing.T) {
	specs := workload.CVPSuite(1)[:2]
	cfgs := []Configuration{
		Baseline,
		{Name: "entangling-2k", Prefetcher: "entangling-2k"},
		{Name: "ideal", IdealL1I: true},
	}
	s, err := RunSuite(specs, cfgs, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	tab := Headline(s)
	if len(tab.Rows) != 2 { // entangling-2k + ideal
		t.Fatalf("Headline rows = %d: %v", len(tab.Rows), tab.Rows)
	}
	if tab.Rows[0][0] != "entangling-2k" {
		t.Errorf("first row %v", tab.Rows[0])
	}
}
