package harness

import (
	"testing"

	"entangling/internal/core"
	"entangling/internal/workload"
)

func TestCategoryMeanAndCategories(t *testing.T) {
	s := &SuiteResults{
		Runs: map[string]map[string]RunResult{
			"x": {
				"a": {Config: "x", Workload: "a", Category: workload.Srv,
					Ent: &core.Stats{TableHits: 10, DstFound: 20}},
				"b": {Config: "x", Workload: "b", Category: workload.Srv,
					Ent: &core.Stats{TableHits: 10, DstFound: 40}},
				"c": {Config: "x", Workload: "c", Category: workload.Crypto,
					Ent: nil}, // no entangling stats: excluded
			},
		},
		ConfigOrder:   []string{"x"},
		WorkloadOrder: []string{"a", "b", "c"},
	}
	means, devs := s.CategoryMean("x", entMetric(func(e *core.Stats) (float64, bool) {
		if e.TableHits == 0 {
			return 0, false
		}
		return float64(e.DstFound) / float64(e.TableHits), true
	}))
	if means[workload.Srv] != 3 {
		t.Errorf("srv mean = %v, want 3", means[workload.Srv])
	}
	if devs[workload.Srv] != 1 {
		t.Errorf("srv stddev = %v, want 1", devs[workload.Srv])
	}
	if _, ok := means[workload.Crypto]; ok {
		t.Error("category with no samples should be absent")
	}
	cats := s.Categories()
	if len(cats) != 2 {
		t.Errorf("categories = %v", cats)
	}
}

func TestSuiteMetricsWithoutBaseline(t *testing.T) {
	s := &SuiteResults{
		Runs:          map[string]map[string]RunResult{"x": {}},
		ConfigOrder:   []string{"x"},
		WorkloadOrder: []string{"a"},
	}
	if got := s.NormalizedIPC("x"); len(got) != 0 {
		t.Errorf("NormalizedIPC without baseline = %v", got)
	}
	if got := s.Coverage("x"); len(got) != 0 {
		t.Errorf("Coverage without baseline = %v", got)
	}
	if s.GeomeanSpeedup("x") != 0 {
		t.Error("GeomeanSpeedup without runs should be 0")
	}
	if s.StorageKB("x") != 0 {
		t.Error("StorageKB without runs should be 0")
	}
	if err := s.Validate(); err == nil {
		t.Error("incomplete suite validated")
	}
}

func TestFig11RowShape(t *testing.T) {
	// Synthetic suite with the ablation config names present.
	s := &SuiteResults{Runs: map[string]map[string]RunResult{}}
	add := func(cfg string, ipc float64) {
		s.Runs[cfg] = map[string]RunResult{"w": {Config: cfg, Workload: "w"}}
		r := s.Runs[cfg]["w"]
		r.R.IPC = ipc
		s.Runs[cfg]["w"] = r
	}
	add("no", 1.0)
	for _, size := range []string{"2k", "4k", "8k"} {
		for _, v := range []string{"-BB", "-Ent", "-BBEnt", "-BBEntBB", ""} {
			add("entangling-"+size+v, 1.1)
		}
	}
	s.WorkloadOrder = []string{"w"}
	tab := Fig11(s)
	if len(tab.Rows) != 5 {
		t.Fatalf("Fig11 rows = %d, want 5", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != 4 {
			t.Errorf("Fig11 row %v has %d cells", row, len(row))
		}
		if row[1] != "+10.00%" {
			t.Errorf("speedup cell = %q", row[1])
		}
	}
}

func TestPhysicalTableSkipsBaseline(t *testing.T) {
	s := &SuiteResults{
		Runs: map[string]map[string]RunResult{
			"no": {"w": {}}, "p": {"w": {}},
		},
		ConfigOrder:   []string{"no", "p"},
		WorkloadOrder: []string{"w"},
	}
	tab := PhysicalTable(s)
	if len(tab.Rows) != 1 || tab.Rows[0][0] != "p" {
		t.Errorf("PhysicalTable rows: %v", tab.Rows)
	}
}

func TestExtTablesRender(t *testing.T) {
	if len(SplitConfigurations()) != 7 || len(ContextConfigurations()) != 3 ||
		len(RetireConfigurations()) != 3 {
		t.Fatal("extension configuration lists wrong")
	}
	// Smoke the PQ sweep at tiny scale.
	tab, err := ExtPQSweep(60_000, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Errorf("PQ sweep rows = %d", len(tab.Rows))
	}
}

func TestHeadlineRenders(t *testing.T) {
	specs := workload.CVPSuite(1)[:2]
	cfgs := []Configuration{
		Baseline,
		{Name: "entangling-2k", Prefetcher: "entangling-2k"},
		{Name: "ideal", IdealL1I: true},
	}
	s, err := RunSuite(specs, cfgs, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	tab := Headline(s)
	if len(tab.Rows) != 2 { // entangling-2k + ideal
		t.Fatalf("Headline rows = %d: %v", len(tab.Rows), tab.Rows)
	}
	if tab.Rows[0][0] != "entangling-2k" {
		t.Errorf("first row %v", tab.Rows[0])
	}
}
