package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"entangling/internal/faultinject"
	"entangling/internal/workload"
)

// forkBatterySpecs returns the differential battery's workloads: the
// CVP suite under two distinct seeds per category, so every class is
// exercised on streams that differ in everything but shape.
func forkBatterySpecs() []workload.Spec {
	specs := workload.CVPSuite(1)
	reseeded := workload.CVPSuite(1)
	for i := range reseeded {
		reseeded[i].Name += "-s2"
		reseeded[i].Params.Name = reseeded[i].Name
		reseeded[i].Params.Seed ^= 0x9E3779B97F4A7C15
	}
	return append(specs, reseeded...)
}

// sweepSHA runs the sweep and returns its serialized metrics export.
func sweepSHA(t *testing.T, specs []workload.Spec, cfgs []Configuration, opt Options) ([]byte, *SuiteResults) {
	t.Helper()
	s, err := RunSuiteCtx(context.Background(), specs, cfgs, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, s.Metrics()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), s
}

// TestForkedSweepMatchesSequential is the end-to-end equivalence gate
// of warmup-snapshot forking: the full 16-configuration lineup over
// two seeds per workload category, run (a) sequentially, (b) with a
// cold snapshot cache (every class warms and offers), and (c) with the
// warm cache at parallelism 1 (every class forks, no warmup simulated
// at all) — all three metrics exports must be byte-identical. An
// aliased configuration (same machine-shaping fields, different name)
// rides along to prove within-sweep class sharing changes nothing.
func TestForkedSweepMatchesSequential(t *testing.T) {
	specs := forkBatterySpecs()
	cfgs := append(StandardConfigurations(),
		Configuration{Name: "entangling-4k-alias", Prefetcher: "entangling-4k"})
	opt := Options{Warmup: 80_000, Measure: 50_000, Parallelism: 8}

	seq, _ := sweepSHA(t, specs, cfgs, opt)

	warm := NewWarmupSnapshots()
	opt.Warm = warm
	cold, _ := sweepSHA(t, specs, cfgs, opt)
	if !bytes.Equal(seq, cold) {
		t.Fatal("forked sweep (cold cache) metrics differ from sequential sweep")
	}
	if warm.Len() == 0 {
		t.Fatal("cold forked sweep offered no warmup snapshots")
	}

	opt.Parallelism = 1
	hot, s := sweepSHA(t, specs, cfgs, opt)
	if !bytes.Equal(seq, hot) {
		t.Fatal("forked sweep (hot cache, parallelism 1) metrics differ from sequential sweep")
	}

	// The alias shares entangling-4k's warmup class; its per-workload
	// results must be identical to the original's.
	for _, wl := range s.WorkloadOrder {
		a, b := s.Runs["entangling-4k"][wl], s.Runs["entangling-4k-alias"][wl]
		if !reflect.DeepEqual(a.R, b.R) {
			t.Errorf("aliased configuration diverged from entangling-4k on %s", wl)
		}
	}
}

// TestRunTraceWarmCtxHitEqualsMiss drives the warm path directly: the
// first call warms and offers, the second forks the snapshot, and both
// must equal the plain sequential RunTraceCtx result exactly.
func TestRunTraceWarmCtxHitEqualsMiss(t *testing.T) {
	ctx := context.Background()
	spec := workload.CVPSuite(1)[0]
	cfg := Configuration{Name: "djolt", Prefetcher: "djolt"}
	const warmup, measure = 100_000, 60_000
	tr, err := workload.Materialize(spec, warmup+measure)
	if err != nil {
		t.Fatal(err)
	}

	want, err := RunTraceCtx(ctx, cfg, spec, tr, warmup, measure)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewWarmupSnapshots()
	miss, err := RunTraceWarmCtx(ctx, cfg, spec, tr, warmup, measure, warm)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Len() != 1 {
		t.Fatalf("snapshot cache holds %d entries after a miss, want 1", warm.Len())
	}
	hit, err := RunTraceWarmCtx(ctx, cfg, spec, tr, warmup, measure, warm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(miss, want) {
		t.Error("miss-path result differs from sequential RunTraceCtx")
	}
	if !reflect.DeepEqual(hit, want) {
		t.Error("hit-path (forked) result differs from sequential RunTraceCtx")
	}
}

// TestForkedSweepWithFaultPlan re-runs the fault-tolerance battery on
// the forked path: injected cell panics and errors (with retries) must
// not disturb the snapshot cache or the final export.
func TestForkedSweepWithFaultPlan(t *testing.T) {
	specs := workload.CVPSuite(1)
	cfgs := []Configuration{
		Baseline,
		{Name: "nextline", Prefetcher: "nextline"},
		{Name: "entangling-2k", Prefetcher: "entangling-2k"},
	}
	opt := Options{Warmup: 80_000, Measure: 50_000, Parallelism: 4}
	clean, _ := sweepSHA(t, specs, cfgs, opt)

	inj := faultinject.New(faultinject.Plan{
		Seed:          7,
		CellPanicProb: 0.3,
		CellErrorProb: 0.3,
	})
	opt.Warm = NewWarmupSnapshots()
	opt.CellHook = inj.CellHook
	opt.Retries = 3
	faulty, _ := sweepSHA(t, specs, cfgs, opt)
	if inj.Stats().Total() == 0 {
		t.Fatal("fault plan injected nothing; the battery proved nothing")
	}
	if !bytes.Equal(clean, faulty) {
		t.Fatal("forked sweep under fault injection diverged from clean sequential sweep")
	}
}

// TestForkedSweepCancellation: cancellation with a warm cache behaves
// exactly like the sequential path — abandoned cells come back as
// ErrCellCanceled, nothing deadlocks waiting on a snapshot.
func TestForkedSweepCancellation(t *testing.T) {
	specs := workload.CVPSuite(1)
	cfgs := []Configuration{Baseline, {Name: "nextline", Prefetcher: "nextline"}}
	warm := NewWarmupSnapshots()
	opt := Options{Warmup: 200_000, Measure: 200_000, Parallelism: 2, Warm: warm}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSuiteCtx(ctx, specs, cfgs, opt)
	if !errors.Is(err, ErrCellCanceled) {
		t.Fatalf("canceled forked sweep: %v, want ErrCellCanceled", err)
	}
	// A canceled warmup must never have been offered as a snapshot.
	if warm.Len() != 0 {
		t.Errorf("canceled sweep left %d snapshots in the cache", warm.Len())
	}
}

// TestWarmupClassKey pins the equivalence-class definition: the
// display name and the measure window are excluded; every
// machine-shaping field, the workload parameters and the warmup length
// are included.
func TestWarmupClassKey(t *testing.T) {
	spec := workload.CVPSuite(1)[0]
	base := Configuration{Name: "a", Prefetcher: "djolt"}
	if WarmupClass(base, spec, 1000) != WarmupClass(Configuration{Name: "b", Prefetcher: "djolt"}, spec, 1000) {
		t.Error("class must ignore the display name")
	}
	diffs := []Configuration{
		{Name: "a", Prefetcher: "nextline"},
		{Name: "a", Prefetcher: "djolt", IdealL1I: true},
		{Name: "a", Prefetcher: "djolt", L1IWays: 16},
		{Name: "a", Prefetcher: "djolt", Physical: true},
	}
	for _, d := range diffs {
		if WarmupClass(base, spec, 1000) == WarmupClass(d, spec, 1000) {
			t.Errorf("class collision between %+v and %+v", base, d)
		}
	}
	if WarmupClass(base, spec, 1000) == WarmupClass(base, spec, 2000) {
		t.Error("class must include the warmup length")
	}
	spec2 := spec
	spec2.Params.Seed++
	if WarmupClass(base, spec, 1000) == WarmupClass(base, spec2, 1000) {
		t.Error("class must include the workload parameters")
	}
}

// TestWarmupSnapshotsSemantics covers the cache contract: nil-safety,
// first-offer-wins, the entry cap, and the self-healing drop of an
// unusable entry.
func TestWarmupSnapshotsSemantics(t *testing.T) {
	var nilCache *WarmupSnapshots
	if _, _, ok := nilCache.Fork("x"); ok {
		t.Error("nil cache must always miss")
	}
	nilCache.Offer("x", nil, 0) // must not panic
	if nilCache.Len() != 0 {
		t.Error("nil cache has entries")
	}

	spec := workload.CVPSuite(1)[0]
	tr, err := workload.Materialize(spec, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machineFor(Baseline, spec.Params.Seed, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WarmupCtx(context.Background(), tr.Source(), 30_000); err != nil {
		t.Fatal(err)
	}

	w := NewWarmupSnapshots()
	for i := 0; i < warmupSnapshotCap+5; i++ {
		f, err := m.Fork()
		if err != nil {
			t.Fatal(err)
		}
		w.Offer(fmt.Sprintf("class-%02d", i), f, m.Consumed())
	}
	if w.Len() != warmupSnapshotCap {
		t.Fatalf("cache holds %d entries, want cap %d", w.Len(), warmupSnapshotCap)
	}
	if _, _, ok := w.Fork(fmt.Sprintf("class-%02d", warmupSnapshotCap)); ok {
		t.Error("offer past the cap was stored")
	}
	f, pos, ok := w.Fork("class-00")
	if !ok || f == nil || pos != m.Consumed() {
		t.Fatalf("stored snapshot did not fork (ok=%v pos=%d)", ok, pos)
	}
	if !f.Warmed() {
		t.Error("forked snapshot is not warm")
	}

	// A consumed machine offered by mistake is unusable; the first Fork
	// drops it and misses so the caller re-warms.
	used, err := m.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := used.MeasureCtx(context.Background(), tr.SourceAt(m.Consumed()), 5_000); err != nil {
		t.Fatal(err)
	}
	w2 := NewWarmupSnapshots()
	w2.Offer("bad", used, m.Consumed())
	if _, _, ok := w2.Fork("bad"); ok {
		t.Error("fork of a consumed snapshot succeeded")
	}
	if w2.Len() != 0 {
		t.Error("unusable entry was not dropped")
	}
}
