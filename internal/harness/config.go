// Package harness drives the paper's evaluation: it assembles
// machines for the configurations of §IV-B, runs them over the
// synthetic workload suites, aggregates the metrics, and renders every
// table and figure of §IV. Both cmd/paperfigs and the repository's
// benchmark suite are thin wrappers around this package.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"entangling/internal/cache"
	"entangling/internal/core"
	"entangling/internal/cpu"
	"entangling/internal/prefetch"
	"entangling/internal/trace"
	"entangling/internal/workload"
)

// Configuration names one evaluated machine setup (§IV-B).
type Configuration struct {
	// Name labels the configuration in figures.
	Name string
	// Prefetcher is the registry name of the L1I prefetcher ("" or
	// "no" for none).
	Prefetcher string
	// IdealL1I makes the L1I always hit (the paper's Ideal).
	IdealL1I bool
	// L1IWays overrides the L1I associativity (the paper's L1I-64KB
	// and L1I-96KB configurations use 16 and 24 ways).
	L1IWays int
	// Physical trains the hierarchy and prefetcher on physical
	// addresses (§IV-E).
	Physical bool
}

// Baseline is the no-prefetcher configuration every normalization uses.
var Baseline = Configuration{Name: "no"}

// StandardConfigurations returns the §IV-B lineup of Figure 6.
func StandardConfigurations() []Configuration {
	return []Configuration{
		Baseline,
		{Name: "nextline", Prefetcher: "nextline"},
		{Name: "sn4l", Prefetcher: "sn4l"},
		{Name: "mana-2k", Prefetcher: "mana-2k"},
		{Name: "mana-4k", Prefetcher: "mana-4k"},
		{Name: "mana-8k", Prefetcher: "mana-8k"},
		{Name: "rdip", Prefetcher: "rdip"},
		{Name: "djolt", Prefetcher: "djolt"},
		{Name: "fnl+mma", Prefetcher: "fnl+mma"},
		{Name: "epi", Prefetcher: "epi"},
		{Name: "entangling-2k", Prefetcher: "entangling-2k"},
		{Name: "entangling-4k", Prefetcher: "entangling-4k"},
		{Name: "entangling-8k", Prefetcher: "entangling-8k"},
		{Name: "l1i-64kb", L1IWays: 16},
		{Name: "l1i-96kb", L1IWays: 24},
		{Name: "ideal", IdealL1I: true},
	}
}

// CompactConfigurations returns the sub-64KB subset most per-workload
// figures focus on (§IV-C: "focus on the prefetching techniques that
// require less than 64KB of storage"), plus baseline and ideal.
func CompactConfigurations() []Configuration {
	return []Configuration{
		Baseline,
		{Name: "nextline", Prefetcher: "nextline"},
		{Name: "sn4l", Prefetcher: "sn4l"},
		{Name: "mana-2k", Prefetcher: "mana-2k"},
		{Name: "mana-4k", Prefetcher: "mana-4k"},
		{Name: "rdip", Prefetcher: "rdip"},
		{Name: "entangling-2k", Prefetcher: "entangling-2k"},
		{Name: "entangling-4k", Prefetcher: "entangling-4k"},
		{Name: "ideal", IdealL1I: true},
	}
}

// PhysicalConfigurations returns the §IV-E physical-address lineup.
func PhysicalConfigurations() []Configuration {
	return []Configuration{
		{Name: "no", Physical: true},
		{Name: "entangling-2k-phys", Prefetcher: "entangling-2k-phys", Physical: true},
		{Name: "entangling-4k-phys", Prefetcher: "entangling-4k-phys", Physical: true},
		{Name: "entangling-8k-phys", Prefetcher: "entangling-8k-phys", Physical: true},
	}
}

// AblationConfigurations returns the Figure 11 variant matrix.
func AblationConfigurations() []Configuration {
	out := []Configuration{Baseline}
	for _, size := range []string{"2k", "4k", "8k"} {
		for _, v := range []string{"BB", "BBEnt", "BBEntBB", "Ent"} {
			name := "entangling-" + size + "-" + v
			out = append(out, Configuration{Name: name, Prefetcher: name})
		}
		name := "entangling-" + size
		out = append(out, Configuration{Name: name, Prefetcher: name})
	}
	return out
}

// KnownConfigurations returns every named configuration the
// repository defines — the §IV-B lineup, the ablation matrix, the
// physical-address variants and the extension studies — deduplicated
// by name, order-stable. The job server resolves client-requested
// configuration names against this registry, so the network API can
// only ever run vetted machine setups.
func KnownConfigurations() []Configuration {
	var all []Configuration
	all = append(all, StandardConfigurations()...)
	all = append(all, AblationConfigurations()...)
	all = append(all, PhysicalConfigurations()...)
	all = append(all, SplitConfigurations()...)
	all = append(all, ContextConfigurations()...)
	all = append(all, RetireConfigurations()...)
	seen := make(map[string]bool, len(all))
	out := all[:0]
	for _, c := range all {
		if seen[c.Name] {
			continue
		}
		seen[c.Name] = true
		out = append(out, c)
	}
	return out
}

// Options control suite execution.
type Options struct {
	// Warmup instructions are discarded (the paper warms caches before
	// measuring).
	Warmup uint64
	// Measure instructions are measured.
	Measure uint64
	// PerCategory sizes the CVP-like suite (workloads per category).
	PerCategory int
	// Parallelism bounds concurrent runs (defaults to GOMAXPROCS).
	Parallelism int
	// Traces, when non-nil, is a shared trace cache RunSuite draws from
	// instead of building a private one. Drivers that run several
	// sweeps over the same specs (benchmark iterations) pin the specs
	// in a shared cache once so repeat sweeps skip generation.
	Traces *workload.TraceCache

	// Retries is how many times a failed cell attempt is re-run before
	// the cell is reported failed (0 = fail on first error). Canceled
	// cells are never retried.
	Retries int
	// RetryBaseDelay is the backoff before the first retry; it doubles
	// per further attempt with deterministic jitter. Zero retries
	// immediately.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the backoff growth (0 = 16x RetryBaseDelay).
	RetryMaxDelay time.Duration
	// CellTimeout bounds each cell attempt's wall-clock time; an
	// attempt past its deadline is abandoned (and retried, if retries
	// remain). Zero means no deadline.
	CellTimeout time.Duration

	// CellHook, when set, runs at the start of every cell attempt
	// (fault injection in tests — see internal/faultinject). An error
	// fails the attempt; a panic is recovered like any cell panic.
	CellHook func(config, workload string) error

	// Progress, when set, observes every cell lifecycle transition of
	// the sweep (started / retried / finished / failed / restored).
	// Called concurrently from worker goroutines; see ProgressFunc.
	Progress ProgressFunc

	// Observe, when set, receives every completed cell's result —
	// both cells simulated by this run and cells restored from the
	// checkpoint store — exactly once per (config, workload) cell.
	// It feeds online consumers such as the internal/predict training
	// loop and has no effect on the sweep's own results or
	// checkpoints. Called concurrently from worker goroutines; must
	// be safe for concurrent use.
	Observe func(cfg Configuration, spec workload.Spec, res RunResult)

	// Warm, when non-nil, caches post-warmup machine snapshots keyed
	// by warmup-equivalence class (see WarmupSnapshots): cells whose
	// class already has a snapshot fork it and simulate only their
	// measured window. Nil keeps every cell on the sequential
	// warmup+measure path. Configurations that cannot fork fall back
	// to the sequential path cell by cell either way.
	Warm *WarmupSnapshots

	// Checkpoint, when non-nil, persists every completed cell to the
	// store so an interrupted sweep can be resumed.
	Checkpoint *CheckpointStore
	// Resume makes RunSuite consult Checkpoint before running a cell
	// and reuse any valid record with a matching fingerprint. Corrupt
	// records are quarantined and their cells re-run.
	Resume bool
}

// DefaultOptions returns the paperfigs defaults.
func DefaultOptions() Options {
	return Options{
		Warmup:         2_000_000,
		Measure:        1_000_000,
		PerCategory:    6,
		Parallelism:    runtime.GOMAXPROCS(0),
		Retries:        2,
		RetryBaseDelay: 100 * time.Millisecond,
	}
}

// QuickOptions returns a reduced setting for benchmarks and smoke runs.
func QuickOptions() Options {
	return Options{
		Warmup:      800_000,
		Measure:     400_000,
		PerCategory: 2,
		Parallelism: runtime.GOMAXPROCS(0),
	}
}

// RunResult couples one (configuration, workload) run with its
// results.
type RunResult struct {
	Config   string
	Workload string
	Category workload.Category
	R        cpu.Results
	// Ent holds Entangling-internal statistics when the configuration
	// runs an Entangling prefetcher (Figures 12-15).
	Ent *core.Stats
}

// Run executes one configuration over one workload. extraListener and
// branchHook may be nil; they serve the oracle studies.
func Run(cfg Configuration, spec workload.Spec, warmup, measure uint64,
	extraListener cache.Listener, branchHook func(prefetch.BranchEvent)) (RunResult, error) {

	prog, err := workload.BuildProgram(spec.Params)
	if err != nil {
		return RunResult{}, fmt.Errorf("harness: building %s: %w", spec.Name, err)
	}
	m, err := machineFor(cfg, spec.Params.Seed, extraListener, branchHook)
	if err != nil {
		return RunResult{}, err
	}
	r := m.RunWindows(workload.NewWalker(prog), warmup, measure)

	out := RunResult{Config: cfg.Name, Workload: spec.Name, Category: spec.Params.Category, R: r}
	if ent, ok := m.Prefetcher().(*core.Entangling); ok {
		s := ent.Stats()
		out.Ent = &s
	}
	return out, nil
}

// RunTrace executes one configuration over a pre-materialized workload
// trace (see workload.TraceCache). Behaviour is identical to Run — the
// walker is deterministic, so replaying its materialized stream
// produces the same machine state — but the generation cost is paid
// once per trace instead of once per run.
func RunTrace(cfg Configuration, spec workload.Spec, tr *workload.Trace, warmup, measure uint64) (RunResult, error) {
	return RunTraceCtx(context.Background(), cfg, spec, tr, warmup, measure)
}

// RunTraceCtx is RunTrace with cooperative cancellation: the
// simulation loop polls ctx and abandons the run with ctx's error when
// it fires. context.Background() keeps the uncancellable fast path.
func RunTraceCtx(ctx context.Context, cfg Configuration, spec workload.Spec, tr *workload.Trace, warmup, measure uint64) (RunResult, error) {
	m, err := machineFor(cfg, spec.Params.Seed, nil, nil)
	if err != nil {
		return RunResult{}, err
	}
	r, err := m.RunWindowsCtx(ctx, tr.Source(), warmup, measure)
	if err != nil {
		return RunResult{}, err
	}
	return runResultFrom(cfg, spec, m, r), nil
}

// RunSource executes one configuration over an arbitrary instruction
// source (e.g. a trace file). The source is consumed once.
func RunSource(cfg Configuration, src trace.Source, warmup, measure uint64) (RunResult, error) {
	m, err := machineFor(cfg, 0, nil, nil)
	if err != nil {
		return RunResult{}, err
	}
	r := m.RunWindows(src, warmup, measure)
	out := RunResult{Config: cfg.Name, Workload: "trace", R: r}
	if ent, ok := m.Prefetcher().(*core.Entangling); ok {
		s := ent.Stats()
		out.Ent = &s
	}
	return out, nil
}

// machineFor assembles the simulated machine for a configuration.
func machineFor(cfg Configuration, salt uint64,
	extraListener cache.Listener, branchHook func(prefetch.BranchEvent)) (*cpu.Machine, error) {

	mc := cpu.DefaultConfig()
	if cfg.IdealL1I {
		mc.L1I.Ideal = true
	}
	if cfg.L1IWays > 0 {
		mc.L1I.Ways = cfg.L1IWays
	}
	if cfg.Physical {
		mc.PhysicalAddresses = true
		mc.TranslatorSalt = salt
	}
	if cfg.Prefetcher != "" && cfg.Prefetcher != "no" {
		name := cfg.Prefetcher
		var perr error
		mc.Prefetcher = func(is prefetch.Issuer) prefetch.Prefetcher {
			pf, err := prefetch.New(name, is)
			if err != nil {
				perr = err
				return prefetch.NewNone(is)
			}
			return pf
		}
		// Eagerly validate the name so the error surfaces before the run.
		if _, err := prefetch.New(name, nopIssuer{}); err != nil {
			return nil, err
		}
		_ = perr
	}
	mc.ExtraL1IListener = extraListener
	mc.BranchHook = branchHook
	return cpu.New(mc), nil
}

// nopIssuer validates registry names without a real cache.
type nopIssuer struct{}

func (nopIssuer) Prefetch(uint64, uint64, uint64) bool { return true }
