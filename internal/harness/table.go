package harness

import (
	"encoding/json"
	"fmt"
	"strings"

	"entangling/internal/stats"
)

// Table is a rendered experiment result: the textual equivalent of one
// of the paper's figures or tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Note carries caveats (e.g. suite size) into the rendering.
	Note string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
		sb.WriteString(strings.Repeat("=", len(t.Title)) + "\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", max(0, total-2)) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		sb.WriteString("note: " + t.Note + "\n")
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(esc(c))
		}
		sb.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// f2, f3, pct format numeric cells consistently across figures.
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// QualityTable renders the per-configuration prefetch-quality columns
// of the lifecycle layer: beyond coverage/accuracy, the breakdown the
// paper's timeliness argument rests on (how many prefetches were fully
// timely, how many a demand caught in flight and how much latency
// those still hid, and how many were early or outright wrong), plus
// the share of attributed stall cycles the L1I is responsible for.
func QualityTable(s *SuiteResults) *Table {
	t := &Table{
		Title: "Prefetch quality: lifecycle breakdown and stall attribution",
		Header: []string{"configuration", "speedup", "coverage", "accuracy",
			"timely", "late", "early", "inaccurate", "saved/late", "L1I stall share"},
		Note: "timely/late/early/inaccurate are fractions of prefetch fills; saved/late is mean cycles a late prefetch still hid",
	}
	for _, cfg := range s.ConfigOrder {
		if cfg == "no" {
			continue
		}
		var lc stats.PrefetchLifecycle
		var fills uint64
		for _, wl := range s.WorkloadOrder {
			if r, ok := s.Runs[cfg][wl]; ok {
				l := r.R.Lifecycle
				lc.Timely += l.Timely
				lc.Late += l.Late
				lc.EvictedUnused += l.EvictedUnused
				lc.EarlyEvicted += l.EarlyEvicted
				lc.LateCyclesSaved += l.LateCyclesSaved
				fills += r.R.L1I.PrefetchFills
			}
		}
		frac := func(n uint64) string {
			return pct(stats.Ratio(float64(n), float64(fills)))
		}
		t.AddRow(cfg,
			fmt.Sprintf("%+.2f%%", (s.GeomeanSpeedup(cfg)-1)*100),
			pct(stats.Mean(stats.FilterFinite(s.Coverage(cfg)))),
			pct(stats.Mean(stats.FilterFinite(s.Accuracy(cfg)))),
			frac(lc.Timely), frac(lc.Late), frac(lc.EarlyEvicted), frac(lc.Inaccurate()),
			f2(lc.MeanSaved()),
			pct(stats.Mean(stats.FilterFinite(s.L1IStallShares(cfg)))))
	}
	return t
}

// JSON renders the table as a JSON object with title, header, rows and
// note, for downstream tooling.
func (t *Table) JSON() string {
	obj := struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Note   string     `json:"note,omitempty"`
	}{t.Title, t.Header, t.Rows, t.Note}
	b, err := json.MarshalIndent(obj, "", "  ")
	if err != nil {
		// A slice-of-strings structure cannot fail to marshal; keep the
		// signature ergonomic.
		return "{}"
	}
	return string(b)
}
