package harness

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the textual equivalent of one
// of the paper's figures or tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Note carries caveats (e.g. suite size) into the rendering.
	Note string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
		sb.WriteString(strings.Repeat("=", len(t.Title)) + "\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", max(0, total-2)) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		sb.WriteString("note: " + t.Note + "\n")
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(esc(c))
		}
		sb.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// f2, f3, pct format numeric cells consistently across figures.
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// JSON renders the table as a JSON object with title, header, rows and
// note, for downstream tooling.
func (t *Table) JSON() string {
	obj := struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Note   string     `json:"note,omitempty"`
	}{t.Title, t.Header, t.Rows, t.Note}
	b, err := json.MarshalIndent(obj, "", "  ")
	if err != nil {
		// A slice-of-strings structure cannot fail to marshal; keep the
		// signature ergonomic.
		return "{}"
	}
	return string(b)
}
