package harness

import (
	"fmt"

	"entangling/internal/cpu"
	"entangling/internal/prefetch"
	"entangling/internal/workload"
)

// This file drives the studies beyond the paper's main evaluation:
// the split size/pair structures the paper leaves as future work
// (§III-C3), the context-replication variant it reports and rejects
// (§III-B1), and the prefetch-queue sensitivity its §IV-D discussion
// predicts.

// SplitConfigurations returns unified-vs-split pairs per budget.
func SplitConfigurations() []Configuration {
	return []Configuration{
		Baseline,
		{Name: "entangling-2k", Prefetcher: "entangling-2k"},
		{Name: "entangling-2k-split", Prefetcher: "entangling-2k-split"},
		{Name: "entangling-4k", Prefetcher: "entangling-4k"},
		{Name: "entangling-4k-split", Prefetcher: "entangling-4k-split"},
		{Name: "entangling-8k", Prefetcher: "entangling-8k"},
		{Name: "entangling-8k-split", Prefetcher: "entangling-8k-split"},
	}
}

// ContextConfigurations returns the plain-vs-context comparison.
func ContextConfigurations() []Configuration {
	return []Configuration{
		Baseline,
		{Name: "entangling-4k", Prefetcher: "entangling-4k"},
		{Name: "entangling-4k-ctx", Prefetcher: "entangling-4k-ctx"},
	}
}

// ExtSplitTable renders the future-work split study from a sweep over
// SplitConfigurations.
func ExtSplitTable(s *SuiteResults) *Table {
	t := &Table{
		Title:  "Extension (§III-C3 future work): split size/pair structures",
		Header: []string{"configuration", "storage (KB)", "geomean speedup"},
		Note:   "split = block sizes in a dedicated table, entangled pairs in a halved table",
	}
	for _, cfg := range s.ConfigOrder {
		if cfg == "no" {
			continue
		}
		t.AddRow(cfg, f2(s.StorageKB(cfg)), fmt.Sprintf("%+.2f%%", (s.GeomeanSpeedup(cfg)-1)*100))
	}
	return t
}

// ExtContextTable renders the rejected context variant from a sweep
// over ContextConfigurations.
func ExtContextTable(s *SuiteResults) *Table {
	t := &Table{
		Title:  "Extension (§III-B1 rejected variant): context-replicated sources",
		Header: []string{"configuration", "geomean speedup"},
		Note:   "the paper reports this variant overloads the Entangled table and loses performance",
	}
	for _, cfg := range s.ConfigOrder {
		if cfg == "no" {
			continue
		}
		t.AddRow(cfg, fmt.Sprintf("%+.2f%%", (s.GeomeanSpeedup(cfg)-1)*100))
	}
	return t
}

// ExtPQSweep runs the prefetch-queue sensitivity study on one srv
// workload with the entangling-4k configuration.
func ExtPQSweep(warmup, measure uint64) (*Table, error) {
	p := workload.Preset(workload.Srv)
	p.Seed = 1
	p.Name = "srv-pq"
	prog, err := workload.BuildProgram(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Extension (§IV-D): prefetch-queue size sensitivity (srv, entangling-4k)",
		Header: []string{"PQ entries", "IPC", "PQ overflow drops", "prefetches issued"},
		Note:   "the paper predicts fewer discarded prefetches with a larger PQ",
	}
	for _, pq := range []int{8, 16, 32, 64, 128} {
		cfg := cpu.DefaultConfig()
		cfg.L1I.PQSize = pq
		var perr error
		cfg.Prefetcher = func(is prefetch.Issuer) prefetch.Prefetcher {
			pf, err := prefetch.New("entangling-4k", is)
			if err != nil {
				perr = err
				return prefetch.NewNone(is)
			}
			return pf
		}
		m := cpu.New(cfg)
		r := m.RunWindows(workload.NewWalker(prog), warmup, measure)
		if perr != nil {
			return nil, perr
		}
		t.AddRow(fmt.Sprintf("%d", pq), f3(r.IPC),
			fmt.Sprintf("%d", r.L1I.PrefetchDroppedPQ), fmt.Sprintf("%d", r.L1I.PrefetchIssued))
	}
	return t, nil
}

// RetireConfigurations returns the prefetch-on-retire comparison
// (§III-C1): triggering at retire avoids wrong-path prefetches at a
// timeliness cost. The simulator (like the paper's ChampSim) has no
// wrong path, so only the cost side shows.
func RetireConfigurations() []Configuration {
	return []Configuration{
		Baseline,
		{Name: "entangling-4k", Prefetcher: "entangling-4k"},
		{Name: "entangling-4k-retire", Prefetcher: "entangling-4k-retire"},
	}
}

// ExtRetireTable renders the prefetch-on-retire study.
func ExtRetireTable(s *SuiteResults) *Table {
	t := &Table{
		Title:  "Extension (§III-C1): prefetch-on-retire trigger",
		Header: []string{"configuration", "geomean speedup"},
		Note:   "retire-triggered prefetches can never be wrong-path; the delay costs timeliness",
	}
	for _, cfg := range s.ConfigOrder {
		if cfg == "no" {
			continue
		}
		t.AddRow(cfg, fmt.Sprintf("%+.2f%%", (s.GeomeanSpeedup(cfg)-1)*100))
	}
	return t
}
