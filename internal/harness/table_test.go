package harness

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "long-header"},
		Note:   "a note",
	}
	tab.AddRow("x", "1")
	tab.AddRow("longer-cell", "2")
	s := tab.String()
	for _, want := range []string{"T\n=", "long-header", "longer-cell", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
	// Columns align: the header row and data rows share widths.
	lines := strings.Split(s, "\n")
	var header, row string
	for i, l := range lines {
		if strings.HasPrefix(l, "a ") {
			header = l
			row = lines[i+2]
			break
		}
	}
	if header == "" {
		t.Fatalf("header not found in:\n%s", s)
	}
	if strings.Index(header, "long-header") != strings.Index(row, "1") {
		t.Errorf("columns misaligned:\n%q\n%q", header, row)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}}
	tab.AddRow("plain", `with "quotes", and comma`)
	csv := tab.CSV()
	want := "a,b\nplain,\"with \"\"quotes\"\", and comma\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestTableNoTitleNoNote(t *testing.T) {
	tab := &Table{Header: []string{"h"}}
	tab.AddRow("v")
	s := tab.String()
	if strings.Contains(s, "note:") || strings.Contains(s, "=") {
		t.Errorf("unexpected decorations: %q", s)
	}
}

func TestFormattersStable(t *testing.T) {
	if f2(1.005) != "1.00" && f2(1.005) != "1.01" {
		t.Errorf("f2 = %q", f2(1.005))
	}
	if f3(0.1234) != "0.123" {
		t.Errorf("f3 = %q", f3(0.1234))
	}
	if pct(0.5) != "50.0%" {
		t.Errorf("pct = %q", pct(0.5))
	}
}

func TestConfigurationLists(t *testing.T) {
	std := StandardConfigurations()
	names := map[string]bool{}
	for _, c := range std {
		if names[c.Name] {
			t.Errorf("duplicate configuration %q", c.Name)
		}
		names[c.Name] = true
	}
	// The §IV-B lineup.
	for _, want := range []string{"no", "nextline", "sn4l", "mana-2k", "mana-4k", "mana-8k",
		"rdip", "djolt", "fnl+mma", "epi", "entangling-2k", "entangling-4k", "entangling-8k",
		"l1i-64kb", "l1i-96kb", "ideal"} {
		if !names[want] {
			t.Errorf("StandardConfigurations missing %q", want)
		}
	}
	for _, c := range PhysicalConfigurations() {
		if !c.Physical {
			t.Errorf("%s not marked physical", c.Name)
		}
	}
	abl := AblationConfigurations()
	// baseline + 5 variants x 3 sizes.
	if len(abl) != 1+5*3 {
		t.Errorf("ablation configurations = %d", len(abl))
	}
	if len(CompactConfigurations()) >= len(std) {
		t.Error("compact list should be smaller than standard")
	}
}

func TestDefaultAndQuickOptions(t *testing.T) {
	d, q := DefaultOptions(), QuickOptions()
	if d.Warmup <= q.Warmup || d.Measure <= q.Measure || d.PerCategory <= q.PerCategory {
		t.Error("QuickOptions should be strictly smaller than DefaultOptions")
	}
	if d.Parallelism < 1 || q.Parallelism < 1 {
		t.Error("parallelism must default to at least 1")
	}
}

func TestTableJSON(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a"}, Note: "n"}
	tab.AddRow(`va"l`)
	var decoded struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Note   string     `json:"note"`
	}
	if err := json.Unmarshal([]byte(tab.JSON()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.Title != "T" || len(decoded.Rows) != 1 || decoded.Rows[0][0] != `va"l` || decoded.Note != "n" {
		t.Errorf("decoded: %+v", decoded)
	}
}
