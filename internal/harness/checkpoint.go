package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"entangling/internal/workload"
)

// This file implements the sweep checkpoint store. A long sweep is a
// cross-product of cells, each expensive and each independently
// deterministic; the store persists every completed cell as its own
// crash-safe record (write-temp + rename, checksummed payload) keyed
// by a fingerprint of everything that determines the cell's result.
// An interrupted figure regeneration resumed with the same store
// re-runs only the missing cells and reproduces the uninterrupted
// sweep byte-for-byte — the differential tests in resume_test.go hold
// the harness to exactly that claim.

// CheckpointSchemaVersion identifies the record layout; bump it on any
// incompatible change. Records of another version never resume — their
// cells re-run.
//
// Version history:
//
//	1: initial layout.
//	2: cpu.Results gained the windowed lead-histogram quantiles
//	   (LeadP50/LeadP99); v1 records would silently resume with the
//	   fields zeroed, so they re-run instead.
//	3: workload.Params gained the adversarial-preset and trace-backed
//	   fields (CodePhaseLen, InterruptEvery, ColdEvery, TraceSHA256,
//	   ...), which participate in every cell fingerprint; v2 records
//	   hash a different parameter document, so they re-run.
const CheckpointSchemaVersion = 3

// checkpointMagic leads every record's header line.
const checkpointMagic = "ENTCKPT"

// CellRecord is one persisted (configuration, workload) result.
type CellRecord struct {
	SchemaVersion int `json:"schema_version"`
	// Fingerprint commits the record to the exact cell it was measured
	// on: configuration fields, workload parameters and run windows.
	Fingerprint string    `json:"fingerprint"`
	Config      string    `json:"config"`
	Workload    string    `json:"workload"`
	Result      RunResult `json:"result"`
}

// CellFingerprint derives the checkpoint key of a cell. Two cells
// share a fingerprint exactly when they are guaranteed to produce the
// same result: same configuration (every field), same fully derived
// workload parameters, and same warmup/measure windows. The simulator
// is deterministic over those inputs, which is what makes resuming
// from a fingerprint-matched record behaviour-preserving.
func CellFingerprint(cfg Configuration, spec workload.Spec, warmup, measure uint64) string {
	payload := struct {
		Schema  int             `json:"schema"`
		Config  Configuration   `json:"config"`
		Name    string          `json:"name"`
		Params  workload.Params `json:"params"`
		Warmup  uint64          `json:"warmup"`
		Measure uint64          `json:"measure"`
	}{CheckpointSchemaVersion, cfg, spec.Name, spec.Params, warmup, measure}
	b, err := json.Marshal(payload)
	if err != nil {
		panic(err) // plain structs of scalars cannot fail to marshal
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// EncodeCellRecord serializes a record as a header line (magic,
// version, SHA-256 of the payload) followed by the JSON payload. The
// checksum covers every payload byte, so truncated or bit-flipped
// records are detected at decode instead of being merged as results.
func EncodeCellRecord(rec CellRecord) ([]byte, error) {
	if rec.SchemaVersion != CheckpointSchemaVersion {
		return nil, fmt.Errorf("harness: checkpoint record schema %d, want %d",
			rec.SchemaVersion, CheckpointSchemaVersion)
	}
	if rec.Fingerprint == "" || rec.Config == "" || rec.Workload == "" {
		return nil, errors.New("harness: checkpoint record missing fingerprint or cell name")
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("harness: encoding checkpoint record: %w", err)
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s v%d %s\n", checkpointMagic, CheckpointSchemaVersion, hex.EncodeToString(sum[:]))
	return append([]byte(header), payload...), nil
}

// DecodeCellRecord parses and verifies an encoded record. Any
// corruption — truncation, a flipped byte in header or payload, a
// wrong version — yields an error, never a partially decoded record.
func DecodeCellRecord(data []byte) (CellRecord, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return CellRecord{}, errors.New("harness: checkpoint record: missing header line")
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 3 || fields[0] != checkpointMagic {
		return CellRecord{}, errors.New("harness: checkpoint record: bad magic")
	}
	if fields[1] != fmt.Sprintf("v%d", CheckpointSchemaVersion) {
		return CellRecord{}, fmt.Errorf("harness: checkpoint record: version %q, want v%d",
			fields[1], CheckpointSchemaVersion)
	}
	want, err := hex.DecodeString(fields[2])
	if err != nil || len(want) != sha256.Size {
		return CellRecord{}, errors.New("harness: checkpoint record: malformed checksum")
	}
	payload := data[nl+1:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], want) {
		return CellRecord{}, errors.New("harness: checkpoint record: checksum mismatch (truncated or corrupt)")
	}
	var rec CellRecord
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return CellRecord{}, fmt.Errorf("harness: checkpoint record: %w", err)
	}
	if rec.SchemaVersion != CheckpointSchemaVersion {
		return CellRecord{}, fmt.Errorf("harness: checkpoint record: payload schema %d, want %d",
			rec.SchemaVersion, CheckpointSchemaVersion)
	}
	if rec.Fingerprint == "" || rec.Config == "" || rec.Workload == "" {
		return CellRecord{}, errors.New("harness: checkpoint record: missing fingerprint or cell name")
	}
	return rec, nil
}

// CheckpointStore persists cell records in a directory, one file per
// fingerprint. Saves are atomic (write temp, rename), so a process
// killed mid-save leaves at worst a stale .tmp file and never a
// half-written record; corrupt records found at load are quarantined
// (renamed aside) so their cells re-run instead of poisoning results.
// Safe for concurrent use by a sweep's workers.
type CheckpointStore struct {
	dir string

	mu          sync.Mutex
	quarantined int
}

// OpenCheckpointStore opens (creating if needed) a store at dir.
func OpenCheckpointStore(dir string) (*CheckpointStore, error) {
	if dir == "" {
		return nil, errors.New("harness: checkpoint directory must be named")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: opening checkpoint store: %w", err)
	}
	return &CheckpointStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *CheckpointStore) Dir() string { return s.dir }

func (s *CheckpointStore) path(fingerprint string) string {
	return filepath.Join(s.dir, fingerprint+".ckpt")
}

// ErrCheckpointConflict reports a Save whose fingerprint already holds
// a valid record with different bytes. Cells are deterministic over
// their fingerprint, so two disagreeing records for one fingerprint
// mean corruption or nondeterminism somewhere — silently letting the
// last writer win would poison every later resume with whichever
// version happened to land second. Test with errors.Is.
var ErrCheckpointConflict = errors.New("conflicting checkpoint record for fingerprint")

// Save atomically and durably persists rec: the bytes are fsynced
// before the rename and the directory is fsynced after it, so a record
// Save reported committed survives power loss, not just process crash.
// A failed Save removes its temp file — the store never accumulates
// .tmp litter on error paths.
//
// Save is idempotent under concurrency: saving a record identical to
// the one already stored is a no-op success (two fleet workers
// finishing the same cell both "win"), while saving different bytes
// over a valid existing record fails with ErrCheckpointConflict. A
// corrupt or undecodable existing record is simply replaced — it was
// never going to resume anyway.
func (s *CheckpointStore) Save(rec CellRecord) error {
	b, err := EncodeCellRecord(rec)
	if err != nil {
		return err
	}
	final := s.path(rec.Fingerprint)
	tmp := final + ".tmp"

	// Serialize same-store saves so the compare-then-commit below is
	// atomic with respect to this process; cross-process racers fall
	// back on the rename's atomicity (identical bytes commute, and a
	// conflicting racer is caught by whichever writer checks second).
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, rerr := os.ReadFile(final); rerr == nil {
		if bytes.Equal(existing, b) {
			return nil
		}
		if _, derr := DecodeCellRecord(existing); derr == nil {
			return fmt.Errorf("harness: %w %s", ErrCheckpointConflict, rec.Fingerprint)
		}
		// Existing record is corrupt: replace it.
	}
	if err := writeFileSync(tmp, b); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("harness: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("harness: committing checkpoint: %w", err)
	}
	syncDir(s.dir)
	return nil
}

// writeFileSync writes data to name and fsyncs it before closing, so
// the bytes are on stable storage when it returns.
func writeFileSync(name string, data []byte) error {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-committed rename in it is
// durable. Best-effort: some platforms and filesystems reject fsync on
// directories, and the rename's atomicity does not depend on it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Load returns the record stored for fingerprint, if any. A missing
// record is (zero, false, nil). A corrupt or mismatched record is
// quarantined — renamed to <fingerprint>.ckpt.bad — and reported as
// missing, so the cell re-runs; it is never silently merged.
func (s *CheckpointStore) Load(fingerprint string) (CellRecord, bool, error) {
	b, err := os.ReadFile(s.path(fingerprint))
	if errors.Is(err, os.ErrNotExist) {
		return CellRecord{}, false, nil
	}
	if err != nil {
		return CellRecord{}, false, fmt.Errorf("harness: reading checkpoint: %w", err)
	}
	rec, derr := DecodeCellRecord(b)
	if derr != nil || rec.Fingerprint != fingerprint {
		s.quarantine(fingerprint)
		return CellRecord{}, false, nil
	}
	return rec, true, nil
}

func (s *CheckpointStore) quarantine(fingerprint string) {
	s.mu.Lock()
	s.quarantined++
	s.mu.Unlock()
	// Best-effort: a failed rename leaves the corrupt file in place,
	// where the next Load will quarantine it again.
	_ = os.Rename(s.path(fingerprint), s.path(fingerprint)+".bad")
}

// Quarantined reports how many corrupt records this store has set
// aside since it was opened.
func (s *CheckpointStore) Quarantined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// Count returns the number of resident (valid-named) records.
func (s *CheckpointStore) Count() (int, error) {
	matches, err := filepath.Glob(filepath.Join(s.dir, "*.ckpt"))
	if err != nil {
		return 0, err
	}
	return len(matches), nil
}
