package harness

import (
	"bytes"
	"encoding/binary"
	"io"
	"path/filepath"
	"reflect"
	"testing"

	"entangling/internal/trace"
	"entangling/internal/workload"
)

// This file is the import-pipeline golden battery: a deterministic
// ChampSim fixture flows through the importer, the content-addressed
// store and a trace-backed Spec into the full sweep machinery, and the
// exported metrics must be byte-identical run over run — the same
// determinism claim TestGoldenDeterminism makes for synthetic
// workloads, extended to ingested traces.

// champsimFixture synthesizes n raw ChampSim records: sequential runs
// broken by conditional branches, call/return pairs and loads, using
// ChampSim's register conventions (SP=6, FLAGS=25, IP=26) so the
// importer's classifier sees realistic operand sets. Deterministic by
// construction.
func champsimFixture(n int) []byte {
	const (
		regSP, regFlags, regIP = 6, 25, 26
		recSize                = 64
	)
	buf := make([]byte, 0, n*recSize)
	ip := uint64(0x0040_1000)
	var retStack []uint64
	state := uint64(0x1234_5678_9abc_def0)
	next := func(m uint64) uint64 { // splitmix-ish deterministic stream
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		return (z ^ (z >> 31)) % m
	}
	for i := 0; i < n; i++ {
		var rec [recSize]byte
		binary.LittleEndian.PutUint64(rec[0:8], ip)
		switch {
		case i%31 == 30 && len(retStack) < 8:
			// Direct call: reads+writes SP and IP.
			rec[8], rec[9] = 1, 1
			rec[10], rec[11] = regIP, regSP
			rec[12], rec[13] = regIP, regSP
			retStack = append(retStack, ip+4)
			ip = 0x0041_0000 + next(64)*0x200
		case i%31 == 17 && len(retStack) > 0:
			// Return: reads SP, writes SP and IP.
			rec[8], rec[9] = 1, 1
			rec[10], rec[11] = regIP, regSP
			rec[12] = regSP
			ip, retStack = retStack[len(retStack)-1], retStack[:len(retStack)-1]
		case i%7 == 3:
			// Conditional branch, taken about half the time.
			rec[8] = 1
			rec[10] = regIP
			rec[12] = regFlags
			if next(2) == 0 {
				rec[9] = 1
				ip += 4 + next(16)*4
			} else {
				ip += 4
			}
		default:
			if i%5 == 1 { // load
				binary.LittleEndian.PutUint64(rec[32:40], 0x7f00_0000+next(1<<16)*8)
			}
			ip += 4
		}
		buf = append(buf, rec[:]...)
	}
	return buf
}

// importFixture runs the fixture through the store (importer included)
// and returns the trace-backed spec referencing it.
func importFixture(t *testing.T, n int) (workload.Spec, trace.TraceInfo) {
	t.Helper()
	store, err := trace.OpenStore(filepath.Join(t.TempDir(), "traces"))
	if err != nil {
		t.Fatal(err)
	}
	info, _, err := store.Put(bytes.NewReader(champsimFixture(n)), "champsim", trace.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Instructions != uint64(n) {
		t.Fatalf("imported %d instructions, want %d", info.Instructions, n)
	}
	spec := workload.TraceSpec("trace:"+info.ID, info.ID, func() (io.ReadCloser, error) {
		return store.Open(info.ID)
	})
	return spec, info
}

// TestImportedTraceGoldenFingerprint: import → store → sweep must be
// deterministic end to end. Two imports of the same fixture land on one
// content address, and two sweeps over the stored trace export
// byte-identical metrics.
func TestImportedTraceGoldenFingerprint(t *testing.T) {
	const n = 60_000
	spec, info := importFixture(t, n)

	// A second import of the same fixture is the same content address:
	// the conversion itself is deterministic.
	_, info2 := importFixture(t, n)
	if info.ID != info2.ID {
		t.Fatalf("same fixture imported to different IDs:\n%s\n%s", info.ID, info2.ID)
	}

	cfgs := []Configuration{
		Baseline,
		{Name: "entangling-2k", Prefetcher: "entangling-2k"},
	}
	opt := Options{Warmup: 30_000, Measure: 25_000, Parallelism: 2}
	run := func() []byte {
		s, err := RunSuite([]workload.Spec{spec}, cfgs, opt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteMetricsJSON(&buf, s.Metrics()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("imported-trace sweep metrics not reproducible")
	}
}

// TestImportedTraceCellFingerprintPinsContent: the trace's content
// address participates in the cell fingerprint, so two different traces
// under the same workload name must not share checkpoint identity.
func TestImportedTraceCellFingerprintPinsContent(t *testing.T) {
	mk := func(sha string) workload.Spec {
		return workload.TraceSpec("trace:same-name", sha, nil)
	}
	cfg := Baseline
	a := CellFingerprint(cfg, mk("aaaa"), 1000, 1000)
	b := CellFingerprint(cfg, mk("bbbb"), 1000, 1000)
	if a == b {
		t.Fatal("cell fingerprint ignores the trace content address")
	}
	if a != CellFingerprint(cfg, mk("aaaa"), 1000, 1000) {
		t.Fatal("cell fingerprint not deterministic for trace-backed specs")
	}
}

// TestAdversarialSuitePermutationInvariance extends the metamorphic
// battery to the adversarial presets: relocation, interrupts and cold
// restarts all run inside the per-cell simulation, so cell results must
// still be independent of sweep order and worker count.
func TestAdversarialSuitePermutationInvariance(t *testing.T) {
	specs := workload.AdversarialSuite()
	cfgs := []Configuration{
		Baseline,
		{Name: "entangling-2k", Prefetcher: "entangling-2k"},
	}
	opt := Options{Warmup: 50_000, Measure: 30_000, Parallelism: 2}

	ref, err := RunSuite(specs, cfgs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []struct {
		name  string
		specs []workload.Spec
		par   int
	}{
		{"reversed", reverse(specs), 2},
		{"serial", specs, 1},
		{"wide", specs, 8},
	} {
		o := opt
		o.Parallelism = v.par
		got, err := RunSuite(v.specs, cfgs, o)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cfgs {
			for _, s := range specs {
				if !reflect.DeepEqual(got.Runs[c.Name][s.Name], ref.Runs[c.Name][s.Name]) {
					t.Errorf("cell %s/%s changed under %s", c.Name, s.Name, v.name)
				}
			}
		}
	}
}
