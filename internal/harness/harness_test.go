package harness

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"entangling/internal/energy"
	"entangling/internal/workload"
)

func tinyOptions() Options {
	return Options{Warmup: 150_000, Measure: 100_000, PerCategory: 1, Parallelism: 2}
}

func tinySuite(t *testing.T) ([]workload.Spec, []Configuration, *SuiteResults) {
	t.Helper()
	specs := workload.CVPSuite(1)
	cfgs := []Configuration{
		Baseline,
		{Name: "nextline", Prefetcher: "nextline"},
		{Name: "entangling-2k", Prefetcher: "entangling-2k"},
		{Name: "ideal", IdealL1I: true},
	}
	s, err := RunSuite(specs, cfgs, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	return specs, cfgs, s
}

func TestRunSuiteComplete(t *testing.T) {
	specs, cfgs, s := tinySuite(t)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.ConfigOrder) != len(cfgs) || len(s.WorkloadOrder) != len(specs) {
		t.Fatal("order bookkeeping wrong")
	}

	// Metric sanity.
	for _, cfg := range []string{"nextline", "entangling-2k", "ideal"} {
		sp := s.GeomeanSpeedup(cfg)
		if sp <= 0.5 || sp > 3 {
			t.Errorf("%s geomean speedup %.3f implausible", cfg, sp)
		}
	}
	if s.GeomeanSpeedup("ideal") <= s.GeomeanSpeedup("nextline") {
		t.Error("ideal should beat nextline")
	}
	if s.GeomeanSpeedup("entangling-2k") <= 1.0 {
		t.Error("entangling-2k should beat baseline")
	}
	if n := s.NormalizedIPC("no"); len(n) > 0 {
		for _, v := range n {
			if v != 1 {
				t.Errorf("baseline normalized IPC %v != 1", v)
			}
		}
	}
	// Coverage of ideal is 1 by construction (NaN marks workloads whose
	// baseline had no misses to cover).
	for _, c := range s.Coverage("ideal") {
		if !math.IsNaN(c) && c != 1 {
			t.Errorf("ideal coverage %v != 1", c)
		}
	}
	// Entangling stats should be attached.
	found := false
	for _, r := range s.Runs["entangling-2k"] {
		if r.Ent != nil {
			found = true
		}
	}
	if !found {
		t.Error("Entangling stats not captured")
	}
	if s.StorageKB("entangling-2k") < 15 || s.StorageKB("entangling-2k") > 25 {
		t.Errorf("entangling-2k storage %.2fKB", s.StorageKB("entangling-2k"))
	}
	if len(s.Categories()) != 4 {
		t.Errorf("categories: %v", s.Categories())
	}
}

func TestRunUnknownPrefetcher(t *testing.T) {
	specs := workload.CVPSuite(1)
	_, err := Run(Configuration{Name: "x", Prefetcher: "bogus"}, specs[0], 1000, 1000, nil, nil)
	if err == nil {
		t.Fatal("unknown prefetcher accepted")
	}
}

func TestFiguresRender(t *testing.T) {
	_, _, s := tinySuite(t)

	f6 := Fig06(s)
	if !strings.Contains(f6.String(), "entangling-2k") {
		t.Error("Fig06 missing config row")
	}
	for _, tab := range []*Table{Fig07(s, 5), Fig08(s, 5), Fig09(s, 5), Fig10(s, 5)} {
		if len(tab.Rows) != 5 {
			t.Errorf("%s: %d rows, want 5", tab.Title, len(tab.Rows))
		}
	}
	t4 := Table04(s, energy.Default22nm())
	if len(t4.Rows) != len(s.ConfigOrder) {
		t.Errorf("Table04 rows = %d", len(t4.Rows))
	}
	// The baseline's normalized energy must be exactly 1.
	for _, row := range t4.Rows {
		if row[0] == "no" && row[5] != "1.0000" {
			t.Errorf("baseline normalized energy = %s", row[5])
		}
	}
	f12 := Fig12(s, "entangling-2k")
	if len(f12.Rows) == 0 {
		t.Error("Fig12 empty")
	}
	for _, tab := range []*Table{
		Fig13(s, []string{"entangling-2k"}),
		Fig14(s, []string{"entangling-2k"}),
		Fig15(s, []string{"entangling-2k"}),
	} {
		if len(tab.Rows) == 0 {
			t.Errorf("%s empty", tab.Title)
		}
	}
	f16 := Fig16(s)
	if len(f16.Rows) != len(s.ConfigOrder)-1 {
		t.Errorf("Fig16 rows = %d", len(f16.Rows))
	}
}

func TestFig01And02(t *testing.T) {
	specs := workload.CVPSuite(1)[3:4] // one srv workload for speed
	opt := tinyOptions()
	f1, err := Fig01(specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Rows) != 2 { // workload + ALL
		t.Fatalf("Fig01 rows = %d", len(f1.Rows))
	}
	// The cumulative fractions must be non-decreasing across distances.
	row := f1.Rows[1]
	var prev float64
	for i := 1; i <= 10; i++ {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[i], "%"), 64)
		if err != nil {
			t.Fatalf("bad cell %q: %v", row[i], err)
		}
		if v+1e-9 < prev {
			t.Errorf("timely fraction decreased at d=%d: %v < %v", i, v, prev)
		}
		prev = v
	}

	f2t, err := Fig02(specs, Options{Warmup: 100_000, Measure: 80_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(f2t.Rows) != 10 {
		t.Fatalf("Fig02 rows = %d", len(f2t.Rows))
	}
}
