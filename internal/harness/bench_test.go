package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"entangling/internal/workload"
)

func samplePoint(label string) BenchPoint {
	return BenchPoint{
		SchemaVersion: BenchSchemaVersion,
		Label:         label,
		GoVersion:     "go1.24.0",
		GOMAXPROCS:    1,
		Sweep: BenchSweep{
			Configs:     []string{"baseline", "entangling-4k"},
			Workloads:   []string{"server-a", "client-b"},
			Warmup:      400_000,
			Measure:     200_000,
			Parallelism: 1,
			Cells:       4,
		},
		Iterations:        3,
		WallSeconds:       0.9,
		RunsPerSec:        4.4,
		Instructions:      2_400_000,
		InstrsPerSec:      2.6e6,
		AllocsPerRun:      135,
		AllocsPerInstr:    0.0002,
		BytesPerInstr:     0.01,
		TraceBuildSeconds: 0.11,
		PeakRSSBytes:      150 << 20,
		MetricsSHA256:     strings.Repeat("ab", 32),
	}
}

func TestBenchFileRoundTrip(t *testing.T) {
	before := samplePoint("PR1")
	f := BenchFile{
		SchemaVersion:   BenchSchemaVersion,
		Label:           "PR2",
		Before:          &before,
		After:           samplePoint("PR2"),
		SpeedupVsBefore: 2.04,
	}
	f.After.WallSeconds = 0.45
	f.After.TraceBuildSeconds = 0.07

	var buf bytes.Buffer
	if err := WriteBenchFile(&buf, f); err != nil {
		t.Fatal(err)
	}
	// The one-time trace build cost must survive the trip — it is the
	// field that keeps warm-cache sweep timing honest.
	if !strings.Contains(buf.String(), `"trace_build_seconds": 0.07`) {
		t.Errorf("serialized file missing trace_build_seconds:\n%s", buf.String())
	}

	got, err := ReadBenchFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.After, f.After) {
		t.Errorf("after point changed in round trip:\ngot  %+v\nwant %+v", got.After, f.After)
	}
	if got.Before == nil || !reflect.DeepEqual(*got.Before, before) {
		t.Errorf("before point changed in round trip: %+v", got.Before)
	}
	if got.SpeedupVsBefore != f.SpeedupVsBefore {
		t.Errorf("speedup %v, want %v", got.SpeedupVsBefore, f.SpeedupVsBefore)
	}
}

func TestReadBenchFileRejectsUnknownFields(t *testing.T) {
	f := BenchFile{SchemaVersion: BenchSchemaVersion, Label: "X", After: samplePoint("X")}
	var buf bytes.Buffer
	if err := WriteBenchFile(&buf, f); err != nil {
		t.Fatal(err)
	}
	doc := strings.Replace(buf.String(), `"label"`, `"surprise": 1, "label"`, 1)
	if _, err := ReadBenchFile(strings.NewReader(doc)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestValidateBenchPointErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*BenchPoint)
	}{
		{"wrong schema version", func(p *BenchPoint) { p.SchemaVersion = 99 }},
		{"missing label", func(p *BenchPoint) { p.Label = "" }},
		{"missing go version", func(p *BenchPoint) { p.GoVersion = "" }},
		{"empty sweep", func(p *BenchPoint) { p.Sweep.Configs = nil }},
		{"cell count mismatch", func(p *BenchPoint) { p.Sweep.Cells = 7 }},
		{"nonpositive wall", func(p *BenchPoint) { p.WallSeconds = 0 }},
		{"nonpositive throughput", func(p *BenchPoint) { p.RunsPerSec = 0 }},
		{"missing instructions", func(p *BenchPoint) { p.Instructions = 0 }},
		{"malformed fingerprint", func(p *BenchPoint) { p.MetricsSHA256 = "abc" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := samplePoint("X")
			if err := ValidateBenchPoint(&p); err != nil {
				t.Fatalf("sample point invalid before mutation: %v", err)
			}
			tc.mutate(&p)
			if err := ValidateBenchPoint(&p); err == nil {
				t.Error("mutation accepted")
			}
		})
	}
}

func TestValidateBenchFileErrors(t *testing.T) {
	ok := BenchFile{SchemaVersion: BenchSchemaVersion, Label: "X", After: samplePoint("X")}
	if err := ValidateBenchFile(&ok); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}

	bad := ok
	bad.SchemaVersion = 2
	if err := ValidateBenchFile(&bad); err == nil {
		t.Error("wrong file schema accepted")
	}

	bad = ok
	bad.Label = ""
	if err := ValidateBenchFile(&bad); err == nil {
		t.Error("missing file label accepted")
	}

	bad = ok
	bad.After.WallSeconds = -1
	if err := ValidateBenchFile(&bad); err == nil || !strings.Contains(err.Error(), "after:") {
		t.Errorf("invalid after point not attributed: %v", err)
	}

	badBefore := samplePoint("X")
	badBefore.Instructions = 0
	bad = ok
	bad.Before = &badBefore
	if err := ValidateBenchFile(&bad); err == nil || !strings.Contains(err.Error(), "before:") {
		t.Errorf("invalid before point not attributed: %v", err)
	}
}

// benchCell returns a small cached-trace cell of the pinned sweep for
// allocation measurements.
func benchCell(tb testing.TB, warmup, measure uint64) (Configuration, workload.Spec, *workload.Trace) {
	tb.Helper()
	specs := PinnedBenchSpecs()
	if len(specs) == 0 {
		tb.Fatal("no pinned specs")
	}
	cfgs := PinnedBenchConfigurations()
	cfg := cfgs[len(cfgs)-2] // an entangling config: the busiest hot path
	tr, err := workload.Materialize(specs[0], warmup+measure)
	if err != nil {
		tb.Fatal(err)
	}
	return cfg, specs[0], tr
}

// TestRunTraceAllocsCeiling pins the allocation budget of the
// cached-trace run path. The hot loop itself must be allocation-free;
// what remains is machine construction plus a handful of metric
// materializations, all independent of instruction count. The ceiling
// has ~2x headroom over the measured count so it fails on a reverted
// hot loop (thousands of allocations) and not on noise.
func TestRunTraceAllocsCeiling(t *testing.T) {
	const warmup, measure = 20_000, 10_000
	cfg, spec, tr := benchCell(t, warmup, measure)

	allocs := testing.AllocsPerRun(3, func() {
		if _, err := RunTrace(cfg, spec, tr, warmup, measure); err != nil {
			t.Fatal(err)
		}
	})
	const ceiling = 600
	if allocs > ceiling {
		t.Errorf("RunTrace allocated %.0f times per run, ceiling %d — the hot loop is allocating again", allocs, ceiling)
	}
}

// BenchmarkRunTrace measures the steady-state cost of one cached-trace
// cell; run with -benchmem to see allocs/op.
func BenchmarkRunTrace(b *testing.B) {
	const warmup, measure = 20_000, 10_000
	cfg, spec, tr := benchCell(b, warmup, measure)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunTrace(cfg, spec, tr, warmup, measure); err != nil {
			b.Fatal(err)
		}
	}
}
