//go:build !linux

package harness

// readPeakRSS reports 0 on platforms without a /proc high-water mark;
// BenchPoint documents PeakRSSBytes == 0 as "not exposed here".
func readPeakRSS() uint64 { return 0 }
