package harness

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"entangling/internal/stats"
	"entangling/internal/workload"
)

// SuiteResults indexes the runs of a configurations x workloads sweep.
type SuiteResults struct {
	// Runs[config][workload] holds the run result.
	Runs map[string]map[string]RunResult
	// ConfigOrder preserves the configuration order for rendering.
	ConfigOrder []string
	// WorkloadOrder preserves the workload order.
	WorkloadOrder []string
	// Failed lists the cells that produced no result, in deterministic
	// order. Non-empty exactly when RunSuite also returned an error:
	// the sweep degraded to these named holes instead of throwing away
	// its completed cells.
	Failed []*CellError
	// Restored counts cells taken from the checkpoint store instead of
	// being re-run (0 without Options.Resume).
	Restored int
}

// ErrCellCanceled marks a cell abandoned because the sweep's context
// was canceled — the cell did not fail; it never (fully) ran. Test
// with errors.Is against RunSuite's error or a CellError.
var ErrCellCanceled = errors.New("cell canceled")

// ErrCellPanic marks a cell whose simulation panicked; the panic was
// recovered and degraded to this error so the rest of the sweep
// survived.
var ErrCellPanic = errors.New("cell panicked")

// CellError attributes a sweep failure to its (configuration,
// workload) cell.
type CellError struct {
	Config   string
	Workload string
	// Attempts is how many times the cell ran (1 without retries).
	Attempts int
	// Err is the final attempt's failure; unwrappable, so
	// errors.Is(err, ErrCellPanic) etc. see through the cell context.
	Err error
}

func (e *CellError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("cell %s/%s (after %d attempts): %v", e.Config, e.Workload, e.Attempts, e.Err)
	}
	return fmt.Sprintf("cell %s/%s: %v", e.Config, e.Workload, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// Canceled reports whether the cell was abandoned by cancellation
// rather than failing on its own.
func (e *CellError) Canceled() bool { return errors.Is(e.Err, ErrCellCanceled) }

// RunSuite executes every configuration over every workload. See
// RunSuiteCtx for the execution model.
func RunSuite(specs []workload.Spec, cfgs []Configuration, opt Options) (*SuiteResults, error) {
	return RunSuiteCtx(context.Background(), specs, cfgs, opt)
}

// RunSuiteCtx executes every configuration over every workload with
// cooperative cancellation and per-cell fault tolerance.
//
// Each workload's instruction stream is materialized once in a shared
// trace cache and reused read-only by every configuration: the sweep
// pays N_specs generations instead of N_cfgs x N_specs. Jobs are
// ordered workload-major so the cells sharing a trace run close
// together and the cache's refcounting can evict each trace as soon as
// its last configuration finishes — resident traces stay proportional
// to the worker count, not the suite size.
//
// A cell that panics, errors, or exceeds Options.CellTimeout is
// retried up to Options.Retries times (exponential backoff with
// deterministic jitter) and then degrades to a named *CellError in the
// returned partial SuiteResults — one bad cell no longer throws away
// every completed cell. Canceling ctx abandons the remaining cells
// with ErrCellCanceled, which is distinguishable from genuine
// failures. With Options.Checkpoint every completed cell is persisted
// crash-safely, and Options.Resume reuses valid records so an
// interrupted sweep re-runs only its missing cells.
//
// On any failure the error is non-nil and SuiteResults.Failed names
// every unfinished cell; the completed cells in Runs remain usable.
func RunSuiteCtx(ctx context.Context, specs []workload.Spec, cfgs []Configuration, opt Options) (*SuiteResults, error) {
	out := &SuiteResults{Runs: make(map[string]map[string]RunResult)}
	for _, c := range cfgs {
		out.ConfigOrder = append(out.ConfigOrder, c.Name)
		out.Runs[c.Name] = make(map[string]RunResult, len(specs))
	}
	for _, s := range specs {
		out.WorkloadOrder = append(out.WorkloadOrder, s.Name)
	}

	// Resume: restore checkpointed cells before scheduling any work, so
	// the per-spec pending-cell counts below only cover cells that run.
	restored := make(map[string]bool)
	if opt.Checkpoint != nil && opt.Resume {
		for _, s := range specs {
			for _, c := range cfgs {
				fp := CellFingerprint(c, s, opt.Warmup, opt.Measure)
				rec, ok, err := opt.Checkpoint.Load(fp)
				if err != nil {
					return out, fmt.Errorf("harness: loading checkpoint: %w", err)
				}
				if ok && rec.Config == c.Name && rec.Workload == s.Name {
					out.Runs[c.Name][s.Name] = rec.Result
					restored[c.Name+"/"+s.Name] = true
					out.Restored++
					opt.Progress.emit(CellEvent{
						Type: CellRestored, Config: c.Name, Workload: s.Name,
					})
					if opt.Observe != nil {
						opt.Observe(c, s, rec.Result)
					}
				}
			}
		}
	}

	type job struct {
		cfg  Configuration
		spec workload.Spec
	}
	// needs counts, per spec, how many cells will run (and therefore
	// touch the trace cache) — restored cells never do.
	needs := make(map[string]int, len(specs))
	for _, s := range specs {
		for _, c := range cfgs {
			if !restored[c.Name+"/"+s.Name] {
				needs[s.Name]++
			}
		}
	}

	jobs := make(chan job)
	results := make(chan RunResult, 8)

	cache := opt.Traces
	if cache == nil {
		cache = workload.NewTraceCache()
	}

	run := &suiteRunner{
		opt: opt, cache: cache, traceLen: opt.Warmup + opt.Measure,
		pending: needs, leased: make(map[string]bool, len(specs)),
	}

	// Every cell failure is collected (not just the first), each as a
	// *CellError naming its (configuration, workload) cell, so a
	// multi-failure sweep report says exactly which cells died and why.
	var (
		errMu    sync.Mutex
		cellErrs []*CellError
	)

	workers := opt.Parallelism
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r, err := run.runCell(ctx, j.cfg, j.spec)
				run.cellDone(j.spec)
				if err != nil {
					errMu.Lock()
					cellErrs = append(cellErrs, err)
					errMu.Unlock()
					continue
				}
				results <- r
			}
		}()
	}
	go func() {
		for _, s := range specs {
			for _, c := range cfgs {
				if restored[c.Name+"/"+s.Name] {
					continue
				}
				jobs <- job{cfg: c, spec: s}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	for r := range results {
		out.Runs[r.Config][r.Workload] = r
	}
	if len(cellErrs) > 0 {
		// Worker scheduling is nondeterministic; sort so the combined
		// error reads the same across runs and parallelism settings.
		sort.Slice(cellErrs, func(i, j int) bool {
			return cellErrs[i].Error() < cellErrs[j].Error()
		})
		out.Failed = cellErrs
		joined := make([]error, len(cellErrs))
		for i, e := range cellErrs {
			joined[i] = e
		}
		return out, fmt.Errorf("harness: %d of %d runs failed: %w",
			len(cellErrs), len(cfgs)*len(specs), errors.Join(joined...))
	}
	return out, nil
}

// suiteRunner executes the cells of one sweep.
type suiteRunner struct {
	opt      Options
	cache    *workload.TraceCache
	traceLen uint64

	// pending counts, per spec, the scheduled cells not yet terminal;
	// leased marks the specs whose trace the sweep holds a keep-alive
	// reference on (see holdTrace).
	mu      sync.Mutex
	pending map[string]int
	leased  map[string]bool
}

// holdTrace keeps spec's trace resident until the sweep's last cell of
// that spec completes: the first cell to materialize it takes one
// extra sweep-held reference (dropped in cellDone), so the entry
// survives the gaps between sequential cells even though each cell
// holds its own reference only while running.
func (r *suiteRunner) holdTrace(spec workload.Spec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.leased[spec.Name] || r.pending[spec.Name] <= 1 {
		return
	}
	if r.cache.Retain(spec, r.traceLen) {
		r.leased[spec.Name] = true
	}
}

// cellDone marks one scheduled cell of spec terminal (completed,
// failed, or abandoned) and drops the sweep's trace lease with the
// last one.
func (r *suiteRunner) cellDone(spec workload.Spec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pending[spec.Name]--
	if r.pending[spec.Name] <= 0 && r.leased[spec.Name] {
		r.leased[spec.Name] = false
		r.cache.Release(spec, r.traceLen)
	}
}

// runCell runs one cell to completion: attempts with panic recovery
// and deadline enforcement, bounded retries with jittered exponential
// backoff between them, and checkpointing of the final result. The
// returned *CellError (nil on success) carries the cell name, the
// attempt count and the final cause.
func (r *suiteRunner) runCell(ctx context.Context, cfg Configuration, spec workload.Spec) (RunResult, *CellError) {
	maxAttempts := r.opt.Retries + 1
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	start := time.Now()
	fail := func(attempts int, err error) (RunResult, *CellError) {
		cerr := &CellError{Config: cfg.Name, Workload: spec.Name, Attempts: attempts, Err: err}
		r.opt.Progress.emit(CellEvent{
			Type: CellFailed, Config: cfg.Name, Workload: spec.Name,
			Attempt: attempts, Duration: time.Since(start), Err: cerr,
		})
		return RunResult{}, cerr
	}
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return fail(attempt-1, fmt.Errorf("%w: %v", ErrCellCanceled, err))
		}
		if attempt == 1 {
			r.opt.Progress.emit(CellEvent{
				Type: CellStarted, Config: cfg.Name, Workload: spec.Name, Attempt: attempt,
			})
		} else {
			r.opt.Progress.emit(CellEvent{
				Type: CellRetried, Config: cfg.Name, Workload: spec.Name, Attempt: attempt,
			})
		}
		res, err := r.attemptCell(ctx, cfg, spec)
		if err == nil {
			if r.opt.Checkpoint != nil {
				rec := CellRecord{
					SchemaVersion: CheckpointSchemaVersion,
					Fingerprint:   CellFingerprint(cfg, spec, r.opt.Warmup, r.opt.Measure),
					Config:        cfg.Name,
					Workload:      spec.Name,
					Result:        res,
				}
				if serr := r.opt.Checkpoint.Save(rec); serr != nil {
					// A result that cannot be persisted would silently
					// re-run after a crash; fail loudly instead.
					return fail(attempt, fmt.Errorf("checkpointing result: %w", serr))
				}
			}
			r.opt.Progress.emit(CellEvent{
				Type: CellFinished, Config: cfg.Name, Workload: spec.Name,
				Attempt: attempt, Duration: time.Since(start),
			})
			if r.opt.Observe != nil {
				r.opt.Observe(cfg, spec, res)
			}
			return res, nil
		}
		if errors.Is(err, ErrCellCanceled) {
			return fail(attempt, err)
		}
		if attempt >= maxAttempts {
			return fail(attempt, err)
		}
		if !sleepCtx(ctx, retryDelay(r.opt, cfg.Name, spec.Name, attempt)) {
			return fail(attempt, fmt.Errorf("%w: %v", ErrCellCanceled, ctx.Err()))
		}
	}
}

// attemptCell runs one attempt of a cell. Panics anywhere in the cell
// — the fault hook, trace materialization, the simulation itself — are
// recovered into ErrCellPanic; a parent-context cancellation comes
// back as ErrCellCanceled; everything else (including a blown
// CellTimeout deadline) is an ordinary, retryable failure.
func (r *suiteRunner) attemptCell(ctx context.Context, cfg Configuration, spec workload.Spec) (res RunResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: %v", ErrCellPanic, p)
		}
	}()

	cellCtx := ctx
	if r.opt.CellTimeout > 0 {
		var cancel context.CancelFunc
		cellCtx, cancel = context.WithTimeout(ctx, r.opt.CellTimeout)
		defer cancel()
	}
	if r.opt.CellHook != nil {
		if herr := r.opt.CellHook(cfg.Name, spec.Name); herr != nil {
			return RunResult{}, herr
		}
	}
	// A failed Acquire takes no reference and must not be Released.
	// The sweep's keep-alive lease (holdTrace) is taken while this
	// cell still holds its own reference, so the trace survives the
	// gaps between this sweep's sequential cells of the same spec.
	tr, aerr := r.cache.Acquire(spec, r.traceLen)
	if aerr != nil {
		return RunResult{}, aerr
	}
	r.holdTrace(spec)
	defer r.cache.Release(spec, r.traceLen)

	res, rerr := RunTraceWarmCtx(cellCtx, cfg, spec, tr, r.opt.Warmup, r.opt.Measure, r.opt.Warm)
	if rerr != nil {
		if ctx.Err() != nil {
			return RunResult{}, fmt.Errorf("%w: %v", ErrCellCanceled, ctx.Err())
		}
		// cellCtx expired on its own: a deadline failure, retryable.
		return RunResult{}, rerr
	}
	return res, nil
}

// retryDelay returns the bounded, jittered exponential backoff before
// retrying a cell whose attempt-th try failed. The jitter is a
// deterministic function of the cell and attempt (see internal/stats),
// so sweep timing has no hidden randomness.
func retryDelay(opt Options, config, wl string, attempt int) time.Duration {
	base := opt.RetryBaseDelay
	if base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 16 {
		shift = 16
	}
	d := base << uint(shift)
	maxDelay := opt.RetryMaxDelay
	if maxDelay <= 0 {
		maxDelay = 16 * base
	}
	if d > maxDelay {
		d = maxDelay
	}
	// Jitter in [0, d/2]: decorrelates retry bursts across cells
	// without exceeding 1.5x the nominal backoff.
	span := uint64(d)/2 + 1
	j := time.Duration(stats.Hash64(uint64(attempt), config, wl) % span)
	return d + j
}

// sleepCtx sleeps for d unless ctx fires first; it reports whether the
// full sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// baselineFor returns the baseline run for a workload (the "no"
// configuration), which normalizations and coverage are computed
// against.
func (s *SuiteResults) baselineFor(wl string) (RunResult, bool) {
	base, ok := s.Runs["no"]
	if !ok {
		return RunResult{}, false
	}
	r, ok := base[wl]
	return r, ok
}

// nan pads vector slots whose value is undefined for a workload.
var nan = math.NaN()

// NormalizedIPC returns each workload's IPC under cfg divided by the
// baseline IPC. The vector is aligned with WorkloadOrder: slots whose
// run or baseline is missing (or whose baseline IPC is zero) hold NaN
// rather than being skipped, so element i always describes
// WorkloadOrder[i]. Aggregations filter with stats.FilterFinite.
func (s *SuiteResults) NormalizedIPC(cfg string) []float64 {
	out := make([]float64, len(s.WorkloadOrder))
	for i, wl := range s.WorkloadOrder {
		r, ok := s.Runs[cfg][wl]
		b, bok := s.baselineFor(wl)
		if !ok || !bok || b.R.IPC == 0 {
			out[i] = nan
			continue
		}
		out[i] = r.R.IPC / b.R.IPC
	}
	return out
}

// GeomeanSpeedup returns the geometric-mean normalized IPC of cfg,
// computed over the workloads with a usable baseline — the same subset
// for every configuration. If cfg is missing a run for any workload of
// that subset the subsets would diverge between configurations, so the
// result is NaN (loud in every rendered figure) instead of a silently
// incomparable mean over fewer workloads.
func (s *SuiteResults) GeomeanSpeedup(cfg string) float64 {
	var vals []float64
	for i, v := range s.NormalizedIPC(cfg) {
		wl := s.WorkloadOrder[i]
		b, bok := s.baselineFor(wl)
		if !bok || b.R.IPC == 0 {
			continue // no baseline: undefined for every configuration
		}
		if math.IsNaN(v) {
			return nan // baseline exists but cfg's run is missing
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return 0
	}
	return stats.Geomean(vals)
}

// MissRatios returns each workload's L1I miss ratio under cfg, aligned
// with WorkloadOrder (NaN for missing runs).
func (s *SuiteResults) MissRatios(cfg string) []float64 {
	out := make([]float64, len(s.WorkloadOrder))
	for i, wl := range s.WorkloadOrder {
		if r, ok := s.Runs[cfg][wl]; ok {
			out[i] = r.R.L1I.MissRatio()
		} else {
			out[i] = nan
		}
	}
	return out
}

// Coverage returns per-workload prefetch coverage vs baseline misses
// (the paper's "percentage of L1I misses covered by prefetching"),
// aligned with WorkloadOrder (NaN where the run or baseline is missing
// or the baseline had no misses).
func (s *SuiteResults) Coverage(cfg string) []float64 {
	out := make([]float64, len(s.WorkloadOrder))
	for i, wl := range s.WorkloadOrder {
		r, ok := s.Runs[cfg][wl]
		b, bok := s.baselineFor(wl)
		if !ok || !bok || b.R.L1I.Misses == 0 {
			out[i] = nan
			continue
		}
		out[i] = 1 - float64(r.R.L1I.Misses)/float64(b.R.L1I.Misses)
	}
	return out
}

// Accuracy returns per-workload prefetch accuracy under cfg, aligned
// with WorkloadOrder (NaN for missing runs).
func (s *SuiteResults) Accuracy(cfg string) []float64 {
	out := make([]float64, len(s.WorkloadOrder))
	for i, wl := range s.WorkloadOrder {
		if r, ok := s.Runs[cfg][wl]; ok {
			out[i] = r.R.L1I.Accuracy()
		} else {
			out[i] = nan
		}
	}
	return out
}

// StorageKB returns the configuration's prefetcher budget in KB (0 for
// baseline/cache-growth configurations). The value is taken from the
// first workload in WorkloadOrder with a run — a deterministic choice,
// unlike Go map iteration; Validate checks all runs agree on it.
func (s *SuiteResults) StorageKB(cfg string) float64 {
	for _, wl := range s.WorkloadOrder {
		if r, ok := s.Runs[cfg][wl]; ok {
			return float64(r.R.StorageBits) / 8 / 1024
		}
	}
	return 0
}

// CategoryMean aggregates a per-run metric by workload category,
// returning means and standard deviations keyed by category (the
// grouping of Figures 12-15).
func (s *SuiteResults) CategoryMean(cfg string, metric func(RunResult) (float64, bool)) (map[workload.Category]float64, map[workload.Category]float64) {
	byCat := map[workload.Category][]float64{}
	for _, wl := range s.WorkloadOrder {
		r, ok := s.Runs[cfg][wl]
		if !ok {
			continue
		}
		if v, ok := metric(r); ok {
			byCat[r.Category] = append(byCat[r.Category], v)
		}
	}
	means := map[workload.Category]float64{}
	devs := map[workload.Category]float64{}
	for c, vs := range byCat {
		means[c] = stats.Mean(vs)
		devs[c] = stats.Stddev(vs)
	}
	return means, devs
}

// Categories returns the categories present, sorted.
func (s *SuiteResults) Categories() []workload.Category {
	seen := map[workload.Category]bool{}
	for _, wl := range s.WorkloadOrder {
		for _, cfgRuns := range s.Runs {
			if r, ok := cfgRuns[wl]; ok {
				seen[r.Category] = true
				break
			}
		}
	}
	var out []string
	for c := range seen {
		out = append(out, string(c))
	}
	sort.Strings(out)
	cats := make([]workload.Category, len(out))
	for i, c := range out {
		cats[i] = workload.Category(c)
	}
	return cats
}

// TimelyFractions returns, per workload, the fraction of cfg's
// prefetch fills that served a demand fully ahead of need.
func (s *SuiteResults) TimelyFractions(cfg string) []float64 {
	return s.lifecycleFractions(cfg, func(r RunResult) uint64 { return r.R.Lifecycle.Timely })
}

// LateFractions returns, per workload, the fraction of cfg's prefetch
// fills a demand caught in flight (partial latency hidden).
func (s *SuiteResults) LateFractions(cfg string) []float64 {
	return s.lifecycleFractions(cfg, func(r RunResult) uint64 { return r.R.Lifecycle.Late })
}

// InaccurateFractions returns, per workload, the fraction of cfg's
// prefetch fills evicted unused and never demanded again.
func (s *SuiteResults) InaccurateFractions(cfg string) []float64 {
	return s.lifecycleFractions(cfg, func(r RunResult) uint64 { return r.R.Lifecycle.Inaccurate() })
}

// lifecycleFractions returns a WorkloadOrder-aligned vector (NaN where
// the run is missing or had no prefetch fills to classify).
func (s *SuiteResults) lifecycleFractions(cfg string, num func(RunResult) uint64) []float64 {
	out := make([]float64, len(s.WorkloadOrder))
	for i, wl := range s.WorkloadOrder {
		r, ok := s.Runs[cfg][wl]
		if !ok || r.R.L1I.PrefetchFills == 0 {
			out[i] = nan
			continue
		}
		out[i] = float64(num(r)) / float64(r.R.L1I.PrefetchFills)
	}
	return out
}

// L1IStallShares returns, per workload, the share of attributed stall
// cycles the L1I is responsible for under cfg — the top-down number a
// prefetcher exists to shrink. Aligned with WorkloadOrder (NaN where
// the run is missing or attributed no stalls).
func (s *SuiteResults) L1IStallShares(cfg string) []float64 {
	out := make([]float64, len(s.WorkloadOrder))
	for i, wl := range s.WorkloadOrder {
		r, ok := s.Runs[cfg][wl]
		if !ok || r.R.Stalls.Total() == 0 {
			out[i] = nan
			continue
		}
		out[i] = float64(r.R.Stalls.L1IMiss) / float64(r.R.Stalls.Total())
	}
	return out
}

// Validate checks the sweep is complete (every config ran every
// workload) and internally consistent (every run of a configuration
// reports the same prefetcher storage budget — the budget is a
// property of the configuration, so disagreement means corrupted
// results).
func (s *SuiteResults) Validate() error {
	for _, c := range s.ConfigOrder {
		var budget uint64
		var budgetWl string
		for i, wl := range s.WorkloadOrder {
			r, ok := s.Runs[c][wl]
			if !ok {
				return fmt.Errorf("harness: missing run %s/%s", c, wl)
			}
			if i == 0 {
				budget, budgetWl = r.R.StorageBits, wl
			} else if r.R.StorageBits != budget {
				return fmt.Errorf("harness: %s reports storage %d bits on %s but %d bits on %s",
					c, budget, budgetWl, r.R.StorageBits, wl)
			}
		}
	}
	return nil
}
