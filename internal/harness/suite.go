package harness

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"entangling/internal/stats"
	"entangling/internal/workload"
)

// SuiteResults indexes the runs of a configurations x workloads sweep.
type SuiteResults struct {
	// Runs[config][workload] holds the run result.
	Runs map[string]map[string]RunResult
	// ConfigOrder preserves the configuration order for rendering.
	ConfigOrder []string
	// WorkloadOrder preserves the workload order.
	WorkloadOrder []string
}

// RunSuite executes every configuration over every workload.
//
// Each workload's instruction stream is materialized once in a shared
// trace cache and reused read-only by every configuration: the sweep
// pays N_specs generations instead of N_cfgs x N_specs. Jobs are
// ordered workload-major so the cells sharing a trace run close
// together and the cache's refcounting can evict each trace as soon as
// its last configuration finishes — resident traces stay proportional
// to the worker count, not the suite size.
func RunSuite(specs []workload.Spec, cfgs []Configuration, opt Options) (*SuiteResults, error) {
	out := &SuiteResults{Runs: make(map[string]map[string]RunResult)}
	for _, c := range cfgs {
		out.ConfigOrder = append(out.ConfigOrder, c.Name)
		out.Runs[c.Name] = make(map[string]RunResult, len(specs))
	}
	for _, s := range specs {
		out.WorkloadOrder = append(out.WorkloadOrder, s.Name)
	}

	type job struct {
		cfg  Configuration
		spec workload.Spec
	}
	jobs := make(chan job)
	results := make(chan RunResult, 8)

	cache := opt.Traces
	if cache == nil {
		cache = workload.NewTraceCache()
	}
	traceLen := opt.Warmup + opt.Measure

	// Every worker error is collected (not just the first), and each is
	// wrapped with its (configuration, workload) cell so a multi-failure
	// sweep report says exactly which cells died.
	var (
		errMu   sync.Mutex
		runErrs []error
	)
	addErr := func(cfg Configuration, spec workload.Spec, err error) {
		errMu.Lock()
		runErrs = append(runErrs, fmt.Errorf("cell %s/%s: %w", cfg.Name, spec.Name, err))
		errMu.Unlock()
	}

	workers := opt.Parallelism
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				tr, err := cache.Acquire(j.spec, traceLen, len(cfgs))
				if err != nil {
					cache.Release(j.spec, traceLen)
					addErr(j.cfg, j.spec, err)
					continue
				}
				r, err := RunTrace(j.cfg, j.spec, tr, opt.Warmup, opt.Measure)
				cache.Release(j.spec, traceLen)
				if err != nil {
					addErr(j.cfg, j.spec, err)
					continue
				}
				results <- r
			}
		}()
	}
	go func() {
		for _, s := range specs {
			for _, c := range cfgs {
				jobs <- job{cfg: c, spec: s}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	for r := range results {
		out.Runs[r.Config][r.Workload] = r
	}
	if len(runErrs) > 0 {
		// Worker scheduling is nondeterministic; sort so the combined
		// error reads the same across runs and parallelism settings.
		sort.Slice(runErrs, func(i, j int) bool {
			return runErrs[i].Error() < runErrs[j].Error()
		})
		return nil, fmt.Errorf("harness: %d of %d runs failed: %w",
			len(runErrs), len(cfgs)*len(specs), errors.Join(runErrs...))
	}
	return out, nil
}

// baselineFor returns the baseline run for a workload (the "no"
// configuration), which normalizations and coverage are computed
// against.
func (s *SuiteResults) baselineFor(wl string) (RunResult, bool) {
	base, ok := s.Runs["no"]
	if !ok {
		return RunResult{}, false
	}
	r, ok := base[wl]
	return r, ok
}

// nan pads vector slots whose value is undefined for a workload.
var nan = math.NaN()

// NormalizedIPC returns each workload's IPC under cfg divided by the
// baseline IPC. The vector is aligned with WorkloadOrder: slots whose
// run or baseline is missing (or whose baseline IPC is zero) hold NaN
// rather than being skipped, so element i always describes
// WorkloadOrder[i]. Aggregations filter with stats.FilterFinite.
func (s *SuiteResults) NormalizedIPC(cfg string) []float64 {
	out := make([]float64, len(s.WorkloadOrder))
	for i, wl := range s.WorkloadOrder {
		r, ok := s.Runs[cfg][wl]
		b, bok := s.baselineFor(wl)
		if !ok || !bok || b.R.IPC == 0 {
			out[i] = nan
			continue
		}
		out[i] = r.R.IPC / b.R.IPC
	}
	return out
}

// GeomeanSpeedup returns the geometric-mean normalized IPC of cfg,
// computed over the workloads with a usable baseline — the same subset
// for every configuration. If cfg is missing a run for any workload of
// that subset the subsets would diverge between configurations, so the
// result is NaN (loud in every rendered figure) instead of a silently
// incomparable mean over fewer workloads.
func (s *SuiteResults) GeomeanSpeedup(cfg string) float64 {
	var vals []float64
	for i, v := range s.NormalizedIPC(cfg) {
		wl := s.WorkloadOrder[i]
		b, bok := s.baselineFor(wl)
		if !bok || b.R.IPC == 0 {
			continue // no baseline: undefined for every configuration
		}
		if math.IsNaN(v) {
			return nan // baseline exists but cfg's run is missing
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return 0
	}
	return stats.Geomean(vals)
}

// MissRatios returns each workload's L1I miss ratio under cfg, aligned
// with WorkloadOrder (NaN for missing runs).
func (s *SuiteResults) MissRatios(cfg string) []float64 {
	out := make([]float64, len(s.WorkloadOrder))
	for i, wl := range s.WorkloadOrder {
		if r, ok := s.Runs[cfg][wl]; ok {
			out[i] = r.R.L1I.MissRatio()
		} else {
			out[i] = nan
		}
	}
	return out
}

// Coverage returns per-workload prefetch coverage vs baseline misses
// (the paper's "percentage of L1I misses covered by prefetching"),
// aligned with WorkloadOrder (NaN where the run or baseline is missing
// or the baseline had no misses).
func (s *SuiteResults) Coverage(cfg string) []float64 {
	out := make([]float64, len(s.WorkloadOrder))
	for i, wl := range s.WorkloadOrder {
		r, ok := s.Runs[cfg][wl]
		b, bok := s.baselineFor(wl)
		if !ok || !bok || b.R.L1I.Misses == 0 {
			out[i] = nan
			continue
		}
		out[i] = 1 - float64(r.R.L1I.Misses)/float64(b.R.L1I.Misses)
	}
	return out
}

// Accuracy returns per-workload prefetch accuracy under cfg, aligned
// with WorkloadOrder (NaN for missing runs).
func (s *SuiteResults) Accuracy(cfg string) []float64 {
	out := make([]float64, len(s.WorkloadOrder))
	for i, wl := range s.WorkloadOrder {
		if r, ok := s.Runs[cfg][wl]; ok {
			out[i] = r.R.L1I.Accuracy()
		} else {
			out[i] = nan
		}
	}
	return out
}

// StorageKB returns the configuration's prefetcher budget in KB (0 for
// baseline/cache-growth configurations). The value is taken from the
// first workload in WorkloadOrder with a run — a deterministic choice,
// unlike Go map iteration; Validate checks all runs agree on it.
func (s *SuiteResults) StorageKB(cfg string) float64 {
	for _, wl := range s.WorkloadOrder {
		if r, ok := s.Runs[cfg][wl]; ok {
			return float64(r.R.StorageBits) / 8 / 1024
		}
	}
	return 0
}

// CategoryMean aggregates a per-run metric by workload category,
// returning means and standard deviations keyed by category (the
// grouping of Figures 12-15).
func (s *SuiteResults) CategoryMean(cfg string, metric func(RunResult) (float64, bool)) (map[workload.Category]float64, map[workload.Category]float64) {
	byCat := map[workload.Category][]float64{}
	for _, wl := range s.WorkloadOrder {
		r, ok := s.Runs[cfg][wl]
		if !ok {
			continue
		}
		if v, ok := metric(r); ok {
			byCat[r.Category] = append(byCat[r.Category], v)
		}
	}
	means := map[workload.Category]float64{}
	devs := map[workload.Category]float64{}
	for c, vs := range byCat {
		means[c] = stats.Mean(vs)
		devs[c] = stats.Stddev(vs)
	}
	return means, devs
}

// Categories returns the categories present, sorted.
func (s *SuiteResults) Categories() []workload.Category {
	seen := map[workload.Category]bool{}
	for _, wl := range s.WorkloadOrder {
		for _, cfgRuns := range s.Runs {
			if r, ok := cfgRuns[wl]; ok {
				seen[r.Category] = true
				break
			}
		}
	}
	var out []string
	for c := range seen {
		out = append(out, string(c))
	}
	sort.Strings(out)
	cats := make([]workload.Category, len(out))
	for i, c := range out {
		cats[i] = workload.Category(c)
	}
	return cats
}

// TimelyFractions returns, per workload, the fraction of cfg's
// prefetch fills that served a demand fully ahead of need.
func (s *SuiteResults) TimelyFractions(cfg string) []float64 {
	return s.lifecycleFractions(cfg, func(r RunResult) uint64 { return r.R.Lifecycle.Timely })
}

// LateFractions returns, per workload, the fraction of cfg's prefetch
// fills a demand caught in flight (partial latency hidden).
func (s *SuiteResults) LateFractions(cfg string) []float64 {
	return s.lifecycleFractions(cfg, func(r RunResult) uint64 { return r.R.Lifecycle.Late })
}

// InaccurateFractions returns, per workload, the fraction of cfg's
// prefetch fills evicted unused and never demanded again.
func (s *SuiteResults) InaccurateFractions(cfg string) []float64 {
	return s.lifecycleFractions(cfg, func(r RunResult) uint64 { return r.R.Lifecycle.Inaccurate() })
}

// lifecycleFractions returns a WorkloadOrder-aligned vector (NaN where
// the run is missing or had no prefetch fills to classify).
func (s *SuiteResults) lifecycleFractions(cfg string, num func(RunResult) uint64) []float64 {
	out := make([]float64, len(s.WorkloadOrder))
	for i, wl := range s.WorkloadOrder {
		r, ok := s.Runs[cfg][wl]
		if !ok || r.R.L1I.PrefetchFills == 0 {
			out[i] = nan
			continue
		}
		out[i] = float64(num(r)) / float64(r.R.L1I.PrefetchFills)
	}
	return out
}

// L1IStallShares returns, per workload, the share of attributed stall
// cycles the L1I is responsible for under cfg — the top-down number a
// prefetcher exists to shrink. Aligned with WorkloadOrder (NaN where
// the run is missing or attributed no stalls).
func (s *SuiteResults) L1IStallShares(cfg string) []float64 {
	out := make([]float64, len(s.WorkloadOrder))
	for i, wl := range s.WorkloadOrder {
		r, ok := s.Runs[cfg][wl]
		if !ok || r.R.Stalls.Total() == 0 {
			out[i] = nan
			continue
		}
		out[i] = float64(r.R.Stalls.L1IMiss) / float64(r.R.Stalls.Total())
	}
	return out
}

// Validate checks the sweep is complete (every config ran every
// workload) and internally consistent (every run of a configuration
// reports the same prefetcher storage budget — the budget is a
// property of the configuration, so disagreement means corrupted
// results).
func (s *SuiteResults) Validate() error {
	for _, c := range s.ConfigOrder {
		var budget uint64
		var budgetWl string
		for i, wl := range s.WorkloadOrder {
			r, ok := s.Runs[c][wl]
			if !ok {
				return fmt.Errorf("harness: missing run %s/%s", c, wl)
			}
			if i == 0 {
				budget, budgetWl = r.R.StorageBits, wl
			} else if r.R.StorageBits != budget {
				return fmt.Errorf("harness: %s reports storage %d bits on %s but %d bits on %s",
					c, budget, budgetWl, r.R.StorageBits, wl)
			}
		}
	}
	return nil
}
