package harness

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"entangling/internal/stats"
	"entangling/internal/workload"
)

// SuiteResults indexes the runs of a configurations x workloads sweep.
type SuiteResults struct {
	// Runs[config][workload] holds the run result.
	Runs map[string]map[string]RunResult
	// ConfigOrder preserves the configuration order for rendering.
	ConfigOrder []string
	// WorkloadOrder preserves the workload order.
	WorkloadOrder []string
}

// RunSuite executes every configuration over every workload.
func RunSuite(specs []workload.Spec, cfgs []Configuration, opt Options) (*SuiteResults, error) {
	out := &SuiteResults{Runs: make(map[string]map[string]RunResult)}
	for _, c := range cfgs {
		out.ConfigOrder = append(out.ConfigOrder, c.Name)
		out.Runs[c.Name] = make(map[string]RunResult, len(specs))
	}
	for _, s := range specs {
		out.WorkloadOrder = append(out.WorkloadOrder, s.Name)
	}

	type job struct {
		cfg  Configuration
		spec workload.Spec
	}
	jobs := make(chan job)
	results := make(chan RunResult, 8)

	// Every worker error is collected (not just the first): a sweep
	// that fails on several configurations reports them all, and no
	// in-flight error is silently dropped.
	var (
		errMu   sync.Mutex
		runErrs []error
	)

	workers := opt.Parallelism
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r, err := Run(j.cfg, j.spec, opt.Warmup, opt.Measure, nil, nil)
				if err != nil {
					errMu.Lock()
					runErrs = append(runErrs, err)
					errMu.Unlock()
					continue
				}
				results <- r
			}
		}()
	}
	go func() {
		for _, c := range cfgs {
			for _, s := range specs {
				jobs <- job{cfg: c, spec: s}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	for r := range results {
		out.Runs[r.Config][r.Workload] = r
	}
	if len(runErrs) > 0 {
		// Worker scheduling is nondeterministic; sort so the combined
		// error reads the same across runs and parallelism settings.
		sort.Slice(runErrs, func(i, j int) bool {
			return runErrs[i].Error() < runErrs[j].Error()
		})
		return nil, fmt.Errorf("harness: %d of %d runs failed: %w",
			len(runErrs), len(cfgs)*len(specs), errors.Join(runErrs...))
	}
	return out, nil
}

// baselineFor returns the baseline run for a workload (the "no"
// configuration), which normalizations and coverage are computed
// against.
func (s *SuiteResults) baselineFor(wl string) (RunResult, bool) {
	base, ok := s.Runs["no"]
	if !ok {
		return RunResult{}, false
	}
	r, ok := base[wl]
	return r, ok
}

// NormalizedIPC returns each workload's IPC under cfg divided by the
// baseline IPC, in workload order.
func (s *SuiteResults) NormalizedIPC(cfg string) []float64 {
	var out []float64
	for _, wl := range s.WorkloadOrder {
		r, ok := s.Runs[cfg][wl]
		b, bok := s.baselineFor(wl)
		if !ok || !bok || b.R.IPC == 0 {
			continue
		}
		out = append(out, r.R.IPC/b.R.IPC)
	}
	return out
}

// GeomeanSpeedup returns the geometric-mean normalized IPC of cfg.
func (s *SuiteResults) GeomeanSpeedup(cfg string) float64 {
	n := s.NormalizedIPC(cfg)
	if len(n) == 0 {
		return 0
	}
	return stats.Geomean(n)
}

// MissRatios returns each workload's L1I miss ratio under cfg.
func (s *SuiteResults) MissRatios(cfg string) []float64 {
	var out []float64
	for _, wl := range s.WorkloadOrder {
		if r, ok := s.Runs[cfg][wl]; ok {
			out = append(out, r.R.L1I.MissRatio())
		}
	}
	return out
}

// Coverage returns per-workload prefetch coverage vs baseline misses
// (the paper's "percentage of L1I misses covered by prefetching").
func (s *SuiteResults) Coverage(cfg string) []float64 {
	var out []float64
	for _, wl := range s.WorkloadOrder {
		r, ok := s.Runs[cfg][wl]
		b, bok := s.baselineFor(wl)
		if !ok || !bok || b.R.L1I.Misses == 0 {
			continue
		}
		cov := 1 - float64(r.R.L1I.Misses)/float64(b.R.L1I.Misses)
		out = append(out, cov)
	}
	return out
}

// Accuracy returns per-workload prefetch accuracy under cfg.
func (s *SuiteResults) Accuracy(cfg string) []float64 {
	var out []float64
	for _, wl := range s.WorkloadOrder {
		if r, ok := s.Runs[cfg][wl]; ok {
			out = append(out, r.R.L1I.Accuracy())
		}
	}
	return out
}

// StorageKB returns the configuration's prefetcher budget in KB (taken
// from any run; 0 for baseline/cache-growth configurations).
func (s *SuiteResults) StorageKB(cfg string) float64 {
	for _, r := range s.Runs[cfg] {
		return float64(r.R.StorageBits) / 8 / 1024
	}
	return 0
}

// CategoryMean aggregates a per-run metric by workload category,
// returning means and standard deviations keyed by category (the
// grouping of Figures 12-15).
func (s *SuiteResults) CategoryMean(cfg string, metric func(RunResult) (float64, bool)) (map[workload.Category]float64, map[workload.Category]float64) {
	byCat := map[workload.Category][]float64{}
	for _, wl := range s.WorkloadOrder {
		r, ok := s.Runs[cfg][wl]
		if !ok {
			continue
		}
		if v, ok := metric(r); ok {
			byCat[r.Category] = append(byCat[r.Category], v)
		}
	}
	means := map[workload.Category]float64{}
	devs := map[workload.Category]float64{}
	for c, vs := range byCat {
		means[c] = stats.Mean(vs)
		devs[c] = stats.Stddev(vs)
	}
	return means, devs
}

// Categories returns the categories present, sorted.
func (s *SuiteResults) Categories() []workload.Category {
	seen := map[workload.Category]bool{}
	for _, wl := range s.WorkloadOrder {
		for _, cfgRuns := range s.Runs {
			if r, ok := cfgRuns[wl]; ok {
				seen[r.Category] = true
				break
			}
		}
	}
	var out []string
	for c := range seen {
		out = append(out, string(c))
	}
	sort.Strings(out)
	cats := make([]workload.Category, len(out))
	for i, c := range out {
		cats[i] = workload.Category(c)
	}
	return cats
}

// TimelyFractions returns, per workload, the fraction of cfg's
// prefetch fills that served a demand fully ahead of need.
func (s *SuiteResults) TimelyFractions(cfg string) []float64 {
	return s.lifecycleFractions(cfg, func(r RunResult) uint64 { return r.R.Lifecycle.Timely })
}

// LateFractions returns, per workload, the fraction of cfg's prefetch
// fills a demand caught in flight (partial latency hidden).
func (s *SuiteResults) LateFractions(cfg string) []float64 {
	return s.lifecycleFractions(cfg, func(r RunResult) uint64 { return r.R.Lifecycle.Late })
}

// InaccurateFractions returns, per workload, the fraction of cfg's
// prefetch fills evicted unused and never demanded again.
func (s *SuiteResults) InaccurateFractions(cfg string) []float64 {
	return s.lifecycleFractions(cfg, func(r RunResult) uint64 { return r.R.Lifecycle.Inaccurate() })
}

func (s *SuiteResults) lifecycleFractions(cfg string, num func(RunResult) uint64) []float64 {
	var out []float64
	for _, wl := range s.WorkloadOrder {
		r, ok := s.Runs[cfg][wl]
		if !ok || r.R.L1I.PrefetchFills == 0 {
			continue
		}
		out = append(out, float64(num(r))/float64(r.R.L1I.PrefetchFills))
	}
	return out
}

// L1IStallShares returns, per workload, the share of attributed stall
// cycles the L1I is responsible for under cfg — the top-down number a
// prefetcher exists to shrink.
func (s *SuiteResults) L1IStallShares(cfg string) []float64 {
	var out []float64
	for _, wl := range s.WorkloadOrder {
		r, ok := s.Runs[cfg][wl]
		if !ok || r.R.Stalls.Total() == 0 {
			continue
		}
		out = append(out, float64(r.R.Stalls.L1IMiss)/float64(r.R.Stalls.Total()))
	}
	return out
}

// Validate checks the sweep is complete (every config ran every
// workload).
func (s *SuiteResults) Validate() error {
	for _, c := range s.ConfigOrder {
		for _, wl := range s.WorkloadOrder {
			if _, ok := s.Runs[c][wl]; !ok {
				return fmt.Errorf("harness: missing run %s/%s", c, wl)
			}
		}
	}
	return nil
}
