package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"entangling/internal/workload"
)

// This file implements the benchmark regression harness: a pinned
// mini-sweep whose wall-clock time, throughput, allocation rate and
// peak memory are recorded as a versioned JSON point (BENCH_*.json),
// so every PR can append a comparable number to the repository's
// performance trajectory. See EXPERIMENTS.md, "Benchmark methodology".

// BenchSchemaVersion identifies the BENCH_*.json layout; bump it on any
// incompatible change.
const BenchSchemaVersion = 1

// BenchSweep pins the benchmark workload: the exact cells, windows and
// worker count a benchmark point was measured on. Two points are only
// comparable when their sweeps match.
type BenchSweep struct {
	Configs     []string `json:"configs"`
	Workloads   []string `json:"workloads"`
	Warmup      uint64   `json:"warmup"`
	Measure     uint64   `json:"measure"`
	Parallelism int      `json:"parallelism"`
	Cells       int      `json:"cells"`
}

// BenchPoint is one measured benchmark result.
type BenchPoint struct {
	SchemaVersion int        `json:"schema_version"`
	Label         string     `json:"label"`
	GoVersion     string     `json:"go_version"`
	GOMAXPROCS    int        `json:"gomaxprocs"`
	Sweep         BenchSweep `json:"sweep"`

	// ForkedWarmup records that the sweep ran with a warmup-snapshot
	// cache (Options.Warm): iteration 1 warms every class sequentially
	// and later iterations fork the snapshots, so the fastest-of-N
	// timing measures the measure-only steady state. The metrics
	// fingerprint is still asserted identical across iterations, which
	// is the forked-vs-sequential equivalence gate.
	ForkedWarmup bool `json:"forked_warmup,omitempty"`

	// Iterations is how many times the sweep ran; the timing fields
	// report the fastest iteration (least-noise estimator).
	Iterations  int     `json:"iterations"`
	WallSeconds float64 `json:"wall_seconds"`
	RunsPerSec  float64 `json:"runs_per_sec"`
	// Instructions is the total simulated (warmup+measure) instruction
	// count of one sweep iteration.
	Instructions uint64  `json:"instructions"`
	InstrsPerSec float64 `json:"instrs_per_sec"`

	// Allocation profile of the fastest iteration.
	AllocsPerRun   float64 `json:"allocs_per_run"`
	AllocsPerInstr float64 `json:"allocs_per_instr"`
	BytesPerInstr  float64 `json:"bytes_per_instr"`

	// TraceBuildSeconds is the one-time cost of materializing the
	// sweep's workload traces into the shared cache. It is paid once up
	// front (the traces are pinned across iterations), so it is
	// reported separately from the per-iteration sweep wall-clock.
	TraceBuildSeconds float64 `json:"trace_build_seconds"`

	// PeakRSSBytes is the process high-water mark (VmHWM) after the
	// sweep; 0 when the platform does not expose it.
	PeakRSSBytes uint64 `json:"peak_rss_bytes"`

	// MetricsSHA256 fingerprints the sweep's metrics JSON export. Two
	// benchmark points with the same sweep must agree on it: the
	// optimization trajectory is only valid while simulated behaviour
	// is unchanged.
	MetricsSHA256 string `json:"metrics_sha256"`
}

// BenchFile is the committed BENCH_<label>.json document: the point
// measured before the change (when available) and after it.
type BenchFile struct {
	SchemaVersion int         `json:"schema_version"`
	Label         string      `json:"label"`
	Before        *BenchPoint `json:"before,omitempty"`
	After         BenchPoint  `json:"after"`
	// SpeedupVsBefore is After/Before wall-clock improvement (e.g. 2.1
	// means the sweep got 2.1x faster); 0 when Before is absent.
	SpeedupVsBefore float64 `json:"speedup_vs_before,omitempty"`
}

// PinnedBenchSpecs returns the fixed workload set of the benchmark
// mini-sweep. Pinned: changing it invalidates cross-PR comparisons.
func PinnedBenchSpecs() []workload.Spec { return workload.CVPSuite(1) }

// PinnedBenchConfigurations returns the fixed configuration lineup of
// the benchmark mini-sweep: baseline, the strongest competitors, both
// low-budget entangling points, and the ideal bound — enough reuse per
// workload trace to expose redundant-generation regressions.
func PinnedBenchConfigurations() []Configuration {
	return []Configuration{
		Baseline,
		{Name: "nextline", Prefetcher: "nextline"},
		{Name: "mana-4k", Prefetcher: "mana-4k"},
		{Name: "djolt", Prefetcher: "djolt"},
		{Name: "entangling-2k", Prefetcher: "entangling-2k"},
		{Name: "entangling-4k", Prefetcher: "entangling-4k"},
		{Name: "ideal", IdealL1I: true},
	}
}

// PinnedBenchOptions returns the fixed windows of the mini-sweep.
func PinnedBenchOptions() Options {
	return Options{
		Warmup:      400_000,
		Measure:     200_000,
		PerCategory: 1,
		Parallelism: runtime.GOMAXPROCS(0),
	}
}

// RunBench executes the pinned mini-sweep `iterations` times and
// returns the measured point. The fastest iteration provides the
// timing numbers; the metrics fingerprint is asserted identical across
// iterations (a changed hash means nondeterminism, which would make
// the whole trajectory meaningless).
func RunBench(label string, iterations int) (BenchPoint, error) {
	return RunBenchCtx(context.Background(), label, iterations)
}

// RunBenchCtx is RunBench with cooperative cancellation: an interrupt
// abandons the remaining iterations instead of leaving a half-measured
// point behind.
func RunBenchCtx(ctx context.Context, label string, iterations int) (BenchPoint, error) {
	return runBenchCtx(ctx, label, iterations, false)
}

// RunBenchForkedCtx runs the pinned mini-sweep with a warmup-snapshot
// cache shared across iterations: the first iteration pays every
// class's warmup and offers the snapshots, later iterations fork them
// and simulate only their measured windows. With iterations >= 2 the
// fastest iteration therefore times the forked steady state, and the
// cross-iteration fingerprint assertion doubles as the proof that the
// forked path reproduces the sequential path byte for byte.
func RunBenchForkedCtx(ctx context.Context, label string, iterations int) (BenchPoint, error) {
	return runBenchCtx(ctx, label, iterations, true)
}

func runBenchCtx(ctx context.Context, label string, iterations int, forked bool) (BenchPoint, error) {
	if iterations < 1 {
		iterations = 1
	}
	specs := PinnedBenchSpecs()
	cfgs := PinnedBenchConfigurations()
	opt := PinnedBenchOptions()
	if forked {
		opt.Warm = NewWarmupSnapshots()
	}

	p := BenchPoint{
		SchemaVersion: BenchSchemaVersion,
		Label:         label,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		ForkedWarmup:  forked,
		Iterations:    iterations,
		Sweep: BenchSweep{
			Warmup:      opt.Warmup,
			Measure:     opt.Measure,
			Parallelism: opt.Parallelism,
			Cells:       len(specs) * len(cfgs),
		},
	}
	for _, c := range cfgs {
		p.Sweep.Configs = append(p.Sweep.Configs, c.Name)
	}
	for _, s := range specs {
		p.Sweep.Workloads = append(p.Sweep.Workloads, s.Name)
	}

	// Materialize every workload trace once, pinned for the lifetime of
	// the benchmark: iterations then measure sweep time with warm
	// traces, which is the steady-state cost the cache design targets.
	// The one-time build cost is reported separately.
	cache := workload.NewTraceCache()
	opt.Traces = cache
	buildStart := time.Now()
	for _, s := range specs {
		if _, err := cache.Pin(s, opt.Warmup+opt.Measure); err != nil {
			return BenchPoint{}, fmt.Errorf("bench: materializing %s: %w", s.Name, err)
		}
	}
	p.TraceBuildSeconds = time.Since(buildStart).Seconds()

	var best time.Duration
	var bestAllocs, bestBytes uint64
	for i := 0; i < iterations; i++ {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		s, err := RunSuiteCtx(ctx, specs, cfgs, opt)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return BenchPoint{}, fmt.Errorf("bench: sweep failed: %w", err)
		}

		var instrs uint64
		for _, perWl := range s.Runs {
			for range perWl {
				instrs += opt.Warmup + opt.Measure
			}
		}
		sum := sha256.Sum256(metricsBytes(s))
		hash := hex.EncodeToString(sum[:])
		if p.MetricsSHA256 == "" {
			p.MetricsSHA256 = hash
			p.Instructions = instrs
		} else if p.MetricsSHA256 != hash {
			return BenchPoint{}, fmt.Errorf(
				"bench: metrics fingerprint changed between iterations (%s vs %s): simulation is nondeterministic",
				p.MetricsSHA256, hash)
		}
		if best == 0 || elapsed < best {
			best = elapsed
			bestAllocs = m1.Mallocs - m0.Mallocs
			bestBytes = m1.TotalAlloc - m0.TotalAlloc
		}
	}

	cells := float64(p.Sweep.Cells)
	p.WallSeconds = best.Seconds()
	p.RunsPerSec = cells / best.Seconds()
	p.InstrsPerSec = float64(p.Instructions) / best.Seconds()
	p.AllocsPerRun = float64(bestAllocs) / cells
	p.AllocsPerInstr = float64(bestAllocs) / float64(p.Instructions)
	p.BytesPerInstr = float64(bestBytes) / float64(p.Instructions)
	p.PeakRSSBytes = readPeakRSS()
	return p, nil
}

// metricsBytes serializes a sweep's metrics export for fingerprinting.
func metricsBytes(s *SuiteResults) []byte {
	var sb strings.Builder
	if err := WriteMetricsJSON(&sb, s.Metrics()); err != nil {
		panic(err) // in-memory marshal of a plain struct cannot fail
	}
	return []byte(sb.String())
}

// ValidateBenchPoint checks a point for schema conformance.
func ValidateBenchPoint(p *BenchPoint) error {
	switch {
	case p.SchemaVersion != BenchSchemaVersion:
		return fmt.Errorf("bench: schema_version %d, want %d", p.SchemaVersion, BenchSchemaVersion)
	case p.Label == "":
		return fmt.Errorf("bench: missing label")
	case p.GoVersion == "":
		return fmt.Errorf("bench: missing go_version")
	case len(p.Sweep.Configs) == 0 || len(p.Sweep.Workloads) == 0:
		return fmt.Errorf("bench: sweep must name its configs and workloads")
	case p.Sweep.Cells != len(p.Sweep.Configs)*len(p.Sweep.Workloads):
		return fmt.Errorf("bench: cells %d != %d configs x %d workloads",
			p.Sweep.Cells, len(p.Sweep.Configs), len(p.Sweep.Workloads))
	case p.WallSeconds <= 0:
		return fmt.Errorf("bench: wall_seconds must be positive")
	case p.RunsPerSec <= 0 || p.InstrsPerSec <= 0:
		return fmt.Errorf("bench: throughput fields must be positive")
	case p.Instructions == 0:
		return fmt.Errorf("bench: missing instruction count")
	case len(p.MetricsSHA256) != 64:
		return fmt.Errorf("bench: metrics_sha256 must be a hex SHA-256")
	}
	return nil
}

// ValidateBenchFile checks a BENCH_*.json document.
func ValidateBenchFile(f *BenchFile) error {
	if f.SchemaVersion != BenchSchemaVersion {
		return fmt.Errorf("bench: file schema_version %d, want %d", f.SchemaVersion, BenchSchemaVersion)
	}
	if f.Label == "" {
		return fmt.Errorf("bench: file missing label")
	}
	if err := ValidateBenchPoint(&f.After); err != nil {
		return fmt.Errorf("after: %w", err)
	}
	if f.Before != nil {
		if err := ValidateBenchPoint(f.Before); err != nil {
			return fmt.Errorf("before: %w", err)
		}
	}
	return nil
}

// WriteBenchFile writes the document as indented JSON.
func WriteBenchFile(w io.Writer, f BenchFile) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadBenchFile parses and validates a BENCH_*.json document.
func ReadBenchFile(r io.Reader) (BenchFile, error) {
	var f BenchFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return BenchFile{}, fmt.Errorf("bench: parsing: %w", err)
	}
	if err := ValidateBenchFile(&f); err != nil {
		return BenchFile{}, err
	}
	return f, nil
}
