package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSuiteMetricsExport(t *testing.T) {
	specs, cfgs, s := tinySuite(t)
	m := s.Metrics()

	if m.SchemaVersion != MetricsSchemaVersion {
		t.Fatalf("schema version %d", m.SchemaVersion)
	}
	if want := len(specs) * len(cfgs); len(m.Runs) != want {
		t.Fatalf("exported %d runs, want %d", len(m.Runs), want)
	}

	for _, r := range m.Runs {
		// Acceptance invariant: the stall buckets always sum to total.
		sum := r.Stalls.L1IMiss + r.Stalls.BTBMiss + r.Stalls.Mispredict +
			r.Stalls.FTQFull + r.Stalls.ROBFull
		if sum != r.Stalls.Total {
			t.Errorf("%s/%s: stall buckets sum %d != total %d", r.Config, r.Workload, sum, r.Stalls.Total)
		}
		if r.Instructions == 0 || r.Cycles == 0 || r.IPC <= 0 {
			t.Errorf("%s/%s: empty run exported", r.Config, r.Workload)
		}
		if r.Config == "no" {
			if r.Speedup != nil || r.Coverage != nil {
				t.Errorf("baseline row carries speedup/coverage")
			}
			if r.Prefetch.Issued != 0 {
				t.Errorf("baseline issued %d prefetches", r.Prefetch.Issued)
			}
		} else if r.Config != "ideal" {
			// Speedup is always computable; coverage needs the baseline
			// to have missed at all (fp can have zero misses in a tiny
			// window).
			if r.Speedup == nil {
				t.Errorf("%s/%s: missing speedup vs baseline", r.Config, r.Workload)
			}
			if r.Coverage == nil && r.L1IMisses > 0 {
				t.Errorf("%s/%s: missing coverage despite %d misses", r.Config, r.Workload, r.L1IMisses)
			}
		}
		// Lifecycle fates never exceed the fills that created them.
		if r.Prefetch.Timely+r.Prefetch.Late > r.Prefetch.Issued && r.Prefetch.Issued > 0 {
			t.Errorf("%s/%s: timely+late %d exceeds issued %d",
				r.Config, r.Workload, r.Prefetch.Timely+r.Prefetch.Late, r.Prefetch.Issued)
		}
	}

	// Round-trip through JSON.
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, m); err != nil {
		t.Fatal(err)
	}
	var back SuiteMetrics
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Runs) != len(m.Runs) || back.SchemaVersion != m.SchemaVersion {
		t.Fatal("JSON round-trip lost runs")
	}
	if back.Runs[0].Stalls.Total != m.Runs[0].Stalls.Total {
		t.Fatal("JSON round-trip lost stall totals")
	}

	// Marshalling twice is byte-identical (deterministic ordering).
	var buf2 bytes.Buffer
	if err := WriteMetricsJSON(&buf2, s.Metrics()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("repeated export not byte-identical")
	}
}

func TestMetricsCSV(t *testing.T) {
	_, _, s := tinySuite(t)
	csv := MetricsCSV(s.Metrics())
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(s.Metrics().Runs) {
		t.Fatalf("CSV has %d lines, want header+%d", len(lines), len(s.Metrics().Runs))
	}
	cols := strings.Count(lines[0], ",")
	for i, l := range lines[1:] {
		if strings.Count(l, ",") != cols {
			t.Fatalf("row %d has ragged columns: %q", i, l)
		}
	}
	for _, want := range []string{"config", "timely", "late_cycles_saved", "stall_l1i_miss", "stall_total"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("CSV header missing %q: %s", want, lines[0])
		}
	}
}

func TestWriteMetricsFile(t *testing.T) {
	_, _, s := tinySuite(t)
	dir := t.TempDir()

	jsonPath := filepath.Join(dir, "out.json")
	if err := WriteMetricsFile(jsonPath, s.Metrics()); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var m SuiteMetrics
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("JSON file does not parse: %v", err)
	}

	csvPath := filepath.Join(dir, "out.csv")
	if err := WriteMetricsFile(csvPath, s.Metrics()); err != nil {
		t.Fatal(err)
	}
	c, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(c), "config,") {
		t.Fatalf("CSV file does not start with header: %.40q", string(c))
	}
}

func TestQualityTable(t *testing.T) {
	_, _, s := tinySuite(t)
	tab := QualityTable(s)
	if tab == nil || len(tab.Rows) == 0 {
		t.Fatal("empty quality table")
	}
	out := tab.String()
	for _, want := range []string{"timely", "late", "inaccurate", "L1I stall share"} {
		if !strings.Contains(out, want) {
			t.Errorf("quality table missing column %q", want)
		}
	}
	// The baseline ("no") row is excluded: it has no prefetches to rate.
	for _, row := range tab.Rows {
		if row[0] == "no" {
			t.Error("baseline row present in quality table")
		}
	}
}

func TestLifecycleFractionAccessors(t *testing.T) {
	_, _, s := tinySuite(t)
	for _, cfg := range []string{"nextline", "entangling-2k"} {
		tf := s.TimelyFractions(cfg)
		lf := s.LateFractions(cfg)
		inf := s.InaccurateFractions(cfg)
		if len(tf) == 0 || len(lf) == 0 || len(inf) == 0 {
			t.Fatalf("%s: empty fraction vectors", cfg)
		}
		for i := range tf {
			if tf[i] < 0 || tf[i] > 1 || lf[i] < 0 || lf[i] > 1 || inf[i] < 0 || inf[i] > 1 {
				t.Errorf("%s[%d]: fractions out of [0,1]: %v %v %v", cfg, i, tf[i], lf[i], inf[i])
			}
		}
	}
	shares := s.L1IStallShares("no")
	if len(shares) == 0 {
		t.Fatal("no stall shares for baseline")
	}
	for i, v := range shares {
		if v < 0 || v > 1 {
			t.Errorf("stall share[%d] = %v out of [0,1]", i, v)
		}
	}
}
