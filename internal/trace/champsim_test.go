package trace

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

// champsimBuilder assembles raw 64-byte ChampSim records for fixtures,
// applying the inverse of the classify() heuristics: each branch type
// maps back to the register read/write sets ChampSim's tracer emits
// for it.
type champsimBuilder struct {
	buf bytes.Buffer
}

type csRec struct {
	ip      uint64
	branch  bool
	taken   bool
	destReg []uint8
	srcReg  []uint8
	destMem []uint64
	srcMem  []uint64
}

func (b *champsimBuilder) add(r csRec) {
	var rec [champsimRecordSize]byte
	binary.LittleEndian.PutUint64(rec[0:8], r.ip)
	if r.branch {
		rec[8] = 1
	}
	if r.taken {
		rec[9] = 1
	}
	for i, v := range r.destReg {
		rec[10+i] = v
	}
	for i, v := range r.srcReg {
		rec[12+i] = v
	}
	for i, v := range r.destMem {
		binary.LittleEndian.PutUint64(rec[16+8*i:24+8*i], v)
	}
	for i, v := range r.srcMem {
		binary.LittleEndian.PutUint64(rec[32+8*i:40+8*i], v)
	}
	b.buf.Write(rec[:])
}

// plain appends a non-branch record at ip.
func (b *champsimBuilder) plain(ip uint64) { b.add(csRec{ip: ip}) }

// branchRec appends a branch of the given type at ip; the register
// sets are the inverse of classify().
func (b *champsimBuilder) branchRec(ip uint64, bt BranchType, taken bool) {
	r := csRec{ip: ip, branch: true, taken: taken}
	switch bt {
	case CondBranch:
		r.srcReg = []uint8{champsimRegFlags}
		r.destReg = []uint8{champsimRegIP}
	case DirectJump:
		r.destReg = []uint8{champsimRegIP}
	case IndirectJump:
		r.destReg = []uint8{champsimRegIP}
		r.srcReg = []uint8{3} // some general-purpose register
	case DirectCall:
		r.destReg = []uint8{champsimRegIP, champsimRegSP}
		r.srcReg = []uint8{champsimRegIP, champsimRegSP}
	case IndirectCall:
		r.destReg = []uint8{champsimRegIP, champsimRegSP}
		r.srcReg = []uint8{champsimRegIP, champsimRegSP, 3}
	case Return:
		r.destReg = []uint8{champsimRegIP, champsimRegSP}
		r.srcReg = []uint8{champsimRegSP}
	default:
		panic("not a branch type")
	}
	b.add(r)
}

func importAll(t *testing.T, raw []byte, opt ChampSimOptions) ([]Instruction, error) {
	t.Helper()
	cr, err := NewChampSimReader(bytes.NewReader(raw), opt)
	if err != nil {
		return nil, err
	}
	var out []Instruction
	var in Instruction
	for cr.Next(&in) {
		out = append(out, in)
	}
	return out, cr.Err()
}

func TestChampSimBranchClassification(t *testing.T) {
	types := []BranchType{CondBranch, DirectJump, IndirectJump, DirectCall, IndirectCall, Return}
	var b champsimBuilder
	ip := uint64(0x400000)
	for _, bt := range types {
		b.branchRec(ip, bt, true)
		ip += 0x100 // taken: the next record is the target
	}
	b.plain(ip) // terminal record so every branch has lookahead

	got, err := importAll(t, b.buf.Bytes(), ChampSimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(types)+1 {
		t.Fatalf("imported %d records, want %d", len(got), len(types)+1)
	}
	for i, bt := range types {
		if got[i].Branch != bt {
			t.Errorf("record %d: classified %s, want %s", i, got[i].Branch, bt)
		}
		if !got[i].Taken {
			t.Errorf("record %d (%s): not taken", i, bt)
		}
		if want := got[i].PC + 0x100; got[i].Target != want {
			t.Errorf("record %d (%s): target %#x, want next ip %#x", i, bt, got[i].Target, want)
		}
	}
}

func TestChampSimUntakenCondBranch(t *testing.T) {
	var b champsimBuilder
	b.branchRec(0x1000, CondBranch, false)
	b.plain(0x1004)
	got, err := importAll(t, b.buf.Bytes(), ChampSimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Branch != CondBranch || got[0].Taken {
		t.Errorf("untaken conditional imported as %+v", got[0])
	}
	if got[0].Size != 4 {
		t.Errorf("fall-through size = %d, want 4 (ip delta)", got[0].Size)
	}
}

// TestChampSimUnconditionalForcedTaken checks the importer repairs a
// tracer quirk: unconditional branches with the taken bit unset would
// violate ENTRACE1's invariants, so the bit is forced.
func TestChampSimUnconditionalForcedTaken(t *testing.T) {
	var b champsimBuilder
	b.branchRec(0x1000, DirectJump, false) // tracer left taken unset
	b.plain(0x2000)
	got, err := importAll(t, b.buf.Bytes(), ChampSimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Taken {
		t.Error("unconditional branch not forced taken")
	}
	if got[0].Target != 0x2000 {
		t.Errorf("target %#x, want 0x2000", got[0].Target)
	}
}

func TestChampSimSizeInference(t *testing.T) {
	var b champsimBuilder
	b.plain(0x1000) // next ip delta 2 -> size 2
	b.plain(0x1002) // next ip delta 15 -> size 15
	b.plain(0x1011) // next ip delta 200 -> implausible, default 4
	b.plain(0x10d9) // last record -> default 4
	got, err := importAll(t, b.buf.Bytes(), ChampSimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint8{2, 15, 4, 4} {
		if got[i].Size != want {
			t.Errorf("record %d: size %d, want %d", i, got[i].Size, want)
		}
	}
}

func TestChampSimMemoryOperands(t *testing.T) {
	var b champsimBuilder
	b.add(csRec{ip: 0x1000, srcMem: []uint64{0x7000_0000}})                          // load
	b.add(csRec{ip: 0x1004, destMem: []uint64{0x7000_1000}})                         // store
	b.add(csRec{ip: 0x1008, srcMem: []uint64{0x7000_2000}, destMem: []uint64{0x99}}) // both
	b.plain(0x100c)
	got, err := importAll(t, b.buf.Bytes(), ChampSimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].IsLoad || got[0].IsStore || got[0].DataAddr != 0x7000_0000 {
		t.Errorf("load record: %+v", got[0])
	}
	if got[1].IsLoad || !got[1].IsStore || got[1].DataAddr != 0x7000_1000 {
		t.Errorf("store record: %+v", got[1])
	}
	if !got[2].IsLoad || !got[2].IsStore || got[2].DataAddr != 0x7000_2000 {
		t.Errorf("load+store record: %+v (load address must win)", got[2])
	}
}

func TestChampSimSynthesizeData(t *testing.T) {
	var b champsimBuilder
	for i := 0; i < 64; i++ {
		b.plain(0x1000 + uint64(i)*4)
	}
	plain, err := importAll(t, b.buf.Bytes(), ChampSimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range plain {
		if in.IsLoad || in.IsStore {
			t.Fatalf("record %d: memory op without SynthesizeData", i)
		}
	}
	synth, err := importAll(t, b.buf.Bytes(), ChampSimOptions{SynthesizeData: true})
	if err != nil {
		t.Fatal(err)
	}
	loads := 0
	for _, in := range synth {
		if in.IsLoad {
			loads++
			if in.DataAddr == 0 {
				t.Error("synthetic load without address")
			}
		}
	}
	if loads != 16 { // every 4th of 64 records
		t.Errorf("%d synthetic loads, want 16", loads)
	}
}

func TestChampSimGzipAutoDetect(t *testing.T) {
	var b champsimBuilder
	for i := 0; i < 10; i++ {
		b.plain(0x1000 + uint64(i)*4)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(b.buf.Bytes())
	zw.Close()

	got, err := importAll(t, gz.Bytes(), ChampSimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Errorf("imported %d records from gzip input, want 10", len(got))
	}
}

func TestChampSimRejectsXZ(t *testing.T) {
	xz := append([]byte{0xfd}, []byte("7zXZ\x00 payload")...)
	_, err := NewChampSimReader(bytes.NewReader(xz), ChampSimOptions{})
	if err == nil || !strings.Contains(err.Error(), "xz") {
		t.Errorf("xz input: err = %v, want xz rejection", err)
	}
}

func TestChampSimTruncatedRecord(t *testing.T) {
	var b champsimBuilder
	b.plain(0x1000)
	b.plain(0x1004)
	raw := b.buf.Bytes()[:champsimRecordSize+17] // second record cut off
	_, err := importAll(t, raw, ChampSimOptions{})
	if !errors.Is(err, ErrChampSimTruncated) {
		t.Errorf("err = %v, want ErrChampSimTruncated", err)
	}
}

func TestChampSimInstrLimit(t *testing.T) {
	var b champsimBuilder
	for i := 0; i < 10; i++ {
		b.plain(0x1000 + uint64(i)*4)
	}
	// Exactly at the cap: clean.
	got, err := importAll(t, b.buf.Bytes(), ChampSimOptions{Limits: Limits{MaxInstrs: 10}})
	if err != nil || len(got) != 10 {
		t.Errorf("at-cap import: n=%d err=%v", len(got), err)
	}
	// One under: the 10th record trips the limit.
	_, err = importAll(t, b.buf.Bytes(), ChampSimOptions{Limits: Limits{MaxInstrs: 9}})
	if !errors.Is(err, ErrLimitExceeded) {
		t.Errorf("over-cap import: err = %v, want ErrLimitExceeded", err)
	}
}

func TestChampSimByteLimit(t *testing.T) {
	var b champsimBuilder
	for i := 0; i < 1000; i++ {
		b.plain(0x1000 + uint64(i)*4)
	}
	_, err := importAll(t, b.buf.Bytes(), ChampSimOptions{Limits: Limits{MaxBytes: 1 << 10}})
	var le *LimitError
	if !errors.As(err, &le) || le.What != "payload byte" {
		t.Errorf("err = %v, want payload byte LimitError", err)
	}
}

// TestChampSimRoundTripThroughCodec is the golden-path integration: a
// ChampSim fixture imports to ENTRACE1, the encoded stream decodes to
// the same instructions, and re-encoding is byte-identical — the stored
// form of an imported trace is canonical.
func TestChampSimRoundTripThroughCodec(t *testing.T) {
	var b champsimBuilder
	ip := uint64(0x400000)
	for i := 0; i < 200; i++ {
		switch i % 10 {
		case 3:
			b.branchRec(ip, CondBranch, i%20 == 3)
			if i%20 == 3 {
				ip += 0x40
				continue
			}
		case 7:
			b.branchRec(ip, DirectCall, true)
			ip += 0x1000
			continue
		case 9:
			b.branchRec(ip, Return, true)
			ip -= 0x1000 - 12
			continue
		case 5:
			b.add(csRec{ip: ip, srcMem: []uint64{0x7f00_0000 + uint64(i)*8}})
		default:
			b.plain(ip)
		}
		ip += 4
	}

	var enc bytes.Buffer
	count, err := ConvertChampSim(&enc, bytes.NewReader(b.buf.Bytes()), ChampSimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if count != 200 {
		t.Fatalf("converted %d records, want 200", count)
	}

	r, err := NewReader(bytes.NewReader(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var decoded []Instruction
	var in Instruction
	for r.Next(&in) {
		decoded = append(decoded, in)
	}
	if r.Err() != nil {
		t.Fatalf("decoding converted stream: %v", r.Err())
	}
	if len(decoded) != 200 {
		t.Fatalf("decoded %d records, want 200", len(decoded))
	}

	re := encodeAll(t, decoded, false)
	if !bytes.Equal(enc.Bytes(), re) {
		t.Error("re-encoding an imported trace is not byte-identical")
	}

	// Converting the same fixture twice is deterministic.
	var enc2 bytes.Buffer
	if _, err := ConvertChampSim(&enc2, bytes.NewReader(b.buf.Bytes()), ChampSimOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc.Bytes(), enc2.Bytes()) {
		t.Error("conversion is not deterministic")
	}
}

func TestConvertChampSimEmptyInput(t *testing.T) {
	var enc bytes.Buffer
	if _, err := ConvertChampSim(&enc, bytes.NewReader(nil), ChampSimOptions{}); err == nil {
		t.Error("empty champsim input converted without error")
	}
}

// FuzzChampSimConvert feeds arbitrary bytes through the importer: it
// must never panic, and whenever it succeeds the output must be a
// decodable ENTRACE1 stream — the importer's core contract is that
// nothing invalid ever comes out of it.
func FuzzChampSimConvert(f *testing.F) {
	var b champsimBuilder
	b.plain(0x1000)
	b.branchRec(0x1004, CondBranch, true)
	b.plain(0x2000)
	f.Add(b.buf.Bytes(), false)
	f.Add([]byte{}, false)
	f.Add(bytes.Repeat([]byte{0xff}, champsimRecordSize), true)
	f.Add(bytes.Repeat([]byte{0x00}, champsimRecordSize*3), false)
	f.Add([]byte{0x1f, 0x8b, 0x00}, false)

	f.Fuzz(func(t *testing.T, data []byte, synth bool) {
		var enc bytes.Buffer
		count, err := ConvertChampSim(&enc, bytes.NewReader(data),
			ChampSimOptions{SynthesizeData: synth, Limits: Limits{MaxInstrs: 10_000}})
		if err != nil {
			return
		}
		r, err := NewReader(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("importer emitted an unreadable stream: %v", err)
		}
		var in Instruction
		var n uint64
		for r.Next(&in) {
			n++
		}
		if r.Err() != nil {
			t.Fatalf("importer emitted an invalid record: %v", r.Err())
		}
		if n != count {
			t.Fatalf("importer reported %d records, stream has %d", count, n)
		}
	})
}
