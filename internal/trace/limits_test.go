package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// header returns a trace header with the given compression and
// reserved bytes, for hand-crafting malformed streams.
func header(compression byte, reserved [3]byte) []byte {
	return append([]byte(magic), compression, reserved[0], reserved[1], reserved[2])
}

func TestReaderRejectsBadHeader(t *testing.T) {
	cases := []struct {
		name string
		hdr  []byte
		want error
	}{
		{"compression 2", header(2, [3]byte{}), ErrBadCompression},
		{"compression 255", header(255, [3]byte{}), ErrBadCompression},
		{"reserved[0]", header(0, [3]byte{1, 0, 0}), ErrBadReserved},
		{"reserved[2]", header(0, [3]byte{0, 0, 7}), ErrBadReserved},
	}
	for _, tc := range cases {
		if _, err := NewReader(bytes.NewReader(tc.hdr)); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// The two legal shapes still open.
	if _, err := NewReader(bytes.NewReader(header(0, [3]byte{}))); err != nil {
		t.Errorf("uncompressed header rejected: %v", err)
	}
}

// TestReaderRejectsInvalidRecords hand-crafts records violating each
// invariant Writer.Write enforces, and checks the Reader stops with the
// matching typed error — such a stream cannot have come from Writer and
// must never reach the simulator.
func TestReaderRejectsInvalidRecords(t *testing.T) {
	cases := []struct {
		name  string
		flags byte
		size  byte
		want  error
	}{
		{"zero size", flagPCDelta, 0, ErrZeroSize},
		{"branch type 7", flagPCDelta | 7 | flagTaken, 4, ErrBadBranch},
		{"untaken direct jump", flagPCDelta | byte(DirectJump), 4, ErrUntakenUnconditional},
		{"untaken return", flagPCDelta | byte(Return), 4, ErrUntakenUnconditional},
		{"stray data flag", flagPCDelta | flagHasData, 4, ErrStrayData},
		{"load without data", flagPCDelta | flagLoad, 4, ErrMissingData},
		{"store without data", flagPCDelta | flagStore, 4, ErrMissingData},
	}
	for _, tc := range cases {
		stream := append(header(0, [3]byte{}), tc.flags, tc.size, 0 /* pc delta */, 0, 0)
		r, err := NewReader(bytes.NewReader(stream))
		if err != nil {
			t.Fatalf("%s: NewReader: %v", tc.name, err)
		}
		var in Instruction
		if r.Next(&in) {
			t.Errorf("%s: invalid record decoded as %+v", tc.name, in)
			continue
		}
		if !errors.Is(r.Err(), tc.want) {
			t.Errorf("%s: Err = %v, want %v", tc.name, r.Err(), tc.want)
		}
	}
}

// TestReaderInvalidRecordMidStream checks the error surfaces with the
// offending record's index even when valid records precede it.
func TestReaderInvalidRecordMidStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, false)
	ins := genStream(3, 10)
	for i := range ins {
		if err := w.Write(&ins[i]); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	// Append a zero-size record after 10 valid ones.
	stream := append(buf.Bytes(), flagPCDelta, 0, 0)
	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	var in Instruction
	n := 0
	for r.Next(&in) {
		n++
	}
	if n != 10 {
		t.Errorf("decoded %d records before the bad one, want 10", n)
	}
	if !errors.Is(r.Err(), ErrZeroSize) {
		t.Errorf("Err = %v, want ErrZeroSize", r.Err())
	}
}

func encodeStream(t *testing.T, n int, compress bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, compress)
	if err != nil {
		t.Fatal(err)
	}
	ins := genStream(11, n)
	for i := range ins {
		if err := w.Write(&ins[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMaxInstrsExactlyAtCapPasses(t *testing.T) {
	enc := encodeStream(t, 100, false)
	r, err := NewReaderLimited(bytes.NewReader(enc), Limits{MaxInstrs: 100})
	if err != nil {
		t.Fatal(err)
	}
	var in Instruction
	n := 0
	for r.Next(&in) {
		n++
	}
	if r.Err() != nil {
		t.Errorf("stream of exactly MaxInstrs records failed: %v", r.Err())
	}
	if n != 100 {
		t.Errorf("decoded %d records, want 100", n)
	}
}

func TestMaxInstrsOneOverCapFails(t *testing.T) {
	enc := encodeStream(t, 101, false)
	r, err := NewReaderLimited(bytes.NewReader(enc), Limits{MaxInstrs: 100})
	if err != nil {
		t.Fatal(err)
	}
	var in Instruction
	for r.Next(&in) {
	}
	err = r.Err()
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("Err = %v, want ErrLimitExceeded", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.What != "instruction" || le.Limit != 100 {
		t.Errorf("LimitError = %+v, want instruction/100", le)
	}
	if r.Count() != 100 {
		t.Errorf("Count = %d after limit, want 100", r.Count())
	}
}

// TestMaxBytesStopsGzipBomb checks the byte cap measures decompressed
// payload: a small on-wire gzip stream expanding past the cap fails
// mid-decode instead of being materialized.
func TestMaxBytesStopsGzipBomb(t *testing.T) {
	// 200k sequential records compress extremely well (~2 bytes/record
	// raw, far less after gzip) but expand to ~400 KB of payload.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, true)
	pc := uint64(0x400000)
	for i := 0; i < 200_000; i++ {
		in := Instruction{PC: pc, Size: 4}
		if err := w.Write(&in); err != nil {
			t.Fatal(err)
		}
		pc += 4
	}
	w.Close()

	r, err := NewReaderLimited(bytes.NewReader(buf.Bytes()), Limits{MaxBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var in Instruction
	for r.Next(&in) {
	}
	err = r.Err()
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("gzip bomb decoded cleanly (read %d records), want ErrLimitExceeded", r.Count())
	}
	var le *LimitError
	if !errors.As(err, &le) || le.What != "payload byte" {
		t.Errorf("LimitError = %+v, want payload byte cap", le)
	}
	// The limit must have fired near the cap, not after materializing
	// the whole stream (64 KB of payload is ~32k sequential records).
	if r.Count() >= 100_000 {
		t.Errorf("decoded %d records before the byte cap fired", r.Count())
	}
}

func TestMaxBytesUnderCapPasses(t *testing.T) {
	enc := encodeStream(t, 500, true)
	r, err := NewReaderLimited(bytes.NewReader(enc), Limits{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var in Instruction
	n := 0
	for r.Next(&in) {
		n++
	}
	if r.Err() != nil || n != 500 {
		t.Errorf("under-cap stream: n=%d err=%v", n, r.Err())
	}
}

func TestWriterRejectsBadBranchType(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, false)
	if err := w.Write(&Instruction{PC: 1, Size: 4, Branch: BranchType(7), Taken: true}); err == nil {
		t.Error("invalid branch type accepted by Writer")
	}
}

func TestReaderTruncatedVarint(t *testing.T) {
	// A record announcing an explicit PC delta, with the varint cut off.
	stream := append(header(0, [3]byte{}), flagPCDelta, 4, 0x80)
	r, err := NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	var in Instruction
	if r.Next(&in) {
		t.Fatal("truncated varint decoded")
	}
	if r.Err() == nil {
		t.Error("truncated varint: Err is nil")
	}
}

// TestLimitErrorUnwrap pins the error contract callers rely on: As to
// *LimitError for the message, Is to ErrLimitExceeded for the class.
func TestLimitErrorUnwrap(t *testing.T) {
	var err error = &LimitError{What: "instruction", Limit: 7}
	if !errors.Is(err, ErrLimitExceeded) {
		t.Error("LimitError does not unwrap to ErrLimitExceeded")
	}
	if err.Error() == "" {
		t.Error("empty LimitError message")
	}
	var le *LimitError
	if !errors.As(io.EOF, &le) {
		_ = le // EOF must not match; nothing to assert beyond no panic
	}
}
