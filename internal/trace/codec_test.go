package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randInstr(rng *rand.Rand, pc uint64) Instruction {
	in := Instruction{
		PC:   pc,
		Size: uint8(1 + rng.Intn(15)),
	}
	switch rng.Intn(8) {
	case 0:
		in.Branch = CondBranch
		in.Taken = rng.Intn(2) == 0
	case 1:
		in.Branch = DirectJump
		in.Taken = true
	case 2:
		in.Branch = DirectCall
		in.Taken = true
	case 3:
		in.Branch = Return
		in.Taken = true
	case 4:
		in.Branch = IndirectJump
		in.Taken = true
	}
	if in.Branch.IsBranch() && in.Taken {
		in.Target = uint64(rng.Int63n(1 << 40))
	}
	switch rng.Intn(4) {
	case 0:
		in.IsLoad = true
		in.DataAddr = uint64(rng.Int63n(1 << 40))
	case 1:
		in.IsStore = true
		in.DataAddr = uint64(rng.Int63n(1 << 40))
	}
	return in
}

func genStream(seed int64, n int) []Instruction {
	rng := rand.New(rand.NewSource(seed))
	pc := uint64(0x400000)
	out := make([]Instruction, 0, n)
	for i := 0; i < n; i++ {
		in := randInstr(rng, pc)
		out = append(out, in)
		if rng.Intn(10) == 0 {
			pc = uint64(rng.Int63n(1 << 40)) // discontinuity not via branch
		} else {
			pc = in.NextPC()
		}
	}
	return out
}

func roundTrip(t *testing.T, instrs []Instruction, compress bool) []Instruction {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, compress)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := range instrs {
		if err := w.Write(&instrs[i]); err != nil {
			t.Fatalf("Write[%d]: %v", i, err)
		}
	}
	if w.Count() != uint64(len(instrs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(instrs))
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var got []Instruction
	var in Instruction
	for r.Next(&in) {
		got = append(got, in)
	}
	if r.Err() != nil {
		t.Fatalf("Reader error: %v", r.Err())
	}
	return got
}

func TestRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		instrs := genStream(42, 5000)
		got := roundTrip(t, instrs, compress)
		if len(got) != len(instrs) {
			t.Fatalf("compress=%v: got %d records, want %d", compress, len(got), len(instrs))
		}
		for i := range instrs {
			if got[i] != instrs[i] {
				t.Fatalf("compress=%v: record %d mismatch:\n got %+v\nwant %+v", compress, i, got[i], instrs[i])
			}
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		instrs := genStream(seed, int(n%512)+1)
		got := roundTrip(t, instrs, false)
		if len(got) != len(instrs) {
			return false
		}
		for i := range instrs {
			if got[i] != instrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSequentialEncodingIsCompact(t *testing.T) {
	// 1000 sequential non-branch instructions should cost ~2 bytes each.
	instrs := make([]Instruction, 1000)
	pc := uint64(0x1000)
	for i := range instrs {
		instrs[i] = Instruction{PC: pc, Size: 4}
		pc += 4
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, false)
	for i := range instrs {
		if err := w.Write(&instrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	if buf.Len() > 12+2*1000+10 {
		t.Errorf("sequential encoding too large: %d bytes for 1000 instrs", buf.Len())
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, false)
	if err := w.Write(&Instruction{PC: 1, Size: 0}); err == nil {
		t.Error("zero-size instruction accepted")
	}
	if err := w.Write(&Instruction{PC: 1, Size: 4, Branch: DirectJump, Taken: false}); err == nil {
		t.Error("not-taken unconditional branch accepted")
	}
}

func TestReaderBadMagic(t *testing.T) {
	_, err := NewReader(strings.NewReader("NOTATRACE123"))
	if err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestReaderTruncated(t *testing.T) {
	instrs := genStream(7, 100)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, false)
	for i := range instrs {
		w.Write(&instrs[i])
	}
	w.Close()
	// Chop the stream mid-record.
	b := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var in Instruction
	n := 0
	for r.Next(&in) {
		n++
	}
	if n >= 100 {
		t.Errorf("read %d records from truncated stream", n)
	}
	// Either a clean boundary (nil) or an explicit truncation error is
	// acceptable, but it must stop.
}

func TestBranchTypeHelpers(t *testing.T) {
	if NotBranch.IsBranch() {
		t.Error("NotBranch.IsBranch")
	}
	if !DirectCall.IsCall() || !IndirectCall.IsCall() || Return.IsCall() {
		t.Error("IsCall misclassification")
	}
	if !IndirectJump.IsIndirect() || DirectJump.IsIndirect() {
		t.Error("IsIndirect misclassification")
	}
	if CondBranch.IsUnconditional() || !DirectJump.IsUnconditional() || NotBranch.IsUnconditional() {
		t.Error("IsUnconditional misclassification")
	}
	for b := NotBranch; b <= Return; b++ {
		if b.String() == "" {
			t.Errorf("empty String for %d", b)
		}
	}
	if BranchType(99).String() != "BranchType(99)" {
		t.Error("unknown BranchType String")
	}
}

func TestNextPC(t *testing.T) {
	in := Instruction{PC: 100, Size: 4}
	if in.NextPC() != 104 {
		t.Errorf("fallthrough NextPC = %d", in.NextPC())
	}
	in = Instruction{PC: 100, Size: 4, Branch: CondBranch, Taken: true, Target: 200}
	if in.NextPC() != 200 {
		t.Errorf("taken NextPC = %d", in.NextPC())
	}
	in.Taken = false
	if in.NextPC() != 104 {
		t.Errorf("not-taken NextPC = %d", in.NextPC())
	}
}

func TestLimitSource(t *testing.T) {
	src := &SliceSource{Instrs: genStream(1, 50)}
	lim := &LimitSource{Src: src, N: 10}
	var in Instruction
	n := 0
	for lim.Next(&in) {
		n++
	}
	if n != 10 {
		t.Errorf("LimitSource yielded %d, want 10", n)
	}
}

func TestSliceSourceReset(t *testing.T) {
	src := &SliceSource{Instrs: genStream(1, 5)}
	var in Instruction
	for src.Next(&in) {
	}
	src.Reset()
	if !src.Next(&in) {
		t.Error("Reset did not rewind")
	}
}

func TestDescribe(t *testing.T) {
	in := Instruction{PC: 0x1000, Size: 4, Branch: DirectCall, Taken: true, Target: 0x2000, IsLoad: true, DataAddr: 0x3000}
	s := Describe(&in)
	for _, want := range []string{"pc=", "call", "load"} {
		if !strings.Contains(s, want) {
			t.Errorf("Describe = %q, missing %q", s, want)
		}
	}
	nt := Instruction{PC: 0x1000, Size: 4, Branch: CondBranch, Taken: false}
	if !strings.Contains(Describe(&nt), "not-taken") {
		t.Errorf("Describe = %q, missing not-taken", Describe(&nt))
	}
	st := Instruction{PC: 0x1000, Size: 4, IsStore: true, DataAddr: 0x5000}
	if !strings.Contains(Describe(&st), "store") {
		t.Errorf("Describe = %q, missing store", Describe(&st))
	}
}
