package trace

import (
	"bytes"
	"io"
	"testing"
)

func TestReaderShortHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("ENT"))); err == nil {
		t.Error("short header accepted")
	}
}

func TestReaderCorruptGzipPayload(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.Write([]byte{1, 0, 0, 0}) // compressed flag set
	buf.WriteString("not gzip data")
	if _, err := NewReader(&buf); err == nil {
		t.Error("corrupt gzip payload accepted")
	}
}

func TestReaderFirstRecordWithoutPC(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.Write([]byte{0, 0, 0, 0})
	// A record with no flagPCDelta as the very first record.
	buf.Write([]byte{0x00, 4})
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var in Instruction
	if r.Next(&in) {
		t.Error("record without initial PC decoded")
	}
	if r.Err() == nil {
		t.Error("expected decode error")
	}
}

func TestWriterCloseFlushes(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, true)
	in := Instruction{PC: 0x1000, Size: 4}
	for i := 0; i < 100; i++ {
		if err := w.Write(&in); err != nil {
			t.Fatal(err)
		}
		in.PC += 4
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	var out Instruction
	for r.Next(&out) {
		n++
	}
	if n != 100 || r.Err() != nil {
		t.Errorf("read %d records, err %v", n, r.Err())
	}
}

// failingWriter errors after n bytes.
type failingWriter struct{ left int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, io.ErrClosedPipe
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, io.ErrClosedPipe
	}
	return n, nil
}

func TestNewWriterPropagatesHeaderError(t *testing.T) {
	if _, err := NewWriter(&failingWriter{left: 3}, false); err == nil {
		t.Error("header write error swallowed")
	}
	if _, err := NewWriter(&failingWriter{left: 9}, false); err == nil {
		t.Error("reserved-bytes write error swallowed")
	}
}

func TestLimitSourceShortSource(t *testing.T) {
	src := &SliceSource{Instrs: genStream(2, 5)}
	lim := &LimitSource{Src: src, N: 100}
	var in Instruction
	n := 0
	for lim.Next(&in) {
		n++
	}
	if n != 5 {
		t.Errorf("LimitSource yielded %d from a 5-record source", n)
	}
}
