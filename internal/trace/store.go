package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// This file is the durable home of uploaded traces: a content-addressed
// store of validated ENTRACE1 files, living next to the checkpoint
// store and shared by the upload API and the job resolver. Content
// addressing gives uploads the same identity properties checkpointed
// cells have — the ID is the SHA-256 of the stored payload, so a
// re-upload is a dedupe hit, and a job spec naming "trace:<id>" pins
// the exact bytes it will simulate.
//
// Nothing enters the store unvalidated: Put streams the upload through
// the hardened decoder (with the caller's Limits) while hashing, so a
// malformed or over-budget trace is rejected before the store's
// namespace learns its name, and a stored trace is decodable by
// construction — it can never poison a later job.

// TraceInfo describes one stored trace.
type TraceInfo struct {
	// ID is the SHA-256 (hex) of the stored ENTRACE1 payload.
	ID string `json:"id"`
	// Instructions is the validated record count.
	Instructions uint64 `json:"instructions"`
	// Bytes is the stored payload size.
	Bytes int64 `json:"bytes"`
	// Format records what the upload arrived as ("entrace1" or
	// "champsim"); the stored payload is always ENTRACE1.
	Format string `json:"format"`
}

// Store is a content-addressed directory of validated traces. Safe
// for concurrent use.
type Store struct {
	dir string
	mu  sync.Mutex
}

// OpenStore opens (creating if needed) a trace store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) tracePath(id string) string { return filepath.Join(s.dir, id+".trace") }
func (s *Store) metaPath(id string) string  { return filepath.Join(s.dir, id+".json") }

// validID gates every ID used in a path: exactly a lowercase SHA-256
// hex string, so a hostile ID cannot traverse out of the store.
func validID(id string) bool {
	if len(id) != 64 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ErrUnknownTrace is returned by Open/Stat for IDs not in the store.
var ErrUnknownTrace = errors.New("trace: unknown trace id")

// Put ingests one trace from r, validating every record during the
// streaming decode (enforcing lim mid-stream) and storing the
// canonical ENTRACE1 payload under its content address. format selects
// the input decoder: "" or "entrace1" stores the (uncompressed,
// re-encoded) upload as-is semantically; "champsim" converts first.
// Re-uploading existing content is an idempotent dedupe hit, reported
// via the second return.
func (s *Store) Put(r io.Reader, format string, lim Limits) (TraceInfo, bool, error) {
	tmp, err := os.CreateTemp(s.dir, "ingest-*.tmp")
	if err != nil {
		return TraceInfo{}, false, fmt.Errorf("trace: staging upload: %w", err)
	}
	defer func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}()

	// The payload is re-encoded through Writer in both paths, so the
	// stored bytes are canonical (uncompressed, minimal deltas) and
	// the content address is independent of the upload's compression.
	h := sha256.New()
	out := io.MultiWriter(tmp, h)

	var count uint64
	switch format {
	case "champsim":
		count, err = ConvertChampSim(out, r, ChampSimOptions{Limits: lim})
		if err != nil {
			return TraceInfo{}, false, err
		}
	case "", "entrace1":
		count, err = reencode(out, r, lim)
		if err != nil {
			return TraceInfo{}, false, err
		}
	default:
		return TraceInfo{}, false, fmt.Errorf("trace: unknown upload format %q", format)
	}

	if err := tmp.Sync(); err != nil {
		return TraceInfo{}, false, fmt.Errorf("trace: staging upload: %w", err)
	}
	size, err := tmp.Seek(0, io.SeekEnd)
	if err != nil {
		return TraceInfo{}, false, fmt.Errorf("trace: staging upload: %w", err)
	}
	info := TraceInfo{
		ID:           hex.EncodeToString(h.Sum(nil)),
		Instructions: count,
		Bytes:        size,
		Format:       format,
	}
	if info.Format == "" {
		info.Format = "entrace1"
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, err := s.statLocked(info.ID); err == nil {
		return existing, true, nil // dedupe: identical content already stored
	}
	if err := tmp.Close(); err != nil {
		return TraceInfo{}, false, fmt.Errorf("trace: staging upload: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.tracePath(info.ID)); err != nil {
		return TraceInfo{}, false, fmt.Errorf("trace: storing upload: %w", err)
	}
	if err := s.writeMetaLocked(info); err != nil {
		os.Remove(s.tracePath(info.ID))
		return TraceInfo{}, false, err
	}
	return info, false, nil
}

// reencode validates an ENTRACE1 upload record by record (under lim)
// and writes the canonical uncompressed encoding to dst.
func reencode(dst io.Writer, src io.Reader, lim Limits) (uint64, error) {
	rd, err := NewReaderLimited(src, lim)
	if err != nil {
		return 0, err
	}
	w, err := NewWriter(dst, false)
	if err != nil {
		return 0, err
	}
	var in Instruction
	for rd.Next(&in) {
		if err := w.Write(&in); err != nil {
			return w.Count(), err
		}
	}
	if err := rd.Err(); err != nil {
		return w.Count(), err
	}
	if err := w.Close(); err != nil {
		return w.Count(), err
	}
	if w.Count() == 0 {
		return 0, errors.New("trace: upload contains no records")
	}
	return w.Count(), nil
}

// writeMetaLocked persists the sidecar metadata document atomically.
func (s *Store) writeMetaLocked(info TraceInfo) error {
	b, err := json.MarshalIndent(info, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: encoding metadata: %w", err)
	}
	tmp := s.metaPath(info.ID) + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("trace: writing metadata: %w", err)
	}
	if err := os.Rename(tmp, s.metaPath(info.ID)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: writing metadata: %w", err)
	}
	return nil
}

// Stat returns the metadata of a stored trace.
func (s *Store) Stat(id string) (TraceInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statLocked(id)
}

func (s *Store) statLocked(id string) (TraceInfo, error) {
	if !validID(id) {
		return TraceInfo{}, fmt.Errorf("trace: id %q: %w", id, ErrUnknownTrace)
	}
	b, err := os.ReadFile(s.metaPath(id))
	if err != nil {
		return TraceInfo{}, fmt.Errorf("trace: id %q: %w", id, ErrUnknownTrace)
	}
	var info TraceInfo
	if err := json.Unmarshal(b, &info); err != nil {
		return TraceInfo{}, fmt.Errorf("trace: id %q: corrupt metadata: %v", id, err)
	}
	return info, nil
}

// Open returns the stored ENTRACE1 payload for reading.
func (s *Store) Open(id string) (io.ReadCloser, error) {
	if !validID(id) {
		return nil, fmt.Errorf("trace: id %q: %w", id, ErrUnknownTrace)
	}
	f, err := os.Open(s.tracePath(id))
	if err != nil {
		return nil, fmt.Errorf("trace: id %q: %w", id, ErrUnknownTrace)
	}
	return f, nil
}

// List returns the metadata of every stored trace, ordered by ID.
func (s *Store) List() ([]TraceInfo, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("trace: listing store: %w", err)
	}
	var out []TraceInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if !validID(id) {
			continue
		}
		info, err := s.Stat(id)
		if err != nil {
			continue // half-written entry; skip rather than fail the listing
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
