package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// File format
//
//	header:  magic "ENTRACE1" (8 bytes), reserved uint32 (0)
//	records: each instruction is
//	         flags byte:
//	             bits 0-2  BranchType
//	             bit  3    Taken
//	             bit  4    IsLoad
//	             bit  5    IsStore
//	             bit  6    has explicit PC delta (else PC = prev.NextPC())
//	             bit  7    has DataAddr delta
//	         size byte (instruction length in bytes)
//	         [pc zigzag-varint delta from prev.NextPC()]   if bit 6
//	         [target zigzag-varint delta from PC]          if branch && taken
//	         [data zigzag-varint delta from prev data]     if bit 7
//
// Sequential instructions on the fall-through path therefore cost two
// bytes. The format is purely little-endian varints from encoding/binary.

const magic = "ENTRACE1"

const (
	flagTaken    = 1 << 3
	flagLoad     = 1 << 4
	flagStore    = 1 << 5
	flagPCDelta  = 1 << 6
	flagHasData  = 1 << 7
	branchMask   = 0x7
	maxVarintLen = binary.MaxVarintLen64
)

// ErrBadMagic is returned when a trace file does not start with the
// expected header.
var ErrBadMagic = errors.New("trace: bad magic (not an ENTRACE1 file)")

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer encodes instructions to an output stream.
type Writer struct {
	w        *bufio.Writer
	gz       *gzip.Writer
	buf      [2 + 3*maxVarintLen]byte
	prevNext uint64 // prev.NextPC()
	prevData uint64
	started  bool
	count    uint64
}

// NewWriter creates a Writer over w. If compress is true the payload is
// gzip-compressed (the header stays uncompressed so sniffing works).
func NewWriter(w io.Writer, compress bool) (*Writer, error) {
	if _, err := io.WriteString(w, magic); err != nil {
		return nil, err
	}
	var hdr [4]byte
	if compress {
		hdr[0] = 1
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	tw := &Writer{}
	if compress {
		tw.gz = gzip.NewWriter(w)
		tw.w = bufio.NewWriterSize(tw.gz, 1<<16)
	} else {
		tw.w = bufio.NewWriterSize(w, 1<<16)
	}
	return tw, nil
}

// Write appends one instruction record.
func (w *Writer) Write(in *Instruction) error {
	if in.Size == 0 {
		return fmt.Errorf("trace: instruction at %#x has zero size", in.PC)
	}
	if in.Branch.IsUnconditional() && !in.Taken {
		return fmt.Errorf("trace: unconditional branch at %#x not taken", in.PC)
	}
	flags := byte(in.Branch) & branchMask
	if in.Taken {
		flags |= flagTaken
	}
	if in.IsLoad {
		flags |= flagLoad
	}
	if in.IsStore {
		flags |= flagStore
	}
	explicitPC := !w.started || in.PC != w.prevNext
	if explicitPC {
		flags |= flagPCDelta
	}
	hasData := in.IsLoad || in.IsStore
	if hasData {
		flags |= flagHasData
	}
	b := w.buf[:0]
	b = append(b, flags, in.Size)
	if explicitPC {
		b = binary.AppendUvarint(b, zigzag(int64(in.PC)-int64(w.prevNext)))
	}
	if in.Branch.IsBranch() && in.Taken {
		b = binary.AppendUvarint(b, zigzag(int64(in.Target)-int64(in.PC)))
	}
	if hasData {
		b = binary.AppendUvarint(b, zigzag(int64(in.DataAddr)-int64(w.prevData)))
		w.prevData = in.DataAddr
	}
	if _, err := w.w.Write(b); err != nil {
		return err
	}
	w.prevNext = in.NextPC()
	w.started = true
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes buffered data. It does not close the underlying writer.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.gz != nil {
		return w.gz.Close()
	}
	return nil
}

// Reader decodes a trace stream produced by Writer. It implements
// Source.
type Reader struct {
	r        *bufio.Reader
	prevNext uint64
	prevData uint64
	started  bool
	err      error
}

// NewReader opens a trace stream, validating the header and handling
// the optional gzip payload.
func NewReader(r io.Reader) (*Reader, error) {
	hdr := make([]byte, len(magic)+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	var body io.Reader = r
	if hdr[len(magic)] == 1 {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return nil, fmt.Errorf("trace: opening gzip payload: %w", err)
		}
		body = gz
	}
	return &Reader{r: bufio.NewReaderSize(body, 1<<16)}, nil
}

// Next implements Source. After Next returns false, Err distinguishes a
// clean end of stream from a decode error.
func (r *Reader) Next(in *Instruction) bool {
	if r.err != nil {
		return false
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			r.err = err
		}
		return false
	}
	size, err := r.r.ReadByte()
	if err != nil {
		r.err = fmt.Errorf("trace: truncated record: %w", err)
		return false
	}
	*in = Instruction{
		Size:    size,
		Branch:  BranchType(flags & branchMask),
		Taken:   flags&flagTaken != 0,
		IsLoad:  flags&flagLoad != 0,
		IsStore: flags&flagStore != 0,
	}
	if flags&flagPCDelta != 0 {
		d, err := binary.ReadUvarint(r.r)
		if err != nil {
			r.err = fmt.Errorf("trace: truncated pc delta: %w", err)
			return false
		}
		in.PC = uint64(int64(r.prevNext) + unzigzag(d))
	} else {
		if !r.started {
			r.err = errors.New("trace: first record lacks explicit PC")
			return false
		}
		in.PC = r.prevNext
	}
	if in.Branch.IsBranch() && in.Taken {
		d, err := binary.ReadUvarint(r.r)
		if err != nil {
			r.err = fmt.Errorf("trace: truncated target delta: %w", err)
			return false
		}
		in.Target = uint64(int64(in.PC) + unzigzag(d))
	}
	if flags&flagHasData != 0 {
		d, err := binary.ReadUvarint(r.r)
		if err != nil {
			r.err = fmt.Errorf("trace: truncated data delta: %w", err)
			return false
		}
		in.DataAddr = uint64(int64(r.prevData) + unzigzag(d))
		r.prevData = in.DataAddr
	}
	r.prevNext = in.NextPC()
	r.started = true
	return true
}

// Err returns the first decode error encountered, or nil on clean EOF.
func (r *Reader) Err() error { return r.err }

// Describe returns a short human-readable dump of an instruction,
// used by cmd/tracegen's inspect mode.
func Describe(in *Instruction) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pc=%#012x size=%d", in.PC, in.Size)
	if in.Branch.IsBranch() {
		fmt.Fprintf(&sb, " %s", in.Branch)
		if in.Taken {
			fmt.Fprintf(&sb, " -> %#012x", in.Target)
		} else {
			sb.WriteString(" not-taken")
		}
	}
	if in.IsLoad {
		fmt.Fprintf(&sb, " load %#012x", in.DataAddr)
	}
	if in.IsStore {
		fmt.Fprintf(&sb, " store %#012x", in.DataAddr)
	}
	return sb.String()
}
