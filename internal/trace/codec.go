package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// File format
//
//	header:  magic "ENTRACE1" (8 bytes), reserved uint32 (0)
//	records: each instruction is
//	         flags byte:
//	             bits 0-2  BranchType
//	             bit  3    Taken
//	             bit  4    IsLoad
//	             bit  5    IsStore
//	             bit  6    has explicit PC delta (else PC = prev.NextPC())
//	             bit  7    has DataAddr delta
//	         size byte (instruction length in bytes)
//	         [pc zigzag-varint delta from prev.NextPC()]   if bit 6
//	         [target zigzag-varint delta from PC]          if branch && taken
//	         [data zigzag-varint delta from prev data]     if bit 7
//
// Sequential instructions on the fall-through path therefore cost two
// bytes. The format is purely little-endian varints from encoding/binary.

const magic = "ENTRACE1"

const (
	flagTaken    = 1 << 3
	flagLoad     = 1 << 4
	flagStore    = 1 << 5
	flagPCDelta  = 1 << 6
	flagHasData  = 1 << 7
	branchMask   = 0x7
	maxVarintLen = binary.MaxVarintLen64
)

// ErrBadMagic is returned when a trace file does not start with the
// expected header.
var ErrBadMagic = errors.New("trace: bad magic (not an ENTRACE1 file)")

// Header errors. The header has exactly two legal shapes (compression
// byte 0 or 1, reserved bytes all zero); anything else is a future
// format revision or corruption, and decoding it as today's format
// would produce garbage silently.
var (
	// ErrBadCompression marks a compression byte other than 0
	// (uncompressed) or 1 (gzip).
	ErrBadCompression = errors.New("trace: unknown compression byte")
	// ErrBadReserved marks nonzero reserved header bytes.
	ErrBadReserved = errors.New("trace: nonzero reserved header bytes")
)

// Record-invariant errors, surfaced via Reader.Err. These mirror the
// invariants Writer.Write enforces on encode: a stream that trips one
// was not produced by Writer and must not reach the simulator (a
// zero-size record alone would pin the fall-through path at one PC
// forever).
var (
	// ErrZeroSize marks a record with instruction size zero
	// (NextPC() == PC on the fall-through path).
	ErrZeroSize = errors.New("trace: record has zero instruction size")
	// ErrBadBranch marks a record whose branch-type bits exceed Return.
	ErrBadBranch = errors.New("trace: record has invalid branch type")
	// ErrUntakenUnconditional marks an unconditional branch encoded as
	// not taken.
	ErrUntakenUnconditional = errors.New("trace: unconditional branch not taken")
	// ErrStrayData marks a data-address flag on a record that is
	// neither a load nor a store.
	ErrStrayData = errors.New("trace: data address on a non-memory record")
	// ErrMissingData marks a load/store record without a data-address
	// field.
	ErrMissingData = errors.New("trace: memory op without data address")
)

// ErrLimitExceeded is the sentinel every *LimitError matches
// (errors.Is); callers that only care whether a stream blew its budget
// test against it.
var ErrLimitExceeded = errors.New("trace: decode limit exceeded")

// LimitError reports a stream cut off mid-decode by Limits: which cap
// was hit and its value. It wraps ErrLimitExceeded.
type LimitError struct {
	// What names the exhausted resource: "instruction" or "payload byte".
	What string
	// Limit is the configured cap.
	Limit uint64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("trace: stream exceeds %s limit of %d", e.What, e.Limit)
}

func (e *LimitError) Unwrap() error { return ErrLimitExceeded }

// Limits caps what a streaming decode may consume, enforced record by
// record so an over-budget stream (a gzip bomb, a billion-record file)
// is rejected at the cap instead of materialized first. Zero fields
// mean "no limit".
type Limits struct {
	// MaxInstrs caps decoded records. A stream with exactly MaxInstrs
	// records decodes cleanly; one more record fails with a LimitError.
	MaxInstrs uint64
	// MaxBytes caps consumed payload bytes, measured after gzip
	// expansion (the allocation-relevant size, immune to compression
	// ratio games).
	MaxBytes uint64
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer encodes instructions to an output stream.
type Writer struct {
	w        *bufio.Writer
	gz       *gzip.Writer
	buf      [2 + 3*maxVarintLen]byte
	prevNext uint64 // prev.NextPC()
	prevData uint64
	started  bool
	count    uint64
}

// NewWriter creates a Writer over w. If compress is true the payload is
// gzip-compressed (the header stays uncompressed so sniffing works).
func NewWriter(w io.Writer, compress bool) (*Writer, error) {
	if _, err := io.WriteString(w, magic); err != nil {
		return nil, err
	}
	var hdr [4]byte
	if compress {
		hdr[0] = 1
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	tw := &Writer{}
	if compress {
		tw.gz = gzip.NewWriter(w)
		tw.w = bufio.NewWriterSize(tw.gz, 1<<16)
	} else {
		tw.w = bufio.NewWriterSize(w, 1<<16)
	}
	return tw, nil
}

// Write appends one instruction record.
func (w *Writer) Write(in *Instruction) error {
	if in.Size == 0 {
		return fmt.Errorf("trace: instruction at %#x has zero size", in.PC)
	}
	if in.Branch > Return {
		return fmt.Errorf("trace: instruction at %#x has invalid branch type %d", in.PC, in.Branch)
	}
	if in.Branch.IsUnconditional() && !in.Taken {
		return fmt.Errorf("trace: unconditional branch at %#x not taken", in.PC)
	}
	flags := byte(in.Branch) & branchMask
	if in.Taken {
		flags |= flagTaken
	}
	if in.IsLoad {
		flags |= flagLoad
	}
	if in.IsStore {
		flags |= flagStore
	}
	explicitPC := !w.started || in.PC != w.prevNext
	if explicitPC {
		flags |= flagPCDelta
	}
	hasData := in.IsLoad || in.IsStore
	if hasData {
		flags |= flagHasData
	}
	b := w.buf[:0]
	b = append(b, flags, in.Size)
	if explicitPC {
		b = binary.AppendUvarint(b, zigzag(int64(in.PC)-int64(w.prevNext)))
	}
	if in.Branch.IsBranch() && in.Taken {
		b = binary.AppendUvarint(b, zigzag(int64(in.Target)-int64(in.PC)))
	}
	if hasData {
		b = binary.AppendUvarint(b, zigzag(int64(in.DataAddr)-int64(w.prevData)))
		w.prevData = in.DataAddr
	}
	if _, err := w.w.Write(b); err != nil {
		return err
	}
	w.prevNext = in.NextPC()
	w.started = true
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes buffered data. It does not close the underlying writer.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.gz != nil {
		return w.gz.Close()
	}
	return nil
}

// Reader decodes a trace stream produced by Writer. It implements
// Source. Every record is validated against the same invariants
// Writer.Write enforces; a violating record stops the stream with a
// typed error from Reader.Err.
type Reader struct {
	r        *bufio.Reader
	raw      *countingReader
	lim      Limits
	count    uint64
	prevNext uint64
	prevData uint64
	started  bool
	err      error
}

// countingReader counts payload bytes handed to the decode buffer
// (after gzip expansion), so Limits.MaxBytes measures what the decoder
// actually consumes regardless of on-wire compression.
type countingReader struct {
	r io.Reader
	n uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += uint64(n)
	return n, err
}

// NewReader opens a trace stream, validating the header and handling
// the optional gzip payload.
func NewReader(r io.Reader) (*Reader, error) {
	return NewReaderLimited(r, Limits{})
}

// NewReaderLimited is NewReader with streaming decode limits: the
// caps are checked as records are decoded, so an over-budget stream
// fails (via Reader.Err, with a *LimitError) after consuming at most
// one buffer beyond the cap — it is never materialized.
func NewReaderLimited(r io.Reader, lim Limits) (*Reader, error) {
	hdr := make([]byte, len(magic)+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	compression := hdr[len(magic)]
	if compression > 1 {
		return nil, fmt.Errorf("trace: header compression byte %d: %w", compression, ErrBadCompression)
	}
	if rest := hdr[len(magic)+1:]; rest[0] != 0 || rest[1] != 0 || rest[2] != 0 {
		return nil, fmt.Errorf("trace: header reserved bytes %02x%02x%02x: %w",
			rest[0], rest[1], rest[2], ErrBadReserved)
	}
	var body io.Reader = r
	if compression == 1 {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return nil, fmt.Errorf("trace: opening gzip payload: %w", err)
		}
		body = gz
	}
	raw := &countingReader{r: body}
	return &Reader{r: bufio.NewReaderSize(raw, 1<<16), raw: raw, lim: lim}, nil
}

// Next implements Source. After Next returns false, Err distinguishes a
// clean end of stream from a decode error.
func (r *Reader) Next(in *Instruction) bool {
	if r.err != nil {
		return false
	}
	if r.lim.MaxInstrs > 0 && r.count >= r.lim.MaxInstrs {
		// At the cap: a clean EOF here is a stream of exactly
		// MaxInstrs records, which passes; any further byte fails.
		if _, err := r.r.Peek(1); err == nil {
			r.err = &LimitError{What: "instruction", Limit: r.lim.MaxInstrs}
		} else if err != io.EOF {
			r.err = err
		}
		return false
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			r.err = err
		}
		return false
	}
	size, err := r.r.ReadByte()
	if err != nil {
		r.err = fmt.Errorf("trace: truncated record: %w", err)
		return false
	}
	*in = Instruction{
		Size:    size,
		Branch:  BranchType(flags & branchMask),
		Taken:   flags&flagTaken != 0,
		IsLoad:  flags&flagLoad != 0,
		IsStore: flags&flagStore != 0,
	}
	// Enforce the Writer's invariants before consuming any deltas: a
	// record that violates them cannot have come from Writer, and
	// letting it through would feed the CPU model states it cannot
	// represent (a zero-size instruction never advances the PC).
	switch {
	case in.Size == 0:
		r.err = fmt.Errorf("trace: record %d: %w", r.count, ErrZeroSize)
	case in.Branch > Return:
		r.err = fmt.Errorf("trace: record %d: branch type %d: %w", r.count, in.Branch, ErrBadBranch)
	case in.Branch.IsUnconditional() && !in.Taken:
		r.err = fmt.Errorf("trace: record %d: %s: %w", r.count, in.Branch, ErrUntakenUnconditional)
	case flags&flagHasData != 0 && !in.IsLoad && !in.IsStore:
		r.err = fmt.Errorf("trace: record %d: %w", r.count, ErrStrayData)
	case flags&flagHasData == 0 && (in.IsLoad || in.IsStore):
		r.err = fmt.Errorf("trace: record %d: %w", r.count, ErrMissingData)
	}
	if r.err != nil {
		return false
	}
	if flags&flagPCDelta != 0 {
		d, err := binary.ReadUvarint(r.r)
		if err != nil {
			r.err = fmt.Errorf("trace: truncated pc delta: %w", err)
			return false
		}
		in.PC = uint64(int64(r.prevNext) + unzigzag(d))
	} else {
		if !r.started {
			r.err = errors.New("trace: first record lacks explicit PC")
			return false
		}
		in.PC = r.prevNext
	}
	if in.Branch.IsBranch() && in.Taken {
		d, err := binary.ReadUvarint(r.r)
		if err != nil {
			r.err = fmt.Errorf("trace: truncated target delta: %w", err)
			return false
		}
		in.Target = uint64(int64(in.PC) + unzigzag(d))
	}
	if flags&flagHasData != 0 {
		d, err := binary.ReadUvarint(r.r)
		if err != nil {
			r.err = fmt.Errorf("trace: truncated data delta: %w", err)
			return false
		}
		in.DataAddr = uint64(int64(r.prevData) + unzigzag(d))
		r.prevData = in.DataAddr
	}
	r.prevNext = in.NextPC()
	r.started = true
	r.count++
	if r.lim.MaxBytes > 0 {
		// Bytes actually consumed by decoding, not read ahead into the
		// buffer — the check must not trip on buffering alone.
		if used := r.raw.n - uint64(r.r.Buffered()); used > r.lim.MaxBytes {
			r.err = &LimitError{What: "payload byte", Limit: r.lim.MaxBytes}
			return false
		}
	}
	return true
}

// Count returns the number of records decoded so far.
func (r *Reader) Count() uint64 { return r.count }

// Err returns the first decode error encountered, or nil on clean EOF.
func (r *Reader) Err() error { return r.err }

// Describe returns a short human-readable dump of an instruction,
// used by cmd/tracegen's inspect mode.
func Describe(in *Instruction) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pc=%#012x size=%d", in.PC, in.Size)
	if in.Branch.IsBranch() {
		fmt.Fprintf(&sb, " %s", in.Branch)
		if in.Taken {
			fmt.Fprintf(&sb, " -> %#012x", in.Target)
		} else {
			sb.WriteString(" not-taken")
		}
	}
	if in.IsLoad {
		fmt.Fprintf(&sb, " load %#012x", in.DataAddr)
	}
	if in.IsStore {
		fmt.Fprintf(&sb, " store %#012x", in.DataAddr)
	}
	return sb.String()
}
