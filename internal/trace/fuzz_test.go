package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// instructionsFromBytes deterministically derives a valid instruction
// stream from arbitrary fuzz input: every 8-byte chunk becomes one
// instruction, coerced into the codec's documented invariants (nonzero
// size, unconditional branches taken).
func instructionsFromBytes(data []byte) []Instruction {
	var out []Instruction
	pc := uint64(0x401000)
	for len(data) >= 8 {
		chunk := binary.LittleEndian.Uint64(data[:8])
		data = data[8:]
		in := Instruction{
			PC:     pc + (chunk>>8)%4096,
			Size:   uint8(chunk%15) + 1,
			Branch: BranchType(chunk >> 4 & 7),
		}
		if in.Branch > Return {
			in.Branch = NotBranch
		}
		in.Taken = chunk&8 != 0 || in.Branch.IsUnconditional()
		if in.Branch.IsBranch() && in.Taken {
			in.Target = in.PC + (chunk >> 20 % (1 << 20))
		}
		in.IsLoad = chunk&1 != 0
		in.IsStore = chunk&2 != 0
		if in.IsLoad || in.IsStore {
			in.DataAddr = 0x7f0000000000 + (chunk >> 32)
		}
		pc = in.NextPC()
		out = append(out, in)
	}
	return out
}

// canonical strips fields the codec documents as meaningless for the
// record (Target of untaken/non-branches, DataAddr of non-memory ops),
// which it therefore does not preserve.
func canonical(in Instruction) Instruction {
	if !(in.Branch.IsBranch() && in.Taken) {
		in.Target = 0
	}
	if !in.IsLoad && !in.IsStore {
		in.DataAddr = 0
	}
	return in
}

func encodeAll(t *testing.T, ins []Instruction, compress bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, compress)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ins {
		if err := w.Write(&ins[i]); err != nil {
			t.Fatalf("encode record %d (%+v): %v", i, ins[i], err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzCodecRoundTrip checks, for arbitrary inputs, that
//
//  1. any valid instruction stream survives encode → decode with every
//     preserved field intact,
//  2. re-encoding the decoded stream is byte-identical (the encoding is
//     canonical), and
//  3. the decoder never panics on the input bytes themselves, with or
//     without a valid header in front.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, true)
	f.Add(bytes.Repeat([]byte{0xff}, 64), false)
	f.Add([]byte("ENTRACE1 not really a trace"), false)
	f.Add(append([]byte("ENTRACE1"), 0, 1, 2, 3, 4, 5, 6, 7), true)

	f.Fuzz(func(t *testing.T, data []byte, compress bool) {
		ins := instructionsFromBytes(data)
		if len(ins) > 0 {
			enc := encodeAll(t, ins, compress)

			r, err := NewReader(bytes.NewReader(enc))
			if err != nil {
				t.Fatalf("decoding own encoding: %v", err)
			}
			var got []Instruction
			var in Instruction
			for r.Next(&in) {
				got = append(got, in)
			}
			if r.Err() != nil {
				t.Fatalf("decoding own encoding: %v", r.Err())
			}
			if len(got) != len(ins) {
				t.Fatalf("decoded %d records, wrote %d", len(got), len(ins))
			}
			for i := range ins {
				if canonical(got[i]) != canonical(ins[i]) {
					t.Fatalf("record %d: decoded %+v, wrote %+v", i, got[i], ins[i])
				}
			}

			re := encodeAll(t, got, compress)
			if !bytes.Equal(enc, re) {
				t.Fatalf("re-encoding not byte-identical: %d vs %d bytes", len(enc), len(re))
			}
		}

		// The decoder must reject or truncate, never panic, on
		// arbitrary bytes...
		if r, err := NewReader(bytes.NewReader(data)); err == nil {
			var in Instruction
			for i := 0; r.Next(&in) && i < 100_000; i++ {
			}
			_ = r.Err()
		}
		// ...including bytes hiding behind a valid-looking header.
		framed := append([]byte("ENTRACE1\x00\x00\x00\x00"), data...)
		if r, err := NewReader(bytes.NewReader(framed)); err == nil {
			var in Instruction
			for i := 0; r.Next(&in) && i < 100_000; i++ {
			}
			_ = r.Err()
		}
	})
}
