package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file imports ChampSim traces — the format the paper's own
// methodology evaluates on (§IV-A) — into the ENTRACE1 stream the
// harness consumes. A ChampSim trace is a flat sequence of fixed
// 64-byte records with no header and no branch classification: each
// record carries the instruction pointer, a branch/taken pair, the
// architectural registers read and written, and up to six memory
// operand addresses. Everything ENTRACE1 needs beyond that is
// reconstructed here:
//
//   - the branch *type* (conditional, call, return, ...) from
//     ChampSim's register heuristics: which of {stack pointer, flags,
//     instruction pointer, other} the instruction reads and writes,
//   - the branch *target* and the instruction *size* from one record
//     of lookahead (ChampSim derives both the same way at load time),
//   - optionally, synthetic data addresses for traces whose memory
//     operands were stripped, so the load/store side of the pipeline
//     still sees realistic pressure.
//
// The conversion is streaming: one record in flight plus one record of
// lookahead, so arbitrarily large inputs convert in constant memory
// and decode Limits cut off hostile inputs mid-stream.

// ChampSim's fixed record geometry (input_instr in ChampSim's
// trace-format headers: x86 traces, 2 destination + 4 source operands).
const (
	champsimRecordSize = 64
	champsimNumDest    = 2
	champsimNumSrc     = 4
)

// ChampSim's special register identifiers, used by its branch-type
// heuristics.
const (
	champsimRegSP    = 6  // REG_STACK_POINTER
	champsimRegFlags = 25 // REG_FLAGS
	champsimRegIP    = 26 // REG_INSTRUCTION_POINTER
)

// ErrChampSimTruncated marks a ChampSim input whose byte length is not
// a whole number of 64-byte records.
var ErrChampSimTruncated = errors.New("trace: truncated champsim record")

// champsimRecord is one decoded 64-byte ChampSim record.
type champsimRecord struct {
	ip      uint64
	branch  bool
	taken   bool
	destReg [champsimNumDest]uint8
	srcReg  [champsimNumSrc]uint8
	destMem [champsimNumDest]uint64
	srcMem  [champsimNumSrc]uint64
}

func parseChampsimRecord(b []byte, rec *champsimRecord) {
	rec.ip = binary.LittleEndian.Uint64(b[0:8])
	rec.branch = b[8] != 0
	rec.taken = b[9] != 0
	rec.destReg[0], rec.destReg[1] = b[10], b[11]
	copy(rec.srcReg[:], b[12:16])
	for i := 0; i < champsimNumDest; i++ {
		rec.destMem[i] = binary.LittleEndian.Uint64(b[16+8*i : 24+8*i])
	}
	for i := 0; i < champsimNumSrc; i++ {
		rec.srcMem[i] = binary.LittleEndian.Uint64(b[32+8*i : 40+8*i])
	}
}

// classify maps a ChampSim branch record to a BranchType using the
// register heuristics ChampSim itself applies at trace load: the
// combination of {SP, IP, flags, other} reads and {SP, IP} writes
// distinguishes calls, returns, jumps and conditional branches.
func (rec *champsimRecord) classify() BranchType {
	if !rec.branch {
		return NotBranch
	}
	var readsSP, readsIP, readsFlags, readsOther bool
	for _, r := range rec.srcReg {
		switch r {
		case 0:
		case champsimRegSP:
			readsSP = true
		case champsimRegIP:
			readsIP = true
		case champsimRegFlags:
			readsFlags = true
		default:
			readsOther = true
		}
	}
	var writesSP, writesIP bool
	for _, r := range rec.destReg {
		switch r {
		case champsimRegSP:
			writesSP = true
		case champsimRegIP:
			writesIP = true
		}
	}
	switch {
	case readsSP && readsIP && writesSP && writesIP && !readsOther:
		return DirectCall
	case readsSP && readsIP && writesSP && writesIP && readsOther:
		return IndirectCall
	case readsSP && !readsIP && writesSP && writesIP:
		return Return
	case writesIP && !readsSP && !readsFlags && !readsOther:
		return DirectJump
	case writesIP && !readsSP && !readsFlags && readsOther:
		return IndirectJump
	case writesIP && readsFlags:
		return CondBranch
	default:
		// ChampSim's BRANCH_OTHER bucket: a branch the heuristics
		// cannot place. Taken records behave like indirect jumps (the
		// front-end cannot compute the target); untaken ones can only
		// be represented as conditional.
		if rec.taken {
			return IndirectJump
		}
		return CondBranch
	}
}

// ChampSimOptions configures a ChampSim import.
type ChampSimOptions struct {
	// SynthesizeData, when set, gives memory-stripped records (traces
	// whose tracer dropped operand addresses) deterministic synthetic
	// load addresses over a small heap window, so the backend sees
	// realistic (if invented) data pressure. Records that carry real
	// addresses always keep them.
	SynthesizeData bool
	// Limits bounds the import: MaxInstrs caps converted records,
	// MaxBytes caps *input* bytes consumed (after gzip expansion).
	Limits Limits
}

// ChampSimReader streams Instructions decoded from a ChampSim trace.
// It implements Source; Err must be checked after Next returns false.
type ChampSimReader struct {
	r        *bufio.Reader
	raw      *countingReader
	opt      ChampSimOptions
	buf      [champsimRecordSize]byte
	cur      champsimRecord
	next     champsimRecord
	haveCur  bool
	havePeek bool
	count    uint64
	synth    uint64 // synthetic data-address stream position
	err      error
}

// NewChampSimReader opens a ChampSim trace stream, auto-detecting gzip
// compression (ChampSim traces ship as .gz or .xz; xz is not in the
// stdlib and is rejected with a clear error).
func NewChampSimReader(r io.Reader, opt ChampSimOptions) (*ChampSimReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(6)
	if err != nil && err != io.EOF && len(head) < 2 {
		return nil, fmt.Errorf("trace: reading champsim input: %w", err)
	}
	var body io.Reader = br
	if len(head) >= 2 && head[0] == 0x1f && head[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: opening gzip champsim input: %w", err)
		}
		body = gz
	} else if len(head) >= 5 && head[0] == 0xfd && string(head[1:5]) == "7zXZ" {
		return nil, errors.New("trace: xz-compressed champsim traces are not supported; decompress first")
	}
	raw := &countingReader{r: body}
	return &ChampSimReader{r: bufio.NewReaderSize(raw, 1<<16), raw: raw, opt: opt}, nil
}

// Count returns the number of instructions emitted so far.
func (c *ChampSimReader) Count() uint64 { return c.count }

// Err returns the first decode error, or nil on clean end of input.
func (c *ChampSimReader) Err() error { return c.err }

// readRecord fills rec with the next 64-byte record, reporting false
// on clean EOF or error.
func (c *ChampSimReader) readRecord(rec *champsimRecord) bool {
	n, err := io.ReadFull(c.r, c.buf[:])
	if err == io.EOF {
		return false
	}
	if err != nil {
		c.err = fmt.Errorf("trace: champsim record %d (%d of 64 bytes): %w",
			c.count, n, ErrChampSimTruncated)
		return false
	}
	parseChampsimRecord(c.buf[:], rec)
	return true
}

// Next implements Source, converting one ChampSim record per call.
func (c *ChampSimReader) Next(in *Instruction) bool {
	if c.err != nil {
		return false
	}
	if c.opt.Limits.MaxInstrs > 0 && c.count >= c.opt.Limits.MaxInstrs {
		// haveCur means a record beyond the cap is already in hand
		// (the lookahead consumed it); a fresh byte in the stream means
		// the same. Either way the input exceeds the cap.
		if _, err := c.r.Peek(1); c.haveCur || err == nil {
			c.err = &LimitError{What: "instruction", Limit: c.opt.Limits.MaxInstrs}
		}
		return false
	}
	if !c.haveCur {
		if !c.readRecord(&c.cur) {
			return false
		}
		c.haveCur = true
	}
	c.havePeek = c.readRecord(&c.next)
	if c.err != nil {
		return false
	}
	if c.opt.Limits.MaxBytes > 0 {
		if used := c.raw.n - uint64(c.r.Buffered()); used > c.opt.Limits.MaxBytes {
			c.err = &LimitError{What: "payload byte", Limit: c.opt.Limits.MaxBytes}
			return false
		}
	}
	c.convert(in)
	c.cur, c.haveCur = c.next, c.havePeek
	c.count++
	return true
}

// convert builds the Instruction for c.cur, using c.next (when
// available) to infer the instruction size and the taken-branch
// target, exactly as ChampSim reconstructs them at load time.
func (c *ChampSimReader) convert(in *Instruction) {
	rec := &c.cur
	*in = Instruction{PC: rec.ip, Size: 4}
	if c.havePeek {
		// The fall-through distance to the next fetched instruction is
		// the size for sequential code; implausible gaps (taken
		// branches, trace filtering) keep the default.
		if d := c.next.ip - rec.ip; d >= 1 && d <= 15 && !(rec.branch && rec.taken) {
			in.Size = uint8(d)
		}
	}
	if rec.branch {
		in.Branch = rec.classify()
		// The taken bit comes from the trace; unconditional types are
		// taken by definition even when the tracer left the bit unset
		// (ENTRACE1 rejects untaken unconditionals).
		in.Taken = rec.taken || in.Branch.IsUnconditional()
		if in.Branch == CondBranch && !rec.taken {
			in.Taken = false
		}
		if in.Taken {
			if c.havePeek {
				in.Target = c.next.ip
			} else {
				// Last record of the trace: the target was never
				// captured. Fall through; any plausible address works
				// since nothing fetches after it.
				in.Target = rec.ip + uint64(in.Size)
			}
		}
	}
	for _, a := range rec.srcMem {
		if a != 0 {
			in.IsLoad, in.DataAddr = true, a
			break
		}
	}
	for _, a := range rec.destMem {
		if a != 0 {
			in.IsStore = true
			if !in.IsLoad {
				in.DataAddr = a
			}
			break
		}
	}
	if !in.IsLoad && !in.IsStore && c.opt.SynthesizeData && !rec.branch {
		// Memory-stripped trace: give every 4th non-branch instruction
		// a deterministic sequential load so the data side of the
		// pipeline is exercised at a realistic rate.
		if c.count%4 == 3 {
			c.synth = (c.synth + 64) % (1 << 19)
			in.IsLoad = true
			in.DataAddr = 0x0000_6000_0000 + c.synth
		}
	}
}

// ConvertChampSim streams a ChampSim trace from src into an ENTRACE1
// stream on dst (uncompressed payload; wrap dst or recompress offline
// if needed), returning the number of instructions converted. Limits
// in opt cut the conversion off mid-stream with a *LimitError.
func ConvertChampSim(dst io.Writer, src io.Reader, opt ChampSimOptions) (uint64, error) {
	cr, err := NewChampSimReader(src, opt)
	if err != nil {
		return 0, err
	}
	w, err := NewWriter(dst, false)
	if err != nil {
		return 0, err
	}
	var in Instruction
	for cr.Next(&in) {
		if err := w.Write(&in); err != nil {
			return w.Count(), err
		}
	}
	if err := cr.Err(); err != nil {
		return w.Count(), err
	}
	if err := w.Close(); err != nil {
		return w.Count(), err
	}
	if w.Count() == 0 {
		return 0, errors.New("trace: champsim input contains no records")
	}
	return w.Count(), nil
}
