package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := OpenStore(filepath.Join(t.TempDir(), "traces"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStorePutStatOpen(t *testing.T) {
	s := openTestStore(t)
	enc := encodeStream(t, 100, false)

	info, deduped, err := s.Put(bytes.NewReader(enc), "entrace1", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if deduped {
		t.Error("first Put reported dedupe")
	}
	if info.Instructions != 100 {
		t.Errorf("Instructions = %d, want 100", info.Instructions)
	}
	if info.Format != "entrace1" {
		t.Errorf("Format = %q", info.Format)
	}

	// The ID is the SHA-256 of the stored payload — verifiable from the
	// outside, which is the whole point of content addressing.
	rc, err := s.Open(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	stored, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum := sha256.Sum256(stored); hex.EncodeToString(sum[:]) != info.ID {
		t.Error("stored payload does not hash to its ID")
	}
	if int64(len(stored)) != info.Bytes {
		t.Errorf("Bytes = %d, stored %d", info.Bytes, len(stored))
	}

	got, err := s.Stat(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != info {
		t.Errorf("Stat = %+v, want %+v", got, info)
	}
}

func TestStorePutDedupes(t *testing.T) {
	s := openTestStore(t)
	enc := encodeStream(t, 50, false)
	first, _, err := s.Put(bytes.NewReader(enc), "", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	second, deduped, err := s.Put(bytes.NewReader(enc), "", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !deduped {
		t.Error("identical re-upload not reported as dedupe")
	}
	if second.ID != first.ID {
		t.Error("identical content got different IDs")
	}
	infos, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Errorf("store holds %d traces after dedupe, want 1", len(infos))
	}
}

// TestStoreCanonicalizesCompression checks the content address is
// independent of upload compression: the same instructions uploaded
// raw and gzipped land on one ID.
func TestStoreCanonicalizesCompression(t *testing.T) {
	s := openTestStore(t)
	raw := encodeStream(t, 64, false)
	gz := encodeStream(t, 64, true)
	a, _, err := s.Put(bytes.NewReader(raw), "", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	b, deduped, err := s.Put(bytes.NewReader(gz), "", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID || !deduped {
		t.Errorf("compression changed the content address: %s vs %s (deduped=%v)", a.ID, b.ID, deduped)
	}
}

func TestStorePutChampSim(t *testing.T) {
	s := openTestStore(t)
	var b champsimBuilder
	for i := 0; i < 20; i++ {
		b.plain(0x1000 + uint64(i)*4)
	}
	info, _, err := s.Put(bytes.NewReader(b.buf.Bytes()), "champsim", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Format != "champsim" || info.Instructions != 20 {
		t.Errorf("champsim upload: %+v", info)
	}
	// The stored payload is ENTRACE1 regardless of upload format.
	rc, err := s.Open(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	r, err := NewReader(rc)
	if err != nil {
		t.Fatalf("stored champsim import is not ENTRACE1: %v", err)
	}
	var in Instruction
	var n uint64
	for r.Next(&in) {
		n++
	}
	if r.Err() != nil || n != 20 {
		t.Errorf("stored stream: n=%d err=%v", n, r.Err())
	}
}

// TestStoreRejectsMalformedWithoutResidue checks a failed ingest leaves
// the store directory clean: no trace, no metadata, no leaked temp file
// — a rejected upload never poisons the namespace.
func TestStoreRejectsMalformedWithoutResidue(t *testing.T) {
	s := openTestStore(t)
	bad := append(header(0, [3]byte{}), flagPCDelta, 0 /* zero size */, 0)
	if _, _, err := s.Put(bytes.NewReader(bad), "", Limits{}); !errors.Is(err, ErrZeroSize) {
		t.Fatalf("err = %v, want ErrZeroSize", err)
	}
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("residue after rejected upload: %s", e.Name())
	}
}

func TestStoreRejectsOverLimit(t *testing.T) {
	s := openTestStore(t)
	enc := encodeStream(t, 101, false)
	_, _, err := s.Put(bytes.NewReader(enc), "", Limits{MaxInstrs: 100})
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("err = %v, want ErrLimitExceeded", err)
	}
	if infos, _ := s.List(); len(infos) != 0 {
		t.Error("over-limit upload entered the store")
	}
}

func TestStoreRejectsEmptyUpload(t *testing.T) {
	s := openTestStore(t)
	empty := header(0, [3]byte{})
	if _, _, err := s.Put(bytes.NewReader(empty), "", Limits{}); err == nil {
		t.Error("zero-record upload accepted")
	}
}

// TestStoreHostileIDs checks path-traversal shaped IDs are rejected at
// the validation gate, never reaching the filesystem.
func TestStoreHostileIDs(t *testing.T) {
	s := openTestStore(t)
	for _, id := range []string{
		"../../../etc/passwd",
		"..", "", "abc",
		strings.Repeat("A", 64), // uppercase hex is not canonical
		strings.Repeat("a", 63) + "/",
	} {
		if _, err := s.Stat(id); !errors.Is(err, ErrUnknownTrace) {
			t.Errorf("Stat(%q): err = %v, want ErrUnknownTrace", id, err)
		}
		if _, err := s.Open(id); !errors.Is(err, ErrUnknownTrace) {
			t.Errorf("Open(%q): err = %v, want ErrUnknownTrace", id, err)
		}
	}
}

func TestStoreListSorted(t *testing.T) {
	s := openTestStore(t)
	for seed := int64(1); seed <= 3; seed++ {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, false)
		ins := genStream(seed, 10)
		for i := range ins {
			if err := w.Write(&ins[i]); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		if _, _, err := s.Put(bytes.NewReader(buf.Bytes()), "", Limits{}); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("List = %d entries, want 3", len(infos))
	}
	for i := 1; i < len(infos); i++ {
		if infos[i-1].ID >= infos[i].ID {
			t.Error("List not sorted by ID")
		}
	}
}

// TestStoreSurvivesReopen checks persistence: a second Store over the
// same directory sees the first one's uploads (warm restart).
func TestStoreSurvivesReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "traces")
	s1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	enc := encodeStream(t, 30, false)
	info, _, err := s1.Put(bytes.NewReader(enc), "", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Stat(info.ID)
	if err != nil {
		t.Fatalf("reopened store lost the trace: %v", err)
	}
	if got != info {
		t.Errorf("reopened Stat = %+v, want %+v", got, info)
	}
	if _, deduped, err := s2.Put(bytes.NewReader(enc), "", Limits{}); err != nil || !deduped {
		t.Errorf("re-upload after reopen: deduped=%v err=%v", deduped, err)
	}
}
