// Package trace defines the instruction record consumed by the CPU
// model and a compact binary on-disk format for instruction traces,
// mirroring the role of ChampSim's trace format in the paper's
// methodology (§IV-A).
//
// A trace is a sequence of dynamic instructions on the correct path
// (the paper's simulator, like ChampSim, does not model wrong-path
// execution). Each record carries the program counter, instruction
// size, branch behaviour, and an optional synthetic data address for
// the load/store side of the pipeline.
package trace

import "fmt"

// BranchType classifies an instruction's control-flow behaviour.
type BranchType uint8

// Branch types, following the classes the baseline front-end
// distinguishes: the BTB handles direct branches, the indirect target
// cache handles indirect jumps/calls, and the RAS handles returns.
const (
	NotBranch BranchType = iota
	// CondBranch is a direct conditional branch; Taken tells the outcome.
	CondBranch
	// DirectJump is an unconditional direct jump (always taken).
	DirectJump
	// DirectCall is a direct function call (always taken, pushes RAS).
	DirectCall
	// IndirectJump is an unconditional indirect jump.
	IndirectJump
	// IndirectCall is an indirect function call (pushes RAS).
	IndirectCall
	// Return pops the RAS.
	Return
)

// String returns a short mnemonic for the branch type.
func (b BranchType) String() string {
	switch b {
	case NotBranch:
		return "none"
	case CondBranch:
		return "cond"
	case DirectJump:
		return "jmp"
	case DirectCall:
		return "call"
	case IndirectJump:
		return "ijmp"
	case IndirectCall:
		return "icall"
	case Return:
		return "ret"
	default:
		return fmt.Sprintf("BranchType(%d)", uint8(b))
	}
}

// IsBranch reports whether the type is any kind of branch.
func (b BranchType) IsBranch() bool { return b != NotBranch }

// IsCall reports whether the type pushes a return address.
func (b BranchType) IsCall() bool { return b == DirectCall || b == IndirectCall }

// IsIndirect reports whether the target cannot come from the BTB alone.
func (b BranchType) IsIndirect() bool { return b == IndirectJump || b == IndirectCall }

// IsUnconditional reports whether the branch is always taken.
func (b BranchType) IsUnconditional() bool { return b.IsBranch() && b != CondBranch }

// Instruction is one dynamic instruction record.
type Instruction struct {
	// PC is the virtual address of the first byte of the instruction.
	PC uint64
	// Target is the address of the next instruction when a branch is
	// taken. It is meaningful only when Branch.IsBranch() and Taken.
	Target uint64
	// DataAddr is the (synthetic) virtual address touched when IsLoad
	// or IsStore is set.
	DataAddr uint64
	// Size is the instruction length in bytes.
	Size uint8
	// Branch classifies control flow.
	Branch BranchType
	// Taken is the actual branch outcome (always true for
	// unconditional branches).
	Taken bool
	// IsLoad marks a memory read.
	IsLoad bool
	// IsStore marks a memory write.
	IsStore bool
}

// NextPC returns the address of the dynamically next instruction.
func (in *Instruction) NextPC() uint64 {
	if in.Branch.IsBranch() && in.Taken {
		return in.Target
	}
	return in.PC + uint64(in.Size)
}

// Source is a stream of dynamic instructions. Next fills in and
// returns true, or returns false at end of stream. Implementations are
// the synthetic workload walker and the trace file Reader.
type Source interface {
	Next(in *Instruction) bool
}

// LimitSource wraps a Source and stops after n instructions.
type LimitSource struct {
	Src  Source
	N    uint64
	done uint64
}

// Next implements Source.
func (l *LimitSource) Next(in *Instruction) bool {
	if l.done >= l.N {
		return false
	}
	if !l.Src.Next(in) {
		return false
	}
	l.done++
	return true
}

// SliceSource serves instructions from an in-memory slice; it is used
// heavily by tests and by the trace round-trip tooling.
type SliceSource struct {
	Instrs []Instruction
	pos    int
}

// Next implements Source.
func (s *SliceSource) Next(in *Instruction) bool {
	if s.pos >= len(s.Instrs) {
		return false
	}
	*in = s.Instrs[s.pos]
	s.pos++
	return true
}

// Remaining exposes the unread tail of the slice, letting the hot
// simulation loop iterate instructions in place — no per-instruction
// interface call or struct copy. Callers must treat the instructions
// as read-only (a cached trace replays under many configurations) and
// report how far they got via Advance.
func (s *SliceSource) Remaining() []Instruction { return s.Instrs[s.pos:] }

// Advance marks n instructions of Remaining as consumed.
func (s *SliceSource) Advance(n int) { s.pos += n }

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }
