// Package faultinject is the repository's deterministic fault layer:
// seed-driven injection of cell panics, cell errors, slow cells, trace
// acquire failures and checkpoint-record corruption. The harness tests
// use it to prove every recovery path of the sweep executor (panic
// recovery, retry, deadline enforcement, checkpoint quarantine)
// without any real nondeterminism — whether a given site faults is a
// pure function of (seed, site), independent of goroutine scheduling,
// parallelism and wall-clock time, so a "chaotic" test run is exactly
// reproducible.
//
// The package deliberately knows nothing about the harness: it exposes
// plain hook functions (CellHook, AcquireHook) matching the hook
// signatures of harness.Options and workload.TraceCache, and the tests
// wire them together.
package faultinject

import (
	"fmt"
	"sync"
	"time"

	"entangling/internal/stats"
)

// Plan configures which operations fault. Probabilities are evaluated
// deterministically per site: a site either always rolls a fault or
// never does, for a given seed. The JSON tags are the wire form the
// job server accepts (durations travel as nanoseconds).
type Plan struct {
	// Seed drives every injection decision.
	Seed uint64 `json:"seed"`

	// CellPanicProb is the probability a sweep cell panics.
	CellPanicProb float64 `json:"cell_panic_prob,omitempty"`
	// CellErrorProb is the probability a sweep cell returns an error.
	CellErrorProb float64 `json:"cell_error_prob,omitempty"`
	// CellSlowProb is the probability a sweep cell stalls for SlowDelay
	// before running (exercises deadline enforcement).
	CellSlowProb float64 `json:"cell_slow_prob,omitempty"`
	// SlowDelay is how long a slow cell stalls.
	SlowDelay time.Duration `json:"slow_delay_ns,omitempty"`

	// AcquireFailProb is the probability a TraceCache acquire fails.
	AcquireFailProb float64 `json:"acquire_fail_prob,omitempty"`

	// FaultsPerSite bounds how many times one site faults: 0 means 1
	// (a transient fault — the first attempt fails, a retry succeeds),
	// a negative value means unbounded (a permanent fault that defeats
	// every retry).
	FaultsPerSite int `json:"faults_per_site,omitempty"`
}

// Enabled reports whether the plan injects anything at all: a zero
// (or probability-free) Plan is a no-op and needs no Injector.
func (p Plan) Enabled() bool {
	return p.CellPanicProb > 0 || p.CellErrorProb > 0 ||
		p.CellSlowProb > 0 || p.AcquireFailProb > 0
}

// Validate reports the first structural problem with a plan — out of
// range probabilities or a negative stall — or nil. Plans arriving
// from the network are validated before an Injector is built.
func (p Plan) Validate() error {
	probs := map[string]float64{
		"cell_panic_prob":   p.CellPanicProb,
		"cell_error_prob":   p.CellErrorProb,
		"cell_slow_prob":    p.CellSlowProb,
		"acquire_fail_prob": p.AcquireFailProb,
	}
	// Deterministic report order.
	for _, name := range []string{"cell_panic_prob", "cell_error_prob", "cell_slow_prob", "acquire_fail_prob"} {
		if v := probs[name]; v < 0 || v > 1 {
			return fmt.Errorf("faultinject: %s %v outside [0,1]", name, v)
		}
	}
	if p.SlowDelay < 0 {
		return fmt.Errorf("faultinject: negative slow delay %v", p.SlowDelay)
	}
	if p.CellSlowProb > 0 && p.SlowDelay == 0 {
		return fmt.Errorf("faultinject: cell_slow_prob set without slow_delay_ns")
	}
	return nil
}

// Counts reports the faults actually injected.
type Counts struct {
	CellPanics      int
	CellErrors      int
	SlowCells       int
	AcquireFailures int
	RecordsCorrupted int
}

// Total returns the number of injected faults of all kinds.
func (c Counts) Total() int {
	return c.CellPanics + c.CellErrors + c.SlowCells + c.AcquireFailures + c.RecordsCorrupted
}

// Injector injects the faults of a Plan. Safe for concurrent use.
type Injector struct {
	plan Plan

	mu     sync.Mutex
	fired  map[string]int
	counts Counts
}

// New returns an injector for the plan.
func New(plan Plan) *Injector {
	return &Injector{plan: plan, fired: make(map[string]int)}
}

// roll decides whether the (kind, site) pair faults now. The decision
// whether a site is fault-prone is stateless and deterministic; the
// per-site budget (FaultsPerSite) is the only state, so "fail once,
// then succeed" retry scenarios are reproducible too.
func (in *Injector) roll(kind, site string, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if stats.UnitFloat(stats.Hash64(in.plan.Seed, kind, site)) >= prob {
		return false
	}
	limit := in.plan.FaultsPerSite
	if limit == 0 {
		limit = 1
	}
	key := kind + "\x00" + site
	in.mu.Lock()
	defer in.mu.Unlock()
	if limit > 0 && in.fired[key] >= limit {
		return false
	}
	in.fired[key]++
	return true
}

// CellHook matches harness.Options.CellHook: it runs at the start of
// a sweep cell attempt and may panic, stall, or return an error.
func (in *Injector) CellHook(config, workload string) error {
	site := config + "/" + workload
	if in.roll("panic", site, in.plan.CellPanicProb) {
		in.add(func(c *Counts) { c.CellPanics++ })
		panic(fmt.Sprintf("faultinject: injected panic in cell %s", site))
	}
	if in.roll("slow", site, in.plan.CellSlowProb) {
		in.add(func(c *Counts) { c.SlowCells++ })
		time.Sleep(in.plan.SlowDelay)
	}
	if in.roll("error", site, in.plan.CellErrorProb) {
		in.add(func(c *Counts) { c.CellErrors++ })
		return fmt.Errorf("faultinject: injected error in cell %s", site)
	}
	return nil
}

// AcquireHook matches workload.TraceCache's acquire hook: it runs
// before a trace acquire and may fail it.
func (in *Injector) AcquireHook(name string, n uint64) error {
	if in.roll("acquire", name, in.plan.AcquireFailProb) {
		in.add(func(c *Counts) { c.AcquireFailures++ })
		return fmt.Errorf("faultinject: injected acquire failure for trace %s/%d", name, n)
	}
	return nil
}

// CorruptRecord returns a copy of b with a few deterministically
// chosen bytes flipped — a model of a torn or bit-rotted checkpoint
// record. The input is never modified. Corrupting an empty record
// returns it unchanged.
func (in *Injector) CorruptRecord(b []byte) []byte {
	out := append([]byte(nil), b...)
	if len(out) == 0 {
		return out
	}
	r := stats.SplitMix64(in.plan.Seed ^ uint64(len(out)))
	for i := 0; i < 3; i++ {
		r = stats.SplitMix64(r)
		pos := int(r % uint64(len(out)))
		// XOR with a nonzero byte guarantees the byte changes.
		out[pos] ^= byte(1 + (r>>8)%255)
	}
	in.add(func(c *Counts) { c.RecordsCorrupted++ })
	return out
}

// Stats returns the faults injected so far.
func (in *Injector) Stats() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

func (in *Injector) add(f func(*Counts)) {
	in.mu.Lock()
	f(&in.counts)
	in.mu.Unlock()
}
