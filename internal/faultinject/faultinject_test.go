package faultinject

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// collectCellFaults runs the hook over a grid of cells and returns a
// per-cell record of what happened.
func collectCellFaults(in *Injector) map[string]string {
	out := make(map[string]string)
	for c := 0; c < 4; c++ {
		for w := 0; w < 4; w++ {
			cfg, wl := fmt.Sprintf("cfg%d", c), fmt.Sprintf("wl%d", w)
			out[cfg+"/"+wl] = func() (kind string) {
				defer func() {
					if recover() != nil {
						kind = "panic"
					}
				}()
				if err := in.CellHook(cfg, wl); err != nil {
					return "error"
				}
				return "ok"
			}()
		}
	}
	return out
}

// TestInjectionIsDeterministic: which cells fault, and how, is a pure
// function of the plan — two injectors with the same plan agree on
// every site; a different seed picks a different (non-empty,
// non-identical) fault set.
func TestInjectionIsDeterministic(t *testing.T) {
	plan := Plan{Seed: 11, CellPanicProb: 0.3, CellErrorProb: 0.3, FaultsPerSite: -1}
	a := collectCellFaults(New(plan))
	b := collectCellFaults(New(plan))
	for site, kind := range a {
		if b[site] != kind {
			t.Errorf("site %s: %s vs %s across identical plans", site, kind, b[site])
		}
	}
	faults := 0
	for _, kind := range a {
		if kind != "ok" {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("degenerate fault set: %d/%d sites fault", faults, len(a))
	}

	other := plan
	other.Seed = 12
	c := collectCellFaults(New(other))
	same := true
	for site, kind := range a {
		if c[site] != kind {
			same = false
			break
		}
	}
	if same {
		t.Error("changing the seed changed nothing")
	}
}

// TestFaultsPerSiteBudget: the default budget makes every fault
// transient (first roll fires, the retry passes); a negative budget
// makes faults permanent; a positive budget allows exactly that many.
func TestFaultsPerSiteBudget(t *testing.T) {
	countErrs := func(in *Injector, n int) int {
		errs := 0
		for i := 0; i < n; i++ {
			if in.CellHook("cfg", "wl") != nil {
				errs++
			}
		}
		return errs
	}
	// Probability 1 guarantees the site is fault-prone; the budget is
	// then the only variable.
	if got := countErrs(New(Plan{Seed: 1, CellErrorProb: 1}), 5); got != 1 {
		t.Errorf("default budget injected %d faults, want 1", got)
	}
	if got := countErrs(New(Plan{Seed: 1, CellErrorProb: 1, FaultsPerSite: 3}), 5); got != 3 {
		t.Errorf("budget 3 injected %d faults, want 3", got)
	}
	if got := countErrs(New(Plan{Seed: 1, CellErrorProb: 1, FaultsPerSite: -1}), 5); got != 5 {
		t.Errorf("permanent fault injected %d of 5", got)
	}
}

func TestSlowCellStalls(t *testing.T) {
	in := New(Plan{Seed: 1, CellSlowProb: 1, SlowDelay: 30 * time.Millisecond})
	start := time.Now()
	if err := in.CellHook("cfg", "wl"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("slow cell returned after %v, want >= 30ms", d)
	}
	if in.Stats().SlowCells != 1 {
		t.Errorf("SlowCells = %d, want 1", in.Stats().SlowCells)
	}
}

func TestCorruptRecordAlwaysChanges(t *testing.T) {
	in := New(Plan{Seed: 42})
	for _, size := range []int{1, 2, 16, 1024} {
		orig := bytes.Repeat([]byte{0xA5}, size)
		got := in.CorruptRecord(orig)
		if len(got) != size {
			t.Fatalf("size changed: %d -> %d", size, len(got))
		}
		if bytes.Equal(got, orig) {
			t.Errorf("size %d: corruption was a no-op", size)
		}
		if !bytes.Equal(orig, bytes.Repeat([]byte{0xA5}, size)) {
			t.Errorf("size %d: input mutated in place", size)
		}
	}
	if got := in.CorruptRecord(nil); len(got) != 0 {
		t.Errorf("corrupting empty record produced %d bytes", len(got))
	}
	if in.Stats().RecordsCorrupted != 4 {
		t.Errorf("RecordsCorrupted = %d, want 4", in.Stats().RecordsCorrupted)
	}
}

// TestConcurrentInjection: hooks race from many goroutines and the
// budget still holds exactly — the injector is the one stateful piece
// of the fault layer, so it must be safe under the sweep's worker
// pool.
func TestConcurrentInjection(t *testing.T) {
	in := New(Plan{Seed: 9, CellErrorProb: 1, FaultsPerSite: 7})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				errs <- in.CellHook("cfg", "wl")
			}
		}()
	}
	wg.Wait()
	close(errs)
	fired := 0
	for err := range errs {
		if err != nil {
			fired++
		}
	}
	if fired != 7 {
		t.Errorf("budget 7 fired %d times under concurrency", fired)
	}
	if in.Stats().CellErrors != 7 {
		t.Errorf("CellErrors = %d, want 7", in.Stats().CellErrors)
	}
}

func TestCountsTotal(t *testing.T) {
	c := Counts{CellPanics: 1, CellErrors: 2, SlowCells: 3, AcquireFailures: 4, RecordsCorrupted: 5}
	if c.Total() != 15 {
		t.Errorf("Total = %d, want 15", c.Total())
	}
}
