package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"entangling/internal/server"
)

// This file implements the SSE side of the SDK: Events follows a
// job's progress stream and transparently survives severed
// connections. The server's event log is append-only and replayable
// from any position, and every SSE frame carries its sequence number
// as the event id — so on reconnect the client sends Last-Event-ID
// and receives exactly the events it has not yet delivered. The
// caller observes one gapless, duplicate-free, ordered sequence no
// matter how many times the underlying TCP connection died.

// Events streams a job's progress events to fn, in order, exactly
// once each, until the terminal job.done event (returns nil), the
// context cancels, fn returns an error (propagated), or the retry
// budget is exhausted reconnecting. A non-retryable API answer (401,
// 403, 404) returns its *APIError immediately.
func (c *Client) Events(ctx context.Context, id string, fn func(server.Event) error) error {
	lastSeq := 0
	failures := 0
	for {
		err := c.streamOnce(ctx, id, &lastSeq, fn)
		switch {
		case err == nil:
			return nil // saw job.done
		case ctx.Err() != nil:
			return ctx.Err()
		}
		var stop *errStopped
		if errors.As(err, &stop) {
			return stop.err
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && !apiErr.Temporary() {
			return apiErr
		}
		// The connection died mid-stream (or the server was briefly
		// unavailable): back off and resume from lastSeq.
		if failures >= c.cfg.Retries {
			return fmt.Errorf("client: event stream for job %s: %w", id, err)
		}
		d := c.backoffDelay(failures, 0)
		failures++
		c.cfg.Logf("client: event stream for %s interrupted after seq %d (%v); resuming in %s",
			id, lastSeq, err, d)
		if serr := c.cfg.Sleep(ctx, d); serr != nil {
			return fmt.Errorf("client: event stream for job %s: %w", id, err)
		}
	}
}

// errStopped wraps an error fn returned: the caller asked to stop,
// which must not be confused with a dead connection.
type errStopped struct{ err error }

func (e *errStopped) Error() string { return e.err.Error() }

// streamOnce opens one SSE connection from *lastSeq and delivers
// events until the stream ends. Returns nil only after job.done; any
// other termination is an interruption the caller may resume from.
func (c *Client) streamOnce(ctx context.Context, id string, lastSeq *int, fn func(server.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if c.cfg.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.cfg.APIKey)
	}
	if *lastSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(*lastSeq))
	}
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("client: connecting event stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}

	// Parse SSE frames: "id:", "event:", "data:" lines, blank line
	// dispatches. The server emits one JSON Event per frame whose Seq
	// equals the SSE id; frames at or below lastSeq (possible only if
	// a proxy replayed bytes) are dropped, keeping delivery exactly
	// once.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var data strings.Builder
	sawDone := false
	flush := func() error {
		if data.Len() == 0 {
			return nil
		}
		payload := data.String()
		data.Reset()
		var ev server.Event
		if err := json.Unmarshal([]byte(payload), &ev); err != nil {
			return fmt.Errorf("client: malformed event payload: %w", err)
		}
		if ev.Seq <= *lastSeq {
			return nil
		}
		*lastSeq = ev.Seq
		if err := fn(ev); err != nil {
			return &errStopped{err}
		}
		if ev.Type == server.EventJobDone {
			sawDone = true
		}
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
			if sawDone {
				return nil
			}
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		// id: and event: lines are redundant with the JSON payload
		// (Seq and Type); ignore them.
		default:
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if sawDone {
		return nil
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("client: event stream read: %w", err)
	}
	// EOF without job.done: the server closed the stream early (drain,
	// restart, proxy cut). Resumable.
	return fmt.Errorf("client: event stream ended before job.done (last seq %d)", *lastSeq)
}
