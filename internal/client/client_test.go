package client

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"entangling/internal/leakcheck"
	"entangling/internal/server"
)

// This file is the SDK battery. The centerpiece is the severed-stream
// resume test: an in-process flaky proxy truncates every SSE response
// after a couple of frames, and the client must still deliver the
// exact ordered, gapless, duplicate-free event sequence an
// uninterrupted stream yields — plus a byte-identical result document.

// startNode boots a real in-process server node behind httptest.
func startNode(t *testing.T) *httptest.Server {
	t.Helper()
	leakcheck.Check(t)
	s, err := server.New(server.Config{
		Workers:         1,
		CellParallelism: 2,
		QueueCapacity:   4,
		PerCategory:     1,
		DrainGrace:      2 * time.Second,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Drain()
		ts.Close()
	})
	return ts
}

// virtualClock returns a Sleep that records requested delays without
// actually waiting, so backoff schedules run instantly.
func virtualClock() (func(context.Context, time.Duration) error, *[]time.Duration) {
	var slept []time.Duration
	return func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		slept = append(slept, d)
		return nil
	}, &slept
}

func newTestClient(t *testing.T, baseURL string, mut func(*Config)) *Client {
	t.Helper()
	cfg := Config{BaseURL: baseURL, Logf: t.Logf}
	cfg.Sleep, _ = virtualClock()
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("client.New: %v", err)
	}
	return c
}

func testJob() server.JobRequest {
	return server.JobRequest{
		Configurations: []string{"no", "nextline"},
		Workloads:      []string{"crypto-00"},
		Warmup:         20_000,
		Measure:        10_000,
	}
}

// flakyProxy forwards requests to a backend verbatim, except that SSE
// responses are severed (connection aborted mid-body) after cutAfter
// frames — the shape of a proxy idle-timeout or a node restart.
type flakyProxy struct {
	backend  string
	cutAfter int
	cuts     atomic.Int32
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.backend+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/event-stream") {
		io.Copy(w, resp.Body)
		return
	}
	fl, _ := w.(http.Flusher)
	br := bufio.NewReader(resp.Body)
	frames := 0
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			w.Write(line)
			if fl != nil {
				fl.Flush()
			}
			if string(line) == "\n" {
				if frames++; frames >= p.cutAfter {
					p.cuts.Add(1)
					panic(http.ErrAbortHandler) // sever the TCP stream mid-response
				}
			}
		}
		if err != nil {
			return
		}
	}
}

// TestEventsResumeAfterSeveredStream: with every SSE connection cut
// after two frames, Events still delivers the exact sequence an
// uninterrupted stream yields, and the result document is
// byte-identical — the SDK's resume is invisible to the caller.
func TestEventsResumeAfterSeveredStream(t *testing.T) {
	node := startNode(t)
	proxy := &flakyProxy{backend: node.URL, cutAfter: 2}
	front := httptest.NewServer(proxy)
	defer front.Close()

	direct := newTestClient(t, node.URL, nil)
	flaky := newTestClient(t, front.URL, func(c *Config) {
		c.Retries = 50 // every reconnect counts against this budget
	})

	ctx := context.Background()
	sub, err := direct.Submit(ctx, testJob())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Finish the job first so both streams replay the same complete,
	// immutable event log — the comparison is then exact, not racy.
	wantDoc, wantRaw, err := direct.WaitResult(ctx, sub.ID)
	if err != nil {
		t.Fatalf("wait result: %v", err)
	}
	if wantDoc.State != server.StateCompleted {
		t.Fatalf("job state %q, want completed", wantDoc.State)
	}

	collect := func(c *Client) []server.Event {
		var evs []server.Event
		if err := c.Events(ctx, sub.ID, func(ev server.Event) error {
			evs = append(evs, ev)
			return nil
		}); err != nil {
			t.Fatalf("events: %v", err)
		}
		return evs
	}
	want := collect(direct)
	got := collect(flaky)

	if proxy.cuts.Load() == 0 {
		t.Fatalf("the proxy never severed a stream; the resume path was not exercised")
	}
	if len(want) < 3 || want[len(want)-1].Type != server.EventJobDone {
		t.Fatalf("uninterrupted stream looks wrong: %d events, last %+v", len(want), want[len(want)-1])
	}
	for i, ev := range got {
		if ev.Seq != i+1 {
			t.Fatalf("resumed stream has a gap or duplicate at index %d: seq %d", i, ev.Seq)
		}
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("resumed stream diverged from uninterrupted stream:\nwant %s\ngot  %s", wantJSON, gotJSON)
	}

	// The result fetched through the flaky proxy hashes identically.
	_, gotRaw, err := flaky.WaitResult(ctx, sub.ID)
	if err != nil {
		t.Fatalf("wait result via proxy: %v", err)
	}
	if sha256.Sum256(gotRaw) != sha256.Sum256(wantRaw) {
		t.Fatalf("result bytes via flaky proxy differ from direct fetch")
	}
}

// TestEventsStopOnCallbackError: an fn error stops the stream
// immediately and surfaces unwrapped — it must not be mistaken for a
// dead connection and retried.
func TestEventsStopOnCallbackError(t *testing.T) {
	node := startNode(t)
	cl := newTestClient(t, node.URL, nil)
	ctx := context.Background()

	sub, err := cl.Submit(ctx, testJob())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, _, err := cl.WaitResult(ctx, sub.ID); err != nil {
		t.Fatalf("wait result: %v", err)
	}

	sentinel := errors.New("stop here")
	calls := 0
	err = cl.Events(ctx, sub.ID, func(server.Event) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Events returned %v, want the callback's sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after asking to stop", calls)
	}
}

// TestRetryHonorsRetryAfter: 503s are retried and a server Retry-After
// hint stretches the backoff (capped at MaxDelay).
func TestRetryHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	}))
	defer ts.Close()

	sleep, slept := virtualClock()
	cl := newTestClient(t, ts.URL, func(c *Config) {
		c.Retries = 3
		c.BaseDelay = 10 * time.Millisecond
		c.MaxDelay = 5 * time.Second
		c.Sleep = sleep
	})
	if err := cl.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz after recovery: %v", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", hits.Load())
	}
	if len(*slept) != 2 || (*slept)[0] != 2*time.Second || (*slept)[1] != 2*time.Second {
		t.Fatalf("backoff schedule %v, want the 2s Retry-After hint twice", *slept)
	}
}

// TestQuotaRejectionNotRetried: a 429 surfaces immediately as a typed
// APIError carrying the machine reason and the Retry-After hint — the
// SDK must not burn retries hiding quota pressure from the caller.
func TestQuotaRejectionNotRetried(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "7")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]string{
			"error":  `tenant "acme": cells-per-second quota exhausted`,
			"reason": server.ReasonQuotaCellRate,
		})
	}))
	defer ts.Close()

	cl := newTestClient(t, ts.URL, nil)
	_, err := cl.Submit(context.Background(), testJob())
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("submit error %v, want *APIError", err)
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.Reason != server.ReasonQuotaCellRate {
		t.Fatalf("APIError %+v: wrong status or reason", apiErr)
	}
	if apiErr.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter %v, want 7s", apiErr.RetryAfter)
	}
	if !apiErr.Temporary() {
		t.Fatalf("a 429 must be Temporary (retryable by the caller, later)")
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want exactly 1 (no retry on 429)", hits.Load())
	}
}

// TestTransportRetryBudget: connection-level failures are retried
// exactly Retries times, then the last error surfaces.
func TestTransportRetryBudget(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	ts.Close() // nothing listens: every dial fails

	sleep, slept := virtualClock()
	cl := newTestClient(t, ts.URL, func(c *Config) {
		c.Retries = 3
		c.Sleep = sleep
	})
	if err := cl.Healthz(context.Background()); err == nil {
		t.Fatalf("healthz against a dead node succeeded")
	}
	if len(*slept) != 3 {
		t.Fatalf("retried %d times, want 3", len(*slept))
	}
	for i := 1; i < len(*slept); i++ {
		if (*slept)[i] < (*slept)[i-1] {
			t.Fatalf("backoff not monotone: %v", *slept)
		}
	}
}

// TestEventsUnknownJobFailsFast: a 404 on the stream is not a
// connection problem; it returns immediately without reconnects.
func TestEventsUnknownJobFailsFast(t *testing.T) {
	node := startNode(t)
	sleep, slept := virtualClock()
	cl := newTestClient(t, node.URL, func(c *Config) { c.Sleep = sleep })

	err := cl.Events(context.Background(), "nope", func(server.Event) error { return nil })
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("Events on unknown job: %v, want 404 APIError", err)
	}
	if len(*slept) != 0 {
		t.Fatalf("client slept %v before failing fast on 404", *slept)
	}
}
