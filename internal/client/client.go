// Package client is the Go SDK for the job server's /v1 API: submit,
// status, result, cancel, trace upload and the SSE progress stream. It
// exists so every program that talks to a node — cmd/loadgen, tests,
// external tooling — shares one implementation of the boring-but-
// load-bearing parts: API-key auth, retry with exponential backoff
// honoring Retry-After, typed errors carrying the server's
// machine-readable rejection reason, and Last-Event-ID resume that
// survives a severed SSE connection without dropping or duplicating a
// single event.
//
// Job submission is content-addressed on the server (an identical
// resubmission dedupes onto the existing job), so retrying a POST
// /v1/jobs after a transport failure is safe — the worst case is a
// dedupe hit, never a duplicate sweep. That property is what lets the
// SDK retry submissions at all.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"entangling/internal/server"
)

// Config assembles a Client.
type Config struct {
	// BaseURL locates the node, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// APIKey authenticates every request on a multi-tenant node (sent
	// as Authorization: Bearer). Empty on an open node.
	APIKey string
	// HTTP is the transport (default: a client with no global timeout —
	// SSE streams are long-lived; use contexts to bound calls).
	HTTP *http.Client
	// Retries bounds transport-level retries per call (default 4).
	// Retried: connection errors and 502/503/504. Not retried: 4xx —
	// including 429, which the caller must see to count quota pressure.
	Retries int
	// BaseDelay seeds the exponential backoff (default 100ms); MaxDelay
	// caps it (default 5s). A server Retry-After hint overrides the
	// computed delay when larger, capped at MaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Sleep waits between retries (default: timer + ctx). Injectable so
	// tests run backoff schedules in virtual time.
	Sleep func(context.Context, time.Duration) error
	// Logf receives debug lines (default: discard).
	Logf func(format string, args ...any)
}

// Client talks to one node. Safe for concurrent use.
type Client struct {
	cfg Config
}

// New validates the config and builds a Client.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("client: BaseURL is required")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{}
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 4
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 100 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Second
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Client{cfg: cfg}, nil
}

// APIError is a non-2xx response, carrying the server's
// machine-readable reason (the server.Reason* taxonomy) alongside the
// human-readable message.
type APIError struct {
	Status  int
	Reason  string
	Message string
	// RetryAfter is the server's Retry-After hint (0 when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Reason != "" {
		return fmt.Sprintf("client: server answered %d (%s): %s", e.Status, e.Reason, e.Message)
	}
	return fmt.Sprintf("client: server answered %d: %s", e.Status, e.Message)
}

// Temporary reports whether retrying the same call later could
// succeed (quota windows refill, queues drain, gateways recover).
func (e *APIError) Temporary() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// SubmitResponse mirrors the POST /v1/jobs body.
type SubmitResponse struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Deduped bool   `json:"deduped"`
	Cells   int    `json:"cells"`
	Status  string `json:"status_url"`
	Events  string `json:"events_url"`
	Result  string `json:"result_url"`
}

// TraceDoc mirrors the POST /v1/traces body.
type TraceDoc struct {
	ID           string `json:"id"`
	Workload     string `json:"workload"`
	Instructions uint64 `json:"instructions"`
	Bytes        int64  `json:"bytes"`
	Format       string `json:"format"`
	Deduped      bool   `json:"deduped,omitempty"`
}

// retryAfter parses a Retry-After header (seconds form only; the
// server never sends HTTP dates).
func retryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	if n, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && n > 0 {
		return time.Duration(n) * time.Second
	}
	return 0
}

// apiError drains and decodes a non-2xx body into an *APIError. The
// body may not be JSON (proxies); the raw text then becomes Message.
func apiError(resp *http.Response) *APIError {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	e := &APIError{Status: resp.StatusCode, RetryAfter: retryAfter(resp)}
	var doc struct {
		Error  string `json:"error"`
		Reason string `json:"reason"`
	}
	if json.Unmarshal(body, &doc) == nil && doc.Error != "" {
		e.Message, e.Reason = doc.Error, doc.Reason
	} else {
		e.Message = strings.TrimSpace(string(body))
	}
	return e
}

// backoffDelay computes the attempt'th retry delay: exponential from
// BaseDelay, capped at MaxDelay, stretched to a server hint when the
// server asked for longer.
func (c *Client) backoffDelay(attempt int, hint time.Duration) time.Duration {
	d := c.cfg.BaseDelay << attempt
	if d > c.cfg.MaxDelay || d <= 0 {
		d = c.cfg.MaxDelay
	}
	if hint > d {
		d = hint
		if d > c.cfg.MaxDelay {
			d = c.cfg.MaxDelay
		}
	}
	return d
}

// retryableStatus reports whether the SDK retries the status itself.
// 429 deliberately is not here: quota rejections are an answer, not a
// transport failure, and hiding them would blind the caller's error
// taxonomy. Callers that want to wait out a quota use the APIError's
// RetryAfter hint themselves.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do runs one API call with auth, retry and backoff. body, when
// non-nil, must be replayable (we re-materialize it per attempt).
// want is the set of acceptable statuses; anything else decodes into
// an *APIError. The caller owns closing the returned response body.
func (c *Client) do(ctx context.Context, method, path string, body []byte, contentType string, want ...int) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, rd)
		if err != nil {
			return nil, fmt.Errorf("client: %w", err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if c.cfg.APIKey != "" {
			req.Header.Set("Authorization", "Bearer "+c.cfg.APIKey)
		}

		resp, err := c.cfg.HTTP.Do(req)
		var hint time.Duration
		switch {
		case err != nil:
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, err)
		default:
			ok := false
			for _, w := range want {
				if resp.StatusCode == w {
					ok = true
					break
				}
			}
			if ok {
				return resp, nil
			}
			apiErr := apiError(resp)
			resp.Body.Close()
			if !retryableStatus(resp.StatusCode) {
				return nil, apiErr
			}
			lastErr, hint = apiErr, apiErr.RetryAfter
		}

		if attempt >= c.cfg.Retries {
			return nil, lastErr
		}
		d := c.backoffDelay(attempt, hint)
		c.cfg.Logf("client: %s %s failed (%v); retrying in %s", method, path, lastErr, d)
		if err := c.cfg.Sleep(ctx, d); err != nil {
			return nil, lastErr
		}
	}
}

// decodeInto closes the body after decoding one JSON document.
func decodeInto(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", resp.Request.URL.Path, err)
	}
	return nil
}

// Submit posts a job. Deduped reports whether the server answered
// with an existing identical job.
func (c *Client) Submit(ctx context.Context, req server.JobRequest) (SubmitResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return SubmitResponse{}, fmt.Errorf("client: encoding job request: %w", err)
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", body, "application/json",
		http.StatusAccepted, http.StatusOK)
	if err != nil {
		return SubmitResponse{}, err
	}
	var out SubmitResponse
	return out, decodeInto(resp, &out)
}

// Status fetches a job's status document.
func (c *Client) Status(ctx context.Context, id string) (server.StatusDoc, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, "", http.StatusOK)
	if err != nil {
		return server.StatusDoc{}, err
	}
	var out server.StatusDoc
	return out, decodeInto(resp, &out)
}

// Cancel withdraws this tenant's interest in a job (which cancels it
// outright on an open server, or when this tenant is the last owner).
func (c *Client) Cancel(ctx context.Context, id string) (server.StatusDoc, error) {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, "", http.StatusOK)
	if err != nil {
		return server.StatusDoc{}, err
	}
	var out server.StatusDoc
	return out, decodeInto(resp, &out)
}

// Result fetches a terminal job's result document plus the exact
// response bytes (hashable for cross-transport comparison). A job
// that is still running returns ok=false with no error.
func (c *Client) Result(ctx context.Context, id string) (server.ResultDoc, []byte, bool, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, "",
		http.StatusOK, http.StatusAccepted)
	if err != nil {
		return server.ResultDoc{}, nil, false, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return server.ResultDoc{}, nil, false, fmt.Errorf("client: reading result: %w", err)
	}
	if resp.StatusCode == http.StatusAccepted {
		return server.ResultDoc{}, nil, false, nil
	}
	var doc server.ResultDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return server.ResultDoc{}, nil, false, fmt.Errorf("client: decoding result: %w", err)
	}
	return doc, raw, true, nil
}

// WaitResult polls /result until the job is terminal, honoring the
// server's Retry-After pacing hint, and returns the final document
// with its raw bytes.
func (c *Client) WaitResult(ctx context.Context, id string) (server.ResultDoc, []byte, error) {
	for {
		doc, raw, done, err := c.Result(ctx, id)
		if err != nil {
			return server.ResultDoc{}, nil, err
		}
		if done {
			return doc, raw, nil
		}
		if err := c.cfg.Sleep(ctx, 50*time.Millisecond); err != nil {
			return server.ResultDoc{}, nil, err
		}
	}
}

// ApproximateResult is the typed view of a mode=approximate job's
// outcome: the model-answered cells with their error bars, and the
// share that fell back to exact simulation (whose metrics are in
// Doc.Metrics, exactly as an exact job would report them).
type ApproximateResult struct {
	// Doc is the full result document (Doc.Approximate is true).
	Doc server.ResultDoc
	// Predictions are the model-answered cells with per-metric bands.
	Predictions []server.PredictedCell
	// PredictedCells and FallbackCells partition the job's successful
	// cells; FallbackRate is FallbackCells over their sum (0 when the
	// job had no successful cells).
	PredictedCells int
	FallbackCells  int
	FallbackRate   float64
}

// WaitApproximateResult polls a mode=approximate job to completion
// and returns the typed approximate view plus the raw result bytes.
// It errors if the job turns out not to be approximate — that means
// the caller submitted (or deduped onto) an exact job.
func (c *Client) WaitApproximateResult(ctx context.Context, id string) (ApproximateResult, []byte, error) {
	doc, raw, err := c.WaitResult(ctx, id)
	if err != nil {
		return ApproximateResult{}, nil, err
	}
	if !doc.Approximate {
		return ApproximateResult{}, nil, fmt.Errorf("client: job %s is not an approximate-mode job", id)
	}
	out := ApproximateResult{
		Doc:            doc,
		Predictions:    doc.Predictions,
		PredictedCells: doc.Cells.Predicted,
		FallbackCells:  doc.Cells.Fallback,
	}
	if n := out.PredictedCells + out.FallbackCells; n > 0 {
		out.FallbackRate = float64(out.FallbackCells) / float64(n)
	}
	return out, raw, nil
}

// RefineToExact resubmits the same cells in exact mode: the
// approximate request with mode and max_rel_err stripped. The exact
// job has its own content address, so it never dedupes onto the
// approximate one; its results are byte-identical to any other exact
// run of the same cells, and the server scores the predictions it
// served against them (the refinement counters on /metrics).
func (c *Client) RefineToExact(ctx context.Context, req server.JobRequest) (SubmitResponse, error) {
	req.Mode = ""
	req.MaxRelErr = 0
	return c.Submit(ctx, req)
}

// UploadTrace ingests one trace body. format is "" (ENTRACE1),
// "entrace1" or "champsim". The body is buffered so transport retries
// can replay it; traces the server already stores dedupe server-side.
func (c *Client) UploadTrace(ctx context.Context, body []byte, format string) (TraceDoc, error) {
	path := "/v1/traces"
	if format != "" {
		path += "?format=" + format
	}
	resp, err := c.do(ctx, http.MethodPost, path, body, "application/octet-stream",
		http.StatusCreated, http.StatusOK)
	if err != nil {
		return TraceDoc{}, err
	}
	var out TraceDoc
	return out, decodeInto(resp, &out)
}

// Healthz reports whether the node answers health checks.
func (c *Client) Healthz(ctx context.Context) error {
	resp, err := c.do(ctx, http.MethodGet, "/healthz", nil, "", http.StatusOK)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Metrics fetches the node's Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.do(ctx, http.MethodGet, "/metrics", nil, "", http.StatusOK)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("client: reading metrics: %w", err)
	}
	return string(b), nil
}
