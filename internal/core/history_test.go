package core

import "testing"

func TestHistoryPushWrap(t *testing.T) {
	h := newHistory(4)
	for i := uint64(0); i < 6; i++ {
		h.push(i, wrapTS(i*10), 0)
	}
	// Entries 2..5 remain.
	snap := h.snapshot(^uint64(0) - 1)
	if len(snap.lines) != 4 {
		t.Fatalf("snapshot has %d entries, want 4", len(snap.lines))
	}
	if snap.lines[0] != 5 || snap.lines[3] != 2 {
		t.Errorf("snapshot order wrong: %v", snap.lines)
	}
}

func TestHistoryUpdateSizeAndInvalidate(t *testing.T) {
	h := newHistory(4)
	pos := h.push(100, 0, 0)
	h.updateSize(pos, 100, 3)
	if h.entries[pos].size != 3 {
		t.Error("updateSize failed")
	}
	// Stale position (recycled): no effect.
	h.updateSize(pos, 999, 7)
	if h.entries[pos].size != 3 {
		t.Error("updateSize touched a recycled slot")
	}
	h.invalidate(pos, 100)
	snap := h.snapshot(0)
	for _, l := range snap.lines {
		if l == 100 {
			t.Error("invalidated entry still visible")
		}
	}
}

func TestSnapshotExcludes(t *testing.T) {
	h := newHistory(8)
	h.push(1, 10, 0)
	h.push(2, 20, 0)
	h.push(3, 30, 0)
	snap := h.snapshot(2)
	if len(snap.lines) != 2 {
		t.Fatalf("got %d entries, want 2", len(snap.lines))
	}
	for _, l := range snap.lines {
		if l == 2 {
			t.Error("excluded line present")
		}
	}
}

func TestSourcesLatencyFilter(t *testing.T) {
	h := newHistory(8)
	h.push(1, 100, 0) // age 900 at ts 1000
	h.push(2, 800, 0) // age 200
	h.push(3, 950, 0) // age 50
	snap := h.snapshot(^uint64(0) - 1)
	// Need sources at least 100 cycles before missTS=1000: lines 2, 1.
	got := snap.sources(1000, 100, 4)
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Errorf("sources = %v, want [2 1]", got)
	}
	// maxResults caps.
	if got := snap.sources(1000, 100, 1); len(got) != 1 || got[0] != 2 {
		t.Errorf("capped sources = %v", got)
	}
	// Nothing old enough.
	if got := snap.sources(1000, 950, 4); len(got) != 0 {
		t.Errorf("expected none, got %v", got)
	}
}

func TestSourcesWrapAware(t *testing.T) {
	h := newHistory(4)
	// Timestamp just before wrap; miss just after wrap.
	h.push(7, tsMask-50, 0)
	snap := h.snapshot(^uint64(0) - 1)
	got := snap.sources(10, 40, 2) // age = 10 - (tsMask-50) mod 2^20 = 61
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("wrap-aware sources = %v, want [7]", got)
	}
	// Entries "newer" than the miss (negative age) must be filtered.
	h.push(8, 20, 0) // pushed after missTS=10
	snap = h.snapshot(^uint64(0) - 1)
	got = snap.sources(10, 1, 4)
	for _, l := range got {
		if l == 8 {
			t.Error("future entry selected as source")
		}
	}
}

func TestMergeConsecutive(t *testing.T) {
	h := newHistory(8)
	h.push(100, 10, 2) // covers lines 100..102
	posB := h.push(200, 20, 0)
	// Block at 103 is consecutive with the first entry.
	head, size, ok := h.merge(103, 1, 25, 8, posB)
	if !ok {
		t.Fatal("consecutive block did not merge")
	}
	if head != 100 || size != 4 {
		t.Errorf("merged head=%d size=%d, want 100,4", head, size)
	}
}

func TestMergeOverlapping(t *testing.T) {
	h := newHistory(8)
	h.push(100, 10, 3)                           // covers 100..103
	head, size, ok := h.merge(102, 4, 30, 8, -1) // covers 102..106
	if !ok || head != 100 || size != 6 {
		t.Errorf("overlap merge: head=%d size=%d ok=%v", head, size, ok)
	}
	// Merging must not shrink: absorb a smaller contained block.
	_, size, ok = h.merge(101, 1, 40, 8, -1)
	if !ok || size != 6 {
		t.Errorf("contained merge shrank: size=%d ok=%v", size, ok)
	}
}

func TestMergeRefusesOversize(t *testing.T) {
	h := newHistory(8)
	h.push(100, 10, 60)
	if _, _, ok := h.merge(161, 10, 50, 8, -1); ok {
		t.Error("merge exceeding 63 lines accepted")
	}
}

func TestMergeWindowLimits(t *testing.T) {
	h := newHistory(8)
	h.push(100, 10, 2)
	h.push(500, 20, 0)
	h.push(600, 30, 0)
	// Window 2 only sees 600 and 500: no merge with 100's block.
	if _, _, ok := h.merge(103, 1, 60, 2, -1); ok {
		t.Error("merge found entry outside window")
	}
	if _, _, ok := h.merge(103, 1, 60, 3, -1); !ok {
		t.Error("merge within window failed")
	}
}

func TestMergeSkipsOwnEntry(t *testing.T) {
	h := newHistory(8)
	pos := h.push(100, 10, 2)
	// The block's own entry must not absorb itself.
	if _, _, ok := h.merge(100, 2, 70, 8, pos); ok {
		t.Error("block merged into itself")
	}
}

func TestTimestampHelpers(t *testing.T) {
	if wrapTS(1<<20) != 0 || wrapTS(1<<20+5) != 5 {
		t.Error("wrapTS wrong")
	}
	if tsDiff(5, tsMask-4) != 10 {
		t.Errorf("tsDiff wrap = %d, want 10", tsDiff(5, tsMask-4))
	}
}

func TestNewHistoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newHistory(0)
}
