package core

// sizeTable is the separate basic-block-size structure of the paper's
// future-work split design (§III-C3): when basic-block sizes and
// entangled pairs live in different structures, a source that only
// carries a size does not occupy a 63-bit destination array, so a
// low-budget configuration can track many more blocks.
//
// Entries are direct-mapped and cost tag + 6 bits each.
type sizeTable struct {
	entries []sizeEntry
	tagBits int
}

type sizeEntry struct {
	tag   uint16
	size  uint8
	valid bool
}

func newSizeTable(n, tagBits int) *sizeTable {
	if n <= 0 {
		panic("core: size table needs entries")
	}
	// Round up to a power of two for cheap indexing.
	size := 1
	for size < n {
		size <<= 1
	}
	if tagBits <= 0 {
		tagBits = defaultTagBits
	}
	return &sizeTable{entries: make([]sizeEntry, size), tagBits: tagBits}
}

func (t *sizeTable) index(line uint64) int {
	h := line
	h ^= h >> 11
	h ^= h >> 23
	return int(h % uint64(len(t.entries)))
}

func (t *sizeTable) tagOf(line uint64) uint16 {
	h := line / uint64(len(t.entries))
	h ^= h >> t.tagBits
	return uint16(h & (1<<t.tagBits - 1))
}

// record keeps the maximum size seen for the head, as the unified
// table does.
func (t *sizeTable) record(line uint64, size uint8) {
	if size > 63 {
		size = 63
	}
	e := &t.entries[t.index(line)]
	tag := t.tagOf(line)
	if e.valid && e.tag == tag {
		if size > e.size {
			e.size = size
		}
		return
	}
	*e = sizeEntry{tag: tag, size: size, valid: true}
}

// lookup returns the recorded size for the head.
func (t *sizeTable) lookup(line uint64) (uint8, bool) {
	e := &t.entries[t.index(line)]
	if e.valid && e.tag == t.tagOf(line) {
		return e.size, true
	}
	return 0, false
}

// bits returns the structure's storage cost.
func (t *sizeTable) bits() uint64 {
	return uint64(len(t.entries) * (t.tagBits + 6))
}
