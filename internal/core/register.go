package core

import "entangling/internal/prefetch"

// factory adapts a Config into a prefetch.Factory.
func factory(cfg Config) prefetch.Factory {
	return func(is prefetch.Issuer) prefetch.Prefetcher { return New(cfg, is) }
}

// Factory returns a prefetch.Factory for an arbitrary configuration.
func Factory(cfg Config) prefetch.Factory { return factory(cfg) }

func init() {
	prefetch.Register("entangling-2k", factory(Config2K(Virtual)))
	prefetch.Register("entangling-4k", factory(Config4K(Virtual)))
	prefetch.Register("entangling-8k", factory(Config8K(Virtual)))
	prefetch.Register("epi", factory(ConfigEPI()))

	// Ablation variants of Figure 11 on the 4K configuration.
	for _, v := range []Variant{VariantBB, VariantBBEnt, VariantBBEntBB, VariantEnt} {
		v := v
		for _, mk := range []struct {
			suffix string
			cfg    func(AddressSpace) Config
		}{
			{"2k", Config2K}, {"4k", Config4K}, {"8k", Config8K},
		} {
			cfg := mk.cfg(Virtual)
			cfg.Variant = v
			cfg.Name = cfg.Name + "-" + v.String()
			if v != VariantFull {
				cfg.MergeWindow = 0
			}
			prefetch.Register("entangling-"+mk.suffix+"-"+v.String(), factory(cfg))
		}
	}

	// Future-work split design (§III-C3): sizes and pairs in separate
	// structures, most interesting at low budgets.
	for _, mk := range []struct {
		name string
		cfg  func(AddressSpace) Config
	}{
		{"entangling-2k-split", Config2K},
		{"entangling-4k-split", Config4K},
		{"entangling-8k-split", Config8K},
	} {
		cfg := mk.cfg(Virtual)
		cfg.Name = mk.name
		cfg.SplitTable = true
		prefetch.Register(mk.name, factory(cfg))
	}

	// The rejected context-replication variant (§III-B1), kept as a
	// reproducible negative result.
	{
		cfg := Config4K(Virtual)
		cfg.Name = "entangling-4k-ctx"
		cfg.ContextBits = 8
		prefetch.Register("entangling-4k-ctx", factory(cfg))
	}

	// Prefetch-on-retire (§III-C1): triggers wait for the triggering
	// instruction to retire, trading timeliness for wrong-path safety.
	// The delay models a full-pipeline drain (~20 cycles).
	{
		cfg := Config4K(Virtual)
		cfg.Name = "entangling-4k-retire"
		cfg.RetireDelay = 20
		prefetch.Register("entangling-4k-retire", factory(cfg))
	}

	// Physical-address configurations (§IV-E).
	for _, mk := range []struct {
		name string
		cfg  func(AddressSpace) Config
	}{
		{"entangling-2k-phys", Config2K},
		{"entangling-4k-phys", Config4K},
		{"entangling-8k-phys", Config8K},
	} {
		cfg := mk.cfg(Physical)
		cfg.Name = mk.name
		prefetch.Register(mk.name, factory(cfg))
	}
}
