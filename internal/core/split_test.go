package core

import "testing"

func TestSizeTableRecordLookup(t *testing.T) {
	st := newSizeTable(100, 10) // rounds up to 128
	if len(st.entries) != 128 {
		t.Fatalf("size %d, want 128", len(st.entries))
	}
	st.record(1000, 3)
	if sz, ok := st.lookup(1000); !ok || sz != 3 {
		t.Errorf("lookup = %d,%v", sz, ok)
	}
	// Max semantics like the unified table.
	st.record(1000, 1)
	if sz, _ := st.lookup(1000); sz != 3 {
		t.Errorf("size decreased: %d", sz)
	}
	st.record(1000, 9)
	if sz, _ := st.lookup(1000); sz != 9 {
		t.Errorf("size not raised: %d", sz)
	}
	// Cap at 63.
	st.record(1000, 100)
	if sz, _ := st.lookup(1000); sz != 63 {
		t.Errorf("size not capped: %d", sz)
	}
	if _, ok := st.lookup(555); ok {
		t.Error("unknown head found")
	}
}

func TestSizeTableConflictReplaces(t *testing.T) {
	st := newSizeTable(2, 10)
	var a, b uint64
	// Find two lines mapping to the same index with different tags.
	a = 1
	for b = 2; b < 1_000_000; b++ {
		if st.index(b) == st.index(a) && st.tagOf(b) != st.tagOf(a) {
			break
		}
	}
	st.record(a, 5)
	st.record(b, 7)
	if _, ok := st.lookup(a); ok {
		t.Error("conflicting entry not replaced")
	}
	if sz, ok := st.lookup(b); !ok || sz != 7 {
		t.Errorf("replacement lost: %d %v", sz, ok)
	}
}

func TestSizeTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newSizeTable(0, 10)
}

func TestSplitConfigStorageCheaper(t *testing.T) {
	unified := New(Config2K(Virtual), &mockIssuer{})
	split := Config2K(Virtual)
	split.SplitTable = true
	sp := New(split, &mockIssuer{})
	if sp.StorageBits() >= unified.StorageBits() {
		t.Errorf("split (%d bits) should undercut unified (%d bits) at the 2K budget",
			sp.StorageBits(), unified.StorageBits())
	}
	if sp.sizes == nil {
		t.Fatal("split config did not build a size table")
	}
	// Twice the size-tracking reach.
	if len(sp.sizes.entries) < 2*2048 {
		t.Errorf("size table too small: %d", len(sp.sizes.entries))
	}
}

func TestSplitFunctional(t *testing.T) {
	cfg := Config4K(Virtual)
	cfg.SplitTable = true
	cfg.TableLatency = 0
	is := &mockIssuer{}
	e := New(cfg, is)

	// Learn a block (100, +2 lines) and a pair (src -> 300 with block).
	access(e, 0, 100, true)
	access(e, 1, 101, true)
	access(e, 2, 102, true)
	access(e, 10, 300, true)
	access(e, 12, 301, true)
	access(e, 50, 200, true) // completes 300's block
	access(e, 100, 400, false)
	fill(e, 100, 150, 400)

	// Block prefetch must come from the size table even though no
	// entangled pairs exist for head 100.
	is.reqs = nil
	access(e, 1000, 100, true)
	if !hasLine(is, 101) || !hasLine(is, 102) {
		t.Errorf("split size table did not drive block prefetch: %v", is.lines())
	}
}

func TestContextVariantRuns(t *testing.T) {
	cfg := Config4K(Virtual)
	cfg.ContextBits = 8
	cfg.TableLatency = 0
	is := &mockIssuer{}
	e := New(cfg, is)

	// Different contexts key the same source line differently.
	k0 := e.srcKey(100)
	e.OnBranch(callEvent(0x4000, 0x8000))
	k1 := e.srcKey(100)
	if k0 == k1 {
		t.Error("context did not change the source key")
	}
	// Returning restores the outer context key.
	e.OnBranch(retEvent(0x8010))
	if e.srcKey(100) != k0 {
		t.Error("return did not restore the context")
	}
	// Keys stay within the line-address space.
	if k1 > lineMask(Virtual) {
		t.Errorf("context key %#x outside line space", k1)
	}
}

func hasLine(is *mockIssuer, line uint64) bool {
	for _, r := range is.reqs {
		if r.line == line {
			return true
		}
	}
	return false
}

func TestRetireDelayPostponesPrefetches(t *testing.T) {
	cfg := Config4K(Virtual)
	cfg.TableLatency = 0
	cfg.RetireDelay = 20
	is := &mockIssuer{}
	e := New(cfg, is)
	access(e, 0, 100, true)
	access(e, 1, 101, true)
	access(e, 10, 200, true) // completes block 100 (size 1)
	is.reqs = nil
	access(e, 100, 100, true)
	if len(is.reqs) == 0 {
		t.Fatal("no prefetch issued")
	}
	for _, r := range is.reqs {
		if r.notBefore != 120 {
			t.Errorf("notBefore = %d, want 120 (access 100 + retire delay 20)", r.notBefore)
		}
	}
}
