package core

import (
	"testing"
	"testing/quick"
)

func TestGeometryTables(t *testing.T) {
	// Table I: 3-bit mode + 60 payload bits; modes 1..6 with
	// 58/28/18/13/10/8 significant bits (+2 confidence each).
	if DstArrayBits(Virtual) != 63 {
		t.Errorf("virtual array bits = %d, want 63", DstArrayBits(Virtual))
	}
	wantV := []int{58, 28, 18, 13, 10, 8}
	for k, want := range wantV {
		if got := SigBits(Virtual, k+1); got != want {
			t.Errorf("virtual mode %d: %d bits, want %d", k+1, got, want)
		}
		// k destinations x (sig + conf) must fit in the 60-bit payload.
		if (k+1)*(want+confBits) > 60 {
			t.Errorf("virtual mode %d overflows payload", k+1)
		}
	}
	if MaxMode(Virtual) != 6 {
		t.Errorf("virtual MaxMode = %d", MaxMode(Virtual))
	}

	// Table II: 2-bit mode + 44 payload bits; modes 1..4 with
	// 42/20/12/9 significant bits.
	if DstArrayBits(Physical) != 46 {
		t.Errorf("physical array bits = %d, want 46", DstArrayBits(Physical))
	}
	wantP := []int{42, 20, 12, 9}
	for k, want := range wantP {
		if got := SigBits(Physical, k+1); got != want {
			t.Errorf("physical mode %d: %d bits, want %d", k+1, got, want)
		}
		if (k+1)*(want+confBits) > 44 {
			t.Errorf("physical mode %d overflows payload", k+1)
		}
	}
	if MaxMode(Physical) != 4 {
		t.Errorf("physical MaxMode = %d", MaxMode(Physical))
	}
	if LineBits(Virtual) != 58 || LineBits(Physical) != 42 {
		t.Error("line bits wrong")
	}
}

func TestSigBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mode 0")
		}
	}()
	SigBits(Virtual, 0)
}

func TestNeededBits(t *testing.T) {
	cases := []struct {
		src, dst uint64
		want     int
	}{
		{0x1000, 0x1000, 1}, // equal
		{0x1000, 0x1001, 1}, // differ in bit 0
		{0x1000, 0x1002, 2}, // differ in bit 1
		{0x1000, 0x1100, 9}, // differ in bit 8
		{0, 1 << 57, 58},    // top line bit
	}
	for _, c := range cases {
		if got := neededBits(Virtual, c.src, c.dst); got != c.want {
			t.Errorf("neededBits(%#x,%#x) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestModeFor(t *testing.T) {
	// Virtual: need<=8 -> mode 6; <=10 -> 5; <=13 -> 4; <=18 -> 3;
	// <=28 -> 2; else 1.
	cases := []struct{ need, want int }{
		{1, 6}, {8, 6}, {9, 5}, {10, 5}, {11, 4}, {13, 4}, {14, 3},
		{18, 3}, {19, 2}, {28, 2}, {29, 1}, {58, 1},
	}
	for _, c := range cases {
		if got := modeFor(Virtual, c.need); got != c.want {
			t.Errorf("modeFor(%d) = %d, want %d", c.need, got, c.want)
		}
	}
}

func TestCompressRoundTrip(t *testing.T) {
	// Whenever mode's budget covers the src/dst difference, decompress
	// must reconstruct dst exactly.
	f := func(src, dst uint64) bool {
		for _, space := range []AddressSpace{Virtual, Physical} {
			s := src & lineMask(space)
			d := dst & lineMask(space)
			need := neededBits(space, s, d)
			for mode := 1; mode <= MaxMode(space); mode++ {
				if SigBits(space, mode) < need {
					continue
				}
				sig := compressDst(space, mode, d)
				if got := decompressDst(space, mode, s, sig); got != d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCompressNearbyAlwaysMode6(t *testing.T) {
	// Destinations within 255 lines of the source need at most 8 bits
	// when the low bytes dominate the difference; specifically, lines
	// sharing all but the low 8 bits compress to the densest mode.
	src := uint64(0x4000_00)
	for d := uint64(0); d < 256; d++ {
		dst := src&^uint64(0xFF) | d
		if neededBits(Virtual, src, dst) > 8 {
			t.Fatalf("dst %#x should need <= 8 bits", dst)
		}
	}
}

func TestDecompressUsesSourceHighBits(t *testing.T) {
	// With a *different* source, reconstruction gives a different line:
	// the aliasing cost of compression the design accepts.
	src1, dst := uint64(0x10000), uint64(0x10003)
	sig := compressDst(Virtual, 6, dst)
	src2 := uint64(0x20000)
	got := decompressDst(Virtual, 6, src2, sig)
	if got == dst {
		t.Error("reconstruction should depend on the source's high bits")
	}
	if got != 0x20003 {
		t.Errorf("got %#x, want 0x20003", got)
	}
	_ = src1
}
