package core

import (
	"testing"

	"entangling/internal/cache"
	"entangling/internal/prefetch"
	"entangling/internal/trace"
)

// mockIssuer records prefetch requests.
type mockIssuer struct {
	reqs []mockReq
	full bool
}

type mockReq struct {
	notBefore uint64
	line      uint64
	meta      uint64
}

func (m *mockIssuer) Prefetch(notBefore uint64, line uint64, meta uint64) bool {
	if m.full {
		return false
	}
	m.reqs = append(m.reqs, mockReq{notBefore, line, meta})
	return true
}

func (m *mockIssuer) lines() []uint64 {
	out := make([]uint64, len(m.reqs))
	for i, r := range m.reqs {
		out[i] = r.line
	}
	return out
}

func access(e *Entangling, cycle, line uint64, hit bool) {
	e.OnAccess(cache.AccessEvent{Cycle: cycle, LineAddr: line, Hit: hit})
}

func fill(e *Entangling, issue, fillCycle, line uint64) {
	e.OnFill(cache.FillEvent{Cycle: fillCycle, LineAddr: line, IssueCycle: issue, Demanded: true})
}

func smallCfg() Config {
	cfg := Config4K(Virtual)
	cfg.TableLatency = 0
	return cfg
}

// walkSequence replays: head A (3 lines), head B (1 line), miss at head
// D with a given latency, then fill — the paper's Figure 3 scenario.
func TestEntanglePairCreatedWithTimelySource(t *testing.T) {
	is := &mockIssuer{}
	e := New(smallCfg(), is)

	// BB1: head 100 at cycle 0, grows to 102.
	access(e, 0, 100, true)
	access(e, 1, 101, true)
	access(e, 2, 102, true)
	// BB2: head 200 at cycle 50.
	access(e, 50, 200, true)
	// BB3: head 300 misses at cycle 100; fill at cycle 160 (latency 60).
	access(e, 100, 300, false)
	fill(e, 100, 160, 300)

	// Source must be accessed >= 60 cycles before the miss: head 100
	// (age 100) qualifies; head 200 (age 50) does not.
	entry := e.table.lookup(100)
	if entry == nil || entry.ndst != 1 || entry.dsts[0].line != 300 {
		t.Fatalf("pair (100 -> 300) not created: %+v", entry)
	}
	if got := e.table.lookup(200); got != nil && got.ndst != 0 {
		t.Error("too-recent head 200 received the destination")
	}
	if e.Stats().PairsInserted != 1 {
		t.Errorf("PairsInserted = %d", e.Stats().PairsInserted)
	}
}

func TestTriggerPrefetchesBlockAndDestinations(t *testing.T) {
	is := &mockIssuer{}
	e := New(smallCfg(), is)

	// Teach: block at 100 has 2 following lines; dst 300 entangled with
	// block size 1.
	access(e, 0, 100, true)
	access(e, 1, 101, true)
	access(e, 2, 102, true)
	access(e, 10, 300, true)
	access(e, 12, 301, true)
	access(e, 50, 200, true) // complete 300's block (size 1)
	access(e, 100, 400, false)
	fill(e, 100, 150, 400) // pair: some source -> 400

	// Entangle 300 again through the mechanism: a new miss at 300.
	access(e, 1000, 100, true)
	access(e, 1001, 101, true)
	access(e, 1002, 102, true)
	access(e, 1030, 300, false)
	fill(e, 1030, 1060, 300)

	// Locate the source the backward history walk chose for dst 300.
	var src uint64
	for i := range e.table.entries {
		for _, d := range e.table.entries[i].dstSlots() {
			if d.line == 300 {
				src = e.table.entries[i].debugLine
			}
		}
	}
	if src == 0 {
		t.Fatal("no pair with destination 300 was created")
	}

	// Make 100 current again so the access below completes a block and
	// then triggers on src. Accessing src must prefetch the destination
	// 300 plus 300's block (301); accessing 100 must prefetch its block
	// lines (101, 102).
	is.reqs = nil
	access(e, 2000, 100, true)
	access(e, 2010, src, true)
	want := map[uint64]bool{101: true, 102: true, 300: true, 301: true}
	got := map[uint64]bool{}
	for _, l := range is.lines() {
		got[l] = true
	}
	for l := range want {
		if !got[l] {
			t.Errorf("line %d not prefetched; got %v", l, is.lines())
		}
	}
	// The destination prefetch carries confidence metadata; block lines
	// do not.
	for _, r := range is.reqs {
		if r.line == 300 && r.meta == 0 {
			t.Error("destination prefetch lacks metadata")
		}
		if (r.line == 101 || r.line == 102) && r.meta != 0 {
			t.Error("block-line prefetch carries metadata")
		}
	}
}

func TestTableLatencyDelaysPrefetch(t *testing.T) {
	cfg := smallCfg()
	cfg.TableLatency = 5
	is := &mockIssuer{}
	e := New(cfg, is)
	access(e, 0, 100, true)
	access(e, 1, 101, true)
	access(e, 10, 200, true) // completes block 100 (size 1)
	is.reqs = nil
	access(e, 100, 100, true) // trigger
	if len(is.reqs) == 0 {
		t.Fatal("no prefetch issued")
	}
	for _, r := range is.reqs {
		if r.notBefore != 105 {
			t.Errorf("notBefore = %d, want 105", r.notBefore)
		}
	}
}

func TestConfidenceLifecycle(t *testing.T) {
	is := &mockIssuer{}
	e := New(smallCfg(), is)
	// Create pair 100 -> 300.
	access(e, 0, 100, true)
	access(e, 50, 200, true)
	access(e, 100, 300, false)
	fill(e, 100, 160, 300)
	entry, set, way := e.table.lookupPos(100)
	if entry == nil || entry.ndst != 1 {
		t.Fatal("pair missing")
	}
	if entry.dsts[0].conf != maxConf {
		t.Fatalf("initial conf = %d, want %d", entry.dsts[0].conf, maxConf)
	}
	meta := prefetchMeta(set, way, entry.tag)

	// Wrong prefetch: eviction unaccessed decrements.
	e.OnEvict(cache.EvictEvent{LineAddr: 300, Prefetched: true, Accessed: false, Meta: meta})
	if entry.dsts[0].conf != maxConf-1 {
		t.Errorf("conf after wrong = %d", entry.dsts[0].conf)
	}
	// Timely hit increments.
	e.OnAccess(cache.AccessEvent{Cycle: 1, LineAddr: 300, Hit: true, WasPrefetched: true, FirstUse: true, Meta: meta})
	if entry.dsts[0].conf != maxConf {
		t.Errorf("conf after timely = %d", entry.dsts[0].conf)
	}
	// Three consecutive wrongs kill the pair.
	for i := 0; i < 3; i++ {
		e.OnEvict(cache.EvictEvent{LineAddr: 300, Prefetched: true, Accessed: false, Meta: meta})
	}
	if entry.ndst != 0 {
		t.Errorf("dead pair not dropped: %+v", entry.dsts)
	}
	s := e.Stats()
	if s.ConfidenceUp != 1 || s.ConfidenceDown != 4 {
		t.Errorf("conf stats up=%d down=%d", s.ConfidenceUp, s.ConfidenceDown)
	}
}

func TestLatePrefetchDecrementsConfidence(t *testing.T) {
	is := &mockIssuer{}
	e := New(smallCfg(), is)
	access(e, 0, 100, true)
	access(e, 100, 300, false)
	fill(e, 100, 160, 300)
	entry, set, way := e.table.lookupPos(100)
	meta := prefetchMeta(set, way, entry.tag)
	e.OnAccess(cache.AccessEvent{Cycle: 1, LineAddr: 300, LatePrefetch: true, MSHRHit: true, Meta: meta})
	if entry.dsts[0].conf != maxConf-1 {
		t.Errorf("conf after late = %d", entry.dsts[0].conf)
	}
}

func TestStaleMetaIgnored(t *testing.T) {
	is := &mockIssuer{}
	e := New(smallCfg(), is)
	access(e, 0, 100, true)
	access(e, 100, 300, false)
	fill(e, 100, 160, 300)
	entry, set, way := e.table.lookupPos(100)
	// Forge metadata with a wrong tag: must be ignored.
	bad := prefetchMeta(set, way, entry.tag^1)
	e.OnEvict(cache.EvictEvent{LineAddr: 300, Prefetched: true, Accessed: false, Meta: bad})
	if entry.dsts[0].conf != maxConf {
		t.Error("stale metadata mutated confidence")
	}
	// Zero meta is a no-op.
	e.OnEvict(cache.EvictEvent{LineAddr: 300, Prefetched: true, Accessed: false, Meta: 0})
	if entry.dsts[0].conf != maxConf {
		t.Error("zero metadata mutated confidence")
	}
}

func TestBodyMissDoesNotTrain(t *testing.T) {
	is := &mockIssuer{}
	e := New(smallCfg(), is)
	access(e, 0, 100, true)  // head
	access(e, 1, 101, false) // body line misses: no history pointer
	fill(e, 1, 60, 101)
	for i := range e.table.entries {
		for _, d := range e.table.entries[i].dstSlots() {
			if d.line == 101 {
				t.Fatal("body-line miss created an entangled pair")
			}
		}
	}
}

func TestMergePropagatesToTable(t *testing.T) {
	cfg := smallCfg() // MergeWindow 6, VariantFull
	is := &mockIssuer{}
	e := New(cfg, is)
	// Block A: 100..101. Then block C at 102 (consecutive): merged.
	access(e, 0, 100, true)
	access(e, 1, 101, true)
	access(e, 10, 500, true) // completes A (size 1), new head 500
	access(e, 20, 102, true) // head C, consecutive with A's span
	access(e, 30, 600, true) // completes C -> merge into A
	if e.Stats().Merges == 0 {
		t.Fatal("no merge happened")
	}
	a := e.table.lookup(100)
	if a == nil || a.bbSize < 2 {
		t.Errorf("merged size not propagated: %+v", a)
	}
	if c := e.table.lookup(102); c != nil && c.bbSize > 0 {
		t.Error("merged block recorded its own size entry")
	}
}

func TestVariantBBOnlyPrefetchesBlock(t *testing.T) {
	cfg := smallCfg()
	cfg.Variant = VariantBB
	is := &mockIssuer{}
	e := New(cfg, is)
	// Train a pair and a block.
	access(e, 0, 100, true)
	access(e, 1, 101, true)
	access(e, 50, 200, true)
	access(e, 100, 300, false)
	fill(e, 100, 160, 300)
	is.reqs = nil
	access(e, 1000, 100, true)
	for _, l := range is.lines() {
		if l == 300 {
			t.Error("VariantBB prefetched a destination")
		}
	}
}

func TestVariantEntNoBlocks(t *testing.T) {
	cfg := smallCfg()
	cfg.Variant = VariantEnt
	is := &mockIssuer{}
	e := New(cfg, is)
	access(e, 0, 100, true)
	access(e, 100, 300, false)
	fill(e, 100, 160, 300)
	is.reqs = nil
	access(e, 1000, 100, true)
	// Destination prefetched, but no block lines.
	foundDst := false
	for _, l := range is.lines() {
		if l == 300 {
			foundDst = true
		}
		if l == 101 || l == 301 {
			t.Errorf("VariantEnt prefetched block line %d", l)
		}
	}
	if !foundDst {
		t.Error("VariantEnt did not prefetch the destination")
	}
}

func TestSecondSourceFallback(t *testing.T) {
	is := &mockIssuer{}
	e := New(smallCfg(), is)
	// Two old heads, both eligible sources.
	access(e, 0, 1000, true)
	access(e, 10, 2000, true)
	// Fill 2000's entry (the most recent eligible source) to capacity
	// with far destinations (mode 1 -> capacity 1).
	e.table.addDst(2000, 2000^0x40000000)
	// Miss: both 2000 (age 100) and 1000 (age 110) qualify (latency 50).
	access(e, 110, 3000, false)
	fill(e, 110, 160, 3000)
	// 2000 is full; the pair must land on 1000 (second source).
	e1000 := e.table.lookup(1000)
	found := false
	if e1000 != nil {
		for _, d := range e1000.dstSlots() {
			if d.line == 3000 {
				found = true
			}
		}
	}
	if !found {
		t.Error("second-source fallback did not place the pair on the older head")
	}
}

func TestStorageBitsMatchPaper(t *testing.T) {
	cases := []struct {
		cfg  Config
		want float64 // KB
	}{
		{Config2K(Virtual), 20.87},
		{Config4K(Virtual), 40.74},
		{Config8K(Virtual), 77.44},
		{Config2K(Physical), 16.59},
		{Config4K(Physical), 32.21},
		{Config8K(Physical), 63.40},
	}
	for _, c := range cases {
		e := New(c.cfg, &mockIssuer{})
		gotKB := float64(e.StorageBits()) / 8 / 1024
		if gotKB < c.want*0.97 || gotKB > c.want*1.03 {
			t.Errorf("%s (%v): %.2fKB, paper says %.2fKB", c.cfg.Name, c.cfg.Space, gotKB, c.want)
		}
	}
	// EPI reports the paper's quoted number.
	epi := New(ConfigEPI(), &mockIssuer{})
	if kb := float64(epi.StorageBits()) / 8 / 1024; kb < 127 || kb > 129 {
		t.Errorf("EPI storage = %.2fKB", kb)
	}
}

func TestNameAndInterfaces(t *testing.T) {
	e := New(Config4K(Virtual), &mockIssuer{})
	if e.Name() != "entangling-4k" {
		t.Errorf("Name = %q", e.Name())
	}
	var _ prefetch.Prefetcher = e
	e.OnBranch(prefetch.BranchEvent{}) // must be a no-op
	if e.Config().Sets != 256 {
		t.Error("Config() accessor wrong")
	}
}

func TestVariantStrings(t *testing.T) {
	want := map[Variant]string{
		VariantFull: "BBEntBB-Merge", VariantBB: "BB", VariantBBEnt: "BBEnt",
		VariantBBEntBB: "BBEntBB", VariantEnt: "Ent",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), s)
		}
	}
	if Variant(99).String() == "" {
		t.Error("unknown variant String empty")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Sets: 0, Ways: 4}, &mockIssuer{})
}

func TestMetaRoundTrip(t *testing.T) {
	for _, c := range []struct {
		set, way int
		tag      uint16
	}{{0, 0, 0}, {511, 15, 1023}, {255, 33, 512}} {
		m := prefetchMeta(c.set, c.way, c.tag)
		set, way, tag, ok := decodeMeta(m)
		if !ok || set != c.set || way != c.way || tag != c.tag {
			t.Errorf("meta round trip failed: %+v -> %d %d %d %v", c, set, way, tag, ok)
		}
	}
	if _, _, _, ok := decodeMeta(0); ok {
		t.Error("zero meta decoded as valid")
	}
}

func callEvent(pc, target uint64) prefetch.BranchEvent {
	return prefetch.BranchEvent{PC: pc, Type: trace.DirectCall, Taken: true, Target: target}
}

func retEvent(pc uint64) prefetch.BranchEvent {
	return prefetch.BranchEvent{PC: pc, Type: trace.Return, Taken: true}
}
