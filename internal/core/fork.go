package core

import "entangling/internal/prefetch"

// This file implements prefetch.Forkable for the Entangling
// prefetcher, so warmed entangled state (table, history buffer, split
// size table, pending candidate snapshots) can be deep-copied into a
// forked machine for warmup-snapshot reuse.

// assert interface compliance.
var _ prefetch.Forkable = (*Entangling)(nil)

// clone returns an independent copy of the entangled table.
func (t *entangledTable) clone() *entangledTable {
	c := *t
	c.entries = append([]tableEntry(nil), t.entries...)
	c.fifoPtr = append([]int(nil), t.fifoPtr...)
	return &c
}

// clone returns an independent copy of the history buffer.
func (h *historyBuffer) clone() *historyBuffer {
	c := *h
	c.entries = append([]historyEntry(nil), h.entries...)
	return &c
}

// clone returns an independent copy of the split-design size table.
func (t *sizeTable) clone() *sizeTable {
	c := *t
	c.entries = append([]sizeEntry(nil), t.entries...)
	return &c
}

// Fork implements prefetch.Forkable: an independent deep copy bound to
// issuer. The pending slots' candidate-snapshot buffers are reused
// in-place across misses by snapshotInto, so each valid slot's backing
// slices must be copied — a shared buffer would let the fork's next
// snapshot overwrite the original's outstanding one.
func (e *Entangling) Fork(issuer prefetch.Issuer) prefetch.Prefetcher {
	f := *e
	f.issuer = issuer
	f.table = e.table.clone()
	f.hist = e.hist.clone()
	if e.sizes != nil {
		f.sizes = e.sizes.clone()
	}
	f.ctxStack = append([]uint64(nil), e.ctxStack...)
	for i := range f.pending {
		p := &f.pending[i]
		p.snap.lines = append([]uint64(nil), e.pending[i].snap.lines...)
		p.snap.ts = append([]uint32(nil), e.pending[i].snap.ts...)
	}
	return &f
}
