package core

// entangledTable is the paper's Entangled table (§III-A, Figure 4): a
// set-associative structure whose entries pair a source line (10-bit
// tag) with its maximum basic-block size and a mode-compressed array of
// destination lines, each with a 2-bit confidence counter.
//
// Replacement is the paper's enhanced FIFO (§III-C3): the per-set FIFO
// victim's payload can be relocated into a way that holds no entangled
// pairs, so sources with destinations survive longer than bare
// basic-block-size entries.
type entangledTable struct {
	space   AddressSpace
	sets    int
	ways    int
	tagBits int

	entries []tableEntry
	fifoPtr []int

	// Stats feeding Figures 12-15.
	// insertsBySig[mode-1] counts destination inserts whose needed bits
	// fall in that mode's significant-bit bucket. A fixed array (hot
	// per-insert path) instead of a map; insertHistogram rebuilds the
	// bucket-keyed map view for Stats.
	insertsBySig [maxDstSlots]uint64
	dstEvicted   uint64
	relocations  uint64
	extraLookups uint64
	aliasHits    uint64
}

// maxDstSlots is the largest destination count any mode allows (mode 6
// of the virtual geometry, Table I); the physical geometry uses at most
// 4 of the slots. Sizing entries to the hardware maximum keeps the
// whole table allocation-free after construction.
const maxDstSlots = 6

type tableEntry struct {
	tag uint16 // 10-bit tag
	// debugLine is the full source line address, used only for alias
	// diagnostics (hardware stores just the folded tag).
	debugLine uint64
	valid     bool
	bbSize    uint8 // 6-bit max basic-block size
	mode      uint8 // current compression mode (1-based); 0 = none yet
	// dsts[:ndst] holds the destinations semantically (full line
	// addresses plus the bit budget each needs); the mode bounds ndst
	// and every needed-bit count, exactly as the packed hardware
	// encoding would. The backing array is fixed-capacity, mirroring
	// the hardware's bounded destination array.
	dsts [maxDstSlots]dstSlot
	ndst int
}

// dstSlots returns the valid destinations as a slice view.
func (e *tableEntry) dstSlots() []dstSlot { return e.dsts[:e.ndst] }

// removeDst deletes the destination at index i, keeping order.
func (e *tableEntry) removeDst(i int) {
	copy(e.dsts[i:], e.dsts[i+1:e.ndst])
	e.ndst--
	e.dsts[e.ndst] = dstSlot{}
}

type dstSlot struct {
	line uint64 // full destination line address
	need uint8  // significant bits required relative to its source
	conf uint8  // 2-bit confidence
}

// defaultTagBits is the stored tag width (§III-C3: "tags are encoded
// using 10 bits"); aliasing across the folded bits is part of the cost
// model.
const defaultTagBits = 10

func newTable(space AddressSpace, sets, ways, tagBits int) *entangledTable {
	if sets <= 0 || ways <= 0 {
		panic("core: table needs positive sets and ways")
	}
	if tagBits <= 0 {
		tagBits = defaultTagBits
	}
	return &entangledTable{
		space:   space,
		sets:    sets,
		ways:    ways,
		tagBits: tagBits,
		entries: make([]tableEntry, sets*ways),
		fifoPtr: make([]int, sets),
	}
}

// insertHistogram rebuilds the Figure 12 map view (needed-bit bucket ->
// insert count) from the per-mode counters.
func (t *entangledTable) insertHistogram() map[int]uint64 {
	g := geometries[t.space]
	out := make(map[int]uint64, len(g.sigBits))
	for i, v := range t.insertsBySig {
		if v != 0 && i < len(g.sigBits) {
			out[g.sigBits[i]] = v
		}
	}
	return out
}

// index hashes a line address to its set with a simple XOR fold
// (§III-C2: "indexed with a simple XOR operation of the different bits
// of the address").
func (t *entangledTable) index(line uint64) int {
	h := line
	h ^= h >> 9
	h ^= h >> 18
	h ^= h >> 36
	return int(h % uint64(t.sets))
}

// tag folds the bits above the set index into the stored tag width.
func (t *entangledTable) tag(line uint64) uint16 {
	h := line / uint64(t.sets)
	h ^= h >> t.tagBits
	h ^= h >> (2 * t.tagBits)
	return uint16(h & (1<<t.tagBits - 1))
}

// set returns the ways of the set holding line.
func (t *entangledTable) set(line uint64) []tableEntry {
	s := t.index(line)
	return t.entries[s*t.ways : (s+1)*t.ways]
}

// lookup returns the entry matching line, or nil.
func (t *entangledTable) lookup(line uint64) *tableEntry {
	set := t.set(line)
	tag := t.tag(line)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// lookupPos returns the entry matching line along with its set and
// way, or (nil, -1, -1).
func (t *entangledTable) lookupPos(line uint64) (*tableEntry, int, int) {
	s := t.index(line)
	set := t.entries[s*t.ways : (s+1)*t.ways]
	tag := t.tag(line)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i], s, i
		}
	}
	return nil, -1, -1
}

// entryAt returns the entry at (set, way), or nil when out of range.
func (t *entangledTable) entryAt(set, way int) *tableEntry {
	if set < 0 || set >= t.sets || way < 0 || way >= t.ways {
		return nil
	}
	return &t.entries[set*t.ways+way]
}

// recordBlock records (or refreshes) a source's basic-block size,
// keeping the maximum seen (§III-A1, a coverage-vs-false-positive
// trade the paper makes explicit). It allocates the entry if needed.
func (t *entangledTable) recordBlock(line uint64, size uint8) *tableEntry {
	if size > 63 {
		size = 63
	}
	e := t.lookup(line)
	if e == nil {
		e = t.allocate(line)
	}
	if size > e.bbSize {
		e.bbSize = size
	}
	return e
}

// hasFreeDst reports whether the entry could accept (src->dst) without
// evicting an existing destination: the combined mode must still have
// capacity.
func (t *entangledTable) hasFreeDst(e *tableEntry, src, dst uint64) bool {
	need := neededBits(t.space, src, dst)
	maxNeed := need
	for i := 0; i < e.ndst; i++ {
		if int(e.dsts[i].need) > maxNeed {
			maxNeed = int(e.dsts[i].need)
		}
	}
	return e.ndst < modeFor(t.space, maxNeed)
}

// addDst inserts dst into src's entry with maximum confidence,
// allocating the entry if needed, recomputing the mode, and evicting
// the lowest-confidence destination when the mode's capacity is
// exceeded (§III-B1, §III-B3).
func (t *entangledTable) addDst(src, dst uint64) *tableEntry {
	e := t.lookup(src)
	if e == nil {
		e = t.allocate(src)
	}
	need := neededBits(t.space, src, dst)

	// Already present: refresh confidence and (possibly) the needed
	// bits, then recompute the mode.
	for i := 0; i < e.ndst; i++ {
		if e.dsts[i].line == dst {
			e.dsts[i].conf = maxConf
			e.dsts[i].need = uint8(need)
			t.recomputeMode(e)
			return e
		}
	}

	// sigBucket(space, need) == sigBits[modeFor(space, need)-1], so the
	// histogram indexes directly by mode.
	t.insertsBySig[modeFor(t.space, need)-1]++

	maxNeed := need
	for i := 0; i < e.ndst; i++ {
		if int(e.dsts[i].need) > maxNeed {
			maxNeed = int(e.dsts[i].need)
		}
	}
	capacity := modeFor(t.space, maxNeed)
	for e.ndst >= capacity {
		// Evict the lowest-confidence destination.
		victim := 0
		for i := 0; i < e.ndst; i++ {
			if e.dsts[i].conf < e.dsts[victim].conf {
				victim = i
			}
		}
		e.removeDst(victim)
		t.dstEvicted++
		// Mode may relax after the eviction (§III-B3).
		maxNeed = need
		for i := 0; i < e.ndst; i++ {
			if int(e.dsts[i].need) > maxNeed {
				maxNeed = int(e.dsts[i].need)
			}
		}
		capacity = modeFor(t.space, maxNeed)
	}
	e.dsts[e.ndst] = dstSlot{line: dst, need: uint8(need), conf: maxConf}
	e.ndst++
	t.recomputeMode(e)
	return e
}

// recomputeMode sets the entry's mode from its current destinations
// (§III-B3: recomputed on eviction to avoid a stale restrictive mode).
func (t *entangledTable) recomputeMode(e *tableEntry) {
	if e.ndst == 0 {
		e.mode = 0
		return
	}
	maxNeed := 1
	for i := 0; i < e.ndst; i++ {
		if int(e.dsts[i].need) > maxNeed {
			maxNeed = int(e.dsts[i].need)
		}
	}
	e.mode = uint8(modeFor(t.space, maxNeed))
}

// dropDst removes a destination by line address (confidence reached 0).
func (t *entangledTable) dropDst(e *tableEntry, dst uint64) {
	for i := 0; i < e.ndst; i++ {
		if e.dsts[i].line == dst {
			e.removeDst(i)
			t.recomputeMode(e)
			return
		}
	}
}

// allocate claims a way for line using enhanced FIFO replacement.
func (t *entangledTable) allocate(line uint64) *tableEntry {
	s := t.index(line)
	set := t.entries[s*t.ways : (s+1)*t.ways]

	// Free way first.
	for i := range set {
		if !set[i].valid {
			set[i] = tableEntry{tag: t.tag(line), debugLine: line, valid: true}
			return &set[i]
		}
	}

	victim := t.fifoPtr[s]
	t.fifoPtr[s] = (t.fifoPtr[s] + 1) % t.ways

	// Enhanced FIFO: if the victim holds entangled pairs, relocate its
	// payload into a way that holds none (evicting that one instead).
	if set[victim].ndst > 0 {
		for i := range set {
			if i != victim && set[i].ndst == 0 {
				set[i] = set[victim]
				t.relocations++
				break
			}
		}
	}
	set[victim] = tableEntry{tag: t.tag(line), debugLine: line, valid: true}
	return &set[victim]
}

// sigBucket maps a needed-bit count to its storage-format bucket (the
// x-axis of Figure 12): the smallest mode budget that covers it.
func sigBucket(space AddressSpace, need int) int {
	g := geometries[space]
	best := g.sigBits[0]
	for _, sb := range g.sigBits {
		if sb >= need && sb < best {
			best = sb
		}
	}
	return best
}
