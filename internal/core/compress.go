// Package core implements the paper's contribution: the cost-effective
// Entangling instruction prefetcher (§II-III).
//
// The prefetcher entangles a destination cache line (one that missed)
// with a source line (one accessed at least miss-latency cycles
// earlier), so that the next access to the source triggers a timely
// prefetch of the destination. The implementation here follows the
// cost-effective design of §III: basic-block compaction, a 16-entry
// history buffer with 20-bit wrapping timestamps, a set-associative
// Entangled table with 10-bit tags and mode-compressed destination
// arrays (Table I for virtual addresses, Table II for physical), 2-bit
// confidence per destination, spatio-temporal basic-block merging, a
// second-source fallback, and enhanced-FIFO replacement.
package core

import "math/bits"

// AddressSpace selects the destination compression geometry.
type AddressSpace int

// Address spaces (§III-C4).
const (
	// Virtual: 64-bit virtual addresses, 58-bit line addresses; the
	// destination array spends 63 bits = 3-bit mode + 60 payload bits
	// (Table I).
	Virtual AddressSpace = iota
	// Physical: 48-bit physical addresses, 42-bit line addresses; the
	// destination array spends 46 bits = 2-bit mode + 44 payload bits
	// (Table II).
	Physical
)

// confBits is the per-destination confidence counter width.
const confBits = 2

// maxConf is the saturating maximum of the 2-bit counter.
const maxConf = 3

// geometry describes one address space's compression table.
type geometry struct {
	// modeBits is the width of the mode field.
	modeBits int
	// payloadBits is the destination-array payload width.
	payloadBits int
	// lineBits is the line-address width (mode 1 stores it fully).
	lineBits int
	// sigBits[k] is the per-destination significant-bit count in mode
	// k+1 (k destinations -> payload/k - confBits, with mode 1 storing
	// the full line address).
	sigBits []int
}

var geometries = map[AddressSpace]geometry{
	// Table I: 3 + 60 bits. Modes 1..6 store 1..6 destinations with
	// 58, 28, 18, 13, 10, 8 significant bits each (plus 2-bit
	// confidence); 60/k - 2 = those values exactly.
	Virtual: {modeBits: 3, payloadBits: 60, lineBits: 58, sigBits: []int{58, 28, 18, 13, 10, 8}},
	// Table II: 2 + 44 bits. Modes 1..4 store 1..4 destinations with
	// 42, 20, 12, 9 significant bits each.
	Physical: {modeBits: 2, payloadBits: 44, lineBits: 42, sigBits: []int{42, 20, 12, 9}},
}

// MaxMode returns the number of modes (= maximum destinations per
// entry) for the address space.
func MaxMode(space AddressSpace) int { return len(geometries[space].sigBits) }

// SigBits returns the per-destination significant-bit budget of the
// given mode (1-based).
func SigBits(space AddressSpace, mode int) int {
	g := geometries[space]
	if mode < 1 || mode > len(g.sigBits) {
		panic("core: mode out of range")
	}
	return g.sigBits[mode-1]
}

// DstArrayBits returns the total destination-array width (mode field +
// payload), 63 bits virtual / 46 bits physical.
func DstArrayBits(space AddressSpace) int {
	g := geometries[space]
	return g.modeBits + g.payloadBits
}

// LineBits returns the line-address width of the space.
func LineBits(space AddressSpace) int { return geometries[space].lineBits }

// neededBits returns how many low-order bits of dst must be stored so
// it can be reconstructed from src: the position of the most
// significant differing bit plus one. Equal addresses need 1 bit.
func neededBits(space AddressSpace, src, dst uint64) int {
	g := geometries[space]
	mask := lineMask(space)
	diff := (src ^ dst) & mask
	if diff == 0 {
		return 1
	}
	n := bits.Len64(diff)
	if n > g.lineBits {
		n = g.lineBits
	}
	return n
}

// lineMask masks a line address to the space's width.
func lineMask(space AddressSpace) uint64 {
	return uint64(1)<<geometries[space].lineBits - 1
}

// modeFor returns the largest mode (most destinations) whose
// significant-bit budget covers `need` bits. Mode 1 always works
// because it stores the full line address.
func modeFor(space AddressSpace, need int) int {
	g := geometries[space]
	for k := len(g.sigBits); k >= 1; k-- {
		if g.sigBits[k-1] >= need {
			return k
		}
	}
	return 1
}

// compressDst returns the stored significant bits of dst for a mode.
func compressDst(space AddressSpace, mode int, dst uint64) uint64 {
	sb := SigBits(space, mode)
	return dst & (uint64(1)<<sb - 1)
}

// decompressDst reconstructs a destination line address from the
// accessing source line address and the stored significant bits: the
// high bits come from the source (§III-B3 "the most significant bits
// can be inferred from the source").
func decompressDst(space AddressSpace, mode int, src, sig uint64) uint64 {
	sb := SigBits(space, mode)
	mask := uint64(1)<<sb - 1
	return (src&lineMask(space))&^mask | sig&mask
}

// RoundTrip compresses dst under the given mode and reconstructs it
// relative to src, returning the reconstructed line address. It is the
// unit the compression micro-benchmarks exercise.
func RoundTrip(space AddressSpace, mode int, src, dst uint64) uint64 {
	return decompressDst(space, mode, src, compressDst(space, mode, dst))
}
