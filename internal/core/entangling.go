package core

import (
	"fmt"

	"entangling/internal/cache"
	"entangling/internal/prefetch"
	"entangling/internal/trace"
)

// Variant selects which mechanisms are active, matching the ablation
// breakdown of Figure 11.
type Variant int

// Ablation variants (§IV-D).
const (
	// VariantFull is BBEntBB-Merge: basic blocks + entangled
	// destinations + destination basic blocks + merging. The paper's
	// proposal.
	VariantFull Variant = iota
	// VariantBB prefetches only the current basic block on a head hit.
	VariantBB
	// VariantBBEnt adds destination heads (but not their blocks).
	VariantBBEnt
	// VariantBBEntBB adds destination basic blocks (no merging).
	VariantBBEntBB
	// VariantEnt entangles raw cache lines without basic-block
	// tracking.
	VariantEnt
)

// String names the variant as in Figure 11.
func (v Variant) String() string {
	switch v {
	case VariantFull:
		return "BBEntBB-Merge"
	case VariantBB:
		return "BB"
	case VariantBBEnt:
		return "BBEnt"
	case VariantBBEntBB:
		return "BBEntBB"
	case VariantEnt:
		return "Ent"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config sizes an Entangling prefetcher.
type Config struct {
	// Name labels the configuration, e.g. "entangling-4k".
	Name string
	// Sets and Ways size the Entangled table (paper: 128/256/512 sets
	// x 16 ways for the 2K/4K/8K configurations).
	Sets, Ways int
	// HistorySize is the History buffer depth (paper: 16; EPI: ~1000).
	HistorySize int
	// MergeWindow is how many recent history entries are candidates
	// for basic-block merging (paper: 15/6/5 for 2K/4K/8K); 0 disables
	// merging.
	MergeWindow int
	// Space selects virtual (Table I) or physical (Table II)
	// compression.
	Space AddressSpace
	// TableLatency is the Entangled-table access latency charged to
	// every issued prefetch (§III-C2 keeps prefetch timing honest).
	TableLatency uint64
	// Variant selects the ablation variant (VariantFull by default).
	Variant Variant
	// TagBits is the stored tag width; 0 means the default 10 bits.
	// The paper's quoted 8K virtual budget (76.25KB table) implies 76
	// bits per entry, i.e. a 7-bit tag.
	TagBits int
	// SplitTable enables the paper's future-work design (§III-C3):
	// basic-block sizes live in a separate cheap table while the
	// Entangled table keeps only sources that have destinations. At the
	// same budget the split design tracks twice the block sizes with
	// half the entangled capacity — a coverage-vs-pairs trade the paper
	// expected to pay off at low budgets.
	SplitTable bool
	// ContextBits, when non-zero, replicates sources per call-context
	// (the variant §III-B1 reports and rejects: the replication
	// overloads the table and loses performance). Kept as a
	// reproducible negative result.
	ContextBits int
	// RetireDelay, when non-zero, models the prefetch-on-retire option
	// of §III-C1: prefetches are only issued once the triggering
	// instruction retires (so wrong-path triggers would never issue),
	// which costs this many cycles of timeliness per trigger. The
	// simulator has no wrong path (like the paper's ChampSim), so only
	// the cost side is observable.
	RetireDelay uint64
	// StorageBitsOverride, when non-zero, reports this budget instead
	// of the computed one (used for the EPI configuration whose paper
	// number includes structures we do not model bit-exactly).
	StorageBitsOverride uint64
}

// Config2K returns the paper's low-budget configuration (20.87KB
// virtual / 16.59KB physical).
func Config2K(space AddressSpace) Config {
	return Config{Name: "entangling-2k", Sets: 128, Ways: 16, HistorySize: 16,
		MergeWindow: 15, Space: space, TableLatency: 2}
}

// Config4K returns the paper's medium-budget configuration (40.74KB
// virtual / 32.21KB physical).
func Config4K(space AddressSpace) Config {
	return Config{Name: "entangling-4k", Sets: 256, Ways: 16, HistorySize: 16,
		MergeWindow: 6, Space: space, TableLatency: 2}
}

// Config8K returns the paper's high-budget configuration (77.44KB
// virtual / 63.40KB physical).
func Config8K(space AddressSpace) Config {
	cfg := Config{Name: "entangling-8k", Sets: 512, Ways: 16, HistorySize: 16,
		MergeWindow: 5, Space: space, TableLatency: 2}
	if space == Virtual {
		cfg.TagBits = 7
	}
	return cfg
}

// ConfigEPI approximates the performance-oriented (IPC-1 winning)
// Entangling prefetcher the paper lists as EPI: a ~1000-entry history
// and a 34-way, >8K-entry table, hardly implementable in hardware but
// a useful upper bound. The paper quotes 127.9KB.
func ConfigEPI() Config {
	return Config{Name: "epi", Sets: 256, Ways: 34, HistorySize: 1024,
		MergeWindow: 0, Space: Virtual, TableLatency: 0,
		StorageBitsOverride: 1047757} // 127.9KB, the paper's quoted budget
}

// Stats exposes the prefetcher-internal counters behind Figures 12-15.
type Stats struct {
	// TableHits counts accesses that hit the Entangled table.
	TableHits uint64
	// DstFound sums destinations (conf > 0) found on table hits
	// (Figure 13 = DstFound / TableHits).
	DstFound uint64
	// BBLinesPrefetched sums current-block lines prefetched on hits
	// (Figure 14 = BBLinesPrefetched / TableHits).
	BBLinesPrefetched uint64
	// DstBBLines sums destination-block lines prefetched on hits
	// (Figure 15 = DstBBLines / DstFound).
	DstBBLines uint64
	// ExtraTableSearches counts the per-hit destination size lookups
	// (§III-C2 reports an average of 2.5, max 6).
	ExtraTableSearches uint64
	// InsertsBySigBits histograms destination inserts by storage
	// format (Figure 12), keyed by significant-bit bucket.
	InsertsBySigBits map[int]uint64
	// PairsInserted counts new entangled pairs.
	PairsInserted uint64
	// ConfidenceUp / ConfidenceDown count confidence updates.
	ConfidenceUp   uint64
	ConfidenceDown uint64
	// Merges counts basic blocks absorbed by history merging.
	Merges uint64
	// AliasHits counts table hits where the 10-bit folded tag matched a
	// different source line (diagnostic; the hardware cannot tell).
	AliasHits uint64
	// Relocations counts enhanced-FIFO payload relocations.
	Relocations uint64
	// FeedbackLate / FeedbackUseless count lifecycle feedback events
	// received from the simulator's prefetch tracker (late prefetches
	// and unused evictions of our own requests).
	FeedbackLate    uint64
	FeedbackUseless uint64
}

// Entangling is the prefetcher. It implements prefetch.Prefetcher.
type Entangling struct {
	cfg    Config
	issuer prefetch.Issuer
	table  *entangledTable
	hist   *historyBuffer
	// sizes holds basic-block sizes in the split design (nil when the
	// unified table is used).
	sizes *sizeTable
	// ctxStack is the call-context stack of the ContextBits variant.
	ctxStack []uint64

	// Basic-block tracking registers (§III-A1).
	bbHead  uint64
	bbSize  uint8
	bbPos   int
	bbTS    uint32
	bbValid bool

	// pending mirrors the MSHR-resident history pointers: one
	// candidate-source snapshot per outstanding demanded miss, consumed
	// at fill time (§III-A2). A fixed array (the MSHR bound was already
	// 32) whose snapshot buffers are reused across misses, so the hot
	// path allocates nothing in steady state.
	pending [maxPending]pendingEntry

	stats Stats
}

// maxPending bounds outstanding candidate snapshots (MSHR mirror).
const maxPending = 32

type pendingEntry struct {
	line  uint64
	valid bool
	snap  candidateSnapshot
}

// assert interface compliance.
var _ prefetch.Prefetcher = (*Entangling)(nil)

// New builds an Entangling prefetcher bound to an issuer.
func New(cfg Config, issuer prefetch.Issuer) *Entangling {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic("core: Config needs positive Sets and Ways")
	}
	if cfg.HistorySize <= 0 {
		cfg.HistorySize = 16
	}
	if cfg.TagBits == 0 {
		cfg.TagBits = defaultTagBits
	}
	e := &Entangling{
		cfg:    cfg,
		issuer: issuer,
		hist:   newHistory(cfg.HistorySize),
	}
	if cfg.SplitTable {
		// Same budget, different shape: half the entangled entries,
		// twice the tracked block sizes.
		pairSets := cfg.Sets / 2
		if pairSets < 1 {
			pairSets = 1
		}
		e.table = newTable(cfg.Space, pairSets, cfg.Ways, cfg.TagBits)
		e.sizes = newSizeTable(cfg.Sets*cfg.Ways*2, cfg.TagBits)
	} else {
		e.table = newTable(cfg.Space, cfg.Sets, cfg.Ways, cfg.TagBits)
	}
	return e
}

// pendingSlot returns the slot to record a snapshot for line: when a
// slot is free, the one already holding line (overwrite semantics) or
// the free one; nil when all 32 MSHR mirrors are busy — the miss goes
// untracked, exactly as the map-based version behaved at capacity.
func (e *Entangling) pendingSlot(line uint64) *pendingEntry {
	var existing, free *pendingEntry
	for i := range e.pending {
		s := &e.pending[i]
		if s.valid {
			if s.line == line {
				existing = s
			}
		} else if free == nil {
			free = s
		}
	}
	if free == nil {
		return nil
	}
	if existing != nil {
		return existing
	}
	return free
}

// findPending returns the valid slot holding line, or nil.
func (e *Entangling) findPending(line uint64) *pendingEntry {
	for i := range e.pending {
		if e.pending[i].valid && e.pending[i].line == line {
			return &e.pending[i]
		}
	}
	return nil
}

// srcKey maps a source line to its table key; the ContextBits variant
// folds the current call context in, replicating sources per context.
func (e *Entangling) srcKey(line uint64) uint64 {
	if e.cfg.ContextBits == 0 {
		return line
	}
	var ctx uint64
	if n := len(e.ctxStack); n > 0 {
		ctx = e.ctxStack[n-1]
	}
	mask := uint64(1)<<e.cfg.ContextBits - 1
	return (line ^ (ctx&mask)<<33) & lineMask(e.cfg.Space)
}

// recordSize stores a completed block's size in whichever structure
// holds sizes.
func (e *Entangling) recordSize(head uint64, size uint8) {
	if e.sizes != nil {
		e.sizes.record(head, size)
		return
	}
	e.table.recordBlock(e.srcKey(head), size)
}

// blockSize returns the recorded size of a head (0 when unknown).
func (e *Entangling) blockSize(line uint64) uint8 {
	if e.sizes != nil {
		if sz, ok := e.sizes.lookup(line); ok {
			return sz
		}
		return 0
	}
	if en := e.table.lookup(e.srcKey(line)); en != nil {
		return en.bbSize
	}
	return 0
}

// Name implements prefetch.Prefetcher.
func (e *Entangling) Name() string { return e.cfg.Name }

// Config returns the active configuration.
func (e *Entangling) Config() Config { return e.cfg }

// Stats returns a snapshot of the internal counters; the per-format
// insert histogram is copied from the table.
func (e *Entangling) Stats() Stats {
	s := e.stats
	s.InsertsBySigBits = e.table.insertHistogram()
	s.ExtraTableSearches = e.table.extraLookups
	s.Relocations = e.table.relocations
	s.AliasHits = e.table.aliasHits
	return s
}

// StorageBits implements prefetch.Prefetcher, reproducing the §III-C3
// accounting: Entangled table (tag 10 + bbSize 6 + destination array)
// plus per-set FIFO pointers, the History buffer (line tag + 20-bit
// timestamp + 6-bit size, plus a 4-bit head pointer), and the timing /
// src-entangled fields added to the PQ (32), MSHR (10) and L1I lines
// (512).
func (e *Entangling) StorageBits() uint64 {
	if e.cfg.StorageBitsOverride != 0 {
		return e.cfg.StorageBitsOverride
	}
	entryBits := e.cfg.TagBits + 6 + DstArrayBits(e.cfg.Space)
	table := uint64(e.cfg.Sets*e.cfg.Ways*entryBits) + uint64(e.cfg.Sets*4)
	if e.cfg.SplitTable {
		pairEntry := e.cfg.TagBits + DstArrayBits(e.cfg.Space)
		table = uint64(e.table.sets*e.table.ways*pairEntry) +
			uint64(e.table.sets*4) + e.sizes.bits()
	}

	histEntry := LineBits(e.cfg.Space) + tsBits + 6
	history := uint64(e.cfg.HistorySize*histEntry) + 4

	// Timing info: 12-bit issue time + 4-bit history pointer. Source
	// position: 4-bit way + set index bits + 1 access bit.
	setBits := 0
	for 1<<setBits < e.cfg.Sets {
		setBits++
	}
	srcPos := 4 + setBits + 1
	timing := uint64(32*(12+4+srcPos) + 10*(12+4+srcPos) + 512*srcPos)

	return table + history + timing
}

// prefetchMeta encodes the source's table position so later cache
// events (timely hit / late / wrong prefetch) can update the right
// pair's confidence — the paper's "src-entangled information" carried
// by PQ, MSHR and L1I lines.
func prefetchMeta(set, way int, tag uint16) uint64 {
	return 1 | uint64(tag)<<1 | uint64(set)<<11 | uint64(way)<<23
}

func decodeMeta(meta uint64) (set, way int, tag uint16, ok bool) {
	if meta&1 == 0 {
		return 0, 0, 0, false
	}
	return int(meta >> 11 & 0xFFF), int(meta >> 23 & 0x3F), uint16(meta >> 1 & 0x3FF), true
}

// OnAccess implements prefetch.Prefetcher: basic-block tracking and
// prefetch triggering (§III-A1, §III-A3) plus timely/late confidence
// updates (§III-B1).
func (e *Entangling) OnAccess(ev cache.AccessEvent) {
	// Confidence updates from prefetch outcome signals.
	if ev.Hit && ev.FirstUse {
		e.updateConfidence(ev.Meta, ev.LineAddr, +1)
	}
	if ev.LatePrefetch {
		e.updateConfidence(ev.Meta, ev.LineAddr, -1)
	}

	if e.cfg.Variant == VariantEnt {
		// Raw-line entangling: every access is its own "head".
		e.hist.push(ev.LineAddr, wrapTS(ev.Cycle), 0)
	} else {
		e.trackBasicBlock(ev)
	}

	// Only misses to basic-block heads carry an MSHR history pointer;
	// for other misses no source is searched — they are covered by
	// whole-block prefetching from their head (§III-A2). VariantEnt
	// treats every line as a head.
	isHead := e.cfg.Variant == VariantEnt || (e.bbValid && ev.LineAddr == e.bbHead)
	if !ev.Hit && isHead {
		// The miss allocates an MSHR entry carrying a pointer into the
		// history; capture the pre-miss candidate sources it refers to.
		if slot := e.pendingSlot(ev.LineAddr); slot != nil {
			slot.line = ev.LineAddr
			slot.valid = true
			e.hist.snapshotInto(&slot.snap, ev.LineAddr)
		}
	}

	e.trigger(ev.Cycle, ev.LineAddr)
}

// trackBasicBlock updates the head/size registers and, on block
// completion, records the block in the Entangled table and the History
// buffer (merging quasi-consecutive blocks when configured).
func (e *Entangling) trackBasicBlock(ev cache.AccessEvent) {
	line := ev.LineAddr
	if e.bbValid {
		switch {
		case line == e.bbHead+uint64(e.bbSize)+1:
			// Next consecutive line: the block grows; keep the history
			// entry's size field current.
			if e.bbSize < 63 {
				e.bbSize++
				e.hist.updateSize(e.bbPos, e.bbHead, e.bbSize)
			}
			return
		case line >= e.bbHead && line <= e.bbHead+uint64(e.bbSize):
			// Re-access within the current block (redirect replay).
			return
		}
		// Block completed: try to merge it into an earlier
		// quasi-consecutive block (§III-B2). On success the absorbing
		// head's recorded size grows and the merged block is recorded
		// in neither the history nor the Entangled table — that is the
		// table-pressure reduction merging exists for.
		mergedAway := false
		if e.cfg.Variant == VariantFull && e.cfg.MergeWindow > 0 {
			if head, msize, ok := e.hist.merge(e.bbHead, e.bbSize, e.bbTS, e.cfg.MergeWindow, e.bbPos); ok {
				e.stats.Merges++
				e.hist.invalidate(e.bbPos, e.bbHead)
				e.recordSize(head, msize)
				mergedAway = true
			}
		}
		if !mergedAway {
			e.recordSize(e.bbHead, e.bbSize)
		}
	}
	// Start tracking the new block: pushed at first access so the
	// timestamp is the access time.
	e.bbHead = line
	e.bbSize = 0
	e.bbValid = true
	e.bbTS = wrapTS(ev.Cycle)
	e.bbPos = e.hist.push(line, e.bbTS, 0)
}

// trigger checks the Entangled table on an access and issues the
// prefetches: the rest of the current basic block and, per confident
// destination, the destination's whole basic block (§III-A3).
func (e *Entangling) trigger(cycle uint64, line uint64) {
	key := e.srcKey(line)
	entry, set, way := e.table.lookupPos(key)
	notBefore := cycle + e.cfg.TableLatency + e.cfg.RetireDelay

	// (1) The current basic block. In the split design the size comes
	// from the dedicated size table even when no pairs exist.
	if e.cfg.Variant != VariantEnt {
		var bbSize uint8
		if e.sizes != nil {
			bbSize, _ = e.sizes.lookup(line)
		} else if entry != nil {
			bbSize = entry.bbSize
		}
		if bbSize > 0 && entry == nil {
			e.stats.TableHits++
		}
		for i := uint64(1); i <= uint64(bbSize); i++ {
			e.issuer.Prefetch(notBefore, line+i, 0)
			e.stats.BBLinesPrefetched++
		}
	}
	if entry == nil {
		return
	}
	e.stats.TableHits++
	if entry.debugLine != key {
		e.table.aliasHits++
	}
	meta := prefetchMeta(set, way, entry.tag)
	if e.cfg.Variant == VariantBB {
		return
	}

	// (2) Each confident destination and its basic block.
	withBB := e.cfg.Variant == VariantFull || e.cfg.Variant == VariantBBEntBB
	// Work on a copy: issuing prefetches must not be confused by
	// concurrent slice mutation if the issuer calls back synchronously.
	for _, d := range entry.dstSlots() {
		if d.conf == 0 {
			continue
		}
		e.stats.DstFound++
		dst := decompressDst(e.cfg.Space, int(entry.mode), key, compressDst(e.cfg.Space, int(entry.mode), d.line))
		e.issuer.Prefetch(notBefore, dst, meta)
		if !withBB {
			continue
		}
		// Extra search to find the destination's block size (§III-C2).
		e.table.extraLookups++
		for i := uint64(1); i <= uint64(e.blockSize(dst)); i++ {
			e.issuer.Prefetch(notBefore, dst+i, 0)
			e.stats.DstBBLines++
		}
	}
}

// OnFill implements prefetch.Prefetcher: on a demanded fill (demand
// miss or late prefetch) of a tracked head, measure the latency and
// entangle the head with a source accessed at least that many cycles
// earlier (§III-A2).
func (e *Entangling) OnFill(ev cache.FillEvent) {
	if !ev.Demanded {
		return
	}
	slot := e.findPending(ev.LineAddr)
	if slot == nil {
		// No MSHR-held history pointer (e.g. not a tracked head):
		// covered by whole-block prefetching from its head.
		return
	}
	slot.valid = false

	latency := ev.Latency()
	if latency > tsMask/2 {
		latency = tsMask / 2
	}
	missTS := wrapTS(ev.IssueCycle)

	var candBuf [2]uint64
	candidates := slot.snap.sourcesInto(missTS, uint32(latency), candBuf[:0])
	if len(candidates) == 0 {
		return
	}
	src := candidates[0]
	dst := ev.LineAddr
	if src == dst {
		return
	}
	// Second-source fallback (§III-B3): if the chosen source's
	// destination array is full, try an earlier source with room.
	srcKey := e.srcKey(src)
	if se := e.table.lookup(srcKey); se != nil && !e.table.hasFreeDst(se, srcKey, dst) && len(candidates) > 1 {
		src2 := e.srcKey(candidates[1])
		if src2 != dst {
			if se2 := e.table.lookup(src2); se2 != nil && e.table.hasFreeDst(se2, src2, dst) {
				e.table.addDst(src2, dst)
				e.stats.PairsInserted++
				return
			}
		}
	}
	e.table.addDst(srcKey, dst)
	e.stats.PairsInserted++
}

// OnEvict implements prefetch.Prefetcher: an unused prefetched line is
// a wrong/early prefetch; decrease the pair's confidence (§III-B1).
func (e *Entangling) OnEvict(ev cache.EvictEvent) {
	if ev.Prefetched && !ev.Accessed {
		e.updateConfidence(ev.Meta, ev.LineAddr, -1)
	}
}

// OnPrefetchFeedback implements prefetch.FeedbackSink: Entangling
// counts late and useless outcomes of its own prefetches. (Confidence
// already throttles via OnEvict/OnAccess; these counters expose the
// timeliness signal a distance-adaptive variant would consume.)
func (e *Entangling) OnPrefetchFeedback(fb prefetch.Feedback) {
	switch fb.Kind {
	case prefetch.FeedbackLate:
		e.stats.FeedbackLate++
	case prefetch.FeedbackUseless:
		e.stats.FeedbackUseless++
	}
}

// OnBranch implements prefetch.Prefetcher. The base design is
// deliberately independent of branch-prediction structures (§V); only
// the rejected ContextBits variant folds the call context in.
func (e *Entangling) OnBranch(ev prefetch.BranchEvent) {
	if e.cfg.ContextBits == 0 {
		return
	}
	if ev.Type.IsCall() && ev.Taken {
		if len(e.ctxStack) < 64 {
			e.ctxStack = append(e.ctxStack, splitmixCtx(ev.Target))
		}
	} else if ev.Type == trace.Return {
		if len(e.ctxStack) > 0 {
			e.ctxStack = e.ctxStack[:len(e.ctxStack)-1]
		}
	}
}

// splitmixCtx hashes a call target into a context token.
func splitmixCtx(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// updateConfidence adjusts the confidence of the pair identified by the
// prefetch metadata and the destination line. Stale positions (entry
// reallocated since the prefetch was issued) are detected by tag
// mismatch and ignored, as the hardware would.
func (e *Entangling) updateConfidence(meta uint64, dst uint64, delta int) {
	set, way, tag, ok := decodeMeta(meta)
	if !ok {
		return
	}
	entry := e.table.entryAt(set, way)
	if entry == nil || !entry.valid || entry.tag != tag {
		return
	}
	for i := 0; i < entry.ndst; i++ {
		if entry.dsts[i].line != dst {
			continue
		}
		if delta > 0 {
			if entry.dsts[i].conf < maxConf {
				entry.dsts[i].conf++
			}
			e.stats.ConfidenceUp++
		} else {
			e.stats.ConfidenceDown++
			if entry.dsts[i].conf > 0 {
				entry.dsts[i].conf--
			}
			if entry.dsts[i].conf == 0 {
				// Invalid pair: drop it and relax the mode.
				e.table.dropDst(entry, dst)
			}
		}
		return
	}
}
