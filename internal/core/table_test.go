package core

import (
	"testing"
	"testing/quick"
)

func TestTableRecordBlockKeepsMax(t *testing.T) {
	tb := newTable(Virtual, 16, 4, 10)
	tb.recordBlock(100, 3)
	tb.recordBlock(100, 1)
	e := tb.lookup(100)
	if e == nil || e.bbSize != 3 {
		t.Fatalf("bbSize = %v, want 3", e)
	}
	tb.recordBlock(100, 7)
	if e := tb.lookup(100); e.bbSize != 7 {
		t.Errorf("bbSize = %d, want 7", e.bbSize)
	}
	// Cap at 63.
	tb.recordBlock(100, 200)
	if e := tb.lookup(100); e.bbSize != 63 {
		t.Errorf("bbSize = %d, want 63", e.bbSize)
	}
}

func TestTableAddDstModeCapacity(t *testing.T) {
	tb := newTable(Virtual, 16, 4, 10)
	src := uint64(0x100000)
	// Nearby destinations (<=8 significant bits): mode 6, capacity 6.
	for i := uint64(1); i <= 6; i++ {
		tb.addDst(src, src&^uint64(0xFF)|i)
	}
	e := tb.lookup(src)
	if e.ndst != 6 {
		t.Fatalf("dsts = %d, want 6", e.ndst)
	}
	if e.mode != 6 {
		t.Errorf("mode = %d, want 6", e.mode)
	}
	// A 7th nearby destination evicts the lowest-confidence one.
	e.dsts[2].conf = 1
	victim := e.dsts[2].line
	tb.addDst(src, src&^uint64(0xFF)|7)
	e = tb.lookup(src)
	if e.ndst != 6 {
		t.Fatalf("dsts = %d after eviction insert", e.ndst)
	}
	for _, d := range e.dstSlots() {
		if d.line == victim {
			t.Error("lowest-confidence destination not evicted")
		}
	}
}

func TestTableModeRestriction(t *testing.T) {
	tb := newTable(Virtual, 16, 4, 10)
	src := uint64(0x100000)
	// Fill with nearby destinations.
	for i := uint64(1); i <= 6; i++ {
		tb.addDst(src, src+i)
	}
	// A distant destination (needs 28 bits -> mode 2) forces capacity 2:
	// four of the six nearby ones must be evicted.
	far := src ^ 0x800_0000 // differs at bit 27
	tb.addDst(src, far)
	e := tb.lookup(src)
	if e.mode != 2 {
		t.Errorf("mode = %d, want 2", e.mode)
	}
	if e.ndst != 2 {
		t.Errorf("dsts = %d, want 2", e.ndst)
	}
}

func TestTableModeRelaxesOnDrop(t *testing.T) {
	tb := newTable(Virtual, 16, 4, 10)
	src := uint64(0x100000)
	far := src ^ 0x800_0000
	tb.addDst(src, far)
	tb.addDst(src, src+1)
	e := tb.lookup(src)
	if e.mode != 2 {
		t.Fatalf("mode = %d, want 2", e.mode)
	}
	// Dropping the far destination must relax the mode (§III-B3).
	tb.dropDst(e, far)
	if e.mode != 6 {
		t.Errorf("mode after drop = %d, want 6", e.mode)
	}
}

func TestTableDuplicateDstRefreshes(t *testing.T) {
	tb := newTable(Virtual, 16, 4, 10)
	src := uint64(0x100000)
	tb.addDst(src, src+1)
	e := tb.lookup(src)
	e.dsts[0].conf = 1
	tb.addDst(src, src+1)
	if e.ndst != 1 {
		t.Fatalf("duplicate insert grew the array: %d", e.ndst)
	}
	if e.dsts[0].conf != maxConf {
		t.Errorf("conf = %d, want %d", e.dsts[0].conf, maxConf)
	}
}

func TestTableHasFreeDst(t *testing.T) {
	tb := newTable(Virtual, 16, 4, 10)
	src := uint64(0x100000)
	for i := uint64(1); i <= 5; i++ {
		tb.addDst(src, src+i)
	}
	e := tb.lookup(src)
	if !tb.hasFreeDst(e, src, src+6) {
		t.Error("6th nearby dst should fit (mode 6)")
	}
	// A far destination would restrict mode to 2 with 5 occupants: full.
	if tb.hasFreeDst(e, src, src^0x800_0000) {
		t.Error("far dst reported as fitting")
	}
	tb.addDst(src, src+6)
	e = tb.lookup(src)
	if tb.hasFreeDst(e, src, src+7) {
		t.Error("7th dst reported as fitting")
	}
}

func TestEnhancedFIFORelocation(t *testing.T) {
	tb := newTable(Virtual, 1, 4, 10)
	// Fill the set: way 0 gets destinations, ways 1-3 bare sizes.
	// Addresses must map to set 0 (sets=1: all do).
	tb.addDst(0x1000, 0x1001)
	tb.recordBlock(0x2000, 1)
	tb.recordBlock(0x3000, 1)
	tb.recordBlock(0x4000, 1)
	// Allocation for a 5th source: FIFO victim is way 0 (holding a
	// pair) -> payload relocates onto a bare way instead of dying.
	tb.allocate(0x5000)
	if tb.relocations != 1 {
		t.Fatalf("relocations = %d, want 1", tb.relocations)
	}
	// The pair survived somewhere in the set.
	if e := tb.lookup(0x1000); e == nil || e.ndst != 1 {
		t.Error("entangled payload lost on FIFO eviction")
	}
}

func TestTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newTable(Virtual, 0, 4, 10)
}

func TestTableLookupPosConsistent(t *testing.T) {
	tb := newTable(Virtual, 64, 16, 10)
	f := func(line uint64) bool {
		line &= lineMask(Virtual)
		tb.recordBlock(line, 1)
		e, s, w := tb.lookupPos(line)
		if e == nil {
			return false
		}
		return tb.entryAt(s, w) == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if tb.entryAt(-1, 0) != nil || tb.entryAt(0, 99) != nil {
		t.Error("entryAt out of range should be nil")
	}
}

func TestSigBucket(t *testing.T) {
	cases := []struct{ need, want int }{
		{1, 8}, {8, 8}, {9, 10}, {12, 13}, {15, 18}, {20, 28}, {40, 58},
	}
	for _, c := range cases {
		if got := sigBucket(Virtual, c.need); got != c.want {
			t.Errorf("sigBucket(%d) = %d, want %d", c.need, got, c.want)
		}
	}
}

func TestTableInvariantModeCoversAllDsts(t *testing.T) {
	// Property: after arbitrary insert sequences, every entry's mode
	// budget covers every stored destination's needed bits, and the
	// destination count never exceeds the mode capacity.
	tb := newTable(Virtual, 8, 4, 10)
	f := func(ops []struct{ Src, Dst uint64 }) bool {
		for _, op := range ops {
			src := op.Src & lineMask(Virtual)
			dst := op.Dst & lineMask(Virtual)
			if src == dst {
				continue
			}
			tb.addDst(src, dst)
		}
		for i := range tb.entries {
			e := &tb.entries[i]
			if e.ndst == 0 {
				continue
			}
			if e.ndst > int(e.mode) {
				return false
			}
			budget := SigBits(Virtual, int(e.mode))
			for _, d := range e.dstSlots() {
				if int(d.need) > budget {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
