package core

// historyBuffer is the paper's History buffer (§III-A2): a small
// circular queue of recently accessed basic-block heads, each with the
// 20-bit timestamp of its first L1I access and its basic-block size.
// It provides two operations:
//
//   - searchSource: walk backwards from a position to find the first
//     (most recent) head accessed at least `latency` cycles before a
//     miss — the src-entangled candidate.
//   - merge: find a quasi-consecutive earlier basic block to absorb a
//     newly completed one (§III-B2).
//
// Timestamps wrap at 2^20 cycles as in the hardware design; all
// comparisons are wrap-aware.
type historyBuffer struct {
	entries []historyEntry
	head    int // next insertion position
	count   int // valid entries (saturates at len)
}

type historyEntry struct {
	line uint64 // line address (58/42-bit tag in hardware)
	ts   uint32 // 20-bit wrapping timestamp
	size uint8  // 6-bit basic-block size (lines after the head)
}

// tsBits is the timestamp width.
const tsBits = 20

// tsMask wraps timestamps.
const tsMask = 1<<tsBits - 1

// wrapTS truncates a cycle count to the stored timestamp width.
func wrapTS(cycle uint64) uint32 { return uint32(cycle & tsMask) }

// tsDiff returns (a - b) in wrap-aware 20-bit arithmetic: the age of b
// relative to a, assuming it is less than 2^20 cycles.
func tsDiff(a, b uint32) uint32 { return (a - b) & tsMask }

func newHistory(size int) *historyBuffer {
	if size < 1 {
		panic("core: history size must be >= 1")
	}
	return &historyBuffer{entries: make([]historyEntry, size)}
}

// push records a new basic-block head and returns its position. The
// head is pushed at its FIRST access (so its timestamp is the access
// time); its size field is updated in place as the block grows
// (§III-A2, §III-B2).
func (h *historyBuffer) push(line uint64, ts uint32, size uint8) int {
	pos := h.head
	h.entries[pos] = historyEntry{line: line, ts: ts, size: size}
	h.head = (h.head + 1) % len(h.entries)
	if h.count < len(h.entries) {
		h.count++
	}
	return pos
}

// updateSize grows the block size of the entry at pos, provided the
// position still holds the same head (it may have been recycled).
func (h *historyBuffer) updateSize(pos int, line uint64, size uint8) {
	if h.entries[pos].line == line {
		h.entries[pos].size = size
	}
}

// invalidate clears the entry at pos if it still holds line (used when
// a just-pushed block is merged into an earlier one and must not stay
// in the history).
func (h *historyBuffer) invalidate(pos int, line uint64) {
	if h.entries[pos].line == line {
		h.entries[pos].line = ^uint64(0)
	}
}

// candidateSnapshot is the history content relevant to one outstanding
// miss: the paper stores a pointer into the History buffer in the MSHR
// entry; modelling-wise we capture the (line, ts, valid) view at miss
// time, so fill-time source selection sees the pre-miss history even
// though the decoupled front-end keeps pushing new heads while the miss
// is outstanding.
type candidateSnapshot struct {
	lines []uint64
	ts    []uint32
}

// snapshot captures the current entries, most recent first, excluding
// invalidated ones and the excluded line (the missing head itself).
func (h *historyBuffer) snapshot(exclude uint64) candidateSnapshot {
	var snap candidateSnapshot
	h.snapshotInto(&snap, exclude)
	return snap
}

// snapshotInto fills snap with the current entries, reusing its backing
// slices — the hot path (one snapshot per tracked-head miss) stops
// allocating once every pending slot's buffers have grown to the
// history size.
func (h *historyBuffer) snapshotInto(snap *candidateSnapshot, exclude uint64) {
	n := len(h.entries)
	snap.lines = snap.lines[:0]
	snap.ts = snap.ts[:0]
	for i := 1; i <= h.count; i++ {
		pos := (h.head - i + n) % n
		e := &h.entries[pos]
		if e.line == ^uint64(0) || e.line == exclude {
			continue
		}
		snap.lines = append(snap.lines, e.line)
		snap.ts = append(snap.ts, e.ts)
	}
}

// sources returns up to maxResults source lines from the snapshot that
// were accessed at least latency cycles before missTS, most recent
// first.
func (s *candidateSnapshot) sources(missTS, latency uint32, maxResults int) []uint64 {
	return s.sourcesInto(missTS, latency, make([]uint64, 0, maxResults))
}

// sourcesInto appends qualifying sources to out until its capacity is
// reached; callers pass a stack-backed buffer to keep the fill path
// allocation-free.
func (s *candidateSnapshot) sourcesInto(missTS, latency uint32, out []uint64) []uint64 {
	for i := range s.lines {
		if len(out) == cap(out) {
			break
		}
		age := tsDiff(missTS, s.ts[i])
		if age >= latency && age <= tsMask/2 {
			out = append(out, s.lines[i])
		}
	}
	return out
}

// merge tries to absorb a completed basic block [line, line+size] into
// one of the last `window` history entries whose block is consecutive
// or overlapping in space (§III-B2). On success the earlier entry's
// size is extended (capped at 63) and merge returns the absorbing head
// and its merged size, so the caller can update the Entangled table
// entry of the absorbing block instead of recording the merged one.
func (h *historyBuffer) merge(line uint64, size uint8, newTS uint32, window int, skipPos int) (head uint64, merged uint8, ok bool) {
	n := len(h.entries)
	if window > h.count {
		window = h.count
	}
	for i := 1; i <= window; i++ {
		pos := (h.head - i + n) % n
		if pos == skipPos {
			continue
		}
		e := &h.entries[pos]
		if e.line == ^uint64(0) {
			continue
		}
		// Overlapping or consecutive: e covers [e.line, e.line+e.size];
		// the new block starts within or immediately after it.
		if line >= e.line && line <= e.line+uint64(e.size)+1 {
			newEnd := line + uint64(size)
			oldEnd := e.line + uint64(e.size)
			if newEnd > oldEnd {
				m := newEnd - e.line
				if m > 63 {
					// 6-bit size field: merging refused (§III-B2).
					return 0, 0, false
				}
				e.size = uint8(m)
			}
			if e.line == line {
				// Same head: this is a re-execution, not a spatial
				// extension; the entry's access time must refresh or
				// latency-based source selection would use a stale
				// timestamp forever on hot blocks.
				e.ts = newTS
			}
			return e.line, e.size, true
		}
	}
	return 0, 0, false
}
