package cache

// This file implements the instrumented L1I: the cache the paper
// extends with timing and src-entangled information (Figure 4). MSHR
// entries carry the issue timestamp and an access bit; prefetch-queue
// entries carry the issue timestamp and opaque prefetcher metadata;
// lines carry the prefetch bit, the access bit and the metadata. The
// prefetcher observes the cache through the Listener event stream,
// which is exactly the information flow of Figure 5:
//
//	demand miss            -> AccessEvent{Hit:false}
//	late prefetch          -> AccessEvent{Hit:false, MSHRHit:true, LatePrefetch:true}
//	timely prefetch hit    -> AccessEvent{Hit:true, WasPrefetched:true, FirstUse:true}
//	cache fill             -> FillEvent (with measured latency)
//	eviction of unused pf  -> EvictEvent{Prefetched:true, Accessed:false}

// AccessEvent describes one demand access to the L1I.
type AccessEvent struct {
	// Cycle is when the access probes the cache.
	Cycle uint64
	// LineAddr is the accessed line.
	LineAddr uint64
	// Hit is true when the line was present.
	Hit bool
	// WasPrefetched: the hit line was brought in by a prefetch.
	WasPrefetched bool
	// FirstUse: the hit line had not been demand-accessed since its
	// fill (the paper's timely-prefetch detection: access bit unset).
	FirstUse bool
	// MSHRHit: the miss matched an in-flight fill.
	MSHRHit bool
	// LatePrefetch: the matched in-flight fill was a prefetch that had
	// not been demanded yet (the paper's late-prefetch detection).
	LatePrefetch bool
	// Meta is the prefetcher metadata carried by the line (hits) or
	// the MSHR entry (merged misses). Zero otherwise.
	Meta uint64
	// IssueCycle and ReadyCycle describe the matched in-flight request
	// on MSHR merges (MSHRHit): when it was issued and when its fill
	// completes. Cycle-IssueCycle is the latency a late prefetch
	// already covered; ReadyCycle-Cycle is what it failed to hide.
	// Both are zero when MSHRHit is false.
	IssueCycle uint64
	ReadyCycle uint64
}

// FillEvent describes a line installing into the L1I.
type FillEvent struct {
	// Cycle is the fill time.
	Cycle uint64
	// LineAddr is the filled line.
	LineAddr uint64
	// WasPrefetch: the request was issued by the prefetcher.
	WasPrefetch bool
	// Demanded is the MSHR access bit at fill time: true for demand
	// misses and for prefetches a demand merged with while in flight.
	Demanded bool
	// IssueCycle is when the request was issued (the MSHR timestamp the
	// paper adds); Cycle-IssueCycle is the measured miss latency.
	IssueCycle uint64
	// Meta is the prefetcher metadata carried by the request.
	Meta uint64
}

// Latency returns the measured fill latency in cycles.
func (f *FillEvent) Latency() uint64 { return f.Cycle - f.IssueCycle }

// EvictEvent describes a line leaving the L1I.
type EvictEvent struct {
	Cycle    uint64
	LineAddr uint64
	// Prefetched and Accessed are the line's bits at eviction;
	// Prefetched && !Accessed is the paper's wrong/early prefetch
	// signal.
	Prefetched bool
	Accessed   bool
	Meta       uint64
}

// Listener observes L1I events; the prefetcher adapter implements it.
type Listener interface {
	OnAccess(AccessEvent)
	OnFill(FillEvent)
	OnEvict(EvictEvent)
}

// ICacheConfig sizes the L1I.
type ICacheConfig struct {
	Sets, Ways int
	// Latency is the hit latency in cycles (paper: 4).
	Latency uint64
	// MSHRs is the miss-status-holding-register count (paper: 10).
	MSHRs int
	// PQSize is the prefetch queue depth (paper: 32).
	PQSize int
	// PQIssuePerCycle bounds prefetch issue bandwidth.
	PQIssuePerCycle int
	// Ideal makes every demand access a hit while still sending misses
	// to the next level (the paper's Ideal prefetcher, which models the
	// pollution of the L2/LLC but a perfect L1I).
	Ideal bool
}

type mshrEntry struct {
	lineAddr   uint64
	issueCycle uint64
	readyCycle uint64
	meta       uint64
	valid      bool
	isPrefetch bool
	accessBit  bool
}

type pqEntry struct {
	lineAddr     uint64
	meta         uint64
	readyToIssue uint64
}

// ICache is the instrumented L1I.
type ICache struct {
	cfg      ICacheConfig
	arr      *array
	next     Level
	listener Listener
	stats    Stats

	mshr []mshrEntry
	// pq is a fixed-capacity ring buffer (the paper's 32-entry PQ):
	// pqHead indexes the oldest entry and pqLen counts occupancy. A ring
	// keeps the steady-state loop allocation-free, where popping via
	// re-slicing would shed capacity and force append to reallocate.
	pq     []pqEntry
	pqHead int
	pqLen  int

	now           uint64
	nextIssueSlot uint64
	// nextFill is the earliest readyCycle among valid MSHR entries
	// (^0 when none), so AdvanceTo can skip the fill scan on the many
	// calls where no outstanding fill can have completed yet.
	nextFill uint64
}

// NewICache builds the L1I over next. listener may be nil.
func NewICache(cfg ICacheConfig, next Level, listener Listener) *ICache {
	if next == nil {
		panic("cache: ICache needs a next level")
	}
	if cfg.MSHRs <= 0 {
		panic("cache: ICache needs MSHRs > 0")
	}
	if cfg.PQIssuePerCycle <= 0 {
		cfg.PQIssuePerCycle = 2
	}
	return &ICache{
		cfg:      cfg,
		arr:      newArray(cfg.Sets, cfg.Ways),
		next:     next,
		listener: listener,
		mshr:     make([]mshrEntry, cfg.MSHRs),
		pq:       make([]pqEntry, cfg.PQSize),
		nextFill: ^uint64(0),
	}
}

// Stats exposes the counter block.
func (c *ICache) Stats() *Stats { return &c.stats }

// SetListener installs the event listener (used when the prefetcher is
// constructed after the cache).
func (c *ICache) SetListener(l Listener) { c.listener = l }

// Now returns the cache's internal clock (the latest time it has
// processed up to).
func (c *ICache) Now() uint64 { return c.now }

// Contains reports whether the line is present (test helper).
func (c *ICache) Contains(lineAddr uint64) bool { return c.arr.lookup(lineAddr) != nil }

// AdvanceTo processes fills and prefetch issue up to cycle now.
func (c *ICache) AdvanceTo(now uint64) {
	if now < c.now {
		now = c.now
	}
	c.now = now
	for {
		progress := false
		// Apply completed fills in time order. The nextFill watermark
		// skips the scan when no outstanding fill can be due yet.
		if c.nextFill <= now {
			for {
				idx := -1
				for i := range c.mshr {
					e := &c.mshr[i]
					if e.valid && e.readyCycle <= now && (idx < 0 || e.readyCycle < c.mshr[idx].readyCycle) {
						idx = i
					}
				}
				if idx < 0 {
					break
				}
				c.applyFill(idx)
				progress = true
			}
			next := ^uint64(0)
			for i := range c.mshr {
				if c.mshr[i].valid && c.mshr[i].readyCycle < next {
					next = c.mshr[i].readyCycle
				}
			}
			c.nextFill = next
		}
		// Drain the prefetch queue as far as time and MSHRs allow.
		if c.pqLen > 0 && c.drainPQ(now) {
			progress = true
		}
		if !progress {
			return
		}
	}
}

// applyFill installs the line for MSHR entry idx.
func (c *ICache) applyFill(idx int) {
	e := c.mshr[idx]
	c.mshr[idx].valid = false

	v, vidx := c.arr.victim(e.lineAddr)
	if v.valid {
		c.evict(e.readyCycle, v)
	}
	c.arr.install(vidx, line{
		tag:        e.lineAddr,
		valid:      true,
		prefetched: e.isPrefetch,
		accessed:   e.accessBit,
		meta:       e.meta,
	})
	c.arr.touch(v)
	c.stats.Fills++
	c.stats.Writes++
	if e.isPrefetch {
		c.stats.PrefetchFills++
	}
	if c.listener != nil {
		c.listener.OnFill(FillEvent{
			Cycle:       e.readyCycle,
			LineAddr:    e.lineAddr,
			WasPrefetch: e.isPrefetch,
			Demanded:    e.accessBit,
			IssueCycle:  e.issueCycle,
			Meta:        e.meta,
		})
	}
}

func (c *ICache) evict(cycle uint64, v *line) {
	c.stats.Evictions++
	if v.prefetched && !v.accessed {
		c.stats.WrongPrefetches++
	}
	if c.listener != nil {
		c.listener.OnEvict(EvictEvent{
			Cycle:      cycle,
			LineAddr:   v.tag,
			Prefetched: v.prefetched,
			Accessed:   v.accessed,
			Meta:       v.meta,
		})
	}
}

// drainPQ issues queued prefetches whose time has come, honoring issue
// bandwidth and MSHR availability. Reports whether anything issued or
// was dropped.
func (c *ICache) drainPQ(now uint64) bool {
	progress := false
	interval := uint64(1)
	if c.cfg.PQIssuePerCycle > 1 {
		interval = 0 // multiple per cycle approximated as back-to-back
	}
	for c.pqLen > 0 {
		head := c.pq[c.pqHead]
		t := head.readyToIssue
		if t < c.nextIssueSlot {
			t = c.nextIssueSlot
		}
		if t > now {
			return progress
		}
		// Probe the tag array; drop if present.
		c.stats.TagProbes++
		if l := c.arr.lookup(head.lineAddr); l != nil {
			c.stats.PrefetchDroppedHit++
			c.popPQ()
			c.nextIssueSlot = t + interval
			progress = true
			continue
		}
		// Drop if it matches an in-flight request.
		if c.findMSHR(head.lineAddr) >= 0 {
			c.stats.PrefetchDroppedMSHR++
			c.popPQ()
			c.nextIssueSlot = t + interval
			progress = true
			continue
		}
		free := c.freeMSHR()
		if free < 0 {
			// Blocked on MSHRs; retry after the next fill.
			return progress
		}
		ready := c.next.Access(t+c.cfg.Latency, head.lineAddr, true)
		c.mshr[free] = mshrEntry{
			lineAddr:   head.lineAddr,
			issueCycle: t,
			readyCycle: ready,
			meta:       head.meta,
			valid:      true,
			isPrefetch: true,
		}
		if ready < c.nextFill {
			c.nextFill = ready
		}
		c.stats.PrefetchIssued++
		c.popPQ()
		c.nextIssueSlot = t + interval
		progress = true
	}
	return progress
}

// popPQ removes the oldest prefetch-queue entry.
func (c *ICache) popPQ() {
	c.pqHead++
	if c.pqHead == len(c.pq) {
		c.pqHead = 0
	}
	c.pqLen--
}

func (c *ICache) findMSHR(lineAddr uint64) int {
	for i := range c.mshr {
		if c.mshr[i].valid && c.mshr[i].lineAddr == lineAddr {
			return i
		}
	}
	return -1
}

func (c *ICache) freeMSHR() int {
	for i := range c.mshr {
		if !c.mshr[i].valid {
			return i
		}
	}
	return -1
}

// earliestFill returns the soonest readyCycle among valid MSHRs, or 0
// when none are valid.
func (c *ICache) earliestFill() uint64 {
	var best uint64
	found := false
	for i := range c.mshr {
		if c.mshr[i].valid && (!found || c.mshr[i].readyCycle < best) {
			best = c.mshr[i].readyCycle
			found = true
		}
	}
	return best
}

// DemandAccess performs a demand fetch of lineAddr at cycle now and
// returns the cycle at which the line's data is available to the fetch
// engine.
func (c *ICache) DemandAccess(now uint64, lineAddr uint64) uint64 {
	c.AdvanceTo(now)
	now = c.now
	c.stats.Accesses++
	c.stats.TagProbes++

	if l := c.arr.lookup(lineAddr); l != nil {
		c.arr.touch(l)
		c.stats.Hits++
		c.stats.Reads++
		ev := AccessEvent{
			Cycle:         now,
			LineAddr:      lineAddr,
			Hit:           true,
			WasPrefetched: l.prefetched,
			FirstUse:      l.prefetched && !l.accessed,
			Meta:          l.meta,
		}
		if ev.FirstUse {
			c.stats.TimelyPrefetchHits++
		}
		l.accessed = true
		if c.listener != nil {
			c.listener.OnAccess(ev)
		}
		return now + c.cfg.Latency
	}

	if c.cfg.Ideal {
		// Perfect L1I: the access hits, but the line still travels
		// through the lower levels (pollution model).
		c.stats.Hits++
		c.stats.Reads++
		c.next.Access(now+c.cfg.Latency, lineAddr, false)
		v, vidx := c.arr.victim(lineAddr)
		if v.valid {
			c.evict(now, v)
		}
		c.arr.install(vidx, line{tag: lineAddr, valid: true, accessed: true})
		c.arr.touch(v)
		c.stats.Fills++
		return now + c.cfg.Latency
	}

	c.stats.Misses++

	// Merge with an in-flight request?
	if idx := c.findMSHR(lineAddr); idx >= 0 {
		e := &c.mshr[idx]
		c.stats.MSHRMerges++
		ev := AccessEvent{
			Cycle:        now,
			LineAddr:     lineAddr,
			MSHRHit:      true,
			LatePrefetch: e.isPrefetch && !e.accessBit,
			Meta:         e.meta,
			IssueCycle:   e.issueCycle,
			ReadyCycle:   e.readyCycle,
		}
		if ev.LatePrefetch {
			c.stats.LatePrefetches++
		}
		e.accessBit = true
		if c.listener != nil {
			c.listener.OnAccess(ev)
		}
		return e.readyCycle + c.cfg.Latency
	}

	// True miss: if all MSHRs are busy the fetch engine stalls until a
	// slot survives. AdvanceTo's prefetch drain may re-fill a freed
	// slot, but every such steal consumes a bounded PQ entry, so this
	// loop terminates.
	issue := now
	free := c.freeMSHR()
	for free < 0 {
		wait := c.earliestFill()
		if wait <= c.now {
			wait = c.now + 1
		}
		c.AdvanceTo(wait)
		if issue < wait {
			issue = wait
		}
		free = c.freeMSHR()
	}
	ready := c.next.Access(issue+c.cfg.Latency, lineAddr, false)
	c.mshr[free] = mshrEntry{
		lineAddr:   lineAddr,
		issueCycle: now,
		readyCycle: ready,
		valid:      true,
		accessBit:  true,
	}
	if ready < c.nextFill {
		c.nextFill = ready
	}
	if c.listener != nil {
		c.listener.OnAccess(AccessEvent{Cycle: now, LineAddr: lineAddr})
	}
	return ready + c.cfg.Latency
}

// Prefetch enqueues a prefetch for lineAddr, issued no earlier than
// notBefore (the paper adds the Entangled-table access latency here so
// prefetch timing stays honest). meta is returned with every later
// event for this request/line. Reports whether the request was
// accepted (false: prefetch queue full, the paper's 32-entry PQ
// overflow).
func (c *ICache) Prefetch(notBefore uint64, lineAddr uint64, meta uint64) bool {
	c.stats.PrefetchRequested++
	// Probe the tag array up front: a request for a present line would
	// only waste a PQ slot until the drain-time check drops it anyway.
	c.stats.TagProbes++
	if c.arr.lookup(lineAddr) != nil {
		c.stats.PrefetchDroppedHit++
		return true
	}
	if c.findMSHR(lineAddr) >= 0 {
		c.stats.PrefetchDroppedMSHR++
		return true
	}
	for k := 0; k < c.pqLen; k++ {
		i := c.pqHead + k
		if i >= len(c.pq) {
			i -= len(c.pq)
		}
		if c.pq[i].lineAddr == lineAddr {
			return true // already queued
		}
	}
	if c.pqLen >= c.cfg.PQSize {
		c.stats.PrefetchDroppedPQ++
		return false
	}
	if notBefore < c.now {
		notBefore = c.now
	}
	tail := c.pqHead + c.pqLen
	if tail >= len(c.pq) {
		tail -= len(c.pq)
	}
	c.pq[tail] = pqEntry{lineAddr: lineAddr, meta: meta, readyToIssue: notBefore}
	c.pqLen++
	return true
}

// PQLen returns the current prefetch-queue occupancy (test helper).
func (c *ICache) PQLen() int { return c.pqLen }
