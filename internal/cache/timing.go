package cache

// Level is anything that can serve a line request: the L2, the LLC,
// and DRAM implement it. Access returns the cycle at which the
// requested line's data is available to the requester.
type Level interface {
	Access(now uint64, lineAddr uint64, prefetch bool) (ready uint64)
}

// TimingConfig sizes a timing cache level.
type TimingConfig struct {
	Name       string
	Sets, Ways int
	// Latency is the hit latency in cycles.
	Latency uint64
	// ServiceInterval is the minimum spacing between served requests
	// (bandwidth model); 0 means unlimited bandwidth.
	ServiceInterval uint64
}

// TimingCache is a non-L1I cache level (L1D, L2, LLC): it models
// hit/miss timing, bandwidth contention and in-flight fills, but does
// not carry prefetcher metadata. State (tags) updates at access time;
// an in-flight table keeps latency honest for accesses that race an
// ongoing fill.
type TimingCache struct {
	cfg   TimingConfig
	arr   *array
	next  Level
	stats Stats

	busyUntil uint64
	// inflight maps lineAddr -> fill-ready cycle for lines whose tags
	// are already installed but whose data is still arriving.
	inflight map[uint64]uint64
	// sweep is advanced lazily to prune inflight.
	lastPrune uint64
}

// NewTimingCache builds a level backed by next.
func NewTimingCache(cfg TimingConfig, next Level) *TimingCache {
	if next == nil {
		panic("cache: TimingCache needs a next level")
	}
	return &TimingCache{
		cfg:      cfg,
		arr:      newArray(cfg.Sets, cfg.Ways),
		next:     next,
		inflight: make(map[uint64]uint64),
	}
}

// Stats returns a snapshot pointer of the level's counters.
func (c *TimingCache) Stats() *Stats { return &c.stats }

// Name returns the configured level name.
func (c *TimingCache) Name() string { return c.cfg.Name }

// Access implements Level.
func (c *TimingCache) Access(now uint64, lineAddr uint64, prefetch bool) uint64 {
	c.stats.Accesses++
	c.stats.TagProbes++
	if prefetch {
		c.stats.PrefetchIssued++
	}

	// Bandwidth: the request may queue behind earlier ones.
	start := now
	if c.busyUntil > start {
		start = c.busyUntil
	}
	c.busyUntil = start + c.cfg.ServiceInterval

	if l := c.arr.lookup(lineAddr); l != nil {
		c.arr.touch(l)
		c.stats.Hits++
		c.stats.Reads++
		ready := start + c.cfg.Latency
		if fillReady, ok := c.inflight[lineAddr]; ok {
			if fillReady > now {
				// Data still in flight from the earlier miss.
				c.stats.MSHRMerges++
				if fillReady+c.cfg.Latency > ready {
					ready = fillReady + c.cfg.Latency
				}
			} else {
				delete(c.inflight, lineAddr)
			}
		}
		return ready
	}

	c.stats.Misses++
	fillReady := c.next.Access(start+c.cfg.Latency, lineAddr, prefetch)

	// Install the tag now; remember the true data-arrival time.
	v := c.arr.victim(lineAddr)
	if v.valid {
		c.stats.Evictions++
		delete(c.inflight, v.tag)
	}
	*v = line{tag: lineAddr, valid: true}
	c.arr.touch(v)
	c.stats.Fills++
	c.stats.Writes++
	c.inflight[lineAddr] = fillReady
	c.pruneInflight(now)
	return fillReady + c.cfg.Latency
}

// pruneInflight drops completed fills occasionally so the map stays
// small on long runs.
func (c *TimingCache) pruneInflight(now uint64) {
	if len(c.inflight) < 1024 || now < c.lastPrune+10000 {
		return
	}
	c.lastPrune = now
	for a, r := range c.inflight {
		if r <= now {
			delete(c.inflight, a)
		}
	}
}

// Contains reports whether lineAddr currently has a tag in the level
// (used by tests and the Ideal prefetcher's pollution model).
func (c *TimingCache) Contains(lineAddr uint64) bool {
	return c.arr.lookup(lineAddr) != nil
}

// DRAMConfig sizes the memory model.
type DRAMConfig struct {
	// Latency is the base access latency in cycles.
	Latency uint64
	// ServiceInterval models channel bandwidth.
	ServiceInterval uint64
	// JitterMask, when non-zero, adds hash(lineAddr, slot) & JitterMask
	// cycles of deterministic latency variation (bank conflicts, row
	// misses). Must be a low-bit mask, e.g. 0x3F.
	JitterMask uint64
}

// DRAM is the final level.
type DRAM struct {
	cfg       DRAMConfig
	busyUntil uint64
	// Stats.
	Reads uint64
}

// NewDRAM builds the memory model.
func NewDRAM(cfg DRAMConfig) *DRAM { return &DRAM{cfg: cfg} }

// Access implements Level.
func (d *DRAM) Access(now uint64, lineAddr uint64, prefetch bool) uint64 {
	d.Reads++
	start := now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	d.busyUntil = start + d.cfg.ServiceInterval
	lat := d.cfg.Latency
	if d.cfg.JitterMask != 0 {
		lat += mix(lineAddr^now) & d.cfg.JitterMask
	}
	return start + lat
}

// mix is splitmix64's finalizer, used for deterministic jitter.
func mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Translator maps virtual line addresses to physical line addresses
// with 4KB pages. Physical pages are assigned by a deterministic hash,
// so consecutive virtual pages are (almost) never physically
// contiguous — the property §IV-E says slightly reduces prefetcher
// coverage when training on physical addresses.
type Translator struct {
	// PhysBits bounds the physical address space (paper: 48-bit
	// virtual, smaller physical).
	PhysBits int
	// Salt decorrelates mappings between workloads.
	Salt uint64
}

// pageBits for 4KB pages over 64B lines: 6 line-offset bits per page.
const pageOffsetLineBits = 12 - LineBits

// Translate maps a virtual line address to a physical line address.
func (t *Translator) Translate(virtLine uint64) uint64 {
	bits := t.PhysBits
	if bits == 0 {
		bits = 42 // 48-bit physical byte space -> 42-bit line space
	}
	vpn := virtLine >> pageOffsetLineBits
	offset := virtLine & (1<<pageOffsetLineBits - 1)
	ppn := mix(vpn^t.Salt) & (1<<(bits-pageOffsetLineBits) - 1)
	return ppn<<pageOffsetLineBits | offset
}
