package cache

// Level is anything that can serve a line request: the L2, the LLC,
// and DRAM implement it. Access returns the cycle at which the
// requested line's data is available to the requester.
type Level interface {
	Access(now uint64, lineAddr uint64, prefetch bool) (ready uint64)
}

// TimingConfig sizes a timing cache level.
type TimingConfig struct {
	Name       string
	Sets, Ways int
	// Latency is the hit latency in cycles.
	Latency uint64
	// ServiceInterval is the minimum spacing between served requests
	// (bandwidth model); 0 means unlimited bandwidth.
	ServiceInterval uint64
}

// tline is one way of a TimingCache set. The tag and the valid bit
// live in the tarray's side-array; the struct carries only what the
// timing model needs per line, so the big L2/LLC arrays cost 16 bytes
// per way to construct and scan.
type tline struct {
	lru uint64
	// fillReady, when non-zero, is the cycle the line's data arrives
	// (tags install at access time; the data may still be in flight).
	// Storing it in the line replaces a lineAddr-keyed map on the
	// hottest simulation path.
	fillReady uint64
}

// tarray is the TimingCache's set-associative LRU array. Unlike the
// L1I's array, its tags are unique within a set (installs happen only
// after a failed lookup), which licenses two accelerations that would
// change first-match semantics on arrays with duplicates:
//
//   - a per-set hint remembers the last hit way, skipping the scan
//     entirely for repeated tags;
//   - a scan hit transposes the line one way toward the front, so
//     alternating hot lines cluster in the first ways and the scans
//     the hint cannot capture stay short.
//
// Both are invisible to simulated behaviour: eviction is decided by
// the unique lru stamps, and installs always take the leftmost free
// way (valid lines form a contiguous prefix that transposition never
// breaks).
type tarray struct {
	sets, ways int
	// setMask is sets-1 when sets is a power of two (every shipped
	// config); index selection is then a mask instead of a divide.
	setMask uint64
	lines   []tline
	// tags[i] is the tag of way i plus one, or 0 while the way is
	// empty — the zero value works, so a fresh array needs no
	// initialization pass.
	tags []uint64
	tick uint64
	// hint holds, per set, 1+the way of the last lookupOrVictim hit
	// (0 = no hint).
	hint []int32
}

func newTArray(sets, ways int) *tarray {
	if sets <= 0 || ways <= 0 {
		panic("cache: array needs positive sets and ways")
	}
	a := &tarray{
		sets: sets, ways: ways,
		lines: make([]tline, sets*ways),
		tags:  make([]uint64, sets*ways),
		hint:  make([]int32, sets),
	}
	if sets&(sets-1) == 0 {
		a.setMask = uint64(sets - 1)
	}
	return a
}

func (a *tarray) setIndex(lineAddr uint64) int {
	if a.setMask != 0 || a.sets == 1 {
		return int(lineAddr & a.setMask)
	}
	return int(lineAddr % uint64(a.sets))
}

// lookup returns the line holding lineAddr, or nil (plain scan; used
// off the hot path by Contains and tests).
func (a *tarray) lookup(lineAddr uint64) *tline {
	base := a.setIndex(lineAddr) * a.ways
	tags := a.tags[base : base+a.ways]
	want := lineAddr + 1
	for i, t := range tags {
		if t == want {
			return &a.lines[base+i]
		}
	}
	return nil
}

// lookupOrVictim resolves a hit line or, on miss, the index of the
// replacement way (an empty way if any, otherwise the LRU way). The
// common paths only ever touch the 8-byte tag side-array.
func (a *tarray) lookupOrVictim(lineAddr uint64) (hit *tline, vidx int) {
	s := a.setIndex(lineAddr)
	base := s * a.ways
	tags := a.tags[base : base+a.ways]
	want := lineAddr + 1
	if h := a.hint[s]; h != 0 && tags[h-1] == want {
		return &a.lines[base+int(h)-1], 0
	}
	invalid := -1
	for i, t := range tags {
		if t == want {
			if i > 0 {
				a.lines[base+i], a.lines[base+i-1] = a.lines[base+i-1], a.lines[base+i]
				tags[i], tags[i-1] = tags[i-1], tags[i]
				a.hint[s] = int32(i)
				return &a.lines[base+i-1], 0
			}
			a.hint[s] = 1
			return &a.lines[base], 0
		}
		if t == 0 && invalid < 0 {
			invalid = i
		}
	}
	if invalid >= 0 {
		return nil, base + invalid
	}
	// Full set: fall back to an LRU scan over the structs.
	set := a.lines[base : base+a.ways]
	vi := 0
	for i := range set {
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	return nil, base + vi
}

// touch marks a line most-recently used.
func (a *tarray) touch(l *tline) {
	a.tick++
	l.lru = a.tick
}

// install replaces the way at idx (as reported by lookupOrVictim).
func (a *tarray) install(idx int, lineAddr, fillReady uint64) {
	a.tags[idx] = lineAddr + 1
	a.lines[idx] = tline{fillReady: fillReady}
}

// TimingCache is a non-L1I cache level (L1D, L2, LLC): it models
// hit/miss timing, bandwidth contention and in-flight fills, but does
// not carry prefetcher metadata. State (tags) updates at access time;
// the per-line fillReady keeps latency honest for accesses that race
// an ongoing fill.
type TimingCache struct {
	cfg   TimingConfig
	arr   *tarray
	next  Level
	stats Stats

	busyUntil uint64
}

// NewTimingCache builds a level backed by next.
func NewTimingCache(cfg TimingConfig, next Level) *TimingCache {
	if next == nil {
		panic("cache: TimingCache needs a next level")
	}
	return &TimingCache{
		cfg:  cfg,
		arr:  newTArray(cfg.Sets, cfg.Ways),
		next: next,
	}
}

// Stats returns a snapshot pointer of the level's counters.
func (c *TimingCache) Stats() *Stats { return &c.stats }

// Name returns the configured level name.
func (c *TimingCache) Name() string { return c.cfg.Name }

// Access implements Level.
func (c *TimingCache) Access(now uint64, lineAddr uint64, prefetch bool) uint64 {
	c.stats.Accesses++
	c.stats.TagProbes++
	if prefetch {
		c.stats.PrefetchIssued++
	}

	// Bandwidth: the request may queue behind earlier ones.
	start := now
	if c.busyUntil > start {
		start = c.busyUntil
	}
	c.busyUntil = start + c.cfg.ServiceInterval

	l, vidx := c.arr.lookupOrVictim(lineAddr)
	if l != nil {
		c.arr.touch(l)
		c.stats.Hits++
		c.stats.Reads++
		ready := start + c.cfg.Latency
		if l.fillReady != 0 {
			if l.fillReady > now {
				// Data still in flight from the earlier miss.
				c.stats.MSHRMerges++
				if l.fillReady+c.cfg.Latency > ready {
					ready = l.fillReady + c.cfg.Latency
				}
			} else {
				l.fillReady = 0
			}
		}
		return ready
	}

	c.stats.Misses++
	fillReady := c.next.Access(start+c.cfg.Latency, lineAddr, prefetch)

	// Install the tag now; remember the true data-arrival time in the
	// line itself (eviction discards it along with the tag).
	if c.arr.tags[vidx] != 0 {
		c.stats.Evictions++
	}
	c.arr.install(vidx, lineAddr, fillReady)
	c.arr.touch(&c.arr.lines[vidx])
	c.stats.Fills++
	c.stats.Writes++
	return fillReady + c.cfg.Latency
}

// Contains reports whether lineAddr currently has a tag in the level
// (used by tests and the Ideal prefetcher's pollution model).
func (c *TimingCache) Contains(lineAddr uint64) bool {
	return c.arr.lookup(lineAddr) != nil
}

// DRAMConfig sizes the memory model.
type DRAMConfig struct {
	// Latency is the base access latency in cycles.
	Latency uint64
	// ServiceInterval models channel bandwidth.
	ServiceInterval uint64
	// JitterMask, when non-zero, adds hash(lineAddr, slot) & JitterMask
	// cycles of deterministic latency variation (bank conflicts, row
	// misses). Must be a low-bit mask, e.g. 0x3F.
	JitterMask uint64
}

// DRAM is the final level.
type DRAM struct {
	cfg       DRAMConfig
	busyUntil uint64
	// Stats.
	Reads uint64
}

// NewDRAM builds the memory model.
func NewDRAM(cfg DRAMConfig) *DRAM { return &DRAM{cfg: cfg} }

// Access implements Level.
func (d *DRAM) Access(now uint64, lineAddr uint64, prefetch bool) uint64 {
	d.Reads++
	start := now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	d.busyUntil = start + d.cfg.ServiceInterval
	lat := d.cfg.Latency
	if d.cfg.JitterMask != 0 {
		lat += mix(lineAddr^now) & d.cfg.JitterMask
	}
	return start + lat
}

// mix is splitmix64's finalizer, used for deterministic jitter.
func mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Translator maps virtual line addresses to physical line addresses
// with 4KB pages. Physical pages are assigned by a deterministic hash,
// so consecutive virtual pages are (almost) never physically
// contiguous — the property §IV-E says slightly reduces prefetcher
// coverage when training on physical addresses.
type Translator struct {
	// PhysBits bounds the physical address space (paper: 48-bit
	// virtual, smaller physical).
	PhysBits int
	// Salt decorrelates mappings between workloads.
	Salt uint64
}

// pageBits for 4KB pages over 64B lines: 6 line-offset bits per page.
const pageOffsetLineBits = 12 - LineBits

// Translate maps a virtual line address to a physical line address.
func (t *Translator) Translate(virtLine uint64) uint64 {
	bits := t.PhysBits
	if bits == 0 {
		bits = 42 // 48-bit physical byte space -> 42-bit line space
	}
	vpn := virtLine >> pageOffsetLineBits
	offset := virtLine & (1<<pageOffsetLineBits - 1)
	ppn := mix(vpn^t.Salt) & (1<<(bits-pageOffsetLineBits) - 1)
	return ppn<<pageOffsetLineBits | offset
}
