// Package cache models the memory hierarchy of the paper's baseline
// (Table III): an instrumented L1I with MSHRs and a prefetch queue, an
// L1D, a shared L2, an LLC and DRAM.
//
// Timing uses latency propagation: a miss computes its fill time by
// recursively asking the next level, which accounts for its own hit
// latency, bandwidth (busy-until) contention and, for DRAM, a
// deterministic latency jitter. Fills are applied lazily when simulated
// time reaches them. This gives the variable, contended miss latencies
// that the Entangling prefetcher's timeliness mechanism is built
// around, without a global event queue.
package cache

// LineBits is log2 of the cache line size; all caches use 64-byte
// lines as in the paper.
const LineBits = 6

// LineSize is the cache line size in bytes.
const LineSize = 1 << LineBits

// LineAddr converts a byte address to a line address.
func LineAddr(addr uint64) uint64 { return addr >> LineBits }

// line is one way of one set.
type line struct {
	tag   uint64
	lru   uint64
	valid bool
	// prefetched is set when the line was brought in by a prefetch.
	prefetched bool
	// accessed is the paper's per-line "access bit": cleared on a
	// prefetch fill, set on the first demand access.
	accessed bool
	// meta is opaque prefetcher metadata (the paper's src-entangled
	// field stored alongside L1I lines).
	meta uint64
}

// array is the L1I's set-associative tag/data array with LRU
// replacement.
//
// Tags live twice: in each line struct and in the dense tags
// side-array. Way scans walk the 8-byte tags instead of the 32-byte
// line structs (4x less memory touched); the structs hold everything
// else. The side-array stores tag+1 so that the zero value means
// "empty way" — a fresh array needs no initialization pass. install is
// the only way to write a line, which keeps the two representations in
// sync.
//
// Unlike the TimingCache's tarray, this array can hold duplicate tags
// in one set (an Ideal-mode install can race an in-flight prefetch
// fill, and in timing mode a demand miss stalling for a free MSHR can
// let drainPQ issue a second fill for the same line), so lookup must
// preserve first-match scan order and no MRU hint or reordering is
// applied.
type array struct {
	sets, ways int
	// setMask is sets-1 when sets is a power of two (every shipped
	// config); index selection is then a mask instead of a divide.
	setMask uint64
	lines   []line
	// tags[i] is lines[i].tag+1, or 0 while lines[i] is invalid.
	tags []uint64
	tick uint64
}

func newArray(sets, ways int) *array {
	if sets <= 0 || ways <= 0 {
		panic("cache: array needs positive sets and ways")
	}
	a := &array{
		sets: sets, ways: ways,
		lines: make([]line, sets*ways),
		tags:  make([]uint64, sets*ways),
	}
	if sets&(sets-1) == 0 {
		a.setMask = uint64(sets - 1)
	}
	return a
}

// install writes nl into the way at idx (as reported by victim or
// lookupMRUOrVictim) and mirrors its tag into the side-array. Every
// line write must go through it; lines are never invalidated, only
// replaced.
func (a *array) install(idx int, nl line) {
	a.tags[idx] = nl.tag + 1
	a.lines[idx] = nl
}

func (a *array) setIndex(lineAddr uint64) int {
	if a.setMask != 0 || a.sets == 1 {
		return int(lineAddr & a.setMask)
	}
	return int(lineAddr % uint64(a.sets))
}

// lookup returns the first line holding lineAddr, or nil. Invalid
// ways hold 0 in the side-array, which a sought tag+1 never equals, so
// no valid check is needed; first-match order over the ways is
// identical to a struct scan, which matters because this array can
// hold duplicate tags (see the type comment).
func (a *array) lookup(lineAddr uint64) *line {
	base := a.setIndex(lineAddr) * a.ways
	tags := a.tags[base : base+a.ways]
	want := lineAddr + 1
	for i, t := range tags {
		if t == want {
			return &a.lines[base+i]
		}
	}
	return nil
}

// touch marks a line most-recently used.
func (a *array) touch(l *line) {
	a.tick++
	l.lru = a.tick
}

// victim returns the line to replace in lineAddr's set — an invalid
// way if any, otherwise the LRU way — along with its index for
// install.
func (a *array) victim(lineAddr uint64) (*line, int) {
	base := a.setIndex(lineAddr) * a.ways
	set := a.lines[base : base+a.ways]
	vi := 0
	for i := range set {
		if !set[i].valid {
			return &set[i], base + i
		}
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	return &set[vi], base + vi
}

// Stats counts the events the harness and the energy model consume.
type Stats struct {
	// Demand-side.
	Accesses uint64
	Hits     uint64
	Misses   uint64
	// MSHRMerges counts demand accesses that matched an in-flight fill.
	MSHRMerges uint64
	Fills      uint64
	Evictions  uint64
	Writebacks uint64

	// Prefetch-side (L1I only).
	PrefetchRequested   uint64 // calls to Prefetch()
	PrefetchDroppedPQ   uint64 // dropped: prefetch queue full
	PrefetchDroppedHit  uint64 // dropped: line already present
	PrefetchDroppedMSHR uint64 // dropped: matched in-flight request
	PrefetchIssued      uint64 // sent to the next level
	PrefetchFills       uint64 // prefetch fills that installed a line
	TimelyPrefetchHits  uint64 // demand hits on a not-yet-used prefetched line
	LatePrefetches      uint64 // demand misses merged with in-flight prefetches
	WrongPrefetches     uint64 // prefetched lines evicted unused

	// Energy accounting.
	TagProbes uint64
	Reads     uint64
	Writes    uint64
}

// Sub returns s - o field-wise; the harness uses it to discard warmup
// counts from a measurement window.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Accesses:            s.Accesses - o.Accesses,
		Hits:                s.Hits - o.Hits,
		Misses:              s.Misses - o.Misses,
		MSHRMerges:          s.MSHRMerges - o.MSHRMerges,
		Fills:               s.Fills - o.Fills,
		Evictions:           s.Evictions - o.Evictions,
		Writebacks:          s.Writebacks - o.Writebacks,
		PrefetchRequested:   s.PrefetchRequested - o.PrefetchRequested,
		PrefetchDroppedPQ:   s.PrefetchDroppedPQ - o.PrefetchDroppedPQ,
		PrefetchDroppedHit:  s.PrefetchDroppedHit - o.PrefetchDroppedHit,
		PrefetchDroppedMSHR: s.PrefetchDroppedMSHR - o.PrefetchDroppedMSHR,
		PrefetchIssued:      s.PrefetchIssued - o.PrefetchIssued,
		PrefetchFills:       s.PrefetchFills - o.PrefetchFills,
		TimelyPrefetchHits:  s.TimelyPrefetchHits - o.TimelyPrefetchHits,
		LatePrefetches:      s.LatePrefetches - o.LatePrefetches,
		WrongPrefetches:     s.WrongPrefetches - o.WrongPrefetches,
		TagProbes:           s.TagProbes - o.TagProbes,
		Reads:               s.Reads - o.Reads,
		Writes:              s.Writes - o.Writes,
	}
}

// UsefulPrefetches is the number of prefetched lines that served at
// least one demand access (timely hits plus late-but-demanded
// prefetches), the numerator of the paper's accuracy metric.
func (s *Stats) UsefulPrefetches() uint64 { return s.TimelyPrefetchHits + s.LatePrefetches }

// Accuracy is useful prefetches over prefetches that actually brought
// a line in (the paper's "ratio of useful prefetches").
func (s *Stats) Accuracy() float64 {
	if s.PrefetchFills == 0 {
		return 0
	}
	return float64(s.UsefulPrefetches()) / float64(s.PrefetchFills)
}

// MissRatio is demand misses over demand accesses.
func (s *Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}
