// Package cache models the memory hierarchy of the paper's baseline
// (Table III): an instrumented L1I with MSHRs and a prefetch queue, an
// L1D, a shared L2, an LLC and DRAM.
//
// Timing uses latency propagation: a miss computes its fill time by
// recursively asking the next level, which accounts for its own hit
// latency, bandwidth (busy-until) contention and, for DRAM, a
// deterministic latency jitter. Fills are applied lazily when simulated
// time reaches them. This gives the variable, contended miss latencies
// that the Entangling prefetcher's timeliness mechanism is built
// around, without a global event queue.
package cache

// LineBits is log2 of the cache line size; all caches use 64-byte
// lines as in the paper.
const LineBits = 6

// LineSize is the cache line size in bytes.
const LineSize = 1 << LineBits

// LineAddr converts a byte address to a line address.
func LineAddr(addr uint64) uint64 { return addr >> LineBits }

// line is one way of one set.
type line struct {
	tag   uint64
	lru   uint64
	valid bool
	// prefetched is set when the line was brought in by a prefetch.
	prefetched bool
	// accessed is the paper's per-line "access bit": cleared on a
	// prefetch fill, set on the first demand access.
	accessed bool
	// meta is opaque prefetcher metadata (the paper's src-entangled
	// field stored alongside L1I lines).
	meta uint64
}

// array is a set-associative tag/data array with LRU replacement.
type array struct {
	sets, ways int
	lines      []line
	tick       uint64
}

func newArray(sets, ways int) *array {
	if sets <= 0 || ways <= 0 {
		panic("cache: array needs positive sets and ways")
	}
	return &array{sets: sets, ways: ways, lines: make([]line, sets*ways)}
}

func (a *array) set(lineAddr uint64) []line {
	s := int(lineAddr % uint64(a.sets))
	return a.lines[s*a.ways : (s+1)*a.ways]
}

// lookup returns the line holding lineAddr, or nil.
func (a *array) lookup(lineAddr uint64) *line {
	set := a.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return &set[i]
		}
	}
	return nil
}

// touch marks a line most-recently used.
func (a *array) touch(l *line) {
	a.tick++
	l.lru = a.tick
}

// victim returns the line to replace in lineAddr's set: an invalid way
// if any, otherwise the LRU way.
func (a *array) victim(lineAddr uint64) *line {
	set := a.set(lineAddr)
	v := &set[0]
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
		if set[i].lru < v.lru {
			v = &set[i]
		}
	}
	return v
}

// Stats counts the events the harness and the energy model consume.
type Stats struct {
	// Demand-side.
	Accesses uint64
	Hits     uint64
	Misses   uint64
	// MSHRMerges counts demand accesses that matched an in-flight fill.
	MSHRMerges uint64
	Fills      uint64
	Evictions  uint64
	Writebacks uint64

	// Prefetch-side (L1I only).
	PrefetchRequested   uint64 // calls to Prefetch()
	PrefetchDroppedPQ   uint64 // dropped: prefetch queue full
	PrefetchDroppedHit  uint64 // dropped: line already present
	PrefetchDroppedMSHR uint64 // dropped: matched in-flight request
	PrefetchIssued      uint64 // sent to the next level
	PrefetchFills       uint64 // prefetch fills that installed a line
	TimelyPrefetchHits  uint64 // demand hits on a not-yet-used prefetched line
	LatePrefetches      uint64 // demand misses merged with in-flight prefetches
	WrongPrefetches     uint64 // prefetched lines evicted unused

	// Energy accounting.
	TagProbes uint64
	Reads     uint64
	Writes    uint64
}

// Sub returns s - o field-wise; the harness uses it to discard warmup
// counts from a measurement window.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Accesses:            s.Accesses - o.Accesses,
		Hits:                s.Hits - o.Hits,
		Misses:              s.Misses - o.Misses,
		MSHRMerges:          s.MSHRMerges - o.MSHRMerges,
		Fills:               s.Fills - o.Fills,
		Evictions:           s.Evictions - o.Evictions,
		Writebacks:          s.Writebacks - o.Writebacks,
		PrefetchRequested:   s.PrefetchRequested - o.PrefetchRequested,
		PrefetchDroppedPQ:   s.PrefetchDroppedPQ - o.PrefetchDroppedPQ,
		PrefetchDroppedHit:  s.PrefetchDroppedHit - o.PrefetchDroppedHit,
		PrefetchDroppedMSHR: s.PrefetchDroppedMSHR - o.PrefetchDroppedMSHR,
		PrefetchIssued:      s.PrefetchIssued - o.PrefetchIssued,
		PrefetchFills:       s.PrefetchFills - o.PrefetchFills,
		TimelyPrefetchHits:  s.TimelyPrefetchHits - o.TimelyPrefetchHits,
		LatePrefetches:      s.LatePrefetches - o.LatePrefetches,
		WrongPrefetches:     s.WrongPrefetches - o.WrongPrefetches,
		TagProbes:           s.TagProbes - o.TagProbes,
		Reads:               s.Reads - o.Reads,
		Writes:              s.Writes - o.Writes,
	}
}

// UsefulPrefetches is the number of prefetched lines that served at
// least one demand access (timely hits plus late-but-demanded
// prefetches), the numerator of the paper's accuracy metric.
func (s *Stats) UsefulPrefetches() uint64 { return s.TimelyPrefetchHits + s.LatePrefetches }

// Accuracy is useful prefetches over prefetches that actually brought
// a line in (the paper's "ratio of useful prefetches").
func (s *Stats) Accuracy() float64 {
	if s.PrefetchFills == 0 {
		return 0
	}
	return float64(s.UsefulPrefetches()) / float64(s.PrefetchFills)
}

// MissRatio is demand misses over demand accesses.
func (s *Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}
