package cache

import (
	"testing"
	"testing/quick"
)

func TestPrefetchNotBeforeHonored(t *testing.T) {
	ic, _, _ := newTestICache(false)
	ic.Prefetch(50, 300, 0)
	// Advancing to just before the release time must not issue it.
	ic.AdvanceTo(49)
	if ic.Stats().PrefetchIssued != 0 {
		t.Error("prefetch issued before notBefore")
	}
	ic.AdvanceTo(50)
	if ic.Stats().PrefetchIssued != 1 {
		t.Error("prefetch not issued at notBefore")
	}
}

func TestPrefetchDuplicateInQueueCoalesced(t *testing.T) {
	ic, _, _ := newTestICache(false)
	ic.Prefetch(100, 300, 0)
	ic.Prefetch(100, 300, 0)
	if ic.PQLen() != 1 {
		t.Errorf("duplicate prefetch queued: PQ len %d", ic.PQLen())
	}
}

func TestPrefetchMetaZeroAllowed(t *testing.T) {
	ic, rec, _ := newTestICache(false)
	ic.Prefetch(0, 77, 0)
	ic.AdvanceTo(500)
	if len(rec.fills) != 1 || rec.fills[0].Meta != 0 {
		t.Fatalf("fill: %+v", rec.fills)
	}
}

func TestPQBlockedByMSHRRetries(t *testing.T) {
	// Fill every MSHR with demand misses, queue a prefetch, and check
	// it issues after a fill frees a slot.
	ic, _, _ := newTestICache(false) // 4 MSHRs, mem latency 50
	for i := uint64(0); i < 4; i++ {
		ic.DemandAccess(0, 100+i)
	}
	ic.Prefetch(0, 300, 0)
	ic.AdvanceTo(10)
	if ic.Stats().PrefetchIssued != 0 {
		t.Fatal("prefetch issued with MSHRs full")
	}
	ic.AdvanceTo(200) // all demand fills complete
	if ic.Stats().PrefetchIssued != 1 {
		t.Errorf("prefetch never issued after MSHRs freed: %+v", ic.Stats())
	}
}

func TestFillLatencyMeasured(t *testing.T) {
	ic, rec, _ := newTestICache(false)
	ic.DemandAccess(100, 42)
	ic.AdvanceTo(1000)
	if len(rec.fills) != 1 {
		t.Fatal("no fill")
	}
	f := rec.fills[0]
	if f.IssueCycle != 100 {
		t.Errorf("IssueCycle = %d", f.IssueCycle)
	}
	if f.Latency() != f.Cycle-100 {
		t.Errorf("Latency() inconsistent")
	}
}

func TestEvictFiresOnDemandReplacement(t *testing.T) {
	// Sets=4, Ways=2: three demand fills into set 0 evict the oldest.
	ic, rec, _ := newTestICache(false)
	for i, addr := range []uint64{0, 4, 8} {
		ic.DemandAccess(uint64(i)*1000, addr)
		ic.AdvanceTo(uint64(i+1) * 1000)
	}
	found := false
	for _, e := range rec.evicts {
		if e.LineAddr == 0 {
			found = true
			if e.Prefetched || !e.Accessed {
				t.Errorf("demand line evict flags: %+v", e)
			}
		}
	}
	if !found {
		t.Error("demand eviction not reported")
	}
}

func TestICacheStatsConsistency(t *testing.T) {
	// Property: after arbitrary access/prefetch interleavings,
	// Hits + Misses == Accesses, and every installed prefetch line is
	// accounted as exactly one of timely/late/wrong/still-resident.
	ic, _, _ := newTestICache(false)
	f := func(ops []uint16) bool {
		now := ic.Now()
		for _, op := range ops {
			now += uint64(op % 7)
			addr := uint64(op % 64)
			if op%3 == 0 {
				ic.Prefetch(now, addr, 0)
			} else {
				ic.DemandAccess(now, addr)
			}
		}
		ic.AdvanceTo(now + 10_000)
		st := ic.Stats()
		return st.Hits+st.Misses == st.Accesses &&
			st.PrefetchIssued == st.PrefetchFills+uint64(pendingPrefetchMSHRs(ic))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// pendingPrefetchMSHRs counts in-flight prefetch MSHR entries.
func pendingPrefetchMSHRs(c *ICache) int {
	n := 0
	for i := range c.mshr {
		if c.mshr[i].valid && c.mshr[i].isPrefetch {
			n++
		}
	}
	return n
}

func TestTimingCacheInflightFill(t *testing.T) {
	mem := &fixedLevel{latency: 10}
	l2 := NewTimingCache(TimingConfig{Sets: 4096, Ways: 2, Latency: 1}, mem)

	// Miss at t=0: tag installs immediately, data arrives at 0+1+10=11.
	ready := l2.Access(0, 42, false)
	if ready != 12 {
		t.Fatalf("miss ready = %d, want 12", ready)
	}
	if l := l2.arr.lookup(42); l == nil || l.fillReady != 11 {
		t.Fatalf("installed line should carry fillReady=11, got %+v", l)
	}

	// Re-access at t=5 while the fill is still in flight: this is a tag
	// hit that must merge with the fill, not complete at hit latency.
	ready = l2.Access(5, 42, false)
	if ready != 12 {
		t.Errorf("in-flight hit ready = %d, want 12", ready)
	}
	if l2.stats.MSHRMerges != 1 {
		t.Errorf("MSHRMerges = %d, want 1", l2.stats.MSHRMerges)
	}

	// Access after the fill has landed: plain hit, and the in-flight
	// marker is cleared so later hits skip the merge path.
	ready = l2.Access(20, 42, false)
	if ready != 21 {
		t.Errorf("post-fill hit ready = %d, want 21", ready)
	}
	if l := l2.arr.lookup(42); l == nil || l.fillReady != 0 {
		t.Errorf("fillReady should clear once the fill lands, got %+v", l)
	}
	if l2.stats.MSHRMerges != 1 {
		t.Errorf("post-fill hit counted as merge: MSHRMerges = %d", l2.stats.MSHRMerges)
	}
}
