package cache

import "entangling/internal/stats"

// This file implements the prefetch-lifecycle tracker: a pure observer
// of the L1I event stream that classifies every prefetch by its fate
// (timely / late / early-evicted / inaccurate) and feeds late/useless
// outcomes back to the prefetcher, so adaptive policies (degree or
// distance throttling) have a hardware-plausible signal to work with.
// The tracker never influences simulated timing.

// PrefetchFeedbackKind distinguishes lifecycle feedback events.
type PrefetchFeedbackKind uint8

const (
	// FeedbackLate: a demand arrived while the prefetch was in flight;
	// Cycles is the latency the prefetch failed to hide.
	FeedbackLate PrefetchFeedbackKind = iota
	// FeedbackUseless: the prefetched line was evicted without serving
	// a demand access; Cycles is the time it sat resident.
	FeedbackUseless
)

// PrefetchFeedback is one lifecycle outcome delivered to the
// prefetcher that issued the request.
type PrefetchFeedback struct {
	Kind     PrefetchFeedbackKind
	LineAddr uint64
	// Meta is the opaque metadata the prefetcher attached to the
	// request.
	Meta uint64
	// Cycles quantifies the outcome (see the Kind constants).
	Cycles uint64
}

// FeedbackSink receives prefetch lifecycle feedback. Prefetchers
// implement it (prefetch.Base provides a no-op) to observe their own
// late and useless prefetches.
type FeedbackSink interface {
	OnPrefetchFeedback(PrefetchFeedback)
}

// trackedEvictCap bounds the evicted-unused set the tracker keeps for
// early-vs-inaccurate classification. Entries dropped at the cap count
// as inaccurate, which is the conservative direction.
const trackedEvictCap = 1 << 15

// LifecycleTracker is a cache.Listener that maintains the
// PrefetchLifecycle breakdown and a fill-to-use lead histogram.
type LifecycleTracker struct {
	lc   stats.PrefetchLifecycle
	lead *stats.Histogram
	sink FeedbackSink

	// fills maps resident, not-yet-used prefetched lines to their fill
	// cycle (bounded by cache capacity).
	fills map[uint64]uint64
	// evicted holds prefetched lines evicted unused; a later demand to
	// one of them reclassifies it from inaccurate to early-evicted.
	// ring evicts the oldest entry once the cap is reached.
	evicted map[uint64]struct{}
	ring    []uint64
	ringPos int
}

// NewLifecycleTracker builds a tracker. sink may be nil.
func NewLifecycleTracker(sink FeedbackSink) *LifecycleTracker {
	return &LifecycleTracker{
		// 512 one-cycle buckets cover the fill-to-use leads the DRAM
		// latency can produce; longer leads land in the overflow.
		lead:    stats.NewHistogram(0, 511),
		sink:    sink,
		fills:   make(map[uint64]uint64),
		evicted: make(map[uint64]struct{}),
	}
}

// Lifecycle returns the current counter block (copy).
func (t *LifecycleTracker) Lifecycle() stats.PrefetchLifecycle { return t.lc }

// LeadHistogram exposes the fill-to-first-use lead distribution of
// timely prefetches (cycles).
func (t *LifecycleTracker) LeadHistogram() *stats.Histogram { return t.lead }

// OnAccess implements Listener.
func (t *LifecycleTracker) OnAccess(e AccessEvent) {
	// A demand for a line we saw evicted unused: the prefetch was
	// early, not wrong. The length guard keeps configurations that
	// never prefetch (or haven't evicted one unused yet) from paying a
	// map probe on every access.
	if len(t.evicted) != 0 {
		if _, ok := t.evicted[e.LineAddr]; ok {
			delete(t.evicted, e.LineAddr)
			t.lc.EarlyEvicted++
		}
	}
	switch {
	case e.Hit && e.FirstUse:
		t.lc.Timely++
		if fillCycle, ok := t.fills[e.LineAddr]; ok {
			lead := e.Cycle - fillCycle
			t.lc.LeadCycles += lead
			t.lead.Add(int(lead))
			delete(t.fills, e.LineAddr)
		}
	case e.MSHRHit && e.LatePrefetch:
		t.lc.Late++
		if e.Cycle >= e.IssueCycle {
			t.lc.LateCyclesSaved += e.Cycle - e.IssueCycle
		}
		var short uint64
		if e.ReadyCycle > e.Cycle {
			short = e.ReadyCycle - e.Cycle
		}
		t.lc.LateCyclesShort += short
		if t.sink != nil {
			t.sink.OnPrefetchFeedback(PrefetchFeedback{
				Kind:     FeedbackLate,
				LineAddr: e.LineAddr,
				Meta:     e.Meta,
				Cycles:   short,
			})
		}
	}
}

// OnFill implements Listener.
func (t *LifecycleTracker) OnFill(e FillEvent) {
	if e.WasPrefetch && !e.Demanded {
		t.fills[e.LineAddr] = e.Cycle
	}
}

// OnEvict implements Listener.
func (t *LifecycleTracker) OnEvict(e EvictEvent) {
	fillCycle, hadFill := t.fills[e.LineAddr]
	delete(t.fills, e.LineAddr)
	if !e.Prefetched || e.Accessed {
		return
	}
	t.lc.EvictedUnused++
	t.remember(e.LineAddr)
	if t.sink != nil {
		var resident uint64
		if hadFill && e.Cycle > fillCycle {
			resident = e.Cycle - fillCycle
		}
		t.sink.OnPrefetchFeedback(PrefetchFeedback{
			Kind:     FeedbackUseless,
			LineAddr: e.LineAddr,
			Meta:     e.Meta,
			Cycles:   resident,
		})
	}
}

// remember adds line to the evicted-unused set, displacing the oldest
// entry at capacity.
func (t *LifecycleTracker) remember(line uint64) {
	if _, ok := t.evicted[line]; ok {
		return
	}
	if len(t.ring) < trackedEvictCap {
		t.ring = append(t.ring, line)
	} else {
		delete(t.evicted, t.ring[t.ringPos])
		t.ring[t.ringPos] = line
		t.ringPos = (t.ringPos + 1) % trackedEvictCap
	}
	t.evicted[line] = struct{}{}
}
