package cache

import (
	"testing"
	"testing/quick"
)

// fixedLevel is a Level with constant latency, recording accesses.
type fixedLevel struct {
	latency  uint64
	accesses []uint64
	pfCount  int
}

func (f *fixedLevel) Access(now uint64, lineAddr uint64, prefetch bool) uint64 {
	f.accesses = append(f.accesses, lineAddr)
	if prefetch {
		f.pfCount++
	}
	return now + f.latency
}

func TestArrayLRU(t *testing.T) {
	a := newArray(1, 2)
	install := func(addr uint64) {
		v, vidx := a.victim(addr)
		a.install(vidx, line{tag: addr, valid: true})
		a.touch(v)
	}
	install(1)
	install(2)
	// Touch 1 so 2 becomes LRU.
	a.touch(a.lookup(1))
	install(3)
	if a.lookup(2) != nil {
		t.Error("LRU line 2 not evicted")
	}
	if a.lookup(1) == nil || a.lookup(3) == nil {
		t.Error("wrong eviction choice")
	}
}

func TestArrayVictimPrefersInvalid(t *testing.T) {
	a := newArray(1, 4)
	v, vidx := a.victim(7)
	a.install(vidx, line{tag: 7, valid: true})
	a.touch(v)
	if got, _ := a.victim(8); got.valid {
		t.Error("victim chose a valid line while invalid ways exist")
	}
}

func TestArrayPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newArray(0, 4)
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0) != 0 || LineAddr(63) != 0 || LineAddr(64) != 1 || LineAddr(130) != 2 {
		t.Error("LineAddr arithmetic wrong")
	}
}

func TestTimingCacheHitMiss(t *testing.T) {
	mem := &fixedLevel{latency: 100}
	l2 := NewTimingCache(TimingConfig{Name: "L2", Sets: 16, Ways: 4, Latency: 10}, mem)

	// Cold miss: latency = own 10 (lookup) + 100 (mem) + 10 (fill-to-use).
	ready := l2.Access(0, 42, false)
	if ready != 120 {
		t.Errorf("miss ready = %d, want 120", ready)
	}
	// Hit well after the fill.
	ready = l2.Access(500, 42, false)
	if ready != 510 {
		t.Errorf("hit ready = %d, want 510", ready)
	}
	st := l2.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats: %+v", st)
	}
	if !l2.Contains(42) || l2.Contains(43) {
		t.Error("Contains wrong")
	}
	if l2.Name() != "L2" {
		t.Error("Name wrong")
	}
}

func TestTimingCacheInflightMerge(t *testing.T) {
	mem := &fixedLevel{latency: 100}
	l2 := NewTimingCache(TimingConfig{Sets: 16, Ways: 4, Latency: 10}, mem)
	first := l2.Access(0, 42, false) // data at 120
	// A second access at cycle 20 finds the tag installed but data in
	// flight; it must not be served before the fill.
	second := l2.Access(20, 42, false)
	if second < first {
		t.Errorf("merged access ready %d before fill %d", second, first)
	}
	if l2.Stats().MSHRMerges != 1 {
		t.Errorf("MSHRMerges = %d", l2.Stats().MSHRMerges)
	}
	// After the fill, plain hit timing again.
	third := l2.Access(1000, 42, false)
	if third != 1010 {
		t.Errorf("post-fill hit ready = %d", third)
	}
}

func TestTimingCacheBandwidthContention(t *testing.T) {
	mem := &fixedLevel{latency: 100}
	l2 := NewTimingCache(TimingConfig{Sets: 16, Ways: 4, Latency: 10, ServiceInterval: 4}, mem)
	a := l2.Access(0, 1, false)
	b := l2.Access(0, 2, false) // same cycle: must queue 4 cycles
	if b != a+4 {
		t.Errorf("contended access ready %d, want %d", b, a+4)
	}
}

func TestTimingCacheEviction(t *testing.T) {
	mem := &fixedLevel{latency: 10}
	l2 := NewTimingCache(TimingConfig{Sets: 1, Ways: 2, Latency: 1}, mem)
	l2.Access(0, 1, false)
	l2.Access(10, 2, false)
	l2.Access(20, 3, false) // evicts 1 (LRU)
	if l2.Contains(1) {
		t.Error("LRU line survived")
	}
	if l2.Stats().Evictions != 1 {
		t.Errorf("Evictions = %d", l2.Stats().Evictions)
	}
}

func TestDRAMBandwidthAndJitter(t *testing.T) {
	d := NewDRAM(DRAMConfig{Latency: 200, ServiceInterval: 8})
	a := d.Access(0, 1, false)
	if a != 200 {
		t.Errorf("first access ready = %d", a)
	}
	b := d.Access(0, 2, false)
	if b != 208 {
		t.Errorf("queued access ready = %d, want 208", b)
	}
	if d.Reads != 2 {
		t.Errorf("Reads = %d", d.Reads)
	}

	j := NewDRAM(DRAMConfig{Latency: 200, JitterMask: 0x3F})
	seen := map[uint64]bool{}
	for i := uint64(0); i < 64; i++ {
		r := j.Access(i*1000, i, false)
		lat := r - i*1000
		if lat < 200 || lat > 200+63 {
			t.Fatalf("jittered latency %d out of range", lat)
		}
		seen[lat] = true
	}
	if len(seen) < 8 {
		t.Errorf("jitter produced only %d distinct latencies", len(seen))
	}
}

func TestTranslator(t *testing.T) {
	tr := &Translator{Salt: 1}
	// Deterministic.
	if tr.Translate(12345) != tr.Translate(12345) {
		t.Error("translation not deterministic")
	}
	// Lines within a page keep their offsets.
	base := uint64(0x1000) >> LineBits << pageOffsetLineBits // some vpn boundary
	p0 := tr.Translate(base)
	p1 := tr.Translate(base + 1)
	if p1 != p0+1 {
		t.Errorf("intra-page contiguity broken: %#x vs %#x", p0, p1)
	}
	// Consecutive pages are (almost surely) not contiguous.
	q := tr.Translate(base + (1 << pageOffsetLineBits))
	if q == p0+(1<<pageOffsetLineBits) {
		t.Error("consecutive virtual pages mapped contiguously (hash collision would be astronomically unlikely)")
	}
	// Different salts give different mappings.
	tr2 := &Translator{Salt: 2}
	if tr2.Translate(base) == p0 {
		t.Error("salt did not change mapping")
	}
}

func TestTranslatorPhysBitsQuick(t *testing.T) {
	tr := &Translator{PhysBits: 30, Salt: 9}
	f := func(v uint64) bool {
		return tr.Translate(v)>>30 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// recorder captures listener events.
type recorder struct {
	accesses []AccessEvent
	fills    []FillEvent
	evicts   []EvictEvent
}

func (r *recorder) OnAccess(e AccessEvent) { r.accesses = append(r.accesses, e) }
func (r *recorder) OnFill(e FillEvent)     { r.fills = append(r.fills, e) }
func (r *recorder) OnEvict(e EvictEvent)   { r.evicts = append(r.evicts, e) }

func newTestICache(ideal bool) (*ICache, *recorder, *fixedLevel) {
	rec := &recorder{}
	mem := &fixedLevel{latency: 50}
	ic := NewICache(ICacheConfig{
		Sets: 4, Ways: 2, Latency: 4, MSHRs: 4, PQSize: 8, PQIssuePerCycle: 2, Ideal: ideal,
	}, mem, rec)
	return ic, rec, mem
}

func TestICacheDemandMissAndHit(t *testing.T) {
	ic, rec, _ := newTestICache(false)
	ready := ic.DemandAccess(0, 100)
	if ready != 0+4+50+4 {
		t.Errorf("miss ready = %d, want 58", ready)
	}
	if len(rec.accesses) != 1 || rec.accesses[0].Hit {
		t.Fatalf("expected one miss event, got %+v", rec.accesses)
	}
	// Advance past the fill; then a hit.
	ready = ic.DemandAccess(100, 100)
	if ready != 104 {
		t.Errorf("hit ready = %d, want 104", ready)
	}
	if len(rec.fills) != 1 {
		t.Fatalf("expected one fill, got %d", len(rec.fills))
	}
	f := rec.fills[0]
	if f.WasPrefetch || !f.Demanded || f.IssueCycle != 0 || f.Latency() != 54 {
		t.Errorf("fill event: %+v (latency %d)", f, f.Latency())
	}
	if rec.accesses[1].WasPrefetched || rec.accesses[1].FirstUse {
		t.Errorf("demand-filled line flagged as prefetched: %+v", rec.accesses[1])
	}
	st := ic.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Fills != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestICacheMSHRMergeIsNotLatePrefetch(t *testing.T) {
	ic, rec, _ := newTestICache(false)
	ic.DemandAccess(0, 100)
	ready := ic.DemandAccess(2, 100) // merge with demand in flight
	if ready < 54 {
		t.Errorf("merged ready = %d too early", ready)
	}
	if len(rec.accesses) != 2 {
		t.Fatal("missing merge event")
	}
	ev := rec.accesses[1]
	if !ev.MSHRHit || ev.LatePrefetch {
		t.Errorf("merge event: %+v", ev)
	}
	if ic.Stats().MSHRMerges != 1 || ic.Stats().LatePrefetches != 0 {
		t.Errorf("stats: %+v", ic.Stats())
	}
}

func TestICacheTimelyPrefetch(t *testing.T) {
	ic, rec, mem := newTestICache(false)
	if !ic.Prefetch(0, 200, 0xBEEF) {
		t.Fatal("prefetch rejected")
	}
	ic.AdvanceTo(100) // prefetch issues and fills
	if mem.pfCount != 1 {
		t.Errorf("next level saw %d prefetches", mem.pfCount)
	}
	if len(rec.fills) != 1 || !rec.fills[0].WasPrefetch || rec.fills[0].Demanded {
		t.Fatalf("prefetch fill: %+v", rec.fills)
	}
	if rec.fills[0].Meta != 0xBEEF {
		t.Error("meta lost on fill")
	}
	ready := ic.DemandAccess(100, 200)
	if ready != 104 {
		t.Errorf("prefetched line ready = %d, want 104", ready)
	}
	ev := rec.accesses[0]
	if !ev.Hit || !ev.WasPrefetched || !ev.FirstUse || ev.Meta != 0xBEEF {
		t.Errorf("timely-hit event: %+v", ev)
	}
	if ic.Stats().TimelyPrefetchHits != 1 {
		t.Errorf("stats: %+v", ic.Stats())
	}
	// Second access: no longer FirstUse.
	ic.DemandAccess(110, 200)
	if rec.accesses[1].FirstUse {
		t.Error("second access flagged FirstUse")
	}
	if ic.Stats().TimelyPrefetchHits != 1 {
		t.Error("timely hits double counted")
	}
}

func TestICacheLatePrefetch(t *testing.T) {
	ic, rec, _ := newTestICache(false)
	ic.Prefetch(0, 200, 7)
	ic.AdvanceTo(1) // issue but not filled (mem latency 50)
	ready := ic.DemandAccess(10, 200)
	if ready < 50 {
		t.Errorf("late-prefetch ready = %d, should wait for fill", ready)
	}
	ev := rec.accesses[0]
	if !ev.MSHRHit || !ev.LatePrefetch || ev.Meta != 7 {
		t.Errorf("late prefetch event: %+v", ev)
	}
	if ic.Stats().LatePrefetches != 1 {
		t.Errorf("stats: %+v", ic.Stats())
	}
	// At fill time, the access bit must be set (Demanded).
	ic.AdvanceTo(200)
	if len(rec.fills) != 1 || !rec.fills[0].Demanded || !rec.fills[0].WasPrefetch {
		t.Fatalf("fill after late prefetch: %+v", rec.fills)
	}
	// A subsequent hit is NOT a timely first use.
	ic.DemandAccess(300, 200)
	if rec.accesses[1].FirstUse {
		t.Error("late-prefetched line counted as timely")
	}
}

func TestICacheWrongPrefetchEviction(t *testing.T) {
	ic, rec, _ := newTestICache(false)
	// Prefetch into set of addr 0 (sets=4): line addrs 0, 4, 8 share set 0.
	ic.Prefetch(0, 0, 11)
	ic.AdvanceTo(100)
	// Two demand fills into the same set evict the unused prefetch.
	ic.DemandAccess(100, 4)
	ic.DemandAccess(200, 8)
	ic.DemandAccess(300, 16) // set 0 again -> evicts LRU (the prefetch)
	ic.AdvanceTo(1000)
	found := false
	for _, e := range rec.evicts {
		if e.LineAddr == 0 {
			found = true
			if !e.Prefetched || e.Accessed || e.Meta != 11 {
				t.Errorf("wrong-prefetch evict event: %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("prefetched line never evicted")
	}
	if ic.Stats().WrongPrefetches == 0 {
		t.Error("WrongPrefetches not counted")
	}
}

func TestICachePrefetchDrops(t *testing.T) {
	ic, _, _ := newTestICache(false)
	// Fill the PQ (size 8).
	for i := 0; i < 8; i++ {
		if !ic.Prefetch(0, uint64(1000+i), 0) {
			t.Fatalf("prefetch %d rejected early", i)
		}
	}
	if ic.Prefetch(0, 2000, 0) {
		t.Error("PQ overflow accepted")
	}
	if ic.Stats().PrefetchDroppedPQ != 1 {
		t.Errorf("PrefetchDroppedPQ = %d", ic.Stats().PrefetchDroppedPQ)
	}
	ic.AdvanceTo(10_000)
	// Prefetch to a present line must be dropped at issue.
	before := ic.Stats().PrefetchIssued
	ic.Prefetch(10_000, 1000, 0)
	ic.AdvanceTo(20_000)
	if ic.Stats().PrefetchIssued != before {
		t.Error("prefetch to present line was issued")
	}
	if ic.Stats().PrefetchDroppedHit == 0 {
		t.Error("PrefetchDroppedHit not counted")
	}
}

func TestICachePrefetchDroppedOnMSHRMatch(t *testing.T) {
	ic, _, _ := newTestICache(false)
	ic.DemandAccess(0, 100) // in flight until 54
	ic.Prefetch(1, 100, 0)
	ic.AdvanceTo(5)
	if ic.Stats().PrefetchDroppedMSHR != 1 {
		t.Errorf("PrefetchDroppedMSHR = %d", ic.Stats().PrefetchDroppedMSHR)
	}
}

func TestICacheMSHRFullStalls(t *testing.T) {
	ic, _, _ := newTestICache(false) // 4 MSHRs
	for i := 0; i < 4; i++ {
		ic.DemandAccess(0, uint64(100+i))
	}
	// Fifth distinct miss at cycle 1: all MSHRs busy until ~54.
	ready := ic.DemandAccess(1, 300)
	if ready < 54 {
		t.Errorf("5th miss ready=%d; should stall for a free MSHR", ready)
	}
}

func TestICacheIdeal(t *testing.T) {
	ic, _, mem := newTestICache(true)
	ready := ic.DemandAccess(0, 100)
	if ready != 4 {
		t.Errorf("ideal access ready = %d, want 4", ready)
	}
	if ic.Stats().Misses != 0 || ic.Stats().Hits != 1 {
		t.Errorf("ideal stats: %+v", ic.Stats())
	}
	if len(mem.accesses) != 1 {
		t.Error("ideal mode must still send traffic to the next level")
	}
	// Second access: genuine hit, no more traffic.
	ic.DemandAccess(10, 100)
	if len(mem.accesses) != 1 {
		t.Error("ideal mode re-fetched a present line")
	}
}

func TestICacheClockMonotone(t *testing.T) {
	ic, _, _ := newTestICache(false)
	ic.DemandAccess(100, 1)
	ic.DemandAccess(50, 2) // out-of-order call must clamp, not go back
	if ic.Now() < 100 {
		t.Errorf("clock went backwards: %d", ic.Now())
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Accesses: 10, Misses: 2, PrefetchFills: 4, TimelyPrefetchHits: 3}
	if s.MissRatio() != 0.2 {
		t.Errorf("MissRatio = %v", s.MissRatio())
	}
	if s.Accuracy() != 0.75 {
		t.Errorf("Accuracy = %v", s.Accuracy())
	}
	empty := Stats{}
	if empty.MissRatio() != 0 || empty.Accuracy() != 0 {
		t.Error("empty stats not zero")
	}
	if s.UsefulPrefetches() != 3 {
		t.Error("UsefulPrefetches")
	}
}

func TestICachePanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewICache(ICacheConfig{Sets: 1, Ways: 1, MSHRs: 1}, nil, nil) },
		func() { NewICache(ICacheConfig{Sets: 1, Ways: 1, MSHRs: 0}, &fixedLevel{}, nil) },
		func() { NewTimingCache(TimingConfig{Sets: 1, Ways: 1}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
