package cache

import "testing"

// feedbackRecorder captures lifecycle feedback for assertions.
type feedbackRecorder struct {
	events []PrefetchFeedback
}

func (f *feedbackRecorder) OnPrefetchFeedback(fb PrefetchFeedback) {
	f.events = append(f.events, fb)
}

func TestLifecycleTimelyLead(t *testing.T) {
	tr := NewLifecycleTracker(nil)
	tr.OnFill(FillEvent{Cycle: 100, LineAddr: 7, WasPrefetch: true, Demanded: false})
	tr.OnAccess(AccessEvent{Cycle: 140, LineAddr: 7, Hit: true, WasPrefetched: true, FirstUse: true})
	lc := tr.Lifecycle()
	if lc.Timely != 1 || lc.LeadCycles != 40 {
		t.Errorf("timely=%d lead=%d, want 1/40", lc.Timely, lc.LeadCycles)
	}
	if tr.LeadHistogram().Total() != 1 || tr.LeadHistogram().Buckets[40] != 1 {
		t.Error("lead histogram not recorded at 40")
	}
	// A repeat hit (not FirstUse) must not double-count.
	tr.OnAccess(AccessEvent{Cycle: 150, LineAddr: 7, Hit: true, WasPrefetched: true, FirstUse: false})
	if tr.Lifecycle().Timely != 1 {
		t.Error("non-first-use hit counted as timely")
	}
}

func TestLifecycleLateSavedShortAndFeedback(t *testing.T) {
	sink := &feedbackRecorder{}
	tr := NewLifecycleTracker(sink)
	// Prefetch issued at 100, fill ready at 300; demand arrives at 250:
	// 150 cycles of latency were hidden, 50 remained exposed.
	tr.OnAccess(AccessEvent{
		Cycle: 250, LineAddr: 9, MSHRHit: true, LatePrefetch: true,
		IssueCycle: 100, ReadyCycle: 300, Meta: 42,
	})
	lc := tr.Lifecycle()
	if lc.Late != 1 || lc.LateCyclesSaved != 150 || lc.LateCyclesShort != 50 {
		t.Errorf("late=%d saved=%d short=%d, want 1/150/50", lc.Late, lc.LateCyclesSaved, lc.LateCyclesShort)
	}
	if len(sink.events) != 1 {
		t.Fatalf("feedback events = %d, want 1", len(sink.events))
	}
	fb := sink.events[0]
	if fb.Kind != FeedbackLate || fb.LineAddr != 9 || fb.Meta != 42 || fb.Cycles != 50 {
		t.Errorf("late feedback = %+v", fb)
	}
}

func TestLifecycleEarlyVsInaccurate(t *testing.T) {
	sink := &feedbackRecorder{}
	tr := NewLifecycleTracker(sink)
	// Two prefetched lines filled, both evicted unused.
	tr.OnFill(FillEvent{Cycle: 10, LineAddr: 1, WasPrefetch: true})
	tr.OnFill(FillEvent{Cycle: 10, LineAddr: 2, WasPrefetch: true})
	tr.OnEvict(EvictEvent{Cycle: 60, LineAddr: 1, Prefetched: true, Accessed: false})
	tr.OnEvict(EvictEvent{Cycle: 60, LineAddr: 2, Prefetched: true, Accessed: false})
	// Line 1 is demanded again later: early, not inaccurate.
	tr.OnAccess(AccessEvent{Cycle: 100, LineAddr: 1})
	lc := tr.Lifecycle()
	if lc.EvictedUnused != 2 || lc.EarlyEvicted != 1 || lc.Inaccurate() != 1 {
		t.Errorf("evicted=%d early=%d inaccurate=%d, want 2/1/1",
			lc.EvictedUnused, lc.EarlyEvicted, lc.Inaccurate())
	}
	// A second demand to the same line must not count early twice.
	tr.OnAccess(AccessEvent{Cycle: 110, LineAddr: 1})
	if tr.Lifecycle().EarlyEvicted != 1 {
		t.Error("redemand counted early twice")
	}
	// Useless feedback carried the residency time.
	if len(sink.events) != 2 || sink.events[0].Kind != FeedbackUseless || sink.events[0].Cycles != 50 {
		t.Errorf("useless feedback = %+v", sink.events)
	}
	// Demand-accessed evictions are not part of the breakdown.
	tr.OnEvict(EvictEvent{Cycle: 200, LineAddr: 3, Prefetched: true, Accessed: true})
	if tr.Lifecycle().EvictedUnused != 2 {
		t.Error("accessed eviction counted as unused")
	}
}

func TestLifecycleEvictedSetBounded(t *testing.T) {
	tr := NewLifecycleTracker(nil)
	for i := uint64(0); i < trackedEvictCap+100; i++ {
		tr.OnEvict(EvictEvent{Cycle: i, LineAddr: i, Prefetched: true, Accessed: false})
	}
	if len(tr.evicted) > trackedEvictCap || len(tr.ring) > trackedEvictCap {
		t.Fatalf("evicted set unbounded: %d / %d", len(tr.evicted), len(tr.ring))
	}
	// The oldest entries were displaced; a redemand of one of them is
	// (conservatively) no longer counted as early.
	tr.OnAccess(AccessEvent{Cycle: 1 << 20, LineAddr: 0})
	if tr.Lifecycle().EarlyEvicted != 0 {
		t.Error("displaced entry still tracked")
	}
	// A recent one still is.
	tr.OnAccess(AccessEvent{Cycle: 1 << 20, LineAddr: trackedEvictCap + 99})
	if tr.Lifecycle().EarlyEvicted != 1 {
		t.Error("recent entry lost")
	}
}

// TestLifecycleAgainstICache drives a real ICache with the tracker as
// listener and cross-checks tracker counters against the cache's own.
func TestLifecycleAgainstICache(t *testing.T) {
	tr := NewLifecycleTracker(nil)
	next := &fixedLevel{latency: 100}
	c := NewICache(ICacheConfig{Sets: 4, Ways: 2, Latency: 4, MSHRs: 4, PQSize: 8, PQIssuePerCycle: 2}, next, tr)

	// Timely: prefetch line 5, let it fill, demand it.
	c.Prefetch(0, 5, 0)
	c.AdvanceTo(500)
	c.DemandAccess(600, 5)
	// Late: prefetch line 6 and demand it while in flight.
	c.Prefetch(600, 6, 0)
	c.AdvanceTo(610)
	c.DemandAccess(620, 6)
	// Unused: prefetch lines that conflict-evict each other in set 0
	// (sets=4, so lines 8, 16, 24 share a set with 2 ways).
	for _, l := range []uint64{8, 16, 24} {
		c.Prefetch(700, l, 0)
		c.AdvanceTo(900)
	}
	c.AdvanceTo(2000)

	lc := tr.Lifecycle()
	st := c.Stats()
	if lc.Timely != st.TimelyPrefetchHits {
		t.Errorf("tracker timely %d != cache %d", lc.Timely, st.TimelyPrefetchHits)
	}
	if lc.Late != st.LatePrefetches {
		t.Errorf("tracker late %d != cache %d", lc.Late, st.LatePrefetches)
	}
	if lc.EvictedUnused != st.WrongPrefetches {
		t.Errorf("tracker evicted-unused %d != cache wrong %d", lc.EvictedUnused, st.WrongPrefetches)
	}
	if lc.Timely != 1 || lc.Late != 1 {
		t.Errorf("timely=%d late=%d, want 1/1", lc.Timely, lc.Late)
	}
	if lc.LateCyclesSaved == 0 {
		t.Error("late prefetch saved no cycles")
	}
}
