package cache

// This file implements deep-copy forking of the memory hierarchy for
// warmup-snapshot reuse: a warmed Machine is forked once per measured
// window, so each level must be able to produce an independent copy of
// every piece of mutable state — arrays, side-arrays, MSHRs, prefetch
// queues, busy-until clocks and the lifecycle tracker's maps — that
// subsequently diverges without sharing storage with the original.
// Wiring (next-level pointers, listeners) is supplied by the caller,
// which rebuilds the forked hierarchy bottom-up.

// clone returns an independent deep copy of the L1I array.
func (a *array) clone() *array {
	c := *a
	c.lines = append([]line(nil), a.lines...)
	c.tags = append([]uint64(nil), a.tags...)
	return &c
}

// clone returns an independent deep copy of a timing-cache array.
func (a *tarray) clone() *tarray {
	c := *a
	c.lines = append([]tline(nil), a.lines...)
	c.tags = append([]uint64(nil), a.tags...)
	c.hint = append([]int32(nil), a.hint...)
	return &c
}

// Fork returns an independent copy of the L1I wired to next and
// listener. Everything mutable — tag/data array, MSHR entries,
// prefetch-queue ring, clocks and counters — is deep-copied; the copy
// and the original can be advanced independently and never share
// storage.
func (c *ICache) Fork(next Level, listener Listener) *ICache {
	f := *c
	f.arr = c.arr.clone()
	f.next = next
	f.listener = listener
	f.mshr = append([]mshrEntry(nil), c.mshr...)
	f.pq = append([]pqEntry(nil), c.pq...)
	return &f
}

// Fork returns an independent copy of a timing level wired to next.
func (c *TimingCache) Fork(next Level) *TimingCache {
	f := *c
	f.arr = c.arr.clone()
	f.next = next
	return &f
}

// Fork returns an independent copy of the DRAM model.
func (d *DRAM) Fork() *DRAM {
	f := *d
	return &f
}

// Fork returns an independent copy of the lifecycle tracker delivering
// feedback to sink (the forked machine's prefetcher, not the
// original's). The lead histogram, the in-flight fill map and the
// evicted-unused set/ring are all deep-copied.
func (t *LifecycleTracker) Fork(sink FeedbackSink) *LifecycleTracker {
	f := &LifecycleTracker{
		lc:      t.lc,
		lead:    t.lead.Clone(),
		sink:    sink,
		fills:   make(map[uint64]uint64, len(t.fills)),
		evicted: make(map[uint64]struct{}, len(t.evicted)),
		ring:    append([]uint64(nil), t.ring...),
		ringPos: t.ringPos,
	}
	for k, v := range t.fills {
		f.fills[k] = v
	}
	for k := range t.evicted {
		f.evicted[k] = struct{}{}
	}
	return f
}
