package stats

// This file defines the observability counter blocks of the
// prefetch-lifecycle layer: a per-prefetch outcome breakdown (the
// timely / late / early / inaccurate classification MANA and the
// cache-management literature rank prefetchers by) and a top-down
// attribution of front-end stall cycles to their causes. Both are
// plain counter structs with window subtraction, mirroring
// cache.Stats, so the CPU can report them per measurement window.

// PrefetchLifecycle classifies every prefetch that brought a line into
// the L1I by its eventual fate:
//
//   - timely:        a demand access hit the prefetched line before
//     anything else touched it — the miss latency was fully hidden.
//   - late:          a demand access arrived while the prefetch was
//     still in flight — only part of the latency was hidden
//     (LateCyclesSaved records how much).
//   - early-evicted: the line was evicted unused but demanded again
//     later — the prediction was right, the timing was not.
//   - inaccurate:    the line was evicted unused and never demanded —
//     pure pollution.
type PrefetchLifecycle struct {
	// Timely counts first-use demand hits on prefetched lines.
	Timely uint64
	// Late counts demand misses that merged with an in-flight
	// prefetch.
	Late uint64
	// EvictedUnused counts prefetched lines evicted without a demand
	// access (early-evicted + inaccurate).
	EvictedUnused uint64
	// EarlyEvicted counts evicted-unused lines that a later demand
	// access asked for again: the address was right, the prefetch was
	// too early (or the cache too small).
	EarlyEvicted uint64
	// LateCyclesSaved sums, over late prefetches, the portion of the
	// miss latency the in-flight prefetch had already covered when the
	// demand arrived.
	LateCyclesSaved uint64
	// LateCyclesShort sums the latency late prefetches failed to hide
	// (the demand still waited this many cycles for the fill).
	LateCyclesShort uint64
	// LeadCycles sums, over timely hits, the fill-to-first-use lead
	// (how far ahead of need the line arrived).
	LeadCycles uint64
}

// Inaccurate returns the evicted-unused prefetches never demanded
// again — the pollution component of the breakdown.
func (l PrefetchLifecycle) Inaccurate() uint64 {
	if l.EarlyEvicted > l.EvictedUnused {
		return 0
	}
	return l.EvictedUnused - l.EarlyEvicted
}

// Useful returns prefetches that served a demand (fully or partially).
func (l PrefetchLifecycle) Useful() uint64 { return l.Timely + l.Late }

// MeanLead returns the average fill-to-use lead of timely prefetches.
func (l PrefetchLifecycle) MeanLead() float64 {
	if l.Timely == 0 {
		return 0
	}
	return float64(l.LeadCycles) / float64(l.Timely)
}

// MeanSaved returns the average cycles a late prefetch still saved.
func (l PrefetchLifecycle) MeanSaved() float64 {
	if l.Late == 0 {
		return 0
	}
	return float64(l.LateCyclesSaved) / float64(l.Late)
}

// Sub returns l - o field-wise, for measurement-window extraction.
func (l PrefetchLifecycle) Sub(o PrefetchLifecycle) PrefetchLifecycle {
	return PrefetchLifecycle{
		Timely:          l.Timely - o.Timely,
		Late:            l.Late - o.Late,
		EvictedUnused:   l.EvictedUnused - o.EvictedUnused,
		EarlyEvicted:    l.EarlyEvicted - o.EarlyEvicted,
		LateCyclesSaved: l.LateCyclesSaved - o.LateCyclesSaved,
		LateCyclesShort: l.LateCyclesShort - o.LateCyclesShort,
		LeadCycles:      l.LeadCycles - o.LeadCycles,
	}
}

// StallBreakdown attributes front-end stall cycles to their causes.
// Each bucket counts cycles a pipeline stage waited beyond its
// no-stall schedule; Total is the sum of the buckets by construction,
// so the attribution is complete (nothing is left unexplained).
type StallBreakdown struct {
	// L1IMiss counts cycles fetch waited on the instruction cache
	// beyond the hit latency (true misses, late prefetches and
	// MSHR-full backpressure).
	L1IMiss uint64
	// BTBMiss counts redirect cycles from taken branches whose target
	// missed the BTB (caught at decode).
	BTBMiss uint64
	// Mispredict counts redirect cycles from direction or target
	// mispredictions (caught at execute).
	Mispredict uint64
	// FTQFull counts cycles the prediction engine waited because it was
	// FTQDepth blocks ahead of fetch (downstream backpressure).
	FTQFull uint64
	// ROBFull counts cycles dispatch waited on ROB occupancy.
	ROBFull uint64
}

// Total returns the attributed stall cycles (the sum of all buckets).
func (s StallBreakdown) Total() uint64 {
	return s.L1IMiss + s.BTBMiss + s.Mispredict + s.FTQFull + s.ROBFull
}

// Sub returns s - o field-wise, for measurement-window extraction.
func (s StallBreakdown) Sub(o StallBreakdown) StallBreakdown {
	return StallBreakdown{
		L1IMiss:    s.L1IMiss - o.L1IMiss,
		BTBMiss:    s.BTBMiss - o.BTBMiss,
		Mispredict: s.Mispredict - o.Mispredict,
		FTQFull:    s.FTQFull - o.FTQFull,
		ROBFull:    s.ROBFull - o.ROBFull,
	}
}
