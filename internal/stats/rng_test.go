package stats

import "testing"

func TestSplitMix64(t *testing.T) {
	// Reference values from the canonical splitmix64 (Vigna), which
	// pins the mixing constants against typo regressions.
	if got := SplitMix64(0); got != 0xE220A8397B1DCDAF {
		t.Errorf("SplitMix64(0) = %#x", got)
	}
	if SplitMix64(1) == SplitMix64(2) {
		t.Error("adjacent seeds collide")
	}
}

func TestHash64(t *testing.T) {
	a := Hash64(1, "cfg", "wl")
	if a != Hash64(1, "cfg", "wl") {
		t.Error("Hash64 not deterministic")
	}
	if a == Hash64(2, "cfg", "wl") {
		t.Error("seed not mixed in")
	}
	if a == Hash64(1, "cfg", "wl2") {
		t.Error("parts not mixed in")
	}
	// The null separator keeps part boundaries significant.
	if Hash64(1, "ab", "c") == Hash64(1, "a", "bc") {
		t.Error("part boundaries not separated")
	}
}

func TestUnitFloat(t *testing.T) {
	if UnitFloat(0) != 0 {
		t.Errorf("UnitFloat(0) = %v", UnitFloat(0))
	}
	if v := UnitFloat(^uint64(0)); v < 0 || v >= 1 {
		t.Errorf("UnitFloat(max) = %v, want [0,1)", v)
	}
	// A quick uniformity sanity check over SplitMix64 output: the mean
	// of many draws should sit near 1/2.
	var sum float64
	const n = 10_000
	x := uint64(12345)
	for i := 0; i < n; i++ {
		x = SplitMix64(x)
		sum += UnitFloat(x)
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Errorf("mean of %d draws = %v, want ~0.5", n, mean)
	}
}
