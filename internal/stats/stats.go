// Package stats provides the small statistical toolkit used by the
// simulator and the experiment harness: geometric means for IPC
// aggregation, arithmetic summaries, sorted series for the paper's
// per-workload "S-curve" figures, and fixed-bucket histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Geomean returns the geometric mean of xs. It returns 0 for an empty
// slice and panics if any value is non-positive, since a geometric mean
// of speedups is only meaningful over positive ratios.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: Geomean requires positive values, got %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// FilterFinite returns the finite values of xs, dropping NaN and ±Inf.
// The harness's per-workload metric vectors are NaN-padded so they stay
// aligned with the workload order; aggregations (means, geomeans,
// S-curves) call FilterFinite at the point of use.
func FilterFinite(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			out = append(out, x)
		}
	}
	return out
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the population standard deviation of xs, or 0 when xs
// has fewer than two elements.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It returns 0 for an empty
// slice. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Sorted returns a copy of xs sorted ascending. The paper's Figures 7-10
// plot each configuration's per-workload metric sorted independently;
// Sorted is the building block for those series.
func Sorted(xs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s
}

// SCurve resamples the sorted values of xs at n evenly spaced points, so
// series with different workload counts can be compared on one axis.
// It returns nil when xs is empty or n <= 0.
func SCurve(xs []float64, n int) []float64 {
	if len(xs) == 0 || n <= 0 {
		return nil
	}
	s := Sorted(xs)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var pos float64
		if n == 1 {
			pos = 0
		} else {
			pos = float64(i) / float64(n-1) * float64(len(s)-1)
		}
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			out[i] = s[lo]
		} else {
			frac := pos - float64(lo)
			out[i] = s[lo]*(1-frac) + s[hi]*frac
		}
	}
	return out
}

// Ratio returns num/den, or 0 when den is 0. It is the safe division
// used throughout metric computation (coverage, accuracy, miss ratios).
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Histogram is a fixed-bucket histogram over int-labelled buckets plus
// an overflow bucket, used e.g. for the look-ahead-distance study
// (Figure 1) and the compression-mode distribution (Figure 12).
type Histogram struct {
	// Buckets[i] counts observations with value == Lo+i.
	Buckets []uint64
	// Overflow counts observations with value > Lo+len(Buckets)-1.
	Overflow uint64
	// Underflow counts observations with value < Lo.
	Underflow uint64
	// Lo is the value of the first bucket.
	Lo int
}

// NewHistogram creates a histogram covering [lo, hi] inclusive.
func NewHistogram(lo, hi int) *Histogram {
	if hi < lo {
		panic("stats: NewHistogram requires hi >= lo")
	}
	return &Histogram{Buckets: make([]uint64, hi-lo+1), Lo: lo}
}

// Add records one observation of value v.
func (h *Histogram) Add(v int) {
	switch {
	case v < h.Lo:
		h.Underflow++
	case v >= h.Lo+len(h.Buckets):
		h.Overflow++
	default:
		h.Buckets[v-h.Lo]++
	}
}

// Total returns the number of observations recorded, including under-
// and overflow.
func (h *Histogram) Total() uint64 {
	t := h.Underflow + h.Overflow
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// Fraction returns the fraction of all observations in the bucket for
// value v (0 when nothing was recorded).
func (h *Histogram) Fraction(v int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	if v < h.Lo || v >= h.Lo+len(h.Buckets) {
		return 0
	}
	return float64(h.Buckets[v-h.Lo]) / float64(t)
}

// CumulativeFraction returns the fraction of observations with value
// <= v (treating underflow as below every bucket).
func (h *Histogram) CumulativeFraction(v int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	sum := h.Underflow
	for i, b := range h.Buckets {
		if h.Lo+i > v {
			break
		}
		sum += b
	}
	return float64(sum) / float64(t)
}

// Merge adds the counts of other into h. The histograms must have the
// same shape.
func (h *Histogram) Merge(other *Histogram) {
	if other.Lo != h.Lo || len(other.Buckets) != len(h.Buckets) {
		panic("stats: Merge requires identical histogram shapes")
	}
	h.Underflow += other.Underflow
	h.Overflow += other.Overflow
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// Clone returns an independent deep copy of h. Forked simulations
// snapshot histograms with Clone so the fork and the original can keep
// counting without sharing bucket storage.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.Buckets = append([]uint64(nil), h.Buckets...)
	return &c
}

// Sub returns h - o bucket-wise as a new histogram, for measurement-
// window extraction (o is the snapshot taken at window start). The
// histograms must have the same shape, and h must dominate o — counts
// only ever grow, so a bucket of h smaller than o's means the snapshot
// does not belong to this histogram.
func (h *Histogram) Sub(o *Histogram) *Histogram {
	if o.Lo != h.Lo || len(o.Buckets) != len(h.Buckets) {
		panic("stats: Sub requires identical histogram shapes")
	}
	if o.Underflow > h.Underflow || o.Overflow > h.Overflow {
		panic("stats: Sub requires h to dominate the snapshot")
	}
	d := &Histogram{
		Buckets:   make([]uint64, len(h.Buckets)),
		Overflow:  h.Overflow - o.Overflow,
		Underflow: h.Underflow - o.Underflow,
		Lo:        h.Lo,
	}
	for i := range h.Buckets {
		if o.Buckets[i] > h.Buckets[i] {
			panic("stats: Sub requires h to dominate the snapshot")
		}
		d.Buckets[i] = h.Buckets[i] - o.Buckets[i]
	}
	return d
}

// Quantile returns the smallest bucket value v such that at least
// q (0 < q <= 1) of all observations are <= v. Underflow counts as
// below every bucket (it resolves to Lo); observations that landed in
// Overflow resolve to Lo+len(Buckets) — one past the highest labelled
// bucket — so a heavy tail is visible rather than clamped. Returns 0
// when the histogram is empty. Deterministic: pure integer counting,
// no floating-point accumulation order to vary.
func (h *Histogram) Quantile(q float64) int {
	t := h.Total()
	if t == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based, computed in integers.
	rank := uint64(math.Ceil(q * float64(t)))
	if rank == 0 {
		rank = 1
	}
	cum := h.Underflow
	if cum >= rank {
		return h.Lo
	}
	for i, b := range h.Buckets {
		cum += b
		if cum >= rank {
			return h.Lo + i
		}
	}
	return h.Lo + len(h.Buckets)
}

// RunningMean accumulates a mean without storing samples.
type RunningMean struct {
	n   uint64
	sum float64
}

// Add records one sample.
func (r *RunningMean) Add(x float64) { r.n++; r.sum += x }

// AddN records a pre-aggregated batch of n samples summing to sum.
func (r *RunningMean) AddN(n uint64, sum float64) { r.n += n; r.sum += sum }

// Mean returns the current mean (0 before any samples).
func (r *RunningMean) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// Count returns the number of samples recorded.
func (r *RunningMean) Count() uint64 { return r.n }
