package stats

import "testing"

func TestPrefetchLifecycleDerived(t *testing.T) {
	l := PrefetchLifecycle{
		Timely:          10,
		Late:            4,
		EvictedUnused:   6,
		EarlyEvicted:    2,
		LateCyclesSaved: 100,
		LateCyclesShort: 60,
		LeadCycles:      250,
	}
	if got := l.Inaccurate(); got != 4 {
		t.Errorf("Inaccurate = %d, want 4", got)
	}
	if got := l.Useful(); got != 14 {
		t.Errorf("Useful = %d, want 14", got)
	}
	if got := l.MeanLead(); got != 25 {
		t.Errorf("MeanLead = %v, want 25", got)
	}
	if got := l.MeanSaved(); got != 25 {
		t.Errorf("MeanSaved = %v, want 25", got)
	}

	var zero PrefetchLifecycle
	if zero.MeanLead() != 0 || zero.MeanSaved() != 0 || zero.Inaccurate() != 0 {
		t.Error("zero-value lifecycle should have zero derived metrics")
	}
	// EarlyEvicted can transiently exceed EvictedUnused in a window
	// (eviction in warmup, redemand in measurement); clamp, don't wrap.
	skew := PrefetchLifecycle{EarlyEvicted: 3}
	if got := skew.Inaccurate(); got != 0 {
		t.Errorf("clamped Inaccurate = %d, want 0", got)
	}
}

func TestPrefetchLifecycleSub(t *testing.T) {
	a := PrefetchLifecycle{Timely: 10, Late: 5, EvictedUnused: 8, EarlyEvicted: 3,
		LateCyclesSaved: 100, LateCyclesShort: 50, LeadCycles: 200}
	b := PrefetchLifecycle{Timely: 4, Late: 2, EvictedUnused: 3, EarlyEvicted: 1,
		LateCyclesSaved: 40, LateCyclesShort: 20, LeadCycles: 80}
	d := a.Sub(b)
	want := PrefetchLifecycle{Timely: 6, Late: 3, EvictedUnused: 5, EarlyEvicted: 2,
		LateCyclesSaved: 60, LateCyclesShort: 30, LeadCycles: 120}
	if d != want {
		t.Errorf("Sub = %+v, want %+v", d, want)
	}
}

func TestStallBreakdownTotalAndSub(t *testing.T) {
	s := StallBreakdown{L1IMiss: 5, BTBMiss: 4, Mispredict: 3, FTQFull: 2, ROBFull: 1}
	if got := s.Total(); got != 15 {
		t.Errorf("Total = %d, want 15", got)
	}
	d := s.Sub(StallBreakdown{L1IMiss: 1, BTBMiss: 1, Mispredict: 1, FTQFull: 1, ROBFull: 1})
	if d.Total() != 10 {
		t.Errorf("Sub total = %d, want 10", d.Total())
	}
	// The attribution must stay complete under subtraction.
	if d.L1IMiss+d.BTBMiss+d.Mispredict+d.FTQFull+d.ROBFull != d.Total() {
		t.Error("bucket sum != Total after Sub")
	}
}
