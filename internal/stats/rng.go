package stats

import "hash/fnv"

// SplitMix64 is the standard 64-bit finalizer mix: a bijective
// avalanche function whose output is uniformly distributed for any
// input sequence. It is the repository's primitive for deterministic,
// seed-driven decisions (retry jitter, fault-injection rolls) — unlike
// math/rand it has no global state, so two computations of the same
// input always agree regardless of goroutine scheduling.
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Hash64 hashes a seed and a list of string parts into a uniform
// 64-bit value. Parts are length-separated, so ("ab","c") and
// ("a","bc") hash differently.
func Hash64(seed uint64, parts ...string) uint64 {
	h := fnv.New64a()
	var sep [1]byte
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write(sep[:])
	}
	return SplitMix64(seed ^ h.Sum64())
}

// UnitFloat maps a 64-bit value to a uniform float64 in [0, 1).
func UnitFloat(x uint64) float64 {
	return float64(x>>11) / float64(uint64(1)<<53)
}
