package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestGeomean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{2}, 2},
		{[]float64{1, 4}, 2},
		{[]float64{2, 8}, 4},
		{[]float64{1, 1, 1}, 1},
	}
	for _, c := range cases {
		if got := Geomean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Geomean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGeomeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive input")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			x = math.Abs(x)
			if x > 1e-9 && x < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		min, max := xs[0], xs[0]
		for _, x := range xs {
			min = math.Min(min, x)
			max = math.Max(max, x)
		}
		return g >= min*(1-1e-9) && g <= max*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanAndStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Stddev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Stddev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 || Stddev([]float64{1}) != 0 {
		t.Error("empty/singleton summaries should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-5, 1}, {120, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("singleton percentile = %v, want 7", got)
	}
}

func TestSortedDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	s := Sorted(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Sorted mutated its input")
	}
	if s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Errorf("Sorted = %v", s)
	}
}

func TestSCurve(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	got := SCurve(xs, 4)
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("SCurve = %v, want %v", got, want)
		}
	}
	if SCurve(nil, 4) != nil || SCurve(xs, 0) != nil {
		t.Error("degenerate SCurve should be nil")
	}
	one := SCurve(xs, 1)
	if len(one) != 1 || one[0] != 1 {
		t.Errorf("SCurve n=1 = %v, want [1]", one)
	}
}

func TestSCurveMonotone(t *testing.T) {
	f := func(xs []float64, n uint8) bool {
		for i := range xs {
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		out := SCurve(xs, int(n%32))
		for i := 1; i < len(out); i++ {
			if out[i] < out[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero denominator should be 0")
	}
	if got := Ratio(3, 4); !almostEqual(got, 0.75, 1e-12) {
		t.Errorf("Ratio = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1, 10)
	for v := 0; v <= 12; v++ {
		h.Add(v)
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Errorf("under=%d over=%d, want 1,2", h.Underflow, h.Overflow)
	}
	if h.Total() != 13 {
		t.Errorf("Total = %d, want 13", h.Total())
	}
	if !almostEqual(h.Fraction(5), 1.0/13, 1e-12) {
		t.Errorf("Fraction(5) = %v", h.Fraction(5))
	}
	if h.Fraction(0) != 0 || h.Fraction(11) != 0 {
		t.Error("out-of-range Fraction should be 0")
	}
	// Cumulative: underflow(1) + buckets 1..5 (5) = 6 of 13.
	if got := h.CumulativeFraction(5); !almostEqual(got, 6.0/13, 1e-12) {
		t.Errorf("CumulativeFraction(5) = %v", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 3)
	b := NewHistogram(0, 3)
	a.Add(1)
	b.Add(1)
	b.Add(5)
	a.Merge(b)
	if a.Buckets[1] != 2 || a.Overflow != 1 {
		t.Errorf("after merge: %+v", a)
	}
}

func TestHistogramMergeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	NewHistogram(0, 3).Merge(NewHistogram(1, 3))
}

func TestNewHistogramInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi < lo")
		}
	}()
	NewHistogram(5, 4)
}

func TestRunningMean(t *testing.T) {
	var r RunningMean
	if r.Mean() != 0 {
		t.Error("empty RunningMean should be 0")
	}
	r.Add(2)
	r.Add(4)
	r.AddN(2, 6)
	if r.Count() != 4 {
		t.Errorf("Count = %d, want 4", r.Count())
	}
	if got := r.Mean(); !almostEqual(got, 3, 1e-12) {
		t.Errorf("Mean = %v, want 3", got)
	}
}
