package oracle

import (
	"testing"

	"entangling/internal/cache"
	"entangling/internal/prefetch"
	"entangling/internal/trace"
)

func takenBranch(cycle uint64) prefetch.BranchEvent {
	return prefetch.BranchEvent{Cycle: cycle, Taken: true, Type: trace.DirectJump, Target: 0x1000}
}

func demandFill(issue, fill uint64) cache.FillEvent {
	return cache.FillEvent{IssueCycle: issue, Cycle: fill, Demanded: true, LineAddr: 7}
}

func TestDistanceOne(t *testing.T) {
	o := New()
	// Discontinuity at cycle 0; miss at cycle 100 with latency 50:
	// issuing at the previous discontinuity (d=1) is 100 cycles early.
	o.OnBranch(takenBranch(0))
	o.OnFill(demandFill(100, 150))
	if o.Distances.Buckets[0] != 1 {
		t.Errorf("distance histogram: %+v", o.Distances)
	}
	if f := o.TimelyFraction(); f[0] != 1 {
		t.Errorf("TimelyFraction[0] = %v", f[0])
	}
}

func TestDistanceCountsInterveningDiscontinuities(t *testing.T) {
	o := New()
	// Discontinuities at 0, 60, 70, 80; miss at 100, latency 50:
	// deadline 50. Discontinuities after the deadline: 60, 70, 80 (3),
	// so the prefetch must be issued 4 discontinuities ahead.
	for _, c := range []uint64{0, 60, 70, 80} {
		o.OnBranch(takenBranch(c))
	}
	o.OnFill(demandFill(100, 150))
	if o.Distances.Buckets[3] != 1 {
		t.Errorf("expected distance 4, histogram %+v", o.Distances.Buckets)
	}
}

func TestOverflowDistance(t *testing.T) {
	o := New()
	// Miss at 1000 with latency 100 (deadline 900); 15 discontinuities
	// land after the deadline, so even a look-ahead of 10 is too short.
	o.OnBranch(takenBranch(100))
	for i := uint64(0); i < 15; i++ {
		o.OnBranch(takenBranch(905 + i*5))
	}
	o.OnFill(demandFill(1000, 1100))
	if o.Distances.Overflow != 1 {
		t.Errorf("expected overflow, histogram %+v", o.Distances)
	}
}

func TestNoDiscontinuityHistory(t *testing.T) {
	o := New()
	// No discontinuities at all: the walk finds nothing after the
	// deadline, so distance 1 suffices... but with an empty ring the
	// loop ends without finding an entry at or before the deadline;
	// the miss lands in the overflow bucket (cannot be served by any
	// recorded discontinuity).
	o.OnFill(demandFill(100, 150))
	if o.Distances.Total() != 1 {
		t.Errorf("miss not recorded: %+v", o.Distances)
	}
}

func TestUntakenBranchesIgnored(t *testing.T) {
	o := New()
	o.OnBranch(prefetch.BranchEvent{Cycle: 5, Taken: false, Type: trace.CondBranch})
	o.OnBranch(takenBranch(0))
	o.OnFill(demandFill(100, 150))
	if o.Distances.Buckets[0] != 1 {
		t.Errorf("untaken branch affected the distance: %+v", o.Distances.Buckets)
	}
}

func TestPrefetchFillsIgnored(t *testing.T) {
	o := New()
	o.OnBranch(takenBranch(0))
	o.OnFill(cache.FillEvent{IssueCycle: 10, Cycle: 60, Demanded: false})
	if o.Distances.Total() != 0 {
		t.Error("non-demanded fill recorded")
	}
}

func TestFutureDiscontinuitiesSkipped(t *testing.T) {
	o := New()
	// The decoupled front-end may log discontinuities predicted after
	// the miss; they must not count toward the distance.
	o.OnBranch(takenBranch(0))
	o.OnBranch(takenBranch(200)) // after the miss
	o.OnFill(demandFill(100, 150))
	if o.Distances.Buckets[0] != 1 {
		t.Errorf("future discontinuity counted: %+v", o.Distances.Buckets)
	}
}

func TestListenerNoOps(t *testing.T) {
	o := New()
	o.OnAccess(cache.AccessEvent{})
	o.OnEvict(cache.EvictEvent{})
	if o.Distances.Total() != 0 {
		t.Error("no-op hooks recorded something")
	}
}

func TestTimelyFractionMonotone(t *testing.T) {
	o := New()
	for i := uint64(0); i < 40; i++ {
		o.OnBranch(takenBranch(i * 13))
	}
	for i := uint64(0); i < 20; i++ {
		o.OnFill(demandFill(200+i*17, 260+i*23))
	}
	f := o.TimelyFraction()
	for i := 1; i < len(f); i++ {
		if f[i] < f[i-1] {
			t.Errorf("TimelyFraction not monotone at %d: %v", i, f)
		}
	}
}
