// Package oracle implements the measurement methodology behind the
// paper's motivation figures (Figures 1 and 2): on a no-prefetch
// baseline it tracks every L1I miss and its measured latency, and
// computes how many discontinuities (taken branches) in advance a
// prefetch would have had to be issued for the miss to be covered
// timely — the per-miss optimal look-ahead distance.
package oracle

import (
	"entangling/internal/cache"
	"entangling/internal/prefetch"
	"entangling/internal/stats"
)

// maxTracked is the largest distance bucket; larger distances land in
// the histogram's overflow bucket ("10+" in Figure 1).
const maxTracked = 10

// ringSize bounds the discontinuity timeline.
const ringSize = 4096

// LookaheadOracle observes a run and accumulates the distance
// histogram. Wire it as the machine's ExtraL1IListener and BranchHook.
type LookaheadOracle struct {
	// Distances histograms the per-miss required look-ahead distance
	// (buckets 1..10 plus overflow).
	Distances *stats.Histogram

	// ring holds the cycles of recent discontinuities.
	ring [ringSize]uint64
	pos  int
	n    int
}

// New creates an oracle.
func New() *LookaheadOracle {
	return &LookaheadOracle{Distances: stats.NewHistogram(1, maxTracked)}
}

// OnBranch implements the machine's branch hook: taken branches are
// the discontinuities the look-ahead distance is measured in (§I,
// "the look-ahead distance represents the number of taken branches").
func (o *LookaheadOracle) OnBranch(ev prefetch.BranchEvent) {
	if !ev.Taken {
		return
	}
	o.ring[o.pos] = ev.Cycle
	o.pos = (o.pos + 1) % ringSize
	if o.n < ringSize {
		o.n++
	}
}

// OnAccess implements cache.Listener (unused).
func (o *LookaheadOracle) OnAccess(cache.AccessEvent) {}

// OnFill implements cache.Listener: every demanded fill is a miss whose
// latency is now known; find the smallest k such that issuing the
// prefetch at the k-th most recent discontinuity before the miss would
// have been at least latency cycles early.
func (o *LookaheadOracle) OnFill(ev cache.FillEvent) {
	if !ev.Demanded {
		return
	}
	latency := ev.Latency()
	missCycle := ev.IssueCycle
	if missCycle < latency {
		o.Distances.Add(1)
		return
	}
	deadline := missCycle - latency

	// Walk discontinuities newest-first; distance = 1 + number of
	// discontinuities after the deadline (and before the miss).
	d := 1
	for i := 1; i <= o.n; i++ {
		idx := (o.pos - i + ringSize) % ringSize
		t := o.ring[idx]
		if t > missCycle {
			// Predicted ahead of the miss (decoupled front-end);
			// irrelevant for the backward count.
			continue
		}
		if t <= deadline {
			o.Distances.Add(d)
			return
		}
		d++
		if d > maxTracked {
			break
		}
	}
	o.Distances.Add(maxTracked + 1) // overflow: ">10"
}

// OnEvict implements cache.Listener (unused).
func (o *LookaheadOracle) OnEvict(cache.EvictEvent) {}

// TimelyFraction returns, for each distance 1..10, the fraction of
// misses a fixed look-ahead of that distance would have served timely
// (cumulative, as in Figure 1: issuing earlier than necessary is still
// timely).
func (o *LookaheadOracle) TimelyFraction() []float64 {
	out := make([]float64, maxTracked)
	for d := 1; d <= maxTracked; d++ {
		out[d-1] = o.Distances.CumulativeFraction(d)
	}
	return out
}
