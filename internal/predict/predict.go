// Package predict is the learned fast-path of the simulation service:
// an online, deterministic, feature-based estimator that trains
// incrementally on every completed cell's metrics vector and answers
// mode=approximate queries with per-metric prediction intervals
// derived from held-out conformal residuals. Exact simulation remains
// the fallback (intervals wider than the caller's max_rel_err budget
// decline to answer) and the refiner (an exact result for a
// previously-predicted cell calibrates the model's stated intervals).
//
// Two properties are load-bearing and proven by the battery in
// predict_test.go:
//
//   - Approximate answers are deterministic for a fixed training
//     history: the model is a pure function of the *set* of observed
//     cells (insertion order does not matter — neighbors are ordered
//     by (distance, fingerprint) and the calibration split is a hash
//     of the fingerprint), and feature extraction is pure.
//   - Approximate answers can never poison the exact path: the
//     predictor produces predict.Prediction values, never
//     harness.RunResult records, so nothing it emits can enter the
//     content-addressed checkpoint store, the in-process result
//     cache, or a metrics fingerprint.
package predict

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"entangling/internal/harness"
	"entangling/internal/stats"
	"entangling/internal/workload"
)

// MetricNames is the fixed, ordered metric vector the model estimates
// per cell. Every Observe target vector and every Prediction is
// aligned with it. Changing the set is a model schema change (bump
// ModelSchemaVersion).
var MetricNames = []string{"ipc", "l1i_mpki", "l1i_hit_rate", "l1i_stall_share"}

// Hash-bucket widths of the categorical feature blocks. The buckets
// turn unbounded name spaces (prefetcher names, workload presets,
// trace SHAs) into fixed-length one-hot blocks; collisions degrade
// accuracy gracefully, never correctness.
const (
	pfBuckets  = 12
	wlBuckets  = 12
	catBuckets = 4
)

// numericFeatures counts the scalar tail of the feature vector; keep
// in sync with CellFeatures.
const numericFeatures = 25

// FeatureLen is the fixed length of every cell feature vector.
const FeatureLen = 1 + 2 + 3 + pfBuckets + 1 + wlBuckets + catBuckets + numericFeatures

// featureSalt and calibSalt decorrelate the hash-bucket assignment
// from the train/calibration split.
const (
	featureSalt = 0x9E3779B97F4A7C15
	calibSalt   = 0xD1B54A32D192ED03
)

// CellFeatures derives the hand-built feature vector of one cell from
// exactly the inputs that fix its CellFingerprint: the configuration
// (prefetcher family and size, cache shape, address mode), the fully
// derived workload parameters (preset shape or trace SHA), and the
// run windows. Pure and deterministic: equal cells yield equal
// vectors. Scales are chosen so every slot lands roughly in [0, 2];
// k-NN distances then weight the blocks comparably without a learned
// normalizer (which would make the model order-sensitive).
func CellFeatures(cfg harness.Configuration, spec workload.Spec, warmup, measure uint64) []float64 {
	f := make([]float64, 0, FeatureLen)
	f = append(f, 1) // bias

	// Window geometry.
	f = append(f, math.Log2(float64(warmup)+1)/32, math.Log2(float64(measure)+1)/32)

	// Cache shape and address mode. The simulated front end is fixed
	// apart from these knobs (one branch-predictor kind), so the block
	// is small; L1IWays 0 means the default geometry.
	ways := float64(cfg.L1IWays)
	if cfg.L1IWays == 0 {
		ways = 8
	}
	f = append(f, b2f(cfg.IdealL1I), b2f(cfg.Physical), ways/24)

	// Prefetcher family + storage budget. The family (name with its
	// size token removed) hashes into a one-hot block so "entangling-2k"
	// and "entangling-4k" share a family but differ in the size slot.
	family, sizeKB := splitPrefetcher(cfg.Prefetcher)
	f = appendOneHot(f, pfBuckets, 2, featureSalt, "pf", family)
	f = append(f, math.Log2(sizeKB+1)/4)

	// Workload identity: the preset name (or trace content address)
	// dominates similarity, so it gets the same strong one-hot weight.
	p := spec.Params
	f = appendOneHot(f, wlBuckets, 2, featureSalt, "wl", spec.Name, p.TraceSHA256)
	f = appendOneHot(f, catBuckets, 1, featureSalt, "cat", string(p.Category))

	// Workload shape scalars (zero for trace-backed cells, whose
	// identity block above carries everything).
	f = append(f,
		float64(p.Functions)/1000,
		float64(p.MeanBlocks)/100,
		float64(p.MeanBlockInstrs)/100,
		p.CallFrac,
		p.IndirectFrac,
		p.JumpFrac,
		p.CondFrac,
		p.LoopBackProb,
		p.LoopIterMean/100,
		p.CondTakenBias,
		p.CallSkew,
		float64(p.MaxCallDepth)/100,
		p.LoadFrac,
		p.StoreFrac,
		math.Log2(float64(p.DataFootprint)+1)/32,
		math.Log2(float64(p.PhaseLen)+1)/32,
		float64(p.DriverFanout)/100,
		p.DispatchSkew,
		float64(p.PathFlavors)/10,
		p.PathNoise,
		math.Log2(float64(p.CodePhaseLen)+1)/32,
		p.CodeRelocFrac,
		math.Log2(float64(p.InterruptEvery)+1)/32,
		float64(p.InterruptFns)/100,
		math.Log2(float64(p.ColdEvery)+1)/32,
	)
	if len(f) != FeatureLen {
		panic(fmt.Sprintf("predict: feature vector length %d, want %d", len(f), FeatureLen))
	}
	return f
}

// Targets extracts the MetricNames-aligned target vector from one
// completed cell's results.
func Targets(res harness.RunResult) []float64 {
	stallShare := 0.0
	if t := res.R.Stalls.Total(); t > 0 {
		stallShare = float64(res.R.Stalls.L1IMiss) / float64(t)
	}
	return []float64{res.R.IPC, res.R.L1IMPKI(), res.R.L1IHitRate(), stallShare}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// appendOneHot appends an n-slot one-hot block selecting the hash
// bucket of parts, with the set slot at weight w.
func appendOneHot(f []float64, n int, w float64, salt uint64, parts ...string) []float64 {
	idx := int(stats.Hash64(salt, parts...) % uint64(n))
	for i := 0; i < n; i++ {
		if i == idx {
			f = append(f, w)
		} else {
			f = append(f, 0)
		}
	}
	return f
}

// splitPrefetcher separates a prefetcher name into its family and
// storage budget in KB: "entangling-4k-BBEnt" -> ("entangling-BBEnt",
// 4). Names without a size token ("nextline", "djolt", "", "no")
// return the whole name and 0.
func splitPrefetcher(name string) (family string, sizeKB float64) {
	if name == "" || name == "no" {
		return "no", 0
	}
	parts := strings.Split(name, "-")
	kept := parts[:0]
	for _, p := range parts {
		if n, ok := sizeToken(p); ok && sizeKB == 0 {
			sizeKB = n
			continue
		}
		kept = append(kept, p)
	}
	return strings.Join(kept, "-"), sizeKB
}

// sizeToken parses "2k"/"4k"/"8k"-style storage tokens.
func sizeToken(s string) (float64, bool) {
	if len(s) < 2 || s[len(s)-1] != 'k' {
		return 0, false
	}
	var n float64
	for _, c := range s[:len(s)-1] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + float64(c-'0')
	}
	return n, n > 0
}

// Config sizes a Predictor. Zero fields take the documented defaults.
type Config struct {
	// K is the neighbor count of the k-NN point estimate (default 3).
	K int
	// Coverage is the target joint coverage of the stated intervals —
	// the probability that every metric's band holds at once (default
	// 0.9). Each per-metric band is cut at the Bonferroni-corrected
	// quantile with the standard ceil((n+1)*coverage) finite-sample
	// correction.
	Coverage float64
	// MinCalibration is the fewest held-out residuals the model will
	// state intervals from (default 5); with fewer it declines to
	// answer, which the caller treats as a fallback to exact.
	MinCalibration int
	// MaxExamples bounds the stored training set (default 4096).
	// Observations past the cap are dropped (first-wins: deterministic
	// and order-stable for any fixed observation sequence).
	MaxExamples int
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 3
	}
	if c.Coverage <= 0 || c.Coverage >= 1 {
		c.Coverage = 0.9
	}
	if c.MinCalibration <= 0 {
		c.MinCalibration = 5
	}
	if c.MaxExamples <= 0 {
		c.MaxExamples = 4096
	}
	return c
}

// Interval is one metric's point estimate with its conformal
// prediction band.
type Interval struct {
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
}

// metricScaleFloors floors the per-metric magnitude scale that both
// normalizes calibration residuals and judges interval widths, so
// near-zero metrics are held to an absolute rather than relative
// standard (a ±0.5 band around an MPKI of 0.001 is tight in every
// sense that matters). Indexed like MetricNames: IPC and the two
// ratios floor at 0.05; MPKI — which spans three orders of magnitude
// across the corpus — floors at 1.0 so sub-1-MPKI cells are judged
// against one miss per kilo-instruction.
var metricScaleFloors = []float64{0.05, 1.0, 0.05, 0.05}

// metricScale is the normalization scale for metric m at value v.
func metricScale(m int, v float64) float64 {
	if s := math.Abs(v); s > metricScaleFloors[m] {
		return s
	}
	return metricScaleFloors[m]
}

// scaleFloorByName resolves a metric name to its scale floor (RelWidth
// runs on decoded Interval values, which carry names, not indices).
func scaleFloorByName(name string) float64 {
	for m, n := range MetricNames {
		if n == name {
			return metricScaleFloors[m]
		}
	}
	return metricScaleFloors[0]
}

// RelWidth is the interval's half-width relative to the magnitude of
// its point estimate (floored per metric, so near-zero metrics are
// judged on an absolute scale). Because residuals are normalized by
// the same scale, this equals the conformal quantile the band was cut
// at — uniform across cells for a fixed model state.
func (iv Interval) RelWidth() float64 {
	den := math.Abs(iv.Value)
	if f := scaleFloorByName(iv.Metric); den < f {
		den = f
	}
	return (iv.Hi - iv.Lo) / 2 / den
}

// Prediction is one approximate cell answer: every metric's interval
// plus the model state it was computed from.
type Prediction struct {
	Intervals []Interval `json:"intervals"`
	// TrainSize and CalibrationSize record how much history backed the
	// answer (they make two answers from different training histories
	// distinguishable in logs and result documents).
	TrainSize       int `json:"train_size"`
	CalibrationSize int `json:"calibration_size"`
}

// MaxRelWidth is the widest metric's relative half-width — the number
// a max_rel_err budget is checked against.
func (p Prediction) MaxRelWidth() float64 {
	w := 0.0
	for _, iv := range p.Intervals {
		if r := iv.RelWidth(); r > w {
			w = r
		}
	}
	return w
}

// Covers reports whether every metric's true value falls inside its
// stated interval (the observed-vs-predicted calibration check run
// when an exact result refines a predicted cell).
func (p Prediction) Covers(targets []float64) bool {
	if len(targets) != len(p.Intervals) {
		return false
	}
	for i, iv := range p.Intervals {
		if targets[i] < iv.Lo || targets[i] > iv.Hi {
			return false
		}
	}
	return true
}

// example is one observed cell.
type example struct {
	fp       string
	features []float64
	targets  []float64
}

// Predictor is the online model: a per-metric k-NN point estimator
// over the observed cells assigned to the training split, with
// interval half-widths taken as conformal quantiles of the held-out
// calibration split's residuals. Safe for concurrent use.
type Predictor struct {
	cfg Config

	mu   sync.Mutex
	byFP map[string]int
	all  []example

	// Calibration residuals are recomputed lazily from the current
	// train/calibration sets (so they are a function of the observed
	// set, not of insertion order) and cached until the next Observe.
	version   uint64
	calibAt   uint64
	residuals [][]float64 // [metric][sorted abs residuals]
}

// New builds a Predictor.
func New(cfg Config) *Predictor {
	return &Predictor{cfg: cfg.withDefaults(), byFP: make(map[string]int)}
}

// isCalibration assigns a cell to the held-out calibration split
// (roughly a quarter of observations) by fingerprint hash — stable
// across processes, restarts and observation orders.
func isCalibration(fp string) bool {
	return stats.Hash64(calibSalt, fp)%4 == 0
}

// IsCalibrationFingerprint reports whether a cell fingerprint lands in
// the held-out calibration split. Exported for tooling that wants to
// partition a known cell set the way the model will (cmd/predict-smoke
// reports train vs. calibration sizes with it).
func IsCalibrationFingerprint(fp string) bool { return isCalibration(fp) }

// Observe trains the model on one completed cell. Duplicate
// fingerprints and non-finite vectors are ignored (reported false);
// cells are deterministic over their fingerprint, so a duplicate
// carries no new information. Past MaxExamples new cells are dropped.
func (p *Predictor) Observe(fingerprint string, features, targets []float64) bool {
	if fingerprint == "" || len(features) != FeatureLen || len(targets) != len(MetricNames) {
		return false
	}
	if !allFinite(features) || !allFinite(targets) {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.byFP[fingerprint]; ok {
		return false
	}
	if len(p.all) >= p.cfg.MaxExamples {
		return false
	}
	p.byFP[fingerprint] = len(p.all)
	p.all = append(p.all, example{
		fp:       fingerprint,
		features: append([]float64(nil), features...),
		targets:  append([]float64(nil), targets...),
	})
	p.version++
	return true
}

// Len reports how many cells the model has observed.
func (p *Predictor) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.all)
}

func allFinite(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Predict answers one cell query. ok is false when the model cannot
// state calibrated intervals yet (too little training or calibration
// history) — the caller must fall back to exact simulation.
func (p *Predictor) Predict(features []float64) (Prediction, bool) {
	if len(features) != FeatureLen || !allFinite(features) {
		return Prediction{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	train := p.trainSetLocked()
	if len(train) < p.cfg.K {
		return Prediction{}, false
	}
	p.calibrateLocked(train)
	nCal := 0
	if len(p.residuals) > 0 {
		nCal = len(p.residuals[0])
	}
	if nCal < p.cfg.MinCalibration {
		return Prediction{}, false
	}

	point := knnEstimate(train, features, p.cfg.K)
	pred := Prediction{
		Intervals:       make([]Interval, len(MetricNames)),
		TrainSize:       len(train),
		CalibrationSize: nCal,
	}
	// Coverage is a joint guarantee across all metrics: Covers demands
	// every band hold at once, so each per-metric quantile is cut at
	// the Bonferroni-corrected level (union bound: four 97.5% bands
	// jointly miss at most 10% of the time).
	perMetric := 1 - (1-p.cfg.Coverage)/float64(len(MetricNames))
	for m, name := range MetricNames {
		h := conformalQuantile(p.residuals[m], perMetric) * metricScale(m, point[m])
		pred.Intervals[m] = Interval{
			Metric: name,
			Value:  point[m],
			Lo:     point[m] - h,
			Hi:     point[m] + h,
		}
	}
	return pred, true
}

// trainSetLocked returns the training-split examples in a
// deterministic order (slice order is insertion order, but every
// consumer re-sorts by distance with a fingerprint tie-break, so the
// result is order-insensitive).
func (p *Predictor) trainSetLocked() []example {
	train := make([]example, 0, len(p.all))
	for _, ex := range p.all {
		if !isCalibration(ex.fp) {
			train = append(train, ex)
		}
	}
	return train
}

// calibrateLocked (re)computes the held-out residual sets: every
// calibration cell is answered by the current training split and the
// per-metric absolute errors — normalized by each truth's magnitude
// scale, so one quantile spans cells of very different magnitudes —
// are collected, sorted ascending. Cached per model version;
// O(calibration x train) when it runs.
func (p *Predictor) calibrateLocked(train []example) {
	if p.calibAt == p.version && p.residuals != nil {
		return
	}
	res := make([][]float64, len(MetricNames))
	if len(train) >= p.cfg.K {
		for _, ex := range p.all {
			if !isCalibration(ex.fp) {
				continue
			}
			point := knnEstimate(train, ex.features, p.cfg.K)
			for m := range MetricNames {
				res[m] = append(res[m], math.Abs(ex.targets[m]-point[m])/metricScale(m, ex.targets[m]))
			}
		}
	}
	for m := range res {
		sort.Float64s(res[m])
	}
	p.residuals = res
	p.calibAt = p.version
}

// knnEstimate is the distance-weighted k-nearest-neighbor point
// estimate over the training split. Ties in distance break on
// fingerprint, so the estimate is independent of example order.
func knnEstimate(train []example, features []float64, k int) []float64 {
	type scored struct {
		dist float64
		idx  int
	}
	cand := make([]scored, len(train))
	for i := range train {
		cand[i] = scored{dist: euclidean(train[i].features, features), idx: i}
	}
	sort.Slice(cand, func(a, b int) bool {
		if cand[a].dist != cand[b].dist {
			return cand[a].dist < cand[b].dist
		}
		return train[cand[a].idx].fp < train[cand[b].idx].fp
	})
	if k > len(cand) {
		k = len(cand)
	}
	point := make([]float64, len(MetricNames))
	var wsum float64
	for _, c := range cand[:k] {
		w := 1 / (c.dist + 1e-9)
		wsum += w
		for m := range point {
			point[m] += w * train[c.idx].targets[m]
		}
	}
	for m := range point {
		point[m] /= wsum
	}
	return point
}

func euclidean(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// conformalQuantile returns the split-conformal interval half-width:
// the ceil((n+1)*coverage)-th smallest residual (clamped to the
// largest), which gives at-least-coverage marginal validity under
// exchangeability.
func conformalQuantile(sorted []float64, coverage float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.Inf(1)
	}
	rank := int(math.Ceil(coverage * float64(n+1)))
	if rank > n {
		rank = n
	}
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
