package predict

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"entangling/internal/harness"
	"entangling/internal/stats"
	"entangling/internal/workload"
)

// synthExample builds one deterministic synthetic training cell: a few
// informative feature dimensions drawn from the cell index, targets a
// smooth function of them plus small hash noise. The noise is a pure
// function of the fingerprint, so the corpus is exchangeable across
// insertion orders and test runs.
func synthExample(i int) (fp string, features, targets []float64) {
	fp = fmt.Sprintf("synth-%04d", i)
	r := func(salt uint64) float64 {
		return stats.UnitFloat(stats.Hash64(salt, fp))
	}
	x1, x2, x3 := r(1), r(2), r(3)
	features = make([]float64, FeatureLen)
	features[0] = 1
	features[1] = x1
	features[2] = x2
	features[3] = x3
	noise := func(salt uint64, scale float64) float64 {
		return (r(salt) - 0.5) * scale
	}
	targets = []float64{
		0.5 + 2*x1 + noise(10, 0.05),      // ipc
		40*x2 + noise(11, 1.0),            // l1i_mpki
		1 - 0.4*x2 + noise(12, 0.02),      // l1i_hit_rate
		0.25*x3*(1-x2) + noise(13, 0.005), // l1i_stall_share
	}
	return fp, features, targets
}

func pinnedConfig() harness.Configuration {
	return harness.Configuration{Name: "entangling-4k", Prefetcher: "entangling-4k"}
}

func pinnedSpec() workload.Spec {
	specs := harness.PinnedBenchSpecs()
	return specs[0]
}

func TestCellFeaturesShapeAndDeterminism(t *testing.T) {
	cfg, spec := pinnedConfig(), pinnedSpec()
	a := CellFeatures(cfg, spec, 400_000, 200_000)
	b := CellFeatures(cfg, spec, 400_000, 200_000)
	if len(a) != FeatureLen {
		t.Fatalf("feature length %d, want %d", len(a), FeatureLen)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same cell produced different feature vectors")
	}
	if !allFinite(a) {
		t.Fatal("feature vector has non-finite values")
	}
	other := CellFeatures(harness.Baseline, spec, 400_000, 200_000)
	if reflect.DeepEqual(a, other) {
		t.Fatal("different configurations produced identical features")
	}
	windows := CellFeatures(cfg, spec, 100_000, 200_000)
	if reflect.DeepEqual(a, windows) {
		t.Fatal("different warmup windows produced identical features")
	}
}

func TestObserveRejections(t *testing.T) {
	p := New(Config{})
	fp, features, targets := synthExample(0)
	if !p.Observe(fp, features, targets) {
		t.Fatal("valid observation rejected")
	}
	if p.Observe(fp, features, targets) {
		t.Fatal("duplicate fingerprint accepted")
	}
	if p.Observe("", features, targets) {
		t.Fatal("empty fingerprint accepted")
	}
	if p.Observe("short", features[:3], targets) {
		t.Fatal("short feature vector accepted")
	}
	if p.Observe("badtargets", features, targets[:1]) {
		t.Fatal("short target vector accepted")
	}
	bad := append([]float64(nil), features...)
	bad[5] = math.NaN()
	if p.Observe("nan", bad, targets) {
		t.Fatal("NaN features accepted")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d after one valid observation", p.Len())
	}
}

func TestObserveCapFirstWins(t *testing.T) {
	p := New(Config{MaxExamples: 10})
	for i := 0; i < 20; i++ {
		fp, features, targets := synthExample(i)
		want := i < 10
		if got := p.Observe(fp, features, targets); got != want {
			t.Fatalf("Observe(example %d) = %v, want %v", i, got, want)
		}
	}
	if p.Len() != 10 {
		t.Fatalf("Len = %d, want the 10-example cap", p.Len())
	}
}

// TestPredictOrderInsensitive is the determinism half of the battery:
// the same observed set in two different insertion orders must answer
// every query identically — intervals, sizes, everything.
func TestPredictOrderInsensitive(t *testing.T) {
	const n = 120
	fwd, rev := New(Config{}), New(Config{})
	for i := 0; i < n; i++ {
		fp, features, targets := synthExample(i)
		fwd.Observe(fp, features, targets)
	}
	for i := n - 1; i >= 0; i-- {
		fp, features, targets := synthExample(i)
		rev.Observe(fp, features, targets)
	}
	for q := 0; q < 20; q++ {
		_, features, _ := synthExample(10_000 + q)
		a, aok := fwd.Predict(features)
		b, bok := rev.Predict(features)
		if aok != bok {
			t.Fatalf("query %d: ok %v vs %v across insertion orders", q, aok, bok)
		}
		if !aok {
			t.Fatalf("query %d: model declined with %d examples", q, n)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("query %d: predictions differ across insertion orders:\n%+v\n%+v", q, a, b)
		}
	}
}

// TestCalibrationBattery holds the conformal machinery to its stated
// coverage on a pinned holdout: train on one synthetic corpus, answer
// a disjoint one, and require >= 90% of the holdout cells to land
// inside their stated intervals for every metric at once.
func TestCalibrationBattery(t *testing.T) {
	p := New(Config{})
	for i := 0; i < 400; i++ {
		fp, features, targets := synthExample(i)
		p.Observe(fp, features, targets)
	}
	covered, total := 0, 0
	for i := 0; i < 100; i++ {
		_, features, targets := synthExample(20_000 + i)
		pred, ok := p.Predict(features)
		if !ok {
			t.Fatalf("holdout %d: model declined to answer", i)
		}
		total++
		if pred.Covers(targets) {
			covered++
		}
	}
	coverage := float64(covered) / float64(total)
	t.Logf("holdout coverage: %d/%d = %.3f", covered, total, coverage)
	if coverage < 0.9 {
		t.Fatalf("holdout coverage %.3f below the 0.90 floor", coverage)
	}
}

// TestRelWidthScales pins the normalized-width contract: the band a
// prediction states is judged relative to each metric's magnitude
// scale, floored per metric, so MaxRelWidth equals the conformal
// quantile rather than exploding on near-zero metrics.
func TestRelWidthScales(t *testing.T) {
	iv := Interval{Metric: "l1i_mpki", Value: 0.001, Lo: -0.5, Hi: 0.5}
	if got := iv.RelWidth(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("near-zero MPKI RelWidth = %v, want 0.5 (floored at 1 MPKI)", got)
	}
	iv = Interval{Metric: "ipc", Value: 2.0, Lo: 1.9, Hi: 2.1}
	if got := iv.RelWidth(); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("IPC RelWidth = %v, want 0.05", got)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	p := New(Config{})
	for i := 0; i < 60; i++ {
		fp, features, targets := synthExample(i)
		p.Observe(fp, features, targets)
	}
	snap := p.Snapshot()
	data, err := EncodeModelSnapshot(snap)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := DecodeModelSnapshot(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	restored := New(Config{})
	if err := restored.Restore(decoded); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if restored.Len() != p.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), p.Len())
	}
	for q := 0; q < 10; q++ {
		_, features, _ := synthExample(30_000 + q)
		a, aok := p.Predict(features)
		b, bok := restored.Predict(features)
		if aok != bok || !reflect.DeepEqual(a, b) {
			t.Fatalf("query %d: restored model answers differently", q)
		}
	}
	// Deterministic serialization: re-encoding the restored state must
	// reproduce the original bytes.
	again, err := EncodeModelSnapshot(restored.Snapshot())
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !reflect.DeepEqual(data, again) {
		t.Fatal("snapshot encoding is not canonical across a round trip")
	}
}

func TestDecodeModelSnapshotRejects(t *testing.T) {
	p := New(Config{})
	for i := 0; i < 8; i++ {
		fp, features, targets := synthExample(i)
		p.Observe(fp, features, targets)
	}
	valid, err := EncodeModelSnapshot(p.Snapshot())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	cases := map[string][]byte{
		"empty":             nil,
		"no header":         []byte("{}"),
		"bad magic":         append([]byte("ENTCKPT v1 00\n"), valid...),
		"bad version":       []byte("ENTMODEL v99 00\n{}"),
		"checksum mismatch": append(append([]byte(nil), valid[:len(valid)-2]...), 'X', valid[len(valid)-1]),
		"truncated":         valid[:len(valid)/2],
		"trailing data":     append(append([]byte(nil), valid...), []byte("{}")...),
	}
	for name, data := range cases {
		if _, err := DecodeModelSnapshot(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func TestModelStore(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenModelStore(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// Empty store: no snapshot, no error.
	if _, ok, err := store.Load(); err != nil || ok {
		t.Fatalf("Load on empty store = ok %v, err %v", ok, err)
	}

	p := New(Config{})
	for i := 0; i < 12; i++ {
		fp, features, targets := synthExample(i)
		p.Observe(fp, features, targets)
	}
	snap := p.Snapshot()
	if err := store.Save(snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	// Idempotent: saving identical state is a no-op, not an error.
	if err := store.Save(snap); err != nil {
		t.Fatalf("second save: %v", err)
	}
	loaded, ok, err := store.Load()
	if err != nil || !ok {
		t.Fatalf("Load = ok %v, err %v", ok, err)
	}
	if !reflect.DeepEqual(loaded, snap) {
		t.Fatal("loaded snapshot differs from saved")
	}
}

func TestModelStoreQuarantinesCorrupt(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenModelStore(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := writeFileSync(store.Path(), []byte("ENTMODEL v1 deadbeef\nnot json")); err != nil {
		t.Fatalf("planting corrupt snapshot: %v", err)
	}
	snap, ok, err := store.Load()
	if err != nil {
		t.Fatalf("Load on corrupt store errored: %v", err)
	}
	if ok {
		t.Fatalf("Load returned a snapshot from corrupt bytes: %+v", snap)
	}
	if n := store.Quarantined(); n != 1 {
		t.Fatalf("Quarantined = %d, want 1", n)
	}
	// The live path is clear again; a fresh save must succeed.
	p := New(Config{})
	fp, features, targets := synthExample(0)
	p.Observe(fp, features, targets)
	if err := store.Save(p.Snapshot()); err != nil {
		t.Fatalf("save after quarantine: %v", err)
	}
	if _, ok, err := store.Load(); err != nil || !ok {
		t.Fatalf("Load after re-save = ok %v, err %v", ok, err)
	}
}

// FuzzModelSnapshotDecode holds DecodeModelSnapshot to its contract:
// arbitrary bytes never panic, and anything it accepts must re-encode
// to a decodable snapshot describing the same state.
func FuzzModelSnapshotDecode(f *testing.F) {
	p := New(Config{})
	for i := 0; i < 6; i++ {
		fp, features, targets := synthExample(i)
		p.Observe(fp, features, targets)
	}
	valid, err := EncodeModelSnapshot(p.Snapshot())
	if err != nil {
		f.Fatalf("encode seed: %v", err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("ENTMODEL v1 00\n{}"))
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), "{}"...))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeModelSnapshot(data)
		if err != nil {
			return
		}
		re, err := EncodeModelSnapshot(snap)
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		back, err := DecodeModelSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if !reflect.DeepEqual(snap, back) {
			t.Fatal("snapshot not stable across re-encode round trip")
		}
	})
}
