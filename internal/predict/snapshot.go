package predict

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ModelSchemaVersion is the on-disk model snapshot schema. Bump it
// whenever MetricNames, FeatureLen, or the estimator's semantics
// change; old snapshots are then rejected at decode (the server
// quarantines them and starts a fresh model — approximate answers may
// temporarily fall back to exact, but nothing is ever misread).
const ModelSchemaVersion = 1

// modelMagic prefixes every encoded snapshot, mirroring the
// checkpoint store's "ENTCKPT" framing.
const modelMagic = "ENTMODEL"

// ErrModelCorrupt reports a snapshot that failed header, checksum, or
// schema validation.
var ErrModelCorrupt = errors.New("predict: corrupt model snapshot")

// SnapshotExample is one training example in serialized form.
type SnapshotExample struct {
	Fingerprint string    `json:"fingerprint"`
	Features    []float64 `json:"features"`
	Targets     []float64 `json:"targets"`
}

// ModelSnapshot is the versioned, deterministic serialization of a
// Predictor's training state. Examples are sorted by fingerprint, so
// equal observed sets encode to equal bytes regardless of the order
// the cells completed in.
type ModelSnapshot struct {
	SchemaVersion int               `json:"schema_version"`
	Metrics       []string          `json:"metrics"`
	FeatureLen    int               `json:"feature_len"`
	Examples      []SnapshotExample `json:"examples"`
}

// Snapshot captures the predictor's current training state.
func (p *Predictor) Snapshot() ModelSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	snap := ModelSnapshot{
		SchemaVersion: ModelSchemaVersion,
		Metrics:       append([]string(nil), MetricNames...),
		FeatureLen:    FeatureLen,
		Examples:      make([]SnapshotExample, 0, len(p.all)),
	}
	for _, ex := range p.all {
		snap.Examples = append(snap.Examples, SnapshotExample{
			Fingerprint: ex.fp,
			Features:    append([]float64(nil), ex.features...),
			Targets:     append([]float64(nil), ex.targets...),
		})
	}
	sort.Slice(snap.Examples, func(a, b int) bool {
		return snap.Examples[a].Fingerprint < snap.Examples[b].Fingerprint
	})
	return snap
}

// Restore replaces the predictor's training state with a decoded
// snapshot. The snapshot must already have passed DecodeModelSnapshot
// validation; Restore re-checks the invariants it depends on.
func (p *Predictor) Restore(snap ModelSnapshot) error {
	if err := snap.validate(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.byFP = make(map[string]int, len(snap.Examples))
	p.all = p.all[:0]
	for _, ex := range snap.Examples {
		if _, ok := p.byFP[ex.Fingerprint]; ok {
			continue
		}
		if len(p.all) >= p.cfg.MaxExamples {
			break
		}
		p.byFP[ex.Fingerprint] = len(p.all)
		p.all = append(p.all, example{
			fp:       ex.Fingerprint,
			features: append([]float64(nil), ex.Features...),
			targets:  append([]float64(nil), ex.Targets...),
		})
	}
	p.version++
	p.residuals = nil
	return nil
}

func (s ModelSnapshot) validate() error {
	if s.SchemaVersion != ModelSchemaVersion {
		return fmt.Errorf("%w: schema version %d, want %d", ErrModelCorrupt, s.SchemaVersion, ModelSchemaVersion)
	}
	if len(s.Metrics) != len(MetricNames) {
		return fmt.Errorf("%w: %d metrics, want %d", ErrModelCorrupt, len(s.Metrics), len(MetricNames))
	}
	for i, m := range s.Metrics {
		if m != MetricNames[i] {
			return fmt.Errorf("%w: metric[%d]=%q, want %q", ErrModelCorrupt, i, m, MetricNames[i])
		}
	}
	if s.FeatureLen != FeatureLen {
		return fmt.Errorf("%w: feature length %d, want %d", ErrModelCorrupt, s.FeatureLen, FeatureLen)
	}
	for i, ex := range s.Examples {
		if ex.Fingerprint == "" {
			return fmt.Errorf("%w: example %d has empty fingerprint", ErrModelCorrupt, i)
		}
		if len(ex.Features) != FeatureLen || len(ex.Targets) != len(MetricNames) {
			return fmt.Errorf("%w: example %d has %d features / %d targets", ErrModelCorrupt, i, len(ex.Features), len(ex.Targets))
		}
		if !allFinite(ex.Features) || !allFinite(ex.Targets) {
			return fmt.Errorf("%w: example %d has non-finite values", ErrModelCorrupt, i)
		}
	}
	return nil
}

// EncodeModelSnapshot frames a snapshot as
//
//	ENTMODEL v<schema> <sha256-hex-of-payload>\n<json payload>
//
// — the same self-checking header layout as cell checkpoint records,
// so a truncated or bit-flipped snapshot is detected before any field
// is trusted.
func EncodeModelSnapshot(snap ModelSnapshot) ([]byte, error) {
	if err := snap.validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("predict: encode snapshot: %w", err)
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s v%d %s\n", modelMagic, ModelSchemaVersion, hex.EncodeToString(sum[:]))
	return append([]byte(header), payload...), nil
}

// DecodeModelSnapshot parses and fully validates an encoded snapshot.
// Unknown fields, checksum mismatches, schema drift, wrong-length
// vectors and non-finite values are all rejected with
// ErrModelCorrupt; it never panics on arbitrary input
// (FuzzModelSnapshotDecode).
func DecodeModelSnapshot(data []byte) (ModelSnapshot, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return ModelSnapshot{}, fmt.Errorf("%w: missing header", ErrModelCorrupt)
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 3 || fields[0] != modelMagic {
		return ModelSnapshot{}, fmt.Errorf("%w: bad header", ErrModelCorrupt)
	}
	if fields[1] != fmt.Sprintf("v%d", ModelSchemaVersion) {
		return ModelSnapshot{}, fmt.Errorf("%w: unsupported version %q", ErrModelCorrupt, fields[1])
	}
	payload := data[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[2] {
		return ModelSnapshot{}, fmt.Errorf("%w: checksum mismatch", ErrModelCorrupt)
	}
	var snap ModelSnapshot
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&snap); err != nil {
		return ModelSnapshot{}, fmt.Errorf("%w: %v", ErrModelCorrupt, err)
	}
	if dec.More() {
		return ModelSnapshot{}, fmt.Errorf("%w: trailing data", ErrModelCorrupt)
	}
	if err := snap.validate(); err != nil {
		return ModelSnapshot{}, err
	}
	return snap, nil
}

// modelFile is the fixed snapshot filename inside a ModelStore
// directory.
const modelFile = "model.snap"

// ModelStore persists the model snapshot next to the checkpoint
// store. It is deliberately *separate* from the CheckpointStore: the
// two directories never share files, so no predictor write can ever
// land where exact cell records live.
type ModelStore struct {
	dir string

	mu          sync.Mutex
	quarantined int
}

// OpenModelStore creates (if needed) and opens a snapshot store
// directory.
func OpenModelStore(dir string) (*ModelStore, error) {
	if dir == "" {
		return nil, errors.New("predict: empty model store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("predict: create model store: %w", err)
	}
	return &ModelStore{dir: dir}, nil
}

// Path returns the snapshot file path.
func (s *ModelStore) Path() string { return filepath.Join(s.dir, modelFile) }

// Save atomically persists a snapshot: encode, write to a temp file,
// fsync, rename over the live file, fsync the directory. A crash at
// any point leaves either the previous snapshot or the new one, never
// a torn file.
func (s *ModelStore) Save(snap ModelSnapshot) error {
	data, err := EncodeModelSnapshot(snap)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.Path()
	if prev, err := os.ReadFile(path); err == nil && bytes.Equal(prev, data) {
		return nil
	}
	if err := writeFileSync(path, data); err != nil {
		return fmt.Errorf("predict: save model snapshot: %w", err)
	}
	return nil
}

// Load reads the stored snapshot. ok is false when no snapshot exists
// or the stored one is corrupt — corrupt files are quarantined to
// <file>.bad (like checkpoint records) and the caller starts with a
// fresh model; a bad snapshot is never an error that blocks serving.
func (s *ModelStore) Load() (ModelSnapshot, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.Path()
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return ModelSnapshot{}, false, nil
	}
	if err != nil {
		return ModelSnapshot{}, false, fmt.Errorf("predict: load model snapshot: %w", err)
	}
	snap, derr := DecodeModelSnapshot(data)
	if derr != nil {
		if qerr := os.Rename(path, path+".bad"); qerr != nil {
			return ModelSnapshot{}, false, fmt.Errorf("predict: quarantine corrupt snapshot: %v (decode: %w)", qerr, derr)
		}
		s.quarantined++
		return ModelSnapshot{}, false, nil
	}
	return snap, true, nil
}

// Quarantined reports how many corrupt snapshots this store has moved
// aside.
func (s *ModelStore) Quarantined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// writeFileSync writes data to path via a temp file in the same
// directory, fsyncs the file, renames it into place, and fsyncs the
// directory.
func writeFileSync(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return err
	}
	return nil
}
