package fleet_test

import (
	"encoding/json"
	"testing"

	"entangling/internal/faultinject"
	"entangling/internal/fleet"
	"entangling/internal/harness"
)

// FuzzFleetWireDecode throws arbitrary bytes at every wire decoder —
// assignment, result and health travel coordinator<->worker as
// network input, so all three must hold two properties on hostile
// payloads: never panic, and never hand back a message that could
// poison downstream state. Concretely, any Assignment that decodes
// carries a fingerprint equal to the recomputation over its own
// payload (so it cannot alias another cell's checkpoint identity),
// any Result that decodes carries exactly one outcome arm and a
// bounded retry history, and any successful Result is encodable as a
// valid checkpoint record — the exact bytes replication would Save.
func FuzzFleetWireDecode(f *testing.F) {
	asg := validAssignment()
	asg.Plan = &faultinject.Plan{Seed: 7, CellSlowProb: 0.5, SlowDelay: 1000}
	if b, err := json.Marshal(asg); err == nil {
		f.Add(b)
	}
	res := fleet.Result{
		SchemaVersion: fleet.WireSchemaVersion,
		Fingerprint:   asg.Fingerprint,
		WorkerID:      "w0",
		Retries:       []fleet.RetryNote{{Attempt: 2}},
		Result:        &harness.RunResult{Config: asg.Config.Name, Workload: asg.Workload.Name},
	}
	if b, err := json.Marshal(res); err == nil {
		f.Add(b)
	}
	fail := res
	fail.Result = nil
	fail.Failure = &fleet.Failure{Config: asg.Config.Name, Workload: asg.Workload.Name, Attempts: 3, Message: "boom"}
	if b, err := json.Marshal(fail); err == nil {
		f.Add(b)
	}
	if b, err := json.Marshal(fleet.Health{SchemaVersion: fleet.WireSchemaVersion, WorkerID: "w1", Completed: 9}); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema_version":1}`))
	f.Add([]byte(`{"schema_version":1,"fingerprint":"00","result":{},"failure":{}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"schema_version":1,"fingerprint":"00","retries":[{"attempt":-1}],"result":{}}`))
	f.Add([]byte("ENTCKPT v1 deadbeef\n{}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if a, err := fleet.DecodeAssignment(data); err == nil {
			if want := harness.CellFingerprint(a.Config, a.Workload, a.Warmup, a.Measure); a.Fingerprint != want {
				t.Fatalf("decoded assignment fingerprint %q does not match its payload (%q)", a.Fingerprint, want)
			}
			if a.Plan != nil {
				if verr := a.Plan.Validate(); verr != nil {
					t.Fatalf("decoded assignment carries an invalid fault plan: %v", verr)
				}
			}
		}
		if r, err := fleet.DecodeResult(data); err == nil {
			if (r.Result == nil) == (r.Failure == nil) {
				t.Fatal("decoded result does not carry exactly one outcome arm")
			}
			for _, rn := range r.Retries {
				if rn.Attempt < 1 {
					t.Fatalf("decoded result carries retry attempt %d", rn.Attempt)
				}
			}
			if r.Result != nil {
				// Replication encodes exactly this record; a decodable
				// wire result must never yield an unsaveable (or
				// round-trip-lossy) checkpoint record, or a hostile
				// worker could wedge the coordinator's store.
				rec := harness.CellRecord{
					SchemaVersion: harness.CheckpointSchemaVersion,
					Fingerprint:   r.Fingerprint,
					Config:        r.Result.Config,
					Workload:      r.Result.Workload,
					Result:        *r.Result,
				}
				if rec.Config == "" || rec.Workload == "" {
					// Check rejects these against any assignment; they
					// never reach Save.
					return
				}
				b, err := harness.EncodeCellRecord(rec)
				if err != nil {
					t.Fatalf("decoded result produced an unencodable checkpoint record: %v", err)
				}
				if _, err := harness.DecodeCellRecord(b); err != nil {
					t.Fatalf("replicated record does not round-trip: %v", err)
				}
			}
		}
		if _, err := fleet.DecodeHealth(data); err == nil {
			// Structural validity is all healthz promises.
			_ = err
		}
	})
}
