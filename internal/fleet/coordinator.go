package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"entangling/internal/harness"
	"entangling/internal/server"
	"entangling/internal/stats"
)

// This file is the coordinator side of the fleet: a server.Dispatcher
// whose CellRunner leaf executes cells remotely. Placement is a
// consistent-hash ring over the cell fingerprint — the same cell
// always prefers the same worker, so worker-local caches stay hot and
// a steal race is the exception, not the steady state. Slow primaries
// are raced (work-stealing after StealAfter), dead ones are failed
// over immediately, and every completed cell's checkpoint record is
// replicated into the coordinator's own store before the result is
// published — the durability of a finished cell never depends on a
// worker staying alive.

// ringSeed salts the placement hash; fixed so placement is stable
// across coordinator restarts (worker caches survive).
const ringSeed = 0x9e3779b97f4a7c15

// CoordinatorConfig assembles a Coordinator.
type CoordinatorConfig struct {
	// Peers are the worker base URLs (e.g. "http://10.0.0.7:9001").
	// Required, order-insensitive: placement depends only on the set.
	Peers []string
	// Store, when non-nil, receives a replicated checkpoint record for
	// every cell a worker completes, and serves warm restarts.
	Store *harness.CheckpointStore
	// StealAfter is how long the primary worker may hold a cell before
	// the next owner is raced for it (default 15s; tests use
	// milliseconds). Work-stealing never cancels the primary — the
	// first success wins and the loser's dispatch is released.
	StealAfter time.Duration
	// Client performs the HTTP requests (default: a dedicated client
	// with no global timeout — cell deadlines belong to contexts).
	Client *http.Client
	// VirtualNodes is the ring weight per worker (default 64).
	VirtualNodes int
	// MemCap bounds the in-process result cache (default 4096).
	MemCap int
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

// CoordinatorStats is a snapshot of the coordinator's dispatch
// counters.
type CoordinatorStats struct {
	// Dispatched counts cells resolved remotely (cache tiers excluded).
	Dispatched uint64
	// Stolen counts cells won by a non-primary worker, whether by
	// steal-race or failover.
	Stolen uint64
	// Failovers counts transport-level dispatch failures that moved a
	// cell to the next owner.
	Failovers uint64
	// StealsLaunched counts steal races opened against a slow primary
	// (whether or not the thief won).
	StealsLaunched uint64
}

// Coordinator dispatches cells onto a fleet of workers. It embeds the
// shared Resolver, so the coordinator's memory cache, durable store
// and singleflight sit in front of any network traffic — a cell is
// shipped to a worker only once no matter how many jobs want it.
type Coordinator struct {
	*server.Resolver

	cfg    CoordinatorConfig
	client *http.Client
	peers  []string
	ring   []ringNode

	dispatched     atomic.Uint64
	stolen         atomic.Uint64
	failovers      atomic.Uint64
	stealsLaunched atomic.Uint64
}

// ringNode is one virtual node: a point on the hash circle owned by a
// peer.
type ringNode struct {
	hash uint64
	peer int
}

// NewCoordinator builds a coordinator over the given worker set.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("fleet: coordinator needs at least one worker peer")
	}
	if cfg.StealAfter <= 0 {
		cfg.StealAfter = 15 * time.Second
	}
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = 64
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Coordinator{cfg: cfg, client: cfg.Client}
	if c.client == nil {
		c.client = &http.Client{}
	}
	seen := make(map[string]bool)
	for _, p := range cfg.Peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			return nil, errors.New("fleet: empty worker peer URL")
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		if seen[p] {
			return nil, fmt.Errorf("fleet: duplicate worker peer %s", p)
		}
		seen[p] = true
		c.peers = append(c.peers, p)
	}
	// Placement must not depend on flag order.
	sort.Strings(c.peers)
	for i, p := range c.peers {
		for v := 0; v < cfg.VirtualNodes; v++ {
			c.ring = append(c.ring, ringNode{
				hash: stats.Hash64(ringSeed, p, "#", strconv.Itoa(v)),
				peer: i,
			})
		}
	}
	sort.Slice(c.ring, func(i, j int) bool { return c.ring[i].hash < c.ring[j].hash })
	c.Resolver = server.NewResolver(server.ResolverConfig{
		Run:    c.runRemote,
		Store:  cfg.Store,
		MemCap: cfg.MemCap,
	})
	return c, nil
}

// owners returns every peer in preference order for a fingerprint:
// the ring walk from the fingerprint's point, first distinct owner
// first. The full list is the failover chain — a cell only fails for
// transport reasons when every worker refused it.
func (c *Coordinator) owners(fingerprint string) []string {
	h := stats.Hash64(ringSeed, fingerprint)
	start := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= h })
	owners := make([]string, 0, len(c.peers))
	taken := make([]bool, len(c.peers))
	for i := 0; i < len(c.ring) && len(owners) < len(c.peers); i++ {
		n := c.ring[(start+i)%len(c.ring)]
		if !taken[n.peer] {
			taken[n.peer] = true
			owners = append(owners, c.peers[n.peer])
		}
	}
	return owners
}

// dispatchOutcome is one worker's answer (or transport failure).
type dispatchOutcome struct {
	attempt int
	peer    string
	res     Result
	err     error
}

// runRemote is the Coordinator's CellRunner: resolve one cell that
// missed every local tier by racing it across the cell's owner chain.
// The primary is asked first; StealAfter later (or immediately on a
// transport failure) the next owner joins the race. First valid
// success wins and cancels the rest; an in-band cell failure is
// authoritative and ends the race — the worker already spent the
// retry budget, and a deterministic failure would only repeat
// elsewhere.
func (c *Coordinator) runRemote(ctx context.Context, cell server.CellSpec, progress func(harness.CellEvent)) (harness.RunResult, string, *harness.CellError) {
	cellErr := func(err error) *harness.CellError {
		return &harness.CellError{Config: cell.Config.Name, Workload: cell.Workload.Name, Err: err}
	}
	canceled := func() *harness.CellError {
		return cellErr(fmt.Errorf("%w: %v", harness.ErrCellCanceled, context.Cause(ctx)))
	}

	asg := Assignment{
		SchemaVersion: WireSchemaVersion,
		Fingerprint:   cell.Fingerprint,
		Config:        cell.Config,
		Workload:      cell.Workload,
		Warmup:        cell.Warmup,
		Measure:       cell.Measure,
		Plan:          cell.Plan,
		Tenant:        cell.Tenant,
	}
	owners := c.owners(cell.Fingerprint)

	// Every dispatch shares actx: the first authoritative outcome
	// cancels the stragglers, whose goroutines deliver into the
	// buffered channel and exit — nothing leaks past the race.
	actx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	outcomes := make(chan dispatchOutcome, len(owners))
	launched := 0
	launch := func() {
		a, peer := launched, owners[launched]
		launched++
		go func() {
			res, err := c.post(actx, peer, asg)
			outcomes <- dispatchOutcome{attempt: a, peer: peer, res: res, err: err}
		}()
	}

	c.dispatched.Add(1)
	launch()
	steal := time.NewTimer(c.cfg.StealAfter)
	defer steal.Stop()

	pending := 1
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return harness.RunResult{}, "", canceled()

		case <-steal.C:
			if launched < len(owners) {
				c.cfg.Logf("fleet: cell %s slow on %s after %v; stealing to %s",
					cell.Fingerprint, owners[launched-1], c.cfg.StealAfter, owners[launched])
				c.stealsLaunched.Add(1)
				launch()
				pending++
				steal.Reset(c.cfg.StealAfter)
			}

		case out := <-outcomes:
			pending--
			if out.err != nil {
				// Transport-level failure: this worker is unreachable or
				// broken, not the cell. Fail over to the next owner now.
				lastErr = out.err
				c.failovers.Add(1)
				c.cfg.Logf("fleet: cell %s failed on %s: %v", cell.Fingerprint, out.peer, out.err)
				if launched < len(owners) {
					launch()
					pending++
				} else if pending == 0 {
					return harness.RunResult{}, "", cellErr(
						fmt.Errorf("fleet: every worker failed the dispatch, last: %w", lastErr))
				}
				continue
			}
			if out.res.Failure != nil {
				f := out.res.Failure
				err := errors.New(f.Message)
				if f.Canceled {
					err = fmt.Errorf("%w: %s", harness.ErrCellCanceled, f.Message)
				}
				return harness.RunResult{}, "", &harness.CellError{
					Config: f.Config, Workload: f.Workload, Attempts: f.Attempts, Err: err,
				}
			}

			// Success: replay the worker's retry history into the job
			// event stream, replicate durability onto this side of the
			// fabric, then publish.
			if progress != nil {
				for _, rn := range out.res.Retries {
					progress(harness.CellEvent{
						Type: harness.CellRetried, Config: cell.Config.Name,
						Workload: cell.Workload.Name, Attempt: rn.Attempt,
					})
				}
			}
			if err := c.replicate(cell, *out.res.Result); err != nil {
				return harness.RunResult{}, "", cellErr(err)
			}
			source := server.SourceFleet
			if out.attempt > 0 {
				source = server.SourceFleetStolen
				c.stolen.Add(1)
			}
			return *out.res.Result, source, nil
		}
	}
}

// post ships one assignment to one worker and returns its validated
// result. Any non-200 status, oversized body, undecodable payload or
// assignment mismatch is a transport-class error (the caller fails
// over); only a decoded in-band Failure is an authoritative outcome.
func (c *Coordinator) post(ctx context.Context, peer string, asg Assignment) (Result, error) {
	body, err := json.Marshal(asg)
	if err != nil {
		return Result{}, fmt.Errorf("encoding assignment: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+CellsPath, bytes.NewReader(body))
	if err != nil {
		return Result{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return Result{}, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, MaxWireBytes+1))
	if err != nil {
		return Result{}, fmt.Errorf("reading worker response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return Result{}, fmt.Errorf("worker %s: status %d: %s", peer, resp.StatusCode, firstLine(b))
	}
	res, err := DecodeResult(b)
	if err != nil {
		return Result{}, fmt.Errorf("worker %s: %w", peer, err)
	}
	if err := res.Check(asg); err != nil {
		return Result{}, fmt.Errorf("worker %s: %w", peer, err)
	}
	return res, nil
}

// replicate persists a worker-computed result into the coordinator's
// store. An idempotent re-save (steal race, warm worker cache) is a
// no-op; a conflicting record is evidence of nondeterminism or a
// lying worker, and fails the cell rather than poisoning the store.
// Other store errors degrade durability, not the job: they are logged
// and the result still flows.
func (c *Coordinator) replicate(cell server.CellSpec, res harness.RunResult) error {
	if c.cfg.Store == nil {
		return nil
	}
	err := c.cfg.Store.Save(harness.CellRecord{
		SchemaVersion: harness.CheckpointSchemaVersion,
		Fingerprint:   cell.Fingerprint,
		Config:        cell.Config.Name,
		Workload:      cell.Workload.Name,
		Result:        res,
	})
	switch {
	case err == nil:
		return nil
	case errors.Is(err, harness.ErrCheckpointConflict):
		return fmt.Errorf("fleet: worker result disagrees with the stored checkpoint: %w", err)
	default:
		c.cfg.Logf("fleet: replicating cell %s: %v (result still served)", cell.Fingerprint, err)
		return nil
	}
}

// firstLine trims a worker error body to a single loggable line.
func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// Stats snapshots the dispatch counters.
func (c *Coordinator) Stats() CoordinatorStats {
	return CoordinatorStats{
		Dispatched:     c.dispatched.Load(),
		Stolen:         c.stolen.Load(),
		Failovers:      c.failovers.Load(),
		StealsLaunched: c.stealsLaunched.Load(),
	}
}

// Close releases idle transport connections. Dispatches in flight are
// unaffected.
func (c *Coordinator) Close() {
	c.client.CloseIdleConnections()
}

// WaitReady polls every worker's healthz until all answer validly or
// the context expires — startup sequencing for fleets whose workers
// and coordinator race to boot.
func (c *Coordinator) WaitReady(ctx context.Context) error {
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		if err := c.checkWorkers(ctx); err == nil {
			return nil
		} else if ctx.Err() != nil {
			return fmt.Errorf("fleet: workers not ready: %w", err)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: workers not ready: %w", ctx.Err())
		case <-tick.C:
		}
	}
}

// checkWorkers pings every peer's healthz once.
func (c *Coordinator) checkWorkers(ctx context.Context) error {
	for _, peer := range c.peers {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+HealthPath, nil)
		if err != nil {
			return err
		}
		resp, err := c.client.Do(req)
		if err != nil {
			return fmt.Errorf("worker %s: %w", peer, err)
		}
		b, rerr := io.ReadAll(io.LimitReader(resp.Body, MaxWireBytes+1))
		resp.Body.Close()
		if rerr != nil {
			return fmt.Errorf("worker %s: %w", peer, rerr)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("worker %s: healthz status %d", peer, resp.StatusCode)
		}
		if _, err := DecodeHealth(b); err != nil {
			return fmt.Errorf("worker %s: %w", peer, err)
		}
	}
	return nil
}

// Peers returns the normalized, placement-ordered worker URLs.
func (c *Coordinator) Peers() []string {
	return append([]string(nil), c.peers...)
}

var _ server.Dispatcher = (*Coordinator)(nil)
