package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"entangling/internal/harness"
	"entangling/internal/server"
	"entangling/internal/workload"
)

// This file is the worker side of the fleet: a thin HTTP wrapper
// around the same server.LocalDispatcher a standalone job server runs
// on. One POST resolves one cell; the worker's own resolution
// hierarchy (memory cache -> optional local store -> singleflight)
// applies underneath, so a coordinator re-asking for a cell — after a
// steal race, say — costs the worker a cache hit, not a re-simulation.

// WorkerConfig assembles a Worker. Zero fields take the documented
// defaults.
type WorkerConfig struct {
	// ID names this worker in results and health docs (default
	// "worker").
	ID string
	// Traces is the worker's trace cache (nil -> a private one).
	Traces *workload.TraceCache
	// Store, when non-nil, is the worker's local durable tier. Optional:
	// the coordinator replicates every completed cell into its own
	// store, so worker-local durability is an optimization, not a
	// correctness requirement.
	Store *harness.CheckpointStore
	// Retries, RetryBaseDelay and CellTimeout are the per-cell fault
	// tolerance policy (see harness.Options).
	Retries        int
	RetryBaseDelay time.Duration
	CellTimeout    time.Duration
	// AllowFaults permits assignments carrying fault plans (testing
	// only); without it such assignments are rejected with 403.
	AllowFaults bool
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

// Worker resolves assigned cells in-process and serves the fleet wire
// API.
type Worker struct {
	cfg      WorkerConfig
	dispatch *server.LocalDispatcher

	inflight  atomic.Int64
	completed atomic.Uint64
}

// NewWorker builds a worker over its own in-process dispatcher.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.ID == "" {
		cfg.ID = "worker"
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Worker{
		cfg: cfg,
		dispatch: server.NewLocalDispatcher(server.LocalConfig{
			Traces:         cfg.Traces,
			Store:          cfg.Store,
			Retries:        cfg.Retries,
			RetryBaseDelay: cfg.RetryBaseDelay,
			CellTimeout:    cfg.CellTimeout,
		}),
	}
}

// ID returns the worker's name.
func (w *Worker) ID() string { return w.cfg.ID }

// Handler returns the worker's HTTP API: the cell endpoint and
// healthz.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+CellsPath, w.handleCell)
	mux.HandleFunc("GET "+HealthPath, w.handleHealth)
	return mux
}

// wireError is the JSON body of every non-2xx worker response.
type wireError struct {
	Error string `json:"error"`
}

func (w *Worker) reply(rw http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(rw, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	rw.Write(append(b, '\n'))
}

// handleCell resolves one assignment. The request context is the
// assignment's lease: when the coordinator abandons the dispatch
// (steal race lost, job canceled) the context cancels and the
// worker's flight is released with it — unless another subscriber on
// this worker still wants the cell.
func (w *Worker) handleCell(rw http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, MaxWireBytes))
	if err != nil {
		w.reply(rw, http.StatusRequestEntityTooLarge, wireError{Error: err.Error()})
		return
	}
	asg, err := DecodeAssignment(body)
	if err != nil {
		w.reply(rw, http.StatusBadRequest, wireError{Error: err.Error()})
		return
	}
	if asg.Plan != nil && !w.cfg.AllowFaults {
		w.reply(rw, http.StatusForbidden, wireError{Error: "fleet: worker does not accept fault plans"})
		return
	}

	w.inflight.Add(1)
	defer w.inflight.Add(-1)

	// Collect retry transitions for replay into the coordinator's
	// event stream; the dispatcher calls progress from its worker
	// goroutines.
	var (
		mu      sync.Mutex
		retries []RetryNote
	)
	progress := func(ev harness.CellEvent) {
		if ev.Type == harness.CellRetried {
			mu.Lock()
			if len(retries) < maxRetryNotes {
				retries = append(retries, RetryNote{Attempt: ev.Attempt})
			}
			mu.Unlock()
		}
	}

	out := w.dispatch.Dispatch(r.Context(), server.CellSpec{
		Config:      asg.Config,
		Workload:    asg.Workload,
		Warmup:      asg.Warmup,
		Measure:     asg.Measure,
		Fingerprint: asg.Fingerprint,
		Plan:        asg.Plan,
		Tenant:      asg.Tenant,
	}, progress)

	mu.Lock()
	res := Result{
		SchemaVersion: WireSchemaVersion,
		Fingerprint:   asg.Fingerprint,
		WorkerID:      w.cfg.ID,
		Retries:       retries,
	}
	mu.Unlock()
	if out.Err != nil {
		if out.Err.Canceled() {
			// The coordinator canceled us (or the connection died);
			// there is no one to answer, and a canceled outcome must
			// not travel as an authoritative cell failure.
			w.cfg.Logf("fleet worker %s: cell %s canceled", w.cfg.ID, asg.Fingerprint)
			w.reply(rw, http.StatusConflict, wireError{Error: out.Err.Error()})
			return
		}
		res.Failure = &Failure{
			Config:   out.Err.Config,
			Workload: out.Err.Workload,
			Attempts: out.Err.Attempts,
			Message:  out.Err.Error(),
			Canceled: false,
		}
	} else {
		r := out.Result
		res.Result = &r
	}
	w.completed.Add(1)
	if asg.Tenant != "" {
		w.cfg.Logf("fleet worker %s: cell %s resolved (%s) for tenant %s",
			w.cfg.ID, asg.Fingerprint, out.Source, asg.Tenant)
	} else {
		w.cfg.Logf("fleet worker %s: cell %s resolved (%s)", w.cfg.ID, asg.Fingerprint, out.Source)
	}
	w.reply(rw, http.StatusOK, res)
}

func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	w.reply(rw, http.StatusOK, Health{
		SchemaVersion: WireSchemaVersion,
		WorkerID:      w.cfg.ID,
		Inflight:      w.inflight.Load(),
		Completed:     w.completed.Load(),
	})
}

// Completed reports how many assignments this worker has answered.
func (w *Worker) Completed() uint64 { return w.completed.Load() }
