// Package fleet distributes the job server's cell resolution over a
// coordinator and a set of worker replicas speaking stdlib HTTP/JSON.
// The coordinator implements server.Dispatcher: it consistent-hashes
// each cell's content address onto a preference-ordered list of
// workers, dispatches to the primary, work-steals to the next owner
// when the primary is slow (or fails over immediately when it is
// unreachable), and replicates every completed cell's checkpoint
// record into its own durable store — so a worker crash loses zero
// finished cells and a coordinator warm restart re-runs nothing.
// Workers are thin: each wraps the same in-process LocalDispatcher a
// standalone server uses, so a cell computes identical bytes no
// matter which node (or how many nodes) ran it. The differential
// battery in fleet_test.go holds the fabric to exactly that claim:
// the exported metrics of a fleet-dispatched sweep are byte-identical
// (equal SHA-256) to the in-process export, including under worker
// kills and steals.
package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"entangling/internal/faultinject"
	"entangling/internal/harness"
	"entangling/internal/workload"
)

// WireSchemaVersion identifies the coordinator<->worker message
// layout; bump it on any incompatible change. Mixed-version fleets
// refuse each other's messages instead of misinterpreting them.
//
// Version history:
//
//	1 — initial layout (PR 6).
//	2 — Assignment gains the tenant attribution field. Decoders are
//	    strict (unknown fields rejected), so a v1 worker cannot
//	    silently drop the field; the bump makes the refusal explicit.
const WireSchemaVersion = 2

// MaxWireBytes caps any single wire message. Assignments and results
// are small (one configuration, one workload's parameters, one
// result struct); anything larger is malformed or hostile.
const MaxWireBytes = 1 << 20

// Fleet endpoint paths, versioned independently of the public job API.
const (
	CellsPath  = "/fleet/v1/cells"
	HealthPath = "/fleet/v1/healthz"
)

// Assignment is the coordinator->worker request: one fully described
// cell to resolve. It carries the complete configuration and derived
// workload parameters (not registry names), so a worker needs no
// registry agreement with its coordinator — the fingerprint commits
// the payload to the exact cell it claims to be.
type Assignment struct {
	SchemaVersion int                   `json:"schema_version"`
	Fingerprint   string                `json:"fingerprint"`
	Config        harness.Configuration `json:"config"`
	Workload      workload.Spec         `json:"workload"`
	Warmup        uint64                `json:"warmup"`
	Measure       uint64                `json:"measure"`
	// Plan optionally injects deterministic faults into the worker's
	// run; workers reject it unless started with fault injection
	// enabled (mirrors the job server's AllowFaults gate).
	Plan *faultinject.Plan `json:"plan,omitempty"`
	// Tenant attributes the cell to the submitting tenant for worker
	// logs and fleet accounting. Observability metadata only: it is
	// deliberately excluded from fingerprint verification, so identical
	// cells from different tenants still share one checkpoint identity.
	Tenant string `json:"tenant,omitempty"`
}

// Validate reports the first structural problem with a decoded
// assignment. The load-bearing check is fingerprint recomputation:
// the claimed content address must equal harness.CellFingerprint over
// the payload itself, so a corrupted or tampered assignment cannot
// alias one cell's work onto another cell's checkpoint identity.
func (a Assignment) Validate() error {
	if a.SchemaVersion != WireSchemaVersion {
		return fmt.Errorf("fleet: assignment schema %d, want %d", a.SchemaVersion, WireSchemaVersion)
	}
	if a.Config.Name == "" || a.Workload.Name == "" {
		return errors.New("fleet: assignment missing config or workload name")
	}
	if a.Measure == 0 {
		return errors.New("fleet: assignment measure window must be positive")
	}
	if want := harness.CellFingerprint(a.Config, a.Workload, a.Warmup, a.Measure); a.Fingerprint != want {
		return fmt.Errorf("fleet: assignment fingerprint %q does not match its payload", a.Fingerprint)
	}
	if a.Plan != nil {
		if err := a.Plan.Validate(); err != nil {
			return fmt.Errorf("fleet: assignment fault plan: %w", err)
		}
	}
	return nil
}

// RetryNote reports one retry the worker's run went through, so the
// coordinator can replay cell.retried events into the job's single
// ordered SSE stream.
type RetryNote struct {
	Attempt int `json:"attempt"`
}

// maxRetryNotes bounds the replayed retry history; a result claiming
// more retries than any sane policy allows is rejected rather than
// amplified into the event stream.
const maxRetryNotes = 64

// Failure is the wire form of a typed *harness.CellError: the cell
// ran and produced a failure, which is an authoritative outcome — the
// coordinator records it instead of retrying elsewhere (the worker
// already spent the retry budget).
type Failure struct {
	Config   string `json:"config"`
	Workload string `json:"workload"`
	Attempts int    `json:"attempts"`
	Message  string `json:"message"`
	Canceled bool   `json:"canceled"`
}

// Result is the worker->coordinator response: exactly one of Result
// (the cell's RunResult, byte-identical to a local run) or Failure.
type Result struct {
	SchemaVersion int                `json:"schema_version"`
	Fingerprint   string             `json:"fingerprint"`
	WorkerID      string             `json:"worker_id"`
	Retries       []RetryNote        `json:"retries,omitempty"`
	Result        *harness.RunResult `json:"result,omitempty"`
	Failure       *Failure           `json:"failure,omitempty"`
}

// Validate reports the first structural problem with a decoded result.
func (r Result) Validate() error {
	if r.SchemaVersion != WireSchemaVersion {
		return fmt.Errorf("fleet: result schema %d, want %d", r.SchemaVersion, WireSchemaVersion)
	}
	if r.Fingerprint == "" {
		return errors.New("fleet: result missing fingerprint")
	}
	if (r.Result == nil) == (r.Failure == nil) {
		return errors.New("fleet: result must carry exactly one of result or failure")
	}
	if len(r.Retries) > maxRetryNotes {
		return fmt.Errorf("fleet: result claims %d retries (cap %d)", len(r.Retries), maxRetryNotes)
	}
	for _, rn := range r.Retries {
		if rn.Attempt < 1 {
			return fmt.Errorf("fleet: result retry attempt %d out of range", rn.Attempt)
		}
	}
	return nil
}

// Check verifies a structurally valid result against the assignment
// it answers. A result for the wrong fingerprint — or one whose
// payload names a different cell than it was asked to run — is
// rejected before it can reach the coordinator's caches or store.
func (r Result) Check(asg Assignment) error {
	if r.Fingerprint != asg.Fingerprint {
		return fmt.Errorf("fleet: result fingerprint %q answers a different assignment (%q)",
			r.Fingerprint, asg.Fingerprint)
	}
	if r.Result != nil &&
		(r.Result.Config != asg.Config.Name || r.Result.Workload != asg.Workload.Name) {
		return fmt.Errorf("fleet: result payload names cell %s/%s, assignment was %s/%s",
			r.Result.Config, r.Result.Workload, asg.Config.Name, asg.Workload.Name)
	}
	if r.Failure != nil &&
		(r.Failure.Config != asg.Config.Name || r.Failure.Workload != asg.Workload.Name) {
		return fmt.Errorf("fleet: failure names cell %s/%s, assignment was %s/%s",
			r.Failure.Config, r.Failure.Workload, asg.Config.Name, asg.Workload.Name)
	}
	return nil
}

// Health is the worker healthz body.
type Health struct {
	SchemaVersion int    `json:"schema_version"`
	WorkerID      string `json:"worker_id"`
	Inflight      int64  `json:"inflight"`
	Completed     uint64 `json:"completed"`
}

// Validate reports the first structural problem with a health doc.
func (h Health) Validate() error {
	if h.SchemaVersion != WireSchemaVersion {
		return fmt.Errorf("fleet: health schema %d, want %d", h.SchemaVersion, WireSchemaVersion)
	}
	if h.WorkerID == "" {
		return errors.New("fleet: health missing worker id")
	}
	return nil
}

// decodeStrict decodes one JSON document into v, rejecting unknown
// fields, oversized payloads and trailing data. Every wire decoder
// funnels through here so the fuzz target exercises one code path.
func decodeStrict(data []byte, v any) error {
	if len(data) > MaxWireBytes {
		return fmt.Errorf("fleet: message of %d bytes exceeds cap %d", len(data), MaxWireBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("fleet: decoding message: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return errors.New("fleet: trailing data after message")
	}
	return nil
}

// DecodeAssignment parses and validates a wire assignment.
func DecodeAssignment(data []byte) (Assignment, error) {
	var a Assignment
	if err := decodeStrict(data, &a); err != nil {
		return Assignment{}, err
	}
	if err := a.Validate(); err != nil {
		return Assignment{}, err
	}
	return a, nil
}

// DecodeResult parses and structurally validates a wire result. The
// caller must still Check it against the assignment it answers.
func DecodeResult(data []byte) (Result, error) {
	var r Result
	if err := decodeStrict(data, &r); err != nil {
		return Result{}, err
	}
	if err := r.Validate(); err != nil {
		return Result{}, err
	}
	return r, nil
}

// DecodeHealth parses and validates a worker health document.
func DecodeHealth(data []byte) (Health, error) {
	var h Health
	if err := decodeStrict(data, &h); err != nil {
		return Health{}, err
	}
	if err := h.Validate(); err != nil {
		return Health{}, err
	}
	return h, nil
}
