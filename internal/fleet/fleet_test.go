package fleet_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"entangling/internal/faultinject"
	"entangling/internal/fleet"
	"entangling/internal/harness"
	"entangling/internal/leakcheck"
	"entangling/internal/server"
	"entangling/internal/workload"
)

// This file is the differential fleet battery: the pinned 28-cell
// sweep (7 configurations x 4 CVP workloads) dispatched through a
// coordinator onto in-process httptest workers must export metrics
// byte-identical — equal SHA-256 — to the same sweep run entirely
// in-process, across fault seeds, mid-job worker kills with restart,
// dead-from-the-start failover, and work-steal races provoked by
// injected slow cells. Every test is leak-checked: when its drains
// finish, the goroutine count is back at baseline.

// Small windows keep every cell in the low-millisecond range.
const (
	testWarmup  = 20_000
	testMeasure = 10_000
)

func pinnedConfigNames() []string {
	var names []string
	for _, c := range harness.PinnedBenchConfigurations() {
		names = append(names, c.Name)
	}
	return names
}

func pinnedWorkloadNames() []string {
	var names []string
	for _, s := range harness.PinnedBenchSpecs() {
		names = append(names, s.Name)
	}
	return names
}

// pinnedRequest is the battery's job: the benchmark mini-sweep's cell
// grid at test windows — 28 cells.
func pinnedRequest() server.JobRequest {
	return server.JobRequest{
		Configurations: pinnedConfigNames(),
		Workloads:      pinnedWorkloadNames(),
		Warmup:         testWarmup,
		Measure:        testMeasure,
	}
}

// killableWorker wraps a fleet worker in a switchable failure shim: a
// "killed" worker breaks every connection without an HTTP response,
// which is what a SIGKILLed process looks like from the coordinator.
// Reviving it models a restart on the same address.
type killableWorker struct {
	worker *fleet.Worker
	ts     *httptest.Server
	dead   atomic.Bool
}

func (k *killableWorker) kill() {
	k.dead.Store(true)
	// Sever in-flight and idle connections too, as a process death would.
	k.ts.CloseClientConnections()
}

func (k *killableWorker) revive() { k.dead.Store(false) }

// startWorker launches one leak-tracked fleet worker over httptest.
func startWorker(t *testing.T, id string, allowFaults bool) *killableWorker {
	t.Helper()
	k := &killableWorker{
		worker: fleet.NewWorker(fleet.WorkerConfig{
			ID:             id,
			Retries:        2,
			RetryBaseDelay: time.Millisecond,
			AllowFaults:    allowFaults,
			Logf:           t.Logf,
		}),
	}
	inner := k.worker.Handler()
	k.ts = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if k.dead.Load() {
			if hj, ok := rw.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(rw, r)
	}))
	t.Cleanup(k.ts.Close)
	return k
}

// fleetFixture is a coordinator-mode job server over N workers.
type fleetFixture struct {
	workers []*killableWorker
	coord   *fleet.Coordinator
	srv     *server.Server
	ts      *httptest.Server
}

type fixtureOpts struct {
	workers     int
	stealAfter  time.Duration
	allowFaults bool
	storeDir    string
}

// startFleet assembles workers, a coordinator replicating into
// storeDir, and a job server whose dispatcher is the coordinator.
func startFleet(t *testing.T, o fixtureOpts) *fleetFixture {
	t.Helper()
	if o.workers <= 0 {
		o.workers = 3
	}
	if o.stealAfter <= 0 {
		o.stealAfter = 10 * time.Second // effectively "no stealing" at test cell times
	}
	if o.storeDir == "" {
		o.storeDir = t.TempDir()
	}
	f := &fleetFixture{}
	var peers []string
	for i := 0; i < o.workers; i++ {
		w := startWorker(t, fmt.Sprintf("w%d", i), o.allowFaults)
		f.workers = append(f.workers, w)
		peers = append(peers, w.ts.URL)
	}
	store, err := harness.OpenCheckpointStore(o.storeDir)
	if err != nil {
		t.Fatalf("opening coordinator store: %v", err)
	}
	f.coord, err = fleet.NewCoordinator(fleet.CoordinatorConfig{
		Peers:      peers,
		Store:      store,
		StealAfter: o.stealAfter,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	t.Cleanup(f.coord.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.coord.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}

	f.srv, err = server.New(server.Config{
		Workers:         1,
		CellParallelism: 4,
		QueueCapacity:   4,
		PerCategory:     1,
		AllowFaults:     o.allowFaults,
		DrainGrace:      5 * time.Second,
		Dispatcher:      f.coord,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	f.srv.Start()
	f.ts = httptest.NewServer(f.srv.Handler())
	t.Cleanup(func() {
		f.srv.Drain()
		f.ts.Close()
	})
	return f
}

// startLocalServer is the in-process reference the fleet is diffed
// against.
func startLocalServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := server.New(server.Config{
		Workers:         1,
		CellParallelism: 4,
		QueueCapacity:   4,
		PerCategory:     1,
		DrainGrace:      5 * time.Second,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Drain()
		ts.Close()
	})
	return ts
}

// submitJob posts a request that must be admitted and returns the job
// ID.
func submitJob(t *testing.T, ts *httptest.Server, req server.JobRequest) string {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading submit response: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var sr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sr); err != nil || sr.ID == "" {
		t.Fatalf("decoding submit response: %v (%s)", err, body)
	}
	return sr.ID
}

// waitStatus polls the job until pred holds.
func waitStatus(t *testing.T, ts *httptest.Server, id string, pred func(server.StatusDoc) bool) server.StatusDoc {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET status: %v", err)
		}
		var doc server.StatusDoc
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding status: %v", err)
		}
		if pred(doc) {
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached the expected status (last: %+v)", id, doc)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitResult polls the result endpoint until the job is terminal.
func waitResult(t *testing.T, ts *httptest.Server, id string) server.ResultDoc {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatalf("GET result: %v", err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("reading result: %v", err)
		}
		if resp.StatusCode == http.StatusOK {
			var doc server.ResultDoc
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatalf("decoding result: %v (%s)", err, body)
			}
			return doc
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("GET result: status %d, body %s", resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never produced a result", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// directSweepSHA runs the request's cells through harness.RunSuiteCtx
// in this process and fingerprints the metrics export exactly as
// cmd/bench does — the ground truth every transport is diffed against.
func directSweepSHA(t *testing.T, req server.JobRequest) string {
	t.Helper()
	byName := make(map[string]harness.Configuration)
	for _, c := range harness.KnownConfigurations() {
		byName[c.Name] = c
	}
	var cfgs []harness.Configuration
	for _, n := range req.Configurations {
		c, ok := byName[n]
		if !ok {
			t.Fatalf("unknown configuration %q", n)
		}
		cfgs = append(cfgs, c)
	}
	specByName := make(map[string]workload.Spec)
	for _, s := range workload.CVPSuite(1) {
		specByName[s.Name] = s
	}
	var specs []workload.Spec
	for _, n := range req.Workloads {
		s, ok := specByName[n]
		if !ok {
			t.Fatalf("unknown workload %q", n)
		}
		specs = append(specs, s)
	}
	suite, err := harness.RunSuiteCtx(context.Background(), specs, cfgs,
		harness.Options{Warmup: req.Warmup, Measure: req.Measure, Parallelism: 2})
	if err != nil {
		t.Fatalf("direct RunSuiteCtx: %v", err)
	}
	var sb strings.Builder
	if err := harness.WriteMetricsJSON(&sb, suite.Metrics()); err != nil {
		t.Fatalf("WriteMetricsJSON: %v", err)
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

// requireEquivalent asserts a terminal job carries the reference
// export fingerprint with every cell resolved.
func requireEquivalent(t *testing.T, doc server.ResultDoc, wantSHA string) {
	t.Helper()
	if doc.State != server.StateCompleted {
		t.Fatalf("job state = %s, want completed (failed cells: %+v)", doc.State, doc.FailedCells)
	}
	if doc.Cells.Failed != 0 || doc.Cells.Done != doc.Cells.Total {
		t.Fatalf("cell counts %+v, want all %d done, none failed", doc.Cells, doc.Cells.Total)
	}
	// MetricsSHA256 covers the exact bytes harness.WriteMetricsJSON
	// emits (the result doc re-indents its embedded copy, so the sha —
	// not the embedded bytes — is the cross-transport fingerprint).
	if doc.MetricsSHA256 != wantSHA {
		t.Fatalf("metrics sha %s != reference %s — fleet transport changed result bytes",
			doc.MetricsSHA256, wantSHA)
	}
}

// TestFleetDifferentialPinnedSweep is the core equivalence proof: the
// pinned 28-cell sweep through a 3-worker fleet is byte-identical to
// both the standalone job server and a direct harness run — same
// content-addressed job ID, same metrics SHA-256 — and every cell's
// provenance says the fleet actually did the work.
func TestFleetDifferentialPinnedSweep(t *testing.T) {
	leakcheck.Check(t)
	req := pinnedRequest()
	want := directSweepSHA(t, req)

	local := startLocalServer(t)
	localID := submitJob(t, local, req)
	localDoc := waitResult(t, local, localID)
	requireEquivalent(t, localDoc, want)

	f := startFleet(t, fixtureOpts{workers: 3})
	fleetID := submitJob(t, f.ts, req)
	if fleetID != localID {
		t.Fatalf("job identity diverged across dispatchers: fleet %s, local %s", fleetID, localID)
	}
	doc := waitResult(t, f.ts, fleetID)
	requireEquivalent(t, doc, want)
	if !bytes.Equal(doc.Metrics, localDoc.Metrics) {
		t.Fatal("fleet and local metrics exports differ byte-for-byte")
	}
	if doc.Cells.Fleet != doc.Cells.Total {
		t.Errorf("fleet resolved %d of %d cells; the rest leaked to another source: %+v",
			doc.Cells.Fleet, doc.Cells.Total, doc.Cells)
	}
	// The placement spread the sweep: every worker did some cells.
	for _, w := range f.workers {
		if w.worker.Completed() == 0 {
			t.Errorf("worker %s completed no cells — placement is not spreading", w.worker.ID())
		}
	}
	if st := f.coord.Stats(); st.Dispatched == 0 {
		t.Errorf("coordinator stats recorded no dispatches: %+v", st)
	}
}

// TestFleetWorkerKillAndRestart kills one worker mid-job (connections
// severed, no HTTP responses — a SIGKILL as the coordinator sees it),
// revives it later, and requires the job to finish complete and
// byte-identical anyway.
func TestFleetWorkerKillAndRestart(t *testing.T) {
	leakcheck.Check(t)
	req := pinnedRequest()
	want := directSweepSHA(t, req)

	f := startFleet(t, fixtureOpts{workers: 3})
	id := submitJob(t, f.ts, req)

	waitStatus(t, f.ts, id, func(d server.StatusDoc) bool { return d.Cells.Done >= 2 })
	f.workers[0].kill()
	waitStatus(t, f.ts, id, func(d server.StatusDoc) bool { return d.Cells.Done >= 20 })
	f.workers[0].revive()

	doc := waitResult(t, f.ts, id)
	requireEquivalent(t, doc, want)
	t.Logf("kill/restart run: cells %+v, coordinator %+v", doc.Cells, f.coord.Stats())
}

// TestFleetDeadWorkerFailover starts the sweep against a fleet whose
// first worker is already dead: every cell it owns must fail over to
// the next owner on the ring (surfacing as stolen cells), and the
// export must still be byte-identical.
func TestFleetDeadWorkerFailover(t *testing.T) {
	leakcheck.Check(t)
	req := pinnedRequest()
	want := directSweepSHA(t, req)

	f := startFleet(t, fixtureOpts{workers: 3})
	f.workers[0].kill()

	id := submitJob(t, f.ts, req)
	doc := waitResult(t, f.ts, id)
	requireEquivalent(t, doc, want)
	st := f.coord.Stats()
	if doc.Cells.Stolen == 0 || st.Failovers == 0 {
		t.Errorf("dead primary produced no failovers: cells %+v, coordinator %+v", doc.Cells, st)
	}
}

// TestFleetWorkStealingSlowCells injects deterministic slow cells
// (and transient cell errors) on the workers via a fault plan, with a
// steal deadline far below the injected stall: the coordinator must
// race slow primaries, the workers' internal retries must be replayed
// into the job's single SSE stream, and the final export must be
// byte-identical to a clean local run — faults may cost time, never
// bytes. Two seeds vary which cells stall and which error.
func TestFleetWorkStealingSlowCells(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			leakcheck.Check(t)
			req := pinnedRequest()
			want := directSweepSHA(t, req)
			req.FaultPlan = &faultinject.Plan{
				Seed:          seed,
				CellSlowProb:  0.3,
				SlowDelay:     400 * time.Millisecond,
				CellErrorProb: 0.3,
			}

			f := startFleet(t, fixtureOpts{workers: 3, stealAfter: 40 * time.Millisecond, allowFaults: true})
			id := submitJob(t, f.ts, req)
			doc := waitResult(t, f.ts, id)
			requireEquivalent(t, doc, want)

			st := f.coord.Stats()
			if st.StealsLaunched == 0 {
				t.Errorf("slow cells never triggered a steal race: %+v", st)
			}
			if retried := countSSE(t, f.ts, id, "cell.retried"); retried == 0 {
				t.Error("worker retries were not replayed into the SSE stream")
			}
			t.Logf("seed %d: cells %+v, coordinator %+v", seed, doc.Cells, st)
		})
	}
}

// TestFleetCoordinatorWarmRestart proves the replication guarantee:
// after a fleet job completes, a brand-new coordinator and server
// over the same store — with every original worker replaced — answer
// the identical job entirely from the durable tier. Finished cells
// survived on the coordinator's side of the fabric, so no worker
// state was load-bearing.
func TestFleetCoordinatorWarmRestart(t *testing.T) {
	leakcheck.Check(t)
	req := pinnedRequest()
	want := directSweepSHA(t, req)
	storeDir := t.TempDir()

	f1 := startFleet(t, fixtureOpts{workers: 3, storeDir: storeDir})
	id := submitJob(t, f1.ts, req)
	requireEquivalent(t, waitResult(t, f1.ts, id), want)
	f1.srv.Drain()
	for _, w := range f1.workers {
		w.kill()
	}

	f2 := startFleet(t, fixtureOpts{workers: 2, storeDir: storeDir})
	id2 := submitJob(t, f2.ts, req)
	doc := waitResult(t, f2.ts, id2)
	requireEquivalent(t, doc, want)
	if doc.Cells.CacheStore != doc.Cells.Total || doc.Cells.Fleet != 0 {
		t.Errorf("warm restart re-dispatched cells: %+v (want all %d from cache-store)",
			doc.Cells, doc.Cells.Total)
	}
	for _, w := range f2.workers {
		if n := w.worker.Completed(); n != 0 {
			t.Errorf("worker %s ran %d cells on a warm restart", w.worker.ID(), n)
		}
	}
}

// countSSE streams the job's (closed) event log and counts events of
// one type, verifying sequence ordering along the way.
func countSSE(t *testing.T, ts *httptest.Server, id, typ string) int {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	count, lastSeq := 0, 0
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "id: ") {
			var seq int
			fmt.Sscanf(line, "id: %d", &seq)
			if seq <= lastSeq {
				t.Fatalf("SSE stream out of order: id %d after %d", seq, lastSeq)
			}
			lastSeq = seq
		}
		if strings.HasPrefix(line, "event: "+typ) {
			count++
		}
	}
	return count
}

// TestFleetWorkerRejectsBadAssignments drives the worker's wire
// surface directly: oversized, malformed, tampered and policy-
// violating assignments must be refused without touching the
// simulator.
func TestFleetWorkerRejectsBadAssignments(t *testing.T) {
	leakcheck.Check(t)
	w := startWorker(t, "w0", false)

	valid := validAssignment()
	post := func(body []byte) int {
		t.Helper()
		resp, err := http.Post(w.ts.URL+fleet.CellsPath, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	if got := post([]byte("{not json")); got != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", got)
	}
	tampered := valid
	tampered.Fingerprint = strings.Repeat("0", 32)
	if got := post(mustJSON(tampered)); got != http.StatusBadRequest {
		t.Errorf("tampered fingerprint: status %d, want 400", got)
	}
	wrongSchema := valid
	wrongSchema.SchemaVersion = fleet.WireSchemaVersion + 1
	if got := post(mustJSON(wrongSchema)); got != http.StatusBadRequest {
		t.Errorf("wrong schema version: status %d, want 400", got)
	}
	faulty := valid
	faulty.Plan = &faultinject.Plan{Seed: 1, CellErrorProb: 1}
	faulty.Fingerprint = harness.CellFingerprint(faulty.Config, faulty.Workload, faulty.Warmup, faulty.Measure)
	if got := post(mustJSON(faulty)); got != http.StatusForbidden {
		t.Errorf("fault plan on a faultless worker: status %d, want 403", got)
	}
	if got := post(bytes.Repeat([]byte("a"), fleet.MaxWireBytes+2)); got != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", got)
	}
	if n := w.worker.Completed(); n != 0 {
		t.Errorf("worker simulated %d cells off rejected assignments", n)
	}
}

// validAssignment builds a well-formed assignment for one real cell.
func validAssignment() fleet.Assignment {
	cfg := harness.PinnedBenchConfigurations()[0]
	spec := harness.PinnedBenchSpecs()[0]
	return fleet.Assignment{
		SchemaVersion: fleet.WireSchemaVersion,
		Fingerprint:   harness.CellFingerprint(cfg, spec, testWarmup, testMeasure),
		Config:        cfg,
		Workload:      spec,
		Warmup:        testWarmup,
		Measure:       testMeasure,
	}
}

// TestFleetCoordinatorRejectsLyingWorker points a coordinator at a
// fake worker that answers every assignment with a validly shaped
// result for the wrong cell. The coordinator must refuse the payload
// (failing the cell after exhausting its single peer) rather than
// record another cell's bytes — the checkpoint store stays empty.
func TestFleetCoordinatorRejectsLyingWorker(t *testing.T) {
	leakcheck.Check(t)
	liar := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == fleet.HealthPath {
			json.NewEncoder(rw).Encode(fleet.Health{SchemaVersion: fleet.WireSchemaVersion, WorkerID: "liar"})
			return
		}
		body, _ := io.ReadAll(r.Body)
		asg, err := fleet.DecodeAssignment(body)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		res := fleet.Result{
			SchemaVersion: fleet.WireSchemaVersion,
			Fingerprint:   strings.Repeat("f", 32), // answers a different cell
			WorkerID:      "liar",
			Result:        &harness.RunResult{Config: asg.Config.Name, Workload: asg.Workload.Name},
		}
		json.NewEncoder(rw).Encode(res)
	}))
	t.Cleanup(liar.Close)

	storeDir := t.TempDir()
	store, err := harness.OpenCheckpointStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Peers: []string{liar.URL},
		Store: store,
		Logf:  t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	asg := validAssignment()
	out := coord.Dispatch(context.Background(), server.CellSpec{
		Config:      asg.Config,
		Workload:    asg.Workload,
		Warmup:      asg.Warmup,
		Measure:     asg.Measure,
		Fingerprint: asg.Fingerprint,
	}, nil)
	if out.Err == nil {
		t.Fatal("coordinator accepted a result for the wrong fingerprint")
	}
	if n, err := store.Count(); err != nil || n != 0 {
		t.Fatalf("lying worker reached the checkpoint store: %d records, %v", n, err)
	}
}

// TestFleetResultCheck pins the wire-level cross-checks that keep a
// result bound to its assignment.
func TestFleetResultCheck(t *testing.T) {
	asg := validAssignment()
	ok := fleet.Result{
		SchemaVersion: fleet.WireSchemaVersion,
		Fingerprint:   asg.Fingerprint,
		WorkerID:      "w0",
		Result:        &harness.RunResult{Config: asg.Config.Name, Workload: asg.Workload.Name},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
	if err := ok.Check(asg); err != nil {
		t.Fatalf("matching result rejected: %v", err)
	}

	wrongFP := ok
	wrongFP.Fingerprint = strings.Repeat("0", 32)
	if err := wrongFP.Check(asg); err == nil {
		t.Error("result for another fingerprint passed Check")
	}
	wrongCell := ok
	wrongCell.Result = &harness.RunResult{Config: "ideal", Workload: asg.Workload.Name}
	if err := wrongCell.Check(asg); err == nil {
		t.Error("result naming another cell passed Check")
	}
	both := ok
	both.Failure = &fleet.Failure{Config: asg.Config.Name, Workload: asg.Workload.Name}
	if err := both.Validate(); err == nil {
		t.Error("result carrying both outcome arms validated")
	}
	neither := fleet.Result{SchemaVersion: fleet.WireSchemaVersion, Fingerprint: asg.Fingerprint}
	if err := neither.Validate(); err == nil {
		t.Error("result carrying no outcome validated")
	}
}
