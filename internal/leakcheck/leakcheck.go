// Package leakcheck asserts that a test leaves no goroutines behind.
// The server and fleet packages are long-lived machinery full of
// background goroutines (job workers, detached flights, SSE
// followers, steal races); every test that starts any of it calls
// leakcheck.Check at the top, and the cleanup verifies the goroutine
// count returned to its baseline after the test's drains ran — a
// stuck flight or an abandoned dispatch fails the test with a full
// stack dump instead of silently accumulating across the package run.
package leakcheck

import (
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// grace is how long a cleanup waits for goroutines to unwind before
// declaring a leak. Drains are synchronous, but connection teardown
// and timer-parked goroutines finish shortly after them.
const grace = 5 * time.Second

// Check snapshots the current goroutine count and registers a cleanup
// that fails the test if the count has not returned to that baseline
// (plus tolerance for runtime-owned goroutines) by the end of the
// test. Call it before starting servers, workers or coordinators.
func Check(t testing.TB) {
	t.Helper()
	// Transport keep-alive goroutines from earlier tests are parked,
	// not leaked; retire them so they do not pollute the baseline in
	// either direction.
	http.DefaultClient.CloseIdleConnections()
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	runtime.GC()
	baseline := runtime.NumGoroutine()

	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		http.DefaultTransport.(*http.Transport).CloseIdleConnections()
		deadline := time.Now().Add(grace)
		var n int
		for {
			runtime.GC()
			n = runtime.NumGoroutine()
			if n <= baseline {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("leakcheck: %d goroutines at exit, baseline %d; stacks:\n%s",
			n, baseline, summarize(string(buf)))
	})
}

// summarize trims a full stack dump to its goroutine headers plus the
// first frame, enough to identify the leak without drowning the log.
func summarize(dump string) string {
	var sb strings.Builder
	for _, g := range strings.Split(dump, "\n\n") {
		lines := strings.Split(g, "\n")
		for i, l := range lines {
			if i > 2 {
				sb.WriteString("\t...\n")
				break
			}
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
