package prefetch

import (
	"entangling/internal/cache"
	"entangling/internal/trace"
)

// DJolt (Nakamura et al. [35], §IV-B) refines RDIP with (i) more
// accurate context signatures and (ii) a dual look-ahead mechanism: a
// short-range table keyed by the recent call/return context covers
// nearby misses, while a long-range table keyed by a deeper context
// prefetches "distant jolts" far ahead of fetch, so both short- and
// long-latency misses can be timely.
//
// Configuration as evaluated: 8K-entry miss tables, 125KB total.
type DJolt struct {
	Base
	issuer Issuer

	short *sigTable
	long  *sigTable

	// callHist is the rolling call/return context the signatures hash.
	callHist []uint64

	// burst dedupes lines within one trigger: the two ranges and
	// adjacent footprints overlap, and the PQ would reject the repeat
	// anyway — skipping it here saves the wasted tag probe.
	burst map[uint64]bool

	// Lifecycle feedback counters (observability; a throttling policy
	// can key off these without new plumbing).
	FeedbackLate    uint64
	FeedbackUseless uint64
}

// sigTable is a signature-indexed miss table shared by the two ranges.
type sigTable struct {
	sets, ways int
	entries    []rdipEntry
	tick       uint64
	depth      int // signature depth in events
}

func newSigTable(entriesN, depth int) *sigTable {
	ways := 4
	return &sigTable{
		sets:    entriesN / ways,
		ways:    ways,
		entries: make([]rdipEntry, entriesN),
		depth:   depth,
	}
}

func (t *sigTable) signature(hist []uint64) uint64 {
	var sig uint64
	n := len(hist)
	for i := 0; i < t.depth && i < n; i++ {
		sig = sig<<9 ^ sig>>55 ^ hist[n-1-i]
	}
	return sig * 0x9E3779B97F4A7C15
}

func (t *sigTable) set(sig uint64) []rdipEntry {
	s := int(sig>>33) % t.sets
	if s < 0 {
		s = -s
	}
	return t.entries[s*t.ways : (s+1)*t.ways]
}

func (t *sigTable) lookup(sig uint64) *rdipEntry {
	set := t.set(sig)
	for i := range set {
		if set[i].valid && set[i].sig == sig {
			t.tick++
			set[i].lru = t.tick
			return &set[i]
		}
	}
	return nil
}

func (t *sigTable) ensure(sig uint64) *rdipEntry {
	if e := t.lookup(sig); e != nil {
		return e
	}
	set := t.set(sig)
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	t.tick++
	*victim = rdipEntry{sig: sig, valid: true, lru: t.tick}
	return victim
}

func (t *sigTable) train(sig uint64, line uint64) {
	e := t.ensure(sig)
	for i := 0; i < e.n; i++ {
		tr := &e.triggers[i]
		if line > tr.line && line-tr.line <= 8 {
			tr.footprint |= 1 << (line - tr.line - 1)
			return
		}
		if tr.line == line {
			return
		}
	}
	if e.n < len(e.triggers) {
		e.triggers[e.n] = rdipTrigger{line: line}
		e.n++
		return
	}
	copy(e.triggers[:], e.triggers[1:])
	e.triggers[len(e.triggers)-1] = rdipTrigger{line: line}
}

func (t *sigTable) prefetch(issuer Issuer, cycle uint64, sig uint64, seen map[uint64]bool) {
	e := t.lookup(sig)
	if e == nil {
		return
	}
	issue := func(line uint64) {
		if seen[line] {
			return
		}
		seen[line] = true
		issuer.Prefetch(cycle, line, 0)
	}
	for i := 0; i < e.n; i++ {
		tr := e.triggers[i]
		issue(tr.line)
		for b := uint64(0); b < 8; b++ {
			if tr.footprint&(1<<b) != 0 {
				issue(tr.line + b + 1)
			}
		}
	}
}

// NewDJolt returns the paper's D-JOLT configuration (125KB).
func NewDJolt(issuer Issuer) *DJolt {
	return &DJolt{
		Base:   Base{PfName: "djolt", Bits: uint64(125 * 1024 * 8)},
		issuer: issuer,
		short:  newSigTable(8192, 2),
		long:   newSigTable(8192, 6),
	}
}

// OnBranch implements Prefetcher.
func (p *DJolt) OnBranch(ev BranchEvent) {
	switch {
	case ev.Type.IsCall() && ev.Taken:
		p.callHist = append(p.callHist, ev.Target>>4)
		if len(p.callHist) > 16 {
			p.callHist = p.callHist[1:]
		}
	case ev.Type == trace.Return:
		p.callHist = append(p.callHist, ev.PC>>4|1)
		if len(p.callHist) > 16 {
			p.callHist = p.callHist[1:]
		}
	default:
		return
	}
	if p.burst == nil {
		p.burst = make(map[uint64]bool, 32)
	} else {
		clear(p.burst)
	}
	p.short.prefetch(p.issuer, ev.Cycle, p.short.signature(p.callHist), p.burst)
	p.long.prefetch(p.issuer, ev.Cycle, p.long.signature(p.callHist), p.burst)
}

// OnAccess implements Prefetcher: a fall-through next-line component
// covers sequential misses (the original's third engine), and misses
// train both signature ranges. The long-range table is trained with
// the context several events back (its look-ahead), which is what lets
// it fire early next time.
func (p *DJolt) OnAccess(ev cache.AccessEvent) {
	p.issuer.Prefetch(ev.Cycle, ev.LineAddr+1, 0)
	if ev.Hit {
		return
	}
	p.issuer.Prefetch(ev.Cycle, ev.LineAddr+2, 0)
	p.short.train(p.short.signature(p.callHist), ev.LineAddr)
	if len(p.callHist) > 4 {
		// The long-range context as of 4 events ago.
		p.long.train(p.long.signature(p.callHist[:len(p.callHist)-4]), ev.LineAddr)
	}
}

// OnPrefetchFeedback implements FeedbackSink: D-JOLT records how many
// of its prefetches arrived late or went unused.
func (p *DJolt) OnPrefetchFeedback(fb Feedback) {
	switch fb.Kind {
	case FeedbackLate:
		p.FeedbackLate++
	case FeedbackUseless:
		p.FeedbackUseless++
	}
}

func init() {
	Register("djolt", func(is Issuer) Prefetcher { return NewDJolt(is) })
}
