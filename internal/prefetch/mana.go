package prefetch

import "entangling/internal/cache"

// MANA (Ansari et al. [5], §IV-B) is the representative BTB-directed
// spatial-region prefetcher: the instruction stream is chopped into
// spatial regions (a trigger line plus an 8-bit footprint of the
// following lines, the PIF-style compaction), and regions are chained
// by successor pointers. On a fetched trigger the chain is walked
// look-ahead regions forward, prefetching each region's footprint.
//
// This implementation keeps MANA's behavioural core (region
// compaction + chained look-ahead) without the HOBPT indirection the
// original uses to dedupe chain storage; storage budgets are reported
// as the paper quotes them (9KB / 17.25KB / 74.18KB).
type MANA struct {
	Base
	issuer Issuer

	sets, ways int
	entries    []manaEntry
	tick       uint64

	// Lookahead is how many chained regions are prefetched ahead.
	Lookahead int

	curTrigger uint64
	haveRegion bool

	// walk dedupes lines within one chain walk (see OnAccess). It
	// holds at most Lookahead*(regionSpan+1) entries, so a linear scan
	// beats a map on every region boundary.
	walk []uint64
}

type manaEntry struct {
	tag       uint64
	footprint uint8
	next      uint64
	hasNext   bool
	valid     bool
	lru       uint64
}

// regionSpan is how many lines after the trigger the footprint covers.
const regionSpan = 8

// NewMANA builds a MANA table with the given entry count; storageKB is
// the paper-quoted budget for the configuration.
func NewMANA(issuer Issuer, name string, entriesN int, storageKB float64, lookahead int) *MANA {
	ways := 4
	sets := entriesN / ways
	if sets < 1 {
		sets = 1
	}
	return &MANA{
		Base:      Base{PfName: name, Bits: uint64(storageKB * 1024 * 8)},
		issuer:    issuer,
		sets:      sets,
		ways:      ways,
		entries:   make([]manaEntry, sets*ways),
		Lookahead: lookahead,
	}
}

func (p *MANA) set(line uint64) []manaEntry {
	h := line
	h ^= h >> 13
	s := int(h % uint64(p.sets))
	return p.entries[s*p.ways : (s+1)*p.ways]
}

func (p *MANA) lookup(line uint64) *manaEntry {
	set := p.set(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			p.tick++
			set[i].lru = p.tick
			return &set[i]
		}
	}
	return nil
}

func (p *MANA) ensure(line uint64) *manaEntry {
	if e := p.lookup(line); e != nil {
		return e
	}
	set := p.set(line)
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	p.tick++
	*victim = manaEntry{tag: line, valid: true, lru: p.tick}
	return victim
}

// OnAccess implements Prefetcher.
func (p *MANA) OnAccess(ev cache.AccessEvent) {
	line := ev.LineAddr
	if p.haveRegion && line > p.curTrigger && line-p.curTrigger <= regionSpan {
		// Inside the current region: record the footprint bit.
		if e := p.lookup(p.curTrigger); e != nil {
			e.footprint |= 1 << (line - p.curTrigger - 1)
		}
		return
	}

	// Region boundary: chain the old region to the new trigger, then
	// walk the chain ahead issuing prefetches.
	if p.haveRegion {
		if e := p.ensure(p.curTrigger); e != nil {
			e.next = line
			e.hasNext = true
		}
	}
	p.curTrigger = line
	p.haveRegion = true
	p.ensure(line)

	// Walk the chain. Successor pointers can form short cycles
	// (A→B→A), so dedupe lines within the walk — the PQ would reject
	// the repeats anyway, this just skips the wasted probes.
	p.walk = p.walk[:0]
	issue := func(l uint64) {
		for _, w := range p.walk {
			if w == l {
				return
			}
		}
		p.walk = append(p.walk, l)
		p.issuer.Prefetch(ev.Cycle, l, 0)
	}
	t := line
	for depth := 0; depth < p.Lookahead; depth++ {
		e := p.lookup(t)
		if e == nil {
			break
		}
		if depth > 0 {
			issue(t)
		}
		for i := uint64(0); i < regionSpan; i++ {
			if e.footprint&(1<<i) != 0 {
				issue(t + i + 1)
			}
		}
		if !e.hasNext {
			break
		}
		t = e.next
	}
}

func init() {
	for _, c := range []struct {
		name      string
		entries   int
		storageKB float64
	}{
		{"mana-2k", 2048, 9},
		{"mana-4k", 4096, 17.25},
		{"mana-8k", 8192, 74.18},
	} {
		c := c
		Register(c.name, func(is Issuer) Prefetcher {
			return NewMANA(is, c.name, c.entries, c.storageKB, 4)
		})
	}
}
