// Package prefetch defines the L1I prefetcher interface — the hook set
// of the 1st Instruction Prefetching Championship (IPC-1) ChampSim API
// the paper's evaluation is built on — plus a registry and the simple
// baseline prefetchers (NextLine, SN4L, the Markov look-ahead-d
// prefetcher used for Figure 2). The heavier baselines (MANA, RDIP,
// D-JOLT, FNL+MMA) live in their own files; the paper's contribution
// lives in internal/core.
package prefetch

import (
	"fmt"
	"sort"
	"sync"

	"entangling/internal/cache"
	"entangling/internal/trace"
)

// Issuer lets a prefetcher inject prefetch requests into the L1I's
// prefetch queue. The cache.ICache implements it.
type Issuer interface {
	// Prefetch enqueues lineAddr, issued no earlier than notBefore.
	// meta is opaque and returned with later events concerning the
	// request/line. Reports whether the request was accepted (false
	// when the prefetch queue is full).
	Prefetch(notBefore uint64, lineAddr uint64, meta uint64) bool
}

// BranchEvent is delivered to prefetchers for every branch instruction
// at the time the front-end's prediction engine processes it (the
// ChampSim branch_operate hook RDIP-style prefetchers rely on).
type BranchEvent struct {
	Cycle  uint64
	PC     uint64
	Type   trace.BranchType
	Taken  bool
	Target uint64
}

// Feedback is one prefetch lifecycle outcome (late or useless)
// delivered back to the prefetcher that issued the request, carrying
// the request's opaque metadata. The CPU's lifecycle tracker generates
// it; prefetchers can use it for degree/distance throttling.
type Feedback = cache.PrefetchFeedback

// Feedback kinds.
const (
	FeedbackLate    = cache.FeedbackLate
	FeedbackUseless = cache.FeedbackUseless
)

// FeedbackSink receives lifecycle feedback. Base implements it as a
// no-op, so every prefetcher embedding Base is automatically wired.
type FeedbackSink = cache.FeedbackSink

// Prefetcher is an L1I prefetcher. OnAccess/OnFill/OnEvict mirror
// cache.Listener; the CPU wires the L1I's event stream straight into
// the active prefetcher.
type Prefetcher interface {
	// Name identifies the configuration, e.g. "entangling-4k".
	Name() string
	// StorageBits returns the hardware budget the configuration would
	// occupy, in bits (for the paper's storage-vs-IPC comparisons).
	StorageBits() uint64
	OnAccess(cache.AccessEvent)
	OnFill(cache.FillEvent)
	OnEvict(cache.EvictEvent)
	OnBranch(BranchEvent)
}

// Factory constructs a prefetcher bound to an issuer.
type Factory func(Issuer) Prefetcher

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a named prefetcher configuration. Registering a name
// twice panics: configurations are identities in the evaluation.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("prefetch: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New instantiates a registered prefetcher.
func New(name string, issuer Issuer) (Prefetcher, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("prefetch: unknown prefetcher %q (known: %v)", name, Names())
	}
	return f(issuer), nil
}

// Names lists registered configurations, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Base provides no-op hooks and name/storage plumbing for embedding.
type Base struct {
	PfName string
	Bits   uint64
}

// Name implements Prefetcher.
func (b *Base) Name() string { return b.PfName }

// StorageBits implements Prefetcher.
func (b *Base) StorageBits() uint64 { return b.Bits }

// OnAccess implements Prefetcher as a no-op.
func (b *Base) OnAccess(cache.AccessEvent) {}

// OnFill implements Prefetcher as a no-op.
func (b *Base) OnFill(cache.FillEvent) {}

// OnEvict implements Prefetcher as a no-op.
func (b *Base) OnEvict(cache.EvictEvent) {}

// OnBranch implements Prefetcher as a no-op.
func (b *Base) OnBranch(BranchEvent) {}

// OnPrefetchFeedback implements FeedbackSink as a no-op.
func (b *Base) OnPrefetchFeedback(Feedback) {}

// None is the no-prefetching baseline configuration.
type None struct{ Base }

// NewNone returns the baseline (no prefetcher).
func NewNone(Issuer) Prefetcher { return &None{Base{PfName: "no"}} }

func init() {
	Register("no", NewNone)
}
