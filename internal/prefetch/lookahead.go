package prefetch

import (
	"fmt"

	"entangling/internal/cache"
)

// Lookahead is the fixed look-ahead-distance correlation prefetcher
// used for the motivation study (Figures 1 and 2): a Markov-style
// table maps each discontinuity (basic-block head, in the paper's
// sense: the first non-consecutive line of a fetch run) to the head
// observed d discontinuities later. On an access to a learned head it
// prefetches the recorded future head. Accuracy degrades as d grows —
// the paper's Figure 2 — because the d-ahead path becomes less
// deterministic.
type Lookahead struct {
	Base
	issuer Issuer

	// Distance is the look-ahead distance in discontinuities.
	Distance int

	table map[uint64]uint64
	// ring holds the last Distance heads.
	ring []uint64
	pos  int
	full bool

	prevLine uint64
	haveLine bool

	maxEntries int
}

// NewLookahead builds a look-ahead prefetcher with the given distance.
func NewLookahead(issuer Issuer, distance int) *Lookahead {
	if distance < 1 {
		distance = 1
	}
	const entries = 8192
	return &Lookahead{
		Base: Base{
			PfName: fmt.Sprintf("lookahead-%d", distance),
			// entries x (source line tag + target line addr).
			Bits: entries * (58 + 58),
		},
		issuer:     issuer,
		Distance:   distance,
		table:      make(map[uint64]uint64, entries),
		ring:       make([]uint64, distance),
		maxEntries: entries,
	}
}

// OnAccess implements Prefetcher.
func (p *Lookahead) OnAccess(ev cache.AccessEvent) {
	isHead := !p.haveLine || (ev.LineAddr != p.prevLine && ev.LineAddr != p.prevLine+1)
	p.prevLine, p.haveLine = ev.LineAddr, true
	if !isHead {
		return
	}

	// Train: the head Distance discontinuities ago now knows its
	// d-ahead successor.
	if p.full {
		src := p.ring[p.pos]
		if _, exists := p.table[src]; !exists && len(p.table) >= p.maxEntries {
			// Capacity model: drop new correlations when full.
		} else {
			p.table[src] = ev.LineAddr
		}
	}
	p.ring[p.pos] = ev.LineAddr
	p.pos = (p.pos + 1) % len(p.ring)
	if p.pos == 0 {
		p.full = true
	}

	// Predict: prefetch the learned d-ahead head and its follower.
	if dst, ok := p.table[ev.LineAddr]; ok {
		p.issuer.Prefetch(ev.Cycle, dst, 0)
		p.issuer.Prefetch(ev.Cycle, dst+1, 0)
	}
}

func init() {
	for _, d := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		d := d
		Register(fmt.Sprintf("lookahead-%d", d), func(is Issuer) Prefetcher {
			return NewLookahead(is, d)
		})
	}
}
