package prefetch

import "entangling/internal/cache"

// FNLMMA (Seznec [44], §IV-B) combines the Footprint Next Line
// prefetcher — an enhanced next-line that first estimates whether a
// line is *worth* prefetching — with the Multiple Miss Ahead
// prefetcher, which predicts the Nth next L1I miss from the current
// one and prefetches it (plus its worthiness-filtered neighbours),
// covering the distances next-line cannot.
//
// Configuration as evaluated: 8K-entry miss table, 97KB total.
type FNLMMA struct {
	Base
	issuer Issuer

	// worth holds 2-bit worthiness counters indexed by hashed line.
	worth []uint8

	// missTable maps a miss line to the miss observed Distance misses
	// later.
	missSets, missWays int
	missTable          []fnlEntry
	tick               uint64

	// ring holds the last Distance miss lines.
	ring []uint64
	pos  int
	full bool

	// Distance is the MMA look-ahead in misses.
	Distance int

	prevLine uint64
	haveLine bool
}

type fnlEntry struct {
	tag   uint64
	next  uint64
	valid bool
	lru   uint64
}

// fnlWorthBits sizes the worthiness table (16K 2-bit counters).
const fnlWorthBits = 14

// NewFNLMMA returns the paper's FNL+MMA configuration (97KB).
func NewFNLMMA(issuer Issuer) *FNLMMA {
	const entriesN = 8192
	ways := 4
	return &FNLMMA{
		Base:      Base{PfName: "fnl+mma", Bits: uint64(97 * 1024 * 8)},
		issuer:    issuer,
		worth:     make([]uint8, 1<<fnlWorthBits),
		missSets:  entriesN / ways,
		missWays:  ways,
		missTable: make([]fnlEntry, entriesN),
		ring:      make([]uint64, 4),
		Distance:  4,
	}
}

func worthIndex(line uint64) uint64 {
	h := line * 0x9E3779B97F4A7C15
	return h >> (64 - fnlWorthBits)
}

func (p *FNLMMA) missSet(line uint64) []fnlEntry {
	h := line ^ line>>11
	s := int(h % uint64(p.missSets))
	return p.missTable[s*p.missWays : (s+1)*p.missWays]
}

func (p *FNLMMA) missLookup(line uint64) *fnlEntry {
	set := p.missSet(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			p.tick++
			set[i].lru = p.tick
			return &set[i]
		}
	}
	return nil
}

func (p *FNLMMA) missInsert(line, next uint64) {
	if e := p.missLookup(line); e != nil {
		e.next = next
		return
	}
	set := p.missSet(line)
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	p.tick++
	*victim = fnlEntry{tag: line, next: next, valid: true, lru: p.tick}
}

// OnAccess implements Prefetcher.
func (p *FNLMMA) OnAccess(ev cache.AccessEvent) {
	line := ev.LineAddr

	// FNL training: a line following its predecessor sequentially is
	// worth prefetching.
	if p.haveLine && line > p.prevLine && line-p.prevLine <= 2 {
		if c := &p.worth[worthIndex(line)]; *c < 3 {
			*c++
		}
	}
	p.prevLine, p.haveLine = line, true

	// FNL prefetch: next lines that look worthwhile.
	for i := uint64(1); i <= 3; i++ {
		if p.worth[worthIndex(line+i)] >= 2 {
			p.issuer.Prefetch(ev.Cycle, line+i, 0)
		}
	}

	if ev.Hit {
		return
	}

	// MMA: train the miss Distance back with this miss, then predict
	// forward from the current miss.
	if p.full {
		p.missInsert(p.ring[p.pos], line)
	}
	p.ring[p.pos] = line
	p.pos = (p.pos + 1) % p.Distance
	if p.pos == 0 {
		p.full = true
	}

	// Chase up to two hops of miss-ahead predictions, each with its
	// worthiness-filtered follower.
	t := line
	for hop := 0; hop < 2; hop++ {
		e := p.missLookup(t)
		if e == nil {
			break
		}
		p.issuer.Prefetch(ev.Cycle, e.next, 0)
		if p.worth[worthIndex(e.next+1)] >= 2 {
			p.issuer.Prefetch(ev.Cycle, e.next+1, 0)
		}
		t = e.next
	}
}

// OnEvict implements Prefetcher: unused prefetches unlearn worthiness.
func (p *FNLMMA) OnEvict(ev cache.EvictEvent) {
	if ev.Prefetched && !ev.Accessed {
		if c := &p.worth[worthIndex(ev.LineAddr)]; *c > 0 {
			*c--
		}
	}
}

func init() {
	Register("fnl+mma", func(is Issuer) Prefetcher { return NewFNLMMA(is) })
}
