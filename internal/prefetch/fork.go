package prefetch

// This file defines the Forkable interface used by warmup-snapshot
// forking (cpu.Machine.Fork): a forkable prefetcher can produce an
// independent deep copy of its warmed state, rebound to the forked
// machine's prefetch issuer. Every shipped prefetcher implements it;
// an external prefetcher that does not simply keeps its configurations
// on the sequential warmup path (the harness falls back cell by cell).
//
// The contract: Fork returns a prefetcher that, fed the same event
// stream as the original from the fork point on, issues exactly the
// same prefetches — and the two never share mutable storage, so they
// can run concurrently on different goroutines. Purely transient
// scratch state that is fully rebuilt before its next use (MANA's walk
// dedupe slice, D-JOLT's per-trigger burst map) may be dropped by the
// copy; everything that carries history across events must be deep.

// Forkable is implemented by prefetchers that support warmup-snapshot
// forking.
type Forkable interface {
	// Fork returns an independent deep copy issuing into issuer.
	Fork(issuer Issuer) Prefetcher
}

// Fork implements Forkable. None carries no state.
func (p *None) Fork(Issuer) Prefetcher {
	f := *p
	return &f
}

// Fork implements Forkable.
func (p *NextLine) Fork(issuer Issuer) Prefetcher {
	f := *p
	f.issuer = issuer
	return &f
}

// Fork implements Forkable.
func (p *SN4L) Fork(issuer Issuer) Prefetcher {
	f := *p
	f.issuer = issuer
	f.bits = append([]uint64(nil), p.bits...)
	return &f
}

// Fork implements Forkable. walk is within-call scratch (reset to
// empty at every region boundary before use), so the copy starts nil.
func (p *MANA) Fork(issuer Issuer) Prefetcher {
	f := *p
	f.issuer = issuer
	f.entries = append([]manaEntry(nil), p.entries...)
	f.walk = nil
	return &f
}

// Fork implements Forkable.
func (p *RDIP) Fork(issuer Issuer) Prefetcher {
	f := *p
	f.issuer = issuer
	f.entries = append([]rdipEntry(nil), p.entries...)
	f.ras = append([]uint64(nil), p.ras...)
	return &f
}

// clone returns an independent copy of a signature table.
func (t *sigTable) clone() *sigTable {
	c := *t
	c.entries = append([]rdipEntry(nil), t.entries...)
	return &c
}

// Fork implements Forkable. burst is within-call scratch (cleared at
// every trigger before use, nil-tolerated), so the copy starts nil.
func (p *DJolt) Fork(issuer Issuer) Prefetcher {
	f := *p
	f.issuer = issuer
	f.short = p.short.clone()
	f.long = p.long.clone()
	f.callHist = append([]uint64(nil), p.callHist...)
	f.burst = nil
	return &f
}

// Fork implements Forkable.
func (p *FNLMMA) Fork(issuer Issuer) Prefetcher {
	f := *p
	f.issuer = issuer
	f.worth = append([]uint8(nil), p.worth...)
	f.missTable = append([]fnlEntry(nil), p.missTable...)
	f.ring = append([]uint64(nil), p.ring...)
	return &f
}

// Fork implements Forkable.
func (p *Lookahead) Fork(issuer Issuer) Prefetcher {
	f := *p
	f.issuer = issuer
	f.table = make(map[uint64]uint64, len(p.table))
	for k, v := range p.table {
		f.table[k] = v
	}
	f.ring = append([]uint64(nil), p.ring...)
	return &f
}
