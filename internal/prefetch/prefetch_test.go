package prefetch

import (
	"testing"

	"entangling/internal/cache"
	"entangling/internal/trace"
)

// recorder implements Issuer.
type recorder struct {
	reqs []uint64
}

func (r *recorder) Prefetch(notBefore uint64, line uint64, meta uint64) bool {
	r.reqs = append(r.reqs, line)
	return true
}

func (r *recorder) has(line uint64) bool {
	for _, l := range r.reqs {
		if l == line {
			return true
		}
	}
	return false
}

func demandAccess(line uint64, hit bool) cache.AccessEvent {
	return cache.AccessEvent{Cycle: 0, LineAddr: line, Hit: hit}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"no", "nextline", "sn4l", "mana-2k", "mana-4k", "mana-8k",
		"rdip", "djolt", "fnl+mma", "lookahead-1", "lookahead-10"}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("registry missing %q (have %v)", w, names)
		}
	}
	if _, err := New("bogus", &recorder{}); err == nil {
		t.Error("unknown name accepted")
	}
	pf, err := New("nextline", &recorder{})
	if err != nil || pf.Name() != "nextline" {
		t.Errorf("New(nextline) = %v, %v", pf, err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Register("nextline", NewNextLine)
}

func TestNonePrefetcher(t *testing.T) {
	r := &recorder{}
	p := NewNone(r)
	p.OnAccess(demandAccess(1, false))
	p.OnFill(cache.FillEvent{})
	p.OnEvict(cache.EvictEvent{})
	p.OnBranch(BranchEvent{})
	if len(r.reqs) != 0 {
		t.Error("None issued prefetches")
	}
	if p.Name() != "no" || p.StorageBits() != 0 {
		t.Errorf("None identity wrong: %s %d", p.Name(), p.StorageBits())
	}
}

func TestNextLine(t *testing.T) {
	r := &recorder{}
	p := NewNextLine(r)
	p.OnAccess(demandAccess(100, true))
	if len(r.reqs) != 1 || r.reqs[0] != 101 {
		t.Errorf("reqs = %v, want [101]", r.reqs)
	}
	if p.StorageBits() != 0 {
		t.Error("NextLine should cost no storage")
	}
}

func TestSN4LLearnsSequentialRuns(t *testing.T) {
	r := &recorder{}
	p := NewSN4L(r)
	// First pass: sequential run teaches worthiness.
	for l := uint64(100); l < 110; l++ {
		p.OnAccess(demandAccess(l, false))
	}
	// Second pass: accesses should prefetch learned successors.
	r.reqs = nil
	p.OnAccess(demandAccess(100, true))
	found := false
	for _, l := range r.reqs {
		if l > 100 && l <= 104 {
			found = true
		}
	}
	if !found {
		t.Errorf("SN4L did not prefetch learned next lines: %v", r.reqs)
	}
	// Wrong prefetch unlearns.
	p.OnEvict(cache.EvictEvent{LineAddr: 101, Prefetched: true, Accessed: false})
	r.reqs = nil
	p.OnAccess(demandAccess(100, true))
	if r.has(101) {
		t.Error("unlearned line still prefetched")
	}
	if p.StorageBits() == 0 {
		t.Error("SN4L storage unset")
	}
}

func TestLookaheadLearnsDAheadHead(t *testing.T) {
	r := &recorder{}
	p := NewLookahead(r, 2)
	// Discontinuity stream: heads 100, 200, 300, repeating.
	seq := []uint64{100, 200, 300}
	for rep := 0; rep < 3; rep++ {
		for _, h := range seq {
			p.OnAccess(demandAccess(h, true))
		}
	}
	// Accessing 100 should prefetch the head 2 discontinuities later (300).
	r.reqs = nil
	p.OnAccess(demandAccess(100, true))
	if !r.has(300) {
		t.Errorf("lookahead-2 did not prefetch 300: %v", r.reqs)
	}
	if p.Name() != "lookahead-2" {
		t.Errorf("Name = %q", p.Name())
	}
	// Sequential (non-head) accesses neither train nor trigger.
	n := len(r.reqs)
	p.OnAccess(demandAccess(101, true))
	if len(r.reqs) != n {
		t.Error("sequential access triggered lookahead prefetch")
	}
}

func TestLookaheadDistanceClamped(t *testing.T) {
	p := NewLookahead(&recorder{}, 0)
	if p.Distance != 1 {
		t.Errorf("Distance = %d, want 1", p.Distance)
	}
}

func TestMANARegionChaining(t *testing.T) {
	r := &recorder{}
	p := NewMANA(r, "mana-test", 1024, 9, 4)
	// Two passes over: region A (100..102), region B (500..501), region C (900).
	walk := func() {
		for _, l := range []uint64{100, 101, 102, 500, 501, 900} {
			p.OnAccess(demandAccess(l, false))
		}
	}
	walk()
	r.reqs = nil
	walk()
	// On the second pass, reaching region A should prefetch its
	// footprint (101, 102) and chase the chain to B (500) and C (900).
	if !r.has(101) || !r.has(102) {
		t.Errorf("MANA footprint not prefetched: %v", r.reqs)
	}
	if !r.has(500) {
		t.Errorf("MANA successor region not prefetched: %v", r.reqs)
	}
	if !r.has(900) {
		t.Errorf("MANA chain depth 2 not prefetched: %v", r.reqs)
	}
}

func TestRDIPContextPrefetch(t *testing.T) {
	r := &recorder{}
	p := NewRDIP(r)
	call := BranchEvent{PC: 0x1000, Type: trace.DirectCall, Taken: true, Target: 0x8000}
	ret := BranchEvent{PC: 0x8010, Type: trace.Return, Taken: true, Target: 0x1004}

	// Under the called context, misses at 700 and 702 occur.
	p.OnBranch(call)
	p.OnAccess(demandAccess(700, false))
	p.OnAccess(demandAccess(702, false))
	p.OnBranch(ret)

	// Re-entering the same context must prefetch the recorded misses.
	r.reqs = nil
	p.OnBranch(call)
	if !r.has(700) {
		t.Errorf("RDIP did not prefetch recorded miss 700: %v", r.reqs)
	}
	if !r.has(702) {
		t.Errorf("RDIP footprint line 702 missing: %v", r.reqs)
	}
}

func TestRDIPNonCallBranchIgnored(t *testing.T) {
	r := &recorder{}
	p := NewRDIP(r)
	p.OnBranch(BranchEvent{PC: 1, Type: trace.CondBranch, Taken: true, Target: 2})
	if len(r.reqs) != 0 {
		t.Error("conditional branch triggered RDIP")
	}
}

func TestDJoltDualRange(t *testing.T) {
	r := &recorder{}
	p := NewDJolt(r)
	calls := []BranchEvent{
		{PC: 0x1000, Type: trace.DirectCall, Taken: true, Target: 0x8000},
		{PC: 0x8004, Type: trace.DirectCall, Taken: true, Target: 0x9000},
	}
	// Build context and record misses.
	for _, c := range calls {
		p.OnBranch(c)
	}
	p.OnAccess(demandAccess(777, false))
	// Rebuild the same context from scratch.
	p2 := r
	_ = p2
	r.reqs = nil
	for _, c := range calls {
		p.OnBranch(c)
	}
	if !r.has(777) {
		t.Errorf("D-JOLT did not prefetch context miss: %v", r.reqs)
	}
}

func TestFNLMMA(t *testing.T) {
	r := &recorder{}
	p := NewFNLMMA(r)
	// Teach worthiness with two sequential runs (2-bit counters need
	// two observations to reach the threshold).
	for rep := 0; rep < 2; rep++ {
		p.prevLine, p.haveLine = 0, false
		for l := uint64(100); l < 106; l++ {
			p.OnAccess(demandAccess(l, true))
		}
	}
	r.reqs = nil
	p.OnAccess(demandAccess(100, true))
	if !r.has(101) {
		t.Errorf("FNL did not prefetch worthy next line: %v", r.reqs)
	}
	// Cold lines are not worth prefetching.
	r.reqs = nil
	p.OnAccess(demandAccess(5000, true))
	if r.has(5001) {
		t.Error("FNL prefetched unworthy line")
	}

	// MMA: recurring miss sequence m1..m6 teaches distance-4 pairs.
	misses := []uint64{1000, 2000, 3000, 4000, 5000, 6000}
	for rep := 0; rep < 2; rep++ {
		for _, m := range misses {
			p.OnAccess(demandAccess(m, false))
		}
	}
	r.reqs = nil
	p.OnAccess(demandAccess(1000, false))
	if !r.has(5000) {
		t.Errorf("MMA did not prefetch 4-ahead miss: %v", r.reqs)
	}
	// Worth decay on wrong prefetch.
	p.OnEvict(cache.EvictEvent{LineAddr: 101, Prefetched: true, Accessed: false})
}

func TestStorageBudgetsMatchPaper(t *testing.T) {
	r := &recorder{}
	cases := []struct {
		p  Prefetcher
		kb float64
	}{
		{NewSN4L(r), 2.06},
		{NewMANA(r, "mana-2k", 2048, 9, 4), 9},
		{NewMANA(r, "mana-4k", 4096, 17.25, 4), 17.25},
		{NewRDIP(r), 63},
		{NewDJolt(r), 125},
		{NewFNLMMA(r), 97},
	}
	for _, c := range cases {
		got := float64(c.p.StorageBits()) / 8 / 1024
		if got < c.kb*0.95 || got > c.kb*1.05 {
			t.Errorf("%s: %.2fKB, want %.2fKB", c.p.Name(), got, c.kb)
		}
	}
}
