package prefetch

import (
	"fmt"
	"testing"

	"entangling/internal/cache"
	"entangling/internal/trace"
)

// maxBurstDegree bounds how many prefetches one hook invocation may
// emit. Real front-ends issue a handful of lines per trigger; anything
// beyond this is a runaway loop, not a degree choice.
const maxBurstDegree = 128

// burstRecorder is an Issuer that groups requests into per-hook-call
// bursts so conformance invariants can be checked per trigger.
type burstRecorder struct {
	bursts [][]uint64
	cur    []uint64
	all    []uint64
}

func (r *burstRecorder) Prefetch(notBefore uint64, line uint64, meta uint64) bool {
	r.cur = append(r.cur, line)
	r.all = append(r.all, line)
	return true
}

// mark closes the current burst (called after every hook invocation).
func (r *burstRecorder) mark() {
	if len(r.cur) > 0 {
		r.bursts = append(r.bursts, r.cur)
		r.cur = nil
	}
}

// conformanceStream drives p through a deterministic synthetic
// instruction stream: sequential runs, a hot call/return pair, and a
// periodic far discontinuity — enough structure for every baseline
// (next-line, SN4L, Markov, record-replay, RAS-based) to train and
// issue. Fill and evict events echo the issued prefetches back, and
// every hook call is followed by a burst mark. Returns the highest
// line the stream itself touched.
func conformanceStream(p Prefetcher, r *burstRecorder) uint64 {
	const base = uint64(1) << 20
	maxLine := uint64(0)
	touch := func(cycle, line uint64, hit bool) {
		if line > maxLine {
			maxLine = line
		}
		p.OnAccess(cache.AccessEvent{Cycle: cycle, LineAddr: line, Hit: hit})
		r.mark()
		if !hit {
			p.OnFill(cache.FillEvent{Cycle: cycle + 30, LineAddr: line, IssueCycle: cycle, Demanded: true})
			r.mark()
		}
	}
	branch := func(cycle, pc uint64, ty trace.BranchType, target uint64) {
		p.OnBranch(BranchEvent{Cycle: cycle, PC: pc, Type: ty, Taken: true, Target: target})
		r.mark()
	}

	cycle := uint64(0)
	// Two identical passes so history-based prefetchers see repetition.
	for pass := 0; pass < 2; pass++ {
		for blk := uint64(0); blk < 8; blk++ {
			runStart := base + blk*64
			// A sequential run of 6 lines, all missing on pass 0.
			for i := uint64(0); i < 6; i++ {
				cycle += 4
				touch(cycle, runStart+i, pass > 0)
			}
			// Call into a shared callee region and return.
			callee := base + 4096
			branch(cycle, (runStart+5)<<6, trace.DirectCall, callee<<6)
			for i := uint64(0); i < 3; i++ {
				cycle += 4
				touch(cycle, callee+i, pass > 0)
			}
			branch(cycle, (callee+2)<<6, trace.Return, (runStart+5)<<6)
			// Far discontinuity to the next block.
			branch(cycle, (runStart+5)<<6, trace.DirectJump, (runStart+64)<<6)
		}
	}
	// Evict a few lines so eviction-driven bookkeeping runs too.
	for i := uint64(0); i < 4; i++ {
		p.OnEvict(cache.EvictEvent{Cycle: cycle + i, LineAddr: base + i, Prefetched: true, Accessed: true})
		r.mark()
	}
	return maxLine
}

func TestPrefetcherConformance(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := &burstRecorder{}
			p, err := New(name, r)
			if err != nil {
				t.Fatal(err)
			}
			if p.Name() == "" {
				t.Error("empty Name()")
			}
			maxLine := conformanceStream(p, r)
			r.mark()

			if name == "no" {
				if len(r.all) != 0 {
					t.Fatalf("the null prefetcher issued %d prefetches", len(r.all))
				}
				return
			}

			for bi, burst := range r.bursts {
				if len(burst) > maxBurstDegree {
					t.Fatalf("burst %d issued %d prefetches (> %d): unbounded degree",
						bi, len(burst), maxBurstDegree)
				}
				seen := map[uint64]bool{}
				for _, line := range burst {
					if seen[line] {
						t.Errorf("burst %d issued duplicate line %#x", bi, line)
					}
					seen[line] = true
				}
			}
			// Issued lines must be derived from the observed stream:
			// nothing below the address base, nothing beyond the highest
			// touched line plus a small next-N slack.
			const slack = 64
			lo, hi := uint64(1)<<20, maxLine+slack
			for _, line := range r.all {
				if line < lo || line > hi {
					t.Errorf("prefetched line %#x outside plausible window [%#x, %#x]", line, lo, hi)
				}
			}
			if p.StorageBits() > 8*1024*1024*8 {
				t.Errorf("StorageBits %d implausibly large (>8MB)", p.StorageBits())
			}
		})
	}
}

// TestPrefetcherConformanceDeterministic: two fresh instances fed the
// identical stream must issue the identical request sequence.
func TestPrefetcherConformanceDeterministic(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			seq := func() []uint64 {
				r := &burstRecorder{}
				p, err := New(name, r)
				if err != nil {
					t.Fatal(err)
				}
				conformanceStream(p, r)
				return r.all
			}
			a, b := seq(), seq()
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("nondeterministic issue sequence:\n a=%v\n b=%v", a, b)
			}
		})
	}
}

// TestPrefetcherIssuesOnTrainedStream: every non-null baseline must
// actually prefetch something on a stream this regular — a prefetcher
// that never fires would silently degrade every comparison figure.
func TestPrefetcherIssuesOnTrainedStream(t *testing.T) {
	for _, name := range Names() {
		if name == "no" {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			r := &burstRecorder{}
			p, err := New(name, r)
			if err != nil {
				t.Fatal(err)
			}
			conformanceStream(p, r)
			if len(r.all) == 0 {
				t.Fatalf("%s issued no prefetches on a repetitive sequential stream", name)
			}
		})
	}
}
