package prefetch

import (
	"entangling/internal/cache"
	"entangling/internal/trace"
)

// RDIP (Kolli et al. [29], §IV-B) is the return-address-stack-directed
// instruction prefetcher: the RAS content is hashed into a signature
// that captures the call context; a miss table maps each signature to
// the L1I misses observed under it (up to 3 trigger lines, each with
// an 8-bit footprint of neighbouring lines). Every call and return
// recomputes the signature and prefetches that context's misses.
//
// Configuration as evaluated in the paper: a 4K-entry miss table with
// 3 triggers and 8-bit footprints, 63KB total.
type RDIP struct {
	Base
	issuer Issuer

	sets, ways int
	entries    []rdipEntry
	tick       uint64

	// ras is the prefetcher's own shadow return-address stack.
	ras []uint64
	sig uint64
}

type rdipEntry struct {
	sig      uint64
	valid    bool
	lru      uint64
	triggers [6]rdipTrigger
	n        int
}

type rdipTrigger struct {
	line      uint64
	footprint uint8
}

// rdipSigDepth is how many RAS entries form the signature.
const rdipSigDepth = 2

// NewRDIP returns the paper's RDIP configuration (4K entries, 63KB).
func NewRDIP(issuer Issuer) *RDIP {
	const entriesN = 4096
	ways := 4
	return &RDIP{
		Base:    Base{PfName: "rdip", Bits: uint64(63 * 1024 * 8)},
		issuer:  issuer,
		sets:    entriesN / ways,
		ways:    ways,
		entries: make([]rdipEntry, entriesN),
	}
}

func (p *RDIP) computeSig() uint64 {
	var sig uint64
	n := len(p.ras)
	for i := 0; i < rdipSigDepth && i < n; i++ {
		v := p.ras[n-1-i]
		sig ^= v << (uint(i) * 7)
	}
	sig *= 0x9E3779B97F4A7C15
	return sig
}

func (p *RDIP) set(sig uint64) []rdipEntry {
	s := int(sig>>32) % p.sets
	if s < 0 {
		s = -s
	}
	return p.entries[s*p.ways : (s+1)*p.ways]
}

func (p *RDIP) lookup(sig uint64) *rdipEntry {
	set := p.set(sig)
	for i := range set {
		if set[i].valid && set[i].sig == sig {
			p.tick++
			set[i].lru = p.tick
			return &set[i]
		}
	}
	return nil
}

func (p *RDIP) ensure(sig uint64) *rdipEntry {
	if e := p.lookup(sig); e != nil {
		return e
	}
	set := p.set(sig)
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	p.tick++
	*victim = rdipEntry{sig: sig, valid: true, lru: p.tick}
	return victim
}

// OnBranch implements Prefetcher: calls and returns move the signature
// and trigger the context's prefetches.
func (p *RDIP) OnBranch(ev BranchEvent) {
	switch {
	case ev.Type.IsCall() && ev.Taken:
		if len(p.ras) < 64 {
			p.ras = append(p.ras, ev.PC+4)
		}
	case ev.Type == trace.Return:
		if len(p.ras) > 0 {
			p.ras = p.ras[:len(p.ras)-1]
		}
	default:
		return
	}
	p.sig = p.computeSig()
	if e := p.lookup(p.sig); e != nil {
		for i := 0; i < e.n; i++ {
			tr := e.triggers[i]
			p.issuer.Prefetch(ev.Cycle, tr.line, 0)
			for b := uint64(0); b < 8; b++ {
				if tr.footprint&(1<<b) != 0 {
					p.issuer.Prefetch(ev.Cycle, tr.line+b+1, 0)
				}
			}
		}
	}
}

// OnAccess implements Prefetcher: misses train the current signature's
// entry.
func (p *RDIP) OnAccess(ev cache.AccessEvent) {
	if ev.Hit {
		return
	}
	e := p.ensure(p.sig)
	// Fold the miss into an existing trigger's footprint if adjacent.
	for i := 0; i < e.n; i++ {
		tr := &e.triggers[i]
		if ev.LineAddr > tr.line && ev.LineAddr-tr.line <= 8 {
			tr.footprint |= 1 << (ev.LineAddr - tr.line - 1)
			return
		}
		if tr.line == ev.LineAddr {
			return
		}
	}
	if e.n < len(e.triggers) {
		e.triggers[e.n] = rdipTrigger{line: ev.LineAddr}
		e.n++
		return
	}
	// Replace round-robin (the paper's entries hold the most recent
	// context misses).
	copy(e.triggers[:], e.triggers[1:])
	e.triggers[len(e.triggers)-1] = rdipTrigger{line: ev.LineAddr}
}

func init() {
	Register("rdip", func(is Issuer) Prefetcher { return NewRDIP(is) })
}
