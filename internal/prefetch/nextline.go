package prefetch

import "entangling/internal/cache"

// NextLine is the pure next-line prefetcher of the evaluation (§IV-B,
// after Baer [8]): on every demand access it prefetches the following
// cache line. It adds no storage.
type NextLine struct {
	Base
	issuer Issuer
	// Degree is how many sequential lines to prefetch (1 in the paper's
	// NextLine baseline).
	Degree int
}

// NewNextLine returns the paper's NextLine configuration.
func NewNextLine(issuer Issuer) Prefetcher {
	return &NextLine{Base: Base{PfName: "nextline"}, issuer: issuer, Degree: 1}
}

// OnAccess implements Prefetcher.
func (p *NextLine) OnAccess(ev cache.AccessEvent) {
	for i := 1; i <= p.Degree; i++ {
		p.issuer.Prefetch(ev.Cycle, ev.LineAddr+uint64(i), 0)
	}
}

func init() {
	Register("nextline", NewNextLine)
}
