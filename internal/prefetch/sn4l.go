package prefetch

import "entangling/internal/cache"

// SN4L is the memory-efficient "shifted N4L" component of Ansari et
// al.'s divide-and-conquer prefetcher (§IV-B, [6]): a 16K-bit vector,
// indexed by hashed line address, whose bit says whether the line is
// worth prefetching sequentially. On each access the next four lines
// are prefetched if their bits are set. The paper quotes 2.06KB of
// storage for the whole scheme.
type SN4L struct {
	Base
	issuer Issuer

	bits []uint64 // 16K bits = 256 words
	// recent is a tiny recency window of accessed lines used to learn
	// the "accessed sequentially after a predecessor" property.
	recent [8]uint64
	rpos   int
}

// sn4lBits is the vector size in bits.
const sn4lBits = 16 * 1024

// NewSN4L returns the SN4L configuration (2.06KB as in the paper).
func NewSN4L(issuer Issuer) Prefetcher {
	return &SN4L{
		Base:   Base{PfName: "sn4l", Bits: 2*8*1024 + 488}, // 2.06KB
		issuer: issuer,
		bits:   make([]uint64, sn4lBits/64),
	}
}

func sn4lIndex(lineAddr uint64) (word, bit uint64) {
	h := lineAddr * 0x9E3779B97F4A7C15 >> (64 - 14) // 14 bits -> 16K
	return h / 64, h % 64
}

func (p *SN4L) test(lineAddr uint64) bool {
	w, b := sn4lIndex(lineAddr)
	return p.bits[w]>>b&1 == 1
}

func (p *SN4L) set(lineAddr uint64) {
	w, b := sn4lIndex(lineAddr)
	p.bits[w] |= 1 << b
}

func (p *SN4L) clear(lineAddr uint64) {
	w, b := sn4lIndex(lineAddr)
	p.bits[w] &^= 1 << b
}

// OnAccess implements Prefetcher.
func (p *SN4L) OnAccess(ev cache.AccessEvent) {
	// Train: if this line follows one of the recent lines sequentially
	// (within distance 4), it is worth prefetching.
	for _, r := range p.recent {
		if r != 0 && ev.LineAddr > r && ev.LineAddr-r <= 4 {
			p.set(ev.LineAddr)
			break
		}
	}
	p.recent[p.rpos] = ev.LineAddr
	p.rpos = (p.rpos + 1) % len(p.recent)

	// Prefetch the next four worthy lines.
	for i := uint64(1); i <= 4; i++ {
		if p.test(ev.LineAddr + i) {
			p.issuer.Prefetch(ev.Cycle, ev.LineAddr+i, 0)
		}
	}
}

// OnEvict implements Prefetcher: an unused prefetch unlearns the line's
// worthiness bit.
func (p *SN4L) OnEvict(ev cache.EvictEvent) {
	if ev.Prefetched && !ev.Accessed {
		p.clear(ev.LineAddr)
	}
}

func init() {
	Register("sn4l", NewSN4L)
}
