package bpred

import (
	"math/rand"
	"testing"

	"entangling/internal/trace"
)

func condBranch(pc uint64, taken bool) *trace.Instruction {
	return &trace.Instruction{PC: pc, Size: 4, Branch: trace.CondBranch, Taken: taken, Target: pc + 64}
}

func TestAlwaysTakenBranchLearns(t *testing.T) {
	p := New(Config{})
	var miss int
	for i := 0; i < 1000; i++ {
		out := p.Process(condBranch(0x1000, true))
		if out.DirMispredict {
			miss++
		}
	}
	if miss > 5 {
		t.Errorf("always-taken branch mispredicted %d/1000 times", miss)
	}
	if acc := p.CondAccuracy(); acc < 0.99 {
		t.Errorf("accuracy %.3f", acc)
	}
}

func TestAlternatingBranchGshareLearns(t *testing.T) {
	// T,N,T,N... is perfectly predictable with global history.
	p := New(Config{})
	var missLate int
	for i := 0; i < 2000; i++ {
		out := p.Process(condBranch(0x2000, i%2 == 0))
		if i >= 1000 && out.DirMispredict {
			missLate++
		}
	}
	if missLate > 50 {
		t.Errorf("alternating branch mispredicted %d/1000 after warmup", missLate)
	}
}

func TestBTBMissThenHit(t *testing.T) {
	p := New(Config{})
	jmp := &trace.Instruction{PC: 0x3000, Size: 4, Branch: trace.DirectJump, Taken: true, Target: 0x9000}
	out := p.Process(jmp)
	if !out.BTBMiss {
		t.Error("first taken jump should be a BTB miss")
	}
	out = p.Process(jmp)
	if out.BTBMiss {
		t.Error("second taken jump should hit the BTB")
	}
	if out.PredTarget != 0x9000 {
		t.Errorf("PredTarget = %#x", out.PredTarget)
	}
}

func TestBTBStaleTargetRedirects(t *testing.T) {
	p := New(Config{})
	a := &trace.Instruction{PC: 0x3000, Size: 4, Branch: trace.DirectJump, Taken: true, Target: 0x9000}
	p.Process(a)
	p.Process(a)
	b := *a
	b.Target = 0xA000
	out := p.Process(&b)
	if !out.BTBMiss {
		t.Error("stale BTB target should cause a redirect")
	}
	out = p.Process(&b)
	if out.BTBMiss {
		t.Error("updated BTB entry should hit")
	}
}

func TestBTBEviction(t *testing.T) {
	p := New(Config{BTBSets: 2, BTBWays: 2})
	// Fill one set (pc>>2 % 2): pcs with the same parity of pc>>2.
	mk := func(pc uint64) *trace.Instruction {
		return &trace.Instruction{PC: pc, Size: 4, Branch: trace.DirectJump, Taken: true, Target: pc + 0x100}
	}
	p.Process(mk(0x1000)) // set 0
	p.Process(mk(0x2000)) // set 0
	p.Process(mk(0x3000)) // set 0 -> evicts LRU (0x1000)
	if out := p.Process(mk(0x2000)); out.BTBMiss {
		t.Error("recently used entry was evicted")
	}
	if out := p.Process(mk(0x1000)); !out.BTBMiss {
		t.Error("LRU entry should have been evicted")
	}
}

func TestRASCallReturn(t *testing.T) {
	p := New(Config{})
	call := &trace.Instruction{PC: 0x4000, Size: 4, Branch: trace.DirectCall, Taken: true, Target: 0x8000}
	p.Process(call)
	if p.RASDepth() != 1 {
		t.Fatalf("RAS depth = %d", p.RASDepth())
	}
	ret := &trace.Instruction{PC: 0x8010, Size: 4, Branch: trace.Return, Taken: true, Target: 0x4004}
	out := p.Process(ret)
	if out.TargetMispredict {
		t.Error("matched return mispredicted")
	}
	if out.PredTarget != 0x4004 {
		t.Errorf("RAS target = %#x, want 0x4004", out.PredTarget)
	}
}

func TestRASUnderflowMispredicts(t *testing.T) {
	p := New(Config{})
	ret := &trace.Instruction{PC: 0x8010, Size: 4, Branch: trace.Return, Taken: true, Target: 0x4004}
	out := p.Process(ret)
	if !out.TargetMispredict {
		t.Error("return with empty RAS should mispredict")
	}
}

func TestRASOverflowKeepsNewest(t *testing.T) {
	p := New(Config{RASSize: 4})
	for i := 0; i < 8; i++ {
		call := &trace.Instruction{PC: uint64(0x1000 + i*16), Size: 4, Branch: trace.DirectCall, Taken: true, Target: 0x9000}
		p.Process(call)
	}
	// The newest return address must still be correct.
	ret := &trace.Instruction{PC: 0x9000, Size: 4, Branch: trace.Return, Taken: true, Target: 0x1000 + 7*16 + 4}
	if out := p.Process(ret); out.TargetMispredict {
		t.Error("newest RAS entry lost on overflow")
	}
}

func TestIndirectTargetCacheLearns(t *testing.T) {
	p := New(Config{})
	ij := &trace.Instruction{PC: 0x5000, Size: 4, Branch: trace.IndirectJump, Taken: true, Target: 0x7000}
	out := p.Process(ij)
	if !out.TargetMispredict {
		t.Error("cold indirect jump should mispredict")
	}
	// The jump itself updates the path history, so the ITC index only
	// stabilizes once the 64-bit path hash saturates (~22 iterations of
	// the same jump). After that, every prediction must be correct.
	miss := 0
	for i := 0; i < 100; i++ {
		if p.Process(ij).TargetMispredict {
			miss++
		}
	}
	if miss > 30 {
		t.Errorf("indirect jump mispredicted %d/100 after cold start", miss)
	}
	if p.Process(ij).TargetMispredict {
		t.Error("indirect jump still mispredicting after path saturation")
	}
}

func TestNonBranchIsNoop(t *testing.T) {
	p := New(Config{})
	out := p.Process(&trace.Instruction{PC: 0x100, Size: 4})
	if out.Redirect() || out.PredTaken {
		t.Error("non-branch produced a prediction")
	}
	if p.Lookups != 0 {
		t.Error("non-branch counted as lookup")
	}
}

func TestOutcomeRedirect(t *testing.T) {
	if (Outcome{}).Redirect() {
		t.Error("empty outcome redirects")
	}
	for _, o := range []Outcome{{BTBMiss: true}, {DirMispredict: true}, {TargetMispredict: true}} {
		if !o.Redirect() {
			t.Errorf("%+v should redirect", o)
		}
	}
}

func TestRandomBranchAccuracyReasonable(t *testing.T) {
	// Branches with purely random 80%-taken outcomes have a prediction
	// ceiling of 80%; the tournament predictor should get close to it
	// (gshare aliasing costs a few points).
	p := New(Config{})
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50_000; i++ {
		pc := uint64(0x1000 + (rng.Intn(256) * 4))
		p.Process(condBranch(pc, rng.Float64() < 0.8))
	}
	if acc := p.CondAccuracy(); acc < 0.70 {
		t.Errorf("accuracy %.3f on biased random branches", acc)
	}
}

func TestDefaultsFilled(t *testing.T) {
	p := New(Config{})
	def := DefaultConfig()
	if p.cfg != def {
		t.Errorf("zero config not defaulted: %+v", p.cfg)
	}
}

func TestCondAccuracyEmpty(t *testing.T) {
	if New(Config{}).CondAccuracy() != 1 {
		t.Error("accuracy with no lookups should be 1")
	}
}
