package bpred

// Fork returns an independent deep copy of the predictor for
// warmup-snapshot reuse: counter tables, BTB, RAS, indirect target
// cache and all history/stat state are copied so the fork and the
// original train independently from the same warmed starting point.
func (p *Predictor) Fork() *Predictor {
	f := *p
	f.gshare = append([]uint8(nil), p.gshare...)
	f.bimodal = append([]uint8(nil), p.bimodal...)
	f.chooser = append([]uint8(nil), p.chooser...)
	f.btb = append([]btbEntry(nil), p.btb...)
	f.ras = append([]uint64(nil), p.ras...)
	f.itc = append([]uint64(nil), p.itc...)
	return &f
}
