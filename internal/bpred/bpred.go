// Package bpred implements the branch-prediction structures of the
// baseline front-end described in §IV-A of the paper: a tournament
// (gshare + bimodal) direction predictor, a set-associative branch
// target buffer, a return address stack, and an indirect target cache
// ("Target Cache" in the paper, after Chang et al. [9]).
//
// The CPU model uses these to decide, per branch, whether the decoupled
// front-end follows the correct path (the FTQ keeps running ahead) or
// must be redirected (a misprediction penalty whose size depends on the
// pipeline stage that detects it).
package bpred

import "entangling/internal/trace"

// Config sizes the predictor structures. The defaults model the
// paper's Sunny-Cove-like baseline.
type Config struct {
	// GshareBits is log2 of the gshare counter table size.
	GshareBits int
	// BimodalBits is log2 of the bimodal counter table size.
	BimodalBits int
	// ChooserBits is log2 of the chooser table size.
	ChooserBits int
	// HistoryBits is the global-history length used by gshare.
	HistoryBits int
	// BTBSets and BTBWays size the branch target buffer.
	BTBSets, BTBWays int
	// RASSize is the return-address-stack depth.
	RASSize int
	// ITCBits is log2 of the indirect target cache size.
	ITCBits int
}

// DefaultConfig returns the baseline predictor configuration.
func DefaultConfig() Config {
	return Config{
		GshareBits:  16,
		BimodalBits: 14,
		ChooserBits: 14,
		HistoryBits: 16,
		BTBSets:     1024,
		BTBWays:     8,
		RASSize:     64,
		ITCBits:     12,
	}
}

// Outcome reports how the front-end handled one branch.
type Outcome struct {
	// PredTaken is the predicted direction (always true for
	// unconditional branches that hit in the BTB/RAS/ITC).
	PredTaken bool
	// PredTarget is the predicted target (0 when none was available).
	PredTarget uint64
	// BTBMiss is set when a direct branch's target was not in the BTB,
	// so the front-end could not follow it even with a correct
	// direction prediction. Detected at decode.
	BTBMiss bool
	// DirMispredict is set when the conditional direction was wrong.
	// Detected at execute.
	DirMispredict bool
	// TargetMispredict is set when the predicted target of a taken
	// branch was wrong (indirects, RAS underflow). Detected at execute.
	TargetMispredict bool
}

// Redirect reports whether the front-end must be redirected at all.
func (o Outcome) Redirect() bool { return o.BTBMiss || o.DirMispredict || o.TargetMispredict }

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
	lru    uint64
}

// Predictor bundles all front-end prediction state.
type Predictor struct {
	cfg Config

	gshare  []uint8
	bimodal []uint8
	chooser []uint8
	ghr     uint64

	btb     []btbEntry // BTBSets * BTBWays
	btbTick uint64
	// Index masks derived from cfg at construction; btbSetMask is
	// BTBSets-1 when BTBSets is a power of two (0 selects the slow
	// modulo path).
	gshareMask, bimodalMask, chooserMask uint64
	histMask, itcMask, btbSetMask        uint64

	ras    []uint64
	rasTop int // number of valid entries (capped, wraps by overwrite)

	itc []uint64 // indirect target cache, direct mapped
	// path is a hashed branch-path history used to index the ITC.
	path uint64

	// Stats.
	Lookups          uint64
	CondLookups      uint64
	DirMispredicts   uint64
	BTBMisses        uint64
	TargetMispredict uint64
}

// New creates a predictor; zero-valued fields of cfg are filled from
// DefaultConfig.
func New(cfg Config) *Predictor {
	def := DefaultConfig()
	if cfg.GshareBits == 0 {
		cfg.GshareBits = def.GshareBits
	}
	if cfg.BimodalBits == 0 {
		cfg.BimodalBits = def.BimodalBits
	}
	if cfg.ChooserBits == 0 {
		cfg.ChooserBits = def.ChooserBits
	}
	if cfg.HistoryBits == 0 {
		cfg.HistoryBits = def.HistoryBits
	}
	if cfg.BTBSets == 0 {
		cfg.BTBSets = def.BTBSets
	}
	if cfg.BTBWays == 0 {
		cfg.BTBWays = def.BTBWays
	}
	if cfg.RASSize == 0 {
		cfg.RASSize = def.RASSize
	}
	if cfg.ITCBits == 0 {
		cfg.ITCBits = def.ITCBits
	}
	p := &Predictor{
		cfg:     cfg,
		gshare:  make([]uint8, 1<<cfg.GshareBits),
		bimodal: make([]uint8, 1<<cfg.BimodalBits),
		chooser: make([]uint8, 1<<cfg.ChooserBits),
		btb:     make([]btbEntry, cfg.BTBSets*cfg.BTBWays),
		ras:     make([]uint64, cfg.RASSize),
		itc:     make([]uint64, 1<<cfg.ITCBits),
	}
	p.gshareMask = uint64(1)<<cfg.GshareBits - 1
	p.bimodalMask = uint64(1)<<cfg.BimodalBits - 1
	p.chooserMask = uint64(1)<<cfg.ChooserBits - 1
	p.histMask = uint64(1)<<cfg.HistoryBits - 1
	p.itcMask = uint64(1)<<cfg.ITCBits - 1
	if cfg.BTBSets&(cfg.BTBSets-1) == 0 {
		p.btbSetMask = uint64(cfg.BTBSets - 1)
	}
	// Weakly initialize counters to "weakly taken/weakly use gshare".
	for i := range p.gshare {
		p.gshare[i] = 1
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1
	}
	for i := range p.chooser {
		p.chooser[i] = 2
	}
	return p
}

// Process predicts and immediately trains on one branch instruction,
// returning how the front-end fared. in must be a branch.
func (p *Predictor) Process(in *trace.Instruction) Outcome {
	if !in.Branch.IsBranch() {
		return Outcome{}
	}
	p.Lookups++
	var out Outcome

	// Direction.
	predTaken := true
	if in.Branch == trace.CondBranch {
		p.CondLookups++
		predTaken = p.predictDirection(in.PC)
		if predTaken != in.Taken {
			out.DirMispredict = true
			p.DirMispredicts++
		}
		p.trainDirection(in.PC, in.Taken)
	}
	out.PredTaken = predTaken

	// Target.
	switch {
	case in.Branch == trace.Return:
		target, ok := p.popRAS()
		out.PredTarget = target
		if in.Taken && (!ok || target != in.Target) {
			out.TargetMispredict = true
			p.TargetMispredict++
		}

	case in.Branch.IsIndirect():
		idx := p.itcIndex(in.PC)
		out.PredTarget = p.itc[idx]
		if in.Taken && out.PredTarget != in.Target {
			out.TargetMispredict = true
			p.TargetMispredict++
		}
		p.itc[idx] = in.Target

	default: // direct branches: BTB provides the target
		target, hit := p.btbLookup(in.PC)
		out.PredTarget = target
		if in.Taken && predTaken {
			if !hit {
				out.BTBMiss = true
				p.BTBMisses++
			} else if target != in.Target {
				// Stale BTB entry; treat as decode-time redirect too.
				out.BTBMiss = true
				p.BTBMisses++
			}
		}
		if in.Taken {
			p.btbInsert(in.PC, in.Target)
		}
	}

	if in.Branch.IsCall() && in.Taken {
		p.pushRAS(in.PC + uint64(in.Size))
	}

	// Path history for the ITC: hash in every taken branch.
	if in.Taken {
		p.path = (p.path << 3) ^ (in.Target >> 2)
	}
	return out
}

func (p *Predictor) predictDirection(pc uint64) bool {
	g := p.gshare[p.gshareIndex(pc)]
	b := p.bimodal[p.bimodalIndex(pc)]
	if p.chooser[p.chooserIndex(pc)] >= 2 {
		return g >= 2
	}
	return b >= 2
}

func (p *Predictor) trainDirection(pc uint64, taken bool) {
	gi, bi, ci := p.gshareIndex(pc), p.bimodalIndex(pc), p.chooserIndex(pc)
	gCorrect := (p.gshare[gi] >= 2) == taken
	bCorrect := (p.bimodal[bi] >= 2) == taken
	if gCorrect != bCorrect {
		if gCorrect {
			p.chooser[ci] = satInc(p.chooser[ci])
		} else {
			p.chooser[ci] = satDec(p.chooser[ci])
		}
	}
	if taken {
		p.gshare[gi] = satInc(p.gshare[gi])
		p.bimodal[bi] = satInc(p.bimodal[bi])
	} else {
		p.gshare[gi] = satDec(p.gshare[gi])
		p.bimodal[bi] = satDec(p.bimodal[bi])
	}
	p.ghr = (p.ghr << 1) | boolBit(taken)
}

func satInc(c uint8) uint8 {
	if c < 3 {
		return c + 1
	}
	return 3
}

func satDec(c uint8) uint8 {
	if c > 0 {
		return c - 1
	}
	return 0
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (p *Predictor) gshareIndex(pc uint64) uint64 {
	return ((pc >> 2) ^ (p.ghr & p.histMask)) & p.gshareMask
}

func (p *Predictor) bimodalIndex(pc uint64) uint64 {
	return (pc >> 2) & p.bimodalMask
}

func (p *Predictor) chooserIndex(pc uint64) uint64 {
	return (pc >> 2) & p.chooserMask
}

func (p *Predictor) itcIndex(pc uint64) uint64 {
	return ((pc >> 2) ^ p.path) & p.itcMask
}

// btbSet returns the BTB set index for pc.
func (p *Predictor) btbSet(pc uint64) uint64 {
	if p.btbSetMask != 0 || p.cfg.BTBSets == 1 {
		return (pc >> 2) & p.btbSetMask
	}
	return (pc >> 2) % uint64(p.cfg.BTBSets)
}

// btbLookup returns the stored target for pc, if present.
func (p *Predictor) btbLookup(pc uint64) (uint64, bool) {
	base := int(p.btbSet(pc)) * p.cfg.BTBWays
	for i := 0; i < p.cfg.BTBWays; i++ {
		e := &p.btb[base+i]
		if e.valid && e.tag == pc {
			p.btbTick++
			e.lru = p.btbTick
			return e.target, true
		}
	}
	return 0, false
}

// btbInsert records pc -> target, evicting LRU on conflict.
func (p *Predictor) btbInsert(pc, target uint64) {
	base := int(p.btbSet(pc)) * p.cfg.BTBWays
	victim := base
	for i := 0; i < p.cfg.BTBWays; i++ {
		e := &p.btb[base+i]
		if e.valid && e.tag == pc {
			e.target = target
			return
		}
		if !e.valid {
			victim = base + i
			break
		}
		if e.lru < p.btb[victim].lru {
			victim = base + i
		}
	}
	p.btbTick++
	p.btb[victim] = btbEntry{tag: pc, target: target, valid: true, lru: p.btbTick}
}

func (p *Predictor) pushRAS(ret uint64) {
	if p.rasTop < len(p.ras) {
		p.ras[p.rasTop] = ret
		p.rasTop++
		return
	}
	// Overflow: shift (model a circular stack losing the oldest entry).
	copy(p.ras, p.ras[1:])
	p.ras[len(p.ras)-1] = ret
}

func (p *Predictor) popRAS() (uint64, bool) {
	if p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop], true
}

// RASDepth returns the current RAS occupancy (for tests).
func (p *Predictor) RASDepth() int { return p.rasTop }

// CondAccuracy returns the direction-prediction accuracy so far.
func (p *Predictor) CondAccuracy() float64 {
	if p.CondLookups == 0 {
		return 1
	}
	return 1 - float64(p.DirMispredicts)/float64(p.CondLookups)
}
