package bpred

import (
	"testing"

	"entangling/internal/trace"
)

func TestLoopBranchNearPerfect(t *testing.T) {
	// A loop with a fixed trip count of 4: T,T,T,N repeating. The
	// gshare history learns the exit.
	p := New(Config{})
	var missLate int
	for i := 0; i < 4000; i++ {
		taken := i%4 != 3
		out := p.Process(condBranch(0x6000, taken))
		if i >= 2000 && out.DirMispredict {
			missLate++
		}
	}
	if missLate > 100 {
		t.Errorf("fixed-trip loop mispredicted %d/2000 after warmup", missLate)
	}
}

func TestCallPushesOnlyWhenTaken(t *testing.T) {
	p := New(Config{})
	// A not-taken... calls are unconditional in our ISA, but an
	// indirect call event may arrive with Taken=false from a
	// predicated-off site; the RAS must not be polluted.
	p.Process(&trace.Instruction{PC: 0x100, Size: 4, Branch: trace.IndirectCall, Taken: false})
	if p.RASDepth() != 0 {
		t.Errorf("untaken call pushed RAS: depth %d", p.RASDepth())
	}
}

func TestDeepCallChainRASAccuracy(t *testing.T) {
	// Nested calls then unwinding returns: every return must predict
	// correctly while within the RAS capacity.
	p := New(Config{RASSize: 32})
	var rets []trace.Instruction
	pc := uint64(0x1000)
	for d := 0; d < 16; d++ {
		call := trace.Instruction{PC: pc, Size: 4, Branch: trace.DirectCall, Taken: true, Target: pc + 0x100}
		p.Process(&call)
		rets = append(rets, trace.Instruction{
			PC: pc + 0x180, Size: 4, Branch: trace.Return, Taken: true, Target: pc + 4,
		})
		pc += 0x100
	}
	for i := len(rets) - 1; i >= 0; i-- {
		if out := p.Process(&rets[i]); out.TargetMispredict {
			t.Fatalf("return %d mispredicted", i)
		}
	}
}

func TestStatsCounting(t *testing.T) {
	p := New(Config{})
	p.Process(condBranch(0x10, true))
	p.Process(&trace.Instruction{PC: 0x20, Size: 4, Branch: trace.DirectJump, Taken: true, Target: 0x99})
	if p.Lookups != 2 || p.CondLookups != 1 {
		t.Errorf("lookups=%d cond=%d", p.Lookups, p.CondLookups)
	}
	if p.BTBMisses != 1 {
		t.Errorf("BTBMisses=%d", p.BTBMisses)
	}
}
