// Package energy reproduces the paper's cache-hierarchy energy model
// (§IV-A, Table IV): per-access energies for tag probes, reads and
// writes at each cache level, with constants in the range CACTI-P
// reports for a 22nm process, multiplied by the access counts the
// simulator measures. Only relative energy between prefetchers matters
// for Table IV, and that is fully determined by the counted accesses.
package energy

import "entangling/internal/cpu"

// PerAccess holds one level's energy constants: dynamic energy per
// operation in nanojoules plus leakage power in nanojoules per cycle.
// CACTI-P is specifically the leakage-aware CACTI variant, and at 22nm
// the large SRAM arrays are leakage-dominated — which is why the
// paper's Table IV shows L2/LLC energy *dropping* under an effective
// prefetcher: the run finishes sooner, so the arrays leak for fewer
// cycles, outweighing the extra prefetch traffic.
type PerAccess struct {
	TagProbe float64
	Read     float64
	Write    float64
	// LeakPerCycle is static energy per simulated cycle.
	LeakPerCycle float64
}

// Model is the per-level energy table.
type Model struct {
	L1I  PerAccess
	L1D  PerAccess
	L2   PerAccess
	LLC  PerAccess
	DRAM float64 // per access
}

// Default22nm returns constants sized like CACTI-P 22nm SRAM arrays:
// small L1 arrays cost a few pJ per access and leak little; the 512KB
// L2 and 2MB LLC cost tens of pJ per access and are leakage-dominated.
func Default22nm() Model {
	return Model{
		L1I:  PerAccess{TagProbe: 0.0015, Read: 0.006, Write: 0.008, LeakPerCycle: 0.00004},
		L1D:  PerAccess{TagProbe: 0.0018, Read: 0.008, Write: 0.010, LeakPerCycle: 0.00006},
		L2:   PerAccess{TagProbe: 0.004, Read: 0.028, Write: 0.034, LeakPerCycle: 0.0011},
		LLC:  PerAccess{TagProbe: 0.010, Read: 0.072, Write: 0.085, LeakPerCycle: 0.0042},
		DRAM: 1.2,
	}
}

// Breakdown is the Table IV row for one run.
type Breakdown struct {
	L1I, L1D, L2, LLC, DRAM float64
}

// Total returns the summed cache-hierarchy energy (the paper's
// normalized geomean excludes nothing, so DRAM is included in Total
// but reported separately).
func (b Breakdown) Total() float64 { return b.L1I + b.L1D + b.L2 + b.LLC }

// TotalWithDRAM adds the memory energy.
func (b Breakdown) TotalWithDRAM() float64 { return b.Total() + b.DRAM }

// Compute derives the energy breakdown of a run from its access
// counters.
func (m Model) Compute(r *cpu.Results) Breakdown {
	level := func(pa PerAccess, probes, reads, writes uint64) float64 {
		return pa.TagProbe*float64(probes) + pa.Read*float64(reads) +
			pa.Write*float64(writes) + pa.LeakPerCycle*float64(r.Cycles)
	}
	return Breakdown{
		L1I:  level(m.L1I, r.L1I.TagProbes, r.L1I.Reads, r.L1I.Writes),
		L1D:  level(m.L1D, r.L1D.TagProbes, r.L1D.Reads, r.L1D.Writes),
		L2:   level(m.L2, r.L2.TagProbes, r.L2.Reads, r.L2.Writes),
		LLC:  level(m.LLC, r.LLC.TagProbes, r.LLC.Reads, r.LLC.Writes),
		DRAM: m.DRAM * float64(r.DRAMReads),
	}
}
