package energy

import (
	"testing"

	"entangling/internal/cache"
	"entangling/internal/cpu"
)

func TestComputeBreakdown(t *testing.T) {
	m := Model{
		L1I:  PerAccess{TagProbe: 1, Read: 10, Write: 100},
		L1D:  PerAccess{TagProbe: 2, Read: 20, Write: 200},
		L2:   PerAccess{TagProbe: 3, Read: 30, Write: 300},
		LLC:  PerAccess{TagProbe: 4, Read: 40, Write: 400},
		DRAM: 1000,
	}
	r := cpu.Results{
		L1I:       cache.Stats{TagProbes: 1, Reads: 1, Writes: 1},
		L1D:       cache.Stats{TagProbes: 2, Reads: 2, Writes: 2},
		L2:        cache.Stats{TagProbes: 3, Reads: 3, Writes: 3},
		LLC:       cache.Stats{TagProbes: 4, Reads: 4, Writes: 4},
		DRAMReads: 5,
	}
	b := m.Compute(&r)
	if b.L1I != 111 || b.L1D != 444 || b.L2 != 999 || b.LLC != 1776 {
		t.Errorf("breakdown: %+v", b)
	}
	// Leakage scales with cycles.
	m.L2.LeakPerCycle = 1
	r.Cycles = 100
	if b2 := m.Compute(&r); b2.L2 != 999+100 {
		t.Errorf("leakage not applied: %v", b2.L2)
	}
	m.L2.LeakPerCycle = 0
	r.Cycles = 0
	if b.DRAM != 5000 {
		t.Errorf("DRAM energy = %v", b.DRAM)
	}
	if b.Total() != 111+444+999+1776 {
		t.Errorf("Total = %v", b.Total())
	}
	if b.TotalWithDRAM() != b.Total()+5000 {
		t.Errorf("TotalWithDRAM = %v", b.TotalWithDRAM())
	}
}

func TestDefault22nmOrdering(t *testing.T) {
	m := Default22nm()
	// Bigger arrays cost more per access; DRAM dominates everything.
	if !(m.L1I.Read < m.L2.Read && m.L2.Read < m.LLC.Read) {
		t.Error("per-access read energies not ordered by array size")
	}
	if !(m.L1I.LeakPerCycle < m.L2.LeakPerCycle && m.L2.LeakPerCycle < m.LLC.LeakPerCycle) {
		t.Error("leakage not ordered by array size")
	}
	if !(m.L1I.Write > m.L1I.Read) || !(m.LLC.Write > m.LLC.Read) {
		t.Error("writes should cost more than reads")
	}
	if m.DRAM < 10*m.LLC.Read {
		t.Error("DRAM should dominate SRAM accesses")
	}
}

func TestFasterRunLeaksLess(t *testing.T) {
	// The Table IV effect: an effective prefetcher shortens the run,
	// so the leakage-dominated L2/LLC consume less total energy even
	// with extra prefetch traffic.
	m := Default22nm()
	slow := cpu.Results{Cycles: 2_000_000,
		LLC: cache.Stats{TagProbes: 1000, Reads: 500, Writes: 500}}
	fast := cpu.Results{Cycles: 1_400_000,
		LLC: cache.Stats{TagProbes: 1500, Reads: 750, Writes: 750}}
	if m.Compute(&fast).LLC >= m.Compute(&slow).LLC {
		t.Error("shorter run with more traffic should still save LLC energy")
	}
}

func TestMorePrefetchesMoreL1IEnergy(t *testing.T) {
	// The Table IV effect: prefetching adds L1I probes/writes but
	// removes L2/LLC traffic. Model that with two synthetic runs.
	m := Default22nm()
	baseline := cpu.Results{
		L1I: cache.Stats{TagProbes: 1000, Reads: 900, Writes: 100},
		L2:  cache.Stats{TagProbes: 500, Reads: 300, Writes: 200},
	}
	withPf := cpu.Results{
		L1I: cache.Stats{TagProbes: 1600, Reads: 950, Writes: 300},
		L2:  cache.Stats{TagProbes: 300, Reads: 150, Writes: 100},
	}
	b0 := m.Compute(&baseline)
	b1 := m.Compute(&withPf)
	if b1.L1I <= b0.L1I {
		t.Error("prefetching should increase L1I energy")
	}
	if b1.L2 >= b0.L2 {
		t.Error("accurate prefetching should reduce L2 energy")
	}
}
