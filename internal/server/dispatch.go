package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"entangling/internal/faultinject"
	"entangling/internal/harness"
	"entangling/internal/workload"
)

// This file defines the transport-agnostic cell dispatch contract the
// job server runs on. A Dispatcher resolves one content-addressed cell
// — (configuration, workload, windows) — to its result; the server
// neither knows nor cares whether the simulation happens in-process
// (LocalDispatcher, the PR 4 worker pool) or on a fleet of worker
// replicas behind a coordinator (internal/fleet). Both implementations
// share the Resolver: the content-addressed resolution hierarchy
// (in-process result cache → durable checkpoint store → singleflight)
// wrapped around a pluggable CellRunner leaf, so identical cells
// resolve exactly once per node no matter the transport.

// CellSpec fully describes one simulation cell to resolve. Fingerprint
// is the cell's content address (harness.CellFingerprint over Config,
// Workload, Warmup and Measure); Plan optionally injects deterministic
// faults into the run.
type CellSpec struct {
	Config      harness.Configuration
	Workload    workload.Spec
	Warmup      uint64
	Measure     uint64
	Fingerprint string
	Plan        *faultinject.Plan
	// Tenant attributes the cell to the submitting tenant for fleet
	// accounting and worker logs. It is observability metadata only:
	// it is not part of the cell's content address, so identical cells
	// from different tenants still dedupe to one simulation.
	Tenant string
}

// CellResult is a resolved cell: a result or a typed cell error, plus
// where the result came from (the Source* constants in events.go).
type CellResult struct {
	Result harness.RunResult
	Err    *harness.CellError
	Source string
}

// Dispatcher resolves cells for the job server. Implementations must
// be safe for concurrent use; progress (may be nil) receives the
// harness lifecycle events of a live resolution this caller is
// subscribed to — retries, for the SSE event stream.
type Dispatcher interface {
	Dispatch(ctx context.Context, cell CellSpec, progress func(harness.CellEvent)) CellResult
}

// CellRunner is the leaf of the resolution hierarchy: it executes one
// cell that missed every cache tier. It returns the result and its
// provenance label on success, or a typed cell error. The context is
// detached from any single subscriber (see Resolver); progress streams
// the run's lifecycle events to every subscriber.
type CellRunner func(ctx context.Context, cell CellSpec, progress func(harness.CellEvent)) (harness.RunResult, string, *harness.CellError)

// ResolverConfig assembles a Resolver.
type ResolverConfig struct {
	// Run executes cells that miss every cache tier. Required.
	Run CellRunner
	// Store, when non-nil, is the durable result tier consulted before
	// running a cell (warm restarts answer from here).
	Store *harness.CheckpointStore
	// MemCap bounds the in-process result cache (default 4096).
	MemCap int
}

// Resolver implements the content-addressed resolution hierarchy every
// dispatcher shares. Resolving a cell walks the in-process result
// cache, the durable checkpoint store, and finally a singleflighted
// "flight" that invokes the CellRunner exactly once no matter how many
// concurrent subscribers want the cell. Flights run on a detached
// context refcounted by their subscribers, so one job canceling never
// kills a run another job is still waiting on.
type Resolver struct {
	run    CellRunner
	store  *harness.CheckpointStore
	memCap int

	mu      sync.Mutex
	mem     map[string]harness.RunResult
	memFIFO []string
	flights map[string]*flight
}

// NewResolver builds a Resolver over the given runner and tiers.
func NewResolver(cfg ResolverConfig) *Resolver {
	if cfg.Run == nil {
		panic("server: ResolverConfig.Run is required")
	}
	if cfg.MemCap <= 0 {
		cfg.MemCap = 4096
	}
	return &Resolver{
		run:     cfg.Run,
		store:   cfg.Store,
		memCap:  cfg.MemCap,
		mem:     make(map[string]harness.RunResult),
		flights: make(map[string]*flight),
	}
}

// LocalConfig assembles a LocalDispatcher.
type LocalConfig struct {
	// Traces is the shared workload trace cache (nil → a private one).
	Traces *workload.TraceCache
	// Store, when non-nil, persists every simulated cell and serves
	// warm restarts.
	Store *harness.CheckpointStore
	// Retries, RetryBaseDelay and CellTimeout are the per-cell fault
	// tolerance policy (see harness.Options).
	Retries        int
	RetryBaseDelay time.Duration
	CellTimeout    time.Duration
	// MemCap bounds the in-process result cache (default 4096).
	MemCap int
}

// LocalDispatcher runs cells in-process through harness.RunSuiteCtx —
// the single-node worker pool the job server was born with, now one
// implementation of Dispatcher among several.
type LocalDispatcher struct {
	*Resolver
}

// NewLocalDispatcher builds the in-process dispatcher.
func NewLocalDispatcher(cfg LocalConfig) *LocalDispatcher {
	traces := cfg.Traces
	if traces == nil {
		traces = workload.NewTraceCache()
	}
	run := func(ctx context.Context, cell CellSpec, progress func(harness.CellEvent)) (harness.RunResult, string, *harness.CellError) {
		opt := harness.Options{
			Warmup:         cell.Warmup,
			Measure:        cell.Measure,
			Parallelism:    1,
			Traces:         traces,
			Retries:        cfg.Retries,
			RetryBaseDelay: cfg.RetryBaseDelay,
			CellTimeout:    cfg.CellTimeout,
			Checkpoint:     cfg.Store,
			Progress:       progress,
		}
		if cell.Plan != nil {
			opt.CellHook = faultinject.New(*cell.Plan).CellHook
		}
		s, err := harness.RunSuiteCtx(ctx, []workload.Spec{cell.Workload}, []harness.Configuration{cell.Config}, opt)
		if err != nil {
			cerr := firstCellError(err, s)
			if cerr == nil {
				cerr = &harness.CellError{Config: cell.Config.Name, Workload: cell.Workload.Name, Err: err}
			}
			return harness.RunResult{}, "", cerr
		}
		return s.Runs[cell.Config.Name][cell.Workload.Name], SourceSimulated, nil
	}
	return &LocalDispatcher{NewResolver(ResolverConfig{Run: run, Store: cfg.Store, MemCap: cfg.MemCap})}
}

// firstCellError extracts the typed cell error of a one-cell sweep.
func firstCellError(err error, s *harness.SuiteResults) *harness.CellError {
	if s != nil && len(s.Failed) > 0 {
		return s.Failed[0]
	}
	var cerr *harness.CellError
	if errors.As(err, &cerr) {
		return cerr
	}
	return nil
}
