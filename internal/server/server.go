// Package server turns the batch evaluation harness into a long-lived
// simulation service: an HTTP/JSON API that accepts {configurations x
// workloads x windows} sweep jobs, executes their cells through
// harness.RunSuiteCtx on a bounded worker pool, streams per-cell
// progress over SSE, and answers repeat work from a content-addressed
// result cache (in-process + the durable checkpoint store) with
// singleflight deduplication — identical cells submitted by any
// number of concurrent clients simulate exactly once. Admission is
// bounded (429 + Retry-After when the queue is full) and shutdown is
// a graceful drain: stop admitting, let in-flight cells finish and
// checkpoint, then exit cleanly.
package server

import (
	"fmt"
	"log"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"entangling/internal/harness"
	"entangling/internal/predict"
	"entangling/internal/trace"
	"entangling/internal/workload"
)

// Config assembles a Server. Zero fields take the documented
// defaults.
type Config struct {
	// Addr is the listen address for Run (e.g. ":8080", "127.0.0.1:0").
	Addr string

	// QueueCapacity bounds the jobs admitted but not yet running;
	// submissions beyond it are rejected with 429 (default 16).
	QueueCapacity int
	// Workers bounds concurrently running jobs (default 2).
	Workers int
	// CellParallelism bounds concurrently resolving cells within one
	// job (default 4).
	CellParallelism int
	// MaxCells caps a single job's sweep size (default 512 cells).
	MaxCells int
	// MaxBodyBytes caps the submission body (default 1 MiB).
	MaxBodyBytes int64
	// MaxJobs caps remembered jobs; the oldest terminal jobs are
	// forgotten past it (default 256).
	MaxJobs int

	// PerCategory sizes the CVP workload registry (default 6, the
	// paperfigs default, so every curated workload name resolves).
	PerCategory int
	// Budget bounds per-workload resource use; zero value means
	// workload.DefaultBudget.
	Budget workload.Budget

	// CheckpointDir, when set, persists every simulated cell and
	// serves warm restarts; empty disables durability. Ignored when
	// Dispatcher is set — an external dispatcher owns its own tiers.
	CheckpointDir string

	// TraceDir, when set, stores uploaded traces (content-addressed,
	// next to the checkpoints); empty defaults to CheckpointDir/traces
	// when CheckpointDir is set, else trace upload is disabled (POST
	// /v1/traces answers 503).
	TraceDir string
	// MaxTraceBytes caps one trace upload body (default 128 MiB).
	MaxTraceBytes int64

	// Dispatcher, when set, resolves cells instead of the built-in
	// in-process pool — this is how coordinator mode plugs the fleet
	// in (internal/fleet). Nil means a LocalDispatcher over this
	// server's trace cache and checkpoint store.
	Dispatcher Dispatcher

	// Retries, RetryBaseDelay and CellTimeout are the per-cell fault
	// tolerance policy (see harness.Options).
	Retries        int
	RetryBaseDelay time.Duration
	CellTimeout    time.Duration

	// AllowFaults permits fault_plan in submissions (testing only).
	AllowFaults bool

	// Approximate enables the internal/predict fast path: the server
	// trains an online model on every exactly-simulated cell and
	// accepts mode=approximate jobs whose cells it answers with
	// per-metric prediction intervals when they are tighter than the
	// job's max_rel_err budget. Exact-mode jobs are byte-identical
	// with or without this flag.
	Approximate bool
	// ModelDir, when set (with Approximate), persists the model
	// snapshot across restarts via temp+rename next to the checkpoint
	// store; defaults to CheckpointDir/model when CheckpointDir is
	// set. The directory is never shared with checkpoint or trace
	// files.
	ModelDir string
	// MaxRelErr is the default approximate-mode error budget applied
	// when a request leaves max_rel_err unset (default 0.25). A cell
	// whose widest stated interval exceeds the budget falls back to
	// exact simulation.
	MaxRelErr float64

	// DrainGrace is how long Drain waits for running jobs before
	// canceling them (default 10s).
	DrainGrace time.Duration

	// Tenants, when set, switches the server to authenticated
	// multi-tenant mode: every /v1 request must present a configured
	// API key, quotas are enforced, and the admission queue drains by
	// priority tier. Nil runs the server open (single-tenant, no
	// auth) — the pre-tenancy behavior.
	Tenants *TenantsConfig
	// TierWeights overrides tier weights from the tenants config
	// (the -tier-weights flag); nil keeps the configured weights.
	TierWeights map[string]int

	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)

	// clock overrides time.Now for quota bookkeeping (tests).
	clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 16
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CellParallelism <= 0 {
		c.CellParallelism = 4
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 512
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.PerCategory <= 0 {
		c.PerCategory = 6
	}
	if (c.Budget == workload.Budget{}) {
		c.Budget = workload.DefaultBudget()
	}
	if c.TraceDir == "" && c.CheckpointDir != "" {
		c.TraceDir = filepath.Join(c.CheckpointDir, "traces")
	}
	if c.Approximate && c.ModelDir == "" && c.CheckpointDir != "" {
		c.ModelDir = filepath.Join(c.CheckpointDir, "model")
	}
	if c.MaxRelErr <= 0 {
		c.MaxRelErr = 0.25
	}
	if c.MaxTraceBytes <= 0 {
		c.MaxTraceBytes = 128 << 20
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// counters is the server's Prometheus-exported counter set. All
// fields are read with atomic loads by the /metrics handler.
type counters struct {
	jobsSubmitted uint64
	jobsDeduped   uint64
	jobsRejected  uint64 // queue-full 429s
	jobsCompleted uint64
	jobsDegraded  uint64
	jobsFailed    uint64
	jobsCanceled  uint64

	cellsSimulated   uint64
	cellsCacheMemory uint64
	cellsCacheStore  uint64
	cellsShared      uint64
	cellsFleet       uint64
	cellsStolen      uint64
	cellsFailed      uint64

	tracesUploaded uint64
	tracesDeduped  uint64
	tracesRejected uint64

	authFailures  uint64 // 401s: missing or unknown API key
	authForbidden uint64 // 403s: known tenant, disallowed action
	quotaRejected uint64 // 429s from any tenant quota

	// Approximate-mode accounting: cells answered by the model, cells
	// that fell back to exact simulation, predicted cells later
	// refined by an exact run, and the observed-vs-predicted
	// calibration split of those refinements.
	predictionsServed   uint64
	predictionsFallback uint64
	predictionsRefined  uint64
	predictionsWithin   uint64 // refined: truth inside the stated interval
	predictionsOutside  uint64 // refined: truth outside the stated interval
}

func (c *counters) inc(f *uint64) { atomic.AddUint64(f, 1) }

// Server is the simulation job service. Create with New, serve its
// Handler (or call Run), and stop with Drain.
type Server struct {
	cfg      Config
	reg      *registries
	traces   *workload.TraceCache
	store    *harness.CheckpointStore
	tstore   *trace.Store // uploaded traces; nil when TraceDir unset
	dispatch Dispatcher
	stats    counters

	// predictor is the approximate-mode model (nil unless
	// cfg.Approximate); it sits above the Dispatcher, so coordinator
	// mode trains and serves it without any fleet-worker change.
	predictor  *predict.Predictor
	modelStore *predict.ModelStore // nil when ModelDir unset
	// predMu guards served: the predictions currently outstanding per
	// fingerprint, kept so a later exact result for the same cell can
	// be scored against the stated interval (refinement calibration).
	predMu sync.Mutex
	served map[string]predict.Prediction

	// tenants is the auth/quota table; nil means the server runs
	// open (no auth, one tier, no quotas).
	tenants *tenants

	queue *tierQueue
	// draining is closed when admission stops; drained is closed when
	// the last worker exits.
	draining chan struct{}
	drained  chan struct{}
	drainOne sync.Once
	workers  sync.WaitGroup

	// addr holds the bound listen address once Run is listening.
	addr atomic.Value

	mu       sync.Mutex
	jobs     map[string]*job
	jobOrder []string
	running  int
}

// New builds a Server (opening the checkpoint store when configured)
// without starting its workers; call Start, or let Run do it.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      newRegistries(cfg.PerCategory),
		traces:   workload.NewTraceCache(),
		draining: make(chan struct{}),
		drained:  make(chan struct{}),
		jobs:     make(map[string]*job),
	}
	if cfg.Approximate {
		s.predictor = predict.New(predict.Config{})
		s.served = make(map[string]predict.Prediction)
		if cfg.ModelDir != "" {
			ms, err := predict.OpenModelStore(cfg.ModelDir)
			if err != nil {
				return nil, fmt.Errorf("server: %w", err)
			}
			s.modelStore = ms
			snap, ok, err := ms.Load()
			if err != nil {
				return nil, fmt.Errorf("server: %w", err)
			}
			if ok {
				if rerr := s.predictor.Restore(snap); rerr != nil {
					// A snapshot that decoded but no longer matches the
					// model schema starts fresh; it is only an optimization.
					cfg.Logf("server: model snapshot not restorable (%v); starting fresh", rerr)
				} else {
					cfg.Logf("server: restored model snapshot (%d examples)", s.predictor.Len())
				}
			}
			if q := ms.Quarantined(); q > 0 {
				cfg.Logf("server: quarantined %d corrupt model snapshot(s)", q)
			}
		}
	}
	tiers := 1
	if cfg.Tenants != nil {
		if err := cfg.Tenants.Validate(); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		tt, err := newTenants(*cfg.Tenants, cfg.TierWeights, cfg.clock)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.tenants = tt
		tiers = tt.tierCount()
	}
	s.queue = newTierQueue(cfg.QueueCapacity, tiers)
	if cfg.TraceDir != "" {
		tstore, err := trace.OpenStore(cfg.TraceDir)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.tstore = tstore
	}
	if cfg.Dispatcher != nil {
		s.dispatch = cfg.Dispatcher
		return s, nil
	}
	if cfg.CheckpointDir != "" {
		store, err := harness.OpenCheckpointStore(cfg.CheckpointDir)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.store = store
	}
	s.dispatch = NewLocalDispatcher(LocalConfig{
		Traces:         s.traces,
		Store:          s.store,
		Retries:        cfg.Retries,
		RetryBaseDelay: cfg.RetryBaseDelay,
		CellTimeout:    cfg.CellTimeout,
	})
	return s, nil
}

// Start launches the worker pool. Safe to call once.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	go func() {
		s.workers.Wait()
		close(s.drained)
	}()
}

func (s *Server) worker() {
	defer s.workers.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return // queue closed and fully drained
		}
		if s.Draining() {
			// Drain: jobs still queued are finalized as canceled
			// rather than silently forgotten.
			j.cancel()
			if j.finalize() {
				s.countTerminal(j)
			}
			continue
		}
		s.setRunning(+1)
		s.runJob(j)
		s.setRunning(-1)
	}
}

func (s *Server) setRunning(d int) {
	s.mu.Lock()
	s.running += d
	s.mu.Unlock()
}

// runJob resolves every cell of the job — workload-major, so cells
// sharing a trace run close together — with bounded parallelism. A
// per-workload trace reference is held from the workload's first cell
// until its last, so the job pays one materialization per workload no
// matter how its cells interleave.
func (s *Server) runJob(j *job) {
	if !j.start() {
		// Canceled while queued; already finalized by the cancel path.
		return
	}

	type cellJob struct {
		cfg  harness.Configuration
		spec workload.Spec
	}
	var cells []cellJob
	for _, spec := range j.spec.specs {
		for _, cfg := range j.spec.cfgs {
			cells = append(cells, cellJob{cfg: cfg, spec: spec})
		}
	}

	lease := newTraceLease(s.traces, j.spec.traceLen(), j.spec.specs, len(j.spec.cfgs))

	sem := make(chan struct{}, s.cfg.CellParallelism)
	var wg sync.WaitGroup
	for _, c := range cells {
		wg.Add(1)
		sem <- struct{}{}
		go func(c cellJob) {
			defer func() { <-sem; wg.Done() }()
			s.runCell(j, c.cfg, c.spec, lease)
			lease.cellDone(c.spec)
		}(c)
	}
	wg.Wait()
	lease.releaseAll()

	if j.finalize() {
		s.countTerminal(j)
	}
	s.saveModel()
	doc := j.status()
	s.cfg.Logf("server: job %s %s (%d/%d cells, %d simulated, %d cached, %d shared, %d predicted, %d failed)",
		doc.ID, doc.State, doc.Cells.Done, doc.Cells.Total,
		doc.Cells.Simulated, doc.Cells.CacheMemory+doc.Cells.CacheStore,
		doc.Cells.Shared, doc.Cells.Predicted, doc.Cells.Failed)
}

// runCell resolves one cell and records the outcome on the job. On an
// approximate job the predictor is consulted first; only when it
// declines (not enough calibrated history, or intervals wider than
// the job's budget) does the cell fall back to the exact dispatcher.
func (s *Server) runCell(j *job, cfg harness.Configuration, spec workload.Spec, lease *traceLease) {
	j.log.append(Event{Type: EventCellStarted, Config: cfg.Name, Workload: spec.Name})
	start := time.Now()
	fp := j.spec.fingerprints[cfg.Name][spec.Name]

	if j.spec.approximate && s.predictor != nil {
		features := predict.CellFeatures(cfg, spec, j.spec.warmup, j.spec.measure)
		if pred, ok := s.predictor.Predict(features); ok && pred.MaxRelWidth() <= j.spec.maxRelErr {
			bands := make([]MetricBand, len(pred.Intervals))
			for i, iv := range pred.Intervals {
				bands[i] = MetricBand{Metric: iv.Metric, Value: iv.Value, Lo: iv.Lo, Hi: iv.Hi}
			}
			s.stats.inc(&s.stats.predictionsServed)
			s.rememberPrediction(fp, pred)
			j.recordPrediction(PredictedCell{
				Config: cfg.Name, Workload: spec.Name, Bands: bands,
				TrainSize: pred.TrainSize, CalibrationSize: pred.CalibrationSize,
			}, time.Since(start).Milliseconds())
			return
		}
		// Fallback: simulate exactly. The cell completes the remainder
		// of its full-price quota charge — the admission discount
		// assumed no simulation would run.
		s.stats.inc(&s.stats.predictionsFallback)
		j.noteFallback()
		if j.payer != nil {
			j.payer.chargeFallback(1)
		}
	}

	progress := func(ev harness.CellEvent) {
		if ev.Type == harness.CellRetried {
			j.log.append(Event{
				Type: EventCellRetried, Config: ev.Config, Workload: ev.Workload,
				Attempt: ev.Attempt,
			})
		}
	}
	out := s.dispatch.Dispatch(j.ctx, CellSpec{
		Config:      cfg,
		Workload:    spec,
		Warmup:      j.spec.warmup,
		Measure:     j.spec.measure,
		Fingerprint: fp,
		Plan:        j.spec.plan,
		Tenant:      j.spec.tenant,
	}, progress)
	elapsed := time.Since(start).Milliseconds()
	if out.Source == SourceSimulated || out.Source == SourceShared {
		// A live in-process simulation just materialized (or reused)
		// this workload's trace; keep it resident for the job's
		// remaining cells of the same workload.
		lease.hold(spec)
	}
	if out.Err != nil {
		s.stats.inc(&s.stats.cellsFailed)
		j.recordFailure(out.Err, elapsed)
		return
	}
	s.countSource(out.Source)
	// Every exact result trains the model and refines any prediction
	// previously served for the same cell. Fault-plan cells are
	// excluded: injected faults are not representative history.
	if s.predictor != nil && j.spec.plan == nil {
		s.observeCell(fp, cfg, spec, j.spec.warmup, j.spec.measure, out.Result)
	}
	j.recordResult(out.Result, out.Source, elapsed)
}

// observeCell feeds one exact result into the model and scores any
// outstanding prediction for the same fingerprint against the truth.
func (s *Server) observeCell(fp string, cfg harness.Configuration, spec workload.Spec, warmup, measure uint64, res harness.RunResult) {
	targets := predict.Targets(res)
	s.predictor.Observe(fp, predict.CellFeatures(cfg, spec, warmup, measure), targets)

	s.predMu.Lock()
	pred, ok := s.served[fp]
	if ok {
		delete(s.served, fp)
	}
	s.predMu.Unlock()
	if ok {
		s.stats.inc(&s.stats.predictionsRefined)
		if pred.Covers(targets) {
			s.stats.inc(&s.stats.predictionsWithin)
		} else {
			s.stats.inc(&s.stats.predictionsOutside)
		}
	}
}

// maxServedPredictions bounds the outstanding-prediction map; past it
// refinement scoring simply stops registering new cells (accounting
// only, never correctness).
const maxServedPredictions = 4096

// rememberPrediction registers a served prediction for later
// refinement scoring.
func (s *Server) rememberPrediction(fp string, pred predict.Prediction) {
	s.predMu.Lock()
	if len(s.served) < maxServedPredictions {
		s.served[fp] = pred
	}
	s.predMu.Unlock()
}

// saveModel persists the model snapshot when a store is configured;
// best-effort (the model is an optimization, so a failed save logs
// and moves on).
func (s *Server) saveModel() {
	if s.predictor == nil || s.modelStore == nil {
		return
	}
	if err := s.modelStore.Save(s.predictor.Snapshot()); err != nil {
		s.cfg.Logf("server: saving model snapshot: %v", err)
	}
}

// countSource bumps the provenance counter for a resolved cell.
func (s *Server) countSource(source string) {
	switch source {
	case SourceSimulated:
		s.stats.inc(&s.stats.cellsSimulated)
	case SourceCacheMemory:
		s.stats.inc(&s.stats.cellsCacheMemory)
	case SourceCacheStore:
		s.stats.inc(&s.stats.cellsCacheStore)
	case SourceShared:
		s.stats.inc(&s.stats.cellsShared)
	case SourceFleet:
		s.stats.inc(&s.stats.cellsFleet)
	case SourceFleetStolen:
		s.stats.inc(&s.stats.cellsStolen)
	}
}

// countTerminal bumps the job outcome counter for a finalized job
// and releases the paying tenant's in-flight slot.
func (s *Server) countTerminal(j *job) {
	if j.payer != nil {
		j.payer.jobDone()
	}
	_, state, _ := j.resultBytes()
	switch state {
	case StateCompleted:
		s.stats.inc(&s.stats.jobsCompleted)
	case StateDegraded:
		s.stats.inc(&s.stats.jobsDegraded)
	case StateFailed:
		s.stats.inc(&s.stats.jobsFailed)
	case StateCanceled:
		s.stats.inc(&s.stats.jobsCanceled)
	}
}

// submit admits a resolved job, deduplicating by content address.
// The returned bool reports whether the job already existed; a nil
// job with errFull means the queue rejected the submission.
var errQueueFull = fmt.Errorf("server: job queue full")
var errDraining = fmt.Errorf("server: draining, not admitting jobs")

func (s *Server) submit(spec *jobSpec, owner *tenantState) (*job, bool, error) {
	select {
	case <-s.draining:
		return nil, false, errDraining
	default:
	}

	s.mu.Lock()
	if existing, ok := s.jobs[spec.id]; ok {
		if owner != nil {
			existing.addOwner(owner.t.Name)
			owner.countDeduped()
		}
		s.mu.Unlock()
		s.stats.inc(&s.stats.jobsDeduped)
		return existing, true, nil
	}
	tier := 0
	if owner != nil {
		// A deduped submission is free; only net-new work is charged
		// against the tenant's in-flight and cells/sec quotas.
		if qerr := owner.admitJob(spec.cellCount(), spec.approximate, s.tenants.now()); qerr != nil {
			s.mu.Unlock()
			s.stats.inc(&s.stats.quotaRejected)
			return nil, false, qerr
		}
		tier = owner.tier
		spec.tenant = owner.t.Name
	}
	j := newJob(spec)
	if owner != nil {
		j.payer = owner
		j.addOwner(owner.t.Name)
	}
	s.jobs[spec.id] = j
	s.jobOrder = append(s.jobOrder, spec.id)
	s.pruneJobsLocked()
	s.mu.Unlock()

	if !s.queue.push(j, tier) {
		// Queue full: withdraw the registration entirely (so a retry
		// after Retry-After is a fresh submission, not a dedupe hit on
		// a job that will never run) and refund the quota charge.
		s.mu.Lock()
		delete(s.jobs, spec.id)
		for i, id := range s.jobOrder {
			if id == spec.id {
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		if owner != nil {
			owner.refundAdmission(spec.cellCount(), spec.approximate)
		}
		j.cancel()
		s.stats.inc(&s.stats.jobsRejected)
		return nil, false, errQueueFull
	}
	s.stats.inc(&s.stats.jobsSubmitted)
	return j, false, nil
}

// pruneJobsLocked forgets the oldest terminal jobs beyond MaxJobs.
func (s *Server) pruneJobsLocked() {
	for len(s.jobOrder) > s.cfg.MaxJobs {
		pruned := false
		for i, id := range s.jobOrder {
			j := s.jobs[id]
			j.mu.Lock()
			terminal := terminalState(j.state)
			j.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			return // everything live; do not forget running work
		}
	}
}

// lookup returns a job by ID.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// cancelJob cancels a job by ID; queued jobs finalize immediately.
func (s *Server) cancelJob(j *job) {
	j.cancel()
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	if queued && j.finalize() {
		s.countTerminal(j)
	}
}

// Drain gracefully stops the server: admission closes (submissions
// get 503), queued jobs are canceled, running jobs get DrainGrace to
// finish (their completed cells are already checkpointed), then are
// canceled. Drain returns when every worker has exited.
func (s *Server) Drain() {
	s.drainOne.Do(func() {
		s.cfg.Logf("server: draining (grace %v)", s.cfg.DrainGrace)
		close(s.draining)
		s.queue.close()

		grace := time.NewTimer(s.cfg.DrainGrace)
		defer grace.Stop()
		select {
		case <-s.drained:
		case <-grace.C:
			s.cfg.Logf("server: drain grace expired, canceling running jobs")
			s.mu.Lock()
			for _, id := range s.jobOrder {
				s.jobs[id].cancel()
			}
			s.mu.Unlock()
			<-s.drained
		}
		s.saveModel()
		s.cfg.Logf("server: drained")
	})
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// traceLease keeps each workload's trace resident from its first
// simulated cell to the job's last cell of that workload, mirroring
// the sweep-level lease inside harness.RunSuiteCtx (which only spans
// a single cell here, since the server runs cells as one-cell
// sweeps). The hold is opportunistic — Retain only succeeds while the
// trace is resident — and purely an optimization: a missed hold costs
// one extra singleflighted rebuild, never correctness.
type traceLease struct {
	cache    *workload.TraceCache
	traceLen uint64

	mu      sync.Mutex
	pending map[string]int
	leased  map[string]workload.Spec
}

func newTraceLease(cache *workload.TraceCache, traceLen uint64, specs []workload.Spec, cfgsPerSpec int) *traceLease {
	l := &traceLease{
		cache:    cache,
		traceLen: traceLen,
		pending:  make(map[string]int, len(specs)),
		leased:   make(map[string]workload.Spec),
	}
	for _, s := range specs {
		l.pending[s.Name] = cfgsPerSpec
	}
	return l
}

// hold takes the job's keep-alive reference on spec's trace if it is
// resident and more cells of the workload remain.
func (l *traceLease) hold(spec workload.Spec) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.leased[spec.Name]; ok {
		return
	}
	if l.pending[spec.Name] <= 1 {
		return // this is the workload's last cell; nothing to bridge
	}
	if l.cache.Retain(spec, l.traceLen) {
		l.leased[spec.Name] = spec
	}
}

// cellDone marks one cell of spec terminal and drops the lease with
// the last one.
func (l *traceLease) cellDone(spec workload.Spec) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pending[spec.Name]--
	if l.pending[spec.Name] <= 0 {
		if _, ok := l.leased[spec.Name]; ok {
			delete(l.leased, spec.Name)
			l.cache.Release(spec, l.traceLen)
		}
	}
}

// releaseAll drops any leases still held (canceled jobs).
func (l *traceLease) releaseAll() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for name, spec := range l.leased {
		delete(l.leased, name)
		l.cache.Release(spec, l.traceLen)
	}
	l.pending = make(map[string]int)
}
