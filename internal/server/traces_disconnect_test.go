package server

import (
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"
)

// TestTraceUploadDisconnectLeavesNoResidue is the regression test for
// the /v1/traces ingest path under client disconnects: a tenant whose
// connection dies mid-upload must leave nothing behind — no staged
// ingest-*.tmp file in the trace directory, no charged trace-bytes
// quota, and no effect on later uploads. The handler streams the body
// straight into trace.Store.Put, whose deferred cleanup removes the
// staging file on any error path; this pins that contract from the
// outside, over a real severed TCP connection.
func TestTraceUploadDisconnectLeavesNoResidue(t *testing.T) {
	cfg := tenantTestConfig()
	cfg.TraceDir = t.TempDir()
	s, ts := startTestServer(t, cfg)

	payload := encodeWalkerTrace(t, 3_000)

	// Open a raw connection, announce the full length, send half, die.
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	fmt.Fprintf(conn, "POST /v1/traces HTTP/1.1\r\nHost: t\r\nAuthorization: Bearer %s\r\n"+
		"Content-Type: application/octet-stream\r\nContent-Length: %d\r\n\r\n",
		goldKey, len(payload))
	if _, err := conn.Write(payload[:len(payload)/2]); err != nil {
		t.Fatalf("writing partial body: %v", err)
	}
	conn.Close()

	// The handler notices the truncation when its copy loop hits the
	// dead connection; give it a moment, then require a clean floor.
	deadline := time.Now().Add(5 * time.Second)
	for {
		residue, err := filepath.Glob(filepath.Join(cfg.TraceDir, "*.tmp"))
		if err != nil {
			t.Fatalf("globbing trace dir: %v", err)
		}
		if len(residue) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("staged upload files left behind after disconnect: %v", residue)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The aborted upload charged nothing.
	acme := s.tenants.byName["acme"]
	acme.mu.Lock()
	charged := acme.traceBytes
	acme.mu.Unlock()
	if charged != 0 {
		t.Fatalf("aborted upload charged %d trace bytes", charged)
	}

	// The store is fully usable: the same tenant's complete upload
	// lands (201, not a dedupe of a half-ingested ghost), is listed,
	// and is charged exactly once.
	status, body := doAs(t, ts, goldKey, "POST", "/v1/traces", payload)
	if status != http.StatusCreated {
		t.Fatalf("upload after disconnect: status %d (%s)", status, body)
	}
	status, body = doAs(t, ts, goldKey, "GET", "/v1/traces", nil)
	if status != http.StatusOK {
		t.Fatalf("trace list: status %d (%s)", status, body)
	}
	acme.mu.Lock()
	charged = acme.traceBytes
	acme.mu.Unlock()
	if charged != int64(len(payload)) {
		t.Fatalf("trace-bytes charge %d after one successful upload of %d bytes", charged, len(payload))
	}
}
