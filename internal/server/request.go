package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"entangling/internal/faultinject"
	"entangling/internal/harness"
	"entangling/internal/workload"
)

// This file defines the job submission schema and its validation. A
// request names configurations and workloads from the server's vetted
// registries — the network API can describe only sweeps the repository
// could also run locally — and every workload is checked against the
// request-size budget before a single trace byte is allocated.

// JobRequest is the POST /v1/jobs payload: a {configurations x
// workloads} sweep over one (warmup, measure) window. Configuration
// and workload names resolve against harness.KnownConfigurations and
// the server's workload registry (CVP suite + CloudSuite names);
// order is preserved and significant — it fixes the row order of the
// exported metrics, and thereby the job's identity.
type JobRequest struct {
	Configurations []string `json:"configurations"`
	Workloads      []string `json:"workloads"`
	Warmup         uint64   `json:"warmup"`
	Measure        uint64   `json:"measure"`

	// Mode selects how cells are answered: "" or "exact" runs the
	// simulator (the only pre-PR10 behavior), "approximate" lets the
	// server answer cells from the internal/predict model when it can
	// state intervals tighter than MaxRelErr, falling back to exact
	// simulation cell by cell otherwise. Rejected unless the server
	// runs with -approximate.
	Mode string `json:"mode,omitempty"`
	// MaxRelErr is the approximate-mode error budget: the widest
	// acceptable per-metric relative interval half-width. Zero takes
	// the server default; setting it without mode=approximate is a
	// validation error.
	MaxRelErr float64 `json:"max_rel_err,omitempty"`

	// FaultPlan, when present, injects deterministic faults into this
	// job's cells (degraded-result testing). Rejected unless the server
	// runs with fault injection enabled.
	FaultPlan *faultinject.Plan `json:"fault_plan,omitempty"`
}

// Job modes.
const (
	ModeExact       = "exact"
	ModeApproximate = "approximate"
)

// jobSpec is a fully resolved, validated request: the exact cells a
// job will run, plus the job's content-addressed identity.
type jobSpec struct {
	id      string
	req     JobRequest
	cfgs    []harness.Configuration
	specs   []workload.Spec
	warmup  uint64
	measure uint64
	// fingerprints[cfg.Name][spec.Name], precomputed once.
	fingerprints map[string]map[string]string
	plan         *faultinject.Plan
	// approximate marks a mode=approximate job: cells may be answered
	// by the predictor within the maxRelErr budget, with exact
	// simulation as the per-cell fallback.
	approximate bool
	maxRelErr   float64
	// tenant names the submitting tenant ("" in open mode); carried
	// into CellSpec for fleet attribution, never into cell identity.
	tenant string
}

func (j *jobSpec) cellCount() int { return len(j.cfgs) * len(j.specs) }

// traceLen is the materialized stream length every cell of the job
// consumes.
func (j *jobSpec) traceLen() uint64 { return j.warmup + j.measure }

// registries bundles the server's name->definition tables.
type registries struct {
	cfgs  map[string]harness.Configuration
	specs map[string]workload.Spec
}

// newRegistries builds the lookup tables: every known configuration,
// and the CVP suite (perCategory workloads per category) plus the
// CloudSuite and adversarial workloads.
func newRegistries(perCategory int) *registries {
	r := &registries{
		cfgs:  make(map[string]harness.Configuration),
		specs: make(map[string]workload.Spec),
	}
	for _, c := range harness.KnownConfigurations() {
		r.cfgs[c.Name] = c
	}
	for _, s := range workload.CVPSuite(perCategory) {
		r.specs[s.Name] = s
	}
	for _, s := range workload.CloudSuite() {
		r.specs[s.Name] = s
	}
	for _, s := range workload.AdversarialSuite() {
		r.specs[s.Name] = s
	}
	return r
}

// traceWorkloadPrefix marks workload names that reference an uploaded
// trace by content address instead of a registry preset.
const traceWorkloadPrefix = "trace:"

// traceResolver looks an uploaded trace up by the "trace:<id>" name a
// job spec used, returning its executable Spec. traceLen is the stream
// length the job's cells will consume, so the resolver can reject
// windows longer than the stored trace up front.
type traceResolver func(name string, traceLen uint64) (workload.Spec, error)

// parseJobRequest decodes and structurally validates a submission
// body. Unknown fields are rejected (a typoed field must not silently
// become a default), and the reader is expected to be wrapped in
// http.MaxBytesReader by the caller.
func parseJobRequest(r io.Reader) (JobRequest, error) {
	var req JobRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return JobRequest{}, fmt.Errorf("parsing job request: %w", err)
	}
	// A second document in the body is a malformed request, not data.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return JobRequest{}, fmt.Errorf("job request: trailing data after JSON document")
	}
	return req, nil
}

// approxPolicy is the server's approximate-mode stance handed to
// resolve: whether a predictor is available at all, and the default
// error budget when the request leaves max_rel_err unset.
type approxPolicy struct {
	enabled          bool
	defaultMaxRelErr float64
}

// resolve validates the request against the registries, the cell
// budget and the fault policy, and returns the executable jobSpec.
// traces resolves "trace:<id>" workload names (nil rejects them).
func (r *registries) resolve(req JobRequest, budget workload.Budget, maxCells int, allowFaults bool, approx approxPolicy, traces traceResolver) (*jobSpec, error) {
	if len(req.Configurations) == 0 {
		return nil, fmt.Errorf("job request: no configurations")
	}
	switch req.Mode {
	case "", ModeExact:
		if req.MaxRelErr != 0 {
			return nil, fmt.Errorf("job request: max_rel_err requires mode=%s", ModeApproximate)
		}
	case ModeApproximate:
		if !approx.enabled {
			return nil, fmt.Errorf("job request: approximate mode is disabled on this server")
		}
		if req.MaxRelErr < 0 {
			return nil, fmt.Errorf("job request: max_rel_err must not be negative")
		}
		if req.FaultPlan != nil {
			// A fault plan changes cell outcomes; a model trained on
			// fault-free history must not answer for them.
			return nil, fmt.Errorf("job request: mode=%s cannot be combined with a fault plan", ModeApproximate)
		}
	default:
		return nil, fmt.Errorf("job request: unknown mode %q", req.Mode)
	}
	if len(req.Workloads) == 0 {
		return nil, fmt.Errorf("job request: no workloads")
	}
	if req.Measure == 0 {
		return nil, fmt.Errorf("job request: measure window must be positive")
	}
	if cells := len(req.Configurations) * len(req.Workloads); maxCells > 0 && cells > maxCells {
		return nil, fmt.Errorf("job request: %d cells exceed the per-job limit of %d", cells, maxCells)
	}

	js := &jobSpec{
		req:          req,
		warmup:       req.Warmup,
		measure:      req.Measure,
		fingerprints: make(map[string]map[string]string, len(req.Configurations)),
	}
	if req.Mode == ModeApproximate {
		js.approximate = true
		js.maxRelErr = req.MaxRelErr
		if js.maxRelErr == 0 {
			js.maxRelErr = approx.defaultMaxRelErr
		}
	}
	seenCfg := make(map[string]bool, len(req.Configurations))
	for _, name := range req.Configurations {
		if seenCfg[name] {
			return nil, fmt.Errorf("job request: duplicate configuration %q", name)
		}
		seenCfg[name] = true
		c, ok := r.cfgs[name]
		if !ok {
			return nil, fmt.Errorf("job request: unknown configuration %q", name)
		}
		js.cfgs = append(js.cfgs, c)
	}
	seenWl := make(map[string]bool, len(req.Workloads))
	for _, name := range req.Workloads {
		if seenWl[name] {
			return nil, fmt.Errorf("job request: duplicate workload %q", name)
		}
		seenWl[name] = true
		var s workload.Spec
		if strings.HasPrefix(name, traceWorkloadPrefix) {
			if traces == nil {
				return nil, fmt.Errorf("job request: workload %q: trace workloads are not available on this server", name)
			}
			var err error
			if s, err = traces(name, js.traceLen()); err != nil {
				return nil, fmt.Errorf("job request: %w", err)
			}
		} else {
			var ok bool
			if s, ok = r.specs[name]; !ok {
				return nil, fmt.Errorf("job request: unknown workload %q", name)
			}
		}
		if err := budget.Check(s, js.traceLen()); err != nil {
			return nil, fmt.Errorf("job request: %w", err)
		}
		js.specs = append(js.specs, s)
	}
	for _, c := range js.cfgs {
		per := make(map[string]string, len(js.specs))
		for _, s := range js.specs {
			per[s.Name] = harness.CellFingerprint(c, s, js.warmup, js.measure)
		}
		js.fingerprints[c.Name] = per
	}

	if req.FaultPlan != nil {
		if !allowFaults {
			return nil, fmt.Errorf("job request: fault injection is disabled on this server")
		}
		if err := req.FaultPlan.Validate(); err != nil {
			return nil, fmt.Errorf("job request: %w", err)
		}
		if req.FaultPlan.Enabled() {
			js.plan = req.FaultPlan
		}
	}

	js.id = js.computeID()
	return js, nil
}

// computeID derives the job's content address: a hash over the
// windows, every cell fingerprint in request order, and the fault
// plan. Two requests describing the same simulation work share an ID —
// that identity is what makes duplicate submission a cache hit rather
// than a second sweep — while any semantic difference (including an
// injected fault plan, which can change outcomes) separates them.
func (j *jobSpec) computeID() string {
	h := sha256.New()
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], j.warmup)
	h.Write(w[:])
	binary.LittleEndian.PutUint64(w[:], j.measure)
	h.Write(w[:])
	for _, c := range j.cfgs {
		for _, s := range j.specs {
			io.WriteString(h, j.fingerprints[c.Name][s.Name])
			h.Write([]byte{0})
		}
	}
	if j.plan != nil {
		b, err := json.Marshal(j.plan)
		if err != nil {
			panic(err) // plain struct of scalars cannot fail to marshal
		}
		io.WriteString(h, "faults:")
		h.Write(b)
	}
	if j.approximate {
		// An approximate job must never dedupe onto an exact job of the
		// same cells (or vice versa): the two produce different result
		// documents. The error budget separates identities too, since
		// it changes which cells fall back.
		fmt.Fprintf(h, "approx:%s", strconv.FormatFloat(j.maxRelErr, 'g', -1, 64))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
