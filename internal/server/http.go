package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// This file is the HTTP surface of the job server: the /v1 JSON API,
// the SSE progress stream, and the health/metrics endpoints. Routing
// uses Go 1.22 method+pattern ServeMux matching; everything is
// stdlib.

// errorDoc is the JSON body of every non-2xx response. Reason is a
// machine-readable rejection class (the Reason* constants) so
// clients can build an error taxonomy without parsing prose.
type errorDoc struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeErrorReason(w, status, defaultReason(status), format, args...)
}

func writeErrorReason(w http.ResponseWriter, status int, reason, format string, args ...any) {
	writeJSON(w, status, errorDoc{Error: fmt.Sprintf(format, args...), Reason: reason})
}

// defaultReason maps a status to its generic reason; call sites with
// a more specific class (quotas, draining) use writeErrorReason.
func defaultReason(status int) string {
	switch status {
	case http.StatusBadRequest:
		return ReasonBadRequest
	case http.StatusUnauthorized:
		return ReasonUnauthorized
	case http.StatusForbidden:
		return ReasonForbidden
	case http.StatusNotFound:
		return ReasonNotFound
	case http.StatusRequestEntityTooLarge:
		return ReasonTooLarge
	case http.StatusTooManyRequests:
		return ReasonQueueFull
	case http.StatusServiceUnavailable:
		return ReasonUnavailable
	default:
		return ReasonInternal
	}
}

// authenticate resolves the request's tenant. On an open server it
// returns (nil, true) — no auth, no quotas. On a multi-tenant server
// a missing or unknown key answers 401 and returns false; the caller
// must stop.
func (s *Server) authenticate(w http.ResponseWriter, r *http.Request) (*tenantState, bool) {
	if s.tenants == nil {
		return nil, true
	}
	key := r.Header.Get("X-API-Key")
	if key == "" {
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			key = strings.TrimPrefix(auth, "Bearer ")
		}
	}
	if key == "" {
		s.stats.inc(&s.stats.authFailures)
		writeErrorReason(w, http.StatusUnauthorized, ReasonUnauthorized,
			"missing API key (send Authorization: Bearer <key> or X-API-Key)")
		return nil, false
	}
	st, ok := s.tenants.lookup(key)
	if !ok {
		s.stats.inc(&s.stats.authFailures)
		writeErrorReason(w, http.StatusUnauthorized, ReasonUnauthorized, "unknown API key")
		return nil, false
	}
	return st, true
}

// authorizeJob enforces job ownership on a multi-tenant server: only
// a tenant that submitted (or deduped onto) the job may read or
// cancel it. Open servers skip the check.
func (s *Server) authorizeJob(w http.ResponseWriter, st *tenantState, j *job) bool {
	if s.tenants == nil || st == nil {
		return true
	}
	if !j.isOwner(st.t.Name) {
		s.stats.inc(&s.stats.authForbidden)
		st.countRejected(ReasonForbidden)
		writeErrorReason(w, http.StatusForbidden, ReasonForbidden,
			"tenant %q does not own job %s", st.t.Name, j.spec.id)
		return false
	}
	return true
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/traces", s.handleTraceUpload)
	mux.HandleFunc("GET /v1/traces", s.handleTraceList)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceStat)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// submitResponse is the POST /v1/jobs body: the job identity plus
// resource links, so clients need no URL templating.
type submitResponse struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Deduped bool   `json:"deduped"`
	Cells   int    `json:"cells"`
	Status  string `json:"status_url"`
	Events  string `json:"events_url"`
	Result  string `json:"result_url"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	st, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := parseJobRequest(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.FaultPlan != nil && st != nil && !st.t.AllowFaults {
		s.stats.inc(&s.stats.authForbidden)
		st.countRejected(ReasonForbidden)
		writeErrorReason(w, http.StatusForbidden, ReasonForbidden,
			"tenant %q is not allowed to submit fault plans", st.t.Name)
		return
	}
	approx := approxPolicy{enabled: s.predictor != nil, defaultMaxRelErr: s.cfg.MaxRelErr}
	spec, err := s.reg.resolve(req, s.cfg.Budget, s.cfg.MaxCells, s.cfg.AllowFaults, approx, s.resolveTraceWorkload)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	j, existed, err := s.submit(spec, st)
	var qerr *quotaError
	switch {
	case errors.Is(err, errDraining):
		writeErrorReason(w, http.StatusServiceUnavailable, ReasonDraining, "server is draining")
		return
	case errors.As(err, &qerr):
		retry := 1
		if qerr.reason == ReasonQuotaCellRate {
			retry = st.retryAfter(s.tenants.now())
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeErrorReason(w, http.StatusTooManyRequests, qerr.reason, "%s", qerr.msg)
		return
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests,
			"job queue full (%d jobs); retry later", s.cfg.QueueCapacity)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	status := http.StatusAccepted
	if existed {
		status = http.StatusOK
	}
	doc := j.status()
	writeJSON(w, status, submitResponse{
		ID:      doc.ID,
		State:   doc.State,
		Deduped: existed,
		Cells:   doc.Cells.Total,
		Status:  "/v1/jobs/" + doc.ID,
		Events:  "/v1/jobs/" + doc.ID + "/events",
		Result:  "/v1/jobs/" + doc.ID + "/result",
	})
}

// retryAfterSeconds estimates a Retry-After hint from queue pressure:
// one drained queue slot per running-job completion, so the deeper
// the backlog relative to workers, the longer the hint.
func (s *Server) retryAfterSeconds() int {
	backlog := s.queue.depth()
	per := 2 // seconds; a guess that scales with backlog, not accuracy
	sec := (backlog/s.cfg.Workers + 1) * per
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !s.authorizeJob(w, st, j) {
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	st, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !s.authorizeJob(w, st, j) {
		return
	}
	b, state, terminal := j.resultBytes()
	if !terminal {
		w.Header().Set("Retry-After", "2")
		writeJSON(w, http.StatusAccepted, StatusDoc{ID: j.spec.id, State: state, Cells: j.status().Cells})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// handleCancel cancels a job. On a multi-tenant server a shared
// (deduped) job is only truly canceled when its last owner lets go:
// earlier cancels just withdraw that tenant's interest, so one tenant
// cannot kill a sweep another tenant is still waiting on.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !s.authorizeJob(w, st, j) {
		return
	}
	if st == nil || j.dropOwner(st.t.Name) == 0 {
		s.cancelJob(j)
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleEvents streams the job's progress log as Server-Sent Events.
// The full history replays from the start (or from Last-Event-ID on
// reconnect), then the stream follows the live tail and ends after
// the terminal job.done event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	st, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !s.authorizeJob(w, st, j) {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}

	cursor := 0
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		if n, err := strconv.Atoi(last); err == nil && n > 0 {
			cursor = n
		}
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		events, wake, closed := j.log.snapshotAfter(cursor)
		for _, ev := range events {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.data())
			cursor = ev.Seq
		}
		if len(events) > 0 {
			fl.Flush()
			continue
		}
		if closed {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		case <-s.draining:
			// Drain closes streams promptly so Shutdown is not held
			// open by idle followers; clients reconnect elsewhere.
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics renders the counter set in Prometheus text exposition
// format (hand-written; the API is stable and dependency-free).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var sb strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	ld := func(f *uint64) uint64 { return atomic.LoadUint64(f) }

	c := &s.stats
	counter("entangling_jobs_submitted_total", "Jobs admitted to the queue.", ld(&c.jobsSubmitted))
	counter("entangling_jobs_deduped_total", "Submissions answered by an existing identical job.", ld(&c.jobsDeduped))
	counter("entangling_jobs_rejected_total", "Submissions rejected with 429 (queue full).", ld(&c.jobsRejected))
	counter("entangling_jobs_completed_total", "Jobs finished with every cell successful.", ld(&c.jobsCompleted))
	counter("entangling_jobs_degraded_total", "Jobs finished with typed partial results.", ld(&c.jobsDegraded))
	counter("entangling_jobs_failed_total", "Jobs finished with every cell failed.", ld(&c.jobsFailed))
	counter("entangling_jobs_canceled_total", "Jobs canceled before completion.", ld(&c.jobsCanceled))

	counter("entangling_cells_simulated_total", "Cells resolved by running the simulator.", ld(&c.cellsSimulated))
	counter("entangling_cells_cache_memory_total", "Cells served from the in-process result cache.", ld(&c.cellsCacheMemory))
	counter("entangling_cells_cache_store_total", "Cells served from the durable checkpoint store.", ld(&c.cellsCacheStore))
	counter("entangling_cells_shared_total", "Cells that joined another job's in-flight simulation.", ld(&c.cellsShared))
	counter("entangling_cells_fleet_total", "Cells resolved by a fleet worker (coordinator mode).", ld(&c.cellsFleet))
	counter("entangling_cells_stolen_total", "Fleet cells won by a non-primary worker (steal or failover).", ld(&c.cellsStolen))
	counter("entangling_cells_failed_total", "Cells that produced a typed failure.", ld(&c.cellsFailed))

	counter("entangling_traces_uploaded_total", "Traces ingested via POST /v1/traces.", ld(&c.tracesUploaded))
	counter("entangling_traces_deduped_total", "Trace uploads answered by existing content.", ld(&c.tracesDeduped))
	counter("entangling_traces_rejected_total", "Trace uploads rejected (malformed or over budget).", ld(&c.tracesRejected))

	counter("entangling_auth_failures_total", "Requests rejected 401 (missing or unknown API key).", ld(&c.authFailures))
	counter("entangling_auth_forbidden_total", "Requests rejected 403 (disallowed action).", ld(&c.authForbidden))
	counter("entangling_quota_rejected_total", "Submissions rejected 429 by a tenant quota.", ld(&c.quotaRejected))

	counter("entangling_predictions_served_total", "Approximate-mode cells answered by the model.", ld(&c.predictionsServed))
	counter("entangling_predictions_fallback_total", "Approximate-mode cells that fell back to exact simulation.", ld(&c.predictionsFallback))
	counter("entangling_predictions_refined_total", "Predicted cells later refined by an exact result.", ld(&c.predictionsRefined))
	counter("entangling_predictions_within_interval_total", "Refinements where the exact value fell inside the stated interval.", ld(&c.predictionsWithin))
	counter("entangling_predictions_outside_interval_total", "Refinements where the exact value fell outside the stated interval.", ld(&c.predictionsOutside))
	if s.predictor != nil {
		gauge("entangling_model_examples", "Cells the approximate model has trained on.", s.predictor.Len())
	}

	builds, hits, resident := s.traces.CacheStats()
	counter("entangling_trace_builds_total", "Workload trace materializations performed.", builds)
	counter("entangling_trace_hits_total", "Workload trace cache hits.", hits)
	gauge("entangling_trace_resident", "Workload traces currently resident.", resident)

	s.mu.Lock()
	running, known := s.running, len(s.jobs)
	s.mu.Unlock()
	gauge("entangling_queue_depth", "Jobs admitted but not yet running.", s.queue.depth())
	gauge("entangling_jobs_running", "Jobs currently executing.", running)
	gauge("entangling_jobs_known", "Jobs currently remembered (any state).", known)
	gauge("entangling_goroutines", "Goroutines in the server process.", runtime.NumGoroutine())

	// Per-tenant sections, labeled in Prometheus style. Absent on an
	// open server.
	if s.tenants != nil {
		labeled := func(name, help, typ string) {
			fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		}
		snaps := s.tenants.snapshot()
		labeled("entangling_tenant_jobs_in_flight", "Non-terminal jobs charged to the tenant.", "gauge")
		for _, m := range snaps {
			fmt.Fprintf(&sb, "entangling_tenant_jobs_in_flight{tenant=%q,tier=%q} %d\n", m.Name, m.Tier, m.Inflight)
		}
		labeled("entangling_tenant_jobs_submitted_total", "Jobs admitted for the tenant.", "counter")
		for _, m := range snaps {
			fmt.Fprintf(&sb, "entangling_tenant_jobs_submitted_total{tenant=%q} %d\n", m.Name, m.JobsSubmitted)
		}
		labeled("entangling_tenant_jobs_deduped_total", "Tenant submissions answered by an existing job.", "counter")
		for _, m := range snaps {
			fmt.Fprintf(&sb, "entangling_tenant_jobs_deduped_total{tenant=%q} %d\n", m.Name, m.JobsDeduped)
		}
		labeled("entangling_tenant_jobs_completed_total", "Tenant jobs that reached a terminal state.", "counter")
		for _, m := range snaps {
			fmt.Fprintf(&sb, "entangling_tenant_jobs_completed_total{tenant=%q} %d\n", m.Name, m.JobsCompleted)
		}
		labeled("entangling_tenant_cells_charged_total", "Cells charged against the tenant's rate quota at full price.", "counter")
		for _, m := range snaps {
			fmt.Fprintf(&sb, "entangling_tenant_cells_charged_total{tenant=%q} %d\n", m.Name, m.CellsCharged)
		}
		labeled("entangling_tenant_approx_cells_charged_total", "Cells admitted at the reduced approximate-mode rate (0.1 tokens each).", "counter")
		for _, m := range snaps {
			fmt.Fprintf(&sb, "entangling_tenant_approx_cells_charged_total{tenant=%q} %d\n", m.Name, m.ApproxCellsCharged)
		}
		labeled("entangling_tenant_fallback_cells_charged_total", "Approximate cells that simulated exactly and paid the remaining 0.9 tokens.", "counter")
		for _, m := range snaps {
			fmt.Fprintf(&sb, "entangling_tenant_fallback_cells_charged_total{tenant=%q} %d\n", m.Name, m.FallbackCellsCharged)
		}
		labeled("entangling_tenant_traces_uploaded_total", "Traces the tenant ingested.", "counter")
		for _, m := range snaps {
			fmt.Fprintf(&sb, "entangling_tenant_traces_uploaded_total{tenant=%q} %d\n", m.Name, m.TracesUploaded)
		}
		labeled("entangling_tenant_trace_bytes_used", "Stored trace bytes charged to the tenant.", "gauge")
		for _, m := range snaps {
			fmt.Fprintf(&sb, "entangling_tenant_trace_bytes_used{tenant=%q} %d\n", m.Name, m.TraceBytes)
		}
		labeled("entangling_tenant_rejected_total", "Tenant requests rejected, by reason.", "counter")
		for _, m := range snaps {
			reasons := make([]string, 0, len(m.Rejected))
			for reason := range m.Rejected {
				reasons = append(reasons, reason)
			}
			sort.Strings(reasons)
			for _, reason := range reasons {
				fmt.Fprintf(&sb, "entangling_tenant_rejected_total{tenant=%q,reason=%q} %d\n", m.Name, reason, m.Rejected[reason])
			}
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, sb.String())
}

// Run listens on cfg.Addr and serves until ctx is canceled, then
// drains gracefully: admission stops, queued jobs cancel, running
// jobs get the grace period, the checkpoint store is already durable
// per-cell, and the HTTP server shuts down. Returns nil on a clean
// drain. The bound address is logged (and available via Addr) so
// callers can use ":0".
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.addr.Store(ln.Addr().String())
	s.cfg.Logf("server: listening on %s", ln.Addr())

	s.Start()
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("server: %w", err)
	case <-ctx.Done():
	}

	s.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		hs.Close()
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	return nil
}

// Addr returns the bound listen address once Run has started
// listening ("" before that).
func (s *Server) Addr() string {
	if v := s.addr.Load(); v != nil {
		return v.(string)
	}
	return ""
}
