package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"entangling/internal/faultinject"
)

// This file is the multi-tenant battery: API-key auth, the three
// quotas (jobs in flight, cells/sec, trace bytes), tier-ordered
// admission draining, cross-tenant isolation (no starvation, no
// foreign reads, shared-job cancel semantics) and the per-tenant
// metrics section. Every test runs under startTestServer's leakcheck,
// so -race plus goroutine-baseline assertions hold for the whole
// battery.

const (
	goldKey   = "gold-key-000001"
	bronzeKey = "bronze-key-0001"
)

// tenantFixture is the two-tenant config the battery runs on: a gold
// tenant with fault rights and a bronze tenant without.
func tenantFixture() *TenantsConfig {
	return &TenantsConfig{
		SchemaVersion: TenantsConfigSchemaVersion,
		Tenants: []Tenant{
			{Name: "acme", Key: goldKey, Tier: "gold",
				MaxJobsInFlight: 8, CellsPerSec: 1e9, MaxTraceBytes: 1 << 30, AllowFaults: true},
			{Name: "zeta", Key: bronzeKey, Tier: "bronze",
				MaxJobsInFlight: 8, CellsPerSec: 1e9, MaxTraceBytes: 1 << 30},
		},
	}
}

// tenantTestConfig is testConfig with the fixture tenants loaded.
func tenantTestConfig() Config {
	cfg := testConfig()
	cfg.Tenants = tenantFixture()
	return cfg
}

// doAs performs one authenticated API call and returns status + body.
func doAs(t *testing.T, ts *httptest.Server, key, method, path string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatalf("building %s %s: %v", method, path, err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s %s response: %v", method, path, err)
	}
	return resp.StatusCode, b
}

// errDocOf decodes an error body's message and machine reason.
func errDocOf(t *testing.T, body []byte) (msg, reason string) {
	t.Helper()
	var doc struct {
		Error  string `json:"error"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("decoding error body %q: %v", body, err)
	}
	return doc.Error, doc.Reason
}

// reasonOf decodes the machine-readable reason of an error body.
func reasonOf(t *testing.T, body []byte) string {
	t.Helper()
	_, reason := errDocOf(t, body)
	return reason
}

// submitAs submits a job as the given tenant, requiring admission.
func submitAs(t *testing.T, ts *httptest.Server, key string, req JobRequest) submitResponse {
	t.Helper()
	b, _ := json.Marshal(req)
	status, body := doAs(t, ts, key, "POST", "/v1/jobs", b)
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit as %q: status %d, body %s", key, status, body)
	}
	var sr submitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decoding submit response: %v (%s)", err, body)
	}
	return sr
}

// waitStatusAs polls GET /v1/jobs/{id} with auth until pred holds.
func waitStatusAs(t *testing.T, ts *httptest.Server, key, id string, pred func(StatusDoc) bool) StatusDoc {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, body := doAs(t, ts, key, "GET", "/v1/jobs/"+id, nil)
		if status != http.StatusOK {
			t.Fatalf("GET status as %q: %d (%s)", key, status, body)
		}
		var doc StatusDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("decoding status: %v", err)
		}
		if pred(doc) {
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached the expected status (last: %+v)", id, doc)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// smallJob returns a fast one-cell job; the warmup offset
// distinguishes job identities across calls.
func smallJob(warmupOffset uint64) JobRequest {
	return JobRequest{
		Configurations: []string{"no"},
		Workloads:      []string{"crypto-00"},
		Warmup:         testWarmup + warmupOffset,
		Measure:        testMeasure,
	}
}

// heavyJob returns a one-cell job slow enough (hundreds of
// milliseconds) that tests can observe it mid-flight.
func heavyJob(warmupOffset uint64) JobRequest {
	return JobRequest{
		Configurations: []string{"no"},
		Workloads:      []string{"crypto-00"},
		Warmup:         testWarmup + warmupOffset,
		Measure:        1_500_000,
	}
}

// TestTenantAuthTaxonomy: a multi-tenant server answers 401 with the
// unauthorized reason for missing and unknown keys, on the job API
// and the trace API alike; a configured key is admitted.
func TestTenantAuthTaxonomy(t *testing.T) {
	_, ts := startTestServer(t, tenantTestConfig())

	b, _ := json.Marshal(smallJob(0))
	for _, tc := range []struct {
		name, key, method, path string
		body                    []byte
	}{
		{"submit no key", "", "POST", "/v1/jobs", b},
		{"submit bad key", "who-is-this-123", "POST", "/v1/jobs", b},
		{"trace list no key", "", "GET", "/v1/traces", nil},
		{"status no key", "", "GET", "/v1/jobs/doesnotexist", nil},
		{"events bad key", "nope-nope-nope", "GET", "/v1/jobs/x/events", nil},
	} {
		status, body := doAs(t, ts, tc.key, tc.method, tc.path, tc.body)
		if status != http.StatusUnauthorized {
			t.Fatalf("%s: status %d, want 401 (%s)", tc.name, status, body)
		}
		if r := reasonOf(t, body); r != ReasonUnauthorized {
			t.Fatalf("%s: reason %q, want %q", tc.name, r, ReasonUnauthorized)
		}
	}

	// X-API-Key works as an alternative to the Bearer header.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(b))
	req.Header.Set("X-API-Key", goldKey)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST with X-API-Key: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("X-API-Key submit: status %d, want 202", resp.StatusCode)
	}
}

// TestQuotaJobsInFlight: the in-flight quota rejects the (limit+1)th
// concurrent job with a 429 naming the tenant and the limit, and the
// slot frees once a job reaches a terminal state.
func TestQuotaJobsInFlight(t *testing.T) {
	cfg := tenantTestConfig()
	cfg.Tenants.Tenants[0].MaxJobsInFlight = 1
	_, ts := startTestServer(t, cfg)

	first := submitAs(t, ts, goldKey, heavyJob(0))
	b, _ := json.Marshal(heavyJob(1))
	status, body := doAs(t, ts, goldKey, "POST", "/v1/jobs", b)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429 (%s)", status, body)
	}
	msg, reason := errDocOf(t, body)
	if reason != ReasonQuotaJobs {
		t.Fatalf("over-quota reason %q, want %q", reason, ReasonQuotaJobs)
	}
	if !strings.Contains(msg, `"acme"`) || !strings.Contains(msg, "limit 1") {
		t.Fatalf("quota rejection must name the tenant and its limit, got %s", msg)
	}

	// The rejected submission must not have registered a job: the
	// identical resubmission below is fresh, not a dedupe hit on a
	// zombie.
	waitStatusAs(t, ts, goldKey, first.ID, func(d StatusDoc) bool { return terminalState(d.State) })
	second := submitAs(t, ts, goldKey, heavyJob(1))
	if second.Deduped {
		t.Fatalf("post-release submit was deduped onto a rejected registration")
	}
	waitStatusAs(t, ts, goldKey, second.ID, func(d StatusDoc) bool { return terminalState(d.State) })
}

// TestQuotaCellRate: the cells/sec token bucket admits into debt,
// rejects while in debt with Retry-After, and refills with the
// (injected) clock — no sleeping, fully deterministic.
func TestQuotaCellRate(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	cfg := tenantTestConfig()
	cfg.Tenants.Tenants[0].CellsPerSec = 2 // burst of 2 tokens
	cfg.clock = clock
	_, ts := startTestServer(t, cfg)

	two := JobRequest{
		Configurations: []string{"no", "nextline"},
		Workloads:      []string{"crypto-00"},
		Warmup:         testWarmup,
		Measure:        testMeasure,
	}
	// 2 tokens - 2 cells = 0: admitted, bucket empty.
	submitAs(t, ts, goldKey, two)
	// 0 tokens is not yet debt: admitted, bucket at -1.
	submitAs(t, ts, goldKey, smallJob(1))

	b, _ := json.Marshal(smallJob(2))
	status, body := doAs(t, ts, goldKey, "POST", "/v1/jobs", b)
	if status != http.StatusTooManyRequests {
		t.Fatalf("in-debt submit: status %d, want 429 (%s)", status, body)
	}
	if r := reasonOf(t, body); r != ReasonQuotaCellRate {
		t.Fatalf("in-debt reason %q, want %q", r, ReasonQuotaCellRate)
	}
	if !strings.Contains(string(body), "limit 2 cells/sec") {
		t.Fatalf("cell-rate rejection must name the limit, got %s", body)
	}

	// The frozen clock holds the bucket in debt no matter how fast the
	// test machine is; advancing it refills the burst.
	advance(10 * time.Second)
	submitAs(t, ts, goldKey, smallJob(2))
}

// TestQuotaTraceBytes: cumulative stored trace bytes are capped; the
// rejection names the tenant limit.
func TestQuotaTraceBytes(t *testing.T) {
	cfg := tenantTestConfig()
	cfg.TraceDir = t.TempDir()
	cfg.Tenants.Tenants[0].MaxTraceBytes = 64 // smaller than any real payload
	_, ts := startTestServer(t, cfg)

	payload := encodeWalkerTrace(t, 2_000)
	status, body := doAs(t, ts, goldKey, "POST", "/v1/traces", payload)
	if status != http.StatusCreated {
		t.Fatalf("first upload: status %d (%s)", status, body)
	}

	// The first accepted upload overshot the 64-byte cap (pre-check
	// passes at zero usage, charge lands after); everything further is
	// rejected.
	other := encodeWalkerTrace(t, 2_500)
	status, body = doAs(t, ts, goldKey, "POST", "/v1/traces", other)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota upload: status %d, want 429 (%s)", status, body)
	}
	if r := reasonOf(t, body); r != ReasonQuotaTraceBytes {
		t.Fatalf("over-quota reason %q, want %q", r, ReasonQuotaTraceBytes)
	}
	if !strings.Contains(string(body), "limit 64") {
		t.Fatalf("trace-bytes rejection must name the limit, got %s", body)
	}

	// The other tenant's quota is untouched.
	status, body = doAs(t, ts, bronzeKey, "POST", "/v1/traces", other)
	if status != http.StatusCreated {
		t.Fatalf("bronze upload after acme exhaustion: status %d (%s)", status, body)
	}
}

// TestTierQueueDrainOrder pins the queue's contract directly: strict
// highest-tier-first, FIFO within a tier, capacity shared across
// tiers, and post-close draining.
func TestTierQueueDrainOrder(t *testing.T) {
	q := newTierQueue(5, 3)
	mk := func() *job { return &job{} }
	b1, g1, s1, g2, b2 := mk(), mk(), mk(), mk(), mk()
	for _, p := range []struct {
		j    *job
		tier int
	}{{b1, 2}, {g1, 0}, {s1, 1}, {g2, 0}, {b2, 2}} {
		if !q.push(p.j, p.tier) {
			t.Fatalf("push rejected below capacity")
		}
	}
	if q.push(mk(), 0) {
		t.Fatalf("push above capacity succeeded")
	}
	q.close()
	if q.push(mk(), 0) {
		t.Fatalf("push after close succeeded")
	}
	want := []*job{g1, g2, s1, b1, b2}
	for i, w := range want {
		j, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue empty early", i)
		}
		if j != w {
			t.Fatalf("pop %d: wrong job (tier order violated)", i)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatalf("pop past drain returned a job")
	}
}

// TestTierPriorityUnderLoad: with one worker busy, a gold job
// submitted after a bronze job still runs first — and an admitted
// tenant's job is never starved by another tenant's backlog.
func TestTierPriorityUnderLoad(t *testing.T) {
	cfg := tenantTestConfig()
	cfg.Workers = 1
	cfg.QueueCapacity = 8
	_, ts := startTestServer(t, cfg)

	// Occupy the single worker, then queue bronze before gold.
	blocker := submitAs(t, ts, bronzeKey, heavyJob(100))
	waitStatusAs(t, ts, bronzeKey, blocker.ID, func(d StatusDoc) bool { return d.State == StateRunning })
	bronzeJob := submitAs(t, ts, bronzeKey, heavyJob(101))
	goldJob := submitAs(t, ts, goldKey, heavyJob(102))

	// The gold job reaches a terminal state while the earlier-queued
	// bronze job has not yet finished: the tiers reordered them.
	waitStatusAs(t, ts, goldKey, goldJob.ID, func(d StatusDoc) bool { return terminalState(d.State) })
	doc := waitStatusAs(t, ts, bronzeKey, bronzeJob.ID, func(StatusDoc) bool { return true })
	if terminalState(doc.State) {
		t.Fatalf("bronze job finished before the later gold job: tier order not enforced")
	}
	// The backlog still drains — bronze is delayed, not starved.
	waitStatusAs(t, ts, bronzeKey, bronzeJob.ID, func(d StatusDoc) bool { return terminalState(d.State) })
}

// TestDedupAcrossTenantsIsFreeAndShared: an identical submission from
// a second tenant dedupes onto the live job without charging the
// joiner's quotas, grants co-ownership (status, events, result), and
// keeps the job alive until the last owner cancels.
func TestDedupAcrossTenantsIsFreeAndShared(t *testing.T) {
	cfg := tenantTestConfig()
	s, ts := startTestServer(t, cfg)

	req := heavyJob(200)
	first := submitAs(t, ts, goldKey, req)
	second := submitAs(t, ts, bronzeKey, req)
	if !second.Deduped || second.ID != first.ID {
		t.Fatalf("identical submission did not dedupe (first %s, second %+v)", first.ID, second)
	}

	// The joiner paid nothing: no in-flight slot, no cell tokens.
	zeta := s.tenants.byName["zeta"]
	zeta.mu.Lock()
	inflight, charged, deduped := zeta.inflight, zeta.cellsCharged, zeta.jobsDeduped
	zeta.mu.Unlock()
	if inflight != 0 || charged != 0 {
		t.Fatalf("deduped join charged the joiner: inflight %d, cells %d", inflight, charged)
	}
	if deduped != 1 {
		t.Fatalf("joiner's dedupe counter = %d, want 1", deduped)
	}

	// Both owners are listed; both may read.
	doc := waitStatusAs(t, ts, bronzeKey, first.ID, func(StatusDoc) bool { return true })
	if len(doc.Tenants) != 2 || doc.Tenants[0] != "acme" || doc.Tenants[1] != "zeta" {
		t.Fatalf("status owners = %v, want [acme zeta]", doc.Tenants)
	}

	// One owner canceling withdraws their interest but does not kill
	// the shared job — and the canceler loses read access.
	status, body := doAs(t, ts, goldKey, "DELETE", "/v1/jobs/"+first.ID, nil)
	if status != http.StatusOK {
		t.Fatalf("first cancel: status %d (%s)", status, body)
	}
	doc = waitStatusAs(t, ts, bronzeKey, first.ID, func(StatusDoc) bool { return true })
	if doc.State == StateCanceled {
		t.Fatalf("first owner's cancel killed a job the second owner still wants")
	}
	if status, _ := doAs(t, ts, goldKey, "GET", "/v1/jobs/"+first.ID, nil); status != http.StatusForbidden {
		t.Fatalf("canceled-out owner can still read the job: status %d", status)
	}

	// The last owner's cancel truly cancels (unless the job already
	// finished, a legitimate end state for this race). The canceler no
	// longer owns the job, so the terminal state is observed in-process.
	status, body = doAs(t, ts, bronzeKey, "DELETE", "/v1/jobs/"+first.ID, nil)
	if status != http.StatusOK {
		t.Fatalf("second cancel: status %d (%s)", status, body)
	}
	j, ok := s.lookup(first.ID)
	if !ok {
		t.Fatalf("job %s vanished after cancel", first.ID)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !terminalState(j.status().State) {
		if time.Now().After(deadline) {
			t.Fatalf("job never reached a terminal state after last-owner cancel (state %q)", j.status().State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := j.status().State; st != StateCanceled && st != StateCompleted {
		t.Fatalf("after last-owner cancel: state %q", st)
	}
}

// TestForeignJobForbidden: a tenant that neither submitted nor joined
// a job gets 403 with the forbidden reason on every read and on
// cancel — and the cancel must not disturb the job.
func TestForeignJobForbidden(t *testing.T) {
	_, ts := startTestServer(t, tenantTestConfig())

	sub := submitAs(t, ts, goldKey, heavyJob(300))
	for _, path := range []string{
		"/v1/jobs/" + sub.ID,
		"/v1/jobs/" + sub.ID + "/result",
		"/v1/jobs/" + sub.ID + "/events",
	} {
		status, body := doAs(t, ts, bronzeKey, "GET", path, nil)
		if status != http.StatusForbidden {
			t.Fatalf("GET %s as non-owner: status %d, want 403 (%s)", path, status, body)
		}
		if r := reasonOf(t, body); r != ReasonForbidden {
			t.Fatalf("GET %s reason %q, want %q", path, r, ReasonForbidden)
		}
	}
	status, body := doAs(t, ts, bronzeKey, "DELETE", "/v1/jobs/"+sub.ID, nil)
	if status != http.StatusForbidden {
		t.Fatalf("foreign cancel: status %d, want 403 (%s)", status, body)
	}
	doc := waitStatusAs(t, ts, goldKey, sub.ID, func(d StatusDoc) bool { return terminalState(d.State) })
	if doc.State == StateCanceled {
		t.Fatalf("foreign cancel canceled the job")
	}
}

// TestFaultPlanRequiresGrant: fault_plan submissions are 403 for
// tenants without allow_faults even on a fault-enabled server, and
// accepted for tenants with the grant.
func TestFaultPlanRequiresGrant(t *testing.T) {
	cfg := tenantTestConfig()
	cfg.AllowFaults = true
	_, ts := startTestServer(t, cfg)

	req := smallJob(400)
	req.FaultPlan = &faultinject.Plan{Seed: 7, CellErrorProb: 1, FaultsPerSite: 0}
	b, _ := json.Marshal(req)

	status, body := doAs(t, ts, bronzeKey, "POST", "/v1/jobs", b)
	if status != http.StatusForbidden {
		t.Fatalf("ungranted fault plan: status %d, want 403 (%s)", status, body)
	}
	if r := reasonOf(t, body); r != ReasonForbidden {
		t.Fatalf("ungranted fault plan reason %q, want %q", r, ReasonForbidden)
	}

	sub := submitAs(t, ts, goldKey, req)
	waitStatusAs(t, ts, goldKey, sub.ID, func(d StatusDoc) bool { return terminalState(d.State) })
}

// TestPerTenantMetrics: the /metrics exposition carries per-tenant
// labeled series, including the rejection taxonomy.
func TestPerTenantMetrics(t *testing.T) {
	cfg := tenantTestConfig()
	cfg.Tenants.Tenants[0].MaxJobsInFlight = 1
	_, ts := startTestServer(t, cfg)

	first := submitAs(t, ts, goldKey, heavyJob(500))
	b, _ := json.Marshal(heavyJob(501))
	if status, _ := doAs(t, ts, goldKey, "POST", "/v1/jobs", b); status != http.StatusTooManyRequests {
		t.Fatalf("expected a quota rejection to count, got status %d", status)
	}
	waitStatusAs(t, ts, goldKey, first.ID, func(d StatusDoc) bool { return terminalState(d.State) })

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`entangling_tenant_jobs_submitted_total{tenant="acme"} 1`,
		`entangling_tenant_jobs_in_flight{tenant="acme",tier="gold"} 0`,
		`entangling_tenant_jobs_in_flight{tenant="zeta",tier="bronze"} 0`,
		fmt.Sprintf(`entangling_tenant_rejected_total{tenant="acme",reason=%q} 1`, ReasonQuotaJobs),
		"entangling_quota_rejected_total 1",
		"entangling_auth_failures_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q\n%s", want, text)
		}
	}
}

// TestQuotaApproximateDiscount: approximate-mode cells are admitted at
// the reduced approxCellCost rate, every cell that falls back to exact
// simulation posts the remaining 1-approxCellCost tokens, and served
// predictions never pay the difference. The injected frozen clock
// makes the token arithmetic exact — no refill happens mid-test.
func TestQuotaApproximateDiscount(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}

	cfg := tenantTestConfig()
	cfg.Approximate = true
	cfg.Tenants.Tenants[0].CellsPerSec = 2 // acme: burst of 2 tokens
	cfg.clock = clock
	s, ts := startTestServer(t, cfg)

	// Four approximate cells cost 4*0.1 = 0.4 tokens at admission: the
	// 2-token burst admits them with room to spare, where four exact
	// cells would have drained it straight into debt.
	sub := submitAs(t, ts, goldKey, JobRequest{
		Configurations: []string{"no", "nextline"},
		Workloads:      []string{"crypto-00", "int-00"},
		Warmup:         testWarmup,
		Measure:        testMeasure,
		Mode:           ModeApproximate,
		MaxRelErr:      testBudget,
	})
	waitStatusAs(t, ts, goldKey, sub.ID, func(d StatusDoc) bool { return terminalState(d.State) })

	// The model is untrained, so all four cells simulated after all and
	// each posted the remaining 0.9 tokens: 2 - 4*0.1 - 4*0.9 = -2.
	acme := s.tenants.byName["acme"]
	acme.mu.Lock()
	tokens, approxCharged, fallbackCharged := acme.tokens, acme.approxCellsCharged, acme.fallbackCellsCharged
	acme.mu.Unlock()
	if approxCharged != 4 || fallbackCharged != 4 {
		t.Fatalf("approx/fallback cells charged = %d/%d, want 4/4", approxCharged, fallbackCharged)
	}
	if math.Abs(tokens-(-2)) > 1e-9 {
		t.Fatalf("token balance %v after four fallbacks, want -2", tokens)
	}

	// The fallback charges left the bucket in debt, so the next
	// submission is rate-limited even though its own admission price is
	// tiny: the discount defers the cost, it does not waive it.
	b, _ := json.Marshal(smallJob(700))
	status, body := doAs(t, ts, goldKey, "POST", "/v1/jobs", b)
	if status != http.StatusTooManyRequests {
		t.Fatalf("post-fallback submit: status %d, want 429 (%s)", status, body)
	}
	if r := reasonOf(t, body); r != ReasonQuotaCellRate {
		t.Fatalf("post-fallback reason %q, want %q", r, ReasonQuotaCellRate)
	}

	// Train the server-side model through zeta's exact jobs, then query
	// held-out cells approximately: served predictions pay only the
	// discounted admission, never the fallback difference.
	for _, w := range trainWarmups {
		tr := submitAs(t, ts, bronzeKey, JobRequest{
			Configurations: approxConfigs,
			Workloads:      approxWorkloads,
			Warmup:         w,
			Measure:        testMeasure,
		})
		waitStatusAs(t, ts, bronzeKey, tr.ID, func(d StatusDoc) bool { return terminalState(d.State) })
	}
	q := submitAs(t, ts, bronzeKey, JobRequest{
		Configurations: approxConfigs,
		Workloads:      approxWorkloads,
		Warmup:         queryWarmup,
		Measure:        testMeasure,
		Mode:           ModeApproximate,
		MaxRelErr:      testBudget,
	})
	waitStatusAs(t, ts, bronzeKey, q.ID, func(d StatusDoc) bool { return terminalState(d.State) })

	cells := uint64(len(approxConfigs) * len(approxWorkloads))
	zeta := s.tenants.byName["zeta"]
	zeta.mu.Lock()
	zApprox, zFallback := zeta.approxCellsCharged, zeta.fallbackCellsCharged
	zeta.mu.Unlock()
	if zApprox != cells {
		t.Fatalf("zeta approx cells charged = %d, want %d", zApprox, cells)
	}
	if zFallback != 0 {
		t.Fatalf("served predictions posted fallback charges: %d cells", zFallback)
	}

	// /metrics carries the discounted-admission ledger per tenant.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(metricsBody)
	for _, want := range []string{
		`entangling_tenant_approx_cells_charged_total{tenant="acme"} 4`,
		`entangling_tenant_fallback_cells_charged_total{tenant="acme"} 4`,
		fmt.Sprintf(`entangling_tenant_approx_cells_charged_total{tenant="zeta"} %d`, cells),
		`entangling_tenant_fallback_cells_charged_total{tenant="zeta"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q\n%s", want, text)
		}
	}
}

// TestOpenModeUnchanged: without a tenants config the server stays
// open — no auth headers needed, no Tenants field in status docs (the
// PR 4 document shape, byte-compatible).
func TestOpenModeUnchanged(t *testing.T) {
	_, ts := startTestServer(t, testConfig())
	sr := submitOK(t, ts, smallJob(600))
	doc := waitStatus(t, ts, sr.ID, func(d StatusDoc) bool { return terminalState(d.State) })
	if doc.Tenants != nil {
		t.Fatalf("open-mode status doc grew a tenants field: %v", doc.Tenants)
	}
	raw, _ := json.Marshal(doc)
	if strings.Contains(string(raw), "tenants") {
		t.Fatalf("open-mode status JSON mentions tenants: %s", raw)
	}
}
