package server

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzTenantsConfigDecode hardens the tenants-file parser: arbitrary
// bytes must never panic, and any input the parser accepts must
// satisfy every validation invariant (positive quotas, usable keys,
// known tiers, unique identities) — the file is operator-supplied and
// gates all of admission control.
func FuzzTenantsConfigDecode(f *testing.F) {
	valid := `{
	  "schema_version": 1,
	  "tenants": [
	    {"name": "acme", "key": "acme-key-0001", "tier": "gold",
	     "max_jobs_in_flight": 4, "cells_per_sec": 100, "max_trace_bytes": 1048576,
	     "allow_faults": true},
	    {"name": "zeta", "key": "zeta-key-0001", "tier": "bronze",
	     "max_jobs_in_flight": 2, "cells_per_sec": 10, "max_trace_bytes": 65536}
	  ]
	}`
	f.Add([]byte(valid))
	// Unknown fields must be refused, not ignored: a typoed quota key
	// silently ignored is a quota silently unenforced.
	f.Add([]byte(`{"schema_version":1,"tenants":[{"name":"a","key":"12345678","tier":"bronze","max_jobs_in_flite":4,"cells_per_sec":1,"max_trace_bytes":1}]}`))
	// Zero and negative quotas must be refused.
	f.Add([]byte(`{"schema_version":1,"tenants":[{"name":"a","key":"12345678","max_jobs_in_flight":0,"cells_per_sec":1,"max_trace_bytes":1}]}`))
	f.Add([]byte(`{"schema_version":1,"tenants":[{"name":"a","key":"12345678","max_jobs_in_flight":4,"cells_per_sec":-1,"max_trace_bytes":1}]}`))
	f.Add([]byte(`{"schema_version":1,"tenants":[{"name":"a","key":"12345678","max_jobs_in_flight":4,"cells_per_sec":1,"max_trace_bytes":-5}]}`))
	// NaN smuggling via JSON string is impossible, but "1e999" (inf
	// overflow), short keys, duplicate names/keys and trailing data are
	// all real operator typos.
	f.Add([]byte(`{"schema_version":1,"tenants":[{"name":"a","key":"12345678","max_jobs_in_flight":4,"cells_per_sec":1e999,"max_trace_bytes":1}]}`))
	f.Add([]byte(`{"schema_version":1,"tenants":[{"name":"a","key":"short","max_jobs_in_flight":4,"cells_per_sec":1,"max_trace_bytes":1}]}`))
	f.Add([]byte(`{"schema_version":1,"tenants":[]}{"extra":"doc"}`))
	f.Add([]byte(`{"schema_version":2,"tenants":[]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseTenantsConfig(data)
		if err != nil {
			return
		}
		// Accepted inputs must be fully validated…
		if cfg.SchemaVersion != TenantsConfigSchemaVersion {
			t.Fatalf("accepted schema_version %d", cfg.SchemaVersion)
		}
		seenName := make(map[string]bool)
		seenKey := make(map[string]bool)
		for _, tn := range cfg.Tenants {
			if tn.Name == "" || len(tn.Key) < 8 {
				t.Fatalf("accepted tenant with unusable identity: %+v", tn)
			}
			if tn.MaxJobsInFlight <= 0 || !(tn.CellsPerSec > 0) || tn.MaxTraceBytes <= 0 {
				t.Fatalf("accepted tenant with non-positive quota: %+v", tn)
			}
			if seenName[tn.Name] || seenKey[tn.Key] {
				t.Fatalf("accepted duplicate tenant identity: %+v", tn)
			}
			seenName[tn.Name] = true
			seenKey[tn.Key] = true
		}
		// …usable to build a server…
		if _, err := newTenants(cfg, nil, nil); err != nil {
			t.Fatalf("validated config rejected by newTenants: %v", err)
		}
		// …and round-trippable: re-marshaling a validated config and
		// re-parsing it must accept and agree.
		out, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("re-marshaling validated config: %v", err)
		}
		again, err := ParseTenantsConfig(out)
		if err != nil {
			t.Fatalf("re-parsing marshaled config: %v (%s)", err, out)
		}
		if len(again.Tenants) != len(cfg.Tenants) {
			t.Fatalf("round trip changed tenant count: %d != %d", len(again.Tenants), len(cfg.Tenants))
		}
	})
}

// TestTenantsConfigRejections pins the exact refusals the fuzz seeds
// rely on, with readable errors.
func TestTenantsConfigRejections(t *testing.T) {
	base := func(mut func(*TenantsConfig)) *TenantsConfig {
		c := tenantFixture()
		mut(c)
		return c
	}
	for _, tc := range []struct {
		name    string
		cfg     *TenantsConfig
		wantSub string
	}{
		{"wrong schema", base(func(c *TenantsConfig) { c.SchemaVersion = 99 }), "schema_version"},
		{"zero jobs quota", base(func(c *TenantsConfig) { c.Tenants[0].MaxJobsInFlight = 0 }), "max_jobs_in_flight"},
		{"negative cell rate", base(func(c *TenantsConfig) { c.Tenants[0].CellsPerSec = -3 }), "cells_per_sec"},
		{"zero trace bytes", base(func(c *TenantsConfig) { c.Tenants[0].MaxTraceBytes = 0 }), "max_trace_bytes"},
		{"short key", base(func(c *TenantsConfig) { c.Tenants[0].Key = "short" }), "key"},
		{"dup name", base(func(c *TenantsConfig) { c.Tenants[1].Name = c.Tenants[0].Name }), "duplicate"},
		{"dup key", base(func(c *TenantsConfig) { c.Tenants[1].Key = c.Tenants[0].Key }), "already assigned"},
		{"unknown tier", base(func(c *TenantsConfig) { c.Tenants[0].Tier = "platinum" }), "tier"},
	} {
		err := tc.cfg.Validate()
		if err == nil {
			t.Fatalf("%s: validated", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
	if err := tenantFixture().Validate(); err != nil {
		t.Fatalf("fixture config rejected: %v", err)
	}
}
