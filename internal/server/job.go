package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
	"strings"
	"sync"

	"entangling/internal/harness"
)

// Job states. queued and running are transient; the other four are
// terminal. A degraded job finished with typed per-cell failures but
// carries every completed cell's metrics — partial results are a
// first-class outcome, not an error page.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateCompleted = "completed"
	StateDegraded  = "degraded"
	StateFailed    = "failed"
	StateCanceled  = "canceled"
)

// terminalState reports whether a job in state s has finished.
func terminalState(s string) bool {
	switch s {
	case StateCompleted, StateDegraded, StateFailed, StateCanceled:
		return true
	}
	return false
}

// CellCounts summarizes how a job's cells resolved.
type CellCounts struct {
	Total int `json:"total"`
	Done  int `json:"done"`
	// Result provenance (sums to Done - Failed).
	Simulated   int `json:"simulated"`
	CacheMemory int `json:"cache_memory"`
	CacheStore  int `json:"cache_store"`
	Shared      int `json:"shared"`
	// Fleet and Stolen count cells resolved by fleet workers
	// (coordinator mode only); Stolen is the subset won by a
	// non-primary worker after a steal deadline or failover.
	Fleet  int `json:"fleet,omitempty"`
	Stolen int `json:"stolen,omitempty"`
	// Predicted counts cells answered by the model (approximate mode
	// only); Fallback counts approximate-mode cells that had to
	// simulate exactly (interval too wide or model not ready). A
	// fallback cell is also counted under its exact provenance above.
	Predicted int `json:"predicted,omitempty"`
	Fallback  int `json:"fallback,omitempty"`
	Failed    int `json:"failed"`
}

// FailedCell is the typed record of one cell that produced no result.
type FailedCell struct {
	Config   string `json:"config"`
	Workload string `json:"workload"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
	Canceled bool   `json:"canceled"`
}

// StatusDoc is the GET /v1/jobs/{id} body. Tenants lists the owners
// (submitter plus deduped joiners) on authenticated servers; it is
// absent in open mode so single-tenant deployments see the PR 4
// document unchanged.
type StatusDoc struct {
	ID      string     `json:"id"`
	State   string     `json:"state"`
	Cells   CellCounts `json:"cells"`
	Warmup  uint64     `json:"warmup"`
	Measure uint64     `json:"measure"`
	Tenants []string   `json:"tenants,omitempty"`
}

// MetricBand is one metric's approximate answer: the point estimate
// with its conformal prediction interval.
type MetricBand struct {
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
}

// PredictedCell is one cell answered by the model instead of the
// simulator, with its per-metric error bars and the training history
// size the answer was computed from.
type PredictedCell struct {
	Config          string       `json:"config"`
	Workload        string       `json:"workload"`
	Bands           []MetricBand `json:"bands"`
	TrainSize       int          `json:"train_size"`
	CalibrationSize int          `json:"calibration_size"`
}

// ResultDoc is the GET /v1/jobs/{id}/result body: the counts, the
// typed failures, and the full metrics export with its fingerprint.
// MetricsSHA256 hashes exactly the bytes harness.WriteMetricsJSON
// produces for this sweep, so it is directly comparable with the
// metrics_sha256 of a BENCH_*.json point measured on the same cells.
//
// On a mode=approximate job, Predictions carries the model-answered
// cells and Metrics/MetricsSHA256 cover only the cells that actually
// simulated (the fallbacks) — a predicted value is never mixed into
// the exact metrics export or its fingerprint.
type ResultDoc struct {
	ID            string          `json:"id"`
	State         string          `json:"state"`
	Cells         CellCounts      `json:"cells"`
	Approximate   bool            `json:"approximate,omitempty"`
	MaxRelErr     float64         `json:"max_rel_err,omitempty"`
	Predictions   []PredictedCell `json:"predictions,omitempty"`
	FailedCells   []FailedCell    `json:"failed_cells,omitempty"`
	MetricsSHA256 string          `json:"metrics_sha256"`
	Metrics       json.RawMessage `json:"metrics"`
}

// job is one submitted sweep moving through the queue.
type job struct {
	spec *jobSpec
	log  *eventLog

	// ctx is canceled by DELETE /v1/jobs/{id} and by server drain;
	// cells abandon with typed canceled errors.
	ctx    context.Context
	cancel context.CancelFunc

	// payer is the tenant whose in-flight slot this job holds (nil in
	// open mode or for jobs admitted before tenancy was configured);
	// written once under the server's registration lock, released by
	// countTerminal.
	payer *tenantState

	mu      sync.Mutex
	state   string
	counts  CellCounts
	results map[string]map[string]harness.RunResult
	// predictions holds the model-answered cells of an approximate
	// job; kept apart from results so predicted values can never reach
	// the exact metrics export. Sorted canonically at finalize.
	predictions []PredictedCell
	failed      []FailedCell
	// owners are the tenants allowed to read and cancel this job: the
	// submitter plus every tenant whose identical submission deduped
	// onto it. Empty in open mode.
	owners map[string]bool
	// result holds the rendered ResultDoc bytes once terminal.
	result []byte
	// done is closed when the job reaches a terminal state.
	done chan struct{}
}

func newJob(spec *jobSpec) *job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		spec:    spec,
		log:     newEventLog(),
		ctx:     ctx,
		cancel:  cancel,
		state:   StateQueued,
		results: make(map[string]map[string]harness.RunResult, len(spec.cfgs)),
		done:    make(chan struct{}),
	}
	j.counts.Total = spec.cellCount()
	for _, c := range spec.cfgs {
		j.results[c.Name] = make(map[string]harness.RunResult, len(spec.specs))
	}
	j.log.append(Event{Type: EventJobQueued, Total: j.counts.Total})
	return j
}

// addOwner grants a tenant read/cancel access to this job.
func (j *job) addOwner(name string) {
	j.mu.Lock()
	if j.owners == nil {
		j.owners = make(map[string]bool, 1)
	}
	j.owners[name] = true
	j.mu.Unlock()
}

// isOwner reports whether the tenant may read or cancel this job.
func (j *job) isOwner(name string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.owners[name]
}

// dropOwner revokes one tenant's interest and reports how many owners
// remain — a shared (deduped) job is only canceled when its last
// owner lets go, so one tenant canceling cannot kill a sweep another
// tenant is still waiting on.
func (j *job) dropOwner(name string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.owners, name)
	return len(j.owners)
}

// ownerNames snapshots the owner set in sorted order.
func (j *job) ownerNames() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return ownerNamesLocked(j.owners)
}

func ownerNamesLocked(owners map[string]bool) []string {
	if len(owners) == 0 {
		return nil
	}
	names := make([]string, 0, len(owners))
	for n := range owners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// start moves a queued job to running; it reports false when the job
// was already finalized (canceled while still in the queue).
func (j *job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.log.append(Event{Type: EventJobStarted, Total: j.counts.Total})
	return true
}

// recordResult stores one completed cell and emits its event.
func (j *job) recordResult(r harness.RunResult, source string, elapsedMS int64) {
	j.mu.Lock()
	j.results[r.Config][r.Workload] = r
	j.counts.Done++
	switch source {
	case SourceSimulated:
		j.counts.Simulated++
	case SourceCacheMemory:
		j.counts.CacheMemory++
	case SourceCacheStore:
		j.counts.CacheStore++
	case SourceShared:
		j.counts.Shared++
	case SourceFleet:
		j.counts.Fleet++
	case SourceFleetStolen:
		j.counts.Fleet++
		j.counts.Stolen++
	}
	done, total := j.counts.Done, j.counts.Total
	j.mu.Unlock()
	j.log.append(Event{
		Type: EventCellFinished, Config: r.Config, Workload: r.Workload,
		Source: source, ElapsedMS: elapsedMS, Done: done, Total: total,
	})
}

// recordPrediction stores one model-answered cell and emits its
// tagged event. The prediction goes into its own slice, never into
// j.results — the exact metrics export cannot see it.
func (j *job) recordPrediction(p PredictedCell, elapsedMS int64) {
	j.mu.Lock()
	j.predictions = append(j.predictions, p)
	j.counts.Done++
	j.counts.Predicted++
	done, total := j.counts.Done, j.counts.Total
	j.mu.Unlock()
	j.log.append(Event{
		Type: EventCellFinished, Config: p.Config, Workload: p.Workload,
		Source: SourcePredicted, ElapsedMS: elapsedMS, Done: done, Total: total,
		Approximate: true, Bands: p.Bands,
	})
}

// noteFallback marks one approximate-mode cell as falling back to
// exact simulation; the cell's result is recorded separately by
// recordResult with its exact provenance.
func (j *job) noteFallback() {
	j.mu.Lock()
	j.counts.Fallback++
	j.mu.Unlock()
}

// recordFailure stores one failed cell and emits its event.
func (j *job) recordFailure(cerr *harness.CellError, elapsedMS int64) {
	fc := FailedCell{
		Config:   cerr.Config,
		Workload: cerr.Workload,
		Attempts: cerr.Attempts,
		Error:    cerr.Error(),
		Canceled: cerr.Canceled(),
	}
	j.mu.Lock()
	j.failed = append(j.failed, fc)
	j.counts.Done++
	j.counts.Failed++
	done, total := j.counts.Done, j.counts.Total
	j.mu.Unlock()
	j.log.append(Event{
		Type: EventCellFailed, Config: fc.Config, Workload: fc.Workload,
		Attempt: fc.Attempts, Error: fc.Error, ElapsedMS: elapsedMS,
		Done: done, Total: total,
	})
}

// finalize computes the terminal state, renders the result document,
// and closes the event log. Idempotent: only the first call decides
// (and reports true); racing calls are no-ops.
func (j *job) finalize() bool {
	j.mu.Lock()
	if terminalState(j.state) {
		j.mu.Unlock()
		return false
	}
	state := StateCompleted
	switch {
	case j.ctx.Err() != nil && j.counts.Done < j.counts.Total:
		// Canceled with cells never attempted (queued jobs, drain).
		state = StateCanceled
	case j.counts.Failed == 0:
	case j.allFailuresCanceled():
		state = StateCanceled
	case j.counts.Failed == j.counts.Total:
		state = StateFailed
	default:
		state = StateDegraded
	}
	j.state = state

	// Cells finish concurrently, so the prediction slice order is
	// scheduling-dependent; canonicalize so the rendered document is a
	// pure function of the answers themselves.
	sort.Slice(j.predictions, func(a, b int) bool {
		if j.predictions[a].Config != j.predictions[b].Config {
			return j.predictions[a].Config < j.predictions[b].Config
		}
		return j.predictions[a].Workload < j.predictions[b].Workload
	})
	metrics := j.metricsBytesLocked()
	sum := sha256.Sum256(metrics)
	doc := ResultDoc{
		ID:            j.spec.id,
		State:         state,
		Cells:         j.counts,
		Approximate:   j.spec.approximate,
		MaxRelErr:     j.spec.maxRelErr,
		Predictions:   j.predictions,
		FailedCells:   j.failed,
		MetricsSHA256: hex.EncodeToString(sum[:]),
		Metrics:       json.RawMessage(metrics),
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(err) // assembled from marshalable parts
	}
	j.result = append(b, '\n')
	counts := j.counts
	j.mu.Unlock()

	j.log.append(Event{Type: EventJobDone, State: state, Done: counts.Done, Total: counts.Total})
	j.log.close()
	close(j.done)
	j.cancel()
	return true
}

func (j *job) allFailuresCanceled() bool {
	for _, f := range j.failed {
		if !f.Canceled {
			return false
		}
	}
	return len(j.failed) > 0
}

// metricsBytesLocked renders the completed cells exactly as
// harness.WriteMetricsJSON serializes a locally-run sweep of the same
// cells: same SuiteResults assembly, same deterministic ordering, so
// the bytes (and their SHA-256) are comparable across transports.
func (j *job) metricsBytesLocked() []byte {
	s := &harness.SuiteResults{Runs: j.results}
	for _, c := range j.spec.cfgs {
		s.ConfigOrder = append(s.ConfigOrder, c.Name)
	}
	for _, w := range j.spec.specs {
		s.WorkloadOrder = append(s.WorkloadOrder, w.Name)
	}
	var sb strings.Builder
	if err := harness.WriteMetricsJSON(&sb, s.Metrics()); err != nil {
		panic(err) // in-memory marshal of a plain struct cannot fail
	}
	return []byte(sb.String())
}

// status snapshots the job for GET /v1/jobs/{id}.
func (j *job) status() StatusDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	return StatusDoc{
		ID:      j.spec.id,
		State:   j.state,
		Cells:   j.counts,
		Warmup:  j.spec.warmup,
		Measure: j.spec.measure,
		Tenants: ownerNamesLocked(j.owners),
	}
}

// resultBytes returns the rendered result document and whether the
// job is terminal.
func (j *job) resultBytes() ([]byte, string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state, terminalState(j.state)
}
