package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"entangling/internal/harness"
	"entangling/internal/trace"
	"entangling/internal/workload"
)

// traceTestConfig is testConfig plus a trace store in a temp dir.
func traceTestConfig(t *testing.T) Config {
	t.Helper()
	cfg := testConfig()
	cfg.TraceDir = filepath.Join(t.TempDir(), "traces")
	return cfg
}

// encodeWalkerTrace materializes n instructions of a synthetic workload
// into an ENTRACE1 payload — the upload fixture.
func encodeWalkerTrace(t *testing.T, n uint64) []byte {
	t.Helper()
	p := workload.Preset(workload.Int)
	p.Name = "upload-fixture"
	p.Seed = 77
	spec := workload.Spec{Name: p.Name, Params: p}
	tr, err := workload.Materialize(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, _ := trace.NewWriter(&buf, false)
	for i := range tr.Instrs {
		if err := w.Write(&tr.Instrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	return buf.Bytes()
}

// uploadTrace POSTs a payload to /v1/traces and returns status + doc.
func uploadTrace(t *testing.T, ts *httptest.Server, payload []byte, format string) (int, traceDoc) {
	t.Helper()
	url := ts.URL + "/v1/traces"
	if format != "" {
		url += "?format=" + format
	}
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST /v1/traces: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var doc traceDoc
	if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("decoding trace doc: %v (%s)", err, body)
		}
	}
	return resp.StatusCode, doc
}

// TestTraceUploadThenSweep is the tentpole E2E: upload a trace, sweep
// it through the job API, and check the exported metrics are
// byte-identical (by SHA) to running the same trace through
// RunSuiteCtx directly — the network path adds nothing and loses
// nothing.
func TestTraceUploadThenSweep(t *testing.T) {
	const traceInstrs = testWarmup + testMeasure + 5_000
	payload := encodeWalkerTrace(t, traceInstrs)
	cfg := traceTestConfig(t)
	_, ts := startTestServer(t, cfg)

	status, doc := uploadTrace(t, ts, payload, "")
	if status != http.StatusCreated {
		t.Fatalf("upload status %d", status)
	}
	if doc.Instructions != traceInstrs || doc.Workload != "trace:"+doc.ID {
		t.Fatalf("upload doc: %+v", doc)
	}

	// Idempotent re-upload dedupes.
	status, again := uploadTrace(t, ts, payload, "")
	if status != http.StatusOK || !again.Deduped || again.ID != doc.ID {
		t.Fatalf("re-upload: status %d doc %+v", status, again)
	}

	// Sweep the uploaded trace.
	req := JobRequest{
		Configurations: []string{"no", "entangling-2k"},
		Workloads:      []string{doc.Workload},
		Warmup:         testWarmup,
		Measure:        testMeasure,
	}
	sr := submitOK(t, ts, req)
	res, _ := waitResult(t, ts, sr.ID)
	if res.State != StateCompleted {
		t.Fatalf("job state %s", res.State)
	}

	// Direct run over the same stored content.
	store, err := trace.OpenStore(cfg.TraceDir)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.TraceSpec(doc.Workload, doc.ID, func() (io.ReadCloser, error) {
		return store.Open(doc.ID)
	})
	var cfgs []harness.Configuration
	for _, c := range harness.KnownConfigurations() {
		if c.Name == "no" || c.Name == "entangling-2k" {
			cfgs = append(cfgs, c)
		}
	}
	suite, err := harness.RunSuiteCtx(context.Background(), []workload.Spec{spec}, cfgs,
		harness.Options{Warmup: testWarmup, Measure: testMeasure, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := harness.WriteMetricsJSON(&buf, suite.Metrics()); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	if want := hex.EncodeToString(sum[:]); res.MetricsSHA256 != want {
		t.Fatalf("uploaded-trace sweep sha %s != direct sha %s", res.MetricsSHA256, want)
	}
}

func TestTraceUploadChampSimFormat(t *testing.T) {
	// A minimal champsim payload: 3 plain 64-byte records.
	raw := make([]byte, 3*64)
	for i, ip := range []uint64{0x1000, 0x1004, 0x1008} {
		for b := 0; b < 8; b++ {
			raw[i*64+b] = byte(ip >> (8 * b))
		}
	}
	_, ts := startTestServer(t, traceTestConfig(t))
	status, doc := uploadTrace(t, ts, raw, "champsim")
	if status != http.StatusCreated || doc.Instructions != 3 || doc.Format != "champsim" {
		t.Fatalf("champsim upload: status %d doc %+v", status, doc)
	}
}

func TestTraceUploadRejections(t *testing.T) {
	cfg := traceTestConfig(t)
	cfg.MaxTraceBytes = 1 << 20
	cfg.Budget.MaxTraceInstrs = 10_000
	_, ts := startTestServer(t, cfg)

	// Malformed: not a trace at all.
	if status, _ := uploadTrace(t, ts, []byte("definitely not a trace"), ""); status != http.StatusBadRequest {
		t.Errorf("garbage upload: status %d, want 400", status)
	}
	// Malformed: valid header, zero-size record.
	bad := append([]byte("ENTRACE1\x00\x00\x00\x00"), 0x40, 0x00, 0x00)
	if status, _ := uploadTrace(t, ts, bad, ""); status != http.StatusBadRequest {
		t.Errorf("zero-size record upload: status %d, want 400", status)
	}
	// Unknown format parameter.
	if status, _ := uploadTrace(t, ts, []byte("x"), "elf"); status != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", status)
	}
	// Over the instruction budget: 413 naming the limit.
	big := encodeWalkerTrace(t, 10_001)
	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over-budget upload: status %d, want 413 (%s)", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("instruction limit of 10000")) {
		t.Errorf("413 body does not name the offending limit: %s", body)
	}
	// Nothing entered the store.
	store, _ := trace.OpenStore(cfg.TraceDir)
	if infos, _ := store.List(); len(infos) != 0 {
		t.Errorf("rejected uploads left %d traces in the store", len(infos))
	}
}

func TestTraceUploadBodyCap(t *testing.T) {
	cfg := traceTestConfig(t)
	cfg.MaxTraceBytes = 4 << 10
	_, ts := startTestServer(t, cfg)
	big := encodeWalkerTrace(t, 50_000) // well past 4 KiB on the wire
	status, _ := uploadTrace(t, ts, big, "")
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", status)
	}
}

func TestTraceEndpointsWithoutStore(t *testing.T) {
	_, ts := startTestServer(t, testConfig()) // no TraceDir
	if status, _ := uploadTrace(t, ts, []byte("x"), ""); status != http.StatusServiceUnavailable {
		t.Errorf("upload without store: status %d, want 503", status)
	}
	req := JobRequest{
		Configurations: []string{"no"},
		Workloads:      []string{"trace:" + string(bytes.Repeat([]byte("a"), 64))},
		Warmup:         100, Measure: 100,
	}
	status, body := postJob(t, ts, req)
	if status != http.StatusBadRequest {
		t.Errorf("trace job without store: status %d (%s)", status, body)
	}
}

func TestTraceListAndStat(t *testing.T) {
	_, ts := startTestServer(t, traceTestConfig(t))
	payload := encodeWalkerTrace(t, 1_000)
	_, doc := uploadTrace(t, ts, payload, "")

	resp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Traces []traceDoc `json:"traces"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil || len(list.Traces) != 1 || list.Traces[0].ID != doc.ID {
		t.Fatalf("list: %+v err=%v", list, err)
	}

	resp, err = http.Get(ts.URL + "/v1/traces/" + doc.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got traceDoc
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.ID != doc.ID || got.Instructions != 1_000 {
		t.Fatalf("stat: %+v", got)
	}

	resp, err = http.Get(ts.URL + "/v1/traces/" + string(bytes.Repeat([]byte("f"), 64)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace stat: status %d, want 404", resp.StatusCode)
	}
}

func TestTraceJobValidation(t *testing.T) {
	_, ts := startTestServer(t, traceTestConfig(t))
	payload := encodeWalkerTrace(t, 5_000)
	_, doc := uploadTrace(t, ts, payload, "")

	// Unknown trace ID.
	req := JobRequest{
		Configurations: []string{"no"},
		Workloads:      []string{"trace:" + string(bytes.Repeat([]byte("0"), 64))},
		Warmup:         100, Measure: 100,
	}
	if status, body := postJob(t, ts, req); status != http.StatusBadRequest ||
		!bytes.Contains(body, []byte("upload it via POST /v1/traces")) {
		t.Errorf("unknown trace job: status %d (%s)", status, body)
	}

	// Window longer than the stored trace.
	req.Workloads = []string{doc.Workload}
	req.Warmup, req.Measure = 4_000, 2_000
	if status, body := postJob(t, ts, req); status != http.StatusBadRequest ||
		!bytes.Contains(body, []byte("exceeds the trace's")) {
		t.Errorf("over-length window: status %d (%s)", status, body)
	}

	// A window that fits is accepted.
	req.Warmup, req.Measure = 2_000, 1_000
	sr := submitOK(t, ts, req)
	res, _ := waitResult(t, ts, sr.ID)
	if res.State != StateCompleted {
		t.Errorf("fitting window failed: %+v", res)
	}
}

// TestTraceMetricsCounters checks /metrics exports the ingest counters.
func TestTraceMetricsCounters(t *testing.T) {
	_, ts := startTestServer(t, traceTestConfig(t))
	payload := encodeWalkerTrace(t, 500)
	uploadTrace(t, ts, payload, "")
	uploadTrace(t, ts, payload, "")                // dedupe
	uploadTrace(t, ts, []byte("garbage-here"), "") // reject

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"entangling_traces_uploaded_total 1",
		"entangling_traces_deduped_total 1",
		"entangling_traces_rejected_total 1",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
