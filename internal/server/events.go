package server

import (
	"encoding/json"
	"sync"
)

// This file implements the per-job progress log behind the SSE
// endpoint. Every lifecycle transition of a job is appended as a
// sequence-numbered event; any number of streaming clients replay the
// log from any position (Last-Event-ID resume) and then follow the
// live tail, so a client that connects late — or reconnects after a
// network blip — sees exactly the same ordered history as one that
// watched from the start.

// Event types, in the order a job can emit them.
const (
	EventJobQueued    = "job.queued"
	EventJobStarted   = "job.started"
	EventCellStarted  = "cell.started"
	EventCellRetried  = "cell.retried"
	EventCellFinished = "cell.finished"
	EventCellFailed   = "cell.failed"
	EventJobDone      = "job.done"
)

// Cell result sources: how a finished cell's result was obtained.
const (
	SourceSimulated   = "simulated"    // this server ran the simulation
	SourceCacheMemory = "cache-memory" // in-process result cache hit
	SourceCacheStore  = "cache-store"  // restored from the checkpoint store
	SourceShared      = "shared"       // joined another job's in-flight resolution
	SourceFleet       = "fleet"        // a fleet worker ran it for this coordinator
	SourceFleetStolen = "fleet-stolen" // a non-primary worker won it (steal or failover)
	SourcePredicted   = "predicted"    // answered by the internal/predict model (approximate mode)
)

// Event is one progress record of a job, serialized as the SSE data
// payload. Seq is the stream position (the SSE id), strictly
// increasing from 1 within a job.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"`

	// Cell identity, set on cell.* events.
	Config   string `json:"config,omitempty"`
	Workload string `json:"workload,omitempty"`
	// Attempt is the 1-based attempt number on cell.retried.
	Attempt int `json:"attempt,omitempty"`
	// Source says where a cell.finished result came from.
	Source string `json:"source,omitempty"`
	// ElapsedMS is the cell's wall-clock on cell.finished/cell.failed.
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
	// Error carries the failure text on cell.failed and failed job.done.
	Error string `json:"error,omitempty"`

	// Done/Total report job progress (cells terminal so far) on cell
	// terminal events and job.done.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// State is the job's terminal state on job.done.
	State string `json:"state,omitempty"`

	// Approximate marks a cell.finished answered by the predictor
	// (Source == SourcePredicted); Bands carries its per-metric
	// prediction intervals. Never set on exact results.
	Approximate bool         `json:"approximate,omitempty"`
	Bands       []MetricBand `json:"bands,omitempty"`
}

func (e Event) data() []byte {
	b, err := json.Marshal(e)
	if err != nil {
		panic(err) // plain struct of scalars cannot fail to marshal
	}
	return b
}

// eventLog is an append-only, fan-out event sequence. Appends assign
// Seq; readers poll snapshotAfter and block on the returned wake
// channel, which is closed (and replaced) on every append — a
// broadcast without per-subscriber bookkeeping, so an abandoned SSE
// client leaks nothing.
type eventLog struct {
	mu     sync.Mutex
	events []Event
	wake   chan struct{}
	closed bool
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

// append records the event, assigning its sequence number.
func (l *eventLog) append(e Event) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	e.Seq = len(l.events) + 1
	l.events = append(l.events, e)
	close(l.wake)
	l.wake = make(chan struct{})
	l.mu.Unlock()
}

// close marks the log complete (the job reached a terminal state and
// will emit nothing further) and wakes every waiting reader.
func (l *eventLog) close() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.wake)
		l.wake = make(chan struct{})
	}
	l.mu.Unlock()
}

// snapshotAfter returns the events with Seq > after, a channel that is
// closed on the next append (valid only when no events were returned),
// and whether the log is complete.
func (l *eventLog) snapshotAfter(after int) ([]Event, <-chan struct{}, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var tail []Event
	if after < len(l.events) {
		if after < 0 {
			after = 0
		}
		tail = l.events[after:]
	}
	return tail, l.wake, l.closed
}
