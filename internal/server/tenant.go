package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// This file is the multi-tenant admission layer: API-key
// authentication, per-tenant quotas (jobs in flight, cells per
// second, cumulative trace bytes) and priority tiers for the
// admission queue. A server started without a tenants config runs
// open — no auth, no quotas, one default tier — exactly the PR 4
// behavior, so every single-tenant deployment and test is untouched.
// With a config loaded, every /v1 request must present a known API
// key; the typed rejection taxonomy is
//
//	401 unauthorized      missing or unknown API key
//	403 forbidden         known tenant, disallowed action (foreign
//	                      job, fault plan without allow_faults)
//	429 quota_*           the named tenant quota is exhausted
//
// and every rejection names the tenant limit it enforced, so a
// client (and the loadgen error taxonomy) can tell a full queue from
// an exhausted quota without parsing prose.

// TenantsConfigSchemaVersion identifies the tenants-file layout.
const TenantsConfigSchemaVersion = 1

// minAPIKeyLen rejects trivially guessable keys at config load.
const minAPIKeyLen = 8

// Tenant is one API principal: its key, its scheduling tier, and its
// quotas. All three quotas are required and must be positive — an
// unlimited tenant is expressed by a large number, not a zero that is
// one typo away from "reject everything".
type Tenant struct {
	// Name identifies the tenant in metrics, logs and error bodies.
	Name string `json:"name"`
	// Key is the API key presented as "Authorization: Bearer <key>"
	// or "X-API-Key: <key>".
	Key string `json:"key"`
	// Tier names the admission priority tier (must be one of the
	// configured tiers; empty means the lowest tier).
	Tier string `json:"tier,omitempty"`

	// MaxJobsInFlight caps this tenant's jobs in non-terminal states
	// (queued + running).
	MaxJobsInFlight int `json:"max_jobs_in_flight"`
	// CellsPerSec is the sustained admission rate in cells per
	// second, enforced by a token bucket charged at submission with
	// the job's cell count. The bucket holds one second of burst and
	// admits into debt, so a single job larger than the burst is
	// admitted and the debt delays the tenant's next admission.
	CellsPerSec float64 `json:"cells_per_sec"`
	// MaxTraceBytes caps the cumulative stored bytes of this
	// tenant's accepted trace uploads (deduped re-uploads are free).
	MaxTraceBytes int64 `json:"max_trace_bytes"`

	// AllowFaults permits this tenant to submit fault_plan jobs when
	// the server itself runs with fault injection enabled. Without
	// it, a fault_plan submission is a 403.
	AllowFaults bool `json:"allow_faults,omitempty"`
}

// TierSpec is one admission tier: jobs from higher-weight tiers are
// always dequeued before lower-weight ones.
type TierSpec struct {
	Name   string `json:"name"`
	Weight int    `json:"weight"`
}

// DefaultTiers is the tier lineup used when a tenants config does not
// declare its own.
func DefaultTiers() []TierSpec {
	return []TierSpec{
		{Name: "gold", Weight: 100},
		{Name: "silver", Weight: 10},
		{Name: "bronze", Weight: 1},
	}
}

// TenantsConfig is the -tenants-file document.
type TenantsConfig struct {
	SchemaVersion int        `json:"schema_version"`
	Tiers         []TierSpec `json:"tiers,omitempty"`
	Tenants       []Tenant   `json:"tenants"`
}

// ParseTenantsConfig decodes and validates a tenants-file document.
// Unknown fields, trailing data, duplicate names or keys, unknown
// tiers, and zero or negative quotas are all rejected — a quota typo
// must fail loudly at boot, not silently admit the world.
func ParseTenantsConfig(data []byte) (TenantsConfig, error) {
	var cfg TenantsConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return TenantsConfig{}, fmt.Errorf("tenants config: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return TenantsConfig{}, errors.New("tenants config: trailing data after JSON document")
	}
	if err := cfg.Validate(); err != nil {
		return TenantsConfig{}, err
	}
	return cfg, nil
}

// LoadTenantsFile reads and parses a tenants config from disk.
func LoadTenantsFile(path string) (TenantsConfig, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return TenantsConfig{}, fmt.Errorf("tenants config: %w", err)
	}
	return ParseTenantsConfig(b)
}

// Validate reports the first structural problem with the config.
func (c TenantsConfig) Validate() error {
	if c.SchemaVersion != TenantsConfigSchemaVersion {
		return fmt.Errorf("tenants config: schema_version %d, want %d", c.SchemaVersion, TenantsConfigSchemaVersion)
	}
	tiers := c.Tiers
	if len(tiers) == 0 {
		tiers = DefaultTiers()
	}
	tierNames := make(map[string]bool, len(tiers))
	for _, tr := range tiers {
		if tr.Name == "" {
			return errors.New("tenants config: tier with empty name")
		}
		if tr.Weight <= 0 {
			return fmt.Errorf("tenants config: tier %q: weight %d must be positive", tr.Name, tr.Weight)
		}
		if tierNames[tr.Name] {
			return fmt.Errorf("tenants config: duplicate tier %q", tr.Name)
		}
		tierNames[tr.Name] = true
	}
	if len(c.Tenants) == 0 {
		return errors.New("tenants config: no tenants")
	}
	names := make(map[string]bool, len(c.Tenants))
	keys := make(map[string]bool, len(c.Tenants))
	for _, t := range c.Tenants {
		if t.Name == "" {
			return errors.New("tenants config: tenant with empty name")
		}
		if names[t.Name] {
			return fmt.Errorf("tenants config: duplicate tenant %q", t.Name)
		}
		names[t.Name] = true
		if len(t.Key) < minAPIKeyLen {
			return fmt.Errorf("tenants config: tenant %q: key shorter than %d characters", t.Name, minAPIKeyLen)
		}
		if keys[t.Key] {
			return fmt.Errorf("tenants config: tenant %q: key already assigned to another tenant", t.Name)
		}
		keys[t.Key] = true
		if t.Tier != "" && !tierNames[t.Tier] {
			return fmt.Errorf("tenants config: tenant %q: unknown tier %q", t.Name, t.Tier)
		}
		if t.MaxJobsInFlight <= 0 {
			return fmt.Errorf("tenants config: tenant %q: max_jobs_in_flight %d must be positive", t.Name, t.MaxJobsInFlight)
		}
		if !(t.CellsPerSec > 0) { // rejects zero, negatives and NaN
			return fmt.Errorf("tenants config: tenant %q: cells_per_sec %v must be positive", t.Name, t.CellsPerSec)
		}
		if t.MaxTraceBytes <= 0 {
			return fmt.Errorf("tenants config: tenant %q: max_trace_bytes %d must be positive", t.Name, t.MaxTraceBytes)
		}
	}
	return nil
}

// quotaError is a typed quota rejection: which tenant, which limit,
// and the machine-readable reason for the error taxonomy.
type quotaError struct {
	tenant string
	reason string // one of the Reason* constants
	msg    string
}

func (e *quotaError) Error() string { return e.msg }

// Machine-readable rejection reasons carried in every non-2xx body's
// "reason" field. Clients (and the loadgen taxonomy) switch on these
// instead of parsing prose.
const (
	ReasonUnauthorized    = "unauthorized"
	ReasonForbidden       = "forbidden"
	ReasonQueueFull       = "queue_full"
	ReasonQuotaJobs       = "quota_jobs_in_flight"
	ReasonQuotaCellRate   = "quota_cells_per_sec"
	ReasonQuotaTraceBytes = "quota_trace_bytes"
	ReasonDraining        = "draining"
	ReasonBadRequest      = "bad_request"
	ReasonNotFound        = "not_found"
	ReasonTooLarge        = "too_large"
	ReasonInternal        = "internal"
	ReasonUnavailable     = "unavailable"
)

// tenantState is one tenant's runtime ledger. All fields are guarded
// by mu; the token bucket uses the set's injectable clock so the
// battery can test rate exhaustion without sleeping.
type tenantState struct {
	t    Tenant
	tier int // admission tier index (0 = highest priority)

	mu         sync.Mutex
	inflight   int     // non-terminal jobs
	tokens     float64 // cells/sec bucket, may go negative (debt)
	lastRefill time.Time

	traceBytes int64 // cumulative accepted upload bytes

	// Counters for the per-tenant /metrics section.
	jobsSubmitted uint64
	jobsDeduped   uint64
	jobsCompleted uint64
	cellsCharged  uint64
	// approxCellsCharged counts cells admitted at the reduced
	// approximate rate (approxCellCost tokens each instead of 1);
	// fallbackCellsCharged counts approximate cells that simulated
	// after all and paid the remaining 1-approxCellCost tokens.
	approxCellsCharged   uint64
	fallbackCellsCharged uint64
	tracesUploaded       uint64
	rejected             map[string]uint64 // by Reason*
}

// approxCellCost is the cells/sec token price of an approximate-mode
// cell at admission, as a fraction of an exact cell's price of 1. A
// model answer skips simulation entirely, so it is charged this
// discounted rate; a cell that then falls back to exact simulation
// pays the remaining 1-approxCellCost via chargeFallback.
const approxCellCost = 0.1

// tenants is the server's tenant table: key → state, plus the tier
// lineup. Nil *tenants means the server runs open.
type tenants struct {
	byKey  map[string]*tenantState
	byName map[string]*tenantState
	tiers  []TierSpec // sorted by weight, descending
	now    func() time.Time
}

// newTenants builds the runtime table from a validated config.
// tierWeights, when non-nil, overrides the config's tier weights
// (the -tier-weights flag).
func newTenants(cfg TenantsConfig, tierWeights map[string]int, now func() time.Time) (*tenants, error) {
	if now == nil {
		now = time.Now
	}
	tiers := cfg.Tiers
	if len(tiers) == 0 {
		tiers = DefaultTiers()
	}
	tiers = append([]TierSpec(nil), tiers...)
	for name, w := range tierWeights {
		if w <= 0 {
			return nil, fmt.Errorf("tenants: tier %q: weight %d must be positive", name, w)
		}
		found := false
		for i := range tiers {
			if tiers[i].Name == name {
				tiers[i].Weight = w
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("tenants: -tier-weights names unknown tier %q", name)
		}
	}
	// Higher weight drains first; equal weights keep declaration order.
	sort.SliceStable(tiers, func(i, j int) bool { return tiers[i].Weight > tiers[j].Weight })

	tierIndex := make(map[string]int, len(tiers))
	for i, tr := range tiers {
		tierIndex[tr.Name] = i
	}
	ts := &tenants{
		byKey:  make(map[string]*tenantState, len(cfg.Tenants)),
		byName: make(map[string]*tenantState, len(cfg.Tenants)),
		tiers:  tiers,
		now:    now,
	}
	for _, t := range cfg.Tenants {
		tier := len(tiers) - 1 // empty tier → lowest priority
		if t.Tier != "" {
			tier = tierIndex[t.Tier]
		}
		st := &tenantState{
			t:          t,
			tier:       tier,
			tokens:     t.CellsPerSec, // one second of burst
			lastRefill: now(),
			rejected:   make(map[string]uint64),
		}
		ts.byKey[t.Key] = st
		ts.byName[t.Name] = st
	}
	return ts, nil
}

// lookup authenticates an API key.
func (ts *tenants) lookup(key string) (*tenantState, bool) {
	st, ok := ts.byKey[key]
	return st, ok
}

// tierCount reports how many admission tiers the table defines.
func (ts *tenants) tierCount() int { return len(ts.tiers) }

// admitJob checks the jobs-in-flight and cells/sec quotas and, when
// both pass, atomically charges them. cells is the job's cell count;
// approx jobs are charged the reduced approxCellCost per cell.
func (st *tenantState) admitJob(cells int, approx bool, now time.Time) *quotaError {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.inflight >= st.t.MaxJobsInFlight {
		st.rejected[ReasonQuotaJobs]++
		return &quotaError{
			tenant: st.t.Name,
			reason: ReasonQuotaJobs,
			msg: fmt.Sprintf("tenant %q: jobs-in-flight quota exhausted (%d in flight, limit %d)",
				st.t.Name, st.inflight, st.t.MaxJobsInFlight),
		}
	}
	st.refillLocked(now)
	if st.tokens < 0 {
		st.rejected[ReasonQuotaCellRate]++
		return &quotaError{
			tenant: st.t.Name,
			reason: ReasonQuotaCellRate,
			msg: fmt.Sprintf("tenant %q: cells-per-second quota exhausted (limit %g cells/sec, %.0f cells of debt)",
				st.t.Name, st.t.CellsPerSec, -st.tokens),
		}
	}
	st.inflight++
	if approx {
		st.tokens -= float64(cells) * approxCellCost
		st.approxCellsCharged += uint64(cells)
	} else {
		st.tokens -= float64(cells)
		st.cellsCharged += uint64(cells)
	}
	st.jobsSubmitted++
	return nil
}

// chargeFallback posts the price difference for approximate cells
// that fell back to exact simulation: each pays the remaining
// 1-approxCellCost tokens its discounted admission skipped. The
// charge may push the bucket into debt (like any admitted job), which
// delays the tenant's next admission rather than failing this cell.
func (st *tenantState) chargeFallback(cells int) {
	st.mu.Lock()
	st.tokens -= float64(cells) * (1 - approxCellCost)
	st.fallbackCellsCharged += uint64(cells)
	st.mu.Unlock()
}

// refillLocked credits the token bucket for the time elapsed since
// the last refill, capped at one second of burst.
func (st *tenantState) refillLocked(now time.Time) {
	elapsed := now.Sub(st.lastRefill).Seconds()
	if elapsed > 0 {
		st.tokens += elapsed * st.t.CellsPerSec
		if st.tokens > st.t.CellsPerSec {
			st.tokens = st.t.CellsPerSec
		}
	}
	st.lastRefill = now
}

// retryAfter estimates how long until the bucket pays off its debt —
// the Retry-After hint on a cells/sec rejection.
func (st *tenantState) retryAfter(now time.Time) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.refillLocked(now)
	if st.tokens >= 0 {
		return 1
	}
	sec := int(-st.tokens/st.t.CellsPerSec) + 1
	if sec > 3600 {
		sec = 3600
	}
	return sec
}

// refundAdmission reverses admitJob for a submission the queue then
// rejected: the tenant neither holds the slot nor pays for cells that
// will never run.
func (st *tenantState) refundAdmission(cells int, approx bool) {
	st.mu.Lock()
	st.inflight--
	if approx {
		st.tokens += float64(cells) * approxCellCost
		st.approxCellsCharged -= uint64(cells)
	} else {
		st.tokens += float64(cells)
		st.cellsCharged -= uint64(cells)
	}
	st.jobsSubmitted--
	st.mu.Unlock()
}

// jobDone releases one jobs-in-flight slot (the job reached a
// terminal state).
func (st *tenantState) jobDone() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.inflight--
	st.jobsCompleted++
	if st.inflight < 0 { // release/charge mismatch would corrupt the quota
		panic("server: tenant in-flight count went negative")
	}
}

// countDeduped records a submission answered by an existing job
// (free: no inflight slot, no cell tokens).
func (st *tenantState) countDeduped() {
	st.mu.Lock()
	st.jobsDeduped++
	st.mu.Unlock()
}

// admitTraceBytes checks the cumulative trace-bytes quota. The check
// is made before the upload streams; charge is called with the stored
// size after a successful, non-deduped ingest — so a tenant may
// overshoot by at most one upload body, never by an unbounded stream.
func (st *tenantState) admitTraceBytes() *quotaError {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.traceBytes >= st.t.MaxTraceBytes {
		st.rejected[ReasonQuotaTraceBytes]++
		return &quotaError{
			tenant: st.t.Name,
			reason: ReasonQuotaTraceBytes,
			msg: fmt.Sprintf("tenant %q: trace-bytes quota exhausted (%d bytes stored, limit %d)",
				st.t.Name, st.traceBytes, st.t.MaxTraceBytes),
		}
	}
	return nil
}

// chargeTraceBytes records n stored bytes against the quota.
func (st *tenantState) chargeTraceBytes(n int64) {
	st.mu.Lock()
	st.traceBytes += n
	st.tracesUploaded++
	st.mu.Unlock()
}

// countRejected records a non-quota rejection (quota paths count
// themselves under their specific reason).
func (st *tenantState) countRejected(reason string) {
	st.mu.Lock()
	st.rejected[reason]++
	st.mu.Unlock()
}

// metricsSnapshot is one tenant's counter snapshot for /metrics.
type tenantMetrics struct {
	Name                 string
	Tier                 string
	Inflight             int
	JobsSubmitted        uint64
	JobsDeduped          uint64
	JobsCompleted        uint64
	CellsCharged         uint64
	ApproxCellsCharged   uint64
	FallbackCellsCharged uint64
	TracesUploaded       uint64
	TraceBytes           int64
	Rejected             map[string]uint64
}

// snapshot collects every tenant's counters in name order.
func (ts *tenants) snapshot() []tenantMetrics {
	names := make([]string, 0, len(ts.byName))
	for n := range ts.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]tenantMetrics, 0, len(names))
	for _, n := range names {
		st := ts.byName[n]
		st.mu.Lock()
		m := tenantMetrics{
			Name:                 st.t.Name,
			Tier:                 ts.tiers[st.tier].Name,
			Inflight:             st.inflight,
			JobsSubmitted:        st.jobsSubmitted,
			JobsDeduped:          st.jobsDeduped,
			JobsCompleted:        st.jobsCompleted,
			CellsCharged:         st.cellsCharged,
			ApproxCellsCharged:   st.approxCellsCharged,
			FallbackCellsCharged: st.fallbackCellsCharged,
			TracesUploaded:       st.tracesUploaded,
			TraceBytes:           st.traceBytes,
			Rejected:             make(map[string]uint64, len(st.rejected)),
		}
		for r, v := range st.rejected {
			m.Rejected[r] = v
		}
		st.mu.Unlock()
		out = append(out, m)
	}
	return out
}
