package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"entangling/internal/trace"
	"entangling/internal/workload"
)

// This file is the trace-ingestion surface: POST /v1/traces accepts an
// ENTRACE1 or ChampSim payload, validates and converts it during the
// streaming decode (budget limits enforced mid-stream, so a gzip bomb
// or billion-record upload dies at the cap), and stores it
// content-addressed next to the checkpoints. Job specs then reference
// it as workload "trace:<id>" — the same sweep machinery (trace cache,
// warmup classes, checkpointing) runs it unmodified, because the
// content address flows through workload.Params into every identity
// hash.

// traceDoc is the JSON document for one stored trace.
type traceDoc struct {
	ID string `json:"id"`
	// Workload is the name a job spec uses to reference this trace.
	Workload     string `json:"workload"`
	Instructions uint64 `json:"instructions"`
	Bytes        int64  `json:"bytes"`
	Format       string `json:"format"`
	// Deduped marks an upload whose content was already stored.
	Deduped bool `json:"deduped,omitempty"`
}

func docFromInfo(info trace.TraceInfo, deduped bool) traceDoc {
	return traceDoc{
		ID:           info.ID,
		Workload:     traceWorkloadPrefix + info.ID,
		Instructions: info.Instructions,
		Bytes:        info.Bytes,
		Format:       info.Format,
		Deduped:      deduped,
	}
}

// handleTraceUpload ingests one trace body. ?format=champsim converts
// from ChampSim's 64-byte record format; the default expects ENTRACE1.
// Over-budget streams answer 413 naming the offending limit; malformed
// streams answer 400 with the typed decode error.
func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	st, ok := s.authenticate(w, r)
	if !ok {
		return
	}
	if s.tstore == nil {
		writeError(w, http.StatusServiceUnavailable,
			"trace storage is not configured on this server (set TraceDir)")
		return
	}
	if s.Draining() {
		writeErrorReason(w, http.StatusServiceUnavailable, ReasonDraining, "server is draining")
		return
	}
	if st != nil {
		// The quota gate runs before a single body byte streams; the
		// charge lands after a successful ingest, so the worst
		// overshoot is one upload body (itself capped by
		// MaxTraceBytes), never an unbounded stream.
		if qerr := st.admitTraceBytes(); qerr != nil {
			s.stats.inc(&s.stats.quotaRejected)
			w.Header().Set("Retry-After", "60")
			writeErrorReason(w, http.StatusTooManyRequests, qerr.reason, "%s", qerr.msg)
			return
		}
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "entrace1", "champsim":
	default:
		s.stats.inc(&s.stats.tracesRejected)
		writeError(w, http.StatusBadRequest,
			"unknown trace format %q (want entrace1 or champsim)", format)
		return
	}

	// Budget enforcement happens inside the streaming decode: the
	// instruction cap comes from the workload budget, the byte cap
	// from the transport limit. MaxBytesReader bounds what the client
	// may send at all; the decode limit bounds what it may expand to.
	lim := s.cfg.Budget.DecodeLimits(uint64(s.cfg.MaxTraceBytes))
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxTraceBytes)
	info, deduped, err := s.tstore.Put(body, format, lim)
	if err != nil {
		s.stats.inc(&s.stats.tracesRejected)
		var limErr *trace.LimitError
		var tooLarge *http.MaxBytesError
		switch {
		case errors.As(err, &limErr):
			writeError(w, http.StatusRequestEntityTooLarge,
				"trace exceeds the server's %s limit of %d", limErr.What, limErr.Limit)
		case errors.As(err, &tooLarge):
			writeError(w, http.StatusRequestEntityTooLarge,
				"trace body exceeds %d bytes", tooLarge.Limit)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}

	// Idempotent re-upload: same content, same ID, 200 instead of 201.
	// Dedupe hits are free — the bytes were already stored (and
	// charged) once.
	status := http.StatusCreated
	if deduped {
		status = http.StatusOK
		s.stats.inc(&s.stats.tracesDeduped)
	} else {
		s.stats.inc(&s.stats.tracesUploaded)
		if st != nil {
			st.chargeTraceBytes(info.Bytes)
		}
		s.cfg.Logf("server: trace %s ingested (%s, %d instructions, %d bytes)",
			info.ID[:16], info.Format, info.Instructions, info.Bytes)
	}
	writeJSON(w, status, docFromInfo(info, deduped))
}

// handleTraceList lists stored traces.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authenticate(w, r); !ok {
		return
	}
	if s.tstore == nil {
		writeError(w, http.StatusServiceUnavailable,
			"trace storage is not configured on this server (set TraceDir)")
		return
	}
	infos, err := s.tstore.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	docs := make([]traceDoc, 0, len(infos))
	for _, info := range infos {
		docs = append(docs, docFromInfo(info, false))
	}
	writeJSON(w, http.StatusOK, struct {
		Traces []traceDoc `json:"traces"`
	}{docs})
}

// handleTraceStat returns one stored trace's metadata.
func (s *Server) handleTraceStat(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authenticate(w, r); !ok {
		return
	}
	if s.tstore == nil {
		writeError(w, http.StatusServiceUnavailable,
			"trace storage is not configured on this server (set TraceDir)")
		return
	}
	id := r.PathValue("id")
	info, err := s.tstore.Stat(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "unknown trace %q", id)
		return
	}
	writeJSON(w, http.StatusOK, docFromInfo(info, false))
}

// resolveTraceWorkload is the traceResolver wired into job resolution:
// it maps "trace:<id>" to an executable Spec over the stored payload.
// Trace-backed cells are gated to in-process dispatch — an external
// (fleet) dispatcher serializes Specs over the wire, and the trace
// content only exists here.
func (s *Server) resolveTraceWorkload(name string, traceLen uint64) (workload.Spec, error) {
	id := strings.TrimPrefix(name, traceWorkloadPrefix)
	if s.tstore == nil {
		return workload.Spec{}, fmt.Errorf("workload %q: trace storage is not configured on this server", name)
	}
	if s.cfg.Dispatcher != nil {
		return workload.Spec{}, fmt.Errorf("workload %q: trace workloads require in-process execution (this server dispatches to a fleet)", name)
	}
	info, err := s.tstore.Stat(id)
	if err != nil {
		return workload.Spec{}, fmt.Errorf("unknown trace %q (upload it via POST /v1/traces first)", id)
	}
	if traceLen > info.Instructions {
		return workload.Spec{}, fmt.Errorf("workload %q: warmup+measure of %d instructions exceeds the trace's %d",
			name, traceLen, info.Instructions)
	}
	tstore := s.tstore
	return workload.TraceSpec(name, info.ID, func() (io.ReadCloser, error) {
		return tstore.Open(info.ID)
	}), nil
}
