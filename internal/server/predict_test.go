package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"entangling/internal/harness"
	"entangling/internal/predict"
	"entangling/internal/workload"
)

// The approximate-mode battery sweeps a wider slab than the basic
// end-to-end tests so the model accumulates enough training and
// calibration history to actually serve predictions.
var (
	approxConfigs   = []string{"no", "nextline", "mana-4k", "djolt", "entangling-2k", "entangling-4k", "ideal"}
	approxWorkloads = []string{"crypto-00", "int-00", "fp-00", "srv-00"}
	// trainWarmups are the exact jobs' warmup windows; queryWarmup is
	// held out, so every approximate-job cell is genuinely unseen.
	trainWarmups = []uint64{20_000, 22_000, 24_000}
	queryWarmup  = uint64(26_000)
)

// testBudget is the max_rel_err the battery submits with. Metrics at
// these millisecond-scale test windows are genuinely noisy across
// warmup variants, so honest conformal intervals are wide; the battery
// tests the serving machinery, not model sharpness, and budgets
// accordingly (cmd/predict-smoke holds the realistic-window model to
// the real default).
const testBudget = 4.0

func approxTestConfig(t *testing.T) Config {
	t.Helper()
	cfg := testConfig()
	cfg.Approximate = true
	cfg.CheckpointDir = t.TempDir()
	return cfg
}

// trainModel pushes the training sweeps through the server as ordinary
// exact jobs and returns the last one's result document.
func trainModel(t *testing.T, ts *httptest.Server) ResultDoc {
	t.Helper()
	var doc ResultDoc
	for _, w := range trainWarmups {
		sr := submitOK(t, ts, JobRequest{
			Configurations: approxConfigs,
			Workloads:      approxWorkloads,
			Warmup:         w,
			Measure:        testMeasure,
		})
		doc, _ = waitResult(t, ts, sr.ID)
		if doc.State != StateCompleted {
			t.Fatalf("training job (warmup %d) finished %q", w, doc.State)
		}
	}
	return doc
}

func countCheckpoints(t *testing.T, dir string) int {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatalf("globbing checkpoints: %v", err)
	}
	return len(files)
}

// TestExactBytesUnchangedWithPredictor is the first differential
// guarantee: a predictor-enabled server answers exact-mode jobs with
// bytes identical to a direct harness run — training is a pure
// observer.
func TestExactBytesUnchangedWithPredictor(t *testing.T) {
	_, ts := startTestServer(t, approxTestConfig(t))
	cfgNames := []string{"no", "nextline", "entangling-2k"}
	wlNames := []string{"crypto-00", "int-00"}
	sr := submitOK(t, ts, JobRequest{
		Configurations: cfgNames,
		Workloads:      wlNames,
		Warmup:         testWarmup,
		Measure:        testMeasure,
	})
	doc, _ := waitResult(t, ts, sr.ID)
	if doc.State != StateCompleted {
		t.Fatalf("job finished %q", doc.State)
	}
	if doc.Approximate || len(doc.Predictions) != 0 {
		t.Fatalf("exact-mode result tagged approximate: %+v", doc.Cells)
	}
	want := directSweepSHA(t, cfgNames, wlNames)
	if doc.MetricsSHA256 != want {
		t.Fatalf("exact metrics fingerprint %s != direct harness %s with predictor enabled",
			doc.MetricsSHA256, want)
	}
}

// TestApproximateEndToEnd drives the whole fast path: train on exact
// sweeps, query unseen cells approximately, and check provenance,
// bands, SSE tagging, checkpoint hygiene and the persisted model.
func TestApproximateEndToEnd(t *testing.T) {
	cfg := approxTestConfig(t)
	s, ts := startTestServer(t, cfg)
	trainModel(t, ts)

	ckptBefore := countCheckpoints(t, cfg.CheckpointDir)

	sr := submitOK(t, ts, JobRequest{
		Configurations: approxConfigs,
		Workloads:      approxWorkloads,
		Warmup:         queryWarmup,
		Measure:        testMeasure,
		Mode:           ModeApproximate,
		MaxRelErr:      testBudget,
	})
	doc, _ := waitResult(t, ts, sr.ID)
	if doc.State != StateCompleted {
		t.Fatalf("approximate job finished %q", doc.State)
	}
	if !doc.Approximate {
		t.Fatal("approximate job's result not tagged approximate")
	}
	total := len(approxConfigs) * len(approxWorkloads)
	if doc.Cells.Predicted+doc.Cells.Fallback != total {
		t.Fatalf("predicted %d + fallback %d != %d cells",
			doc.Cells.Predicted, doc.Cells.Fallback, total)
	}
	if doc.Cells.Predicted == 0 {
		t.Fatalf("model served no predictions after %d training cells (fallback %d)",
			3*total, doc.Cells.Fallback)
	}
	if len(doc.Predictions) != doc.Cells.Predicted {
		t.Fatalf("%d prediction records for %d predicted cells",
			len(doc.Predictions), doc.Cells.Predicted)
	}
	for i, p := range doc.Predictions {
		if i > 0 {
			prev := doc.Predictions[i-1]
			if p.Config < prev.Config || (p.Config == prev.Config && p.Workload <= prev.Workload) {
				t.Fatalf("predictions not canonically sorted at %d: %+v after %+v", i, p, prev)
			}
		}
		if len(p.Bands) != len(predict.MetricNames) {
			t.Fatalf("prediction %s/%s has %d bands, want %d",
				p.Config, p.Workload, len(p.Bands), len(predict.MetricNames))
		}
		for bi, b := range p.Bands {
			if b.Metric != predict.MetricNames[bi] {
				t.Fatalf("band %d metric %q, want %q", bi, b.Metric, predict.MetricNames[bi])
			}
			if b.Lo > b.Value || b.Value > b.Hi {
				t.Fatalf("band %s of %s/%s not ordered: %+v", b.Metric, p.Config, p.Workload, b)
			}
		}
		if p.TrainSize <= 0 || p.CalibrationSize <= 0 {
			t.Fatalf("prediction %s/%s lacks model provenance: %+v", p.Config, p.Workload, p)
		}
	}

	// SSE: every predicted cell's finished event is tagged approximate
	// with its error bars; exact (fallback) cells are not.
	events := readSSE(t, ts, sr.ID, "")
	predicted, exact := 0, 0
	for _, ev := range events {
		if ev.Type != EventCellFinished {
			continue
		}
		if ev.Source == SourcePredicted {
			predicted++
			if !ev.Approximate || len(ev.Bands) != len(predict.MetricNames) {
				t.Fatalf("predicted cell event missing approximate tag or bands: %+v", ev)
			}
		} else {
			exact++
			if ev.Approximate || len(ev.Bands) != 0 {
				t.Fatalf("exact cell event carries approximate markers: %+v", ev)
			}
		}
	}
	if predicted != doc.Cells.Predicted || exact != doc.Cells.Fallback {
		t.Fatalf("SSE saw %d predicted / %d exact cells, result says %d / %d",
			predicted, exact, doc.Cells.Predicted, doc.Cells.Fallback)
	}

	// Checkpoint hygiene: only the fallback cells (which actually
	// simulated) may have added checkpoint records; predicted cells
	// must never reach the store.
	ckptAfter := countCheckpoints(t, cfg.CheckpointDir)
	if got := ckptAfter - ckptBefore; got != doc.Cells.Fallback {
		t.Fatalf("approximate job grew the checkpoint store by %d cells, want %d (its fallbacks)",
			got, doc.Cells.Fallback)
	}

	// The model snapshot persists in its own directory, decodes
	// strictly, and never shares the checkpoint store's namespace.
	s.Drain()
	snapPath := filepath.Join(cfg.CheckpointDir, "model", "model.snap")
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("reading persisted model: %v", err)
	}
	snap, err := predict.DecodeModelSnapshot(data)
	if err != nil {
		t.Fatalf("persisted model snapshot corrupt: %v", err)
	}
	if len(snap.Examples) == 0 {
		t.Fatal("persisted model snapshot is empty")
	}
}

// TestApproximateDeterminism is the second differential guarantee: two
// servers given the same training history answer the same approximate
// job identically, band for band.
func TestApproximateDeterminism(t *testing.T) {
	query := JobRequest{
		Configurations: approxConfigs,
		Workloads:      approxWorkloads,
		Warmup:         queryWarmup,
		Measure:        testMeasure,
		Mode:           ModeApproximate,
		MaxRelErr:      testBudget,
	}
	run := func() ResultDoc {
		cfg := approxTestConfig(t)
		_, ts := startTestServer(t, cfg)
		trainModel(t, ts)
		sr := submitOK(t, ts, query)
		doc, _ := waitResult(t, ts, sr.ID)
		if doc.State != StateCompleted {
			t.Fatalf("approximate job finished %q", doc.State)
		}
		return doc
	}
	a, b := run(), run()
	if a.Cells.Predicted == 0 {
		t.Fatal("determinism check vacuous: no predictions served")
	}
	if !reflect.DeepEqual(a.Predictions, b.Predictions) {
		t.Fatalf("same training history produced different predictions:\n%+v\n%+v",
			a.Predictions, b.Predictions)
	}
	if a.Cells != b.Cells || a.MetricsSHA256 != b.MetricsSHA256 {
		t.Fatalf("same training history produced different results: %+v vs %+v", a.Cells, b.Cells)
	}
}

// TestApproximateTinyBudgetFallsBack: an error budget no model can
// meet turns an approximate job into an exact one — same cells, same
// bytes, fallback provenance.
func TestApproximateTinyBudgetFallsBack(t *testing.T) {
	_, ts := startTestServer(t, approxTestConfig(t))
	trainModel(t, ts)

	cfgNames := []string{"no", "entangling-2k"}
	wlNames := []string{"crypto-00", "int-00"}
	sr := submitOK(t, ts, JobRequest{
		Configurations: cfgNames,
		Workloads:      wlNames,
		Warmup:         queryWarmup,
		Measure:        testMeasure,
		Mode:           ModeApproximate,
		MaxRelErr:      1e-9,
	})
	doc, _ := waitResult(t, ts, sr.ID)
	if doc.State != StateCompleted {
		t.Fatalf("job finished %q", doc.State)
	}
	if doc.Cells.Predicted != 0 || doc.Cells.Fallback != len(cfgNames)*len(wlNames) {
		t.Fatalf("tiny budget still served predictions: %+v", doc.Cells)
	}
	want := directSweepSHAWindows(t, cfgNames, wlNames, queryWarmup, testMeasure)
	if doc.MetricsSHA256 != want {
		t.Fatalf("all-fallback approximate job fingerprint %s != direct %s", doc.MetricsSHA256, want)
	}
}

// TestApproximateRefinement: an exact job for previously predicted
// cells scores each served interval against the truth and surfaces the
// tally in /metrics.
func TestApproximateRefinement(t *testing.T) {
	_, ts := startTestServer(t, approxTestConfig(t))
	trainModel(t, ts)

	// The query window is held out of training: the follow-up exact
	// job then actually simulates (an exact job over a trained window
	// would dedupe onto the training job and refine nothing).
	approx := submitOK(t, ts, JobRequest{
		Configurations: approxConfigs,
		Workloads:      approxWorkloads,
		Warmup:         queryWarmup,
		Measure:        testMeasure,
		Mode:           ModeApproximate,
		MaxRelErr:      testBudget,
	})
	adoc, _ := waitResult(t, ts, approx.ID)
	if adoc.Cells.Predicted == 0 {
		t.Fatal("refinement check vacuous: no predictions served")
	}

	// RefineToExact semantics: the same sweep, exact mode.
	exact := submitOK(t, ts, JobRequest{
		Configurations: approxConfigs,
		Workloads:      approxWorkloads,
		Warmup:         queryWarmup,
		Measure:        testMeasure,
	})
	edoc, _ := waitResult(t, ts, exact.ID)
	if edoc.State != StateCompleted || edoc.Approximate {
		t.Fatalf("refining job: state %q approximate %v", edoc.State, edoc.Approximate)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, m := range []string{
		"entangling_predictions_served_total",
		"entangling_predictions_refined_total",
		"entangling_predictions_within_interval_total",
	} {
		if !containsMetricLine(metrics, m) {
			t.Fatalf("/metrics missing %s:\n%s", m, metrics)
		}
	}
	refined := metricValue(t, metrics, "entangling_predictions_refined_total")
	within := metricValue(t, metrics, "entangling_predictions_within_interval_total")
	outside := metricValue(t, metrics, "entangling_predictions_outside_interval_total")
	if refined != float64(adoc.Cells.Predicted) {
		t.Fatalf("refined %v predictions, served %d", refined, adoc.Cells.Predicted)
	}
	if within+outside != refined {
		t.Fatalf("within %v + outside %v != refined %v", within, outside, refined)
	}
	// The within/outside split is an accounting check here, not a model-
	// quality gate: millisecond test windows drift more across warmups
	// than their calibration split can promise, so only gross
	// mis-scoring (bands compared against the wrong targets would put
	// everything outside) should fail. Realistic-window coverage is
	// gated by the predict battery and cmd/predict-smoke.
	t.Logf("refinement: %v served, %v within, %v outside", refined, within, outside)
	if within < 0.3*refined {
		t.Fatalf("only %v/%v refined predictions within their bands — scoring looks broken", within, refined)
	}
}

// TestApproximateModeRejections pins the submission-surface contract.
func TestApproximateModeRejections(t *testing.T) {
	base := JobRequest{
		Configurations: []string{"no"},
		Workloads:      []string{"crypto-00"},
		Warmup:         testWarmup,
		Measure:        testMeasure,
	}

	// Approximate mode on an exact-only server is a 400, not a silent
	// exact run.
	_, exactTS := startTestServer(t, testConfig())
	req := base
	req.Mode = ModeApproximate
	if status, body := postJob(t, exactTS, req); status != http.StatusBadRequest {
		t.Fatalf("mode=approximate on exact-only server: status %d, body %s", status, body)
	}

	_, ts := startTestServer(t, approxTestConfig(t))
	cases := map[string]func(*JobRequest){
		"unknown mode":              func(r *JobRequest) { r.Mode = "psychic" },
		"max_rel_err in exact mode": func(r *JobRequest) { r.MaxRelErr = 0.1 },
		"negative budget":           func(r *JobRequest) { r.Mode = ModeApproximate; r.MaxRelErr = -1 },
	}
	for name, mutate := range cases {
		req := base
		mutate(&req)
		if status, body := postJob(t, ts, req); status != http.StatusBadRequest {
			t.Fatalf("%s: status %d, body %s", name, status, body)
		}
	}

	// An approximate job never dedupes onto the identical exact job.
	exactSR := submitOK(t, ts, base)
	req = base
	req.Mode = ModeApproximate
	approxSR := submitOK(t, ts, req)
	if exactSR.ID == approxSR.ID {
		t.Fatal("approximate submission deduped onto an exact job")
	}
	waitResult(t, ts, exactSR.ID)
	waitResult(t, ts, approxSR.ID)
}

// directSweepSHAWindows runs the named cells through the harness
// directly with explicit windows and fingerprints the metrics export
// (directSweepSHA with the windows as parameters).
func directSweepSHAWindows(t *testing.T, cfgNames, wlNames []string, warmup, measure uint64) string {
	t.Helper()
	byName := make(map[string]harness.Configuration)
	for _, c := range harness.KnownConfigurations() {
		byName[c.Name] = c
	}
	var cfgs []harness.Configuration
	for _, n := range cfgNames {
		c, ok := byName[n]
		if !ok {
			t.Fatalf("unknown configuration %q", n)
		}
		cfgs = append(cfgs, c)
	}
	specByName := make(map[string]workload.Spec)
	for _, s := range workload.CVPSuite(1) {
		specByName[s.Name] = s
	}
	var specs []workload.Spec
	for _, n := range wlNames {
		s, ok := specByName[n]
		if !ok {
			t.Fatalf("unknown workload %q", n)
		}
		specs = append(specs, s)
	}
	suite, err := harness.RunSuiteCtx(context.Background(), specs, cfgs,
		harness.Options{Warmup: warmup, Measure: measure, Parallelism: 2})
	if err != nil {
		t.Fatalf("direct RunSuiteCtx: %v", err)
	}
	var sb strings.Builder
	if err := harness.WriteMetricsJSON(&sb, suite.Metrics()); err != nil {
		t.Fatalf("WriteMetricsJSON: %v", err)
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

// containsMetricLine reports whether a /metrics export has a sample
// line (not just HELP/TYPE commentary) for the named metric.
func containsMetricLine(metrics, name string) bool {
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
			return true
		}
	}
	return false
}

// metricValue extracts an unlabeled counter's value from a /metrics
// export.
func metricValue(t *testing.T, metrics, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("/metrics has no sample for %s", name)
	return 0
}
