package server

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"entangling/internal/faultinject"
	"entangling/internal/harness"
	"entangling/internal/leakcheck"
	"entangling/internal/stats"
	"entangling/internal/workload"
)

// Small windows keep every test cell in the low-millisecond range.
const (
	testWarmup  = 20_000
	testMeasure = 10_000
)

func testConfig() Config {
	return Config{
		Workers:         1,
		CellParallelism: 2,
		QueueCapacity:   4,
		PerCategory:     1,
		DrainGrace:      2 * time.Second,
	}
}

// startTestServer builds a Server, starts its workers, and serves its
// Handler over httptest. Cleanup drains the server before closing the
// listener so no worker outlives the test, and leakcheck holds the
// drain to that claim: the goroutine count must return to its
// pre-server baseline (stuck flights, abandoned SSE followers and
// undrained workers all fail the test with a stack dump).
func startTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	leakcheck.Check(t)
	cfg.Logf = t.Logf
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Drain()
		ts.Close()
	})
	return s, ts
}

// postJob submits a request and returns the HTTP status and body.
func postJob(t *testing.T, ts *httptest.Server, req JobRequest) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp.StatusCode, body
}

// submitOK submits a request that must be admitted (202) or deduped
// (200) and returns the decoded response.
func submitOK(t *testing.T, ts *httptest.Server, req JobRequest) submitResponse {
	t.Helper()
	status, body := postJob(t, ts, req)
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit: status %d, body %s", status, body)
	}
	var sr submitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decoding submit response: %v (%s)", err, body)
	}
	return sr
}

// waitStatus polls GET /v1/jobs/{id} until pred holds.
func waitStatus(t *testing.T, ts *httptest.Server, id string, pred func(StatusDoc) bool) StatusDoc {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET status: %v", err)
		}
		var doc StatusDoc
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding status: %v", err)
		}
		if pred(doc) {
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached the expected status (last: %+v)", id, doc)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitResult polls GET /v1/jobs/{id}/result until the job is terminal
// and returns the decoded document plus its raw bytes.
func waitResult(t *testing.T, ts *httptest.Server, id string) (ResultDoc, []byte) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatalf("GET result: %v", err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("reading result: %v", err)
		}
		if resp.StatusCode == http.StatusOK {
			var doc ResultDoc
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatalf("decoding result: %v (%s)", err, body)
			}
			return doc, body
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("GET result: status %d, body %s", resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("202 result response missing Retry-After")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never produced a result", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// readSSE streams /events until the server closes the stream and
// returns the decoded events. Every SSE id must match the embedded
// sequence number and the declared event type.
func readSSE(t *testing.T, ts *httptest.Server, id, lastEventID string) []Event {
	t.Helper()
	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatalf("building SSE request: %v", err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}

	var events []Event
	var seq int
	var typ string
	var data []byte
	flush := func() {
		if typ == "" && data == nil {
			return
		}
		var ev Event
		if err := json.Unmarshal(data, &ev); err != nil {
			t.Fatalf("decoding SSE data %q: %v", data, err)
		}
		if ev.Seq != seq {
			t.Fatalf("SSE id %d != data seq %d", seq, ev.Seq)
		}
		if ev.Type != typ {
			t.Fatalf("SSE event %q != data type %q", typ, ev.Type)
		}
		events = append(events, ev)
		seq, typ, data = 0, "", nil
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			flush()
		case strings.HasPrefix(line, "id: "):
			seq, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "event: "):
			typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	flush()
	return events
}

// directSweepSHA runs the same cells through harness.RunSuiteCtx
// locally and fingerprints the metrics export exactly as cmd/bench
// does, so the test proves API results are byte-comparable with a
// direct run.
func directSweepSHA(t *testing.T, cfgNames, wlNames []string) string {
	t.Helper()
	byName := make(map[string]harness.Configuration)
	for _, c := range harness.KnownConfigurations() {
		byName[c.Name] = c
	}
	var cfgs []harness.Configuration
	for _, n := range cfgNames {
		c, ok := byName[n]
		if !ok {
			t.Fatalf("unknown configuration %q", n)
		}
		cfgs = append(cfgs, c)
	}
	specByName := make(map[string]workload.Spec)
	for _, s := range workload.CVPSuite(1) {
		specByName[s.Name] = s
	}
	var specs []workload.Spec
	for _, n := range wlNames {
		s, ok := specByName[n]
		if !ok {
			t.Fatalf("unknown workload %q", n)
		}
		specs = append(specs, s)
	}
	suite, err := harness.RunSuiteCtx(context.Background(), specs, cfgs,
		harness.Options{Warmup: testWarmup, Measure: testMeasure, Parallelism: 2})
	if err != nil {
		t.Fatalf("direct RunSuiteCtx: %v", err)
	}
	var sb strings.Builder
	if err := harness.WriteMetricsJSON(&sb, suite.Metrics()); err != nil {
		t.Fatalf("WriteMetricsJSON: %v", err)
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

func TestServerEndToEnd(t *testing.T) {
	_, ts := startTestServer(t, testConfig())
	req := JobRequest{
		Configurations: []string{"no", "nextline"},
		Workloads:      []string{"crypto-00"},
		Warmup:         testWarmup,
		Measure:        testMeasure,
	}
	sr := submitOK(t, ts, req)
	if sr.ID == "" || sr.Cells != 2 {
		t.Fatalf("submit response: %+v", sr)
	}
	if sr.Events != "/v1/jobs/"+sr.ID+"/events" || sr.Result != "/v1/jobs/"+sr.ID+"/result" {
		t.Fatalf("resource links wrong: %+v", sr)
	}

	events := readSSE(t, ts, sr.ID, "")
	if len(events) < 2+2*2+1 {
		t.Fatalf("expected at least 7 events, got %d: %+v", len(events), events)
	}
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d; want strictly increasing from 1", i, ev.Seq)
		}
	}
	if events[0].Type != EventJobQueued || events[1].Type != EventJobStarted {
		t.Fatalf("stream must open with job.queued, job.started; got %q, %q",
			events[0].Type, events[1].Type)
	}
	last := events[len(events)-1]
	if last.Type != EventJobDone || last.State != StateCompleted || last.Done != 2 || last.Total != 2 {
		t.Fatalf("terminal event: %+v", last)
	}
	// Every cell's started event precedes its finished event.
	started := make(map[string]int)
	finished := make(map[string]int)
	for i, ev := range events {
		cell := ev.Config + "/" + ev.Workload
		switch ev.Type {
		case EventCellStarted:
			started[cell] = i
		case EventCellFinished:
			finished[cell] = i
		}
	}
	for _, cell := range []string{"no/crypto-00", "nextline/crypto-00"} {
		si, sok := started[cell]
		fi, fok := finished[cell]
		if !sok || !fok || si >= fi {
			t.Fatalf("cell %s events out of order (started@%d ok=%v, finished@%d ok=%v)",
				cell, si, sok, fi, fok)
		}
	}

	// Last-Event-ID resumes mid-stream without replaying history.
	cursor := len(events) - 2
	tail := readSSE(t, ts, sr.ID, strconv.Itoa(cursor))
	if len(tail) != 2 || tail[0].Seq != cursor+1 {
		t.Fatalf("Last-Event-ID resume returned %+v", tail)
	}

	doc, _ := waitResult(t, ts, sr.ID)
	if doc.State != StateCompleted || doc.Cells.Done != 2 || doc.Cells.Failed != 0 {
		t.Fatalf("result: %+v", doc)
	}
	if doc.Cells.Simulated != 2 {
		t.Fatalf("expected 2 simulated cells, got %+v", doc.Cells)
	}
	var metrics harness.SuiteMetrics
	if err := json.Unmarshal(doc.Metrics, &metrics); err != nil {
		t.Fatalf("result metrics do not parse: %v", err)
	}
	if want := directSweepSHA(t, req.Configurations, req.Workloads); doc.MetricsSHA256 != want {
		t.Fatalf("metrics sha %s != direct RunSuiteCtx sha %s", doc.MetricsSHA256, want)
	}
}

func TestServerDuplicateSubmissionsSimulateOnce(t *testing.T) {
	s, ts := startTestServer(t, testConfig())
	req := JobRequest{
		Configurations: []string{"no", "nextline"},
		Workloads:      []string{"int-00"},
		Warmup:         testWarmup,
		Measure:        testMeasure,
	}

	type reply struct {
		status int
		sr     submitResponse
	}
	replies := make([]reply, 2)
	var wg sync.WaitGroup
	for i := range replies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := postJob(t, ts, req)
			var sr submitResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Errorf("decoding submit response: %v (%s)", err, body)
				return
			}
			replies[i] = reply{status, sr}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if replies[0].sr.ID != replies[1].sr.ID {
		t.Fatalf("concurrent submissions got different IDs: %q vs %q",
			replies[0].sr.ID, replies[1].sr.ID)
	}
	statuses := []int{replies[0].status, replies[1].status}
	if !((statuses[0] == 202 && statuses[1] == 200) || (statuses[0] == 200 && statuses[1] == 202)) {
		t.Fatalf("expected one 202 and one 200, got %v", statuses)
	}
	for _, r := range replies {
		if (r.status == 200) != r.sr.Deduped {
			t.Fatalf("deduped flag inconsistent with status: %+v", r)
		}
	}
	if got := atomic.LoadUint64(&s.stats.jobsSubmitted); got != 1 {
		t.Fatalf("jobsSubmitted = %d, want 1", got)
	}
	if got := atomic.LoadUint64(&s.stats.jobsDeduped); got != 1 {
		t.Fatalf("jobsDeduped = %d, want 1", got)
	}

	_, body1 := waitResult(t, ts, replies[0].sr.ID)
	_, body2 := waitResult(t, ts, replies[1].sr.ID)
	if !bytes.Equal(body1, body2) {
		t.Fatalf("duplicate submissions returned different result bytes")
	}
	// The sweep has 2 cells and must have simulated exactly once each.
	if got := atomic.LoadUint64(&s.stats.cellsSimulated); got != 2 {
		t.Fatalf("cellsSimulated = %d, want 2 (one per cell)", got)
	}

	// A repeat submission after completion dedupes onto the finished
	// job and serves the identical bytes immediately.
	status, body := postJob(t, ts, req)
	var sr submitResponse
	if err := json.Unmarshal(body, &sr); err != nil || status != http.StatusOK || !sr.Deduped {
		t.Fatalf("post-completion resubmit: status %d, err %v, %+v", status, err, sr)
	}
	_, body3 := waitResult(t, ts, sr.ID)
	if !bytes.Equal(body1, body3) {
		t.Fatalf("post-completion resubmit returned different result bytes")
	}
	if got := atomic.LoadUint64(&s.stats.cellsSimulated); got != 2 {
		t.Fatalf("resubmission re-simulated: cellsSimulated = %d", got)
	}
}

func TestServerCellCacheAcrossJobs(t *testing.T) {
	_, ts := startTestServer(t, testConfig())
	first := submitOK(t, ts, JobRequest{
		Configurations: []string{"no"},
		Workloads:      []string{"fp-00"},
		Warmup:         testWarmup,
		Measure:        testMeasure,
	})
	doc, _ := waitResult(t, ts, first.ID)
	if doc.Cells.Simulated != 1 {
		t.Fatalf("first job: %+v", doc.Cells)
	}

	// A different job sharing one cell gets it from the in-process
	// cache and only simulates the new cell.
	second := submitOK(t, ts, JobRequest{
		Configurations: []string{"no", "nextline"},
		Workloads:      []string{"fp-00"},
		Warmup:         testWarmup,
		Measure:        testMeasure,
	})
	if second.ID == first.ID {
		t.Fatalf("distinct sweeps must have distinct job IDs")
	}
	doc2, _ := waitResult(t, ts, second.ID)
	if doc2.Cells.CacheMemory != 1 || doc2.Cells.Simulated != 1 {
		t.Fatalf("second job should hit memory cache for the shared cell: %+v", doc2.Cells)
	}
}

func TestServerQueueFull429(t *testing.T) {
	cfg := testConfig()
	cfg.QueueCapacity = 1
	cfg.AllowFaults = true
	s, ts := startTestServer(t, cfg)

	slow := &faultinject.Plan{Seed: 1, CellSlowProb: 1, SlowDelay: 800 * time.Millisecond, FaultsPerSite: -1}
	mkReq := func(measure uint64) JobRequest {
		return JobRequest{
			Configurations: []string{"no"},
			Workloads:      []string{"srv-00"},
			Warmup:         testWarmup,
			Measure:        measure,
			FaultPlan:      slow,
		}
	}

	// Job 1 occupies the single worker; wait until it is off the queue.
	j1 := submitOK(t, ts, mkReq(testMeasure))
	waitStatus(t, ts, j1.ID, func(d StatusDoc) bool { return d.State != StateQueued })
	// Job 2 fills the one queue slot.
	j2 := submitOK(t, ts, mkReq(testMeasure+1))

	// Job 3 must be rejected with 429 and a Retry-After hint.
	b, _ := json.Marshal(mkReq(testMeasure + 2))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected 429, got %d: %s", resp.StatusCode, body)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("429 must carry a positive Retry-After, got %q", resp.Header.Get("Retry-After"))
	}
	if got := atomic.LoadUint64(&s.stats.jobsRejected); got != 1 {
		t.Fatalf("jobsRejected = %d, want 1", got)
	}

	// Once the backlog clears the same request is admitted fresh — the
	// rejected submission left no half-registered job behind.
	waitResult(t, ts, j1.ID)
	waitResult(t, ts, j2.ID)
	j3 := submitOK(t, ts, mkReq(testMeasure+2))
	doc, _ := waitResult(t, ts, j3.ID)
	if doc.State != StateCompleted {
		t.Fatalf("retried submission: %+v", doc)
	}
}

func TestServerCancelMidJob(t *testing.T) {
	cfg := testConfig()
	cfg.CellParallelism = 1
	cfg.AllowFaults = true
	s, ts := startTestServer(t, cfg)

	slow := &faultinject.Plan{Seed: 1, CellSlowProb: 1, SlowDelay: 800 * time.Millisecond, FaultsPerSite: -1}
	sr := submitOK(t, ts, JobRequest{
		Configurations: []string{"no"},
		Workloads:      []string{"crypto-00", "int-00"},
		Warmup:         testWarmup,
		Measure:        testMeasure,
		FaultPlan:      slow,
	})
	waitStatus(t, ts, sr.ID, func(d StatusDoc) bool { return d.State == StateRunning })

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sr.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}

	doc, _ := waitResult(t, ts, sr.ID)
	if doc.State != StateCanceled {
		t.Fatalf("canceled job ended %q: %+v", doc.State, doc)
	}
	for _, f := range doc.FailedCells {
		if !f.Canceled {
			t.Fatalf("cell failure after cancel should be typed canceled: %+v", f)
		}
	}
	if got := atomic.LoadUint64(&s.stats.jobsCanceled); got != 1 {
		t.Fatalf("jobsCanceled = %d, want 1", got)
	}
}

func TestServerFaultPlanDegradedResult(t *testing.T) {
	cfg := testConfig()
	cfg.AllowFaults = true
	// FaultsPerSite: -1 makes the injected errors permanent, so the
	// default retry policy cannot mask them.
	_, ts := startTestServer(t, cfg)

	// Pick a seed whose deterministic error rolls fail some — but not
	// all — of the sweep's cells, using the same (seed, kind, site)
	// hash faultinject evaluates.
	cfgNames := []string{"no", "nextline"}
	wlNames := []string{"crypto-00", "int-00"}
	const prob = 0.5
	var seed uint64
	wantFailed := 0
	for cand := uint64(1); cand < 1000; cand++ {
		n := 0
		for _, c := range cfgNames {
			for _, w := range wlNames {
				if stats.UnitFloat(stats.Hash64(cand, "error", c+"/"+w)) < prob {
					n++
				}
			}
		}
		if n > 0 && n < len(cfgNames)*len(wlNames) {
			seed, wantFailed = cand, n
			break
		}
	}
	if seed == 0 {
		t.Fatalf("no seed yields a mixed outcome")
	}

	sr := submitOK(t, ts, JobRequest{
		Configurations: cfgNames,
		Workloads:      wlNames,
		Warmup:         testWarmup,
		Measure:        testMeasure,
		FaultPlan:      &faultinject.Plan{Seed: seed, CellErrorProb: prob, FaultsPerSite: -1},
	})
	doc, _ := waitResult(t, ts, sr.ID)
	if doc.State != StateDegraded {
		t.Fatalf("expected degraded, got %q: %+v", doc.State, doc)
	}
	if doc.Cells.Failed != wantFailed || len(doc.FailedCells) != wantFailed {
		t.Fatalf("failed cells = %d (%d typed), want %d", doc.Cells.Failed, len(doc.FailedCells), wantFailed)
	}
	for _, f := range doc.FailedCells {
		if f.Canceled || f.Attempts < 1 || !strings.Contains(f.Error, "injected error") {
			t.Fatalf("typed failure malformed: %+v", f)
		}
	}
	// The surviving cells still export parseable metrics.
	var metrics harness.SuiteMetrics
	if err := json.Unmarshal(doc.Metrics, &metrics); err != nil {
		t.Fatalf("degraded metrics do not parse: %v", err)
	}
	if doc.MetricsSHA256 == "" {
		t.Fatalf("degraded result missing metrics fingerprint")
	}
}

func TestServerWarmRestartServesFromCheckpoints(t *testing.T) {
	dir := t.TempDir()
	req := JobRequest{
		Configurations: []string{"no", "nextline"},
		Workloads:      []string{"crypto-00"},
		Warmup:         testWarmup,
		Measure:        testMeasure,
	}

	cfg := testConfig()
	cfg.CheckpointDir = dir
	s1, ts1 := startTestServer(t, cfg)
	sr := submitOK(t, ts1, req)
	doc1, _ := waitResult(t, ts1, sr.ID)
	if doc1.Cells.Simulated != 2 {
		t.Fatalf("first run: %+v", doc1.Cells)
	}

	// Draining stops admission: submissions and health checks both 503.
	s1.Drain()
	status, _ := postJob(t, ts1, req)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", status)
	}
	hresp, err := http.Get(ts1.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", hresp.StatusCode)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("drained store left temp files: %v", tmps)
	}

	// A fresh server over the same store answers the repeat job with
	// zero re-simulation: every cell restores from the durable tier.
	s2, ts2 := startTestServer(t, cfg)
	sr2 := submitOK(t, ts2, req)
	if sr2.ID != sr.ID {
		t.Fatalf("same request produced different job IDs across restarts: %q vs %q", sr.ID, sr2.ID)
	}
	doc2, _ := waitResult(t, ts2, sr2.ID)
	if doc2.State != StateCompleted || doc2.Cells.CacheStore != 2 || doc2.Cells.Simulated != 0 {
		t.Fatalf("warm restart should serve entirely from the store: %+v", doc2.Cells)
	}
	if got := atomic.LoadUint64(&s2.stats.cellsSimulated); got != 0 {
		t.Fatalf("restarted server simulated %d cells", got)
	}
	if doc2.MetricsSHA256 != doc1.MetricsSHA256 {
		t.Fatalf("restart changed the metrics fingerprint: %s vs %s",
			doc2.MetricsSHA256, doc1.MetricsSHA256)
	}
}

func TestServerRequestValidation(t *testing.T) {
	cfg := testConfig()
	cfg.MaxCells = 4
	cfg.MaxBodyBytes = 512
	_, ts := startTestServer(t, cfg)

	good := JobRequest{
		Configurations: []string{"no"},
		Workloads:      []string{"crypto-00"},
		Warmup:         testWarmup,
		Measure:        testMeasure,
	}
	post := func(body []byte) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}
	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}

	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"unknown configuration", mustJSON(JobRequest{Configurations: []string{"bogus"}, Workloads: good.Workloads, Measure: testMeasure}), 400},
		{"empty workloads", mustJSON(JobRequest{Configurations: good.Configurations, Measure: testMeasure}), 400},
		{"zero measure", mustJSON(JobRequest{Configurations: good.Configurations, Workloads: good.Workloads}), 400},
		{"duplicate workload", mustJSON(JobRequest{Configurations: good.Configurations, Workloads: []string{"crypto-00", "crypto-00"}, Measure: testMeasure}), 400},
		{"too many cells", mustJSON(JobRequest{Configurations: []string{"no", "nextline", "ideal"}, Workloads: []string{"crypto-00", "int-00"}, Measure: testMeasure}), 400},
		{"unknown field", []byte(`{"configurations":["no"],"workloads":["crypto-00"],"measure":10000,"surprise":1}`), 400},
		{"trailing data", []byte(`{"configurations":["no"],"workloads":["crypto-00"],"measure":10000}{}`), 400},
		{"fault plan disabled", mustJSON(JobRequest{Configurations: good.Configurations, Workloads: good.Workloads, Measure: testMeasure,
			FaultPlan: &faultinject.Plan{Seed: 1, CellErrorProb: 1}}), 400},
		{"not json", []byte("entangle me"), 400},
		{"oversized body", mustJSON(JobRequest{Configurations: good.Configurations,
			Workloads: []string{strings.Repeat("w", 600)}, Measure: testMeasure}), 413},
	}
	for _, tc := range cases {
		if status, body := post(tc.body); status != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.want, body)
		}
	}

	// Unknown job IDs are 404 on every job resource.
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/events", "/v1/jobs/nope/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestServerHealthzAndMetrics(t *testing.T) {
	_, ts := startTestServer(t, testConfig())
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	sr := submitOK(t, ts, JobRequest{
		Configurations: []string{"no"},
		Workloads:      []string{"srv-00"},
		Warmup:         testWarmup,
		Measure:        testMeasure,
	})
	waitResult(t, ts, sr.ID)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type: %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"entangling_jobs_submitted_total 1",
		"entangling_jobs_completed_total 1",
		"entangling_cells_simulated_total 1",
		"# TYPE entangling_trace_resident gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

func TestServerRunDrainsOnContextCancel(t *testing.T) {
	cfg := testConfig()
	cfg.Addr = "127.0.0.1:0"
	cfg.Logf = t.Logf
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx) }()

	// Wait for the listener, run one job end to end over real TCP.
	var base string
	for deadline := time.Now().Add(5 * time.Second); ; {
		if a := s.Addr(); a != "" {
			base = "http://" + a
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never started listening")
		}
		time.Sleep(5 * time.Millisecond)
	}
	b, _ := json.Marshal(JobRequest{
		Configurations: []string{"no"},
		Workloads:      []string{"crypto-00"},
		Warmup:         testWarmup,
		Measure:        testMeasure,
	})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	for {
		r, err := http.Get(base + "/v1/jobs/" + sr.ID + "/result")
		if err != nil {
			t.Fatalf("GET result: %v", err)
		}
		code := r.StatusCode
		r.Body.Close()
		if code == http.StatusOK {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Context cancellation (what SIGTERM triggers in the command) must
	// produce a clean nil-error drain.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run returned %v after cancel; want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("Run did not return after context cancel")
	}
}
