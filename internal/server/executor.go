package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"entangling/internal/faultinject"
	"entangling/internal/harness"
	"entangling/internal/workload"
)

// This file is the server's content-addressed execution layer. A cell
// — one (configuration, workload, windows) simulation — is identified
// by harness.CellFingerprint, and resolving one walks a strict
// hierarchy: the in-process result cache, the durable checkpoint
// store (which is how a warm restart answers repeat jobs with zero
// re-simulation), and finally a singleflighted "flight" that runs the
// cell through harness.RunSuiteCtx exactly once no matter how many
// concurrent jobs want it. Flights run on a detached context
// refcounted by their subscribers, so one job canceling never kills a
// simulation another job is still waiting on.

// cellOutcome is a resolved cell: a result or a typed cell error,
// plus where the result came from (Source* constants).
type cellOutcome struct {
	res    harness.RunResult
	err    *harness.CellError
	source string
}

// flight is one in-progress simulation of a cell, shared by every
// subscriber that arrived before it finished.
type flight struct {
	done chan struct{}
	res  harness.RunResult
	err  *harness.CellError

	// subscribers is the refcount of jobs waiting; when it reaches
	// zero before the simulation finishes, cancel aborts the detached
	// run (nobody wants the answer anymore).
	subscribers int
	cancel      context.CancelFunc

	// listeners fan harness progress events (retries) out to the
	// subscribed jobs' event logs.
	lmu       sync.Mutex
	listeners map[int]func(harness.CellEvent)
	nextLis   int
}

func (f *flight) addListener(fn func(harness.CellEvent)) int {
	f.lmu.Lock()
	defer f.lmu.Unlock()
	id := f.nextLis
	f.nextLis++
	f.listeners[id] = fn
	return id
}

func (f *flight) dropListener(id int) {
	f.lmu.Lock()
	delete(f.listeners, id)
	f.lmu.Unlock()
}

func (f *flight) broadcast(ev harness.CellEvent) {
	f.lmu.Lock()
	fns := make([]func(harness.CellEvent), 0, len(f.listeners))
	for _, fn := range f.listeners {
		fns = append(fns, fn)
	}
	f.lmu.Unlock()
	for _, fn := range fns {
		fn(ev)
	}
}

// executor resolves cells against the cache hierarchy and runs the
// simulations that miss everywhere.
type executor struct {
	traces *workload.TraceCache
	store  *harness.CheckpointStore // nil without -checkpoint-dir
	opts   execOptions
	stats  *counters

	mu      sync.Mutex
	mem     map[string]harness.RunResult
	memFIFO []string
	flights map[string]*flight
}

// execOptions is the per-cell execution policy every flight runs
// under.
type execOptions struct {
	retries        int
	retryBaseDelay time.Duration
	cellTimeout    time.Duration
	memCap         int
}

func newExecutor(traces *workload.TraceCache, store *harness.CheckpointStore, opts execOptions, stats *counters) *executor {
	if opts.memCap <= 0 {
		opts.memCap = 4096
	}
	return &executor{
		traces:  traces,
		store:   store,
		opts:    opts,
		stats:   stats,
		mem:     make(map[string]harness.RunResult),
		flights: make(map[string]*flight),
	}
}

// resolveCell obtains the cell's result for one subscriber job. The
// progress callback receives the harness lifecycle events of a live
// simulation this job is subscribed to (retries, for the event
// stream); it may be nil.
func (x *executor) resolveCell(jobCtx context.Context, cfg harness.Configuration, spec workload.Spec,
	fp string, warmup, measure uint64, plan *faultinject.Plan, progress func(harness.CellEvent)) cellOutcome {

	canceledOutcome := func() cellOutcome {
		return cellOutcome{err: &harness.CellError{
			Config: cfg.Name, Workload: spec.Name,
			Err: fmt.Errorf("%w: %v", harness.ErrCellCanceled, context.Cause(jobCtx)),
		}}
	}

	for {
		if jobCtx.Err() != nil {
			return canceledOutcome()
		}
		// 1. In-process result cache.
		if res, ok := x.memGet(fp); ok {
			x.stats.inc(&x.stats.cellsCacheMemory)
			return cellOutcome{res: res, source: SourceCacheMemory}
		}
		// 2. Durable checkpoint store: a warm restart serves repeat
		// jobs from here with zero re-simulation.
		if x.store != nil {
			if rec, ok, err := x.store.Load(fp); err == nil && ok &&
				rec.Config == cfg.Name && rec.Workload == spec.Name {
				x.memPut(fp, rec.Result)
				x.stats.inc(&x.stats.cellsCacheStore)
				return cellOutcome{res: rec.Result, source: SourceCacheStore}
			}
		}
		// 3. Singleflight: join the in-progress simulation, or start it.
		key := flightKey(fp, plan)
		f, created := x.joinFlight(key)
		source := SourceShared
		if created {
			source = SourceSimulated
			go x.runFlight(f, key, cfg, spec, fp, warmup, measure, plan)
		}
		var lis int
		if progress != nil {
			lis = f.addListener(progress)
		}
		select {
		case <-f.done:
		case <-jobCtx.Done():
			if progress != nil {
				f.dropListener(lis)
			}
			x.leaveFlight(key, f)
			return canceledOutcome()
		}
		if progress != nil {
			f.dropListener(lis)
		}
		x.leaveFlight(key, f)
		if f.err != nil && f.err.Canceled() && jobCtx.Err() == nil {
			// The flight died with its initiator's cancellation, not
			// ours: retry — the next loop starts (or joins) a fresh
			// flight, or hits the cache if a racer finished it.
			continue
		}
		if f.err != nil {
			return cellOutcome{err: f.err, source: source}
		}
		return cellOutcome{res: f.res, source: source}
	}
}

// flightKey separates fault-injected flights from clean ones: a
// faulty job must never donate a failure to (or steal a success from)
// a clean job's identical cell.
func flightKey(fp string, plan *faultinject.Plan) string {
	if plan == nil {
		return fp
	}
	return fp + "|faults"
}

// joinFlight subscribes to the cell's flight, creating it if absent;
// created reports whether this caller must run it.
func (x *executor) joinFlight(key string) (f *flight, created bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if f, ok := x.flights[key]; ok {
		f.subscribers++
		x.stats.inc(&x.stats.cellsShared)
		return f, false
	}
	f = &flight{
		done:      make(chan struct{}),
		listeners: make(map[int]func(harness.CellEvent)),
	}
	f.subscribers = 1
	x.flights[key] = f
	return f, true
}

// leaveFlight drops one subscription; the last leaver of an
// unfinished flight cancels the detached simulation.
func (x *executor) leaveFlight(key string, f *flight) {
	x.mu.Lock()
	f.subscribers--
	abandon := f.subscribers <= 0
	if abandon && x.flights[key] == f {
		delete(x.flights, key)
	}
	x.mu.Unlock()
	if abandon {
		select {
		case <-f.done:
		default:
			if f.cancel != nil {
				f.cancel()
			}
		}
	}
}

// runFlight executes the cell through harness.RunSuiteCtx on a
// detached context (canceled only when every subscriber leaves). The
// harness provides retries, panic recovery, deadline enforcement and
// checkpoint persistence; successful results are published to the
// in-process cache.
func (x *executor) runFlight(f *flight, key string, cfg harness.Configuration, spec workload.Spec,
	fp string, warmup, measure uint64, plan *faultinject.Plan) {

	ctx, cancel := context.WithCancel(context.Background())
	x.mu.Lock()
	f.cancel = cancel
	alive := f.subscribers > 0
	x.mu.Unlock()
	defer cancel()
	if !alive {
		// Every subscriber left between joinFlight and here.
		cancel()
	}

	opt := harness.Options{
		Warmup:         warmup,
		Measure:        measure,
		Parallelism:    1,
		Traces:         x.traces,
		Retries:        x.opts.retries,
		RetryBaseDelay: x.opts.retryBaseDelay,
		CellTimeout:    x.opts.cellTimeout,
		Checkpoint:     x.store,
		Progress:       f.broadcast,
	}
	if plan != nil {
		opt.CellHook = faultinject.New(*plan).CellHook
	}

	s, err := harness.RunSuiteCtx(ctx, []workload.Spec{spec}, []harness.Configuration{cfg}, opt)
	if err != nil {
		cerr := firstCellError(err, s)
		if cerr == nil {
			cerr = &harness.CellError{Config: cfg.Name, Workload: spec.Name, Err: err}
		}
		f.err = cerr
	} else {
		f.res = s.Runs[cfg.Name][spec.Name]
		x.memPut(fp, f.res)
		x.stats.inc(&x.stats.cellsSimulated)
	}
	// Retire the flight before publishing completion: later resolvers
	// take the cache path for successes and a fresh flight for
	// failures, so a failed simulation is never served as a sticky
	// cached error.
	x.mu.Lock()
	if x.flights[key] == f {
		delete(x.flights, key)
	}
	x.mu.Unlock()
	close(f.done)
}

// firstCellError extracts the typed cell error of a one-cell sweep.
func firstCellError(err error, s *harness.SuiteResults) *harness.CellError {
	if s != nil && len(s.Failed) > 0 {
		return s.Failed[0]
	}
	var cerr *harness.CellError
	if errors.As(err, &cerr) {
		return cerr
	}
	return nil
}

func (x *executor) memGet(fp string) (harness.RunResult, bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	r, ok := x.mem[fp]
	return r, ok
}

// memPut caches a successful result, evicting oldest-inserted entries
// past the cap (results are immutable and re-derivable, so FIFO is
// good enough — the durable tier below never evicts).
func (x *executor) memPut(fp string, r harness.RunResult) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, ok := x.mem[fp]; ok {
		return
	}
	x.mem[fp] = r
	x.memFIFO = append(x.memFIFO, fp)
	for len(x.memFIFO) > x.opts.memCap {
		evict := x.memFIFO[0]
		x.memFIFO = x.memFIFO[1:]
		delete(x.mem, evict)
	}
}
