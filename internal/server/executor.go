package server

import (
	"context"
	"fmt"
	"sync"

	"entangling/internal/faultinject"
	"entangling/internal/harness"
)

// This file is the Resolver's flight machinery: the singleflight tier
// of the resolution hierarchy defined in dispatch.go. A cell that
// misses the in-process cache and the checkpoint store joins (or
// starts) a flight — one in-progress invocation of the CellRunner,
// shared by every subscriber that arrived before it finished. Flights
// run on a detached context refcounted by their subscribers, so one
// job canceling never kills a run another job is still waiting on.

// flight is one in-progress resolution of a cell.
type flight struct {
	done   chan struct{}
	res    harness.RunResult
	source string
	err    *harness.CellError

	// subscribers is the refcount of jobs waiting; when it reaches
	// zero before the run finishes, cancel aborts the detached run
	// (nobody wants the answer anymore).
	subscribers int
	cancel      context.CancelFunc

	// listeners fan runner progress events (retries) out to the
	// subscribed jobs' event logs.
	lmu       sync.Mutex
	listeners map[int]func(harness.CellEvent)
	nextLis   int
}

func (f *flight) addListener(fn func(harness.CellEvent)) int {
	f.lmu.Lock()
	defer f.lmu.Unlock()
	id := f.nextLis
	f.nextLis++
	f.listeners[id] = fn
	return id
}

func (f *flight) dropListener(id int) {
	f.lmu.Lock()
	delete(f.listeners, id)
	f.lmu.Unlock()
}

func (f *flight) broadcast(ev harness.CellEvent) {
	f.lmu.Lock()
	fns := make([]func(harness.CellEvent), 0, len(f.listeners))
	for _, fn := range f.listeners {
		fns = append(fns, fn)
	}
	f.lmu.Unlock()
	for _, fn := range fns {
		fn(ev)
	}
}

// Dispatch obtains the cell's result for one subscriber. The progress
// callback receives the lifecycle events of a live run this subscriber
// is attached to (retries, for the event stream); it may be nil.
func (x *Resolver) Dispatch(ctx context.Context, cell CellSpec, progress func(harness.CellEvent)) CellResult {
	canceledOutcome := func() CellResult {
		return CellResult{Err: &harness.CellError{
			Config: cell.Config.Name, Workload: cell.Workload.Name,
			Err: fmt.Errorf("%w: %v", harness.ErrCellCanceled, context.Cause(ctx)),
		}}
	}

	for {
		if ctx.Err() != nil {
			return canceledOutcome()
		}
		// 1. In-process result cache.
		if res, ok := x.memGet(cell.Fingerprint); ok {
			return CellResult{Result: res, Source: SourceCacheMemory}
		}
		// 2. Durable checkpoint store: a warm restart serves repeat
		// jobs from here with zero re-simulation.
		if x.store != nil {
			if rec, ok, err := x.store.Load(cell.Fingerprint); err == nil && ok &&
				rec.Config == cell.Config.Name && rec.Workload == cell.Workload.Name {
				x.memPut(cell.Fingerprint, rec.Result)
				return CellResult{Result: rec.Result, Source: SourceCacheStore}
			}
		}
		// 3. Singleflight: join the in-progress run, or start it.
		key := flightKey(cell.Fingerprint, cell.Plan)
		f, created := x.joinFlight(key)
		shared := !created
		if created {
			go x.runFlight(f, key, cell)
		}
		var lis int
		if progress != nil {
			lis = f.addListener(progress)
		}
		select {
		case <-f.done:
		case <-ctx.Done():
			if progress != nil {
				f.dropListener(lis)
			}
			x.leaveFlight(key, f)
			return canceledOutcome()
		}
		if progress != nil {
			f.dropListener(lis)
		}
		x.leaveFlight(key, f)
		if f.err != nil && f.err.Canceled() && ctx.Err() == nil {
			// The flight died with its initiator's cancellation, not
			// ours: retry — the next loop starts (or joins) a fresh
			// flight, or hits the cache if a racer finished it.
			continue
		}
		if f.err != nil {
			return CellResult{Err: f.err, Source: f.source}
		}
		source := f.source
		if shared {
			source = SourceShared
		}
		return CellResult{Result: f.res, Source: source}
	}
}

// flightKey separates fault-injected flights from clean ones: a
// faulty job must never donate a failure to (or steal a success from)
// a clean job's identical cell.
func flightKey(fp string, plan *faultinject.Plan) string {
	if plan == nil {
		return fp
	}
	return fp + "|faults"
}

// joinFlight subscribes to the cell's flight, creating it if absent;
// created reports whether this caller must run it.
func (x *Resolver) joinFlight(key string) (f *flight, created bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if f, ok := x.flights[key]; ok {
		f.subscribers++
		return f, false
	}
	f = &flight{
		done:      make(chan struct{}),
		listeners: make(map[int]func(harness.CellEvent)),
	}
	f.subscribers = 1
	x.flights[key] = f
	return f, true
}

// leaveFlight drops one subscription; the last leaver of an
// unfinished flight cancels the detached run.
func (x *Resolver) leaveFlight(key string, f *flight) {
	x.mu.Lock()
	f.subscribers--
	abandon := f.subscribers <= 0
	// Snapshot under the lock: runFlight publishes f.cancel while
	// holding it. A nil snapshot means the run hasn't started yet, and
	// runFlight's own subscriber check will cancel it.
	cancel := f.cancel
	if abandon && x.flights[key] == f {
		delete(x.flights, key)
	}
	x.mu.Unlock()
	if abandon {
		select {
		case <-f.done:
		default:
			if cancel != nil {
				cancel()
			}
		}
	}
}

// runFlight executes the cell through the CellRunner on a detached
// context (canceled only when every subscriber leaves). Successful
// results are published to the in-process cache; the runner is
// responsible for durable persistence (the local runner checkpoints
// inside the harness, the fleet runner replicates to the coordinator
// store).
func (x *Resolver) runFlight(f *flight, key string, cell CellSpec) {
	ctx, cancel := context.WithCancel(context.Background())
	x.mu.Lock()
	f.cancel = cancel
	alive := f.subscribers > 0
	x.mu.Unlock()
	defer cancel()
	if !alive {
		// Every subscriber left between joinFlight and here.
		cancel()
	}

	res, source, cerr := x.run(ctx, cell, f.broadcast)
	if cerr != nil {
		f.err = cerr
	} else {
		f.res, f.source = res, source
		x.memPut(cell.Fingerprint, res)
	}
	// Retire the flight before publishing completion: later resolvers
	// take the cache path for successes and a fresh flight for
	// failures, so a failed run is never served as a sticky cached
	// error.
	x.mu.Lock()
	if x.flights[key] == f {
		delete(x.flights, key)
	}
	x.mu.Unlock()
	close(f.done)
}

func (x *Resolver) memGet(fp string) (harness.RunResult, bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	r, ok := x.mem[fp]
	return r, ok
}

// memPut caches a successful result, evicting oldest-inserted entries
// past the cap (results are immutable and re-derivable, so FIFO is
// good enough — the durable tier below never evicts).
func (x *Resolver) memPut(fp string, r harness.RunResult) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, ok := x.mem[fp]; ok {
		return
	}
	x.mem[fp] = r
	x.memFIFO = append(x.memFIFO, fp)
	for len(x.memFIFO) > x.memCap {
		evict := x.memFIFO[0]
		x.memFIFO = x.memFIFO[1:]
		delete(x.mem, evict)
	}
}
