package server

import "sync"

// This file replaces the PR 4 admission channel with a tiered queue:
// one FIFO per priority tier, drained strictly highest-weight-first.
// A bronze job never delays a gold job that arrived after it, while
// jobs within a tier keep submission order. Capacity is shared across
// tiers — the queue bound protects the server's memory, the
// per-tenant quotas protect tenants from each other.

// tierQueue is a bounded, multi-tier FIFO. Safe for concurrent use.
type tierQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cap    int
	tiers  [][]*job // index 0 drains first
	size   int
	closed bool
}

func newTierQueue(capacity, tiers int) *tierQueue {
	if tiers < 1 {
		tiers = 1
	}
	q := &tierQueue{cap: capacity, tiers: make([][]*job, tiers)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues j on the given tier (clamped to the configured
// range). It reports false when the queue is at capacity or closed.
func (q *tierQueue) push(j *job, tier int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.size >= q.cap {
		return false
	}
	if tier < 0 {
		tier = 0
	}
	if tier >= len(q.tiers) {
		tier = len(q.tiers) - 1
	}
	q.tiers[tier] = append(q.tiers[tier], j)
	q.size++
	q.cond.Signal()
	return true
}

// pop blocks until a job is available and returns the head of the
// highest-priority non-empty tier. After close it keeps returning
// queued jobs until the queue is empty, then reports false — drain
// needs to see (and cancel) every admitted job exactly once.
func (q *tierQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.size == 0 {
		return nil, false
	}
	for i := range q.tiers {
		if len(q.tiers[i]) > 0 {
			j := q.tiers[i][0]
			// Shift instead of re-slice so the backing array does not
			// pin finished jobs.
			copy(q.tiers[i], q.tiers[i][1:])
			q.tiers[i] = q.tiers[i][:len(q.tiers[i])-1]
			q.size--
			return j, true
		}
	}
	panic("server: tierQueue size/tier bookkeeping out of sync")
}

// remove withdraws a specific job (queue-full submission rollback).
// It reports whether the job was still queued.
func (q *tierQueue) remove(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for t := range q.tiers {
		for i, cand := range q.tiers[t] {
			if cand == j {
				q.tiers[t] = append(q.tiers[t][:i], q.tiers[t][i+1:]...)
				q.size--
				return true
			}
		}
	}
	return false
}

// close stops admission and wakes every blocked pop.
func (q *tierQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// depth reports the queued-job count.
func (q *tierQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}
