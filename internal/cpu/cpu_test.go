package cpu

import (
	"testing"

	"entangling/internal/prefetch"
	"entangling/internal/trace"
	"entangling/internal/workload"
)

func run(t *testing.T, cat workload.Category, seed uint64, n uint64, mutate func(*Config)) Results {
	t.Helper()
	p := workload.Preset(cat)
	p.Name = string(cat)
	p.Seed = seed
	prog, err := workload.BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	m := New(cfg)
	return m.Run(workload.NewWalker(prog), n)
}

func TestBaselineRunSanity(t *testing.T) {
	r := run(t, workload.Srv, 1, 200_000, nil)
	if r.Instructions != 200_000 {
		t.Fatalf("Instructions = %d", r.Instructions)
	}
	if r.Cycles == 0 || r.IPC <= 0 || r.IPC > 6 {
		t.Fatalf("implausible IPC %.3f over %d cycles", r.IPC, r.Cycles)
	}
	if r.FetchBlocks == 0 || r.L1I.Accesses != r.FetchBlocks {
		t.Errorf("fetch blocks %d vs L1I accesses %d", r.FetchBlocks, r.L1I.Accesses)
	}
	if r.L1I.Misses == 0 {
		t.Error("srv workload produced no L1I misses")
	}
	if mpki := r.L1IMPKI(); mpki < 1 {
		t.Errorf("srv baseline MPKI %.2f; paper's srv traces are far above 1", mpki)
	}
	if r.CondAccuracy < 0.6 || r.CondAccuracy > 1 {
		t.Errorf("conditional accuracy %.3f implausible", r.CondAccuracy)
	}
	if r.PrefetcherName != "no" {
		t.Errorf("prefetcher name %q", r.PrefetcherName)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := run(t, workload.Int, 3, 100_000, nil)
	b := run(t, workload.Int, 3, 100_000, nil)
	if a != b {
		t.Fatalf("nondeterministic run:\n a=%+v\n b=%+v", a, b)
	}
}

func TestCategoriesOrderByMissRate(t *testing.T) {
	srv := run(t, workload.Srv, 2, 300_000, nil)
	crypto := run(t, workload.Crypto, 2, 300_000, nil)
	if srv.L1IMPKI() <= crypto.L1IMPKI() {
		t.Errorf("srv MPKI (%.2f) should exceed crypto MPKI (%.2f)",
			srv.L1IMPKI(), crypto.L1IMPKI())
	}
}

func TestIdealL1IBeatsBaseline(t *testing.T) {
	base := run(t, workload.Srv, 4, 300_000, nil)
	ideal := run(t, workload.Srv, 4, 300_000, func(c *Config) { c.L1I.Ideal = true })
	if ideal.IPC <= base.IPC {
		t.Errorf("ideal L1I IPC %.3f not above baseline %.3f", ideal.IPC, base.IPC)
	}
	if ideal.L1I.Misses != 0 {
		t.Errorf("ideal L1I recorded %d misses", ideal.L1I.Misses)
	}
	if ideal.L2.Accesses == 0 {
		t.Error("ideal L1I sent no traffic to L2 (pollution not modelled)")
	}
}

func TestNextLineHelpsSrv(t *testing.T) {
	base := run(t, workload.Srv, 5, 300_000, nil)
	nl := run(t, workload.Srv, 5, 300_000, func(c *Config) { c.Prefetcher = prefetch.NewNextLine })
	if nl.L1I.Misses >= base.L1I.Misses {
		t.Errorf("nextline did not reduce misses: %d vs %d", nl.L1I.Misses, base.L1I.Misses)
	}
	if nl.IPC <= base.IPC*0.99 {
		t.Errorf("nextline IPC %.3f vs baseline %.3f", nl.IPC, base.IPC)
	}
	if nl.L1I.PrefetchIssued == 0 || nl.L1I.PrefetchFills == 0 {
		t.Error("nextline issued no prefetches")
	}
	if nl.PrefetcherName != "nextline" {
		t.Errorf("name %q", nl.PrefetcherName)
	}
}

func TestPhysicalAddressesRun(t *testing.T) {
	virt := run(t, workload.Int, 6, 150_000, func(c *Config) { c.Prefetcher = prefetch.NewNextLine })
	phys := run(t, workload.Int, 6, 150_000, func(c *Config) {
		c.Prefetcher = prefetch.NewNextLine
		c.PhysicalAddresses = true
		c.TranslatorSalt = 42
	})
	if phys.Instructions != virt.Instructions {
		t.Fatal("instruction counts differ")
	}
	// Physical next-line loses the cross-page contiguity, so it should
	// be no more effective than virtual.
	if phys.L1I.TimelyPrefetchHits > virt.L1I.TimelyPrefetchHits*11/10 {
		t.Errorf("physical next-line unexpectedly outperformed virtual: %d vs %d timely hits",
			phys.L1I.TimelyPrefetchHits, virt.L1I.TimelyPrefetchHits)
	}
}

func TestBranchHookFires(t *testing.T) {
	var events int
	run(t, workload.Int, 7, 50_000, func(c *Config) {
		c.BranchHook = func(prefetch.BranchEvent) { events++ }
	})
	if events == 0 {
		t.Error("BranchHook never fired")
	}
}

func TestRedirectsCounted(t *testing.T) {
	r := run(t, workload.Srv, 8, 100_000, nil)
	if r.Redirects == 0 {
		t.Error("no redirects on a branchy workload")
	}
	if r.BTBMisses == 0 {
		t.Error("no BTB misses on a large-footprint workload")
	}
}

func TestResultsHelpers(t *testing.T) {
	r := Results{}
	if r.L1IMPKI() != 0 || r.L1IHitRate() != 0 {
		t.Error("zero-value Results helpers should be 0")
	}
	r.Instructions = 1000
	r.L1I.Misses = 5
	r.L1I.Accesses = 100
	r.L1I.Hits = 95
	if r.L1IMPKI() != 5 {
		t.Errorf("MPKI = %v", r.L1IMPKI())
	}
	if r.L1IHitRate() != 0.95 {
		t.Errorf("hit rate = %v", r.L1IHitRate())
	}
}

func TestLimitedRunStopsEarly(t *testing.T) {
	p := workload.Preset(workload.Crypto)
	p.Seed = 9
	prog, _ := workload.BuildProgram(p)
	m := New(DefaultConfig())
	src := &trace.LimitSource{Src: workload.NewWalker(prog), N: 1234}
	r := m.Run(src, 1_000_000)
	if r.Instructions != 1234 {
		t.Errorf("Instructions = %d, want 1234 (source-limited)", r.Instructions)
	}
}

func TestLargerL1IReducesMisses(t *testing.T) {
	base := run(t, workload.Srv, 10, 300_000, nil)
	big := run(t, workload.Srv, 10, 300_000, func(c *Config) { c.L1I.Ways = 24 }) // 96KB
	if big.L1I.Misses >= base.L1I.Misses {
		t.Errorf("96KB L1I misses %d not below 32KB misses %d", big.L1I.Misses, base.L1I.Misses)
	}
	if big.IPC <= base.IPC {
		t.Errorf("96KB L1I IPC %.3f not above baseline %.3f", big.IPC, base.IPC)
	}
}
